#!/usr/bin/env python3
"""Validate alive-mutate forensics artifacts: a -trace-json file and a
-bug-bundles directory.

Usage: check_artifacts.py <trace.json> <bundles-dir>

Trace checks (Chrome trace-event JSON):

  - the file parses and has a "traceEvents" list;
  - every track announces itself with a "thread_name" metadata event;
  - spans ("ph": "X") have non-negative ts and positive dur, and every
    event's tid belongs to an announced track;
  - at least one span exists (a campaign that traced nothing is a bug).

Bundle checks (manifest schema version 1):

  - the directory contains at least one bundle-s<seed>-* subdirectory;
  - each manifest.json parses, pins schema_version 1, and its record
    echoes the seed embedded in the directory name;
  - every file the manifest's "files" map names exists and is non-empty;
  - the mutation trail is a list of {family, function, site, detail};
  - the config echo carries the fields -replay needs to reconstruct the
    campaign (passes, seeds, enabled kinds, TV options).

Exits non-zero with a message on the first violation; on success prints
one summary line ending with the path of the first bundle (CI feeds it
to `alive-mutate -replay`).
"""

import json
import os
import re
import sys

MANIFEST_SCHEMA_VERSION = 1


def fail(msg):
    print("check_artifacts: FAIL: " + msg)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except ValueError as e:
            fail("%s: not valid JSON: %s" % (path, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("%s: missing 'traceEvents' list" % path)

    tracks = {}
    spans = instants = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") != "thread_name":
                fail("%s: unexpected metadata event %r" % (path, e.get("name")))
            tracks[e.get("tid")] = e["args"]["name"]
        elif ph == "X":
            spans += 1
            if e.get("ts", -1) < 0 or e.get("dur", 0) < 0:
                fail("%s: span %r has bad ts/dur" % (path, e.get("name")))
        elif ph == "i":
            instants += 1
        else:
            fail("%s: unknown phase %r" % (path, ph))
        if ph != "M" and e.get("tid") not in tracks:
            fail(
                "%s: event %r on unannounced tid %r"
                % (path, e.get("name"), e.get("tid"))
            )

    if not tracks:
        fail("%s: no thread_name metadata — tracks are unnamed" % path)
    if spans == 0:
        fail("%s: no spans recorded" % path)
    return len(tracks), spans, instants


def check_bundle(bdir):
    manifest_path = os.path.join(bdir, "manifest.json")
    if not os.path.isfile(manifest_path):
        fail("%s: no manifest.json" % bdir)
    with open(manifest_path) as f:
        try:
            m = json.load(f)
        except ValueError as e:
            fail("%s: manifest is not valid JSON: %s" % (bdir, e))

    if m.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        fail(
            "%s: schema_version %r != %d"
            % (bdir, m.get("schema_version"), MANIFEST_SCHEMA_VERSION)
        )

    rec = m.get("record")
    if not isinstance(rec, dict):
        fail("%s: missing 'record'" % bdir)
    for key in ("kind", "seed", "verdict"):
        if key not in rec:
            fail("%s: record missing %r" % (bdir, key))

    # The directory name embeds the seed; it must round-trip.
    name = os.path.basename(bdir.rstrip("/"))
    match = re.match(r"bundle-s(\d+)-", name)
    if not match:
        fail("%s: directory name not of the form bundle-s<seed>-*" % bdir)
    if int(match.group(1)) != rec["seed"]:
        fail(
            "%s: directory seed %s != manifest seed %s"
            % (bdir, match.group(1), rec["seed"])
        )

    files = m.get("files")
    if not isinstance(files, dict) or "original" not in files:
        fail("%s: missing 'files' map with 'original'" % bdir)
    for role, fname in files.items():
        fpath = os.path.join(bdir, fname)
        if not os.path.isfile(fpath) or os.path.getsize(fpath) == 0:
            fail("%s: %s file %r missing or empty" % (bdir, role, fname))

    trail = m.get("trail")
    if not isinstance(trail, list):
        fail("%s: missing 'trail' list" % bdir)
    for entry in trail:
        for key in ("family", "function", "site", "detail"):
            if key not in entry:
                fail("%s: trail entry missing %r" % (bdir, key))

    config = m.get("config")
    if not isinstance(config, dict):
        fail("%s: missing 'config'" % bdir)
    for key in ("passes", "enabled_kinds", "tv", "testable_functions"):
        if key not in config:
            fail("%s: config missing %r" % (bdir, key))
    return len(trail)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_artifacts.py <trace.json> <bundles-dir>")
    trace_path, bundles_dir = sys.argv[1], sys.argv[2]

    tracks, spans, instants = check_trace(trace_path)

    if not os.path.isdir(bundles_dir):
        fail("%s: not a directory" % bundles_dir)
    bundles = sorted(
        os.path.join(bundles_dir, d)
        for d in os.listdir(bundles_dir)
        if d.startswith("bundle-") and os.path.isdir(os.path.join(bundles_dir, d))
    )
    if not bundles:
        fail("%s: no bundle-* directories" % bundles_dir)
    trail_entries = sum(check_bundle(b) for b in bundles)

    print(
        "check_artifacts: OK (%d tracks, %d spans, %d instants; %d bundles, "
        "%d trail entries) first=%s"
        % (tracks, spans, instants, len(bundles), trail_entries, bundles[0])
    )


if __name__ == "__main__":
    main()
