#!/usr/bin/env python3
"""Validate a bench_throughput JSON report against BENCH_baseline.json.

Usage: check_bench_json.py <fresh.json> <baseline.json>

CI runs the bench with tiny knobs, so absolute timings are noise; what must
hold is the report *shape* (the baseline documents the schema) plus the
internal invariants of the counters. Exits non-zero with a message when
either is violated.
"""

import json
import sys


def fail(msg):
    print("check_bench_json: FAIL: " + msg)
    sys.exit(1)


def key_shape(value):
    """Recursive key structure; lists are described by their first element
    (rows all share one schema)."""
    if isinstance(value, dict):
        return {k: key_shape(v) for k, v in sorted(value.items())}
    if isinstance(value, list):
        return [key_shape(value[0])] if value else []
    return type(value).__name__


def main():
    if len(sys.argv) != 3:
        fail("usage: check_bench_json.py <fresh.json> <baseline.json>")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    if key_shape(fresh) != key_shape(base):
        fail(
            "report schema drifted from baseline:\n  fresh:    %r\n  baseline: %r"
            % (key_shape(fresh), key_shape(base))
        )

    t = fresh["totals"]
    # The hit-rate field is load-bearing for the CI trend comparison: fail
    # with a message, not a KeyError, when a report stops emitting it.
    if "cache_hit_rate" not in t:
        fail("totals missing required cache_hit_rate field")
    if not fresh["rows"]:
        fail("no benchmark rows: every corpus file was discarded")
    if t["verified"] + t["verify_skipped"] <= 0:
        fail("no verification happened at all")
    if t["verify_skipped"] <= 0:
        fail("change-tracking never skipped a function")
    # Misses count actual checkRefinement calls: they can never exceed the
    # number of established verdicts.
    if t["cache_hits"] + t["cache_misses"] != t["verified"]:
        fail(
            "cache hits (%d) + misses (%d) != verified (%d)"
            % (t["cache_hits"], t["cache_misses"], t["verified"])
        )
    if not 0.0 <= t["cache_hit_rate"] <= 1.0:
        fail("cache_hit_rate %r outside [0, 1]" % t["cache_hit_rate"])
    for row in fresh["rows"]:
        for k in ("in_process_s", "no_memo_s", "discrete_s"):
            if row[k] < 0:
                fail("%s: negative timing %s" % (row["name"], k))
        if row["speedup_vs_discrete"] <= 0:
            fail("%s: non-positive speedup" % row["name"])
    # Percentiles must be monotone in P within every latency block — a
    # p90 above the p99 (as an unclamped histogram estimator once
    # produced) means the report cannot be trusted for trend tracking.
    for name, block in sorted(fresh.get("latency", {}).items()):
        p50, p90, p99 = block["p50_s"], block["p90_s"], block["p99_s"]
        if p50 > p90 or p90 > p99:
            fail(
                "%s latency percentiles not monotone: p50 %r > p90 %r or "
                "p90 %r > p99 %r" % (name, p50, p90, p90, p99)
            )

    print(
        "check_bench_json: OK (%d rows, %d verified, %d skipped, "
        "hit rate %.1f%%, avg speedup vs discrete %.2fx, vs no-memo %.2fx)"
        % (
            len(fresh["rows"]),
            t["verified"],
            t["verify_skipped"],
            100.0 * t["cache_hit_rate"],
            fresh["avg_speedup_vs_discrete"],
            fresh["avg_speedup_vs_no_memo"],
        )
    )


if __name__ == "__main__":
    main()
