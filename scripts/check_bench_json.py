#!/usr/bin/env python3
"""Validate a bench_throughput JSON report against BENCH_baseline.json.

Usage: check_bench_json.py <fresh.json> <baseline.json>

CI runs the bench with tiny knobs, so absolute timings are noise; what must
hold is the report *shape* (the baseline documents the schema) plus the
internal invariants of the counters. Exits non-zero with a message when
either is violated.
"""

import json
import sys


def fail(msg):
    print("check_bench_json: FAIL: " + msg)
    sys.exit(1)


def key_shape(value):
    """Recursive key structure; lists are described by their first element
    (rows all share one schema). The cost-attribution fields (top_query,
    dominant_query) are null-or-object by design — which file happens to
    track a query is timing-dependent — so they are shape-checked
    separately in check_profile, not here."""
    if isinstance(value, dict):
        return {
            k: "top_query" if k in ("top_query", "dominant_query") else key_shape(v)
            for k, v in sorted(value.items())
        }
    if isinstance(value, list):
        return [key_shape(value[0])] if value else []
    return type(value).__name__


QUERY_FIELDS = ("function", "verdict", "cost", "decisions", "propagations",
                "conflicts", "count")


def check_query(where, q):
    """One top_query/dominant_query object: required fields, counters
    consistent (cost is by definition decisions+propagations+conflicts)."""
    for k in QUERY_FIELDS:
        if k not in q:
            fail("%s: top_query missing field %r" % (where, k))
    for k in ("cost", "decisions", "propagations", "conflicts", "count"):
        if not isinstance(q[k], int) or q[k] < 0:
            fail("%s: top_query.%s is %r, not a non-negative int" % (where, k, q[k]))
    if q["count"] == 0:
        fail("%s: top_query seen zero times" % where)
    if q["cost"] != q["decisions"] + q["propagations"] + q["conflicts"]:
        fail(
            "%s: top_query cost %d != decisions %d + propagations %d + "
            "conflicts %d"
            % (where, q["cost"], q["decisions"], q["propagations"], q["conflicts"])
        )


def check_profile(fresh):
    prof = fresh.get("profile")
    if not isinstance(prof, dict) or prof.get("enabled") is not True:
        fail("profile block missing or disabled")
    if prof.get("p99_file"):
        if prof["p99_file"] not in {r["name"] for r in fresh["rows"]}:
            fail("profile.p99_file %r is not a benchmark row" % prof["p99_file"])
        dq = prof.get("dominant_query")
        if isinstance(dq, dict):
            check_query("profile.dominant_query", dq)
    attributed = 0
    for row in fresh["rows"]:
        if "top_query" not in row:
            fail("%s: row lacks the top_query field" % row["name"])
        q = row["top_query"]
        if q is None:
            continue
        check_query(row["name"], q)
        attributed += 1
        # test3.ll is the corpus's heavy tail: its dominant query must show
        # actual solver effort, or the attribution is not measuring.
        if row["name"] == "test3.ll" and q["cost"] == 0:
            fail("test3.ll dominant query reports zero solver effort")
    if attributed == 0:
        fail("no row carries a top_query cost attribution")
    for row in fresh["rows"]:
        if row["name"] == "test3.ll" and row["top_query"] is None:
            fail("test3.ll (the p99 dominator) has no top_query")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_bench_json.py <fresh.json> <baseline.json>")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    if key_shape(fresh) != key_shape(base):
        fail(
            "report schema drifted from baseline:\n  fresh:    %r\n  baseline: %r"
            % (key_shape(fresh), key_shape(base))
        )

    t = fresh["totals"]
    # The hit-rate field is load-bearing for the CI trend comparison: fail
    # with a message, not a KeyError, when a report stops emitting it.
    if "cache_hit_rate" not in t:
        fail("totals missing required cache_hit_rate field")
    if not fresh["rows"]:
        fail("no benchmark rows: every corpus file was discarded")
    if t["verified"] + t["verify_skipped"] <= 0:
        fail("no verification happened at all")
    if t["verify_skipped"] <= 0:
        fail("change-tracking never skipped a function")
    # Misses count actual checkRefinement calls: they can never exceed the
    # number of established verdicts.
    if t["cache_hits"] + t["cache_misses"] != t["verified"]:
        fail(
            "cache hits (%d) + misses (%d) != verified (%d)"
            % (t["cache_hits"], t["cache_misses"], t["verified"])
        )
    if not 0.0 <= t["cache_hit_rate"] <= 1.0:
        fail("cache_hit_rate %r outside [0, 1]" % t["cache_hit_rate"])
    for row in fresh["rows"]:
        for k in ("in_process_s", "no_memo_s", "discrete_s"):
            if row[k] < 0:
                fail("%s: negative timing %s" % (row["name"], k))
        if row["speedup_vs_discrete"] <= 0:
            fail("%s: non-positive speedup" % row["name"])
    # Percentiles must be monotone in P within every latency block — a
    # p90 above the p99 (as an unclamped histogram estimator once
    # produced) means the report cannot be trusted for trend tracking.
    for name, block in sorted(fresh.get("latency", {}).items()):
        p50, p90, p99 = block["p50_s"], block["p90_s"], block["p99_s"]
        if p50 > p90 or p90 > p99:
            fail(
                "%s latency percentiles not monotone: p50 %r > p90 %r or "
                "p90 %r > p99 %r" % (name, p50, p90, p90, p99)
            )

    check_profile(fresh)

    print(
        "check_bench_json: OK (%d rows, %d verified, %d skipped, "
        "hit rate %.1f%%, avg speedup vs discrete %.2fx, vs no-memo %.2fx)"
        % (
            len(fresh["rows"]),
            t["verified"],
            t["verify_skipped"],
            100.0 * t["cache_hit_rate"],
            fresh["avg_speedup_vs_discrete"],
            fresh["avg_speedup_vs_no_memo"],
        )
    )


if __name__ == "__main__":
    main()
