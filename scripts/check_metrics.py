#!/usr/bin/env python3
"""Validate the live observability plane's endpoint payloads.

Usage: check_metrics.py <metrics.txt> [<status.json>] [<healthz.json>]

<metrics.txt> is a captured GET /metrics body (Prometheus text exposition
format 0.0.4), <status.json> a captured GET /status body, <healthz.json> a
captured GET /healthz body. The JSON files are optional; each is validated
when given.

Checks on /metrics:

  - every non-comment line is `name value` or `name{labels} value` with a
    legal Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*), legal label
    syntax, and a parseable numeric value;
  - every sample is preceded by a `# TYPE` declaration for its family
    (summaries declare the bare name and own the _sum/_count suffixes);
  - declared types are one of counter/gauge/summary and no family is
    declared twice with conflicting types;
  - the campaign meta-series exist: alive_up (== 1),
    alive_campaign_running, alive_iterations_done, alive_events_accepted;
  - summary quantile samples are ordered (0.5 <= 0.9 <= 0.99 values).

Checks on /status: the required keys exist with the right JSON types
(config, running, elapsed, done, target, workers, isolated, shards,
feedback, events, series, stats), each shard row is complete, and the
stats dump carries both volatility classes.

Checks on /healthz: healthy is a bool and stale_shards is a list.

Exits non-zero with a message on the first violation.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def fail(msg):
    print("check_metrics: FAIL: " + msg)
    sys.exit(1)


def family_of(name, types):
    """The TYPE family a sample belongs to: its own name, or — for summary
    _sum/_count children — the declared parent."""
    if name in types:
        return name
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check_metrics(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail("%s: empty exposition" % path)

    types = {}
    samples = {}  # name -> [(labels-dict, value)]
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail("%s:%d: malformed TYPE line: %r" % (path, i, line))
                name, mtype = parts[2], parts[3]
                if not NAME_RE.match(name):
                    fail("%s:%d: illegal metric name %r" % (path, i, name))
                if mtype not in VALID_TYPES:
                    fail("%s:%d: unknown metric type %r" % (path, i, mtype))
                if types.get(name, mtype) != mtype:
                    fail("%s:%d: %s re-declared as %s (was %s)"
                         % (path, i, name, mtype, types[name]))
                types[name] = mtype
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s:%d: unparseable sample line: %r" % (path, i, line))
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                if not LABEL_RE.match(pair):
                    fail("%s:%d: illegal label %r" % (path, i, pair))
                key, _, val = pair.partition("=")
                labels[key] = val.strip('"')
        try:
            value = float(m.group("value"))
        except ValueError:
            fail("%s:%d: non-numeric value %r" % (path, i, m.group("value")))
        fam = family_of(name, types)
        if fam is None:
            fail("%s:%d: sample %s has no preceding # TYPE" % (path, i, name))
        samples.setdefault(name, []).append((labels, value))

    for required in ("alive_up", "alive_campaign_running",
                     "alive_iterations_done", "alive_events_accepted"):
        if required not in samples:
            fail("%s: missing required series %s" % (path, required))
    if samples["alive_up"][0][1] != 1.0:
        fail("%s: alive_up != 1" % path)

    # Summary quantiles must be ordered per family.
    for name, mtype in types.items():
        if mtype != "summary":
            continue
        quantiles = {
            labels.get("quantile"): value
            for labels, value in samples.get(name, [])
            if "quantile" in labels
        }
        if quantiles:
            chain = [quantiles.get(q) for q in ("0.5", "0.9", "0.99")]
            if None in chain:
                fail("%s: summary %s missing a quantile" % (path, name))
            if not chain[0] <= chain[1] <= chain[2]:
                fail("%s: summary %s quantiles unordered: %r"
                     % (path, name, chain))
            for suffix in ("_sum", "_count"):
                if name + suffix not in samples:
                    fail("%s: summary %s missing %s" % (path, name, suffix))

    return len(samples), len(types)


def check_status(path):
    with open(path) as f:
        s = json.load(f)

    schema = {
        "running": bool,
        "elapsed": (int, float),
        "done": int,
        "target": int,
        "workers": int,
        "isolated": bool,
        "shards": list,
        "feedback": dict,
        "events": dict,
        "series": dict,
        "stats": dict,
    }
    if "config" not in s:
        fail("%s: missing status.config" % path)
    if s["config"] is not None and not isinstance(s["config"], dict):
        fail("%s: status.config must be an object or null" % path)
    for key, want in schema.items():
        if key not in s:
            fail("%s: missing status.%s" % (path, key))
        if not isinstance(s[key], want):
            fail("%s: status.%s has type %s" % (path, key, type(s[key]).__name__))

    for shard in s["shards"]:
        for key in ("index", "lo", "hi", "done", "stage_nanos",
                    "trace_dropped_events", "live_registry"):
            if key not in shard:
                fail("%s: shard row missing %r: %r" % (path, key, shard))
        for stage in ("mutate", "optimize", "verify", "overhead"):
            if stage not in shard["stage_nanos"]:
                fail("%s: shard stage_nanos missing %r" % (path, stage))

    fb = s["feedback"]
    for key in ("enabled", "epochs", "bits_covered", "weights"):
        if key not in fb:
            fail("%s: feedback missing %r" % (path, key))

    ev = s["events"]
    for key in ("accepted", "dropped", "capacity", "stream_clients"):
        if not isinstance(ev.get(key), int) or ev[key] < 0:
            fail("%s: events.%s missing or not a non-negative int" % (path, key))

    se = s["series"]
    for key in ("interval", "capacity", "size"):
        if key not in se:
            fail("%s: series missing %r" % (path, key))
    if se["size"] > se["capacity"]:
        fail("%s: series.size (%d) exceeds capacity (%d)"
             % (path, se["size"], se["capacity"]))

    for cls in ("deterministic", "volatile"):
        if cls not in s["stats"]:
            fail("%s: stats missing %r class" % (path, cls))
        for section in ("counters", "gauges"):
            if section not in s["stats"][cls]:
                fail("%s: stats.%s missing %r" % (path, cls, section))

    return s["done"], len(s["shards"])


def check_healthz(path):
    with open(path) as f:
        h = json.load(f)
    if not isinstance(h.get("healthy"), bool):
        fail("%s: healthy missing or not a bool" % path)
    if not isinstance(h.get("stale_shards"), list):
        fail("%s: stale_shards missing or not a list" % path)
    return h["healthy"]


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 4:
        fail("usage: check_metrics.py <metrics.txt> [<status.json>] [<healthz.json>]")

    nsamples, ntypes = check_metrics(sys.argv[1])
    msg = "%d series across %d families" % (nsamples, ntypes)
    if len(sys.argv) >= 3:
        done, shards = check_status(sys.argv[2])
        msg += "; status: %d done, %d live shards" % (done, shards)
    if len(sys.argv) == 4:
        msg += "; healthy: %s" % check_healthz(sys.argv[3])
    print("check_metrics: OK (%s)" % msg)


if __name__ == "__main__":
    main()
