#!/usr/bin/env python3
"""Validate the live observability plane's endpoint payloads.

Usage: check_metrics.py <metrics.txt> [<status.json>] [<healthz.json>]
                        [<profile.json>] [<flamegraph.json>] [<series.json>]

<metrics.txt> is a captured GET /metrics body (Prometheus text exposition
format 0.0.4); the rest are captured JSON bodies of the named endpoints.
Everything past <metrics.txt> is optional and positional; pass "-" to
skip a slot.

Checks on /metrics:

  - every non-comment line is `name value` or `name{labels} value` with a
    legal Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*), legal label
    syntax, and a parseable numeric value;
  - every sample is preceded by a `# TYPE` declaration for its family
    (summaries declare the bare name and own the _sum/_count suffixes;
    histograms additionally own _bucket);
  - declared types are one of counter/gauge/summary/histogram and no
    family is declared twice with conflicting types;
  - the campaign meta-series exist: alive_up (== 1),
    alive_campaign_running, alive_iterations_done, alive_events_accepted;
  - summary quantile samples are ordered (0.5 <= 0.9 <= 0.99 values);
  - histogram _bucket samples carry an le label, are cumulative
    (non-decreasing in le order), end with an le="+Inf" bucket, and the
    +Inf count equals the family's _count.

Checks on /status: the required keys exist with the right JSON types
(config, running, elapsed, done, target, workers, isolated, degraded,
fault_injection, shards, feedback, events, series, stats), each shard
row is complete, and the stats dump carries both volatility classes.

Checks on /healthz: healthy and degraded are bools, stale_shards is a
list, and a degraded campaign never reports healthy.

Checks on /profile.json: enabled is a bool; when true, the top-K query
table rows are internally consistent (cost == decisions + propagations +
conflicts, dense ranks) and the volatile block carries sampling and
cache-shard data with non-negative counters.

Checks on /flamegraph.json: interval_ms/samples are non-negative numbers
and every stack row is a non-empty semicolon-joined frame string with a
positive count (the collapsed-stack format flamegraph.pl consumes).

Checks on /series (the standalone endpoint, not the /status summary):
interval/capacity/size invariants plus every sample row carrying t, done
and a counters object.

Exits non-zero with a message on the first violation.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def fail(msg):
    print("check_metrics: FAIL: " + msg)
    sys.exit(1)


def family_of(name, types):
    """The TYPE family a sample belongs to: its own name, or — for summary
    and histogram _sum/_count/_bucket children — the declared parent."""
    if name in types:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check_metrics(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail("%s: empty exposition" % path)

    types = {}
    samples = {}  # name -> [(labels-dict, value)]
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail("%s:%d: malformed TYPE line: %r" % (path, i, line))
                name, mtype = parts[2], parts[3]
                if not NAME_RE.match(name):
                    fail("%s:%d: illegal metric name %r" % (path, i, name))
                if mtype not in VALID_TYPES:
                    fail("%s:%d: unknown metric type %r" % (path, i, mtype))
                if types.get(name, mtype) != mtype:
                    fail("%s:%d: %s re-declared as %s (was %s)"
                         % (path, i, name, mtype, types[name]))
                types[name] = mtype
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s:%d: unparseable sample line: %r" % (path, i, line))
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                if not LABEL_RE.match(pair):
                    fail("%s:%d: illegal label %r" % (path, i, pair))
                key, _, val = pair.partition("=")
                labels[key] = val.strip('"')
        try:
            value = float(m.group("value"))
        except ValueError:
            fail("%s:%d: non-numeric value %r" % (path, i, m.group("value")))
        fam = family_of(name, types)
        if fam is None:
            fail("%s:%d: sample %s has no preceding # TYPE" % (path, i, name))
        samples.setdefault(name, []).append((labels, value))

    for required in ("alive_up", "alive_campaign_running",
                     "alive_iterations_done", "alive_events_accepted"):
        if required not in samples:
            fail("%s: missing required series %s" % (path, required))
    if samples["alive_up"][0][1] != 1.0:
        fail("%s: alive_up != 1" % path)

    # Summary quantiles must be ordered per family.
    for name, mtype in types.items():
        if mtype != "summary":
            continue
        quantiles = {
            labels.get("quantile"): value
            for labels, value in samples.get(name, [])
            if "quantile" in labels
        }
        if quantiles:
            chain = [quantiles.get(q) for q in ("0.5", "0.9", "0.99")]
            if None in chain:
                fail("%s: summary %s missing a quantile" % (path, name))
            if not chain[0] <= chain[1] <= chain[2]:
                fail("%s: summary %s quantiles unordered: %r"
                     % (path, name, chain))
            for suffix in ("_sum", "_count"):
                if name + suffix not in samples:
                    fail("%s: summary %s missing %s" % (path, name, suffix))

    # Histogram buckets must be cumulative, le-labelled, and +Inf-capped.
    for name, mtype in types.items():
        if mtype != "histogram":
            continue
        buckets = samples.get(name + "_bucket", [])
        if not buckets:
            fail("%s: histogram %s has no _bucket samples" % (path, name))
        prev = -1.0
        inf = None
        for labels, value in buckets:  # emission order is le-ascending
            if "le" not in labels:
                fail("%s: histogram %s bucket without le label" % (path, name))
            if value < prev:
                fail("%s: histogram %s buckets not cumulative at le=%s"
                     % (path, name, labels["le"]))
            prev = value
            if labels["le"] == "+Inf":
                inf = value
        if inf is None:
            fail("%s: histogram %s missing le=\"+Inf\" bucket" % (path, name))
        counts = samples.get(name + "_count")
        if not counts:
            fail("%s: histogram %s missing _count" % (path, name))
        if counts[0][1] != inf:
            fail("%s: histogram %s +Inf bucket (%g) != _count (%g)"
                 % (path, name, inf, counts[0][1]))
        if name + "_sum" not in samples:
            fail("%s: histogram %s missing _sum" % (path, name))

    return len(samples), len(types)


def check_status(path):
    with open(path) as f:
        s = json.load(f)

    schema = {
        "running": bool,
        "elapsed": (int, float),
        "done": int,
        "target": int,
        "workers": int,
        "isolated": bool,
        "degraded": bool,
        "fault_injection": dict,
        "shards": list,
        "feedback": dict,
        "events": dict,
        "series": dict,
        "stats": dict,
    }
    if "config" not in s:
        fail("%s: missing status.config" % path)
    if s["config"] is not None and not isinstance(s["config"], dict):
        fail("%s: status.config must be an object or null" % path)
    for key, want in schema.items():
        if key not in s:
            fail("%s: missing status.%s" % (path, key))
        if not isinstance(s[key], want):
            fail("%s: status.%s has type %s" % (path, key, type(s[key]).__name__))

    for shard in s["shards"]:
        for key in ("index", "lo", "hi", "done", "stage_nanos",
                    "trace_dropped_events", "live_registry"):
            if key not in shard:
                fail("%s: shard row missing %r: %r" % (path, key, shard))
        for stage in ("mutate", "optimize", "verify", "overhead"):
            if stage not in shard["stage_nanos"]:
                fail("%s: shard stage_nanos missing %r" % (path, stage))

    fb = s["feedback"]
    for key in ("enabled", "epochs", "bits_covered", "weights"):
        if key not in fb:
            fail("%s: feedback missing %r" % (path, key))

    ev = s["events"]
    for key in ("accepted", "dropped", "capacity", "stream_clients"):
        if not isinstance(ev.get(key), int) or ev[key] < 0:
            fail("%s: events.%s missing or not a non-negative int" % (path, key))

    fi = s["fault_injection"]
    if not isinstance(fi.get("armed"), bool):
        fail("%s: fault_injection.armed missing or not a bool" % path)
    for pt in fi.get("points", []):
        for key in ("calls", "triggers"):
            if not isinstance(pt.get(key), int) or pt[key] < 0:
                fail("%s: fault point %r field %s not a non-negative int"
                     % (path, pt.get("point"), key))

    se = s["series"]
    for key in ("interval", "capacity", "size"):
        if key not in se:
            fail("%s: series missing %r" % (path, key))
    if se["size"] > se["capacity"]:
        fail("%s: series.size (%d) exceeds capacity (%d)"
             % (path, se["size"], se["capacity"]))

    for cls in ("deterministic", "volatile"):
        if cls not in s["stats"]:
            fail("%s: stats missing %r class" % (path, cls))
        for section in ("counters", "gauges"):
            if section not in s["stats"][cls]:
                fail("%s: stats.%s missing %r" % (path, cls, section))

    return s["done"], len(s["shards"])


def check_healthz(path):
    with open(path) as f:
        h = json.load(f)
    if not isinstance(h.get("healthy"), bool):
        fail("%s: healthy missing or not a bool" % path)
    if not isinstance(h.get("stale_shards"), list):
        fail("%s: stale_shards missing or not a list" % path)
    if not isinstance(h.get("degraded"), bool):
        fail("%s: degraded missing or not a bool" % path)
    if h["degraded"] and h["healthy"]:
        fail("%s: degraded campaign cannot report healthy" % path)
    return h["healthy"]


def check_stacks(path, where, stacks):
    """Collapsed-stack rows: "frame;frame;..." strings with positive
    counts — the exact format flamegraph.pl folds."""
    if not isinstance(stacks, list):
        fail("%s: %s.stacks missing or not a list" % (path, where))
    for row in stacks:
        stack = row.get("stack")
        if not isinstance(stack, str) or not stack:
            fail("%s: %s stack row without a stack string: %r" % (path, where, row))
        if any(not frame for frame in stack.split(";")):
            fail("%s: %s stack %r has an empty frame" % (path, where, stack))
        if not isinstance(row.get("count"), int) or row["count"] <= 0:
            fail("%s: %s stack %r lacks a positive count" % (path, where, stack))


def check_profile_json(path):
    with open(path) as f:
        p = json.load(f)
    if not isinstance(p.get("enabled"), bool):
        fail("%s: enabled missing or not a bool" % path)
    if not p["enabled"]:
        return 0
    if not isinstance(p.get("topk"), int) or p["topk"] <= 0:
        fail("%s: topk missing or not a positive int" % path)
    queries = p.get("queries")
    if not isinstance(queries, list) or len(queries) > p["topk"]:
        fail("%s: queries missing or longer than topk" % path)
    for i, q in enumerate(queries):
        if q.get("rank") != i + 1:
            fail("%s: query ranks not dense from 1" % path)
        for key in ("cost", "decisions", "propagations", "conflicts", "count"):
            if not isinstance(q.get(key), int) or q[key] < 0:
                fail("%s: query %d field %s not a non-negative int" % (path, i, key))
        if q["cost"] != q["decisions"] + q["propagations"] + q["conflicts"]:
            fail("%s: query %d cost != decisions+propagations+conflicts" % (path, i))
    vol = p.get("volatile")
    if not isinstance(vol, dict):
        fail("%s: volatile block missing" % path)
    samp = vol.get("sampling", {})
    if not isinstance(samp.get("samples"), int) or samp["samples"] < 0:
        fail("%s: sampling.samples not a non-negative int" % path)
    check_stacks(path, "sampling", samp.get("stacks", []))
    for sh in vol.get("cache_shards", []):
        for key in ("hits", "misses", "evictions", "inserts", "lock_waits"):
            if not isinstance(sh.get(key), int) or sh[key] < 0:
                fail("%s: cache shard field %s not a non-negative int" % (path, key))
    return len(queries)


def check_flamegraph(path):
    with open(path) as f:
        fg = json.load(f)
    for key in ("interval_ms", "samples"):
        if not isinstance(fg.get(key), (int, float)) or fg[key] < 0:
            fail("%s: %s missing or negative" % (path, key))
    check_stacks(path, "flamegraph", fg.get("stacks"))
    total = sum(row["count"] for row in fg["stacks"])
    if total > fg["samples"]:
        fail("%s: folded counts (%d) exceed samples taken (%d)"
             % (path, total, fg["samples"]))
    return len(fg["stacks"])


def check_series(path):
    with open(path) as f:
        se = json.load(f)
    if not isinstance(se.get("interval"), (int, float)) or se["interval"] < 0:
        fail("%s: interval missing or negative" % path)
    if not isinstance(se.get("capacity"), int) or se["capacity"] <= 0:
        fail("%s: capacity missing or not positive" % path)
    points = se.get("points")
    if not isinstance(points, list):
        fail("%s: points missing or not a list" % path)
    if len(points) > se["capacity"]:
        fail("%s: %d points exceed ring capacity %d"
             % (path, len(points), se["capacity"]))
    prev_t = -1.0
    for row in points:
        if not isinstance(row.get("t"), (int, float)) or row["t"] < prev_t:
            fail("%s: sample timestamps missing or not monotone" % path)
        prev_t = row["t"]
        if not isinstance(row.get("done"), int) or row["done"] < 0:
            fail("%s: sample done missing or negative" % path)
        if not isinstance(row.get("counters"), dict):
            fail("%s: sample counters missing" % path)
    return len(points)


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 7:
        fail("usage: check_metrics.py <metrics.txt> [<status.json>] "
             "[<healthz.json>] [<profile.json>] [<flamegraph.json>] "
             "[<series.json>]")

    args = sys.argv[1:] + [None] * (6 - len(sys.argv) + 1)
    args = [None if a == "-" else a for a in args]

    nsamples, ntypes = check_metrics(args[0])
    msg = "%d series across %d families" % (nsamples, ntypes)
    if args[1]:
        done, shards = check_status(args[1])
        msg += "; status: %d done, %d live shards" % (done, shards)
    if args[2]:
        msg += "; healthy: %s" % check_healthz(args[2])
    if args[3]:
        msg += "; profile: %d tracked queries" % check_profile_json(args[3])
    if args[4]:
        msg += "; flamegraph: %d stacks" % check_flamegraph(args[4])
    if args[5]:
        msg += "; series: %d points" % check_series(args[5])
    print("check_metrics: OK (%s)" % msg)


if __name__ == "__main__":
    main()
