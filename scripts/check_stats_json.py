#!/usr/bin/env python3
"""Validate an alive-mutate -stats-json run report.

Usage: check_stats_json.py <report.json> [<other.json>]

Checks the schema (version, required sections) and the internal
invariants the telemetry subsystem guarantees:

  - per-family applied counts sum to the summary's mutations_applied;
  - per-verdict counts sum to the summary's verified;
  - cache hits + misses == verified (when the cache is enabled);
  - every histogram's count equals the sum of its bucket counts and its
    percentiles are ordered (p50 <= p90 <= p99);
  - the stage-time-sum invariant: mutate + optimize + verify + overhead
    matches the summed worker wall time within tolerance;
  - the v3 survivability block is present and sane (timeouts is a
    non-negative integer; interrupted is a bool) and the config echoes
    the corpus file counts;
  - the v4 feedback block is present, its enabled flag is a bool, and —
    when enabled — the epoch/coverage counters are non-negative ints,
    every rule row's iteration count is positive, bits_covered matches
    the feedback counters in stats, and every family weight lies in the
    schedule's [1, 16] clamp range;
  - the v5 trace block is present in the volatile section, its
    dropped_events total is a non-negative int, and it equals the sum of
    the per-track dropped_events;
  - the v7 degradation ladder: survivability carries a bool degraded
    flag, a non-negative fanout child count, and a lost_shards list whose
    rows name a shard index and a non-negative lost-iteration count (a
    non-empty list forces degraded == true); the volatile fault_injection
    block carries a bool armed flag and, per armed point, call/trigger
    counters with triggers <= calls;
  - the v6 profile blocks are present in BOTH sections with a bool
    enabled flag; when enabled, every deterministic top-K query row is
    internally consistent (cost == decisions + propagations + conflicts,
    count positive, rank dense from 1) and the rows are sorted by the
    documented total order (cost desc, then key asc), while the volatile
    side carries the sampling/cache-shard data with non-negative
    counters.

With a second report, additionally asserts the two "deterministic"
subtrees are equal — the -j4 == -j1 guarantee (run the two reports with
different -j over the same corpus/seed range).

Exits non-zero with a message on the first violation.
"""

import json
import sys

SCHEMA_VERSION = 7


def fail(msg):
    print("check_stats_json: FAIL: " + msg)
    sys.exit(1)


def check_report(path):
    with open(path) as f:
        r = json.load(f)

    if r.get("schema_version") != SCHEMA_VERSION:
        fail("%s: schema_version %r != %d" % (path, r.get("schema_version"), SCHEMA_VERSION))
    for key in ("tool", "deterministic", "volatile"):
        if key not in r:
            fail("%s: missing top-level %r" % (path, key))

    det = r["deterministic"]
    vol = r["volatile"]
    for key in ("config", "summary", "per_pass", "per_family", "tv_verdicts", "feedback", "profile", "stats", "bugs"):
        if key not in det:
            fail("%s: missing deterministic.%r" % (path, key))
    for key in ("jobs", "stage_seconds", "cache", "survivability", "trace", "profile", "stats"):
        if key not in vol:
            fail("%s: missing volatile.%r" % (path, key))

    cfg = det["config"]
    for key in ("corpus_files", "corpus_skipped"):
        if not isinstance(cfg.get(key), int) or cfg[key] < 0:
            fail("%s: config.%s missing or not a non-negative int" % (path, key))

    fb = det["feedback"]
    if not isinstance(fb.get("enabled"), bool):
        fail("%s: feedback.enabled missing or not a bool" % path)
    if fb["enabled"]:
        for key in ("epoch_length", "epochs", "bits_covered", "functions_tracked", "energy_skips"):
            if not isinstance(fb.get(key), int) or fb[key] < 0:
                fail("%s: feedback.%s missing or not a non-negative int" % (path, key))
        if fb["epoch_length"] == 0:
            fail("%s: feedback.epoch_length must be positive" % path)
        for row in fb.get("rules", []):
            if not isinstance(row.get("rule"), str) or row.get("iterations", 0) <= 0:
                fail("%s: malformed feedback rule row %r" % (path, row))
        counters = det["stats"].get("counters", {})
        if fb["bits_covered"] != counters.get("feedback.bits_covered", fb["bits_covered"]):
            fail("%s: feedback.bits_covered disagrees with stats counter" % path)
        for family, weight in fb.get("weights", {}).items():
            if not isinstance(weight, int) or not 1 <= weight <= 16:
                fail("%s: feedback weight for %s outside [1, 16]: %r" % (path, family, weight))

    trace = vol["trace"]
    if not isinstance(trace.get("dropped_events"), int) or trace["dropped_events"] < 0:
        fail("%s: trace.dropped_events missing or not a non-negative int" % path)
    track_sum = sum(t.get("dropped_events", 0) for t in trace.get("tracks", []))
    if track_sum != trace["dropped_events"]:
        fail(
            "%s: trace.dropped_events (%d) != per-track sum (%d)"
            % (path, trace["dropped_events"], track_sum)
        )

    prof = det["profile"]
    vprof = vol["profile"]
    for where, block in (("deterministic", prof), ("volatile", vprof)):
        if not isinstance(block.get("enabled"), bool):
            fail("%s: %s.profile.enabled missing or not a bool" % (path, where))
    if prof["enabled"] != vprof["enabled"]:
        fail("%s: profile.enabled disagrees between sections" % path)
    if prof["enabled"]:
        if not isinstance(prof.get("topk"), int) or prof["topk"] <= 0:
            fail("%s: profile.topk missing or not a positive int" % path)
        queries = prof.get("queries")
        if not isinstance(queries, list):
            fail("%s: profile.queries missing" % path)
        if len(queries) > prof["topk"]:
            fail("%s: %d profile queries exceed topk %d" % (path, len(queries), prof["topk"]))
        prev = None
        for i, q in enumerate(queries):
            for key in ("cost", "decisions", "propagations", "conflicts",
                        "learned_clauses", "learned_literals", "restarts",
                        "count", "first_seed"):
                if not isinstance(q.get(key), int) or q[key] < 0:
                    fail("%s: profile query %d field %s not a non-negative int" % (path, i, key))
            if q["rank"] != i + 1:
                fail("%s: profile query ranks not dense from 1" % path)
            if q["count"] == 0:
                fail("%s: profile query %d seen zero times" % (path, i))
            if q["cost"] != q["decisions"] + q["propagations"] + q["conflicts"]:
                fail(
                    "%s: profile query %d cost %d != decisions+propagations+conflicts"
                    % (path, i, q["cost"])
                )
            # The documented total order: cost desc, key-hash asc (the
            # merge-determinism proof depends on this being total).
            this = (-q["cost"], q["key"])
            if prev is not None and this < prev:
                fail("%s: profile queries not sorted by (cost desc, key asc)" % path)
            prev = this
        data = vprof.get("data")
        if not isinstance(data, dict):
            fail("%s: volatile.profile.data missing" % path)
        samp = data.get("sampling", {})
        if not isinstance(samp.get("samples"), int) or samp["samples"] < 0:
            fail("%s: profile sampling.samples not a non-negative int" % path)
        for st in samp.get("stacks", []):
            if not isinstance(st.get("stack"), str) or st.get("count", 0) <= 0:
                fail("%s: malformed collapsed stack row %r" % (path, st))
        for sh in data.get("cache_shards", []):
            for key in ("hits", "misses", "evictions", "inserts", "lock_waits"):
                if not isinstance(sh.get(key), int) or sh[key] < 0:
                    fail("%s: cache shard field %s not a non-negative int" % (path, key))

    surv = vol["survivability"]
    if not isinstance(surv.get("timeouts"), int) or surv["timeouts"] < 0:
        fail("%s: survivability.timeouts missing or not a non-negative int" % path)
    if not isinstance(surv.get("interrupted"), bool):
        fail("%s: survivability.interrupted missing or not a bool" % path)
    if not isinstance(surv.get("degraded"), bool):
        fail("%s: survivability.degraded missing or not a bool" % path)
    if not isinstance(surv.get("fanout"), int) or surv["fanout"] < 0:
        fail("%s: survivability.fanout missing or not a non-negative int" % path)
    lost = surv.get("lost_shards")
    if not isinstance(lost, list):
        fail("%s: survivability.lost_shards missing or not a list" % path)
    for row in lost:
        if not isinstance(row.get("shard"), int) or row["shard"] < 0:
            fail("%s: lost_shards row missing non-negative 'shard': %r" % (path, row))
        if not isinstance(row.get("lost_iterations"), int) or row["lost_iterations"] < 0:
            fail(
                "%s: lost_shards row missing non-negative 'lost_iterations': %r"
                % (path, row)
            )
    if lost and not surv["degraded"]:
        fail("%s: lost_shards non-empty but survivability.degraded is false" % path)

    faults = vol.get("fault_injection")
    if not isinstance(faults, dict) or not isinstance(faults.get("armed"), bool):
        fail("%s: volatile.fault_injection missing or armed not a bool" % path)
    points = faults.get("points", [])
    if faults["armed"] and not isinstance(points, list):
        fail("%s: fault_injection.points missing" % path)
    for pt in points:
        for key in ("calls", "triggers"):
            if not isinstance(pt.get(key), int) or pt[key] < 0:
                fail("%s: fault point %r field %s not a non-negative int" % (path, pt.get("point"), key))
        if pt["triggers"] > pt["calls"]:
            fail(
                "%s: fault point %r fired %d times in only %d calls"
                % (path, pt.get("point"), pt["triggers"], pt["calls"])
            )

    s = det["summary"]

    fam_applied = sum(row["applied"] for row in det["per_family"])
    if fam_applied != s["mutations_applied"]:
        fail(
            "%s: per_family applied sum (%d) != mutations_applied (%d)"
            % (path, fam_applied, s["mutations_applied"])
        )

    verdicts = sum(det["tv_verdicts"].values())
    if verdicts != s["verified"]:
        fail(
            "%s: tv_verdicts sum (%d) != verified (%d)"
            % (path, verdicts, s["verified"])
        )

    for row in det["per_pass"]:
        if row["changed"] > row["invocations"]:
            fail(
                "%s: pass %s changed (%d) > invocations (%d)"
                % (path, row["pass"], row["changed"], row["invocations"])
            )

    bugs = det["bugs"]
    if bugs["total"] != len(bugs["records"]):
        fail("%s: bugs.total (%d) != len(records)" % (path, bugs["total"]))
    if bugs["miscompiles"] + bugs["crashes"] != bugs["total"]:
        fail("%s: miscompiles + crashes != bugs.total" % path)
    for rec in bugs["records"]:
        if "bundle" not in rec:
            fail("%s: bug record for seed %s missing 'bundle'" % (path, rec.get("seed")))
    linked = sum(1 for rec in bugs["records"] if rec["bundle"])
    if linked and s["bundles"] < linked:
        fail(
            "%s: %d bug records link bundles but summary counts only %d written"
            % (path, linked, s["bundles"])
        )

    cache = vol["cache"]
    lookups = cache["hits"] + cache["misses"]
    if lookups > 0 and lookups != s["verified"]:
        fail(
            "%s: cache hits (%d) + misses (%d) != verified (%d)"
            % (path, cache["hits"], cache["misses"], s["verified"])
        )

    for name, h in vol["stats"]["histograms"].items():
        bucket_sum = sum(b["count"] for b in h["buckets"])
        if bucket_sum != h["count"]:
            fail(
                "%s: histogram %s count (%d) != bucket sum (%d)"
                % (path, name, h["count"], bucket_sum)
            )
        if not h["p50_s"] <= h["p90_s"] <= h["p99_s"]:
            fail(
                "%s: histogram %s percentiles unordered: p50=%g p90=%g p99=%g"
                % (path, name, h["p50_s"], h["p90_s"], h["p99_s"])
            )
        if h["count"] and not h["min_s"] <= h["p50_s"] <= h["max_s"]:
            fail("%s: histogram %s p50 outside [min, max]" % (path, name))

    ss = vol["stage_seconds"]
    staged = ss["mutate"] + ss["optimize"] + ss["verify"] + ss["overhead"]
    worker = ss["worker_total"]
    # Absolute floor for near-instant smoke runs, relative bound otherwise.
    tol = max(0.05 * worker, 0.002)
    if abs(staged - worker) > tol:
        fail(
            "%s: stage-time sum %.6fs deviates from worker_total %.6fs by "
            "more than %.6fs" % (path, staged, worker, tol)
        )

    return r


def main():
    if len(sys.argv) not in (2, 3):
        fail("usage: check_stats_json.py <report.json> [<other.json>]")

    first = check_report(sys.argv[1])
    msg = "%d mutants, %d verified, %d bugs" % (
        first["deterministic"]["summary"]["mutants"],
        first["deterministic"]["summary"]["verified"],
        first["deterministic"]["bugs"]["total"],
    )

    if len(sys.argv) == 3:
        second = check_report(sys.argv[2])
        if first["deterministic"] != second["deterministic"]:
            d1, d2 = first["deterministic"], second["deterministic"]
            diff = [k for k in d1 if d1[k] != d2.get(k)]
            fail(
                "deterministic sections differ between %s (-j=%s) and %s "
                "(-j=%s): %s"
                % (
                    sys.argv[1],
                    first["volatile"]["jobs"],
                    sys.argv[2],
                    second["volatile"]["jobs"],
                    ", ".join(diff) or "key sets",
                )
            )
        msg += "; deterministic sections identical (jobs %s vs %s)" % (
            first["volatile"]["jobs"],
            second["volatile"]["jobs"],
        )

    print("check_stats_json: OK (%s)" % msg)


if __name__ == "__main__":
    main()
