file(REMOVE_RECURSE
  "libamr_core.a"
)
