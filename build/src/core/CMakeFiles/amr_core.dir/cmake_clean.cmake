file(REMOVE_RECURSE
  "CMakeFiles/amr_core.dir/BlindMutator.cpp.o"
  "CMakeFiles/amr_core.dir/BlindMutator.cpp.o.d"
  "CMakeFiles/amr_core.dir/FunctionInfo.cpp.o"
  "CMakeFiles/amr_core.dir/FunctionInfo.cpp.o.d"
  "CMakeFiles/amr_core.dir/FuzzerLoop.cpp.o"
  "CMakeFiles/amr_core.dir/FuzzerLoop.cpp.o.d"
  "CMakeFiles/amr_core.dir/Mutator.cpp.o"
  "CMakeFiles/amr_core.dir/Mutator.cpp.o.d"
  "CMakeFiles/amr_core.dir/ValueSource.cpp.o"
  "CMakeFiles/amr_core.dir/ValueSource.cpp.o.d"
  "libamr_core.a"
  "libamr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
