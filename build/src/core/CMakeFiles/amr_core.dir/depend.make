# Empty dependencies file for amr_core.
# This may be replaced when dependencies are built.
