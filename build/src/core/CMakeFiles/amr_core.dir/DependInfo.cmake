
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BlindMutator.cpp" "src/core/CMakeFiles/amr_core.dir/BlindMutator.cpp.o" "gcc" "src/core/CMakeFiles/amr_core.dir/BlindMutator.cpp.o.d"
  "/root/repo/src/core/FunctionInfo.cpp" "src/core/CMakeFiles/amr_core.dir/FunctionInfo.cpp.o" "gcc" "src/core/CMakeFiles/amr_core.dir/FunctionInfo.cpp.o.d"
  "/root/repo/src/core/FuzzerLoop.cpp" "src/core/CMakeFiles/amr_core.dir/FuzzerLoop.cpp.o" "gcc" "src/core/CMakeFiles/amr_core.dir/FuzzerLoop.cpp.o.d"
  "/root/repo/src/core/Mutator.cpp" "src/core/CMakeFiles/amr_core.dir/Mutator.cpp.o" "gcc" "src/core/CMakeFiles/amr_core.dir/Mutator.cpp.o.d"
  "/root/repo/src/core/ValueSource.cpp" "src/core/CMakeFiles/amr_core.dir/ValueSource.cpp.o" "gcc" "src/core/CMakeFiles/amr_core.dir/ValueSource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/amr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/amr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/amr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/amr_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/amr_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/amr_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
