file(REMOVE_RECURSE
  "CMakeFiles/amr_smt.dir/BitBlaster.cpp.o"
  "CMakeFiles/amr_smt.dir/BitBlaster.cpp.o.d"
  "CMakeFiles/amr_smt.dir/SatSolver.cpp.o"
  "CMakeFiles/amr_smt.dir/SatSolver.cpp.o.d"
  "CMakeFiles/amr_smt.dir/Term.cpp.o"
  "CMakeFiles/amr_smt.dir/Term.cpp.o.d"
  "libamr_smt.a"
  "libamr_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
