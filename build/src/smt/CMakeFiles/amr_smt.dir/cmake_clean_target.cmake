file(REMOVE_RECURSE
  "libamr_smt.a"
)
