# Empty compiler generated dependencies file for amr_smt.
# This may be replaced when dependencies are built.
