file(REMOVE_RECURSE
  "CMakeFiles/amut-opt.dir/amut-opt.cpp.o"
  "CMakeFiles/amut-opt.dir/amut-opt.cpp.o.d"
  "amut-opt"
  "amut-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amut-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
