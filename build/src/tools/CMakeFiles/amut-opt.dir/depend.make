# Empty dependencies file for amut-opt.
# This may be replaced when dependencies are built.
