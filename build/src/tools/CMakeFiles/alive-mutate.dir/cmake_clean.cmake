file(REMOVE_RECURSE
  "CMakeFiles/alive-mutate.dir/alive-mutate.cpp.o"
  "CMakeFiles/alive-mutate.dir/alive-mutate.cpp.o.d"
  "alive-mutate"
  "alive-mutate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alive-mutate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
