# Empty compiler generated dependencies file for alive-mutate.
# This may be replaced when dependencies are built.
