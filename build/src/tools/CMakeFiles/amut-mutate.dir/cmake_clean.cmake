file(REMOVE_RECURSE
  "CMakeFiles/amut-mutate.dir/amut-mutate.cpp.o"
  "CMakeFiles/amut-mutate.dir/amut-mutate.cpp.o.d"
  "amut-mutate"
  "amut-mutate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amut-mutate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
