# Empty compiler generated dependencies file for amut-mutate.
# This may be replaced when dependencies are built.
