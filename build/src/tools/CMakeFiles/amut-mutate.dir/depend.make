# Empty dependencies file for amut-mutate.
# This may be replaced when dependencies are built.
