# Empty dependencies file for amut-tv.
# This may be replaced when dependencies are built.
