file(REMOVE_RECURSE
  "CMakeFiles/amut-tv.dir/amut-tv.cpp.o"
  "CMakeFiles/amut-tv.dir/amut-tv.cpp.o.d"
  "amut-tv"
  "amut-tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amut-tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
