file(REMOVE_RECURSE
  "CMakeFiles/amr_opt.dir/BugInjection.cpp.o"
  "CMakeFiles/amr_opt.dir/BugInjection.cpp.o.d"
  "CMakeFiles/amr_opt.dir/GVN.cpp.o"
  "CMakeFiles/amr_opt.dir/GVN.cpp.o.d"
  "CMakeFiles/amr_opt.dir/InstCombine.cpp.o"
  "CMakeFiles/amr_opt.dir/InstCombine.cpp.o.d"
  "CMakeFiles/amr_opt.dir/Lowering.cpp.o"
  "CMakeFiles/amr_opt.dir/Lowering.cpp.o.d"
  "CMakeFiles/amr_opt.dir/MemoryPasses.cpp.o"
  "CMakeFiles/amr_opt.dir/MemoryPasses.cpp.o.d"
  "CMakeFiles/amr_opt.dir/OptUtils.cpp.o"
  "CMakeFiles/amr_opt.dir/OptUtils.cpp.o.d"
  "CMakeFiles/amr_opt.dir/PassManager.cpp.o"
  "CMakeFiles/amr_opt.dir/PassManager.cpp.o.d"
  "CMakeFiles/amr_opt.dir/ScalarPasses.cpp.o"
  "CMakeFiles/amr_opt.dir/ScalarPasses.cpp.o.d"
  "CMakeFiles/amr_opt.dir/VectorCombine.cpp.o"
  "CMakeFiles/amr_opt.dir/VectorCombine.cpp.o.d"
  "libamr_opt.a"
  "libamr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
