
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/BugInjection.cpp" "src/opt/CMakeFiles/amr_opt.dir/BugInjection.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/BugInjection.cpp.o.d"
  "/root/repo/src/opt/GVN.cpp" "src/opt/CMakeFiles/amr_opt.dir/GVN.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/GVN.cpp.o.d"
  "/root/repo/src/opt/InstCombine.cpp" "src/opt/CMakeFiles/amr_opt.dir/InstCombine.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/InstCombine.cpp.o.d"
  "/root/repo/src/opt/Lowering.cpp" "src/opt/CMakeFiles/amr_opt.dir/Lowering.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/Lowering.cpp.o.d"
  "/root/repo/src/opt/MemoryPasses.cpp" "src/opt/CMakeFiles/amr_opt.dir/MemoryPasses.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/MemoryPasses.cpp.o.d"
  "/root/repo/src/opt/OptUtils.cpp" "src/opt/CMakeFiles/amr_opt.dir/OptUtils.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/OptUtils.cpp.o.d"
  "/root/repo/src/opt/PassManager.cpp" "src/opt/CMakeFiles/amr_opt.dir/PassManager.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/PassManager.cpp.o.d"
  "/root/repo/src/opt/ScalarPasses.cpp" "src/opt/CMakeFiles/amr_opt.dir/ScalarPasses.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/ScalarPasses.cpp.o.d"
  "/root/repo/src/opt/VectorCombine.cpp" "src/opt/CMakeFiles/amr_opt.dir/VectorCombine.cpp.o" "gcc" "src/opt/CMakeFiles/amr_opt.dir/VectorCombine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/amr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/amr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
