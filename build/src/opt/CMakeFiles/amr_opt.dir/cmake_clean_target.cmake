file(REMOVE_RECURSE
  "libamr_opt.a"
)
