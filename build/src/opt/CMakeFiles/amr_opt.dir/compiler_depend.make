# Empty compiler generated dependencies file for amr_opt.
# This may be replaced when dependencies are built.
