file(REMOVE_RECURSE
  "CMakeFiles/amr_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/amr_corpus.dir/Corpus.cpp.o.d"
  "libamr_corpus.a"
  "libamr_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
