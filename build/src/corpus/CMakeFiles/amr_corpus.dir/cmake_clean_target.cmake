file(REMOVE_RECURSE
  "libamr_corpus.a"
)
