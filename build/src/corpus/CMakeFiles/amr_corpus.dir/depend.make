# Empty dependencies file for amr_corpus.
# This may be replaced when dependencies are built.
