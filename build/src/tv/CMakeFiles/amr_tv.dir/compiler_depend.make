# Empty compiler generated dependencies file for amr_tv.
# This may be replaced when dependencies are built.
