file(REMOVE_RECURSE
  "CMakeFiles/amr_tv.dir/FunctionEncoder.cpp.o"
  "CMakeFiles/amr_tv.dir/FunctionEncoder.cpp.o.d"
  "CMakeFiles/amr_tv.dir/RefinementChecker.cpp.o"
  "CMakeFiles/amr_tv.dir/RefinementChecker.cpp.o.d"
  "libamr_tv.a"
  "libamr_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
