file(REMOVE_RECURSE
  "libamr_tv.a"
)
