file(REMOVE_RECURSE
  "CMakeFiles/amr_parser.dir/Lexer.cpp.o"
  "CMakeFiles/amr_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/amr_parser.dir/Parser.cpp.o"
  "CMakeFiles/amr_parser.dir/Parser.cpp.o.d"
  "CMakeFiles/amr_parser.dir/Printer.cpp.o"
  "CMakeFiles/amr_parser.dir/Printer.cpp.o.d"
  "libamr_parser.a"
  "libamr_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
