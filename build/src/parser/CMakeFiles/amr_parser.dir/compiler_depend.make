# Empty compiler generated dependencies file for amr_parser.
# This may be replaced when dependencies are built.
