file(REMOVE_RECURSE
  "libamr_parser.a"
)
