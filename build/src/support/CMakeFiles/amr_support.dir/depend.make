# Empty dependencies file for amr_support.
# This may be replaced when dependencies are built.
