file(REMOVE_RECURSE
  "libamr_support.a"
)
