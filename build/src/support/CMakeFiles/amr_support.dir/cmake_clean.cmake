file(REMOVE_RECURSE
  "CMakeFiles/amr_support.dir/APInt.cpp.o"
  "CMakeFiles/amr_support.dir/APInt.cpp.o.d"
  "libamr_support.a"
  "libamr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
