file(REMOVE_RECURSE
  "libamr_analysis.a"
)
