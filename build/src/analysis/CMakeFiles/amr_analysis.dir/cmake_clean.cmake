file(REMOVE_RECURSE
  "CMakeFiles/amr_analysis.dir/DominatorTree.cpp.o"
  "CMakeFiles/amr_analysis.dir/DominatorTree.cpp.o.d"
  "CMakeFiles/amr_analysis.dir/KnownBits.cpp.o"
  "CMakeFiles/amr_analysis.dir/KnownBits.cpp.o.d"
  "CMakeFiles/amr_analysis.dir/ShuffleRanges.cpp.o"
  "CMakeFiles/amr_analysis.dir/ShuffleRanges.cpp.o.d"
  "CMakeFiles/amr_analysis.dir/Verifier.cpp.o"
  "CMakeFiles/amr_analysis.dir/Verifier.cpp.o.d"
  "libamr_analysis.a"
  "libamr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
