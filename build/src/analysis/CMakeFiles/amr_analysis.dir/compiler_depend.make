# Empty compiler generated dependencies file for amr_analysis.
# This may be replaced when dependencies are built.
