# Empty dependencies file for amr_ir.
# This may be replaced when dependencies are built.
