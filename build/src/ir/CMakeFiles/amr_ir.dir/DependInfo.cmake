
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Attributes.cpp" "src/ir/CMakeFiles/amr_ir.dir/Attributes.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Attributes.cpp.o.d"
  "/root/repo/src/ir/Clone.cpp" "src/ir/CMakeFiles/amr_ir.dir/Clone.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Clone.cpp.o.d"
  "/root/repo/src/ir/Constants.cpp" "src/ir/CMakeFiles/amr_ir.dir/Constants.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Constants.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/amr_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/ir/CMakeFiles/amr_ir.dir/Instruction.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/amr_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/ir/CMakeFiles/amr_ir.dir/Module.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Module.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/ir/CMakeFiles/amr_ir.dir/Type.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Type.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/amr_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/amr_ir.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
