file(REMOVE_RECURSE
  "CMakeFiles/amr_ir.dir/Attributes.cpp.o"
  "CMakeFiles/amr_ir.dir/Attributes.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Clone.cpp.o"
  "CMakeFiles/amr_ir.dir/Clone.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Constants.cpp.o"
  "CMakeFiles/amr_ir.dir/Constants.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Function.cpp.o"
  "CMakeFiles/amr_ir.dir/Function.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Instruction.cpp.o"
  "CMakeFiles/amr_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/amr_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Module.cpp.o"
  "CMakeFiles/amr_ir.dir/Module.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Type.cpp.o"
  "CMakeFiles/amr_ir.dir/Type.cpp.o.d"
  "CMakeFiles/amr_ir.dir/Value.cpp.o"
  "CMakeFiles/amr_ir.dir/Value.cpp.o.d"
  "libamr_ir.a"
  "libamr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
