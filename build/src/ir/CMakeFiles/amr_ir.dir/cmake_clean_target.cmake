file(REMOVE_RECURSE
  "libamr_ir.a"
)
