# Empty compiler generated dependencies file for bitblaster_test.
# This may be replaced when dependencies are built.
