file(REMOVE_RECURSE
  "CMakeFiles/bitblaster_test.dir/bitblaster_test.cpp.o"
  "CMakeFiles/bitblaster_test.dir/bitblaster_test.cpp.o.d"
  "bitblaster_test"
  "bitblaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitblaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
