file(REMOVE_RECURSE
  "CMakeFiles/mutator_test.dir/mutator_test.cpp.o"
  "CMakeFiles/mutator_test.dir/mutator_test.cpp.o.d"
  "mutator_test"
  "mutator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
