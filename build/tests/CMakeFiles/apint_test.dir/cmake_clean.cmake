file(REMOVE_RECURSE
  "CMakeFiles/apint_test.dir/apint_test.cpp.o"
  "CMakeFiles/apint_test.dir/apint_test.cpp.o.d"
  "apint_test"
  "apint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
