# Empty dependencies file for apint_test.
# This may be replaced when dependencies are built.
