# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apint_test "/root/repo/build/tests/apint_test")
set_tests_properties(apint_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bitblaster_test "/root/repo/build/tests/bitblaster_test")
set_tests_properties(bitblaster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bugs_test "/root/repo/build/tests/bugs_test")
set_tests_properties(bugs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(encoder_test "/root/repo/build/tests/encoder_test")
set_tests_properties(encoder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_test "/root/repo/build/tests/interp_test")
set_tests_properties(interp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mutator_test "/root/repo/build/tests/mutator_test")
set_tests_properties(mutator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(opt_test "/root/repo/build/tests/opt_test")
set_tests_properties(opt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parser_test "/root/repo/build/tests/parser_test")
set_tests_properties(parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sat_test "/root/repo/build/tests/sat_test")
set_tests_properties(sat_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tools_test "/root/repo/build/tests/tools_test")
set_tests_properties(tools_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tv_test "/root/repo/build/tests/tv_test")
set_tests_properties(tv_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
