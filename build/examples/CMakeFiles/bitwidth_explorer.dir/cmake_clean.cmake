file(REMOVE_RECURSE
  "CMakeFiles/bitwidth_explorer.dir/bitwidth_explorer.cpp.o"
  "CMakeFiles/bitwidth_explorer.dir/bitwidth_explorer.cpp.o.d"
  "bitwidth_explorer"
  "bitwidth_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitwidth_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
