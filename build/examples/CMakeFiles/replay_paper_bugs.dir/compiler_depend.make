# Empty compiler generated dependencies file for replay_paper_bugs.
# This may be replaced when dependencies are built.
