file(REMOVE_RECURSE
  "CMakeFiles/replay_paper_bugs.dir/replay_paper_bugs.cpp.o"
  "CMakeFiles/replay_paper_bugs.dir/replay_paper_bugs.cpp.o.d"
  "replay_paper_bugs"
  "replay_paper_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_paper_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
