# Empty compiler generated dependencies file for bench_tv.
# This may be replaced when dependencies are built.
