
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_campaign.cpp" "bench/CMakeFiles/bench_campaign.dir/bench_campaign.cpp.o" "gcc" "bench/CMakeFiles/bench_campaign.dir/bench_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/amr_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/amr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/amr_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/amr_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/amr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/amr_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/amr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
