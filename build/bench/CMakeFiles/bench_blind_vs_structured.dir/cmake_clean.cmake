file(REMOVE_RECURSE
  "CMakeFiles/bench_blind_vs_structured.dir/bench_blind_vs_structured.cpp.o"
  "CMakeFiles/bench_blind_vs_structured.dir/bench_blind_vs_structured.cpp.o.d"
  "bench_blind_vs_structured"
  "bench_blind_vs_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blind_vs_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
