# Empty compiler generated dependencies file for bench_blind_vs_structured.
# This may be replaced when dependencies are built.
