file(REMOVE_RECURSE
  "CMakeFiles/bench_mutators.dir/bench_mutators.cpp.o"
  "CMakeFiles/bench_mutators.dir/bench_mutators.cpp.o.d"
  "bench_mutators"
  "bench_mutators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
