# Empty dependencies file for bench_mutators.
# This may be replaced when dependencies are built.
