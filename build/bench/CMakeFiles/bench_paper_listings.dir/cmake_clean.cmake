file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_listings.dir/bench_paper_listings.cpp.o"
  "CMakeFiles/bench_paper_listings.dir/bench_paper_listings.cpp.o.d"
  "bench_paper_listings"
  "bench_paper_listings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_listings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
