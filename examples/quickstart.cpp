//===- examples/quickstart.cpp - Five-minute tour of the public API --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest useful program: parse a function, generate a few mutants,
/// optimize one, and translation-validate the optimization — the complete
/// mutate-optimize-verify loop, spelled out by hand.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <cstdio>

using namespace alive;

int main() {
  // 1. Parse a unit test (the paper's running example, Listing 4).
  const std::string Source = R"(
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  std::string Err;
  std::unique_ptr<Module> M = parseModule(Source, Err);
  if (!M) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("== original ==\n%s\n", printFunction(*M->getFunction("test9")).c_str());

  // 2. Preprocess once (dominance, literal constants, shuffle ranges —
  //    paper §III-A), then generate three mutants from three seeds.
  Function *F = M->getFunction("test9");
  OriginalFunctionInfo Info(*F);

  for (uint64_t Seed : {7ull, 8ull, 9ull}) {
    std::unique_ptr<Module> MutantModule = cloneModule(*M);
    RandomGenerator RNG(Seed);
    MutationOptions MOpts;
    Mutator Mut(RNG, MOpts);
    MutantInfo MI(*MutantModule->getFunction("test9"), Info);
    std::vector<MutationKind> Applied = Mut.mutateFunction(MI);

    std::printf("== mutant (seed %llu; ", (unsigned long long)Seed);
    for (size_t I = 0; I != Applied.size(); ++I)
      std::printf("%s%s", I ? ", " : "", mutationKindName(Applied[I]));
    std::printf(") ==\n%s\n",
                printFunction(*MutantModule->getFunction("test9")).c_str());

    // 3. Optimize the mutant with the -O2 pipeline.
    std::unique_ptr<Module> Snapshot = cloneModule(*MutantModule);
    PassManager PM;
    buildPipeline("O2", PM, Err);
    PM.runToFixpoint(*MutantModule);

    // 4. Check that the optimized code refines the mutant.
    TVResult R = checkRefinement(*Snapshot->getFunction("test9"),
                                 *MutantModule->getFunction("test9"));
    std::printf("   optimizer verdict: %s%s%s\n\n", tvVerdictName(R.Verdict),
                R.Detail.empty() ? "" : " — ", R.Detail.c_str());
  }
  return 0;
}
