//===- examples/bitwidth_explorer.cpp - §IV-H bitwidth mutation tour --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores the paper's trickiest mutation: changing the bitwidth of a
/// use-tree path (§IV-H, Figures 4/5, Listing 13). Applies the bitwidth
/// operator repeatedly to the paper's @test9 and shows how the sub gets
/// recreated at odd widths between trunc/ext boundary casts — then proves
/// with the verifier and validator that every mutant is well-formed and
/// that -O2 still compiles each one correctly.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <cstdio>

using namespace alive;

int main() {
  const std::string Source = R"(
define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  std::string Err;
  auto M = parseModule(Source, Err);
  if (!M) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }
  Function *F = M->getFunction("test9");
  OriginalFunctionInfo Info(*F);
  std::printf("== original (the paper's Listing 13 input) ==\n%s\n",
              printFunction(*F).c_str());

  MutationOptions MOpts;
  MOpts.EnabledKinds = {MutationKind::Bitwidth};

  unsigned Shown = 0;
  for (uint64_t Seed = 1; Shown < 4 && Seed < 40; ++Seed) {
    auto Mutant = cloneModule(*M);
    Function *MF = Mutant->getFunction("test9");
    RandomGenerator RNG(Seed);
    Mutator Mut(RNG, MOpts);
    MutantInfo MI(*MF, Info);
    if (!Mut.apply(MutationKind::Bitwidth, MI))
      continue;

    // The paper's validity claim, checked live.
    std::string VErr = verifyError(*MF);
    if (!VErr.empty()) {
      std::fprintf(stderr, "INVALID MUTANT: %s\n", VErr.c_str());
      return 1;
    }

    std::printf("== bitwidth mutant (seed %llu) ==\n%s",
                (unsigned long long)Seed, printFunction(*MF).c_str());

    // And the optimizer still compiles it correctly.
    auto Snapshot = cloneModule(*Mutant);
    PassManager PM;
    buildPipeline("O2", PM, Err);
    PM.runToFixpoint(*Mutant);
    TVResult R = checkRefinement(*Snapshot->getFunction("test9"),
                                 *Mutant->getFunction("test9"));
    std::printf("   -O2 verdict: %s\n\n", tvVerdictName(R.Verdict));
    ++Shown;
  }
  return Shown ? 0 : 1;
}
