//===- examples/fuzz_campaign.cpp - A miniature bug-finding campaign -------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete miniature fuzzing campaign against a buggy compiler: inject
/// two of the Table I defects, shard the campaign across a small worker
/// pool with the CampaignEngine API, and print the discovered bugs with
/// their reproducer seeds (the paper's §III-E workflow: fuzz fast without
/// saving, then regenerate the failing mutant from its logged seed). The
/// bug set is byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "corpus/Corpus.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <cstdio>
#include <cstdlib>

using namespace alive;

int main(int Argc, char **Argv) {
  // Worker count: first argument, default 2.
  unsigned Jobs = Argc > 1 ? (unsigned)std::strtoul(Argv[1], nullptr, 10) : 2;

  // A small "human-written" corpus: tests that come close to the bugs but
  // do not trigger them (the paper's core hypothesis).
  const char *Corpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = 2000;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  // The compiler under test has two of the Table I defects.
  Opts.Bugs.enable(BugId::PR52884); // InstCombine crash (Listing 15)
  Opts.Bugs.enable(BugId::PR50693); // InstCombine miscompilation

  CampaignEngine Fuzzer(Opts, Jobs);
  std::string Err;
  auto M = parseModule(Corpus, Err);
  if (!M) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }
  unsigned N = Fuzzer.loadModule(std::move(M));
  std::printf("fuzzing %u functions, up to %llu mutants on %u worker(s)..."
              "\n\n",
              N, (unsigned long long)Opts.Iterations, Fuzzer.jobs());

  const FuzzStats &S = Fuzzer.run();
  std::printf("generated %llu mutants in %.2fs (%.0f mutants/s)\n",
              (unsigned long long)S.MutantsGenerated, S.TotalSeconds,
              S.MutantsGenerated / S.TotalSeconds);
  std::printf("found %llu miscompilations, %llu crashes\n\n",
              (unsigned long long)S.RefinementFailures,
              (unsigned long long)S.Crashes);

  // Report the first instance of each kind, with the reproducer seed.
  bool SawCrash = false, SawMiscompile = false;
  for (const BugRecord &B : Fuzzer.bugs()) {
    if (B.Kind == BugRecord::Crash && !SawCrash) {
      SawCrash = true;
      std::printf("--- optimizer crash [PR%s], mutant seed %llu ---\n%s\n",
                  B.IssueId.c_str(), (unsigned long long)B.MutantSeed,
                  B.Detail.c_str());
      // §III-E repeatability: regenerate the failing mutant from its seed.
      auto Again = Fuzzer.makeMutant(B.MutantSeed);
      std::printf("regenerated reproducer:\n%s\n",
                  printModule(*Again).c_str());
    }
    if (B.Kind == BugRecord::Miscompile && !SawMiscompile) {
      SawMiscompile = true;
      std::printf("--- miscompilation in @%s, mutant seed %llu ---\n%s\n\n",
                  B.FunctionName.c_str(), (unsigned long long)B.MutantSeed,
                  B.Detail.c_str());
    }
    if (SawCrash && SawMiscompile)
      break;
  }

  return SawCrash && SawMiscompile ? 0 : 1;
}
