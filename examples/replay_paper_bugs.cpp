//===- examples/replay_paper_bugs.cpp - Figure 1, step by step --------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's Figure 1 end to end, exactly as the narrative
/// goes: Listing 1 is a real LLVM unit test that optimizes correctly;
/// alive-mutate's mutations produce Listing 2; the then-current (January
/// 2022) InstCombine — reproduced here as seeded defect PR53252 —
/// mis-canonicalizes it into Listing 3; and the translation validator
/// catches the miscompilation with a concrete counterexample like the
/// paper's (x=2, low=1, high=1).
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "ir/Interpreter.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <cstdio>

using namespace alive;

namespace {

std::unique_ptr<Module> mustParse(const char *IR) {
  std::string Err;
  auto M = parseModule(IR, Err);
  if (!M) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    std::exit(1);
  }
  return M;
}

} // namespace

int main() {
  // The compiler under test carries defect PR53252 for the whole replay.
  BugInjectionContext Bugs{BugId::PR53252};
  BugContextScope BugScope(&Bugs);

  // Listing 1: one of LLVM's unit tests.
  const char *Listing1 = R"(
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
)";
  // Listing 2: the test after mutation by alive-mutate (a constant
  // changed, an instruction removed/moved, and an and turned into xor).
  const char *Listing2 = R"(
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %1 = xor i1 %t2, true
  %r = select i1 %1, i32 %x, i32 %t1
  ret i32 %r
}
)";

  std::printf("Step 1 — Listing 1 (the original unit test) compiles "
              "correctly:\n");
  {
    // ... even with the bug present!
    auto M = mustParse(Listing1);
    auto Snapshot = cloneModule(*M);
    PassManager PM;
    std::string Err;
    buildPipeline("instcombine", PM, Err);
    PM.runToFixpoint(*M);
    TVResult R = checkRefinement(*Snapshot->getFunction("t1_ult_slt_0"),
                                 *M->getFunction("t1_ult_slt_0"));
    std::printf("  verdict: %s (this is why the bug survived the "
                "regression suite)\n\n",
                tvVerdictName(R.Verdict));
  }

  std::printf("Step 2 — Listing 2 (after mutation) hits the buggy "
              "canonicalization:\n");
  auto M = mustParse(Listing2);
  auto Snapshot = cloneModule(*M);
  {
    PassManager PM;
    std::string Err;
    buildPipeline("instcombine,dce", PM, Err);
    PM.runToFixpoint(*M);
  }
  std::printf("  optimized to (compare the paper's Listing 3):\n%s\n",
              printFunction(*M->getFunction("t1_ult_slt_0")).c_str());

  std::printf("Step 3 — the validator refutes the optimization:\n");
  TVResult R = checkRefinement(*Snapshot->getFunction("t1_ult_slt_0"),
                               *M->getFunction("t1_ult_slt_0"));
  std::printf("  verdict: %s\n  %s\n\n", tvVerdictName(R.Verdict),
              R.Detail.c_str());

  std::printf("Step 4 — replay the paper's own counterexample "
              "(x=2, low=1, high=1):\n");
  {
    ExecOptions EOpts;
    std::vector<ConcVal> Args = {ConcVal::scalar(APInt(32, 2)),
                                 ConcVal::scalar(APInt(32, 1)),
                                 ConcVal::scalar(APInt(32, 1))};
    Memory M1, M2;
    Interpreter I1(M1, EOpts), I2(M2, EOpts);
    ExecResult Src = I1.run(*Snapshot->getFunction("t1_ult_slt_0"), Args);
    ExecResult Tgt = I2.run(*M->getFunction("t1_ult_slt_0"), Args);
    std::printf("  mutated source returns %s, optimized code returns %s\n",
                Src.Ret.lane().Val.toString().c_str(),
                Tgt.Ret.lane().Val.toString().c_str());
    std::printf("  (the paper: \"the mutated function returns 1 while the "
                "optimized function returns 2\")\n");
    return Src.Ret.lane().Val == Tgt.Ret.lane().Val ? 1 : 0;
  }
}
