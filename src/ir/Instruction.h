//===- ir/Instruction.h - IR instruction hierarchy -------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction classes of the miniature LLVM IR. The set covers the
/// fragment the paper's mutations and example bugs exercise: integer
/// arithmetic with poison flags, comparisons, selects, casts, freeze, phis,
/// calls (incl. intrinsics), memory operations, vector element operations,
/// and terminators.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTION_H
#define IR_INSTRUCTION_H

#include "ir/Constants.h"
#include "ir/Value.h"
#include "support/APInt.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alive {

class BasicBlock;
class Function;

/// Base class of all instructions.
class Instruction : public User {
public:
  static bool classof(const Value *V) { return V->isInstruction(); }

  BasicBlock *getParent() const { return Parent; }
  Function *getFunction() const;

  bool isTerminator() const {
    return getKind() >= VK_ReturnInst && getKind() <= VK_UnreachableInst;
  }
  /// True if the instruction may write memory or otherwise affect the
  /// environment (so DCE must not remove it even when unused).
  bool mayHaveSideEffects() const;
  /// True if the instruction may read or write memory.
  bool mayAccessMemory() const;
  /// True for speculatable, side-effect-free instructions that can be
  /// value-numbered, reordered and shuffled freely.
  bool isPure() const;

  /// Short opcode spelling for diagnostics ("add", "icmp", ...).
  std::string getOpcodeName() const;

protected:
  Instruction(ValueKind K, Type *T) : User(K, T) {}

private:
  friend class BasicBlock;
  BasicBlock *Parent = nullptr;
};

/// Binary integer arithmetic, possibly carrying poison-generating flags.
class BinaryInst : public Instruction {
public:
  enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    Shl,
    LShr,
    AShr,
    And,
    Or,
    Xor,
    NumBinOps
  };

  static bool classof(const Value *V) { return V->getKind() == VK_BinaryInst; }

  BinaryInst(BinOp Op, Value *LHS, Value *RHS)
      : Instruction(VK_BinaryInst, LHS->getType()), Op(Op) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    assert(LHS->getType()->isIntOrIntVectorTy() && "not an arithmetic type");
    addOperand(LHS);
    addOperand(RHS);
  }

  BinOp getBinOp() const { return Op; }
  void setBinOp(BinOp NewOp) { Op = NewOp; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  bool hasNUW() const { return NUW; }
  bool hasNSW() const { return NSW; }
  bool isExact() const { return Exact; }
  void setNUW(bool B) { NUW = B; }
  void setNSW(bool B) { NSW = B; }
  void setExact(bool B) { Exact = B; }
  void clearFlags() { NUW = NSW = Exact = false; }
  /// Copies poison flags from \p Other where legal for this opcode.
  void copyFlags(const BinaryInst &Other) {
    if (supportsNUWNSW(Op)) {
      NUW = Other.NUW;
      NSW = Other.NSW;
    }
    if (supportsExact(Op))
      Exact = Other.Exact;
  }
  /// Keeps only flags present on both (the correct merge when GVN unifies
  /// two instructions — see Table I bug 53218).
  void intersectFlags(const BinaryInst &Other) {
    NUW &= Other.NUW;
    NSW &= Other.NSW;
    Exact &= Other.Exact;
  }

  static bool supportsNUWNSW(BinOp Op) {
    return Op == Add || Op == Sub || Op == Mul || Op == Shl;
  }
  static bool supportsExact(BinOp Op) {
    return Op == UDiv || Op == SDiv || Op == LShr || Op == AShr;
  }
  static bool isCommutative(BinOp Op) {
    return Op == Add || Op == Mul || Op == And || Op == Or || Op == Xor;
  }
  static bool isDivRem(BinOp Op) {
    return Op == UDiv || Op == SDiv || Op == URem || Op == SRem;
  }
  static bool isShift(BinOp Op) {
    return Op == Shl || Op == LShr || Op == AShr;
  }
  static const char *getBinOpName(BinOp Op);

private:
  BinOp Op;
  bool NUW = false, NSW = false, Exact = false;
};

/// Integer comparison producing an i1.
class ICmpInst : public Instruction {
public:
  enum Predicate { EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE, NumPreds };

  static bool classof(const Value *V) { return V->getKind() == VK_ICmpInst; }

  /// \p BoolTy must be the module's i1 type.
  ICmpInst(Predicate P, Value *LHS, Value *RHS, Type *BoolTy)
      : Instruction(VK_ICmpInst, BoolTy), Pred(P) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    assert(BoolTy->isBoolTy() && "icmp must produce i1");
    addOperand(LHS);
    addOperand(RHS);
  }

  Predicate getPredicate() const { return Pred; }
  void setPredicate(Predicate P) { Pred = P; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  /// eq -> ne, ult -> uge, etc.
  static Predicate getInversePredicate(Predicate P);
  /// ult -> ugt, etc. (predicate after operand swap).
  static Predicate getSwappedPredicate(Predicate P);
  static bool isSigned(Predicate P) { return P >= SGT && P <= SLE; }
  static bool isUnsigned(Predicate P) { return P >= UGT && P <= ULE; }
  static bool isRelational(Predicate P) { return P != EQ && P != NE; }
  static const char *getPredicateName(Predicate P);

  /// Evaluates the predicate on two concrete values.
  static bool evaluate(Predicate P, const APInt &L, const APInt &R);

private:
  Predicate Pred;
};

/// select i1 %c, T %t, T %f
class SelectInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_SelectInst; }

  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(VK_SelectInst, TrueV->getType()) {
    assert(Cond->getType()->isBoolTy() && "select condition must be i1");
    assert(TrueV->getType() == FalseV->getType() && "arm type mismatch");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }
};

/// Integer width conversions: trunc, zext, sext.
class CastInst : public Instruction {
public:
  enum CastOp { Trunc, ZExt, SExt };

  static bool classof(const Value *V) { return V->getKind() == VK_CastInst; }

  CastInst(CastOp Op, Value *Src, Type *DstTy)
      : Instruction(VK_CastInst, DstTy), Op(Op) {
    assert(Src->getType()->isIntegerTy() && DstTy->isIntegerTy() &&
           "casts operate on scalar integers");
    unsigned SrcW = Src->getType()->getIntegerBitWidth();
    unsigned DstW = DstTy->getIntegerBitWidth();
    assert((Op == Trunc ? SrcW > DstW : SrcW < DstW) &&
           "cast direction/width mismatch");
    (void)SrcW;
    (void)DstW;
    addOperand(Src);
  }

  CastOp getCastOp() const { return Op; }
  Value *getSrc() const { return getOperand(0); }
  static const char *getCastOpName(CastOp Op);

private:
  CastOp Op;
};

/// freeze T %v — stops poison/undef propagation.
class FreezeInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_FreezeInst; }

  explicit FreezeInst(Value *V) : Instruction(VK_FreezeInst, V->getType()) {
    addOperand(V);
  }

  Value *getSrc() const { return getOperand(0); }
};

/// SSA phi node. Incoming values are operands; incoming blocks are kept in
/// a parallel array.
class PhiNode : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_PhiNode; }

  explicit PhiNode(Type *T) : Instruction(VK_PhiNode, T) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->getType() == getType() && "incoming value type mismatch");
    addOperand(V);
    Blocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const {
    assert(I < Blocks.size());
    return Blocks[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size());
    Blocks[I] = BB;
  }
  /// \returns the value flowing in from \p BB, or null if absent.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const {
    for (unsigned I = 0; I != Blocks.size(); ++I)
      if (Blocks[I] == BB)
        return getIncomingValue(I);
    return nullptr;
  }
  void removeIncoming(unsigned I) {
    removeOperand(I);
    Blocks.erase(Blocks.begin() + I);
  }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Direct call. The callee is a Function member (no indirect calls in this
/// fragment); arguments are the operands.
class CallInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_CallInst; }

  CallInst(Function *Callee, const std::vector<Value *> &Args, Type *RetTy);

  Function *getCallee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

private:
  Function *Callee;
};

/// load T, ptr %p
class LoadInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_LoadInst; }

  LoadInst(Type *LoadedTy, Value *Ptr, unsigned Align = 1)
      : Instruction(VK_LoadInst, LoadedTy), Align(Align) {
    assert(Ptr->getType()->isPointerTy() && "load pointer operand");
    addOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }
  unsigned getAlign() const { return Align; }
  void setAlign(unsigned A) { Align = A; }

private:
  unsigned Align;
};

/// store T %v, ptr %p
class StoreInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_StoreInst; }

  StoreInst(Value *Val, Value *Ptr, Type *VoidTy, unsigned Align = 1)
      : Instruction(VK_StoreInst, VoidTy), Align(Align) {
    assert(Ptr->getType()->isPointerTy() && "store pointer operand");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }
  unsigned getAlign() const { return Align; }
  void setAlign(unsigned A) { Align = A; }

private:
  unsigned Align;
};

/// Stack allocation of one element of the given type.
class AllocaInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_AllocaInst; }

  AllocaInst(Type *AllocatedTy, Type *PtrTy, unsigned Align = 8)
      : Instruction(VK_AllocaInst, PtrTy), AllocatedType(AllocatedTy),
        Align(Align) {
    assert(PtrTy->isPointerTy());
  }

  Type *getAllocatedType() const { return AllocatedType; }
  unsigned getAlign() const { return Align; }

private:
  Type *AllocatedType;
  unsigned Align;
};

/// Simplified getelementptr: byte-offset arithmetic over a source element
/// type with integer indices (first index scales by the element size; for
/// this IR the element types are ints/vectors, so one index level suffices).
class GEPInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_GEPInst; }

  GEPInst(Type *SrcElemTy, Value *Ptr, Value *Index, Type *PtrTy,
          bool InBounds = false)
      : Instruction(VK_GEPInst, PtrTy), SrcElemTy(SrcElemTy),
        InBounds(InBounds) {
    assert(Ptr->getType()->isPointerTy() && "gep pointer operand");
    assert(Index->getType()->isIntegerTy() && "gep index must be integer");
    addOperand(Ptr);
    addOperand(Index);
  }

  Type *getSourceElementType() const { return SrcElemTy; }
  Value *getPointer() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }
  bool isInBounds() const { return InBounds; }
  void setInBounds(bool B) { InBounds = B; }

private:
  Type *SrcElemTy;
  bool InBounds;
};

/// extractelement <n x T> %v, iK %idx
class ExtractElementInst : public Instruction {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ExtractElementInst;
  }

  ExtractElementInst(Value *Vec, Value *Idx)
      : Instruction(VK_ExtractElementInst,
                    cast<VectorType>(Vec->getType())->getElementType()) {
    assert(Idx->getType()->isIntegerTy());
    addOperand(Vec);
    addOperand(Idx);
  }

  Value *getVector() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }
};

/// insertelement <n x T> %v, T %elt, iK %idx
class InsertElementInst : public Instruction {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_InsertElementInst;
  }

  InsertElementInst(Value *Vec, Value *Elt, Value *Idx)
      : Instruction(VK_InsertElementInst, Vec->getType()) {
    assert(cast<VectorType>(Vec->getType())->getElementType() ==
               Elt->getType() &&
           "element type mismatch");
    assert(Idx->getType()->isIntegerTy());
    addOperand(Vec);
    addOperand(Elt);
    addOperand(Idx);
  }

  Value *getVector() const { return getOperand(0); }
  Value *getElement() const { return getOperand(1); }
  Value *getIndex() const { return getOperand(2); }
};

/// shufflevector with a constant mask; mask lane -1 produces poison.
class ShuffleVectorInst : public Instruction {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ShuffleVectorInst;
  }

  ShuffleVectorInst(Value *V1, Value *V2, std::vector<int> Mask,
                    VectorType *ResultTy)
      : Instruction(VK_ShuffleVectorInst, ResultTy), Mask(std::move(Mask)) {
    assert(V1->getType() == V2->getType() && "shuffle input type mismatch");
    assert(this->Mask.size() == ResultTy->getNumElements());
    addOperand(V1);
    addOperand(V2);
  }

  Value *getV1() const { return getOperand(0); }
  Value *getV2() const { return getOperand(1); }
  const std::vector<int> &getMask() const { return Mask; }

private:
  std::vector<int> Mask;
};

/// ret void / ret T %v
class ReturnInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_ReturnInst; }

  /// \p VoidTy: instructions must have a type; terminators use void.
  ReturnInst(Value *RetVal, Type *VoidTy)
      : Instruction(VK_ReturnInst, VoidTy) {
    if (RetVal)
      addOperand(RetVal);
  }

  Value *getReturnValue() const {
    return getNumOperands() ? getOperand(0) : nullptr;
  }
};

/// br label %dst / br i1 %c, label %t, label %f
class BranchInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_BranchInst; }

  BranchInst(BasicBlock *Dest, Type *VoidTy)
      : Instruction(VK_BranchInst, VoidTy), Succs{Dest, nullptr} {}

  BranchInst(Value *Cond, BasicBlock *TrueDest, BasicBlock *FalseDest,
             Type *VoidTy)
      : Instruction(VK_BranchInst, VoidTy), Succs{TrueDest, FalseDest} {
    assert(Cond->getType()->isBoolTy() && "branch condition must be i1");
    addOperand(Cond);
  }

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional());
    return getOperand(0);
  }
  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < getNumSuccessors());
    return Succs[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < getNumSuccessors());
    Succs[I] = BB;
  }

private:
  BasicBlock *Succs[2];
};

/// switch iN %v, label %default [ cases... ]
class SwitchInst : public Instruction {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_SwitchInst; }

  SwitchInst(Value *Cond, BasicBlock *Default, Type *VoidTy)
      : Instruction(VK_SwitchInst, VoidTy), Default(Default) {
    assert(Cond->getType()->isIntegerTy() && "switch operand must be integer");
    addOperand(Cond);
  }

  Value *getCondition() const { return getOperand(0); }
  BasicBlock *getDefaultDest() const { return Default; }
  void setDefaultDest(BasicBlock *BB) { Default = BB; }

  void addCase(const APInt &Val, BasicBlock *Dest) {
    Cases.push_back({Val, Dest});
  }
  unsigned getNumCases() const { return (unsigned)Cases.size(); }
  const APInt &getCaseValue(unsigned I) const { return Cases[I].first; }
  BasicBlock *getCaseDest(unsigned I) const { return Cases[I].second; }
  void setCaseDest(unsigned I, BasicBlock *BB) { Cases[I].second = BB; }

  unsigned getNumSuccessors() const { return 1 + getNumCases(); }
  BasicBlock *getSuccessor(unsigned I) const {
    return I == 0 ? Default : Cases[I - 1].second;
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    if (I == 0)
      Default = BB;
    else
      Cases[I - 1].second = BB;
  }

private:
  BasicBlock *Default;
  std::vector<std::pair<APInt, BasicBlock *>> Cases;
};

/// unreachable
class UnreachableInst : public Instruction {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_UnreachableInst;
  }

  explicit UnreachableInst(Type *VoidTy)
      : Instruction(VK_UnreachableInst, VoidTy) {}
};

/// \returns successors of a terminator instruction.
std::vector<BasicBlock *> getSuccessors(const Instruction *Term);
/// Rewrites every successor edge of \p Term equal to \p From into \p To.
void replaceSuccessor(Instruction *Term, BasicBlock *From, BasicBlock *To);

} // namespace alive

#endif // IR_INSTRUCTION_H
