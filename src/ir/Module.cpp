//===- ir/Module.cpp - Top-level IR container ------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace alive;

Module::~Module() {
  // Function bodies may reference values owned by other functions'
  // declarations (via calls) and module-level constants; detach everything
  // before the pools die.
  for (auto &F : Functions)
    F->dropBody();
}

Function *Module::createFunction(FunctionType *FT, const std::string &Name) {
  assert(!getFunction(Name) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(FT, Name, this));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &Name) const {
  for (Function *F : functions())
    if (F->getName() == Name)
      return F;
  return nullptr;
}

Function *Module::getOrInsertIntrinsic(IntrinsicID ID, Type *ValTy) {
  assert(ID != IntrinsicID::NotIntrinsic);
  std::string Name = std::string(intrinsicBaseName(ID));
  if (ID != IntrinsicID::Assume)
    Name += "." + ValTy->str();
  if (Function *F = getFunction(Name))
    return F;

  Type *Bool = Types.getIntTy(1);
  std::vector<Type *> Params;
  Type *Ret = ValTy;
  switch (ID) {
  case IntrinsicID::SMin:
  case IntrinsicID::SMax:
  case IntrinsicID::UMin:
  case IntrinsicID::UMax:
  case IntrinsicID::UAddSat:
  case IntrinsicID::USubSat:
  case IntrinsicID::SAddSat:
  case IntrinsicID::SSubSat:
    Params = {ValTy, ValTy};
    break;
  case IntrinsicID::Abs:
  case IntrinsicID::Ctlz:
  case IntrinsicID::Cttz:
    Params = {ValTy, Bool};
    break;
  case IntrinsicID::BSwap:
  case IntrinsicID::CtPop:
    Params = {ValTy};
    break;
  case IntrinsicID::Fshl:
  case IntrinsicID::Fshr:
    Params = {ValTy, ValTy, ValTy};
    break;
  case IntrinsicID::Assume:
    Params = {Bool};
    Ret = Types.getVoidTy();
    break;
  case IntrinsicID::NotIntrinsic:
    assert(false);
  }

  Function *F = createFunction(Types.getFunctionTy(Ret, Params), Name);
  F->setIntrinsicID(ID);
  return F;
}

void Module::eraseFunction(Function *F) {
  for (unsigned I = 0; I != Functions.size(); ++I) {
    if (Functions[I].get() == F) {
      F->dropBody();
      Functions.erase(Functions.begin() + I);
      return;
    }
  }
  assert(false && "function not in this module");
}
