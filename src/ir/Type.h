//===- ir/Type.h - Miniature LLVM type system ------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system for the miniature LLVM IR: void, label, iN integers
/// (1..64 bits), opaque pointers, fixed vectors of integers, and function
/// types. Types are interned in a TypeContext (one per Module), so two types
/// are equal iff their Type* pointers are equal, exactly as in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef IR_TYPE_H
#define IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace alive {

class TypeContext;

/// Base class of the interned type hierarchy.
class Type {
public:
  enum TypeKind {
    VoidTyKind,
    LabelTyKind,
    IntegerTyKind,
    PointerTyKind,
    VectorTyKind,
    FunctionTyKind,
  };

  TypeKind getKind() const { return Kind; }

  bool isVoidTy() const { return Kind == VoidTyKind; }
  bool isLabelTy() const { return Kind == LabelTyKind; }
  bool isIntegerTy() const { return Kind == IntegerTyKind; }
  bool isPointerTy() const { return Kind == PointerTyKind; }
  bool isVectorTy() const { return Kind == VectorTyKind; }
  bool isFunctionTy() const { return Kind == FunctionTyKind; }
  /// Integer or vector-of-integer (the element domain of arithmetic).
  bool isIntOrIntVectorTy() const;
  /// True for types an SSA register can hold (not void/label/function).
  bool isFirstClassTy() const {
    return isIntegerTy() || isPointerTy() || isVectorTy();
  }
  /// True for i1 (the icmp / branch condition type).
  bool isBoolTy() const;

  /// Bit width of an integer type; asserts on other kinds.
  unsigned getIntegerBitWidth() const;

  /// For arithmetic types: the scalar type (self for ints, element for
  /// vectors). Asserts on other kinds.
  Type *getScalarType();
  const Type *getScalarType() const {
    return const_cast<Type *>(this)->getScalarType();
  }

  /// Renders the type in LLVM syntax ("i32", "ptr", "<4 x i8>").
  std::string str() const;

  virtual ~Type() = default;

protected:
  explicit Type(TypeKind K) : Kind(K) {}

private:
  const TypeKind Kind;
};

/// An iN integer type, 1 <= N <= 64 (the encoder needs 2N-bit
/// intermediates for overflow checks, and APInt caps at 128).
class IntegerType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == IntegerTyKind; }

  unsigned getBitWidth() const { return BitWidth; }

private:
  friend class TypeContext;
  explicit IntegerType(unsigned Bits) : Type(IntegerTyKind), BitWidth(Bits) {}
  unsigned BitWidth;
};

/// A fixed vector of integer elements, e.g. <4 x i32>.
class VectorType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == VectorTyKind; }

  Type *getElementType() const { return ElementType; }
  unsigned getNumElements() const { return NumElements; }

private:
  friend class TypeContext;
  VectorType(Type *Elem, unsigned Count)
      : Type(VectorTyKind), ElementType(Elem), NumElements(Count) {}
  Type *ElementType;
  unsigned NumElements;
};

/// A function signature: return type plus parameter types.
class FunctionType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == FunctionTyKind; }

  Type *getReturnType() const { return ReturnType; }
  unsigned getNumParams() const { return (unsigned)ParamTypes.size(); }
  Type *getParamType(unsigned I) const {
    assert(I < ParamTypes.size() && "parameter index out of range");
    return ParamTypes[I];
  }
  const std::vector<Type *> &params() const { return ParamTypes; }

private:
  friend class TypeContext;
  FunctionType(Type *Ret, std::vector<Type *> Params)
      : Type(FunctionTyKind), ReturnType(Ret), ParamTypes(std::move(Params)) {}
  Type *ReturnType;
  std::vector<Type *> ParamTypes;
};

/// Owns and interns all types of a Module. Type pointers from one context
/// must not be mixed with another context's values.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  Type *getVoidTy() { return VoidTy.get(); }
  Type *getLabelTy() { return LabelTy.get(); }
  Type *getPointerTy() { return PointerTy.get(); }
  IntegerType *getIntTy(unsigned Bits);
  Type *getBoolTy() { return getIntTy(1); }
  VectorType *getVectorTy(Type *Elem, unsigned Count);
  FunctionType *getFunctionTy(Type *Ret, const std::vector<Type *> &Params);

  /// For arithmetic on \p Ty (int or int-vector): the same shape with the
  /// scalar replaced by \p NewScalar. i32 -> i8, <4 x i32> -> <4 x i8>.
  Type *getWithScalar(Type *Ty, Type *NewScalar);

private:
  std::unique_ptr<Type> VoidTy, LabelTy, PointerTy;
  std::map<unsigned, std::unique_ptr<IntegerType>> IntTypes;
  std::map<std::pair<Type *, unsigned>, std::unique_ptr<VectorType>> VecTypes;
  std::map<std::pair<Type *, std::vector<Type *>>,
           std::unique_ptr<FunctionType>>
      FnTypes;
};

} // namespace alive

#endif // IR_TYPE_H
