//===- ir/Instruction.cpp - IR instruction hierarchy ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace alive;

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

bool Instruction::mayHaveSideEffects() const {
  switch (getKind()) {
  case VK_StoreInst:
    return true;
  case VK_CallInst: {
    const Function *Callee = cast<CallInst>(this)->getCallee();
    if (Callee->isIntrinsic())
      return !intrinsicIsPure(Callee->getIntrinsicID());
    // Unknown externals and defined functions may write memory unless
    // annotated otherwise.
    return !Callee->hasFnAttr(FnAttr::ReadNone) &&
           !Callee->hasFnAttr(FnAttr::ReadOnly);
  }
  default:
    return false;
  }
}

bool Instruction::mayAccessMemory() const {
  switch (getKind()) {
  case VK_LoadInst:
  case VK_StoreInst:
  case VK_AllocaInst:
    return true;
  case VK_CallInst: {
    const Function *Callee = cast<CallInst>(this)->getCallee();
    if (Callee->isIntrinsic())
      return !intrinsicIsPure(Callee->getIntrinsicID());
    return !Callee->hasFnAttr(FnAttr::ReadNone);
  }
  default:
    return false;
  }
}

bool Instruction::isPure() const {
  switch (getKind()) {
  case VK_BinaryInst:
  case VK_ICmpInst:
  case VK_SelectInst:
  case VK_CastInst:
  case VK_FreezeInst:
  case VK_GEPInst:
  case VK_ExtractElementInst:
  case VK_InsertElementInst:
  case VK_ShuffleVectorInst:
    return true;
  case VK_CallInst: {
    const Function *Callee = cast<CallInst>(this)->getCallee();
    return Callee->isIntrinsic() && intrinsicIsPure(Callee->getIntrinsicID());
  }
  default:
    return false;
  }
}

std::string Instruction::getOpcodeName() const {
  switch (getKind()) {
  case VK_BinaryInst:
    return BinaryInst::getBinOpName(cast<BinaryInst>(this)->getBinOp());
  case VK_ICmpInst:
    return "icmp";
  case VK_SelectInst:
    return "select";
  case VK_CastInst:
    return CastInst::getCastOpName(cast<CastInst>(this)->getCastOp());
  case VK_FreezeInst:
    return "freeze";
  case VK_PhiNode:
    return "phi";
  case VK_CallInst:
    return "call";
  case VK_LoadInst:
    return "load";
  case VK_StoreInst:
    return "store";
  case VK_AllocaInst:
    return "alloca";
  case VK_GEPInst:
    return "getelementptr";
  case VK_ExtractElementInst:
    return "extractelement";
  case VK_InsertElementInst:
    return "insertelement";
  case VK_ShuffleVectorInst:
    return "shufflevector";
  case VK_ReturnInst:
    return "ret";
  case VK_BranchInst:
    return "br";
  case VK_SwitchInst:
    return "switch";
  case VK_UnreachableInst:
    return "unreachable";
  default:
    assert(false && "not an instruction kind");
    return "";
  }
}

const char *BinaryInst::getBinOpName(BinOp Op) {
  switch (Op) {
  case Add:
    return "add";
  case Sub:
    return "sub";
  case Mul:
    return "mul";
  case UDiv:
    return "udiv";
  case SDiv:
    return "sdiv";
  case URem:
    return "urem";
  case SRem:
    return "srem";
  case Shl:
    return "shl";
  case LShr:
    return "lshr";
  case AShr:
    return "ashr";
  case And:
    return "and";
  case Or:
    return "or";
  case Xor:
    return "xor";
  case NumBinOps:
    break;
  }
  assert(false && "invalid binop");
  return "";
}

ICmpInst::Predicate ICmpInst::getInversePredicate(Predicate P) {
  switch (P) {
  case EQ:
    return NE;
  case NE:
    return EQ;
  case UGT:
    return ULE;
  case UGE:
    return ULT;
  case ULT:
    return UGE;
  case ULE:
    return UGT;
  case SGT:
    return SLE;
  case SGE:
    return SLT;
  case SLT:
    return SGE;
  case SLE:
    return SGT;
  case NumPreds:
    break;
  }
  assert(false && "invalid predicate");
  return EQ;
}

ICmpInst::Predicate ICmpInst::getSwappedPredicate(Predicate P) {
  switch (P) {
  case EQ:
  case NE:
    return P;
  case UGT:
    return ULT;
  case UGE:
    return ULE;
  case ULT:
    return UGT;
  case ULE:
    return UGE;
  case SGT:
    return SLT;
  case SGE:
    return SLE;
  case SLT:
    return SGT;
  case SLE:
    return SGE;
  case NumPreds:
    break;
  }
  assert(false && "invalid predicate");
  return EQ;
}

const char *ICmpInst::getPredicateName(Predicate P) {
  switch (P) {
  case EQ:
    return "eq";
  case NE:
    return "ne";
  case UGT:
    return "ugt";
  case UGE:
    return "uge";
  case ULT:
    return "ult";
  case ULE:
    return "ule";
  case SGT:
    return "sgt";
  case SGE:
    return "sge";
  case SLT:
    return "slt";
  case SLE:
    return "sle";
  case NumPreds:
    break;
  }
  assert(false && "invalid predicate");
  return "";
}

bool ICmpInst::evaluate(Predicate P, const APInt &L, const APInt &R) {
  switch (P) {
  case EQ:
    return L == R;
  case NE:
    return L != R;
  case UGT:
    return L.ugt(R);
  case UGE:
    return L.uge(R);
  case ULT:
    return L.ult(R);
  case ULE:
    return L.ule(R);
  case SGT:
    return L.sgt(R);
  case SGE:
    return L.sge(R);
  case SLT:
    return L.slt(R);
  case SLE:
    return L.sle(R);
  case NumPreds:
    break;
  }
  assert(false && "invalid predicate");
  return false;
}

const char *CastInst::getCastOpName(CastOp Op) {
  switch (Op) {
  case Trunc:
    return "trunc";
  case ZExt:
    return "zext";
  case SExt:
    return "sext";
  }
  assert(false && "invalid cast op");
  return "";
}

CallInst::CallInst(Function *Callee, const std::vector<Value *> &Args,
                   Type *RetTy)
    : Instruction(VK_CallInst, RetTy), Callee(Callee) {
  assert(Callee && "call requires a callee");
  assert(Callee->getFunctionType()->getNumParams() == Args.size() &&
         "argument count mismatch");
  for (Value *A : Args)
    addOperand(A);
}

std::vector<BasicBlock *> alive::getSuccessors(const Instruction *Term) {
  std::vector<BasicBlock *> Out;
  if (const auto *Br = dyn_cast<BranchInst>(Term)) {
    for (unsigned I = 0; I != Br->getNumSuccessors(); ++I)
      Out.push_back(Br->getSuccessor(I));
  } else if (const auto *Sw = dyn_cast<SwitchInst>(Term)) {
    for (unsigned I = 0; I != Sw->getNumSuccessors(); ++I)
      Out.push_back(Sw->getSuccessor(I));
  }
  // ret and unreachable have no successors.
  return Out;
}

void alive::replaceSuccessor(Instruction *Term, BasicBlock *From,
                             BasicBlock *To) {
  if (auto *Br = dyn_cast<BranchInst>(Term)) {
    for (unsigned I = 0; I != Br->getNumSuccessors(); ++I)
      if (Br->getSuccessor(I) == From)
        Br->setSuccessor(I, To);
  } else if (auto *Sw = dyn_cast<SwitchInst>(Term)) {
    for (unsigned I = 0; I != Sw->getNumSuccessors(); ++I)
      if (Sw->getSuccessor(I) == From)
        Sw->setSuccessor(I, To);
  }
}
