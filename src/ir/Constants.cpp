//===- ir/Constants.cpp - Constant values ---------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Constants.h"

using namespace alive;

ConstantPoolCtx::~ConstantPoolCtx() = default;

ConstantInt *ConstantPoolCtx::getInt(IntegerType *T, const APInt &V) {
  assert(V.getBitWidth() == T->getBitWidth() && "constant width mismatch");
  auto Key = std::make_pair((Type *)T,
                            std::make_pair(V.getLoBits64(), V.getHiBits64()));
  auto &Slot = IntPool[Key];
  if (!Slot)
    Slot.reset(new ConstantInt(T, V));
  return Slot.get();
}

ConstantInt *ConstantPoolCtx::getInt(IntegerType *T, uint64_t V, bool Signed) {
  return getInt(T, APInt(T->getBitWidth(), V, Signed));
}

ConstantInt *ConstantPoolCtx::getBool(TypeContext &TC, bool V) {
  return getInt(TC.getIntTy(1), V ? 1 : 0);
}

ConstantPoison *ConstantPoolCtx::getPoison(Type *T) {
  assert(T->isFirstClassTy() && "poison must have a first-class type");
  auto &Slot = PoisonPool[T];
  if (!Slot)
    Slot.reset(new ConstantPoison(T));
  return Slot.get();
}

ConstantUndef *ConstantPoolCtx::getUndef(Type *T) {
  assert(T->isFirstClassTy() && "undef must have a first-class type");
  auto &Slot = UndefPool[T];
  if (!Slot)
    Slot.reset(new ConstantUndef(T));
  return Slot.get();
}

ConstantNullPtr *ConstantPoolCtx::getNullPtr(Type *PtrTy) {
  assert(PtrTy->isPointerTy() && "null constant must have pointer type");
  auto &Slot = NullPool[PtrTy];
  if (!Slot)
    Slot.reset(new ConstantNullPtr(PtrTy));
  return Slot.get();
}

ConstantVector *
ConstantPoolCtx::getVector(VectorType *T, const std::vector<Constant *> &Es) {
  assert(Es.size() == T->getNumElements() && "element count mismatch");
  for (Constant *C : Es) {
    assert(C->getType() == T->getElementType() && "element type mismatch");
    (void)C;
  }
  auto &Slot = VectorPool[{(Type *)T, Es}];
  if (!Slot)
    Slot.reset(new ConstantVector(T, Es));
  return Slot.get();
}

ConstantVector *ConstantPoolCtx::getSplat(VectorType *T, Constant *Scalar) {
  return getVector(T, std::vector<Constant *>(T->getNumElements(), Scalar));
}
