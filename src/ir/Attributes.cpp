//===- ir/Attributes.cpp - Function and parameter attributes -------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Attributes.h"

#include <cassert>

using namespace alive;

const char *alive::fnAttrName(FnAttr A) {
  switch (A) {
  case FnAttr::NoFree:
    return "nofree";
  case FnAttr::WillReturn:
    return "willreturn";
  case FnAttr::NoUnwind:
    return "nounwind";
  case FnAttr::ReadNone:
    return "readnone";
  case FnAttr::ReadOnly:
    return "readonly";
  case FnAttr::NoReturn:
    return "noreturn";
  case FnAttr::None:
    break;
  }
  assert(false && "not a single attribute");
  return "";
}

std::string ParamAttrs::str() const {
  std::string S;
  if (NoCapture)
    S += " nocapture";
  if (NonNull)
    S += " nonnull";
  if (NoUndef)
    S += " noundef";
  if (ReadOnly)
    S += " readonly";
  if (Dereferenceable)
    S += " dereferenceable(" + std::to_string(Dereferenceable) + ")";
  return S;
}
