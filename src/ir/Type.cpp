//===- ir/Type.cpp - Miniature LLVM type system ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

using namespace alive;

bool Type::isIntOrIntVectorTy() const {
  if (isIntegerTy())
    return true;
  if (const auto *VT = dyn_cast<VectorType>(this))
    return VT->getElementType()->isIntegerTy();
  return false;
}

bool Type::isBoolTy() const {
  const auto *IT = dyn_cast<IntegerType>(this);
  return IT && IT->getBitWidth() == 1;
}

unsigned Type::getIntegerBitWidth() const {
  return cast<IntegerType>(this)->getBitWidth();
}

Type *Type::getScalarType() {
  if (auto *VT = dyn_cast<VectorType>(this))
    return VT->getElementType();
  assert(isIntegerTy() || isPointerTy());
  return this;
}

std::string Type::str() const {
  switch (Kind) {
  case VoidTyKind:
    return "void";
  case LabelTyKind:
    return "label";
  case IntegerTyKind:
    return "i" + std::to_string(getIntegerBitWidth());
  case PointerTyKind:
    return "ptr";
  case VectorTyKind: {
    const auto *VT = cast<VectorType>(this);
    return "<" + std::to_string(VT->getNumElements()) + " x " +
           VT->getElementType()->str() + ">";
  }
  case FunctionTyKind: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->getReturnType()->str() + " (";
    for (unsigned I = 0; I != FT->getNumParams(); ++I) {
      if (I)
        S += ", ";
      S += FT->getParamType(I)->str();
    }
    return S + ")";
  }
  }
  assert(false && "unknown type kind");
  return "";
}

TypeContext::TypeContext() {
  // Private Type constructor; build the singletons directly.
  struct RawType : Type {
    explicit RawType(TypeKind K) : Type(K) {}
  };
  VoidTy.reset(new RawType(Type::VoidTyKind));
  LabelTy.reset(new RawType(Type::LabelTyKind));
  PointerTy.reset(new RawType(Type::PointerTyKind));
}

IntegerType *TypeContext::getIntTy(unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "unsupported integer width");
  auto &Slot = IntTypes[Bits];
  if (!Slot)
    Slot.reset(new IntegerType(Bits));
  return Slot.get();
}

VectorType *TypeContext::getVectorTy(Type *Elem, unsigned Count) {
  assert(Elem->isIntegerTy() && "only integer vectors are supported");
  assert(Count >= 1 && Count <= 64 && "unsupported vector length");
  auto &Slot = VecTypes[{Elem, Count}];
  if (!Slot)
    Slot.reset(new VectorType(Elem, Count));
  return Slot.get();
}

FunctionType *TypeContext::getFunctionTy(Type *Ret,
                                         const std::vector<Type *> &Params) {
  auto &Slot = FnTypes[{Ret, Params}];
  if (!Slot)
    Slot.reset(new FunctionType(Ret, Params));
  return Slot.get();
}

Type *TypeContext::getWithScalar(Type *Ty, Type *NewScalar) {
  assert(NewScalar->isIntegerTy() && "scalar replacement must be integer");
  if (auto *VT = dyn_cast<VectorType>(Ty))
    return getVectorTy(NewScalar, VT->getNumElements());
  assert(Ty->isIntegerTy());
  return NewScalar;
}
