//===- ir/Clone.cpp - Deep cloning of functions and modules ---------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep cloning. The fuzzing loop makes a copy of the in-memory IR before
/// every mutation round (paper §III-B), and translation validation clones
/// the mutant so the "source" snapshot survives optimization of the
/// "target". Cloning translates types and constants into the destination
/// module's interning contexts, so cross-module clones are safe.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <map>
#include <set>

using namespace alive;

Type *alive::translateType(const Type *T, TypeContext &Dst) {
  switch (T->getKind()) {
  case Type::VoidTyKind:
    return Dst.getVoidTy();
  case Type::LabelTyKind:
    return Dst.getLabelTy();
  case Type::PointerTyKind:
    return Dst.getPointerTy();
  case Type::IntegerTyKind:
    return Dst.getIntTy(T->getIntegerBitWidth());
  case Type::VectorTyKind: {
    const auto *VT = cast<VectorType>(T);
    return Dst.getVectorTy(translateType(VT->getElementType(), Dst),
                           VT->getNumElements());
  }
  case Type::FunctionTyKind: {
    const auto *FT = cast<FunctionType>(T);
    std::vector<Type *> Params;
    for (Type *P : FT->params())
      Params.push_back(translateType(P, Dst));
    return Dst.getFunctionTy(translateType(FT->getReturnType(), Dst), Params);
  }
  }
  assert(false && "unknown type kind");
  return nullptr;
}

namespace {

/// State for one cloning operation.
struct Cloner {
  Module &Dst;
  std::map<const Value *, Value *> ValueMap;
  /// Deferred operand fixups for forward references.
  struct Fixup {
    User *U;
    unsigned OpIdx;
    const Value *SrcVal;
  };
  std::vector<Fixup> Fixups;

  explicit Cloner(Module &Dst) : Dst(Dst) {}

  Constant *translateConstant(const Constant *C) {
    TypeContext &TC = Dst.getTypes();
    ConstantPoolCtx &CP = Dst.getConstants();
    switch (C->getKind()) {
    case Value::VK_ConstantInt: {
      const auto *CI = cast<ConstantInt>(C);
      return CP.getInt(cast<IntegerType>(translateType(C->getType(), TC)),
                       CI->getValue());
    }
    case Value::VK_ConstantPoison:
      return CP.getPoison(translateType(C->getType(), TC));
    case Value::VK_ConstantUndef:
      return CP.getUndef(translateType(C->getType(), TC));
    case Value::VK_ConstantNullPtr:
      return CP.getNullPtr(translateType(C->getType(), TC));
    case Value::VK_ConstantVector: {
      const auto *CV = cast<ConstantVector>(C);
      std::vector<Constant *> Elems;
      for (unsigned I = 0; I != CV->getNumElements(); ++I)
        Elems.push_back(translateConstant(CV->getElement(I)));
      return CP.getVector(
          cast<VectorType>(translateType(C->getType(), TC)), Elems);
    }
    default:
      assert(false && "not a constant");
      return nullptr;
    }
  }

  /// Maps a source operand. Returns a placeholder undef when the source
  /// value has not been cloned yet (forward reference); the caller records
  /// a fixup.
  Value *mapOperand(const Value *V, bool &NeedsFixup) {
    NeedsFixup = false;
    if (const auto *C = dyn_cast<Constant>(V))
      return translateConstant(C);
    auto It = ValueMap.find(V);
    if (It != ValueMap.end())
      return It->second;
    NeedsFixup = true;
    return Dst.getConstants().getUndef(
        translateType(V->getType(), Dst.getTypes()));
  }

  BasicBlock *mapBlock(const BasicBlock *BB) {
    auto It = ValueMap.find(BB);
    assert(It != ValueMap.end() && "block not cloned yet");
    return cast<BasicBlock>(It->second);
  }

  /// Resolves the destination callee for a cloned call. Reuses a function
  /// with the same name in Dst, otherwise clones a declaration.
  Function *mapCallee(const Function *F) {
    auto It = ValueMap.find(F);
    if (It != ValueMap.end())
      return cast<Function>(It->second);
    if (Function *Existing = Dst.getFunction(F->getName())) {
      ValueMap[F] = Existing;
      return Existing;
    }
    auto *FT = cast<FunctionType>(translateType(F->getType(), Dst.getTypes()));
    Function *NewF = Dst.createFunction(FT, F->getName());
    NewF->setIntrinsicID(F->getIntrinsicID());
    NewF->setFnAttrs(F->getFnAttrs());
    for (unsigned I = 0; I != F->getNumArgs(); ++I)
      NewF->paramAttrs(I) = F->paramAttrs(I);
    ValueMap[F] = NewF;
    return NewF;
  }

  Instruction *cloneInstruction(const Instruction *I);
  void cloneBody(const Function &Src, Function *NewF);
};

Instruction *Cloner::cloneInstruction(const Instruction *I) {
  TypeContext &TC = Dst.getTypes();
  Type *VoidTy = TC.getVoidTy();

  // Gathers mapped operands, recording fixups for forward references.
  auto Op = [&](unsigned Idx) {
    bool NeedsFixup;
    Value *V = mapOperand(I->getOperand(Idx), NeedsFixup);
    return std::pair<Value *, bool>(V, NeedsFixup);
  };
  Instruction *New = nullptr;
  std::vector<unsigned> PendingFixups; // operand indices needing fixup

  auto Take = [&](unsigned Idx) {
    auto [V, Fix] = Op(Idx);
    if (Fix)
      PendingFixups.push_back(Idx);
    return V;
  };

  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    const auto *B = cast<BinaryInst>(I);
    auto *NB = new BinaryInst(B->getBinOp(), Take(0), Take(1));
    NB->setNUW(B->hasNUW());
    NB->setNSW(B->hasNSW());
    NB->setExact(B->isExact());
    New = NB;
    break;
  }
  case Value::VK_ICmpInst: {
    const auto *C = cast<ICmpInst>(I);
    New = new ICmpInst(C->getPredicate(), Take(0), Take(1), TC.getIntTy(1));
    break;
  }
  case Value::VK_SelectInst:
    New = new SelectInst(Take(0), Take(1), Take(2));
    break;
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    New = new CastInst(C->getCastOp(), Take(0),
                       translateType(C->getType(), TC));
    break;
  }
  case Value::VK_FreezeInst:
    New = new FreezeInst(Take(0));
    break;
  case Value::VK_PhiNode: {
    const auto *P = cast<PhiNode>(I);
    auto *NP = new PhiNode(translateType(P->getType(), TC));
    for (unsigned K = 0; K != P->getNumIncoming(); ++K) {
      auto [V, Fix] = Op(K);
      NP->addIncoming(V, mapBlock(P->getIncomingBlock(K)));
      if (Fix)
        PendingFixups.push_back(K);
    }
    New = NP;
    break;
  }
  case Value::VK_CallInst: {
    const auto *C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (unsigned K = 0; K != C->getNumArgs(); ++K) {
      auto [V, Fix] = Op(K);
      Args.push_back(V);
      if (Fix)
        PendingFixups.push_back(K);
    }
    New = new CallInst(mapCallee(C->getCallee()), Args,
                       translateType(C->getType(), TC));
    break;
  }
  case Value::VK_LoadInst: {
    const auto *L = cast<LoadInst>(I);
    New = new LoadInst(translateType(L->getType(), TC), Take(0),
                       L->getAlign());
    break;
  }
  case Value::VK_StoreInst: {
    const auto *S = cast<StoreInst>(I);
    New = new StoreInst(Take(0), Take(1), VoidTy, S->getAlign());
    break;
  }
  case Value::VK_AllocaInst: {
    const auto *A = cast<AllocaInst>(I);
    New = new AllocaInst(translateType(A->getAllocatedType(), TC),
                         TC.getPointerTy(), A->getAlign());
    break;
  }
  case Value::VK_GEPInst: {
    const auto *G = cast<GEPInst>(I);
    New = new GEPInst(translateType(G->getSourceElementType(), TC), Take(0),
                      Take(1), TC.getPointerTy(), G->isInBounds());
    break;
  }
  case Value::VK_ExtractElementInst:
    New = new ExtractElementInst(Take(0), Take(1));
    break;
  case Value::VK_InsertElementInst:
    New = new InsertElementInst(Take(0), Take(1), Take(2));
    break;
  case Value::VK_ShuffleVectorInst: {
    const auto *SV = cast<ShuffleVectorInst>(I);
    New = new ShuffleVectorInst(
        Take(0), Take(1), SV->getMask(),
        cast<VectorType>(translateType(SV->getType(), TC)));
    break;
  }
  case Value::VK_ReturnInst: {
    const auto *R = cast<ReturnInst>(I);
    New = new ReturnInst(R->getReturnValue() ? Take(0) : nullptr, VoidTy);
    break;
  }
  case Value::VK_BranchInst: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional())
      New = new BranchInst(Take(0), mapBlock(B->getSuccessor(0)),
                           mapBlock(B->getSuccessor(1)), VoidTy);
    else
      New = new BranchInst(mapBlock(B->getSuccessor(0)), VoidTy);
    break;
  }
  case Value::VK_SwitchInst: {
    const auto *S = cast<SwitchInst>(I);
    auto *NS = new SwitchInst(Take(0), mapBlock(S->getDefaultDest()), VoidTy);
    for (unsigned K = 0; K != S->getNumCases(); ++K)
      NS->addCase(S->getCaseValue(K), mapBlock(S->getCaseDest(K)));
    New = NS;
    break;
  }
  case Value::VK_UnreachableInst:
    New = new UnreachableInst(VoidTy);
    break;
  default:
    assert(false && "unknown instruction kind");
  }

  New->setName(I->getName());
  for (unsigned Idx : PendingFixups)
    Fixups.push_back({New, Idx, I->getOperand(Idx)});
  return New;
}

void Cloner::cloneBody(const Function &Src, Function *NewF) {
  // Map arguments.
  for (unsigned I = 0; I != Src.getNumArgs(); ++I) {
    NewF->getArg(I)->setName(Src.getArg(I)->getName());
    ValueMap[Src.getArg(I)] = NewF->getArg(I);
  }
  if (Src.isDeclaration())
    return;

  // Create all blocks first so branch targets resolve.
  for (BasicBlock *BB : Src.blocks())
    ValueMap[BB] = NewF->addBlock(BB->getName());

  // Clone instructions, then resolve forward references.
  for (BasicBlock *BB : Src.blocks()) {
    auto *NewBB = cast<BasicBlock>(ValueMap[BB]);
    for (Instruction *I : BB->insts()) {
      Instruction *NewI = cloneInstruction(I);
      NewBB->append(std::unique_ptr<Instruction>(NewI));
      ValueMap[I] = NewI;
    }
  }
  for (const Fixup &F : Fixups) {
    auto It = ValueMap.find(F.SrcVal);
    assert(It != ValueMap.end() && "unresolved forward reference");
    F.U->setOperand(F.OpIdx, It->second);
  }
  Fixups.clear();
}

} // namespace

Function *alive::cloneFunction(const Function &Src, Module &Dst,
                               const std::string &NewName) {
  Cloner C(Dst);
  auto *FT =
      cast<FunctionType>(translateType(Src.getType(), Dst.getTypes()));
  Function *NewF = Dst.createFunction(FT, NewName);
  NewF->setIntrinsicID(Src.getIntrinsicID());
  NewF->setFnAttrs(Src.getFnAttrs());
  for (unsigned I = 0; I != Src.getNumArgs(); ++I)
    NewF->paramAttrs(I) = Src.paramAttrs(I);
  C.ValueMap[&Src] = NewF;
  C.cloneBody(Src, NewF);
  return NewF;
}

std::unique_ptr<Module> alive::cloneModule(const Module &Src) {
  auto Dst = std::make_unique<Module>();
  Cloner C(*Dst);
  // Declare every function first (so calls resolve in one pass) ...
  for (Function *F : Src.functions())
    C.mapCallee(F);
  // ... then clone all bodies.
  for (Function *F : Src.functions()) {
    Cloner BodyCloner(*Dst);
    BodyCloner.ValueMap = C.ValueMap;
    BodyCloner.cloneBody(*F, cast<Function>(C.ValueMap[F]));
  }
  return Dst;
}

std::unique_ptr<Module>
alive::cloneModuleSubset(const Module &Src,
                         const std::vector<std::string> &Keep) {
  // Select the kept functions plus the transitive closure of *defined*
  // callees: the interpreter executes callee bodies, so a kept body's
  // defined callees must come along with their bodies too. Everything else
  // is reduced to a declaration stub.
  std::set<const Function *> Selected;
  std::vector<const Function *> Worklist;
  for (const std::string &Name : Keep)
    if (Function *F = Src.getFunction(Name))
      if (Selected.insert(F).second)
        Worklist.push_back(F);
  while (!Worklist.empty()) {
    const Function *F = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *BB : F->blocks())
      for (Instruction *I : BB->insts())
        if (const auto *Call = dyn_cast<CallInst>(I))
          if (Function *Callee = Call->getCallee())
            if (!Callee->isDeclaration() && Selected.insert(Callee).second)
              Worklist.push_back(Callee);
  }

  auto Dst = std::make_unique<Module>();
  Cloner C(*Dst);
  // Declare every function in module order — the subset clone keeps the
  // same function list as a full clone (only bodies are dropped), so name
  // lookups and module iteration order are unchanged.
  for (Function *F : Src.functions())
    C.mapCallee(F);
  for (Function *F : Src.functions()) {
    if (!Selected.count(F))
      continue;
    Cloner BodyCloner(*Dst);
    BodyCloner.ValueMap = C.ValueMap;
    BodyCloner.cloneBody(*F, cast<Function>(C.ValueMap[F]));
  }
  return Dst;
}
