//===- ir/Interpreter.cpp - Concrete IR evaluator --------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "support/Cancellation.h"

#include <map>

using namespace alive;

uint64_t alive::oracleHash(uint64_t Seed, uint64_t A, uint64_t B, uint64_t C) {
  // splitmix64-style mixing.
  uint64_t X = Seed ^ (A * 0x9E3779B97F4A7C15ULL) ^
               (B * 0xBF58476D1CE4E5B9ULL) ^ (C * 0x94D049BB133111EBULL);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return X;
}

Memory::Memory()
    : Bytes(Size, 0), Init(Size, 0), PoisonShadow(Size, 0) {}

uint64_t Memory::allocate(uint64_t NumBytes, uint64_t Align) {
  if (Align == 0)
    Align = 1;
  uint64_t Base = (Bump + Align - 1) / Align * Align;
  if (NumBytes == 0)
    NumBytes = 1; // zero-sized allocations still get distinct addresses
  if (Base + NumBytes > Size)
    return 0;
  Bump = Base + NumBytes;
  Allocs.push_back({Base, NumBytes});
  return Base;
}

bool Memory::inBounds(uint64_t Addr, uint64_t NumBytes) const {
  uint64_t Base, Len;
  if (!findAllocation(Addr, Base, Len))
    return false;
  return Addr + NumBytes <= Base + Len;
}

bool Memory::findAllocation(uint64_t Addr, uint64_t &Base,
                            uint64_t &Len) const {
  for (const auto &[B, L] : Allocs) {
    if (Addr >= B && Addr < B + L) {
      Base = B;
      Len = L;
      return true;
    }
  }
  return false;
}

namespace {

/// Byte size of a first-class type in the memory model.
uint64_t storeSizeOf(const Type *T) {
  if (T->isPointerTy())
    return 8;
  if (const auto *VT = dyn_cast<VectorType>(T))
    return VT->getNumElements() * storeSizeOf(VT->getElementType());
  return (T->getIntegerBitWidth() + 7) / 8;
}

unsigned laneBitsOf(const Type *T) {
  if (T->isPointerTy())
    return PtrBits;
  return T->getScalarType()->getIntegerBitWidth();
}

unsigned laneCountOf(const Type *T) {
  if (const auto *VT = dyn_cast<VectorType>(T))
    return VT->getNumElements();
  return 1;
}

/// Evaluates one binary op on concrete lanes.
/// \p UB is set for division-family trap conditions.
Lane evalBinOp(const BinaryInst *B, const Lane &L, const Lane &R, bool &UB) {
  UB = false;
  unsigned W = L.Val.getBitWidth();
  BinaryInst::BinOp Op = B->getBinOp();

  // Division family: a poison or zero divisor is immediate UB.
  if (BinaryInst::isDivRem(Op)) {
    if (R.Poison || R.Val.isZero()) {
      UB = true;
      return Lane::poison(W);
    }
    if ((Op == BinaryInst::SDiv || Op == BinaryInst::SRem) &&
        L.Val.isSignedMinValue() && R.Val.isAllOnes() && !L.Poison) {
      UB = true; // signed overflow on division is UB
      return Lane::poison(W);
    }
  }
  if (L.Poison || R.Poison)
    return Lane::poison(W);

  bool Ov = false;
  APInt Res = APInt::getZero(W);
  switch (Op) {
  case BinaryInst::Add: {
    Res = L.Val + R.Val;
    if (B->hasNUW()) {
      L.Val.uadd_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    if (B->hasNSW()) {
      L.Val.sadd_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    break;
  }
  case BinaryInst::Sub: {
    Res = L.Val - R.Val;
    if (B->hasNUW()) {
      L.Val.usub_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    if (B->hasNSW()) {
      L.Val.ssub_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    break;
  }
  case BinaryInst::Mul: {
    Res = L.Val * R.Val;
    if (B->hasNUW()) {
      L.Val.umul_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    if (B->hasNSW()) {
      L.Val.smul_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    break;
  }
  case BinaryInst::UDiv:
    Res = L.Val.udiv(R.Val);
    if (B->isExact() && !L.Val.urem(R.Val).isZero())
      return Lane::poison(W);
    break;
  case BinaryInst::SDiv:
    Res = L.Val.sdiv(R.Val);
    if (B->isExact() && !L.Val.srem(R.Val).isZero())
      return Lane::poison(W);
    break;
  case BinaryInst::URem:
    Res = L.Val.urem(R.Val);
    break;
  case BinaryInst::SRem:
    Res = L.Val.srem(R.Val);
    break;
  case BinaryInst::Shl: {
    if (R.Val.uge(APInt(W, W)))
      return Lane::poison(W);
    Res = L.Val.shl(R.Val);
    if (B->hasNUW()) {
      L.Val.ushl_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    if (B->hasNSW()) {
      L.Val.sshl_ov(R.Val, Ov);
      if (Ov)
        return Lane::poison(W);
    }
    break;
  }
  case BinaryInst::LShr:
    if (R.Val.uge(APInt(W, W)))
      return Lane::poison(W);
    Res = L.Val.lshr(R.Val);
    if (B->isExact() && Res.shl(R.Val) != L.Val)
      return Lane::poison(W);
    break;
  case BinaryInst::AShr:
    if (R.Val.uge(APInt(W, W)))
      return Lane::poison(W);
    Res = L.Val.ashr(R.Val);
    if (B->isExact() && Res.shl(R.Val) != L.Val)
      return Lane::poison(W);
    break;
  case BinaryInst::And:
    Res = L.Val & R.Val;
    break;
  case BinaryInst::Or:
    Res = L.Val | R.Val;
    break;
  case BinaryInst::Xor:
    Res = L.Val ^ R.Val;
    break;
  case BinaryInst::NumBinOps:
    assert(false);
  }
  return Lane::of(Res);
}

/// Evaluates a pure intrinsic on concrete lanes (scalar only in this IR).
Lane evalIntrinsic(IntrinsicID ID, const std::vector<Lane> &Args,
                   unsigned W) {
  for (const Lane &A : Args)
    if (A.Poison)
      return Lane::poison(W);
  const APInt &X = Args[0].Val;
  switch (ID) {
  case IntrinsicID::SMin:
    return Lane::of(X.smin(Args[1].Val));
  case IntrinsicID::SMax:
    return Lane::of(X.smax(Args[1].Val));
  case IntrinsicID::UMin:
    return Lane::of(X.umin(Args[1].Val));
  case IntrinsicID::UMax:
    return Lane::of(X.umax(Args[1].Val));
  case IntrinsicID::Abs:
    if (X.isSignedMinValue() && !Args[1].Val.isZero())
      return Lane::poison(W);
    return Lane::of(X.abs());
  case IntrinsicID::BSwap:
    return Lane::of(X.byteSwap());
  case IntrinsicID::CtPop:
    return Lane::of(APInt(W, X.popcount()));
  case IntrinsicID::Ctlz:
    if (X.isZero() && !Args[1].Val.isZero())
      return Lane::poison(W);
    return Lane::of(APInt(W, X.countLeadingZeros()));
  case IntrinsicID::Cttz:
    if (X.isZero() && !Args[1].Val.isZero())
      return Lane::poison(W);
    return Lane::of(APInt(W, X.countTrailingZeros()));
  case IntrinsicID::UAddSat:
    return Lane::of(X.uadd_sat(Args[1].Val));
  case IntrinsicID::USubSat:
    return Lane::of(X.usub_sat(Args[1].Val));
  case IntrinsicID::SAddSat:
    return Lane::of(X.sadd_sat(Args[1].Val));
  case IntrinsicID::SSubSat:
    return Lane::of(X.ssub_sat(Args[1].Val));
  case IntrinsicID::Fshl: {
    unsigned S = (unsigned)Args[2].Val.urem(APInt(W, W)).getZExtValue();
    if (S == 0)
      return Lane::of(X);
    return Lane::of(X.shl(S) | Args[1].Val.lshr(W - S));
  }
  case IntrinsicID::Fshr: {
    unsigned S = (unsigned)Args[2].Val.urem(APInt(W, W)).getZExtValue();
    if (S == 0)
      return Lane::of(Args[1].Val);
    return Lane::of(X.shl(W - S) | Args[1].Val.lshr(S));
  }
  case IntrinsicID::Assume:
  case IntrinsicID::NotIntrinsic:
    break;
  }
  assert(false && "not a pure intrinsic");
  return Lane::poison(W);
}

} // namespace

ExecResult Interpreter::run(const Function &F,
                            const std::vector<ConcVal> &Args) {
  FuelUsed = 0;
  ExternCallCounter = 0;
  return runFrame(F, Args, 0);
}

ExecResult Interpreter::runFrame(const Function &F,
                                 const std::vector<ConcVal> &Args,
                                 unsigned Depth) {
  ExecResult Res;
  if (Depth > Opts.MaxDepth) {
    Res.Status = ExecStatus::Unsupported;
    return Res;
  }
  assert(!F.isDeclaration() && "cannot interpret a declaration");
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");

  std::map<const Value *, ConcVal> Vals;
  for (unsigned I = 0; I != Args.size(); ++I)
    Vals[F.getArg(I)] = Args[I];

  auto ub = [&](const std::string &Why) {
    Res.Status = ExecStatus::UB;
    Res.UBReason = Why;
    return Res;
  };

  // Resolves a Value to a runtime value. Undef constants resolve to zero
  // (see the nondeterminism policy in the header).
  auto getVal = [&](const Value *V) -> ConcVal {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return ConcVal::scalar(CI->getValue());
    if (isa<ConstantPoison>(V)) {
      ConcVal CV;
      unsigned Lanes = laneCountOf(V->getType());
      for (unsigned I = 0; I != Lanes; ++I)
        CV.Lanes.push_back(Lane::poison(laneBitsOf(V->getType())));
      return CV;
    }
    if (isa<ConstantUndef>(V)) {
      ConcVal CV;
      unsigned Lanes = laneCountOf(V->getType());
      for (unsigned I = 0; I != Lanes; ++I)
        CV.Lanes.push_back(Lane::of(APInt::getZero(laneBitsOf(V->getType()))));
      return CV;
    }
    if (isa<ConstantNullPtr>(V))
      return ConcVal::scalar(APInt::getZero(PtrBits));
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      ConcVal Out;
      unsigned W = laneBitsOf(V->getType());
      for (unsigned I = 0; I != CV->getNumElements(); ++I) {
        const Constant *E = CV->getElement(I);
        if (const auto *EI = dyn_cast<ConstantInt>(E))
          Out.Lanes.push_back(Lane::of(EI->getValue()));
        else if (isa<ConstantPoison>(E))
          Out.Lanes.push_back(Lane::poison(W));
        else
          Out.Lanes.push_back(Lane::of(APInt::getZero(W))); // undef elem
      }
      return Out;
    }
    auto It = Vals.find(V);
    assert(It != Vals.end() && "use of an unevaluated value");
    return It->second;
  };

  // Converts a lane value to/from memory bytes.
  auto loadLane = [&](uint64_t Addr, unsigned Bits, Lane &Out) {
    unsigned NumBytes = (Bits + 7) / 8;
    APInt V = APInt::getZero(Bits);
    bool AnyPoison = false;
    for (unsigned I = 0; I != NumBytes; ++I) {
      // Uninitialized bytes are undef; undef resolves to zero everywhere
      // in this toolchain (see the nondeterminism policy).
      uint8_t B = Mem.isInit(Addr + I) ? Mem.readByte(Addr + I) : 0;
      AnyPoison |= Mem.isPoison(Addr + I);
      unsigned Shift = I * 8;
      if (Shift < Bits) {
        APInt Byte(Bits, B);
        unsigned Room = Bits - Shift;
        if (Room < 8)
          Byte = APInt(Bits, B & ((1u << Room) - 1));
        V = V | Byte.shl(Shift);
      }
    }
    Out = AnyPoison ? Lane::poison(Bits) : Lane::of(V);
  };
  auto storeLane = [&](uint64_t Addr, const Lane &L) {
    unsigned Bits = L.Val.getBitWidth();
    unsigned NumBytes = (Bits + 7) / 8;
    for (unsigned I = 0; I != NumBytes; ++I) {
      unsigned Shift = I * 8;
      uint8_t B = Shift < Bits
                      ? (uint8_t)L.Val.lshr(Shift).getLoBits64()
                      : 0;
      Mem.writeByte(Addr + I, B, L.Poison);
    }
  };

  const BasicBlock *BB = F.getEntryBlock();
  const BasicBlock *PrevBB = nullptr;

  for (;;) {
    // Phi nodes execute in parallel at block entry.
    if (PrevBB) {
      std::vector<std::pair<const PhiNode *, ConcVal>> PhiVals;
      for (Instruction *I : BB->insts()) {
        const auto *Phi = dyn_cast<PhiNode>(I);
        if (!Phi)
          break;
        Value *In = Phi->getIncomingValueForBlock(PrevBB);
        assert(In && "no phi incoming value for predecessor");
        PhiVals.push_back({Phi, getVal(In)});
      }
      for (auto &[Phi, V] : PhiVals)
        Vals[Phi] = V;
    }

    const Instruction *Term = nullptr;
    for (Instruction *I : BB->insts()) {
      if (isa<PhiNode>(I))
        continue;
      if (++FuelUsed > Opts.Fuel) {
        Res.Status = ExecStatus::OutOfFuel;
        return Res;
      }
      // Watchdog steps are consumed in batches of 64 so the hot loop pays
      // one relaxed atomic add per 64 instructions, not per instruction.
      if (Opts.Token && (FuelUsed & 63) == 0 && Opts.Token->consume(64)) {
        Res.Status = ExecStatus::Cancelled;
        return Res;
      }
      if (I->isTerminator()) {
        Term = I;
        break;
      }

      switch (I->getKind()) {
      case Value::VK_BinaryInst: {
        const auto *B = cast<BinaryInst>(I);
        ConcVal L = getVal(B->getLHS()), R = getVal(B->getRHS());
        ConcVal Out;
        for (unsigned K = 0; K != L.Lanes.size(); ++K) {
          bool UB = false;
          Out.Lanes.push_back(evalBinOp(B, L.Lanes[K], R.Lanes[K], UB));
          if (UB)
            return ub("division trap in " + I->getOpcodeName());
        }
        Vals[I] = Out;
        break;
      }
      case Value::VK_ICmpInst: {
        const auto *C = cast<ICmpInst>(I);
        Lane L = getVal(C->getLHS()).lane(), R = getVal(C->getRHS()).lane();
        if (L.Poison || R.Poison)
          Vals[I] = ConcVal::scalarPoison(1);
        else
          Vals[I] = ConcVal::scalar(
              APInt(1, ICmpInst::evaluate(C->getPredicate(), L.Val, R.Val)));
        break;
      }
      case Value::VK_SelectInst: {
        const auto *S = cast<SelectInst>(I);
        Lane Cond = getVal(S->getCondition()).lane();
        if (Cond.Poison) {
          ConcVal Out;
          unsigned Lanes = laneCountOf(S->getType());
          for (unsigned K = 0; K != Lanes; ++K)
            Out.Lanes.push_back(Lane::poison(laneBitsOf(S->getType())));
          Vals[I] = Out;
        } else {
          Vals[I] = getVal(Cond.Val.isZero() ? S->getFalseValue()
                                             : S->getTrueValue());
        }
        break;
      }
      case Value::VK_CastInst: {
        const auto *C = cast<CastInst>(I);
        Lane In = getVal(C->getSrc()).lane();
        unsigned DstW = C->getType()->getIntegerBitWidth();
        if (In.Poison) {
          Vals[I] = ConcVal::scalarPoison(DstW);
          break;
        }
        APInt V = In.Val;
        switch (C->getCastOp()) {
        case CastInst::Trunc:
          V = V.trunc(DstW);
          break;
        case CastInst::ZExt:
          V = V.zext(DstW);
          break;
        case CastInst::SExt:
          V = V.sext(DstW);
          break;
        }
        Vals[I] = ConcVal::scalar(V);
        break;
      }
      case Value::VK_FreezeInst: {
        const auto *Fr = cast<FreezeInst>(I);
        ConcVal In = getVal(Fr->getSrc());
        for (Lane &L : In.Lanes) {
          if (L.Poison) {
            // Frozen poison resolves to zero deterministically (see policy).
            L.Poison = false;
            L.Val = APInt::getZero(L.Val.getBitWidth());
          }
        }
        Vals[I] = In;
        break;
      }
      case Value::VK_CallInst: {
        const auto *C = cast<CallInst>(I);
        const Function *Callee = C->getCallee();
        std::vector<ConcVal> CallArgs;
        for (unsigned K = 0; K != C->getNumArgs(); ++K)
          CallArgs.push_back(getVal(C->getArg(K)));

        if (Callee->getIntrinsicID() == IntrinsicID::Assume) {
          Lane Cond = CallArgs[0].lane();
          if (Cond.Poison || Cond.Val.isZero())
            return ub("assume of false/poison");
          break;
        }
        if (Callee->isIntrinsic()) {
          std::vector<Lane> Lanes;
          for (const ConcVal &A : CallArgs)
            Lanes.push_back(A.lane());
          Vals[I] = ConcVal{{evalIntrinsic(Callee->getIntrinsicID(), Lanes,
                                           laneBitsOf(C->getType()))}};
          break;
        }
        if (!Callee->isDeclaration()) {
          ExecResult Sub = runFrame(*Callee, CallArgs, Depth + 1);
          if (Sub.Status != ExecStatus::Ok) {
            Res = Sub;
            return Res;
          }
          if (!Sub.IsVoid)
            Vals[I] = Sub.Ret;
          break;
        }

        // External call: environment oracle.
        bool WritesMemory = !Callee->hasFnAttr(FnAttr::ReadNone) &&
                            !Callee->hasFnAttr(FnAttr::ReadOnly);
        uint64_t Counter = WritesMemory ? ++ExternCallCounter : 0;
        uint64_t ArgMix = 0;
        for (const ConcVal &A : CallArgs)
          for (const Lane &L : A.Lanes)
            ArgMix = oracleHash(ArgMix, L.Poison ? ~0ULL : 0,
                                L.Val.getLoBits64(), L.Val.getHiBits64());
        if (WritesMemory) {
          for (unsigned K = 0; K != C->getNumArgs(); ++K) {
            if (!C->getArg(K)->getType()->isPointerTy())
              continue;
            if (K < Callee->getNumArgs() &&
                Callee->paramAttrs(K).ReadOnly)
              continue;
            Lane P = CallArgs[K].lane();
            if (P.Poison)
              return ub("poison pointer escapes to external call");
            uint64_t Base, Len;
            if (Mem.findAllocation(P.Val.getZExtValue(), Base, Len)) {
              for (uint64_t Off = 0; Off != Len; ++Off)
                Mem.writeByte(Base + Off,
                              (uint8_t)oracleHash(Opts.TrialSeed, Base + Off,
                                                  Counter),
                              /*Poison=*/false);
            }
          }
        }
        if (!C->getType()->isVoidTy()) {
          unsigned W = laneBitsOf(C->getType());
          uint64_t NameMix = 0;
          for (char Ch : Callee->getName())
            NameMix = NameMix * 131 + (uint8_t)Ch;
          uint64_t H = oracleHash(Opts.TrialSeed, NameMix, ArgMix, Counter);
          uint64_t H2 = oracleHash(Opts.TrialSeed, NameMix + 1, ArgMix, Counter);
          Vals[I] = ConcVal::scalar(APInt::fromParts(W, H, H2));
        }
        break;
      }
      case Value::VK_LoadInst: {
        const auto *L = cast<LoadInst>(I);
        Lane P = getVal(L->getPointer()).lane();
        if (P.Poison)
          return ub("load of poison pointer");
        uint64_t Addr = P.Val.getZExtValue();
        uint64_t Sz = storeSizeOf(L->getType());
        if (!Mem.inBounds(Addr, Sz))
          return ub("out-of-bounds or null load");
        if (L->getAlign() > 1 && Addr % L->getAlign() != 0)
          return ub("misaligned load");
        ConcVal Out;
        unsigned LaneBits = laneBitsOf(L->getType());
        unsigned NumLanes = laneCountOf(L->getType());
        uint64_t LaneBytes = Sz / NumLanes;
        for (unsigned K = 0; K != NumLanes; ++K) {
          Lane Ln;
          loadLane(Addr + K * LaneBytes, LaneBits, Ln);
          Out.Lanes.push_back(Ln);
        }
        Vals[I] = Out;
        break;
      }
      case Value::VK_StoreInst: {
        const auto *S = cast<StoreInst>(I);
        Lane P = getVal(S->getPointer()).lane();
        if (P.Poison)
          return ub("store to poison pointer");
        ConcVal V = getVal(S->getValueOperand());
        uint64_t Addr = P.Val.getZExtValue();
        uint64_t Sz = storeSizeOf(S->getValueOperand()->getType());
        if (!Mem.inBounds(Addr, Sz))
          return ub("out-of-bounds or null store");
        if (S->getAlign() > 1 && Addr % S->getAlign() != 0)
          return ub("misaligned store");
        uint64_t LaneBytes = Sz / V.Lanes.size();
        for (unsigned K = 0; K != V.Lanes.size(); ++K)
          storeLane(Addr + K * LaneBytes, V.Lanes[K]);
        break;
      }
      case Value::VK_AllocaInst: {
        const auto *A = cast<AllocaInst>(I);
        uint64_t Addr =
            Mem.allocate(storeSizeOf(A->getAllocatedType()), A->getAlign());
        if (!Addr)
          return ub("out of stack memory");
        Vals[I] = ConcVal::scalar(APInt(PtrBits, Addr));
        break;
      }
      case Value::VK_GEPInst: {
        const auto *G = cast<GEPInst>(I);
        Lane P = getVal(G->getPointer()).lane();
        Lane Idx = getVal(G->getIndex()).lane();
        if (P.Poison || Idx.Poison) {
          Vals[I] = ConcVal::scalarPoison(PtrBits);
          break;
        }
        uint64_t Scale = storeSizeOf(G->getSourceElementType());
        APInt Offset = Idx.Val.sextOrTrunc(PtrBits) * APInt(PtrBits, Scale);
        APInt NewPtr = P.Val + Offset;
        if (G->isInBounds()) {
          uint64_t Base, Len;
          bool Known =
              Mem.findAllocation(P.Val.getZExtValue(), Base, Len);
          uint64_t NP = NewPtr.getZExtValue();
          if (!Known || NP < Base || NP > Base + Len) {
            Vals[I] = ConcVal::scalarPoison(PtrBits);
            break;
          }
        }
        Vals[I] = ConcVal::scalar(NewPtr);
        break;
      }
      case Value::VK_ExtractElementInst: {
        const auto *E = cast<ExtractElementInst>(I);
        ConcVal Vec = getVal(E->getVector());
        Lane Idx = getVal(E->getIndex()).lane();
        unsigned W = laneBitsOf(I->getType());
        if (Idx.Poison || Idx.Val.uge(APInt(Idx.Val.getBitWidth(),
                                            Vec.Lanes.size())))
          Vals[I] = ConcVal::scalarPoison(W);
        else
          Vals[I] = ConcVal{{Vec.Lanes[(size_t)Idx.Val.getZExtValue()]}};
        break;
      }
      case Value::VK_InsertElementInst: {
        const auto *E = cast<InsertElementInst>(I);
        ConcVal Vec = getVal(E->getVector());
        Lane Elt = getVal(E->getElement()).lane();
        Lane Idx = getVal(E->getIndex()).lane();
        if (Idx.Poison ||
            Idx.Val.uge(APInt(Idx.Val.getBitWidth(), Vec.Lanes.size()))) {
          for (Lane &L : Vec.Lanes)
            L = Lane::poison(L.Val.getBitWidth());
        } else {
          Vec.Lanes[(size_t)Idx.Val.getZExtValue()] = Elt;
        }
        Vals[I] = Vec;
        break;
      }
      case Value::VK_ShuffleVectorInst: {
        const auto *SV = cast<ShuffleVectorInst>(I);
        ConcVal V1 = getVal(SV->getV1()), V2 = getVal(SV->getV2());
        unsigned N = (unsigned)V1.Lanes.size();
        unsigned W = laneBitsOf(I->getType());
        ConcVal Out;
        for (int M : SV->getMask()) {
          if (M < 0)
            Out.Lanes.push_back(Lane::poison(W));
          else if ((unsigned)M < N)
            Out.Lanes.push_back(V1.Lanes[M]);
          else
            Out.Lanes.push_back(V2.Lanes[M - N]);
        }
        Vals[I] = Out;
        break;
      }
      default:
        Res.Status = ExecStatus::Unsupported;
        return Res;
      }
    }

    assert(Term && "block without terminator");
    ++FuelUsed;

    switch (Term->getKind()) {
    case Value::VK_ReturnInst: {
      const auto *R = cast<ReturnInst>(Term);
      Res.Status = ExecStatus::Ok;
      if (Value *RV = R->getReturnValue())
        Res.Ret = getVal(RV);
      else
        Res.IsVoid = true;
      return Res;
    }
    case Value::VK_BranchInst: {
      const auto *Br = cast<BranchInst>(Term);
      if (!Br->isConditional()) {
        PrevBB = BB;
        BB = Br->getSuccessor(0);
        break;
      }
      Lane Cond = getVal(Br->getCondition()).lane();
      if (Cond.Poison)
        return ub("branch on poison");
      PrevBB = BB;
      BB = Br->getSuccessor(Cond.Val.isZero() ? 1 : 0);
      break;
    }
    case Value::VK_SwitchInst: {
      const auto *Sw = cast<SwitchInst>(Term);
      Lane Cond = getVal(Sw->getCondition()).lane();
      if (Cond.Poison)
        return ub("switch on poison");
      const BasicBlock *Dest = Sw->getDefaultDest();
      for (unsigned K = 0; K != Sw->getNumCases(); ++K)
        if (Sw->getCaseValue(K) == Cond.Val) {
          Dest = Sw->getCaseDest(K);
          break;
        }
      PrevBB = BB;
      BB = Dest;
      break;
    }
    case Value::VK_UnreachableInst:
      return ub("reached unreachable");
    default:
      assert(false && "unknown terminator");
    }
  }
}
