//===- ir/Interpreter.h - Concrete IR evaluator ----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete evaluator for the miniature IR with full poison/undef/UB
/// tracking and a byte-addressed memory model. It serves three roles:
///   1. the concrete-enumeration fallback of the translation validator
///      (functions that touch memory, or that exceed SAT limits);
///   2. replay/confirmation of counterexample models produced by the SAT
///      path (guarding against encoder bugs and freeze/undef ambiguity);
///   3. the oracle that unit tests cross-check the SMT bit-blaster against.
///
/// Nondeterminism policy (documented substitution for Alive2's quantified
/// undef semantics): undef bytes and frozen poison resolve deterministically
/// from a per-trial seed and stable context (memory address / zero), so a
/// source and target execution under the same seed observe the same
/// environment. External (unknown) calls are modeled by an "environment
/// oracle": deterministic return values derived from the seed, callee name
/// and arguments, plus havoc writes to writable pointer arguments.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INTERPRETER_H
#define IR_INTERPRETER_H

#include "ir/Module.h"
#include "support/APInt.h"

#include <cstdint>
#include <vector>

namespace alive {

class CancellationToken;

/// One scalar lane of a runtime value: poison, or a concrete bit pattern.
struct Lane {
  bool Poison = false;
  APInt Val;

  static Lane poison(unsigned Bits) {
    Lane L;
    L.Poison = true;
    L.Val = APInt::getZero(Bits);
    return L;
  }
  static Lane of(APInt V) {
    Lane L;
    L.Val = V;
    return L;
  }
  bool operator==(const Lane &O) const {
    return Poison == O.Poison && (Poison || Val == O.Val);
  }
};

/// A runtime value: one lane per vector element (scalars and pointers have
/// exactly one lane; pointers are 64-bit addresses).
struct ConcVal {
  std::vector<Lane> Lanes;

  static ConcVal scalar(APInt V) { return ConcVal{{Lane::of(V)}}; }
  static ConcVal scalarPoison(unsigned Bits) {
    return ConcVal{{Lane::poison(Bits)}};
  }

  bool isScalar() const { return Lanes.size() == 1; }
  const Lane &lane() const {
    assert(Lanes.size() == 1 && "not a scalar");
    return Lanes[0];
  }
  bool anyPoison() const {
    for (const Lane &L : Lanes)
      if (L.Poison)
        return true;
    return false;
  }
};

/// Pointer width of the memory model.
constexpr unsigned PtrBits = 64;

/// Flat byte-addressed memory. Address 0 is the null pointer; a guard zone
/// below FirstValidAddr is never allocated.
class Memory {
public:
  static constexpr uint64_t Size = 1 << 16;
  static constexpr uint64_t FirstValidAddr = 64;

  Memory();

  /// Bump-allocates \p Bytes bytes with \p Align alignment; returns the
  /// address, or 0 if out of memory.
  uint64_t allocate(uint64_t Bytes, uint64_t Align);

  /// True if [Addr, Addr+Bytes) lies entirely within one allocation.
  bool inBounds(uint64_t Addr, uint64_t Bytes) const;
  /// Bounds of the allocation containing \p Addr; false if none.
  bool findAllocation(uint64_t Addr, uint64_t &Base, uint64_t &Len) const;

  // Raw byte access with poison/init shadow state.
  uint8_t readByte(uint64_t Addr) const { return Bytes[Addr]; }
  void writeByte(uint64_t Addr, uint8_t V, bool Poison) {
    Bytes[Addr] = V;
    Init[Addr] = 1;
    PoisonShadow[Addr] = Poison;
  }
  bool isInit(uint64_t Addr) const { return Init[Addr]; }
  bool isPoison(uint64_t Addr) const { return PoisonShadow[Addr]; }

  /// Deep copy for snapshot/restore around source/target runs.
  Memory clone() const { return *this; }

private:
  std::vector<uint8_t> Bytes;
  std::vector<uint8_t> Init;
  std::vector<uint8_t> PoisonShadow;
  uint64_t Bump = FirstValidAddr;
  std::vector<std::pair<uint64_t, uint64_t>> Allocs; // (base, len)
};

/// Why an execution stopped.
enum class ExecStatus {
  Ok,          ///< Returned normally.
  UB,          ///< Triggered undefined behavior.
  OutOfFuel,   ///< Exceeded the instruction budget (possible infinite loop).
  Unsupported, ///< Hit a construct outside the evaluator's domain.
  Cancelled,   ///< The iteration watchdog cancelled the execution. Distinct
               ///< from OutOfFuel: fuel exhaustion is a property of the
               ///< trial, cancellation a property of the enclosing
               ///< iteration's budget.
};

/// Outcome of interpreting one function call.
struct ExecResult {
  ExecStatus Status = ExecStatus::Ok;
  bool IsVoid = false;
  ConcVal Ret; ///< Valid when Status == Ok and !IsVoid.
  std::string UBReason;
};

/// Tunables and trial context for one execution.
struct ExecOptions {
  /// Max instructions executed before OutOfFuel.
  uint64_t Fuel = 100000;
  /// Seed resolving undef bytes, frozen poison and the environment oracle.
  /// Source and target runs of a refinement trial must share it.
  uint64_t TrialSeed = 0;
  /// Max call depth for defined-function calls.
  unsigned MaxDepth = 16;
  /// Optional iteration watchdog: the interpreter consumes one token step
  /// per executed instruction (batched, checked every 64) and stops with
  /// ExecStatus::Cancelled when the token trips.
  CancellationToken *Token = nullptr;
};

/// Interprets functions of one module.
class Interpreter {
public:
  Interpreter(Memory &Mem, const ExecOptions &Opts) : Mem(Mem), Opts(Opts) {}

  /// Runs \p F on \p Args (one ConcVal per parameter). Respects the
  /// parameter attributes' preconditions: the caller promises noundef/
  /// nonnull/dereferenceable hold for the values it passes.
  ExecResult run(const Function &F, const std::vector<ConcVal> &Args);

private:
  friend class FrameScope;
  ExecResult runFrame(const Function &F, const std::vector<ConcVal> &Args,
                      unsigned Depth);

  Memory &Mem;
  ExecOptions Opts;
  uint64_t FuelUsed = 0;
  uint64_t ExternCallCounter = 0;
};

/// Deterministic 64-bit mix for the undef/environment oracle.
uint64_t oracleHash(uint64_t Seed, uint64_t A, uint64_t B = 0,
                    uint64_t C = 0);

} // namespace alive

#endif // IR_INTERPRETER_H
