//===- ir/Module.h - Top-level IR container --------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns a TypeContext, a constant pool, and a list of functions —
/// the unit the fuzzer parses, clones, mutates, optimizes and verifies.
///
//===----------------------------------------------------------------------===//

#ifndef IR_MODULE_H
#define IR_MODULE_H

#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace alive {

/// Top-level container of IR.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  TypeContext &getTypes() { return Types; }
  ConstantPoolCtx &getConstants() { return Constants; }

  /// Creates a function (definition starts empty = declaration until blocks
  /// are added). Name must be unique within the module.
  Function *createFunction(FunctionType *FT, const std::string &Name);

  /// Finds a function by name, or null.
  Function *getFunction(const std::string &Name) const;

  /// Declares (or returns the existing declaration of) the intrinsic \p ID
  /// specialized for value type \p ValTy (e.g. llvm.smin.i32).
  Function *getOrInsertIntrinsic(IntrinsicID ID, Type *ValTy);

  /// Destroys \p F; it must have no remaining uses (calls) elsewhere.
  void eraseFunction(Function *F);

  unsigned getNumFunctions() const { return (unsigned)Functions.size(); }
  Function *getFunctionAt(unsigned I) const { return Functions[I].get(); }

  class FnRange {
  public:
    explicit FnRange(const std::vector<std::unique_ptr<Function>> &V)
        : Vec(V) {}
    class Iter {
    public:
      Iter(const std::vector<std::unique_ptr<Function>> &V, size_t I)
          : Vec(V), Idx(I) {}
      Function *operator*() const { return Vec[Idx].get(); }
      Iter &operator++() {
        ++Idx;
        return *this;
      }
      bool operator!=(const Iter &O) const { return Idx != O.Idx; }

    private:
      const std::vector<std::unique_ptr<Function>> &Vec;
      size_t Idx;
    };
    Iter begin() const { return Iter(Vec, 0); }
    Iter end() const { return Iter(Vec, Vec.size()); }

  private:
    const std::vector<std::unique_ptr<Function>> &Vec;
  };
  FnRange functions() const { return FnRange(Functions); }

private:
  // Destruction order matters: functions reference types and constants, so
  // they are declared last (destroyed first).
  TypeContext Types;
  ConstantPoolCtx Constants;
  std::vector<std::unique_ptr<Function>> Functions;
};

/// Deep-clones \p Src into module \p Dst under the name \p NewName,
/// translating types/constants into Dst's contexts. Declarations referenced
/// by calls are cloned (as declarations) on demand.
Function *cloneFunction(const Function &Src, Module &Dst,
                        const std::string &NewName);

/// Deep-clones an entire module.
std::unique_ptr<Module> cloneModule(const Module &Src);

/// Clones \p Src keeping full bodies only for the functions named in
/// \p Keep (plus the transitive closure of defined callees their bodies
/// reach); every other function becomes a declaration stub. The function
/// list keeps \p Src 's order and names, so lookups and iteration order
/// match a full clone. This is the copy-on-write working set of the
/// mutate→optimize loop: per-iteration cost scales with the functions the
/// fuzzer actually touches, not with the whole module.
std::unique_ptr<Module> cloneModuleSubset(const Module &Src,
                                          const std::vector<std::string> &Keep);

/// Translates a type from one context into another.
Type *translateType(const Type *T, TypeContext &Dst);

} // namespace alive

#endif // IR_MODULE_H
