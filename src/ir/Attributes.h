//===- ir/Attributes.h - Function and parameter attributes -----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function- and parameter-level attributes (paper §IV-A). Attributes assert
/// facts the optimizer may exploit; the attribute-toggling mutation flips
/// them because "it is easy for compiler developers to forget to
/// consistently enforce their special semantics."
///
//===----------------------------------------------------------------------===//

#ifndef IR_ATTRIBUTES_H
#define IR_ATTRIBUTES_H

#include <cstdint>
#include <string>
#include <vector>

namespace alive {

/// Function-level attributes, stored as a bitmask.
enum class FnAttr : unsigned {
  None = 0,
  /// Does not call a memory-deallocation function.
  NoFree = 1u << 0,
  /// Always returns (no infinite loops, no abort).
  WillReturn = 1u << 1,
  /// Never unwinds.
  NoUnwind = 1u << 2,
  /// Reads no memory and has no side effects.
  ReadNone = 1u << 3,
  /// May read but never writes memory.
  ReadOnly = 1u << 4,
  /// Never returns to the caller.
  NoReturn = 1u << 5,
};

inline FnAttr operator|(FnAttr A, FnAttr B) {
  return FnAttr(unsigned(A) | unsigned(B));
}
inline FnAttr operator&(FnAttr A, FnAttr B) {
  return FnAttr(unsigned(A) & unsigned(B));
}
inline FnAttr operator^(FnAttr A, FnAttr B) {
  return FnAttr(unsigned(A) ^ unsigned(B));
}
inline bool any(FnAttr A) { return unsigned(A) != 0; }

/// All toggleable function attributes, for the §IV-A mutation.
inline const std::vector<FnAttr> &allFnAttrs() {
  static const std::vector<FnAttr> Attrs = {
      FnAttr::NoFree,   FnAttr::WillReturn, FnAttr::NoUnwind,
      FnAttr::ReadNone, FnAttr::ReadOnly,   FnAttr::NoReturn};
  return Attrs;
}

const char *fnAttrName(FnAttr A);

/// Per-parameter attributes.
struct ParamAttrs {
  bool NoCapture = false;
  bool NonNull = false;
  bool NoUndef = false;
  bool ReadOnly = false;
  /// 0 means absent; otherwise the guaranteed-dereferenceable byte count.
  uint64_t Dereferenceable = 0;

  bool operator==(const ParamAttrs &O) const {
    return NoCapture == O.NoCapture && NonNull == O.NonNull &&
           NoUndef == O.NoUndef && ReadOnly == O.ReadOnly &&
           Dereferenceable == O.Dereferenceable;
  }

  bool empty() const { return *this == ParamAttrs(); }

  /// Renders as " nocapture nonnull dereferenceable(8)" etc. (leading
  /// space per token), for the printer.
  std::string str() const;
};

} // namespace alive

#endif // IR_ATTRIBUTES_H
