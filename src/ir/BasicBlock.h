//===- ir/BasicBlock.h - Basic block ---------------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: an ordered list of instructions ending in a terminator.
/// The block owns its instructions; the mutator moves instructions around by
/// detaching (take) and re-inserting them.
///
//===----------------------------------------------------------------------===//

#ifndef IR_BASICBLOCK_H
#define IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include "ir/Value.h"

#include <memory>
#include <vector>

namespace alive {

class Function;

/// A basic block. Blocks are Values (of label type) so branch targets fit
/// the value model.
class BasicBlock : public Value {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_BasicBlock; }

  BasicBlock(Type *LabelTy, const std::string &Name) : Value(VK_BasicBlock, LabelTy) {
    setName(Name);
  }

  Function *getParent() const { return Parent; }

  unsigned size() const { return (unsigned)Insts.size(); }
  bool empty() const { return Insts.empty(); }
  Instruction *getInst(unsigned I) const {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I].get();
  }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The terminator, or null if the block is malformed/incomplete.
  Instruction *getTerminator() const {
    return !Insts.empty() && Insts.back()->isTerminator() ? Insts.back().get()
                                                          : nullptr;
  }

  /// Position of \p I within the block; asserts membership.
  unsigned indexOf(const Instruction *I) const {
    for (unsigned Idx = 0; Idx != Insts.size(); ++Idx)
      if (Insts[Idx].get() == I)
        return Idx;
    assert(false && "instruction not in this block");
    return ~0U;
  }

  /// Appends \p I (typically a terminator last).
  Instruction *append(std::unique_ptr<Instruction> I) {
    return insert((unsigned)Insts.size(), std::move(I));
  }

  /// Inserts \p I at position \p Idx.
  Instruction *insert(unsigned Idx, std::unique_ptr<Instruction> I) {
    assert(Idx <= Insts.size() && "insert position out of range");
    assert(!I->Parent && "instruction already has a parent");
    I->Parent = this;
    Instruction *Raw = I.get();
    Insts.insert(Insts.begin() + Idx, std::move(I));
    return Raw;
  }

  /// Detaches \p I from the block without destroying it.
  std::unique_ptr<Instruction> take(Instruction *I) {
    unsigned Idx = indexOf(I);
    std::unique_ptr<Instruction> Owned = std::move(Insts[Idx]);
    Insts.erase(Insts.begin() + Idx);
    Owned->Parent = nullptr;
    return Owned;
  }

  /// Destroys \p I. The instruction must have no remaining uses.
  void erase(Instruction *I) {
    assert(!I->hasUses() && "erasing an instruction that still has uses");
    take(I);
  }

  /// Iteration over raw instruction pointers.
  class InstRange {
  public:
    explicit InstRange(const std::vector<std::unique_ptr<Instruction>> &V)
        : Vec(V) {}
    class Iter {
    public:
      Iter(const std::vector<std::unique_ptr<Instruction>> &V, size_t I)
          : Vec(V), Idx(I) {}
      Instruction *operator*() const { return Vec[Idx].get(); }
      Iter &operator++() {
        ++Idx;
        return *this;
      }
      bool operator!=(const Iter &O) const { return Idx != O.Idx; }

    private:
      const std::vector<std::unique_ptr<Instruction>> &Vec;
      size_t Idx;
    };
    Iter begin() const { return Iter(Vec, 0); }
    Iter end() const { return Iter(Vec, Vec.size()); }

  private:
    const std::vector<std::unique_ptr<Instruction>> &Vec;
  };
  InstRange insts() const { return InstRange(Insts); }

  /// Predecessor blocks (computed by scanning users of this block's label
  /// is not possible since branches store raw successor pointers; instead
  /// Function provides predecessor queries).
  std::vector<BasicBlock *> successors() const {
    Instruction *T = getTerminator();
    return T ? getSuccessors(T) : std::vector<BasicBlock *>();
  }

private:
  friend class Function;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace alive

#endif // IR_BASICBLOCK_H
