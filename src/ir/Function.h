//===- ir/Function.h - Function and Argument -------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions (definitions and declarations, including intrinsics) and their
/// arguments. Functions own their arguments and basic blocks and carry the
/// attribute lists the §IV-A mutation toggles.
///
//===----------------------------------------------------------------------===//

#ifndef IR_FUNCTION_H
#define IR_FUNCTION_H

#include "ir/Attributes.h"
#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace alive {

class Function;
class Module;

/// A formal parameter of a function.
class Argument : public Value {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_Argument; }

  Argument(Type *T, const std::string &Name, unsigned Index)
      : Value(VK_Argument, T), Index(Index) {
    setName(Name);
  }

  unsigned getIndex() const { return Index; }
  void setIndex(unsigned I) { Index = I; }

private:
  unsigned Index;
};

/// Known intrinsic functions. Intrinsics are declarations whose behaviour
/// the interpreter and the SMT encoder implement natively.
enum class IntrinsicID {
  NotIntrinsic,
  SMin,
  SMax,
  UMin,
  UMax,
  Abs,     // llvm.abs(x, is_int_min_poison)
  BSwap,
  CtPop,
  Ctlz,    // llvm.ctlz(x, is_zero_poison)
  Cttz,
  UAddSat,
  USubSat,
  SAddSat,
  SSubSat,
  Fshl,
  Fshr,
  Assume,  // llvm.assume(i1)
};

const char *intrinsicBaseName(IntrinsicID ID);
/// Number of arguments the intrinsic takes.
unsigned intrinsicNumArgs(IntrinsicID ID);
/// True if the intrinsic is a pure value computation (not assume).
bool intrinsicIsPure(IntrinsicID ID);

/// A function definition or declaration.
class Function : public Value {
public:
  static bool classof(const Value *V) { return V->getKind() == VK_Function; }

  Function(FunctionType *FT, const std::string &Name, Module *Parent);

  Module *getParent() const { return Parent; }
  FunctionType *getFunctionType() const {
    return cast<FunctionType>(getType());
  }
  Type *getReturnType() const { return getFunctionType()->getReturnType(); }

  bool isDeclaration() const { return Blocks.empty(); }

  IntrinsicID getIntrinsicID() const { return IntrinID; }
  void setIntrinsicID(IntrinsicID ID) { IntrinID = ID; }
  bool isIntrinsic() const { return IntrinID != IntrinsicID::NotIntrinsic; }

  // Arguments.
  unsigned getNumArgs() const { return (unsigned)Args.size(); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  /// Appends a fresh argument (used by the §IV-F "fresh function parameter"
  /// value source). Rebuilds the function type.
  Argument *addArgument(Type *T, const std::string &Name);

  // Attributes.
  FnAttr getFnAttrs() const { return Attrs; }
  bool hasFnAttr(FnAttr A) const { return any(Attrs & A); }
  void setFnAttrs(FnAttr A) { Attrs = A; }
  void toggleFnAttr(FnAttr A) { Attrs = Attrs ^ A; }
  ParamAttrs &paramAttrs(unsigned I) {
    assert(I < ParamAttrList.size());
    return ParamAttrList[I];
  }
  const ParamAttrs &paramAttrs(unsigned I) const {
    assert(I < ParamAttrList.size());
    return ParamAttrList[I];
  }

  // Blocks.
  unsigned getNumBlocks() const { return (unsigned)Blocks.size(); }
  BasicBlock *getBlock(unsigned I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }
  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front().get();
  }
  BasicBlock *addBlock(const std::string &Name);
  /// Destroys \p BB; it must have no branches targeting it and its
  /// instructions must be unused.
  void eraseBlock(BasicBlock *BB);
  unsigned indexOfBlock(const BasicBlock *BB) const;

  /// Blocks branching to \p BB.
  std::vector<BasicBlock *> predecessors(const BasicBlock *BB) const;

  /// Total instruction count across all blocks.
  unsigned getInstructionCount() const;

  /// Iteration over raw block pointers.
  class BlockRange {
  public:
    explicit BlockRange(const std::vector<std::unique_ptr<BasicBlock>> &V)
        : Vec(V) {}
    class Iter {
    public:
      Iter(const std::vector<std::unique_ptr<BasicBlock>> &V, size_t I)
          : Vec(V), Idx(I) {}
      BasicBlock *operator*() const { return Vec[Idx].get(); }
      Iter &operator++() {
        ++Idx;
        return *this;
      }
      bool operator!=(const Iter &O) const { return Idx != O.Idx; }

    private:
      const std::vector<std::unique_ptr<BasicBlock>> &Vec;
      size_t Idx;
    };
    Iter begin() const { return Iter(Vec, 0); }
    Iter end() const { return Iter(Vec, Vec.size()); }

  private:
    const std::vector<std::unique_ptr<BasicBlock>> &Vec;
  };
  BlockRange blocks() const { return BlockRange(Blocks); }

  /// Drops all blocks (used when a clone replaces a body). Instructions'
  /// operand references are detached first.
  void dropBody();

  ~Function() override;

private:
  Module *Parent;
  IntrinsicID IntrinID = IntrinsicID::NotIntrinsic;
  FnAttr Attrs = FnAttr::None;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<ParamAttrs> ParamAttrList;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace alive

#endif // IR_FUNCTION_H
