//===- ir/Function.cpp - Function and Argument -----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Module.h"

using namespace alive;

const char *alive::intrinsicBaseName(IntrinsicID ID) {
  switch (ID) {
  case IntrinsicID::SMin:
    return "llvm.smin";
  case IntrinsicID::SMax:
    return "llvm.smax";
  case IntrinsicID::UMin:
    return "llvm.umin";
  case IntrinsicID::UMax:
    return "llvm.umax";
  case IntrinsicID::Abs:
    return "llvm.abs";
  case IntrinsicID::BSwap:
    return "llvm.bswap";
  case IntrinsicID::CtPop:
    return "llvm.ctpop";
  case IntrinsicID::Ctlz:
    return "llvm.ctlz";
  case IntrinsicID::Cttz:
    return "llvm.cttz";
  case IntrinsicID::UAddSat:
    return "llvm.uadd.sat";
  case IntrinsicID::USubSat:
    return "llvm.usub.sat";
  case IntrinsicID::SAddSat:
    return "llvm.sadd.sat";
  case IntrinsicID::SSubSat:
    return "llvm.ssub.sat";
  case IntrinsicID::Fshl:
    return "llvm.fshl";
  case IntrinsicID::Fshr:
    return "llvm.fshr";
  case IntrinsicID::Assume:
    return "llvm.assume";
  case IntrinsicID::NotIntrinsic:
    break;
  }
  assert(false && "not an intrinsic");
  return "";
}

unsigned alive::intrinsicNumArgs(IntrinsicID ID) {
  switch (ID) {
  case IntrinsicID::SMin:
  case IntrinsicID::SMax:
  case IntrinsicID::UMin:
  case IntrinsicID::UMax:
  case IntrinsicID::UAddSat:
  case IntrinsicID::USubSat:
  case IntrinsicID::SAddSat:
  case IntrinsicID::SSubSat:
  case IntrinsicID::Abs:  // (value, i1 is_int_min_poison)
  case IntrinsicID::Ctlz: // (value, i1 is_zero_poison)
  case IntrinsicID::Cttz:
    return 2;
  case IntrinsicID::BSwap:
  case IntrinsicID::CtPop:
  case IntrinsicID::Assume:
    return 1;
  case IntrinsicID::Fshl:
  case IntrinsicID::Fshr:
    return 3;
  case IntrinsicID::NotIntrinsic:
    break;
  }
  assert(false && "not an intrinsic");
  return 0;
}

bool alive::intrinsicIsPure(IntrinsicID ID) {
  return ID != IntrinsicID::Assume && ID != IntrinsicID::NotIntrinsic;
}

Function::Function(FunctionType *FT, const std::string &Name, Module *Parent)
    : Value(VK_Function, FT), Parent(Parent) {
  setName(Name);
  for (unsigned I = 0; I != FT->getNumParams(); ++I) {
    Args.push_back(
        std::make_unique<Argument>(FT->getParamType(I), "", I));
    ParamAttrList.emplace_back();
  }
}

Argument *Function::addArgument(Type *T, const std::string &Name) {
  Args.push_back(std::make_unique<Argument>(T, Name, (unsigned)Args.size()));
  ParamAttrList.emplace_back();
  // Re-intern the function type with the extended parameter list.
  std::vector<Type *> Params = getFunctionType()->params();
  Params.push_back(T);
  setType(Parent->getTypes().getFunctionTy(getReturnType(), Params));
  return Args.back().get();
}

BasicBlock *Function::addBlock(const std::string &Name) {
  auto BB = std::make_unique<BasicBlock>(
      Parent->getTypes().getLabelTy(), Name);
  BB->Parent = this;
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

unsigned Function::indexOfBlock(const BasicBlock *BB) const {
  for (unsigned I = 0; I != Blocks.size(); ++I)
    if (Blocks[I].get() == BB)
      return I;
  assert(false && "block not in this function");
  return ~0U;
}

void Function::eraseBlock(BasicBlock *BB) {
  unsigned Idx = indexOfBlock(BB);
  // Detach operand references first so use lists stay consistent even if
  // instructions within the block reference each other out of order.
  for (Instruction *I : BB->insts())
    I->dropAllOperands();
  Blocks.erase(Blocks.begin() + Idx);
}

std::vector<BasicBlock *> Function::predecessors(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Preds;
  for (BasicBlock *Cand : blocks()) {
    for (BasicBlock *Succ : Cand->successors())
      if (Succ == BB) {
        Preds.push_back(Cand);
        break;
      }
  }
  return Preds;
}

unsigned Function::getInstructionCount() const {
  unsigned N = 0;
  for (BasicBlock *BB : blocks())
    N += BB->size();
  return N;
}

void Function::dropBody() {
  // Two phases: detach all operand references, then destroy the blocks.
  for (const auto &BB : Blocks)
    for (Instruction *I : BB->insts())
      I->dropAllOperands();
  Blocks.clear();
}

Function::~Function() { dropBody(); }
