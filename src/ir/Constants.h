//===- ir/Constants.h - Constant values ------------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant values: integer literals, poison, undef, the null pointer, and
/// constant vectors. Constants are interned per Module (via ConstantPoolCtx),
/// so pointer equality means value equality within one module.
///
//===----------------------------------------------------------------------===//

#ifndef IR_CONSTANTS_H
#define IR_CONSTANTS_H

#include "ir/Value.h"
#include "support/APInt.h"

#include <map>
#include <memory>

namespace alive {

/// Common base for all constants (classification convenience).
class Constant : public Value {
public:
  static bool classof(const Value *V) { return V->isConstant(); }

protected:
  Constant(ValueKind K, Type *T) : Value(K, T) {}
};

/// An integer literal of some iN type.
class ConstantInt : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantInt;
  }

  const APInt &getValue() const { return Val; }
  uint64_t getZExtValue() const { return Val.getZExtValue(); }
  bool isZero() const { return Val.isZero(); }
  bool isOne() const { return Val.isOne(); }
  bool isAllOnes() const { return Val.isAllOnes(); }

private:
  friend class ConstantPoolCtx;
  ConstantInt(Type *T, APInt V) : Constant(VK_ConstantInt, T), Val(V) {}
  APInt Val;
};

/// The poison value of some first-class type.
class ConstantPoison : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantPoison;
  }

private:
  friend class ConstantPoolCtx;
  explicit ConstantPoison(Type *T) : Constant(VK_ConstantPoison, T) {}
};

/// The undef value of some first-class type.
class ConstantUndef : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantUndef;
  }

private:
  friend class ConstantPoolCtx;
  explicit ConstantUndef(Type *T) : Constant(VK_ConstantUndef, T) {}
};

/// The null pointer constant.
class ConstantNullPtr : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantNullPtr;
  }

private:
  friend class ConstantPoolCtx;
  explicit ConstantNullPtr(Type *T) : Constant(VK_ConstantNullPtr, T) {}
};

/// A constant vector: a fixed list of scalar constants (ints, poison or
/// undef elements). Elements are interned constants owned by the pool, so
/// they are stored as plain pointers (no use-list bookkeeping needed).
class ConstantVector : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantVector;
  }

  unsigned getNumElements() const { return (unsigned)Elements.size(); }
  Constant *getElement(unsigned I) const {
    assert(I < Elements.size() && "element index out of range");
    return Elements[I];
  }

private:
  friend class ConstantPoolCtx;
  ConstantVector(Type *T, const std::vector<Constant *> &Elems)
      : Constant(VK_ConstantVector, T), Elements(Elems) {}
  std::vector<Constant *> Elements;
};

/// Owns and interns all constants of a Module.
class ConstantPoolCtx {
public:
  ConstantPoolCtx() = default;
  ConstantPoolCtx(const ConstantPoolCtx &) = delete;
  ConstantPoolCtx &operator=(const ConstantPoolCtx &) = delete;
  ~ConstantPoolCtx();

  ConstantInt *getInt(IntegerType *T, const APInt &V);
  ConstantInt *getInt(IntegerType *T, uint64_t V, bool Signed = false);
  ConstantInt *getBool(TypeContext &TC, bool V);
  ConstantPoison *getPoison(Type *T);
  ConstantUndef *getUndef(Type *T);
  ConstantNullPtr *getNullPtr(Type *PtrTy);
  ConstantVector *getVector(VectorType *T, const std::vector<Constant *> &Es);
  /// Splat: all elements the same scalar constant.
  ConstantVector *getSplat(VectorType *T, Constant *Scalar);

private:
  std::map<std::pair<Type *, std::pair<uint64_t, uint64_t>>,
           std::unique_ptr<ConstantInt>>
      IntPool;
  std::map<Type *, std::unique_ptr<ConstantPoison>> PoisonPool;
  std::map<Type *, std::unique_ptr<ConstantUndef>> UndefPool;
  std::map<Type *, std::unique_ptr<ConstantNullPtr>> NullPool;
  std::map<std::pair<Type *, std::vector<Constant *>>,
           std::unique_ptr<ConstantVector>>
      VectorPool;
};

} // namespace alive

#endif // IR_CONSTANTS_H
