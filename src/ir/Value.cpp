//===- ir/Value.cpp - SSA value and user base classes --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

using namespace alive;

Value::~Value() {
  assert(UserList.empty() &&
         "value destroyed while still referenced by users");
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  assert(New->getType() == getType() && "RAUW type mismatch");
  while (!UserList.empty()) {
    User *U = UserList.back();
    U->setOperand(U->getOperandIndex(this), New);
  }
}
