//===- ir/Value.h - SSA value and user base classes ------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The root of the IR value hierarchy. Mirrors LLVM's Value/User design:
/// every SSA value tracks its users (one entry per operand slot that
/// references it), enabling replaceAllUsesWith and the def-use walks the
/// mutator's use-tree and bitwidth mutations need.
///
//===----------------------------------------------------------------------===//

#ifndef IR_VALUE_H
#define IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

namespace alive {

class User;

/// Base class of everything that can appear as an SSA operand.
class Value {
public:
  enum ValueKind {
    VK_Argument,
    VK_BasicBlock,
    VK_Function,
    // Constants.
    VK_ConstantInt,
    VK_ConstantPoison,
    VK_ConstantUndef,
    VK_ConstantNullPtr,
    VK_ConstantVector,
    // Instructions. Keep contiguous: VK_BinaryInst..VK_UnreachableInst.
    VK_BinaryInst,
    VK_ICmpInst,
    VK_SelectInst,
    VK_CastInst,
    VK_FreezeInst,
    VK_PhiNode,
    VK_CallInst,
    VK_LoadInst,
    VK_StoreInst,
    VK_AllocaInst,
    VK_GEPInst,
    VK_ExtractElementInst,
    VK_InsertElementInst,
    VK_ShuffleVectorInst,
    VK_ReturnInst,
    VK_BranchInst,
    VK_SwitchInst,
    VK_UnreachableInst,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }
  bool hasName() const { return !Name.empty(); }

  /// Users of this value; a user appears once per operand slot that
  /// references this value (so duplicates are meaningful).
  const std::vector<User *> &users() const { return UserList; }
  unsigned getNumUses() const { return (unsigned)UserList.size(); }
  bool hasUses() const { return !UserList.empty(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  bool isConstant() const {
    return Kind >= VK_ConstantInt && Kind <= VK_ConstantVector;
  }
  bool isInstruction() const {
    return Kind >= VK_BinaryInst && Kind <= VK_UnreachableInst;
  }

protected:
  Value(ValueKind K, Type *T) : Kind(K), Ty(T) {
    assert(T && "value must have a type");
  }

  /// Width-change support (bitwidth mutation rebuilds instructions; types of
  /// existing values never change in place except through this hook, used
  /// only by IR internals).
  void setType(Type *T) { Ty = T; }

private:
  friend class User;
  void addUser(User *U) { UserList.push_back(U); }
  void removeUser(User *U) {
    auto It = std::find(UserList.begin(), UserList.end(), U);
    assert(It != UserList.end() && "user not found in use list");
    UserList.erase(It);
  }

  const ValueKind Kind;
  Type *Ty;
  std::string Name;
  std::vector<User *> UserList;
};

/// A value that references other values through operand slots.
class User : public Value {
public:
  static bool classof(const Value *V) { return V->isInstruction(); }

  unsigned getNumOperands() const { return (unsigned)Operands.size(); }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces operand \p I, maintaining both use lists.
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    assert(V && "operand must not be null");
    Operands[I]->removeUser(this);
    Operands[I] = V;
    V->addUser(this);
  }

  /// Index of the first operand slot holding \p V; asserts it exists.
  unsigned getOperandIndex(const Value *V) const {
    for (unsigned I = 0; I != Operands.size(); ++I)
      if (Operands[I] == V)
        return I;
    assert(false && "value is not an operand");
    return ~0U;
  }

  /// True if any operand slot references \p V.
  bool usesValue(const Value *V) const {
    return std::find(Operands.begin(), Operands.end(), V) != Operands.end();
  }

  /// Detaches all operands (removing this user from their use lists).
  /// Called before destruction and when erasing instructions.
  void dropAllOperands() {
    for (Value *Op : Operands)
      Op->removeUser(this);
    Operands.clear();
  }

protected:
  User(ValueKind K, Type *T) : Value(K, T) {}
  ~User() override { dropAllOperands(); }

  /// Appends an operand slot.
  void addOperand(Value *V) {
    assert(V && "operand must not be null");
    Operands.push_back(V);
    V->addUser(this);
  }

  /// Removes operand slot \p I (shifting later slots down).
  void removeOperand(unsigned I) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I]->removeUser(this);
    Operands.erase(Operands.begin() + I);
  }

private:
  std::vector<Value *> Operands;
};

} // namespace alive

#endif // IR_VALUE_H
