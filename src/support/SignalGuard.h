//===- support/SignalGuard.h - In-process fatal-signal containment -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best-effort in-process containment of fatal signals for the campaign's
/// survivability layer: run a callable and, if it raises SIGABRT / SIGFPE /
/// SIGILL / SIGBUS / SIGSEGV on the calling thread, long-jump back to the
/// call site instead of dying. This is the cheap fallback used when -isolate
/// (real child-process containment) is off.
///
/// Hard limitations, by construction:
///   - the jump skips destructors between the signal point and the call
///     site: memory and locks held by the interrupted code leak. The
///     fuzzing loop only guards the optimizer pipeline and abandons the
///     mutant afterwards, so the leak is bounded and the campaign state
///     stays coherent — but this is NOT a general-purpose recovery tool;
///   - the interrupted data structures (the mutant module) must be treated
///     as torn and never touched again;
///   - signals on *other* threads, stack overflow, and heap corruption
///     that re-faults inside the handler still kill the process — that is
///     what -isolate is for.
///
/// A signal arriving while no guard is armed on the thread re-raises with
/// the default disposition, so guarded binaries keep their normal
/// crash-and-core behavior outside the guarded region.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SIGNALGUARD_H
#define SUPPORT_SIGNALGUARD_H

#include <functional>

namespace alive {

/// Runs \p Fn with the fatal-signal guard armed on the calling thread.
/// \returns true when Fn completed (or threw — C++ exceptions propagate
/// normally); false when a fatal signal was contained, with the signal
/// number in \p SigOut. Reentrant per thread (guards nest); thread-safe.
bool runWithSignalGuard(const std::function<void()> &Fn, int &SigOut);

/// "SIGSEGV" etc. for the signals the guard handles; "signal <n>" otherwise.
const char *signalName(int Sig);

} // namespace alive

#endif // SUPPORT_SIGNALGUARD_H
