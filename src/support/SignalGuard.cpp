//===- support/SignalGuard.cpp - In-process fatal-signal containment -------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SignalGuard.h"

#include <csetjmp>
#include <csignal>
#include <mutex>

using namespace alive;

namespace {

/// The innermost armed guard's jump target on this thread; null when the
/// thread is unguarded.
thread_local sigjmp_buf *ActiveGuardJmp = nullptr;

constexpr int GuardedSignals[] = {SIGABRT, SIGFPE, SIGILL, SIGBUS, SIGSEGV};

extern "C" void guardHandler(int Sig) {
  if (ActiveGuardJmp) {
    // Async-signal-safe: siglongjmp restores the signal mask saved by
    // sigsetjmp(env, 1), un-blocking the delivered signal.
    siglongjmp(*ActiveGuardJmp, Sig);
  }
  // Unguarded thread: restore the default disposition and re-deliver so
  // the process crashes exactly as it would have without us.
  signal(Sig, SIG_DFL);
  raise(Sig);
}

void installHandlersOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    struct sigaction SA;
    SA.sa_handler = guardHandler;
    sigemptyset(&SA.sa_mask);
    // SA_NODEFER deliberately absent: the signal stays blocked inside the
    // handler; siglongjmp's mask restore un-blocks it.
    SA.sa_flags = 0;
    for (int Sig : GuardedSignals)
      sigaction(Sig, &SA, nullptr);
  });
}

} // namespace

bool alive::runWithSignalGuard(const std::function<void()> &Fn, int &SigOut) {
  installHandlersOnce();
  sigjmp_buf Env;
  sigjmp_buf *Prev = ActiveGuardJmp;
  int Sig = sigsetjmp(Env, /*savemask=*/1);
  if (Sig != 0) {
    // Landed here from the handler: the guarded code is gone mid-flight.
    ActiveGuardJmp = Prev;
    SigOut = Sig;
    return false;
  }
  ActiveGuardJmp = &Env;
  try {
    Fn();
  } catch (...) {
    ActiveGuardJmp = Prev;
    throw;
  }
  ActiveGuardJmp = Prev;
  return true;
}

const char *alive::signalName(int Sig) {
  switch (Sig) {
  case SIGABRT:
    return "SIGABRT";
  case SIGFPE:
    return "SIGFPE";
  case SIGILL:
    return "SIGILL";
  case SIGBUS:
    return "SIGBUS";
  case SIGSEGV:
    return "SIGSEGV";
  default:
    return "fatal signal";
  }
}
