//===- support/JSON.h - Minimal JSON reader --------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser for the artifacts this repo
/// itself writes (forensics bundle manifests, trace files in tests). Not
/// a general-purpose library: no streaming, whole document in memory,
/// objects keep insertion order. Integers that fit uint64_t keep their
/// exact value alongside the double (PRNG seeds exceed double's 53-bit
/// mantissa).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alive {

/// One parsed JSON value (a tagged union over the seven JSON shapes).
struct JSONValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;

  bool B = false;
  double Num = 0;
  /// Exact value for unsigned-integer literals (IsInt set); Num is always
  /// filled too.
  uint64_t Int = 0;
  bool IsInt = false;
  std::string Str;
  std::vector<JSONValue> Arr;
  std::vector<std::pair<std::string, JSONValue>> Obj;

  bool isObject() const { return K == Object; }
  bool isArray() const { return K == Array; }

  /// Member lookup on an object (null for misses or non-objects).
  const JSONValue *find(const std::string &Key) const;

  /// Convenience accessors over find(): the default comes back for a
  /// missing key or a type mismatch.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  uint64_t getUInt(const std::string &Key, uint64_t Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;
};

/// Parses \p Text into \p Out. On failure returns false and fills
/// \p Error with a position-annotated message. Trailing non-whitespace
/// after the document is an error.
bool parseJSON(const std::string &Text, JSONValue &Out, std::string &Error);

} // namespace alive

#endif // SUPPORT_JSON_H
