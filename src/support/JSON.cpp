//===- support/JSON.cpp - Minimal JSON reader ------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace alive;

const JSONValue *JSONValue::find(const std::string &Key) const {
  if (K != Object)
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string JSONValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JSONValue *V = find(Key);
  return V && V->K == String ? V->Str : Default;
}

uint64_t JSONValue::getUInt(const std::string &Key, uint64_t Default) const {
  const JSONValue *V = find(Key);
  if (!V || V->K != Number)
    return Default;
  return V->IsInt ? V->Int : (uint64_t)V->Num;
}

bool JSONValue::getBool(const std::string &Key, bool Default) const {
  const JSONValue *V = find(Key);
  return V && V->K == Bool ? V->B : Default;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JSONValue &Out) {
    skipWS();
    if (!parseValue(Out))
      return false;
    skipWS();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "JSON parse error at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWS() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(JSONValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JSONValue::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JSONValue::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JSONValue::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = JSONValue::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JSONValue &Out) {
    Out.K = JSONValue::Object;
    ++Pos; // '{'
    skipWS();
    if (consume('}'))
      return true;
    for (;;) {
      skipWS();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      if (!parseString(Key))
        return false;
      skipWS();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWS();
      JSONValue V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWS();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JSONValue &Out) {
    Out.K = JSONValue::Array;
    ++Pos; // '['
    skipWS();
    if (consume(']'))
      return true;
    for (;;) {
      skipWS();
      JSONValue V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWS();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= (unsigned)(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= (unsigned)(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= (unsigned)(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // UTF-8 encode (no surrogate-pair handling: our writers only
        // escape control characters).
        if (Code < 0x80) {
          Out += (char)Code;
        } else if (Code < 0x800) {
          Out += (char)(0xC0 | (Code >> 6));
          Out += (char)(0x80 | (Code & 0x3F));
        } else {
          Out += (char)(0xE0 | (Code >> 12));
          Out += (char)(0x80 | ((Code >> 6) & 0x3F));
          Out += (char)(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JSONValue &Out) {
    size_t Start = Pos;
    bool Negative = consume('-');
    bool IsIntegral = true;
    while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
      ++Pos;
    if (Pos == Start + (Negative ? 1 : 0))
      return fail("expected a value");
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsIntegral = false;
      ++Pos;
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsIntegral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    std::string Lit = Text.substr(Start, Pos - Start);
    Out.K = JSONValue::Number;
    Out.Num = std::strtod(Lit.c_str(), nullptr);
    if (IsIntegral && !Negative) {
      // Keep the exact 64-bit value: seeds do not round-trip via double.
      errno = 0;
      Out.Int = std::strtoull(Lit.c_str(), nullptr, 10);
      Out.IsInt = errno == 0;
    }
    return true;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool alive::parseJSON(const std::string &Text, JSONValue &Out,
                      std::string &Error) {
  return Parser(Text, Error).parse(Out);
}
