//===- support/TraceRecorder.cpp - Flight-recorder event tracing -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TraceRecorder.h"

#include "support/Telemetry.h"

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace alive;

namespace {

using Clock = std::chrono::steady_clock;

/// Nanoseconds rendered as fractional microseconds ("1050" -> "1.050"):
/// Chrome trace timestamps are microseconds, and the fraction keeps the
/// nanosecond precision without float formatting.
void writeMicros(std::ostream &OS, uint64_t Nanos) {
  char Frac[8];
  std::snprintf(Frac, sizeof(Frac), "%03u", (unsigned)(Nanos % 1000));
  OS << Nanos / 1000 << "." << Frac;
}

/// The process-wide trace epoch: captured once, on the first now() call,
/// so every recorder's timestamps share one origin and multi-worker
/// tracks align.
Clock::time_point traceEpoch() {
  static const Clock::time_point Epoch = Clock::now();
  return Epoch;
}

} // namespace

TraceRecorder::TraceRecorder(size_t Capacity) : Cap(Capacity ? Capacity : 1) {
  // Reserve the whole ring up front: recording must never allocate.
  Ring.reserve(Cap);
  // Touch the epoch so a recorder constructed before any event still
  // shares the process origin.
  (void)now();
}

uint64_t TraceRecorder::now() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - traceEpoch())
      .count();
}

const char *TraceRecorder::intern(const std::string &S) {
  return Labels.insert(S).first->c_str();
}

void TraceRecorder::push(const Event &E) {
  if (Ring.size() < Cap) {
    Ring.push_back(E);
  } else {
    // Ring full: overwrite the oldest event (flight-recorder semantics).
    Ring[Head] = E;
  }
  Head = (Head + 1) % Cap;
  Total.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::span(const char *Name, uint64_t StartNanos,
                         uint64_t EndNanos, uint64_t Seed,
                         const char *Detail) {
  push({Name, Detail, StartNanos,
        EndNanos > StartNanos ? EndNanos - StartNanos : 0, Seed});
}

void TraceRecorder::instant(const char *Name, uint64_t Seed,
                            const char *Detail) {
  push({Name, Detail, now(), Instant, Seed});
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::vector<Event> Out;
  Out.reserve(size());
  if (Total.load(std::memory_order_relaxed) <= Cap) {
    Out.assign(Ring.begin(), Ring.end());
  } else {
    // Head is both the next write slot and the oldest retained event.
    Out.insert(Out.end(), Ring.begin() + (long)Head, Ring.end());
    Out.insert(Out.end(), Ring.begin(), Ring.begin() + (long)Head);
  }
  return Out;
}

void alive::writeChromeTrace(std::ostream &OS,
                             const std::vector<const TraceRecorder *> &Tracks,
                             const std::vector<std::string> &TrackNames) {
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool First = true;
  auto emit = [&](const std::string &Line) {
    OS << (First ? "\n" : ",\n") << Line;
    First = false;
  };

  for (size_t T = 0; T != Tracks.size(); ++T) {
    // Track naming metadata, so Perfetto shows "worker 0" not "tid 0".
    {
      std::ostringstream L;
      L << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
        << T << ", \"args\": {\"name\": ";
      writeJSONString(L, T < TrackNames.size() ? TrackNames[T]
                                               : "track " + std::to_string(T));
      L << "}}";
      emit(L.str());
    }
    if (!Tracks[T])
      continue;
    for (const TraceRecorder::Event &E : Tracks[T]->events()) {
      std::ostringstream L;
      L << "{\"name\": ";
      writeJSONString(L, E.Name);
      // Chrome trace timestamps are microseconds; keep sub-microsecond
      // precision as a fraction.
      L << ", \"ph\": \"" << (E.DurNanos == TraceRecorder::Instant ? "i" : "X")
        << "\", \"ts\": ";
      writeMicros(L, E.StartNanos);
      if (E.DurNanos != TraceRecorder::Instant) {
        L << ", \"dur\": ";
        writeMicros(L, E.DurNanos);
      } else
        L << ", \"s\": \"t\"";
      L << ", \"pid\": 1, \"tid\": " << T;
      if (E.Seed || E.Detail) {
        L << ", \"args\": {";
        bool FirstArg = true;
        if (E.Seed) {
          L << "\"seed\": " << E.Seed;
          FirstArg = false;
        }
        if (E.Detail) {
          L << (FirstArg ? "" : ", ") << "\"detail\": ";
          writeJSONString(L, E.Detail);
        }
        L << "}";
      }
      L << "}";
      emit(L.str());
    }
  }

  // Summarize ring overwrite per track so a truncated timeline is visible
  // in the file itself, not silently missing its head.
  uint64_t Dropped = 0;
  for (const TraceRecorder *T : Tracks)
    if (T)
      Dropped += T->dropped();
  OS << (First ? "" : "\n") << "], \"otherData\": {\"dropped_events\": "
     << Dropped << "}}\n";
}
