//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's hand-rolled RTTI templates. A class
/// hierarchy opts in by providing `static bool classof(const Base *)` on each
/// derived class; `isa<>`, `cast<>` and `dyn_cast<>` then work exactly as in
/// LLVM (see the LLVM Programmer's Manual).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CASTING_H
#define SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace alive {

/// \returns true if \p Val is an instance of any of the \p To types.
template <typename To, typename... Tos, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else if (To::classof(Val))
    return true;
  if constexpr (sizeof...(Tos) != 0)
    return isa<Tos...>(Val);
  return false;
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; \returns null if \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates null (returning false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates null (propagating it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace alive

#endif // SUPPORT_CASTING_H
