//===- support/Retry.h - Bounded exponential backoff policy ----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The restart policy shared by everything that respawns a failed child:
/// bounded exponential backoff with deterministic jitter. A RetryPolicy is
/// plain configuration; a RetryState tracks one retry sequence (a shard
/// lease, an isolated shard) and hands out delays. Jitter draws from a
/// private splitmix64 stream keyed by (policy seed, stream tag), so two
/// identically-configured supervisors back off on identical schedules —
/// chaos runs stay reproducible — while distinct leases still de-correlate.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RETRY_H
#define SUPPORT_RETRY_H

#include <cstdint>
#include <string>

namespace alive {

/// Backoff configuration. Delays double per attempt from Base, capped at
/// Max, with +/- JitterFraction deterministic jitter.
struct RetryPolicy {
  unsigned MaxAttempts = 5;      ///< budget before the caller gives up
  double BaseDelaySeconds = 0.05;
  double MaxDelaySeconds = 5.0;
  double JitterFraction = 0.1;   ///< delay *= 1 +/- this
  uint64_t JitterSeed = 0x243F6A8885A308D3ULL;
};

/// One retry sequence under a policy.
class RetryState {
public:
  explicit RetryState(const RetryPolicy &Policy, uint64_t StreamTag = 0);

  /// True once the attempt budget is spent.
  bool exhausted() const { return Attempts >= Policy.MaxAttempts; }

  /// Records one failure and \returns the delay to wait before the next
  /// attempt (bounded exponential + deterministic jitter).
  double nextDelaySeconds();

  /// Attempts consumed so far.
  unsigned attempts() const { return Attempts; }

  /// The supervised work made real progress: refill the budget (a child
  /// that advances its checkpoint should never run out of restarts from
  /// ancient, unrelated failures).
  void noteProgress() { Attempts = 0; }

private:
  RetryPolicy Policy;
  unsigned Attempts = 0;
  uint64_t Stream = 0;
};

/// Human-readable one-liner ("5 attempts, 0.05s..5s backoff, 10% jitter")
/// for config echo and error messages.
std::string describeRetryPolicy(const RetryPolicy &Policy);

} // namespace alive

#endif // SUPPORT_RETRY_H
