//===- support/Cancellation.cpp - Cooperative iteration watchdog -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Cancellation.h"

using namespace alive;

namespace {
thread_local CancellationToken *ActiveToken = nullptr;
} // namespace

CancellationScope::CancellationScope(CancellationToken *Token)
    : Prev(ActiveToken) {
  ActiveToken = Token;
}

CancellationScope::~CancellationScope() { ActiveToken = Prev; }

CancellationToken *alive::currentCancellationToken() { return ActiveToken; }
