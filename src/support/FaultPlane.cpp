//===- support/FaultPlane.cpp - Deterministic fault injection --------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultPlane.h"

#include <cstdlib>

using namespace alive;

FaultPlane &FaultPlane::instance() {
  static FaultPlane Plane;
  return Plane;
}

const std::vector<std::string> &FaultPlane::knownPoints() {
  // Every syscall-shaped edge the campaign touches. Adding a faultAt()
  // call site means adding its name here (arm() validates against this
  // list) and a row to the DESIGN.md fault-model table.
  static const std::vector<std::string> Points = {
      // Artifact writers (shared tmp+fsync+rename path).
      "checkpoint.write", "checkpoint.fsync", "checkpoint.rename",
      "forensics.write", "forensics.fsync", "forensics.rename",
      "report.write", "report.fsync", "report.rename",
      // Fork-based crash containment.
      "isolate.fork", "isolate.mmap",
      // Supervised fan-out control loop (evaluated in the parent, so
      // counters persist across child respawns).
      "supervisor.fork", "supervisor.kill", "supervisor.wedge",
      "supervisor.mmap",
      // HTTP observability plane.
      "http.accept", "http.send",
      // Corpus ingestion.
      "corpus.open", "corpus.read",
  };
  return Points;
}

void FaultPlane::setSeed(uint64_t S) {
  std::lock_guard<std::mutex> Lock(M);
  Seed = S;
  for (Point &P : Points)
    P.Stream = Seed ^ fnv1a64(P.Name);
}

void FaultPlane::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Points.clear();
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultPlane::arm(const std::string &SpecList, std::string &Error) {
  std::vector<Point> Parsed;
  size_t Pos = 0;
  while (Pos < SpecList.size()) {
    size_t End = SpecList.find(',', Pos);
    if (End == std::string::npos)
      End = SpecList.size();
    std::string Entry = SpecList.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;

    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos) {
      Error = "-inject-fault entry '" + Entry +
              "' has no spec (expected <point>:nth:<N>, <point>:every:<K> "
              "or <point>:p:<P>)";
      return false;
    }
    Point P;
    P.Name = Entry.substr(0, Colon);
    P.Spec = Entry.substr(Colon + 1);

    bool Known = false;
    for (const std::string &K : knownPoints())
      if (K == P.Name)
        Known = true;
    if (!Known) {
      Error = "-inject-fault names unknown fault point '" + P.Name + "'";
      return false;
    }

    size_t C2 = P.Spec.find(':');
    std::string Mode = C2 == std::string::npos ? P.Spec : P.Spec.substr(0, C2);
    std::string Arg = C2 == std::string::npos ? "" : P.Spec.substr(C2 + 1);
    char *EndPtr = nullptr;
    if (Mode == "nth" || Mode == "every") {
      P.M = Mode == "nth" ? Point::Mode::Nth : Point::Mode::Every;
      P.N = std::strtoull(Arg.c_str(), &EndPtr, 10);
      if (Arg.empty() || *EndPtr != '\0' || P.N == 0) {
        Error = "-inject-fault '" + P.Name + "': '" + Mode +
                "' needs a positive integer, got '" + Arg + "'";
        return false;
      }
    } else if (Mode == "p") {
      P.M = Point::Mode::Prob;
      P.P = std::strtod(Arg.c_str(), &EndPtr);
      if (Arg.empty() || *EndPtr != '\0' || P.P < 0.0 || P.P > 1.0) {
        Error = "-inject-fault '" + P.Name +
                "': 'p' needs a probability in [0,1], got '" + Arg + "'";
        return false;
      }
    } else {
      Error = "-inject-fault '" + P.Name + "': unknown spec mode '" + Mode +
              "' (expected nth, every or p)";
      return false;
    }
    Parsed.push_back(std::move(P));
  }

  std::lock_guard<std::mutex> Lock(M);
  Points = std::move(Parsed);
  for (Point &P : Points)
    P.Stream = Seed ^ fnv1a64(P.Name);
  Armed.store(!Points.empty(), std::memory_order_relaxed);
  return true;
}

bool FaultPlane::shouldFail(const char *Name) {
  std::lock_guard<std::mutex> Lock(M);
  for (Point &P : Points) {
    if (P.Name != Name)
      continue;
    ++P.Calls;
    bool Fire = false;
    switch (P.M) {
    case Point::Mode::Nth:
      Fire = P.Calls == P.N;
      break;
    case Point::Mode::Every:
      Fire = P.Calls % P.N == 0;
      break;
    case Point::Mode::Prob:
      // 53-bit uniform draw from the point's private stream.
      Fire = (double)(splitmix64(P.Stream) >> 11) * 0x1.0p-53 < P.P;
      break;
    }
    if (Fire)
      ++P.Triggers;
    return Fire;
  }
  return false;
}

std::vector<FaultPointCounters> FaultPlane::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<FaultPointCounters> Out;
  Out.reserve(Points.size());
  for (const Point &P : Points)
    Out.push_back({P.Name, P.Spec, P.Calls, P.Triggers});
  return Out;
}
