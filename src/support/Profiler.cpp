//===- support/Profiler.cpp - Cost attribution & sampling profiler ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include "support/Telemetry.h"
#include "support/TraceRecorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace alive;

uint64_t alive::fnv1a64(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

bool alive::queryCostRanksBefore(const QueryCost &A, const QueryCost &B) {
  uint64_t CA = A.costUnits(), CB = B.costUnits();
  if (CA != CB)
    return CA > CB;
  return A.KeyHash < B.KeyHash;
}

//===----------------------------------------------------------------------===//
// QueryCostTracker
//===----------------------------------------------------------------------===//

QueryCostTracker::QueryCostTracker(unsigned K) : K(K ? K : 1) {}

void QueryCostTracker::record(const QueryCostSample &S) {
  std::lock_guard<std::mutex> L(M);
  auto [It, Inserted] = ByKey.try_emplace(S.KeyHash);
  QueryCost &Q = It->second;
  if (Inserted) {
    Q.KeyHash = S.KeyHash;
    Q.Function = std::string(S.Function);
    Q.BundlePath = std::string(S.BundlePath);
    Q.Verdict = std::string(S.Verdict);
    Q.FirstSeed = S.Seed;
    Q.Symbolic = S.Symbolic;
    Q.Decisions = S.Decisions;
    Q.Propagations = S.Propagations;
    Q.Conflicts = S.Conflicts;
    Q.LearnedClauses = S.LearnedClauses;
    Q.LearnedLiterals = S.LearnedLiterals;
    Q.Restarts = S.Restarts;
  } else if (S.Seed < Q.FirstSeed) {
    // Min-seed attribution keeps function/bundle deterministic whatever
    // order the workers saw this key in.
    Q.FirstSeed = S.Seed;
    Q.Function = std::string(S.Function);
    Q.BundlePath = std::string(S.BundlePath);
  }
  ++Q.Count;
  Q.EncodeSeconds += S.EncodeSeconds;
  Q.SolveSeconds += S.SolveSeconds;
  if (ByKey.size() > K)
    evictWorstLocked();
}

void QueryCostTracker::merge(const QueryCostTracker &O) {
  std::vector<QueryCost> Other;
  {
    std::lock_guard<std::mutex> L(O.M);
    Other.reserve(O.ByKey.size());
    for (const auto &[_, Q] : O.ByKey)
      Other.push_back(Q);
  }
  std::lock_guard<std::mutex> L(M);
  for (const QueryCost &In : Other) {
    auto [It, Inserted] = ByKey.try_emplace(In.KeyHash, In);
    if (!Inserted) {
      QueryCost &Q = It->second;
      if (In.FirstSeed < Q.FirstSeed) {
        Q.FirstSeed = In.FirstSeed;
        Q.Function = In.Function;
        Q.BundlePath = In.BundlePath;
      }
      Q.Count += In.Count;
      Q.EncodeSeconds += In.EncodeSeconds;
      Q.SolveSeconds += In.SolveSeconds;
    }
    if (ByKey.size() > K)
      evictWorstLocked();
  }
}

void QueryCostTracker::evictWorstLocked() {
  auto Worst = ByKey.end();
  for (auto It = ByKey.begin(); It != ByKey.end(); ++It)
    if (Worst == ByKey.end() || queryCostRanksBefore(Worst->second, It->second))
      Worst = It;
  if (Worst != ByKey.end()) {
    ByKey.erase(Worst);
    ++Evicted;
  }
}

std::vector<QueryCost> QueryCostTracker::top() const {
  std::vector<QueryCost> Out;
  {
    std::lock_guard<std::mutex> L(M);
    Out.reserve(ByKey.size());
    for (const auto &[_, Q] : ByKey)
      Out.push_back(Q);
  }
  std::sort(Out.begin(), Out.end(), queryCostRanksBefore);
  return Out;
}

uint64_t QueryCostTracker::evicted() const {
  std::lock_guard<std::mutex> L(M);
  return Evicted;
}

//===----------------------------------------------------------------------===//
// SamplingProfiler
//===----------------------------------------------------------------------===//

SamplingProfiler::SamplingProfiler(unsigned IntervalMs)
    : IntervalMs(IntervalMs ? IntervalMs : 1) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::attach(const std::string &Label,
                              const TraceRecorder *R) {
  Tracks.emplace_back(Label, R);
}

void SamplingProfiler::start() {
  if (Running)
    return;
  Running = true;
  Stopping = false;
  Th = std::thread([this] { run(); });
}

void SamplingProfiler::stop() {
  if (!Running)
    return;
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  CV.notify_all();
  Th.join();
  Running = false;
}

void SamplingProfiler::run() {
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    if (CV.wait_for(L, std::chrono::milliseconds(IntervalMs),
                    [this] { return Stopping; }))
      return;
    // One sample per tick per track that has a non-empty live stack: an
    // idle worker (between iterations, or already joined) contributes
    // nothing rather than a misleading "idle" frame.
    for (const auto &[Label, R] : Tracks) {
      const char *Frames[TraceRecorder::MaxLiveDepth];
      unsigned D = R->sampleLiveStack(Frames, TraceRecorder::MaxLiveDepth);
      if (D == 0)
        continue;
      std::string Stack = Label;
      for (unsigned I = 0; I != D; ++I) {
        Stack += ';';
        Stack += Frames[I];
      }
      ++Folded[Stack];
      Samples.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::map<std::string, uint64_t> SamplingProfiler::collapsed() const {
  std::lock_guard<std::mutex> L(M);
  return Folded;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

/// 16-hex-digit rendering of the key hash ("0000654a88..."), fixed width
/// so the report's lexicographic diffs stay aligned.
std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

} // namespace

void alive::writeTopQueriesJSON(std::ostream &OS,
                                const std::vector<QueryCost> &Top,
                                const std::string &Indent) {
  OS << "[";
  for (size_t I = 0; I != Top.size(); ++I) {
    const QueryCost &Q = Top[I];
    OS << (I ? ",\n" : "\n") << Indent << "  {\"rank\": " << (I + 1)
       << ", \"key\": ";
    writeJSONString(OS, hex16(Q.KeyHash));
    OS << ", \"function\": ";
    writeJSONString(OS, Q.Function);
    OS << ", \"verdict\": ";
    writeJSONString(OS, Q.Verdict);
    OS << ", \"count\": " << Q.Count << ", \"first_seed\": " << Q.FirstSeed
       << ", \"symbolic\": " << (Q.Symbolic ? "true" : "false")
       << ", \"cost\": " << Q.costUnits()
       << ", \"decisions\": " << Q.Decisions
       << ", \"propagations\": " << Q.Propagations
       << ", \"conflicts\": " << Q.Conflicts
       << ", \"learned_clauses\": " << Q.LearnedClauses
       << ", \"learned_literals\": " << Q.LearnedLiterals
       << ", \"restarts\": " << Q.Restarts << ", \"bundle\": ";
    writeJSONString(OS, Q.BundlePath);
    OS << "}";
  }
  OS << (Top.empty() ? "" : "\n" + Indent) << "]";
}

void alive::writeProfileVolatileJSON(std::ostream &OS,
                                     const CampaignProfile &P,
                                     const std::string &Indent) {
  OS << "{\"sampling\": {\"interval_ms\": " << P.SamplingIntervalMs
     << ", \"samples\": " << P.Samples << ", \"stacks\": [";
  bool First = true;
  for (const auto &[Stack, Count] : P.Collapsed) {
    OS << (First ? "\n" : ",\n") << Indent << "   {\"stack\": ";
    First = false;
    writeJSONString(OS, Stack);
    OS << ", \"count\": " << Count << "}";
  }
  OS << (First ? "" : "\n" + Indent + " ") << "]},\n"
     << Indent << " \"query_seconds\": [";
  First = true;
  for (const QueryCost &Q : P.TopQueries) {
    OS << (First ? "\n" : ",\n") << Indent << "   {\"key\": ";
    First = false;
    writeJSONString(OS, hex16(Q.KeyHash));
    OS << ", \"encode_s\": ";
    writeJSONDouble(OS, Q.EncodeSeconds);
    OS << ", \"solve_s\": ";
    writeJSONDouble(OS, Q.SolveSeconds);
    OS << "}";
  }
  OS << (First ? "" : "\n" + Indent + " ") << "],\n"
     << Indent << " \"cache_shards\": [";
  First = true;
  for (size_t I = 0; I != P.CacheShards.size(); ++I) {
    const ShardHeat &H = P.CacheShards[I];
    OS << (First ? "\n" : ",\n") << Indent << "   {\"shard\": " << I
       << ", \"hits\": " << H.Hits << ", \"misses\": " << H.Misses
       << ", \"evictions\": " << H.Evictions << ", \"inserts\": " << H.Inserts
       << ", \"lock_waits\": " << H.LockWaits << "}";
    First = false;
  }
  OS << (First ? "" : "\n" + Indent + " ") << "]}";
}

void alive::writeFlamegraphJSON(std::ostream &OS, const CampaignProfile &P) {
  OS << "{\"interval_ms\": " << P.SamplingIntervalMs
     << ", \"samples\": " << P.Samples << ", \"stacks\": [";
  bool First = true;
  for (const auto &[Stack, Count] : P.Collapsed) {
    OS << (First ? "\n" : ",\n") << "  {\"stack\": ";
    First = false;
    writeJSONString(OS, Stack);
    OS << ", \"count\": " << Count << "}";
  }
  OS << (First ? "" : "\n") << "]}\n";
}

void alive::writeCollapsedStacks(
    std::ostream &OS, const std::map<std::string, uint64_t> &Folded) {
  for (const auto &[Stack, Count] : Folded)
    OS << Stack << " " << Count << "\n";
}
