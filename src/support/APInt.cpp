//===- support/APInt.cpp - Arbitrary-width integer arithmetic ------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/APInt.h"

#include <algorithm>

using namespace alive;

static unsigned clz64(uint64_t X) {
  return X == 0 ? 64 : (unsigned)__builtin_clzll(X);
}
static unsigned ctz64(uint64_t X) {
  return X == 0 ? 64 : (unsigned)__builtin_ctzll(X);
}

unsigned APInt::countLeadingZeros() const {
  unsigned Z = Hi != 0 ? clz64(Hi) : 64 + clz64(Lo);
  // Z is counted from bit 127 downward; adjust for the actual width.
  return Z - (128 - BitWidth);
}

unsigned APInt::countTrailingZeros() const {
  unsigned Z = Lo != 0 ? ctz64(Lo) : 64 + ctz64(Hi);
  return std::min(Z, BitWidth);
}

unsigned APInt::popcount() const {
  return (unsigned)(__builtin_popcountll(Lo) + __builtin_popcountll(Hi));
}

APInt APInt::operator+(const APInt &RHS) const {
  assertSameWidth(RHS);
  uint64_t L = Lo + RHS.Lo;
  uint64_t Carry = L < Lo ? 1 : 0;
  return fromParts(BitWidth, L, Hi + RHS.Hi + Carry);
}

APInt APInt::operator-(const APInt &RHS) const {
  assertSameWidth(RHS);
  uint64_t L = Lo - RHS.Lo;
  uint64_t Borrow = Lo < RHS.Lo ? 1 : 0;
  return fromParts(BitWidth, L, Hi - RHS.Hi - Borrow);
}

APInt APInt::operator*(const APInt &RHS) const {
  assertSameWidth(RHS);
  // 128x128 -> low 128 bits via 64-bit partial products.
  unsigned __int128 P = (unsigned __int128)Lo * RHS.Lo;
  uint64_t ResLo = (uint64_t)P;
  uint64_t ResHi = (uint64_t)(P >> 64);
  ResHi += Lo * RHS.Hi + Hi * RHS.Lo;
  return fromParts(BitWidth, ResLo, ResHi);
}

/// Shift-subtract long division producing quotient and remainder.
static void udivrem128(uint64_t ALo, uint64_t AHi, uint64_t BLo, uint64_t BHi,
                       uint64_t &QLo, uint64_t &QHi, uint64_t &RLo,
                       uint64_t &RHi) {
  if (AHi == 0 && BHi == 0) {
    QLo = ALo / BLo;
    QHi = 0;
    RLo = ALo % BLo;
    RHi = 0;
    return;
  }
  unsigned __int128 A = ((unsigned __int128)AHi << 64) | ALo;
  unsigned __int128 B = ((unsigned __int128)BHi << 64) | BLo;
  unsigned __int128 Q = A / B, R = A % B;
  QLo = (uint64_t)Q;
  QHi = (uint64_t)(Q >> 64);
  RLo = (uint64_t)R;
  RHi = (uint64_t)(R >> 64);
}

APInt APInt::udiv(const APInt &RHS) const {
  assertSameWidth(RHS);
  assert(!RHS.isZero() && "division by zero is UB; caller must check");
  uint64_t QLo, QHi, RLo, RHi;
  udivrem128(Lo, Hi, RHS.Lo, RHS.Hi, QLo, QHi, RLo, RHi);
  return fromParts(BitWidth, QLo, QHi);
}

APInt APInt::urem(const APInt &RHS) const {
  assertSameWidth(RHS);
  assert(!RHS.isZero() && "division by zero is UB; caller must check");
  uint64_t QLo, QHi, RLo, RHi;
  udivrem128(Lo, Hi, RHS.Lo, RHS.Hi, QLo, QHi, RLo, RHi);
  return fromParts(BitWidth, RLo, RHi);
}

APInt APInt::sdiv(const APInt &RHS) const {
  assertSameWidth(RHS);
  assert(!RHS.isZero() && "division by zero is UB; caller must check");
  bool LN = isNegative(), RN = RHS.isNegative();
  APInt Q = abs().udiv(RHS.abs());
  return LN != RN ? -Q : Q;
}

APInt APInt::srem(const APInt &RHS) const {
  assertSameWidth(RHS);
  assert(!RHS.isZero() && "division by zero is UB; caller must check");
  APInt R = abs().urem(RHS.abs());
  return isNegative() ? -R : R;
}

APInt APInt::shl(unsigned Amt) const {
  assert(Amt < BitWidth && "oversized shift is poison; caller must check");
  if (Amt == 0)
    return *this;
  if (Amt >= 64)
    return fromParts(BitWidth, 0, Lo << (Amt - 64));
  return fromParts(BitWidth, Lo << Amt, (Hi << Amt) | (Lo >> (64 - Amt)));
}

APInt APInt::lshr(unsigned Amt) const {
  assert(Amt < BitWidth && "oversized shift is poison; caller must check");
  if (Amt == 0)
    return *this;
  if (Amt >= 64)
    return fromParts(BitWidth, Hi >> (Amt - 64), 0);
  return fromParts(BitWidth, (Lo >> Amt) | (Hi << (64 - Amt)), Hi >> Amt);
}

APInt APInt::ashr(unsigned Amt) const {
  assert(Amt < BitWidth && "oversized shift is poison; caller must check");
  if (!isNegative())
    return lshr(Amt);
  if (Amt == 0)
    return *this;
  // Shift in ones from the top.
  APInt R = lshr(Amt);
  return R | getHighBitsSet(BitWidth, Amt);
}

APInt APInt::rotl(unsigned Amt) const {
  Amt %= BitWidth;
  if (Amt == 0)
    return *this;
  return shl(Amt) | lshr(BitWidth - Amt);
}

APInt APInt::rotr(unsigned Amt) const {
  Amt %= BitWidth;
  if (Amt == 0)
    return *this;
  return lshr(Amt) | shl(BitWidth - Amt);
}

APInt APInt::uadd_ov(const APInt &RHS, bool &Overflow) const {
  APInt R = *this + RHS;
  Overflow = R.ult(*this);
  return R;
}

APInt APInt::sadd_ov(const APInt &RHS, bool &Overflow) const {
  APInt R = *this + RHS;
  // Overflow iff operands share a sign that differs from the result's.
  Overflow = isNegative() == RHS.isNegative() &&
             R.isNegative() != isNegative();
  return R;
}

APInt APInt::usub_ov(const APInt &RHS, bool &Overflow) const {
  Overflow = ult(RHS);
  return *this - RHS;
}

APInt APInt::ssub_ov(const APInt &RHS, bool &Overflow) const {
  APInt R = *this - RHS;
  Overflow = isNegative() != RHS.isNegative() &&
             R.isNegative() != isNegative();
  return R;
}

APInt APInt::umul_ov(const APInt &RHS, bool &Overflow) const {
  APInt R = *this * RHS;
  if (isZero() || RHS.isZero()) {
    Overflow = false;
    return R;
  }
  // Overflow iff the division does not round-trip.
  Overflow = R.udiv(RHS) != *this;
  return R;
}

APInt APInt::smul_ov(const APInt &RHS, bool &Overflow) const {
  APInt R = *this * RHS;
  if (isZero() || RHS.isZero()) {
    Overflow = false;
    return R;
  }
  if (isSignedMinValue() || RHS.isSignedMinValue()) {
    // MIN * x overflows unless x == 1.
    Overflow = !(isOne() || RHS.isOne());
    return R;
  }
  Overflow = R.sdiv(RHS) != *this;
  return R;
}

APInt APInt::sdiv_ov(const APInt &RHS, bool &Overflow) const {
  Overflow = isSignedMinValue() && RHS.isAllOnes();
  if (Overflow)
    return *this; // MIN / -1 wraps back to MIN.
  return sdiv(RHS);
}

APInt APInt::ushl_ov(const APInt &Amt, bool &Overflow) const {
  APInt R = shl(Amt);
  Overflow = R.lshr(Amt) != *this;
  return R;
}

APInt APInt::sshl_ov(const APInt &Amt, bool &Overflow) const {
  APInt R = shl(Amt);
  Overflow = R.ashr(Amt) != *this;
  return R;
}

APInt APInt::uadd_sat(const APInt &RHS) const {
  bool Ov;
  APInt R = uadd_ov(RHS, Ov);
  return Ov ? getMaxValue(BitWidth) : R;
}

APInt APInt::sadd_sat(const APInt &RHS) const {
  bool Ov;
  APInt R = sadd_ov(RHS, Ov);
  if (!Ov)
    return R;
  return isNegative() ? getSignedMinValue(BitWidth)
                      : getSignedMaxValue(BitWidth);
}

APInt APInt::usub_sat(const APInt &RHS) const {
  bool Ov;
  APInt R = usub_ov(RHS, Ov);
  return Ov ? getZero(BitWidth) : R;
}

APInt APInt::ssub_sat(const APInt &RHS) const {
  bool Ov;
  APInt R = ssub_ov(RHS, Ov);
  if (!Ov)
    return R;
  return isNegative() ? getSignedMinValue(BitWidth)
                      : getSignedMaxValue(BitWidth);
}

APInt APInt::sext(unsigned NewWidth) const {
  assert(NewWidth >= BitWidth && "sext must widen");
  if (!isNegative())
    return zext(NewWidth);
  APInt R = fromParts(NewWidth, Lo, Hi);
  return R | getHighBitsSet(NewWidth, NewWidth - BitWidth);
}

APInt APInt::byteSwap() const {
  assert(BitWidth % 16 == 0 && "bswap requires a multiple of 16 bits");
  unsigned Bytes = BitWidth / 8;
  APInt R = getZero(BitWidth);
  for (unsigned I = 0; I != Bytes; ++I) {
    APInt Byte = lshr(I * 8) & fromParts(BitWidth, 0xFF, 0);
    R = R | Byte.shl((Bytes - 1 - I) * 8);
  }
  return R;
}

APInt APInt::bitReverse() const {
  APInt R = getZero(BitWidth);
  for (unsigned I = 0; I != BitWidth; ++I)
    if (testBit(I))
      R.setBit(BitWidth - 1 - I);
  return R;
}

std::string APInt::toString(bool Signed) const {
  APInt V = *this;
  bool Neg = false;
  if (Signed && isNegative()) {
    Neg = true;
    V = -V;
  }
  if (V.isZero())
    return "0";
  std::string Digits;
  APInt Ten(BitWidth, 10);
  // Widths below 4 bits cannot represent 10; widen for the digit loop.
  if (BitWidth < 8) {
    V = V.zext(8);
    Ten = APInt(8, 10);
  }
  while (!V.isZero()) {
    APInt D = V.urem(Ten);
    Digits.push_back((char)('0' + D.getZExtValue()));
    V = V.udiv(Ten);
  }
  if (Neg)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

bool APInt::fromString(unsigned NumBits, const std::string &Str,
                       APInt &Result) {
  if (Str.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (Str[0] == '-') {
    Neg = true;
    I = 1;
    if (Str.size() == 1)
      return false;
  }
  APInt V = getZero(NumBits);
  APInt Ten(NumBits, 10);
  for (; I != Str.size(); ++I) {
    if (Str[I] < '0' || Str[I] > '9')
      return false;
    V = V * Ten + APInt(NumBits, (uint64_t)(Str[I] - '0'));
  }
  Result = Neg ? -V : V;
  return true;
}
