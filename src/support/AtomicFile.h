//===- support/AtomicFile.h - Durable atomic file replace ------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one way this codebase writes an artifact: stage the content in
/// `<path>.tmp`, fsync it, then rename() over the destination. A reader
/// (or a -replay, or a -resume) therefore only ever sees the old bytes or
/// the new bytes — a SIGKILL or ENOSPC mid-write can never leave a torn
/// file under the final name. Checkpoint, Forensics manifests and
/// -stats-json reports all route through here.
///
/// Each call names a FaultPlane prefix, arming three injection points
/// around the syscall edges: `<prefix>.write`, `<prefix>.fsync`,
/// `<prefix>.rename`. An injected fault fails exactly like the real
/// syscall would (ENOSPC for write, EIO for fsync/rename), so the
/// degradation paths get exercised by the same code the real faults take.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_ATOMICFILE_H
#define SUPPORT_ATOMICFILE_H

#include <string>

namespace alive {

/// Atomically (and durably) replaces \p Path with \p Content.
/// \p FaultPrefix names the FaultPlane point family guarding this writer
/// ("checkpoint", "forensics", "report"). On failure \returns false and
/// fills \p Error with the stage, path and errno text; the staged .tmp
/// file is removed.
bool writeFileAtomicDurable(const std::string &Path,
                            const std::string &Content,
                            const char *FaultPrefix, std::string &Error);

/// True when \p Error came from an out-of-space condition (real ENOSPC or
/// an injected one) — the trigger for the "stop writing artifacts, keep
/// fuzzing" degradation.
bool isNoSpaceError(const std::string &Error);

} // namespace alive

#endif // SUPPORT_ATOMICFILE_H
