//===- support/Cancellation.h - Cooperative iteration watchdog --*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The survivability layer's cancellation primitive: a cooperative token
/// threaded through the pass manager, the interpreter and the refinement
/// checker so a hung iteration becomes a recorded Timeout outcome instead
/// of a wedged campaign.
///
/// Two triggers, deliberately separate:
///   - a *step budget*: the instrumented stages consume abstract steps
///     (interpreter instructions, solver conflicts, pass sweeps) and the
///     token trips when the per-iteration budget is exhausted. Steps are
///     consumed only by the owning worker thread, so the trip point is
///     deterministic per seed — step-budget timeouts reproduce exactly,
///     across runs and across worker counts;
///   - a *wall-clock backstop*: a supervisor thread watches each worker's
///     iteration serial and cancels the token when one iteration sits on
///     the same serial for too long. Inherently nondeterministic — the
///     engine keeps wall-clock timeout counts out of the deterministic
///     report section.
///
/// The token is all-atomic: the worker consumes and polls it on hot paths
/// (relaxed operations, no fences), the supervisor only reads the serial
/// and CAS-writes the cancel flag.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CANCELLATION_H
#define SUPPORT_CANCELLATION_H

#include <atomic>
#include <cstdint>

namespace alive {

/// One worker's cancellation state, reset per iteration.
class CancellationToken {
public:
  enum class Reason : uint32_t {
    None = 0,
    StepBudget = 1, ///< deterministic: the per-iteration step budget ran out
    WallClock = 2,  ///< nondeterministic: the supervisor's backstop fired
  };

  /// Starts a new iteration: resets the step counter and the cancel flag,
  /// sets the budget (0 = unlimited) and advances the serial so a stale
  /// wall-clock cancel aimed at the previous iteration cannot land here.
  void beginIteration(uint64_t Budget) {
    StepBudget = Budget;
    StepsUsed.store(0, std::memory_order_relaxed);
    CancelFlag.store((uint32_t)Reason::None, std::memory_order_relaxed);
    Serial.fetch_add(1, std::memory_order_release);
  }

  /// Consumes \p N steps. \returns true when the token is (now) cancelled —
  /// callers unwind cooperatively. Only the owning thread consumes, so
  /// budget trips are deterministic.
  bool consume(uint64_t N = 1) {
    if (CancelFlag.load(std::memory_order_relaxed) != (uint32_t)Reason::None)
      return true;
    if (StepBudget) {
      uint64_t Used = StepsUsed.fetch_add(N, std::memory_order_relaxed) + N;
      if (Used > StepBudget) {
        CancelFlag.store((uint32_t)Reason::StepBudget,
                         std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  bool cancelled() const {
    return CancelFlag.load(std::memory_order_relaxed) !=
           (uint32_t)Reason::None;
  }

  Reason reason() const {
    return (Reason)CancelFlag.load(std::memory_order_relaxed);
  }

  /// Monotonic iteration counter, read by the wall-clock supervisor.
  uint64_t serial() const { return Serial.load(std::memory_order_acquire); }

  /// Supervisor-side wall-clock cancel: fires only when the worker is
  /// still on iteration \p SerialSeen. The residual race (the worker
  /// advances the serial between the check and the store) is benign — the
  /// next beginIteration clears the flag, and wall-clock timeouts are
  /// volatile-only by design.
  void cancelIfStillOn(uint64_t SerialSeen) {
    if (Serial.load(std::memory_order_acquire) == SerialSeen) {
      uint32_t Expected = (uint32_t)Reason::None;
      CancelFlag.compare_exchange_strong(Expected, (uint32_t)Reason::WallClock,
                                         std::memory_order_relaxed);
    }
  }

  uint64_t stepsUsed() const {
    return StepsUsed.load(std::memory_order_relaxed);
  }
  uint64_t stepBudget() const { return StepBudget; }

private:
  std::atomic<uint64_t> StepsUsed{0};
  uint64_t StepBudget = 0; // written at beginIteration, read by the owner
  std::atomic<uint32_t> CancelFlag{(uint32_t)Reason::None};
  std::atomic<uint64_t> Serial{0};
};

/// Installs \p Token as the calling thread's ambient cancellation token for
/// the scope's lifetime (mirrors BugContextScope): deep callees that take
/// no token parameter — e.g. the fault-injection test passes — cooperate
/// via currentCancellationToken().
class CancellationScope {
public:
  explicit CancellationScope(CancellationToken *Token);
  ~CancellationScope();
  CancellationScope(const CancellationScope &) = delete;
  CancellationScope &operator=(const CancellationScope &) = delete;

private:
  CancellationToken *Prev;
};

/// The calling thread's ambient token (null outside any scope).
CancellationToken *currentCancellationToken();

} // namespace alive

#endif // SUPPORT_CANCELLATION_H
