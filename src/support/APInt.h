//===- support/APInt.h - Arbitrary-width integer arithmetic ----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity reimplementation of LLVM's APInt supporting bit widths
/// from 1 to 128. Values are stored in two's-complement form in two 64-bit
/// words; all arithmetic is performed modulo 2^width. This is the numeric
/// substrate for the IR interpreter, the constant folder, and the SMT
/// bit-blaster's constant handling.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_APINT_H
#define SUPPORT_APINT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace alive {

/// An arbitrary-width (1..128 bit) two's-complement integer.
///
/// Semantics follow llvm::APInt: operations wrap modulo 2^BitWidth, widths of
/// both operands of a binary operation must match, and explicit trunc/zext/
/// sext conversions change the width. Overflow-detecting variants are
/// provided for the nsw/nuw/exact poison-flag checks the IR needs.
class APInt {
public:
  static constexpr unsigned MaxBits = 128;

  /// Constructs the value \p Val zero-extended/truncated to \p NumBits bits.
  APInt(unsigned NumBits, uint64_t Val, bool IsSigned = false)
      : BitWidth(NumBits) {
    assert(NumBits >= 1 && NumBits <= MaxBits && "unsupported bit width");
    Lo = Val;
    Hi = IsSigned && (int64_t)Val < 0 ? ~0ULL : 0;
    clearUnusedBits();
  }

  /// Constructs a zero of width 1. Exists so containers can hold APInt;
  /// prefer the explicit-width constructor.
  APInt() : BitWidth(1), Lo(0), Hi(0) {}

  /// Builds an APInt from both 64-bit halves.
  static APInt fromParts(unsigned NumBits, uint64_t LoPart, uint64_t HiPart) {
    APInt R(NumBits, 0);
    R.Lo = LoPart;
    R.Hi = HiPart;
    R.clearUnusedBits();
    return R;
  }

  static APInt getZero(unsigned NumBits) { return APInt(NumBits, 0); }
  static APInt getOne(unsigned NumBits) { return APInt(NumBits, 1); }
  /// All-ones value (unsigned max, signed -1).
  static APInt getAllOnes(unsigned NumBits) {
    return fromParts(NumBits, ~0ULL, ~0ULL);
  }
  static APInt getMaxValue(unsigned NumBits) { return getAllOnes(NumBits); }
  static APInt getMinValue(unsigned NumBits) { return getZero(NumBits); }
  /// 2^(w-1) - 1.
  static APInt getSignedMaxValue(unsigned NumBits) {
    APInt R = getAllOnes(NumBits);
    R.clearBit(NumBits - 1);
    return R;
  }
  /// -2^(w-1).
  static APInt getSignedMinValue(unsigned NumBits) {
    APInt R = getZero(NumBits);
    R.setBit(NumBits - 1);
    return R;
  }
  /// Value with exactly bit \p BitNo set.
  static APInt getOneBitSet(unsigned NumBits, unsigned BitNo) {
    APInt R = getZero(NumBits);
    R.setBit(BitNo);
    return R;
  }
  /// Low \p LoBits bits set, rest clear.
  static APInt getLowBitsSet(unsigned NumBits, unsigned LoBits) {
    assert(LoBits <= NumBits);
    if (LoBits == 0)
      return getZero(NumBits);
    return getAllOnes(NumBits).lshr(NumBits - LoBits);
  }
  /// High \p HiBits bits set, rest clear.
  static APInt getHighBitsSet(unsigned NumBits, unsigned HiBits) {
    assert(HiBits <= NumBits);
    if (HiBits == 0)
      return getZero(NumBits);
    return getAllOnes(NumBits).shl(NumBits - HiBits);
  }

  unsigned getBitWidth() const { return BitWidth; }

  /// \returns the low 64 bits. Asserts nothing: callers that need the whole
  /// value at widths > 64 must use both parts.
  uint64_t getLoBits64() const { return Lo; }
  uint64_t getHiBits64() const { return Hi; }

  /// Zero-extended value; asserts that it fits in 64 bits.
  uint64_t getZExtValue() const {
    assert((BitWidth <= 64 || Hi == 0) && "value does not fit in 64 bits");
    return Lo;
  }
  /// Sign-extended value; asserts that it fits in a signed 64-bit integer.
  int64_t getSExtValue() const {
    if (BitWidth <= 64) {
      unsigned Shift = 64 - BitWidth;
      return (int64_t)(Lo << Shift) >> Shift;
    }
    assert((Hi == 0 && !(Lo >> 63)) ||
           (Hi == ~0ULL && (Lo >> 63)) && "value does not fit in 64 bits");
    return (int64_t)Lo;
  }

  bool isZero() const { return Lo == 0 && Hi == 0; }
  bool isOne() const { return Lo == 1 && Hi == 0; }
  bool isAllOnes() const { return *this == getAllOnes(BitWidth); }
  bool isNegative() const { return testBit(BitWidth - 1); }
  bool isNonNegative() const { return !isNegative(); }
  bool isSignedMinValue() const { return *this == getSignedMinValue(BitWidth); }
  bool isSignedMaxValue() const { return *this == getSignedMaxValue(BitWidth); }
  /// True if exactly one bit is set.
  bool isPowerOf2() const { return !isZero() && (*this & (*this - getOne(BitWidth))).isZero(); }

  bool testBit(unsigned BitNo) const {
    assert(BitNo < BitWidth && "bit index out of range");
    return BitNo < 64 ? (Lo >> BitNo) & 1 : (Hi >> (BitNo - 64)) & 1;
  }
  void setBit(unsigned BitNo) {
    assert(BitNo < BitWidth && "bit index out of range");
    if (BitNo < 64)
      Lo |= 1ULL << BitNo;
    else
      Hi |= 1ULL << (BitNo - 64);
  }
  void clearBit(unsigned BitNo) {
    assert(BitNo < BitWidth && "bit index out of range");
    if (BitNo < 64)
      Lo &= ~(1ULL << BitNo);
    else
      Hi &= ~(1ULL << (BitNo - 64));
  }

  unsigned countLeadingZeros() const;
  unsigned countTrailingZeros() const;
  unsigned countLeadingOnes() const { return (~*this).countLeadingZeros(); }
  unsigned popcount() const;
  /// Bits needed to represent this as an unsigned number.
  unsigned getActiveBits() const { return BitWidth - countLeadingZeros(); }
  /// log2 if this is a power of two; asserts otherwise.
  unsigned logBase2() const {
    assert(isPowerOf2() && "logBase2 on non-power-of-2");
    return BitWidth - 1 - countLeadingZeros();
  }

  // Bitwise operators.
  APInt operator~() const { return fromParts(BitWidth, ~Lo, ~Hi); }
  APInt operator&(const APInt &RHS) const {
    assertSameWidth(RHS);
    return fromParts(BitWidth, Lo & RHS.Lo, Hi & RHS.Hi);
  }
  APInt operator|(const APInt &RHS) const {
    assertSameWidth(RHS);
    return fromParts(BitWidth, Lo | RHS.Lo, Hi | RHS.Hi);
  }
  APInt operator^(const APInt &RHS) const {
    assertSameWidth(RHS);
    return fromParts(BitWidth, Lo ^ RHS.Lo, Hi ^ RHS.Hi);
  }

  // Arithmetic (modulo 2^width).
  APInt operator+(const APInt &RHS) const;
  APInt operator-(const APInt &RHS) const;
  APInt operator*(const APInt &RHS) const;
  APInt operator-() const { return getZero(BitWidth) - *this; }

  /// Unsigned division; asserts RHS != 0 (IR-level division by zero is UB and
  /// must be caught before reaching here).
  APInt udiv(const APInt &RHS) const;
  APInt urem(const APInt &RHS) const;
  /// Signed division with C semantics (truncation toward zero). Asserts
  /// RHS != 0; INT_MIN / -1 wraps (caller detects overflow with sdiv_ov).
  APInt sdiv(const APInt &RHS) const;
  APInt srem(const APInt &RHS) const;

  /// Shifts. Asserts Amt < width; IR-level oversized shifts are poison and
  /// must be caught before reaching here.
  APInt shl(unsigned Amt) const;
  APInt lshr(unsigned Amt) const;
  APInt ashr(unsigned Amt) const;
  APInt shl(const APInt &Amt) const { return shl(shiftAmount(Amt)); }
  APInt lshr(const APInt &Amt) const { return lshr(shiftAmount(Amt)); }
  APInt ashr(const APInt &Amt) const { return ashr(shiftAmount(Amt)); }

  /// Rotates (total width modulo semantics; Amt may be any value).
  APInt rotl(unsigned Amt) const;
  APInt rotr(unsigned Amt) const;

  // Overflow-detecting arithmetic, used for nsw/nuw/exact poison checks.
  // Each returns the wrapped result and sets \p Overflow.
  APInt uadd_ov(const APInt &RHS, bool &Overflow) const;
  APInt sadd_ov(const APInt &RHS, bool &Overflow) const;
  APInt usub_ov(const APInt &RHS, bool &Overflow) const;
  APInt ssub_ov(const APInt &RHS, bool &Overflow) const;
  APInt umul_ov(const APInt &RHS, bool &Overflow) const;
  APInt smul_ov(const APInt &RHS, bool &Overflow) const;
  APInt sdiv_ov(const APInt &RHS, bool &Overflow) const;
  APInt ushl_ov(const APInt &Amt, bool &Overflow) const;
  APInt sshl_ov(const APInt &Amt, bool &Overflow) const;

  // Saturating arithmetic (for the *.sat intrinsics).
  APInt uadd_sat(const APInt &RHS) const;
  APInt sadd_sat(const APInt &RHS) const;
  APInt usub_sat(const APInt &RHS) const;
  APInt ssub_sat(const APInt &RHS) const;

  // Comparisons.
  bool operator==(const APInt &RHS) const {
    assertSameWidth(RHS);
    return Lo == RHS.Lo && Hi == RHS.Hi;
  }
  bool operator!=(const APInt &RHS) const { return !(*this == RHS); }
  bool ult(const APInt &RHS) const {
    assertSameWidth(RHS);
    return Hi != RHS.Hi ? Hi < RHS.Hi : Lo < RHS.Lo;
  }
  bool ule(const APInt &RHS) const { return !RHS.ult(*this); }
  bool ugt(const APInt &RHS) const { return RHS.ult(*this); }
  bool uge(const APInt &RHS) const { return !ult(RHS); }
  bool slt(const APInt &RHS) const {
    assertSameWidth(RHS);
    bool LN = isNegative(), RN = RHS.isNegative();
    if (LN != RN)
      return LN;
    return ult(RHS);
  }
  bool sle(const APInt &RHS) const { return !RHS.slt(*this); }
  bool sgt(const APInt &RHS) const { return RHS.slt(*this); }
  bool sge(const APInt &RHS) const { return !slt(RHS); }

  // Width conversions.
  APInt trunc(unsigned NewWidth) const {
    assert(NewWidth <= BitWidth && "trunc must narrow");
    return fromParts(NewWidth, Lo, Hi);
  }
  APInt zext(unsigned NewWidth) const {
    assert(NewWidth >= BitWidth && "zext must widen");
    return fromParts(NewWidth, Lo, Hi);
  }
  APInt sext(unsigned NewWidth) const;
  /// zext, sext or trunc as needed to reach \p NewWidth.
  APInt zextOrTrunc(unsigned NewWidth) const {
    return NewWidth >= BitWidth ? zext(NewWidth) : trunc(NewWidth);
  }
  APInt sextOrTrunc(unsigned NewWidth) const {
    return NewWidth >= BitWidth ? sext(NewWidth) : trunc(NewWidth);
  }

  /// Reverses the bytes; asserts the width is a multiple of 16 bits (the
  /// bswap intrinsic's constraint).
  APInt byteSwap() const;
  /// Reverses all bits.
  APInt bitReverse() const;
  /// |x| as an unsigned value of the same width (INT_MIN stays INT_MIN).
  APInt abs() const { return isNegative() ? -*this : *this; }

  APInt smax(const APInt &RHS) const { return sgt(RHS) ? *this : RHS; }
  APInt smin(const APInt &RHS) const { return slt(RHS) ? *this : RHS; }
  APInt umax(const APInt &RHS) const { return ugt(RHS) ? *this : RHS; }
  APInt umin(const APInt &RHS) const { return ult(RHS) ? *this : RHS; }

  /// Renders as decimal, signed or unsigned.
  std::string toString(bool Signed = true) const;

  /// Parses a decimal literal (optionally with a leading '-') into an APInt
  /// of width \p NumBits, wrapping modulo 2^NumBits. \returns false on
  /// malformed input.
  static bool fromString(unsigned NumBits, const std::string &Str,
                         APInt &Result);

  /// Stable 64-bit hash for hash-consing and value numbering.
  uint64_t hash() const {
    uint64_t H = BitWidth;
    H = H * 0x9E3779B97F4A7C15ULL + Lo;
    H = H * 0x9E3779B97F4A7C15ULL + Hi;
    return H;
  }

private:
  void clearUnusedBits() {
    if (BitWidth <= 64) {
      if (BitWidth < 64)
        Lo &= (~0ULL >> (64 - BitWidth));
      Hi = 0;
    } else if (BitWidth < 128) {
      Hi &= (~0ULL >> (128 - BitWidth));
    }
  }
  void assertSameWidth(const APInt &RHS) const {
    assert(BitWidth == RHS.BitWidth && "bit widths must match");
    (void)RHS;
  }
  /// Clamps a shift-amount operand; asserts it is in range.
  unsigned shiftAmount(const APInt &Amt) const {
    assert(Amt.getBitWidth() == BitWidth && "shift amount width mismatch");
    assert((Amt.Hi == 0 && Amt.Lo < BitWidth) && "oversized shift is poison");
    return (unsigned)Amt.Lo;
  }

  unsigned BitWidth;
  uint64_t Lo, Hi;
};

} // namespace alive

#endif // SUPPORT_APINT_H
