//===- support/Retry.cpp - Bounded exponential backoff policy --------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"

#include "support/FaultPlane.h"

#include <algorithm>
#include <cstdio>

using namespace alive;

RetryState::RetryState(const RetryPolicy &Policy, uint64_t StreamTag)
    : Policy(Policy), Stream(Policy.JitterSeed ^ (StreamTag * 0x9E3779B97F4A7C15ULL)) {}

double RetryState::nextDelaySeconds() {
  ++Attempts;
  unsigned Exp = std::min(Attempts - 1, 10u);
  double Delay = std::min(Policy.BaseDelaySeconds * (double)(1ULL << Exp),
                          Policy.MaxDelaySeconds);
  // Deterministic jitter in [-JitterFraction, +JitterFraction].
  double U = (double)(splitmix64(Stream) >> 11) * 0x1.0p-53; // [0,1)
  return Delay * (1.0 + Policy.JitterFraction * (2.0 * U - 1.0));
}

std::string alive::describeRetryPolicy(const RetryPolicy &Policy) {
  char Buf[128];
  std::snprintf(Buf, sizeof Buf,
                "%u attempts, %.3gs..%.3gs backoff, %.0f%% jitter",
                Policy.MaxAttempts, Policy.BaseDelaySeconds,
                Policy.MaxDelaySeconds, Policy.JitterFraction * 100.0);
  return Buf;
}
