//===- support/TraceRecorder.h - Flight-recorder event tracing -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity flight recorder of timestamped span/instant events,
/// complementing the aggregate telemetry of support/Telemetry.h with a
/// per-event timeline: what was this worker doing, in order, and for how
/// long. Each campaign worker owns one recorder (share-nothing, like its
/// StatRegistry); the engine collects them after the join and flushes one
/// Chrome trace-event JSON file with one track per worker, loadable in
/// Perfetto or chrome://tracing.
///
/// Cost model: when tracing is off every recording site is a single null
/// pointer check — no clock read, no allocation. When on, a span is two
/// steady_clock reads plus one ring-slot store; the ring never grows, so a
/// long campaign keeps the most recent events (the flight-recorder
/// semantics: the tail of the timeline before the interesting verdict).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACERECORDER_H
#define SUPPORT_TRACERECORDER_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace alive {

class TraceRecorder {
public:
  /// Default ring capacity (events). 16Ki events x 40 bytes keeps a
  /// worker's recorder under a megabyte.
  static constexpr size_t DefaultCapacity = 1 << 14;

  /// One recorded event. Name/Detail point at static strings or at labels
  /// interned in this recorder — never at caller-owned storage.
  struct Event {
    const char *Name;    ///< span/instant label ("mutate", "verify", ...)
    const char *Detail;  ///< optional context (function, pass); may be null
    uint64_t StartNanos; ///< nanoseconds since the shared process epoch
    uint64_t DurNanos;   ///< span duration; Instant marks a point event
    uint64_t Seed;       ///< associated mutant seed (0 = none)
  };
  /// DurNanos sentinel distinguishing instant events from spans.
  static constexpr uint64_t Instant = ~uint64_t(0);

  /// Live span stack depth visible to the sampling profiler. Deeper
  /// nesting still records ring events; the sampler just sees the top
  /// clamped at this depth.
  static constexpr unsigned MaxLiveDepth = 8;

  explicit TraceRecorder(size_t Capacity = DefaultCapacity);

  /// Nanoseconds since the process-wide trace epoch. The epoch is shared
  /// by every recorder in the process, so multi-worker tracks line up on
  /// one timeline.
  static uint64_t now();

  /// Interns a dynamic label (function name, pass name) into this
  /// recorder; the returned pointer stays valid for the recorder's
  /// lifetime. Callers should intern once and reuse the pointer on hot
  /// paths.
  const char *intern(const std::string &S);

  /// Records a completed span [StartNanos, EndNanos).
  void span(const char *Name, uint64_t StartNanos, uint64_t EndNanos,
            uint64_t Seed = 0, const char *Detail = nullptr);

  /// Records an instant event at the current time (bug verdicts).
  void instant(const char *Name, uint64_t Seed = 0,
               const char *Detail = nullptr);

  /// Events currently retained, oldest first. When the ring overflowed,
  /// the oldest events were overwritten (see dropped()).
  std::vector<Event> events() const;

  size_t capacity() const { return Cap; }
  /// Events retained right now (<= capacity()).
  size_t size() const {
    uint64_t T = Total.load(std::memory_order_relaxed);
    return T < Cap ? (size_t)T : Cap;
  }
  /// Events lost to ring overwrite. Safe to read from an observer thread
  /// while the owning worker records (the count is a relaxed atomic; the
  /// ring payload itself is still single-owner).
  uint64_t dropped() const {
    uint64_t T = Total.load(std::memory_order_relaxed);
    return T < Cap ? 0 : T - Cap;
  }

  /// Enables the live span stack: TraceSpan sites start pushing/popping
  /// their labels so the sampling profiler can read "what is this worker
  /// doing right now". Off by default — a disabled site costs one relaxed
  /// bool load on top of the usual recording.
  void setLiveStack(bool On) { LiveOn.store(On, std::memory_order_relaxed); }
  bool liveStackEnabled() const {
    return LiveOn.load(std::memory_order_relaxed);
  }

  /// Owning-worker side: pushes/pops the current span label. Lock-free;
  /// labels must be static or interned in this recorder (the sampler
  /// dereferences them concurrently).
  void enterSpan(const char *Name) {
    if (!LiveOn.load(std::memory_order_relaxed))
      return;
    unsigned D = LiveDepth.load(std::memory_order_relaxed);
    if (D < MaxLiveDepth)
      LiveStack[D].store(Name, std::memory_order_release);
    LiveDepth.store(D + 1, std::memory_order_release);
  }
  void exitSpan() {
    if (!LiveOn.load(std::memory_order_relaxed))
      return;
    unsigned D = LiveDepth.load(std::memory_order_relaxed);
    if (D)
      LiveDepth.store(D - 1, std::memory_order_release);
  }

  /// Sampler side: copies the live stack (outermost first) into \p Out,
  /// returning the number of frames. A read racing a push/pop may see a
  /// slightly stale prefix — fine for a statistical profiler; every
  /// returned pointer is valid (static/interned) whatever the interleave.
  unsigned sampleLiveStack(const char *Out[], unsigned MaxOut) const {
    unsigned D = LiveDepth.load(std::memory_order_acquire);
    if (D > MaxLiveDepth)
      D = MaxLiveDepth;
    if (D > MaxOut)
      D = MaxOut;
    for (unsigned I = 0; I != D; ++I) {
      const char *F = LiveStack[I].load(std::memory_order_acquire);
      if (!F)
        return I;
      Out[I] = F;
    }
    return D;
  }

private:
  void push(const Event &E);

  std::vector<Event> Ring;
  size_t Cap;
  size_t Head = 0; ///< next write slot
  /// Events ever recorded. Atomic so live /status reads of dropped() are
  /// race-free against the recording worker; the single writer still
  /// updates it with a plain relaxed increment.
  std::atomic<uint64_t> Total{0};
  /// Interned dynamic labels. std::set nodes never move, so the stored
  /// strings' c_str() stays stable across inserts.
  std::set<std::string> Labels;
  /// Live span stack for the sampling profiler: single writer (the owning
  /// worker), any number of lock-free readers.
  std::atomic<bool> LiveOn{false};
  std::atomic<unsigned> LiveDepth{0};
  std::atomic<const char *> LiveStack[MaxLiveDepth] = {};
};

/// RAII span recorder: reads the clock only when \p R is non-null, so a
/// disabled site costs one pointer test.
class TraceSpan {
public:
  TraceSpan(TraceRecorder *R, const char *Name, uint64_t Seed = 0,
            const char *Detail = nullptr)
      : R(R), Name(Name), Detail(Detail), Seed(Seed),
        Start(R ? TraceRecorder::now() : 0) {
    if (R)
      R->enterSpan(Name);
  }
  ~TraceSpan() {
    if (R) {
      R->exitSpan();
      R->span(Name, Start, TraceRecorder::now(), Seed, Detail);
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceRecorder *R;
  const char *Name;
  const char *Detail;
  uint64_t Seed;
  uint64_t Start;
};

/// Writes \p Tracks as Chrome trace-event JSON: one tid per track (named
/// by \p TrackNames via thread_name metadata events), spans as "ph":"X"
/// complete events, instants as "ph":"i". Timestamps are microseconds
/// since the shared process epoch, so concurrent workers interleave
/// correctly on the rendered timeline.
void writeChromeTrace(std::ostream &OS,
                      const std::vector<const TraceRecorder *> &Tracks,
                      const std::vector<std::string> &TrackNames);

} // namespace alive

#endif // SUPPORT_TRACERECORDER_H
