//===- support/AtomicFile.cpp - Durable atomic file replace ----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include "support/FaultPlane.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace alive;

namespace {

std::string faultPoint(const char *Prefix, const char *Stage) {
  return std::string(Prefix) + "." + Stage;
}

} // namespace

bool alive::writeFileAtomicDurable(const std::string &Path,
                                   const std::string &Content,
                                   const char *FaultPrefix,
                                   std::string &Error) {
  std::string Tmp = Path + ".tmp";
  auto Fail = [&](const char *Stage, int Err) {
    Error = std::string(Stage) + " '" + Tmp + "' failed: " +
            std::strerror(Err);
    ::unlink(Tmp.c_str());
    return false;
  };

  int FD = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0) {
    Error = "cannot create '" + Tmp + "': " + std::strerror(errno);
    return false;
  }

  // Short writes are legal (signals, quotas): loop until done.
  size_t Off = 0;
  bool Injected = faultAt(faultPoint(FaultPrefix, "write").c_str());
  while (!Injected && Off < Content.size()) {
    ssize_t W = ::write(FD, Content.data() + Off, Content.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      ::close(FD);
      return Fail("write to", Err);
    }
    Off += (size_t)W;
  }
  if (Injected) {
    ::close(FD);
    return Fail("write to", ENOSPC);
  }

  if (faultAt(faultPoint(FaultPrefix, "fsync").c_str())) {
    ::close(FD);
    return Fail("fsync of", EIO);
  }
  if (::fsync(FD) != 0) {
    int Err = errno;
    ::close(FD);
    return Fail("fsync of", Err);
  }
  if (::close(FD) != 0)
    return Fail("close of", errno);

  if (faultAt(faultPoint(FaultPrefix, "rename").c_str()))
    return Fail("rename of", EIO);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    int Err = errno;
    Error = "cannot rename '" + Tmp + "' to '" + Path +
            "': " + std::strerror(Err);
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

bool alive::isNoSpaceError(const std::string &Error) {
  return Error.find(std::strerror(ENOSPC)) != std::string::npos ||
         Error.find("ENOSPC") != std::string::npos;
}
