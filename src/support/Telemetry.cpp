//===- support/Telemetry.cpp - Campaign stat registry ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace alive;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

/// Bucket bounds in seconds: 1us * 2^i. Precomputed once; the comparison
/// walk in bucketIndex is exact at the boundaries (no log() rounding).
const double *bucketBounds() {
  static double Bounds[Histogram::NumBuckets];
  static bool Init = [] {
    double B = 1e-6;
    for (unsigned I = 0; I + 1 != Histogram::NumBuckets; ++I, B *= 2)
      Bounds[I] = B;
    Bounds[Histogram::NumBuckets - 1] =
        std::numeric_limits<double>::infinity();
    return true;
  }();
  (void)Init;
  return Bounds;
}

constexpr auto Relaxed = std::memory_order_relaxed;

void atomicAdd(std::atomic<double> &A, double D) {
  double Old = A.load(Relaxed);
  while (!A.compare_exchange_weak(Old, Old + D, Relaxed, Relaxed))
    ;
}

void atomicMin(std::atomic<double> &A, double D) {
  double Old = A.load(Relaxed);
  while (D < Old && !A.compare_exchange_weak(Old, D, Relaxed, Relaxed))
    ;
}

void atomicMax(std::atomic<double> &A, double D) {
  double Old = A.load(Relaxed);
  while (D > Old && !A.compare_exchange_weak(Old, D, Relaxed, Relaxed))
    ;
}

} // namespace

double Histogram::bucketUpperBound(unsigned I) { return bucketBounds()[I]; }

unsigned Histogram::bucketIndex(double Seconds) {
  const double *B = bucketBounds();
  unsigned I = 0;
  while (I + 1 != NumBuckets && Seconds > B[I])
    ++I;
  return I;
}

Histogram &Histogram::operator=(const Histogram &O) {
  if (this == &O)
    return *this;
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I].store(O.Buckets[I].load(Relaxed), Relaxed);
  Sum.store(O.Sum.load(Relaxed), Relaxed);
  Min.store(O.Min.load(Relaxed), Relaxed);
  Max.store(O.Max.load(Relaxed), Relaxed);
  // Count last: a reader of *this* copy (which is private to its owner
  // anyway) never sees a count ahead of the data.
  Count.store(O.Count.load(Relaxed), Relaxed);
  return *this;
}

void Histogram::record(double Seconds) {
  if (Seconds < 0)
    Seconds = 0;
  Buckets[bucketIndex(Seconds)].fetch_add(1, Relaxed);
  atomicMin(Min, Seconds);
  atomicMax(Max, Seconds);
  atomicAdd(Sum, Seconds);
  // Count last so a concurrent percentile() that trusts Count has the
  // bucket increment in view more often than not (relaxed order makes
  // this a heuristic, not a guarantee — percentile tolerates either skew).
  Count.fetch_add(1, Relaxed);
}

void Histogram::merge(const Histogram &O) {
  uint64_t OCount = O.Count.load(Relaxed);
  if (OCount == 0)
    return;
  for (unsigned I = 0; I != NumBuckets; ++I)
    if (uint64_t N = O.Buckets[I].load(Relaxed))
      Buckets[I].fetch_add(N, Relaxed);
  atomicMin(Min, O.Min.load(Relaxed));
  atomicMax(Max, O.Max.load(Relaxed));
  atomicAdd(Sum, O.Sum.load(Relaxed));
  Count.fetch_add(OCount, Relaxed);
}

double Histogram::percentile(double P) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  P = std::clamp(P, 0.0, 1.0);
  // The rank of the percentile sample (1-based, ceil) — p50 of 4 samples
  // is sample #2, p99 of 4 is sample #4.
  uint64_t Rank = std::max<uint64_t>(1, (uint64_t)std::ceil(P * (double)N));
  // The estimate is the upper bound of the bucket holding the ranked
  // sample, clamped into [Min, Max]: a log bucket's raw bound can exceed
  // every sample actually recorded into it (by up to 2x), and an
  // unclamped bound once produced impossible reports (p90 > p99 == a
  // value above the max sample). Clamping also makes the estimate
  // monotone non-decreasing in P: the selected bucket index is monotone
  // in Rank, bucket bounds are monotone in the index, and clamping to a
  // fixed interval preserves both. Under a concurrent writer Lo/Hi are
  // re-ordered defensively — a mid-update snapshot may transiently see
  // max < min.
  double Lo = min(), Hi = max();
  if (Lo > Hi)
    std::swap(Lo, Hi);
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += bucketCount(I);
    if (Cum >= Rank)
      return std::clamp(bucketUpperBound(I), Lo, Hi);
  }
  // Bucket sum fell short of Count (in-flight concurrent record):
  // degrade to the observed max.
  return Hi;
}

//===----------------------------------------------------------------------===//
// StatRegistry
//===----------------------------------------------------------------------===//

StatRegistry::StatRegistry(const StatRegistry &O) {
  std::lock_guard<std::mutex> L(O.M);
  copyFromLocked(O);
}

StatRegistry &StatRegistry::operator=(const StatRegistry &O) {
  if (this == &O)
    return *this;
  std::scoped_lock L(M, O.M);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
  copyFromLocked(O);
  return *this;
}

void StatRegistry::copyFromLocked(const StatRegistry &O) {
  for (const auto &[Name, E] : O.Counters) {
    auto &Slot = Counters[Name];
    Slot.V = E.V;
    Slot.Value.store(E.Value.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  for (const auto &[Name, E] : O.Gauges) {
    auto &Slot = Gauges[Name];
    Slot.V = E.V;
    Slot.Value.store(E.Value.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Name] = H;
}

std::atomic<uint64_t> &StatRegistry::counter(const std::string &Name,
                                             Volatility V) {
  std::lock_guard<std::mutex> L(M);
  auto [It, New] = Counters.try_emplace(Name);
  if (New)
    It->second.V = V;
  return It->second.Value;
}

std::atomic<double> &StatRegistry::gauge(const std::string &Name,
                                         Volatility V) {
  std::lock_guard<std::mutex> L(M);
  auto [It, New] = Gauges.try_emplace(Name);
  if (New)
    It->second.V = V;
  return It->second.Value;
}

Histogram &StatRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  return Histograms[Name];
}

uint64_t StatRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0
                              : It->second.Value.load(std::memory_order_relaxed);
}

void StatRegistry::merge(const StatRegistry &O) {
  if (this == &O)
    return;
  std::scoped_lock L(M, O.M);
  for (const auto &[Name, E] : O.Counters) {
    auto [It, New] = Counters.try_emplace(Name);
    if (New)
      It->second.V = E.V;
    It->second.Value.fetch_add(E.Value.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  }
  for (const auto &[Name, E] : O.Gauges) {
    auto [It, New] = Gauges.try_emplace(Name);
    if (New)
      It->second.V = E.V;
    atomicMax(It->second.Value, E.Value.load(std::memory_order_relaxed));
  }
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Name].merge(H);
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

void alive::writeJSONString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void alive::writeJSONDouble(std::ostream &OS, double D) {
  if (!std::isfinite(D)) {
    // JSON has no infinity; the only infinite value we hold is the last
    // bucket bound, which callers avoid serializing. Clamp just in case.
    OS << "1e308";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof Buf, "%.9g", D);
  OS << Buf;
}

void alive::writeHistogramJSON(std::ostream &OS, const Histogram &H) {
  OS << "{\"count\": " << H.count() << ", \"sum_s\": ";
  writeJSONDouble(OS, H.sum());
  OS << ", \"min_s\": ";
  writeJSONDouble(OS, H.min());
  OS << ", \"max_s\": ";
  writeJSONDouble(OS, H.max());
  OS << ", \"p50_s\": ";
  writeJSONDouble(OS, H.percentile(0.50));
  OS << ", \"p90_s\": ";
  writeJSONDouble(OS, H.percentile(0.90));
  OS << ", \"p99_s\": ";
  writeJSONDouble(OS, H.percentile(0.99));
  OS << ", \"buckets\": [";
  bool First = true;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
    if (!H.bucketCount(I))
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "{\"le_s\": ";
    // The last bucket is unbounded; report its bound as the largest
    // observed sample so the JSON stays finite.
    writeJSONDouble(OS, I + 1 == Histogram::NumBuckets
                            ? H.max()
                            : Histogram::bucketUpperBound(I));
    OS << ", \"count\": " << H.bucketCount(I) << "}";
  }
  OS << "]}";
}

void StatRegistry::writeJSON(std::ostream &OS, Volatility V,
                             const std::string &Indent) const {
  std::lock_guard<std::mutex> L(M);
  OS << "{\n" << Indent << "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, E] : Counters) {
    if (E.V != V)
      continue;
    OS << (First ? "\n" : ",\n") << Indent << "    ";
    First = false;
    writeJSONString(OS, Name);
    OS << ": " << E.Value.load(std::memory_order_relaxed);
  }
  OS << (First ? "" : "\n" + Indent + "  ") << "},\n";
  OS << Indent << "  \"gauges\": {";
  First = true;
  for (const auto &[Name, E] : Gauges) {
    if (E.V != V)
      continue;
    OS << (First ? "\n" : ",\n") << Indent << "    ";
    First = false;
    writeJSONString(OS, Name);
    OS << ": ";
    writeJSONDouble(OS, E.Value.load(std::memory_order_relaxed));
  }
  OS << (First ? "" : "\n" + Indent + "  ") << "}";
  if (V == Volatility::Volatile) {
    OS << ",\n" << Indent << "  \"histograms\": {";
    First = true;
    for (const auto &[Name, H] : Histograms) {
      OS << (First ? "\n" : ",\n") << Indent << "    ";
      First = false;
      writeJSONString(OS, Name);
      OS << ": ";
      writeHistogramJSON(OS, H);
    }
    OS << (First ? "" : "\n" + Indent + "  ") << "}";
  }
  OS << "\n" << Indent << "}";
}

//===----------------------------------------------------------------------===//
// ScopedTimer
//===----------------------------------------------------------------------===//

double ScopedTimer::stop() {
  if (!Armed)
    return Elapsed;
  Armed = false;
  Elapsed = T.seconds();
  if (H)
    H->record(Elapsed);
  if (Accum)
    *Accum += Elapsed;
  if (Nanos)
    Nanos->fetch_add((uint64_t)(Elapsed * 1e9), std::memory_order_relaxed);
  return Elapsed;
}
