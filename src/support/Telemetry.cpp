//===- support/Telemetry.cpp - Campaign stat registry ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace alive;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

/// Bucket bounds in seconds: 1us * 2^i. Precomputed once; the comparison
/// walk in bucketIndex is exact at the boundaries (no log() rounding).
const double *bucketBounds() {
  static double Bounds[Histogram::NumBuckets];
  static bool Init = [] {
    double B = 1e-6;
    for (unsigned I = 0; I + 1 != Histogram::NumBuckets; ++I, B *= 2)
      Bounds[I] = B;
    Bounds[Histogram::NumBuckets - 1] =
        std::numeric_limits<double>::infinity();
    return true;
  }();
  (void)Init;
  return Bounds;
}

} // namespace

double Histogram::bucketUpperBound(unsigned I) { return bucketBounds()[I]; }

unsigned Histogram::bucketIndex(double Seconds) {
  const double *B = bucketBounds();
  unsigned I = 0;
  while (I + 1 != NumBuckets && Seconds > B[I])
    ++I;
  return I;
}

void Histogram::record(double Seconds) {
  if (Seconds < 0)
    Seconds = 0;
  ++Buckets[bucketIndex(Seconds)];
  if (Count == 0 || Seconds < Min)
    Min = Seconds;
  if (Seconds > Max)
    Max = Seconds;
  Sum += Seconds;
  ++Count;
}

void Histogram::merge(const Histogram &O) {
  if (O.Count == 0)
    return;
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I] += O.Buckets[I];
  if (Count == 0 || O.Min < Min)
    Min = O.Min;
  Max = std::max(Max, O.Max);
  Sum += O.Sum;
  Count += O.Count;
}

double Histogram::percentile(double P) const {
  if (Count == 0)
    return 0;
  P = std::clamp(P, 0.0, 1.0);
  // The rank of the percentile sample (1-based, ceil) — p50 of 4 samples
  // is sample #2, p99 of 4 is sample #4.
  uint64_t Rank = std::max<uint64_t>(1, (uint64_t)std::ceil(P * (double)Count));
  // The estimate is the upper bound of the bucket holding the ranked
  // sample, clamped into [Min, Max]: a log bucket's raw bound can exceed
  // every sample actually recorded into it (by up to 2x), and an
  // unclamped bound once produced impossible reports (p90 > p99 == a
  // value above the max sample). Clamping also makes the estimate
  // monotone non-decreasing in P: the selected bucket index is monotone
  // in Rank, bucket bounds are monotone in the index, and clamping to a
  // fixed interval preserves both.
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += Buckets[I];
    if (Cum >= Rank)
      return std::clamp(bucketUpperBound(I), Min, Max);
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// StatRegistry
//===----------------------------------------------------------------------===//

uint64_t &StatRegistry::counter(const std::string &Name, Volatility V) {
  auto [It, New] = Counters.try_emplace(Name);
  if (New)
    It->second.V = V;
  return It->second.Value;
}

double &StatRegistry::gauge(const std::string &Name, Volatility V) {
  auto [It, New] = Gauges.try_emplace(Name);
  if (New)
    It->second.V = V;
  return It->second.Value;
}

Histogram &StatRegistry::histogram(const std::string &Name) {
  return Histograms[Name];
}

uint64_t StatRegistry::counterValue(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second.Value;
}

void StatRegistry::merge(const StatRegistry &O) {
  for (const auto &[Name, E] : O.Counters)
    counter(Name, E.V) += E.Value;
  for (const auto &[Name, E] : O.Gauges) {
    double &G = gauge(Name, E.V);
    G = std::max(G, E.Value);
  }
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Name].merge(H);
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

void alive::writeJSONString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void alive::writeJSONDouble(std::ostream &OS, double D) {
  if (!std::isfinite(D)) {
    // JSON has no infinity; the only infinite value we hold is the last
    // bucket bound, which callers avoid serializing. Clamp just in case.
    OS << "1e308";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof Buf, "%.9g", D);
  OS << Buf;
}

void alive::writeHistogramJSON(std::ostream &OS, const Histogram &H) {
  OS << "{\"count\": " << H.count() << ", \"sum_s\": ";
  writeJSONDouble(OS, H.sum());
  OS << ", \"min_s\": ";
  writeJSONDouble(OS, H.min());
  OS << ", \"max_s\": ";
  writeJSONDouble(OS, H.max());
  OS << ", \"p50_s\": ";
  writeJSONDouble(OS, H.percentile(0.50));
  OS << ", \"p90_s\": ";
  writeJSONDouble(OS, H.percentile(0.90));
  OS << ", \"p99_s\": ";
  writeJSONDouble(OS, H.percentile(0.99));
  OS << ", \"buckets\": [";
  bool First = true;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
    if (!H.bucketCount(I))
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "{\"le_s\": ";
    // The last bucket is unbounded; report its bound as the largest
    // observed sample so the JSON stays finite.
    writeJSONDouble(OS, I + 1 == Histogram::NumBuckets
                            ? H.max()
                            : Histogram::bucketUpperBound(I));
    OS << ", \"count\": " << H.bucketCount(I) << "}";
  }
  OS << "]}";
}

void StatRegistry::writeJSON(std::ostream &OS, Volatility V,
                             const std::string &Indent) const {
  OS << "{\n" << Indent << "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, E] : Counters) {
    if (E.V != V)
      continue;
    OS << (First ? "\n" : ",\n") << Indent << "    ";
    First = false;
    writeJSONString(OS, Name);
    OS << ": " << E.Value;
  }
  OS << (First ? "" : "\n" + Indent + "  ") << "},\n";
  OS << Indent << "  \"gauges\": {";
  First = true;
  for (const auto &[Name, E] : Gauges) {
    if (E.V != V)
      continue;
    OS << (First ? "\n" : ",\n") << Indent << "    ";
    First = false;
    writeJSONString(OS, Name);
    OS << ": ";
    writeJSONDouble(OS, E.Value);
  }
  OS << (First ? "" : "\n" + Indent + "  ") << "}";
  if (V == Volatility::Volatile) {
    OS << ",\n" << Indent << "  \"histograms\": {";
    First = true;
    for (const auto &[Name, H] : Histograms) {
      OS << (First ? "\n" : ",\n") << Indent << "    ";
      First = false;
      writeJSONString(OS, Name);
      OS << ": ";
      writeHistogramJSON(OS, H);
    }
    OS << (First ? "" : "\n" + Indent + "  ") << "}";
  }
  OS << "\n" << Indent << "}";
}

//===----------------------------------------------------------------------===//
// ScopedTimer
//===----------------------------------------------------------------------===//

double ScopedTimer::stop() {
  if (!Armed)
    return Elapsed;
  Armed = false;
  Elapsed = T.seconds();
  if (H)
    H->record(Elapsed);
  if (Accum)
    *Accum += Elapsed;
  if (Nanos)
    Nanos->fetch_add((uint64_t)(Elapsed * 1e9), std::memory_order_relaxed);
  return Elapsed;
}
