//===- support/Profiler.h - Cost attribution & sampling profiler -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deep cost-attribution layer: "where did the time go, per query".
/// Two complementary instruments, split by the repo's deterministic-vs-
/// volatile telemetry contract:
///
///   1. QueryCostTracker — a deterministic top-K ranking of the most
///      expensive TV queries by solver effort. Each query is keyed by a
///      stable 64-bit hash of its canonical cache key (or printed pair
///      text when uncacheable), and its cost counters (decisions,
///      propagations, conflicts, learned clauses/literals, restarts) are
///      a pure function of that key: the verdict cache replays them
///      byte-for-byte on a hit, and the solver is deterministic on a
///      miss. Ranking therefore uses the *per-occurrence* cost — never
///      the occurrence-weighted total — under the total order
///      (CostUnits desc, KeyHash asc), which makes per-worker K-bounded
///      trackers merge exactly: any key in the global top-K outranks all
///      but at most K-1 keys everywhere, so no worker that saw it ever
///      evicted it, and the merged counts are exact. A -j4 campaign's
///      merged top-K is byte-identical to -j1's.
///
///   2. SamplingProfiler — a volatile wall-clock profiler: a background
///      thread periodically reads each worker's live span stack (pushed/
///      popped by the existing TraceSpan RAII sites when enabled) and
///      folds the samples into flamegraph-compatible collapsed stacks
///      ("w0;iteration;optimize;pass:gvn 128"). Approximate by design —
///      a torn read mid-push attributes one sample to a parent frame —
///      and entirely lock-free on the worker side (relaxed/release
///      atomics only), so the hot path stays unperturbed and TSan stays
///      quiet.
///
/// CampaignProfile bundles both (plus the shared TV cache's per-shard
/// heat counters) for the run report, /profile.json, /flamegraph.json
/// and the dashboard.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PROFILER_H
#define SUPPORT_PROFILER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace alive {

class TraceRecorder;

/// 64-bit FNV-1a. Used for the query key hash instead of std::hash so the
/// profile block is stable across standard libraries and platforms.
uint64_t fnv1a64(std::string_view S);

/// Profiling knobs, threaded through FuzzOptions (one copy per worker).
struct ProfileOptions {
  /// Master switch (-profile). Off = zero-cost: no tracker, no recorder
  /// live stack, no sampler thread.
  bool Enabled = false;
  /// Top-K most-expensive-query tracker capacity (-profile-topk).
  unsigned TopK = 16;
  /// Wall-clock sampler period in milliseconds (-profile-interval).
  unsigned SamplingIntervalMs = 10;
};

/// One TV query observation, as recorded by the fuzzing loop's verify
/// path. The solver counters are deterministic per key (cache hits replay
/// them); the wall-clock seconds are volatile.
struct QueryCostSample {
  uint64_t KeyHash = 0;
  std::string_view Function;
  std::string_view Verdict; ///< tvVerdictReason slug
  uint64_t Seed = 0;
  bool Symbolic = false;
  std::string_view BundlePath; ///< forensics cross-link ("" when none)
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t LearnedLiterals = 0;
  uint64_t Restarts = 0;
  double EncodeSeconds = 0; ///< volatile
  double SolveSeconds = 0;  ///< volatile
};

/// One tracked query's accumulated state.
struct QueryCost {
  uint64_t KeyHash = 0;
  /// Function name / bundle path of the smallest seed that produced this
  /// key (canonicalization can map differently-named functions onto one
  /// key, so the min-seed rule keeps the attribution deterministic).
  std::string Function;
  std::string BundlePath;
  std::string Verdict;
  uint64_t FirstSeed = 0;
  uint64_t Count = 0; ///< occurrences, cache hits included
  bool Symbolic = false;
  // Per-occurrence solver effort (identical on every recurrence).
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t LearnedLiterals = 0;
  uint64_t Restarts = 0;
  // Accumulated wall clock across occurrences (volatile; a cache hit
  // contributes the first computation's split).
  double EncodeSeconds = 0;
  double SolveSeconds = 0;

  /// The deterministic ranking metric: total search steps of one
  /// evaluation. Concrete-only queries cost 0 (they never enter the
  /// solver) but are still tracked.
  uint64_t costUnits() const { return Decisions + Propagations + Conflicts; }
};

/// The deterministic ranking order: (costUnits desc, KeyHash asc). A
/// strict total order — KeyHash collisions aside — so sorts and evictions
/// are unambiguous.
bool queryCostRanksBefore(const QueryCost &A, const QueryCost &B);

/// Per-worker bounded tracker of the K most expensive queries. The owning
/// worker records; an observer thread may snapshot concurrently (the map
/// is mutex-guarded — the verify path it rides is milliseconds per entry,
/// so the lock is invisible next to the work it attributes).
class QueryCostTracker {
public:
  explicit QueryCostTracker(unsigned K = 16);

  void record(const QueryCostSample &S);

  /// Merges \p O into this tracker (same accumulation rules as record,
  /// entry-wise). Merging workers in worker order after the join yields
  /// the exact global top-K; see the file comment for the proof sketch.
  void merge(const QueryCostTracker &O);

  /// The tracked queries, best first under queryCostRanksBefore. Safe to
  /// call while the owning worker records.
  std::vector<QueryCost> top() const;

  unsigned capacity() const { return K; }
  /// Queries that fell off the bottom of the tracker (volatile-ish: the
  /// count is exact per worker but depends on arrival order).
  uint64_t evicted() const;

private:
  void evictWorstLocked();

  mutable std::mutex M;
  unsigned K;
  std::unordered_map<uint64_t, QueryCost> ByKey;
  uint64_t Evicted = 0;
};

/// Per-shard heat counters of the shared TV cache (always volatile:
/// which worker hit which shard is pure scheduling).
struct ShardHeat {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Inserts = 0;
  uint64_t LockWaits = 0; ///< lock acquisitions that found the lock held
};

/// Background wall-clock sampler over the workers' live span stacks.
/// attach() recorders (one per worker) before start(); the sampler folds
/// every tick into collapsed stacks "label;span;span..." -> sample count.
/// Workers push/pop their stacks lock-free; the sampler's fold map is
/// guarded for concurrent collapsed() snapshots (the live /flamegraph.json
/// endpoint reads it mid-campaign).
class SamplingProfiler {
public:
  explicit SamplingProfiler(unsigned IntervalMs = 10);
  ~SamplingProfiler();

  /// Registers \p R 's live stack under \p Label ("w0", "w1", ...). Call
  /// before start(); the recorder must outlive stop().
  void attach(const std::string &Label, const TraceRecorder *R);

  void start();
  /// Stops and joins the sampler thread. Idempotent.
  void stop();

  /// Point-in-time copy of the folded stacks.
  std::map<std::string, uint64_t> collapsed() const;
  uint64_t samples() const { return Samples.load(std::memory_order_relaxed); }
  unsigned intervalMs() const { return IntervalMs; }

private:
  void run();

  unsigned IntervalMs;
  std::vector<std::pair<std::string, const TraceRecorder *>> Tracks;
  mutable std::mutex M; ///< guards Folded (and CV waits)
  std::map<std::string, uint64_t> Folded;
  std::atomic<uint64_t> Samples{0};
  std::condition_variable CV;
  bool Stopping = false;
  bool Running = false;
  std::thread Th;
};

/// Everything the profiling subsystem produced for one campaign, split
/// along the usual deterministic/volatile seam.
struct CampaignProfile {
  bool Enabled = false;
  unsigned TopK = 0;
  /// Deterministic: merged top-K, best first.
  std::vector<QueryCost> TopQueries;
  /// Volatile: collapsed flamegraph stacks and sample accounting.
  std::map<std::string, uint64_t> Collapsed;
  uint64_t Samples = 0;
  unsigned SamplingIntervalMs = 0;
  /// Volatile: shared TV cache shard heat (empty when the shared cache
  /// was off).
  std::vector<ShardHeat> CacheShards;
};

/// Serializes the deterministic top-K as a JSON array of query objects
/// (rank, key hex, function, verdict, count, first_seed, the six solver
/// counters, cost, symbolic flag, bundle link). Byte-identical for any
/// worker count — the run report embeds it in the deterministic section.
void writeTopQueriesJSON(std::ostream &OS, const std::vector<QueryCost> &Top,
                         const std::string &Indent = "");

/// Serializes the volatile side (sampling + shard heat + per-query wall
/// seconds) as a JSON object.
void writeProfileVolatileJSON(std::ostream &OS, const CampaignProfile &P,
                              const std::string &Indent = "");

/// The flamegraph export: {"interval_ms", "samples", "stacks": [{"stack",
/// "count"}]} with stacks in lexicographic order.
void writeFlamegraphJSON(std::ostream &OS, const CampaignProfile &P);

/// The classic collapsed-stack text format ("frame;frame;frame count"
/// per line, lexicographic), directly consumable by flamegraph.pl /
/// speedscope.
void writeCollapsedStacks(std::ostream &OS,
                          const std::map<std::string, uint64_t> &Folded);

} // namespace alive

#endif // SUPPORT_PROFILER_H
