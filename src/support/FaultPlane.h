//===- support/FaultPlane.h - Deterministic fault injection ----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven fault-injection plane. Every syscall-shaped
/// edge the campaign touches is wrapped in a named *fault point*
/// (checkpoint.write, isolate.fork, http.send, ...). In production nothing
/// is armed and faultAt() is a single relaxed atomic load. Under test, a
/// `-inject-fault=<point>:<spec>[,<point>:<spec>...]` flag arms points:
///
///   <point>:nth:<N>    fail exactly the Nth call (1-based), once
///   <point>:every:<K>  fail every Kth call
///   <point>:p:<P>      fail each call with probability P, driven by a
///                      dedicated splitmix64 stream derived from the fault
///                      seed and the point name — campaign RandomGenerator
///                      state is never touched, so arming faults cannot
///                      perturb which mutants a campaign generates.
///
/// Per-point call and trigger counters are kept for every armed point and
/// surfaced in the volatile run-report block and /status, so a chaos run
/// can assert "the fault actually fired N times" instead of hoping.
///
/// The plane is process-global and fork-inherited: a child forked by the
/// isolate/supervisor path sees the same armed table. Counter state is
/// per-process after the fork (children do not write back), which the
/// supervisor exploits by evaluating child-kill faults in the parent.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_FAULTPLANE_H
#define SUPPORT_FAULTPLANE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace alive {

/// One splitmix64 step. The standalone PRNG used for fault-probability
/// streams and retry jitter — deliberately NOT RandomGenerator, so the
/// robustness machinery can never consume campaign randomness.
inline uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// FNV-1a over a string; used to derive per-point fault streams.
inline uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

/// Observable accounting for one armed fault point.
struct FaultPointCounters {
  std::string Point;
  std::string Spec;      ///< the armed spec, as parsed ("nth:3", "p:0.25")
  uint64_t Calls = 0;    ///< times the guarded edge was reached
  uint64_t Triggers = 0; ///< times the fault fired
};

/// The process-global fault-injection table.
class FaultPlane {
public:
  static FaultPlane &instance();

  /// Parses and arms a comma-separated `<point>:<spec>` list. Unknown
  /// point names and malformed specs are config errors (\returns false,
  /// fills \p Error). Arming replaces any previous table.
  bool arm(const std::string &SpecList, std::string &Error);

  /// Disarms every point and zeroes all counters.
  void reset();

  /// Reseeds the probability streams (before arm(); default is fixed, so
  /// two identically-armed processes draw identical fault sequences).
  void setSeed(uint64_t Seed);

  /// Reached a guarded edge. Counts the call and decides whether the
  /// fault fires. Unarmed points always return false (and are not
  /// counted: only armed points carry counters).
  bool shouldFail(const char *Point);

  /// Fast path: anything armed at all?
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Counter snapshot for every armed point, in arm order.
  std::vector<FaultPointCounters> counters() const;

  /// Every fault point the codebase defines, for arm()-time validation
  /// and the DESIGN.md fault-model table.
  static const std::vector<std::string> &knownPoints();

private:
  FaultPlane() = default;

  struct Point {
    std::string Name;
    std::string Spec;
    enum class Mode { Nth, Every, Prob } M = Mode::Nth;
    uint64_t N = 0;      ///< nth / every-k parameter
    double P = 0;        ///< probability parameter
    uint64_t Stream = 0; ///< splitmix64 state (Prob mode)
    uint64_t Calls = 0;
    uint64_t Triggers = 0;
  };

  std::atomic<bool> Armed{false};
  mutable std::mutex M;
  std::vector<Point> Points;
  uint64_t Seed = 0x2545F4914F6CDD1DULL;
};

/// The one call sites make: `if (faultAt("checkpoint.write")) ...fail...`.
/// Free of any cost when nothing is armed.
inline bool faultAt(const char *Point) {
  FaultPlane &F = FaultPlane::instance();
  return F.armed() && F.shouldFail(Point);
}

} // namespace alive

#endif // SUPPORT_FAULTPLANE_H
