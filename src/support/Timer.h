//===- support/Timer.h - Wall-clock timing utilities -----------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small timing helpers for the throughput experiment (paper §V-B).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>

namespace alive {

/// Measures wall-clock time in seconds since construction or reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed wall time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace alive

#endif // SUPPORT_TIMER_H
