//===- support/Telemetry.h - Campaign stat registry ------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign telemetry subsystem: a low-overhead registry of named
/// counters, gauges and fixed-bucket log-scale latency histograms, plus a
/// ScopedTimer RAII helper. Every stage of the pipeline (mutator, pass
/// manager, refinement checker, fuzzing loop) records into a per-loop
/// registry; the campaign engine merges worker registries deterministically
/// so a -j4 report equals a -j1 report.
///
/// Determinism contract (relied on by tests and CI):
///   - counters and gauges are *deterministic* by default: their merged
///     value must depend only on the seed range, never on the worker count
///     or scheduling. Stats that do vary (cache hit/miss splits, "how many
///     times was the checker actually invoked") are registered with
///     Volatility::Volatile and serialized separately;
///   - histograms record wall-clock latencies and are always volatile;
///   - merging sums counters and histogram buckets and takes the max of
///     gauges — all commutative and associative, so any merge order yields
///     byte-identical serialized output.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TELEMETRY_H
#define SUPPORT_TELEMETRY_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace alive {

/// Whether a stat's merged value is reproducible across worker counts.
enum class Volatility {
  Deterministic, ///< depends only on the seed range (-j4 == -j1)
  Volatile,      ///< timing-, cache- or scheduling-dependent
};

/// A fixed-bucket log-scale latency histogram. Bucket 0 holds samples of
/// at most 1 microsecond; bucket i (i >= 1) holds samples in
/// (2^(i-1) us, 2^i us], and the last bucket is unbounded above (~ 6 days
/// with 40 buckets). Merging sums bucket counts, so the merge of any
/// permutation of worker histograms is identical.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 40;

  /// Inclusive upper bound of bucket \p I in seconds (+inf for the last).
  static double bucketUpperBound(unsigned I);

  /// The bucket a sample of \p Seconds lands in.
  static unsigned bucketIndex(double Seconds);

  void record(double Seconds);
  void merge(const Histogram &O);

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  /// Smallest / largest recorded sample (0 when empty).
  double min() const { return Count ? Min : 0.0; }
  double max() const { return Max; }
  uint64_t bucketCount(unsigned I) const { return Buckets[I]; }

  /// Upper-bound percentile estimate for \p P in [0, 1]: the bound of the
  /// first bucket whose cumulative count reaches ceil(P * count()),
  /// clamped to the observed [min, max] range — so the estimate never
  /// exceeds the largest recorded sample and is monotone non-decreasing
  /// in P (p50 <= p90 <= p99 <= max by construction). 0 when empty.
  double percentile(double P) const;

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

/// A registry of named stats. Not thread-safe: each campaign worker owns a
/// private registry and the engine merges them after the join (the same
/// share-nothing model as FuzzStats). Lookup is a map probe — callers on
/// hot paths cache the returned references, which stay valid for the
/// registry's lifetime (std::map nodes never move).
class StatRegistry {
public:
  /// The named counter, created at 0 on first use. \p V is fixed at
  /// creation; later calls ignore it.
  uint64_t &counter(const std::string &Name,
                    Volatility V = Volatility::Deterministic);

  /// The named gauge (a "current level" stat; merge takes the max).
  double &gauge(const std::string &Name,
                Volatility V = Volatility::Deterministic);

  /// The named latency histogram (always volatile).
  Histogram &histogram(const std::string &Name);

  /// Merges \p O into this registry: counters and histogram buckets sum,
  /// gauges take the max. Commutative and associative.
  void merge(const StatRegistry &O);

  /// Serializes one volatility class as a JSON object
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted by name (histograms only appear in the volatile class).
  /// Deterministic input => byte-identical output, whatever the merge
  /// order was.
  void writeJSON(std::ostream &OS, Volatility V,
                 const std::string &Indent = "") const;

  /// Visits every counter of class \p V in name order.
  template <typename Fn> void forEachCounter(Volatility V, Fn F) const {
    for (const auto &[Name, E] : Counters)
      if (E.V == V)
        F(Name, E.Value);
  }
  template <typename Fn> void forEachHistogram(Fn F) const {
    for (const auto &[Name, H] : Histograms)
      F(Name, H);
  }

  /// Looks up a counter without creating it; 0 when absent.
  uint64_t counterValue(const std::string &Name) const;

private:
  struct CounterEntry {
    uint64_t Value = 0;
    Volatility V = Volatility::Deterministic;
  };
  struct GaugeEntry {
    double Value = 0;
    Volatility V = Volatility::Deterministic;
  };
  // Ordered maps: iteration order == name order, the serialization
  // determinism hinges on it.
  std::map<std::string, CounterEntry> Counters;
  std::map<std::string, GaugeEntry> Gauges;
  std::map<std::string, Histogram> Histograms;
};

/// RAII wall-clock timer: on destruction (or an explicit stop()) records
/// the elapsed seconds into any subset of {histogram, double accumulator,
/// atomic nanosecond counter}. Replaces the hand-rolled
/// Timer-start/seconds()/+= pattern.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram *H = nullptr, double *Accum = nullptr,
                       std::atomic<uint64_t> *Nanos = nullptr)
      : H(H), Accum(Accum), Nanos(Nanos) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { stop(); }

  /// Elapsed seconds so far (does not record).
  double seconds() const { return T.seconds(); }

  /// Records the elapsed time into every attached sink and disarms the
  /// destructor. \returns the elapsed seconds. Idempotent.
  double stop();

  /// Disarms without recording anything (for abandoned measurements).
  void cancel() { Armed = false; }

private:
  Timer T;
  Histogram *H;
  double *Accum;
  std::atomic<uint64_t> *Nanos;
  bool Armed = true;
  double Elapsed = 0;
};

/// Appends \p S to \p OS as a JSON string literal (with quotes).
void writeJSONString(std::ostream &OS, const std::string &S);

/// Writes a double as a JSON number (shortest round-trippable form).
void writeJSONDouble(std::ostream &OS, double D);

/// Serializes one histogram as a JSON object: count, sum/min/max seconds,
/// p50/p90/p99, and the non-empty buckets as [{"le_s": bound, "count": n}].
void writeHistogramJSON(std::ostream &OS, const Histogram &H);

} // namespace alive

#endif // SUPPORT_TELEMETRY_H
