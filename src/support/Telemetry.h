//===- support/Telemetry.h - Campaign stat registry ------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign telemetry subsystem: a low-overhead registry of named
/// counters, gauges and fixed-bucket log-scale latency histograms, plus a
/// ScopedTimer RAII helper. Every stage of the pipeline (mutator, pass
/// manager, refinement checker, fuzzing loop) records into a per-loop
/// registry; the campaign engine merges worker registries deterministically
/// so a -j4 report equals a -j1 report.
///
/// Determinism contract (relied on by tests and CI):
///   - counters and gauges are *deterministic* by default: their merged
///     value must depend only on the seed range, never on the worker count
///     or scheduling. Stats that do vary (cache hit/miss splits, "how many
///     times was the checker actually invoked") are registered with
///     Volatility::Volatile and serialized separately;
///   - histograms record wall-clock latencies and are always volatile;
///   - merging sums counters and histogram buckets and takes the max of
///     gauges — all commutative and associative, so any merge order yields
///     byte-identical serialized output.
///
/// Concurrency contract (relied on by the live observability plane):
///   - stat *values* are relaxed atomics, so the owning worker may bump a
///     counter or record a histogram sample while an observer thread takes
///     a snapshot() — no torn reads, no locks on the value fast path;
///   - the registry *structure* (name -> slot maps) is guarded by a
///     per-registry mutex: counter()/gauge()/histogram() lookups,
///     snapshot/serialization walks and merges all take it. Hot paths keep
///     caching the returned references (std::map nodes never move), which
///     bypasses the lock entirely;
///   - a snapshot taken mid-update is a plausible point-in-time view, not
///     a linearizable one: a histogram's count may momentarily disagree
///     with its bucket sum by in-flight samples. percentile() tolerates
///     that skew (it falls back to the observed max).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TELEMETRY_H
#define SUPPORT_TELEMETRY_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace alive {

/// Whether a stat's merged value is reproducible across worker counts.
enum class Volatility {
  Deterministic, ///< depends only on the seed range (-j4 == -j1)
  Volatile,      ///< timing-, cache- or scheduling-dependent
};

/// A fixed-bucket log-scale latency histogram. Bucket 0 holds samples of
/// at most 1 microsecond; bucket i (i >= 1) holds samples in
/// (2^(i-1) us, 2^i us], and the last bucket is unbounded above (~ 6 days
/// with 40 buckets). Merging sums bucket counts, so the merge of any
/// permutation of worker histograms is identical.
///
/// All mutators and accessors use relaxed atomics: one writer recording
/// while another thread reads (or copies) the histogram is race-free. The
/// reader sees a near-point-in-time view, not a linearizable one.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram &O) { *this = O; }
  /// Relaxed field-by-field copy; the source may be concurrently written.
  Histogram &operator=(const Histogram &O);

  /// Inclusive upper bound of bucket \p I in seconds (+inf for the last).
  static double bucketUpperBound(unsigned I);

  /// The bucket a sample of \p Seconds lands in.
  static unsigned bucketIndex(double Seconds);

  void record(double Seconds);
  void merge(const Histogram &O);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample (0 when empty).
  double min() const {
    double M = Min.load(std::memory_order_relaxed);
    return count() == 0 || M == std::numeric_limits<double>::infinity() ? 0.0
                                                                        : M;
  }
  double max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Upper-bound percentile estimate for \p P in [0, 1]: the bound of the
  /// first bucket whose cumulative count reaches ceil(P * count()),
  /// clamped to the observed [min, max] range — so the estimate never
  /// exceeds the largest recorded sample and is monotone non-decreasing
  /// in P (p50 <= p90 <= p99 <= max by construction). 0 when empty.
  /// Safe to call while another thread records: a mid-update read may see
  /// count() ahead of the bucket sums, in which case the estimate degrades
  /// to the observed max rather than going out of range.
  double percentile(double P) const;

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0};
  // +inf sentinel until the first sample so concurrent first-records can
  // race through the CAS min without a separate "is set" flag.
  std::atomic<double> Min{std::numeric_limits<double>::infinity()};
  std::atomic<double> Max{0};
};

/// A registry of named stats. Each campaign worker owns a private registry
/// and the engine merges them after the join (the same share-nothing model
/// as FuzzStats) — but unlike FuzzStats the registry is safe to *read*
/// concurrently: value updates are relaxed atomics and the name maps are
/// mutex-guarded, so an observer thread may snapshot() or serialize a
/// registry its worker is actively writing. Lookup is a lock + map probe —
/// callers on hot paths cache the returned references, which stay valid
/// for the registry's lifetime (std::map nodes never move) and are bumped
/// lock-free.
class StatRegistry {
public:
  StatRegistry() = default;
  StatRegistry(const StatRegistry &O);
  StatRegistry &operator=(const StatRegistry &O);

  /// The named counter, created at 0 on first use. \p V is fixed at
  /// creation; later calls ignore it.
  std::atomic<uint64_t> &counter(const std::string &Name,
                                 Volatility V = Volatility::Deterministic);

  /// The named gauge (a "current level" stat; merge takes the max).
  std::atomic<double> &gauge(const std::string &Name,
                             Volatility V = Volatility::Deterministic);

  /// The named latency histogram (always volatile).
  Histogram &histogram(const std::string &Name);

  /// Merges \p O into this registry: counters and histogram buckets sum,
  /// gauges take the max. Commutative and associative. \p O may be
  /// concurrently written by its owner (relaxed point-in-time reads).
  void merge(const StatRegistry &O);

  /// A point-in-time copy, safe to take while the owning worker writes.
  /// The copy is private to the caller — read it without any locking.
  StatRegistry snapshot() const { return *this; }

  /// Serializes one volatility class as a JSON object
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted by name (histograms only appear in the volatile class).
  /// Deterministic input => byte-identical output, whatever the merge
  /// order was.
  void writeJSON(std::ostream &OS, Volatility V,
                 const std::string &Indent = "") const;

  /// Visits every counter of class \p V in name order. The callback runs
  /// under the registry lock: it must not call back into this registry.
  template <typename Fn> void forEachCounter(Volatility V, Fn F) const {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, E] : Counters)
      if (E.V == V)
        F(Name, E.Value.load(std::memory_order_relaxed));
  }
  /// Visits every counter of *both* classes in name order, with the
  /// volatility. Same no-reentrancy rule as forEachCounter.
  template <typename Fn> void forEachCounterAll(Fn F) const {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, E] : Counters)
      F(Name, E.Value.load(std::memory_order_relaxed), E.V);
  }
  template <typename Fn> void forEachGauge(Fn F) const {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, E] : Gauges)
      F(Name, E.Value.load(std::memory_order_relaxed), E.V);
  }
  template <typename Fn> void forEachHistogram(Fn F) const {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, H] : Histograms)
      F(Name, H);
  }

  /// Looks up a counter without creating it; 0 when absent.
  uint64_t counterValue(const std::string &Name) const;

private:
  struct CounterEntry {
    std::atomic<uint64_t> Value{0};
    Volatility V = Volatility::Deterministic;
  };
  struct GaugeEntry {
    std::atomic<double> Value{0};
    Volatility V = Volatility::Deterministic;
  };
  // Ordered maps: iteration order == name order, the serialization
  // determinism hinges on it.
  std::map<std::string, CounterEntry> Counters;
  std::map<std::string, GaugeEntry> Gauges;
  std::map<std::string, Histogram> Histograms;
  // Guards the map *structure* only; entry values are atomics.
  mutable std::mutex M;

  void copyFromLocked(const StatRegistry &O);
};

/// RAII wall-clock timer: on destruction (or an explicit stop()) records
/// the elapsed seconds into any subset of {histogram, double accumulator,
/// atomic nanosecond counter}. Replaces the hand-rolled
/// Timer-start/seconds()/+= pattern.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram *H = nullptr, double *Accum = nullptr,
                       std::atomic<uint64_t> *Nanos = nullptr)
      : H(H), Accum(Accum), Nanos(Nanos) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { stop(); }

  /// Elapsed seconds so far (does not record).
  double seconds() const { return T.seconds(); }

  /// Records the elapsed time into every attached sink and disarms the
  /// destructor. \returns the elapsed seconds. Idempotent.
  double stop();

  /// Disarms without recording anything (for abandoned measurements).
  void cancel() { Armed = false; }

private:
  Timer T;
  Histogram *H;
  double *Accum;
  std::atomic<uint64_t> *Nanos;
  bool Armed = true;
  double Elapsed = 0;
};

/// Appends \p S to \p OS as a JSON string literal (with quotes).
void writeJSONString(std::ostream &OS, const std::string &S);

/// Writes a double as a JSON number (shortest round-trippable form).
void writeJSONDouble(std::ostream &OS, double D);

/// Serializes one histogram as a JSON object: count, sum/min/max seconds,
/// p50/p90/p99, and the non-empty buckets as [{"le_s": bound, "count": n}].
void writeHistogramJSON(std::ostream &OS, const Histogram &H);

} // namespace alive

#endif // SUPPORT_TELEMETRY_H
