//===- tv/FunctionEncoder.h - IR -> bit-vector terms -----------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes a loop-free, memory-free integer function as bit-vector terms:
/// every SSA value becomes a (value, poison) term pair, every block gets a
/// path condition, and undefined behavior accumulates into a single UB
/// wire. This is the symbolic half of the Alive2-substitute checker.
///
//===----------------------------------------------------------------------===//

#ifndef TV_FUNCTIONENCODER_H
#define TV_FUNCTIONENCODER_H

#include "ir/Module.h"
#include "smt/Term.h"

#include <map>
#include <string>
#include <vector>

namespace alive {

/// A symbolic SSA value: its bits plus a 1-bit poison indicator.
struct EncodedValue {
  TermRef Val = nullptr;
  TermRef Poison = nullptr;
};

/// The symbolic summary of one function execution.
struct EncodedFunction {
  /// 1 when this input triggers undefined behavior.
  TermRef UB = nullptr;
  /// Return value terms; RetVal is null for void functions.
  TermRef RetVal = nullptr;
  TermRef RetPoison = nullptr;
};

/// Encodes functions over a shared TermBuilder (source and target must
/// share argument variables, hence one encoder context).
class FunctionEncoder {
public:
  explicit FunctionEncoder(TermBuilder &B) : B(B) {}

  /// True if \p F lies in the symbolic fragment: defined, loop-free CFG,
  /// scalar-integer signature, no memory or external calls. \p Why receives
  /// the first violated constraint otherwise.
  static bool isSymbolicallySupported(const Function &F, std::string &Why);

  /// Builds shared argument encodings for \p F (fresh value and poison
  /// variables per argument).
  std::vector<EncodedValue> makeArguments(const Function &F);

  /// Encodes \p F applied to \p Args. Requires isSymbolicallySupported.
  EncodedFunction encode(const Function &F,
                         const std::vector<EncodedValue> &Args);

private:
  EncodedValue getValue(const Value *V);
  EncodedValue encodeInstruction(const Instruction *I, TermRef PathCond,
                                 TermRef &UB);
  EncodedValue encodeBinary(const BinaryInst *B2, TermRef PathCond,
                            TermRef &UB);
  EncodedValue encodeIntrinsic(const CallInst *C, TermRef PathCond,
                               TermRef &UB);

  TermBuilder &B;
  std::map<const Value *, EncodedValue> Values;
  /// Freeze results keyed by the frozen value's encoding: freezing the same
  /// symbolic value yields the same fixed result on both sides of a
  /// refinement query (the deterministic-freeze policy; matches the
  /// interpreter's zero resolution in spirit and makes identical functions
  /// provably equivalent).
  std::map<std::pair<TermRef, TermRef>, TermRef> FreezeVars;
};

} // namespace alive

#endif // TV_FUNCTIONENCODER_H
