//===- tv/TVCache.cpp - Memoized refinement verdicts -----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/TVCache.h"

#include "parser/Printer.h"

#include <cassert>
#include <cstdio>

using namespace alive;

namespace {

uint64_t fnv1a(std::string_view Text, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : Text) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// True when \p F 's interpretation can leave the function's own text:
/// calls to defined non-intrinsic functions execute the callee body, which
/// belongs to the surrounding module (and is mutated independently).
/// Declarations are fine — the environment oracle models them from the
/// callee *name* and arguments only.
bool dependsOnModuleContext(const Function &F) {
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      if (const auto *Call = dyn_cast<CallInst>(I))
        if (const Function *Callee = Call->getCallee())
          if (!Callee->isIntrinsic() && !Callee->isDeclaration())
            return true;
  return false;
}

} // namespace

TVCache::TVCache(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

uint64_t TVCache::structuralHash(const Function &F) {
  return fnv1a(printFunction(F));
}

bool TVCache::isCacheable(const Function &F) {
  return !dependsOnModuleContext(F);
}

bool TVCache::appendKeyHeader(std::string &Out, std::string_view SrcText,
                              std::string_view TgtText,
                              const TVOptions &Opts) {
  // Header: structural hashes + every TVOptions field that can steer the
  // verdict. The caller appends the full texts so equal keys imply equal
  // inputs.
  char Head[160];
  int N = std::snprintf(
      Head, sizeof Head, "%016llx:%016llx|b%llu,t%u,e%u,f%llu,s%llx,p%u|",
      (unsigned long long)fnv1a(SrcText), (unsigned long long)fnv1a(TgtText),
      (unsigned long long)Opts.SolverConflictBudget, Opts.ConcreteTrials,
      Opts.ExhaustiveBits, (unsigned long long)Opts.Fuel,
      (unsigned long long)Opts.Seed, Opts.PrescreenTrials);
  // A truncated header would silently merge distinct option
  // configurations into one key — fail open to "uncacheable" instead.
  assert(N > 0 && (size_t)N < sizeof Head);
  if (N <= 0 || (size_t)N >= sizeof Head)
    return false;
  Out.append(Head, (size_t)N);
  return true;
}

std::string TVCache::makeKey(const Function &Src, const Function &Tgt,
                             const TVOptions &Opts) {
  if (dependsOnModuleContext(Src) || dependsOnModuleContext(Tgt))
    return std::string();

  std::string SrcText = printFunction(Src);
  std::string TgtText = printFunction(Tgt);

  std::string Key;
  Key.reserve(64 + SrcText.size() + TgtText.size() + 1);
  if (!appendKeyHeader(Key, SrcText, TgtText, Opts))
    return std::string();
  Key += SrcText;
  Key += '\x1f'; // unit separator: printed IR never contains it
  Key += TgtText;
  return Key;
}

const TVResult *TVCache::lookup(const std::string &Key) {
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++S.Misses;
    return nullptr;
  }
  ++S.Hits;
  LRU.splice(LRU.begin(), LRU, It->second);
  return &It->second->second;
}

bool TVCache::insert(const std::string &Key, const TVResult &R) {
  if (Map.count(Key))
    return false;
  bool Evicted = false;
  if (Map.size() >= Capacity) {
    Entry &Old = LRU.back();
    Map.erase(std::string_view(Old.first));
    LRU.pop_back();
    Evicted = true;
    ++S.Evictions;
  }
  LRU.emplace_front(Key, R);
  Map.emplace(std::string_view(LRU.front().first), LRU.begin());
  return Evicted;
}
