//===- tv/SharedTVCache.h - Cross-worker TV verdict cache -------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, lock-striped LRU cache of translation-validation
/// verdicts, shared by every campaign worker. Where the per-worker TVCache
/// keys on raw printed text, this cache keys on *canonicalized* pairs
/// (tv/Canonicalize.h): alpha-renamed, commutative-normalized clones — so
/// structurally-equal queries from different workers and different mutation
/// lineages collapse onto one entry.
///
/// Concurrency: the key hash selects one of a power-of-two number of
/// shards; each shard is an independent mutex + LRU map sized
/// capacity/shards. Workers querying different shards never contend, and a
/// shard's critical section is a hash-map probe plus a list splice — the
/// verdict is copied out by value so no reference can dangle past an
/// eviction by another worker.
///
/// Determinism: verdicts are computed *on the canonical pair*, making them
/// a pure function of the key — whichever worker computes first, a hit
/// replays byte-for-byte what a fresh computation would produce, so the
/// deterministic report section stays byte-equal across -j values. Only
/// the hit/miss/eviction *counters* are scheduling-dependent (two workers
/// can race to compute the same key and both count a miss); they live in
/// the volatile section of the run report.
///
//===----------------------------------------------------------------------===//

#ifndef TV_SHAREDTVCACHE_H
#define TV_SHAREDTVCACHE_H

#include "support/Profiler.h"
#include "tv/RefinementChecker.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace alive {

class SharedTVCache {
public:
  static constexpr size_t DefaultShards = 16;

  /// \p Capacity bounds total resident verdicts across all shards;
  /// \p Shards is rounded up to a power of two (0 = DefaultShards). Each
  /// shard holds an independent LRU of max(1, Capacity/Shards) entries.
  explicit SharedTVCache(size_t Capacity = 4096,
                         size_t Shards = DefaultShards);

  /// Builds the cache key from the canonical pair texts — same header
  /// fingerprint and hash-then-full-text layout as TVCache::makeKey, so a
  /// hash collision can never smuggle in a wrong verdict. \returns the
  /// empty string when the header does not fit (fail open to uncacheable).
  static std::string makeKey(std::string_view CanonSrcText,
                             std::string_view CanonTgtText,
                             const TVOptions &Opts);

  /// Copies the memoized verdict for \p Key into \p Out, refreshing its
  /// recency. \returns false on a miss.
  bool lookup(const std::string &Key, TVResult &Out);

  /// Memoizes \p R under \p Key (no-op when already resident — the first
  /// writer of a raced key wins, but both verdicts are identical by
  /// construction). \returns true when an entry was evicted to make room.
  bool insert(const std::string &Key, const TVResult &R);

  size_t shardCount() const { return Shards.size(); }
  size_t capacity() const { return CapacityPerShard * Shards.size(); }
  /// Total resident entries (takes every shard lock; diagnostics only).
  size_t size() const;

  /// Point-in-time per-shard heat counters (hits/misses/evictions/inserts/
  /// lock-waits), indexed by shard. Lock-free relaxed reads — safe while
  /// workers hammer the cache. All volatile: which worker touched which
  /// shard when is pure scheduling.
  std::vector<ShardHeat> shardHeat() const;

private:
  using Entry = std::pair<std::string, TVResult>;
  struct Shard {
    std::mutex Lock;
    /// Front = most recently used. Map string_view keys alias the entry's
    /// own key string (stable for the entry's lifetime).
    std::list<Entry> LRU;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> Map;
    /// Heat counters (relaxed: read by the profile endpoints mid-run).
    std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0}, Inserts{0};
    /// Lock acquisitions that found the mutex held (try_lock failed first)
    /// — the contention signal of the heat map.
    std::atomic<uint64_t> LockWaits{0};
  };

  /// Locks \p S, counting a LockWait when the uncontended fast path fails.
  static std::unique_lock<std::mutex> lockShard(Shard &S);

  Shard &shardFor(const std::string &Key);

  size_t CapacityPerShard;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace alive

#endif // TV_SHAREDTVCACHE_H
