//===- tv/Counterexample.cpp - Counterexample rendering --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/Counterexample.h"

#include "parser/Printer.h"

#include <sstream>

using namespace alive;

namespace {

/// One value with its full lane structure ("3", "<1, poison>", "poison").
std::string renderOneConcVal(const ConcVal &A) {
  if (A.Lanes.size() == 1)
    return A.lane().Poison ? "poison" : A.lane().Val.toString();
  std::string S = "<";
  for (size_t K = 0; K != A.Lanes.size(); ++K) {
    if (K)
      S += ", ";
    S += A.Lanes[K].Poison ? "poison" : A.Lanes[K].Val.toString();
  }
  return S + ">";
}

} // namespace

std::string alive::renderConcVals(const std::vector<ConcVal> &Args) {
  std::string S = "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      S += ", ";
    S += renderOneConcVal(Args[I]);
  }
  return S + ")";
}

std::string
alive::renderCounterexampleInputs(const Function &Src,
                                  const std::vector<ConcVal> &Args) {
  std::ostringstream OS;
  for (size_t I = 0; I != Args.size(); ++I) {
    // The checker guarantees one entry per parameter in parameter order;
    // fall back to a positional label if the shapes ever disagree.
    if (I < Src.getNumArgs()) {
      const Value *Arg = Src.getArg((unsigned)I);
      OS << "  " << printValueRef(Arg) << " : " << Arg->getType()->str();
    } else {
      OS << "  arg#" << I;
    }
    OS << " = " << renderOneConcVal(Args[I]) << "\n";
  }
  return OS.str();
}

std::string alive::renderCounterexampleTable(const Function &Src,
                                             const TVResult &R) {
  std::ostringstream OS;
  OS << "verdict: " << tvVerdictName(R.Verdict) << "\n";
  if (!R.Detail.empty())
    OS << "detail:  " << R.Detail << "\n";
  if (R.CounterExample.empty())
    return OS.str();
  OS << "input:\n" << renderCounterexampleInputs(Src, R.CounterExample);
  return OS.str();
}
