//===- tv/FunctionEncoder.cpp - IR -> bit-vector terms ---------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/FunctionEncoder.h"

#include "analysis/DominatorTree.h"

#include <set>

using namespace alive;

bool FunctionEncoder::isSymbolicallySupported(const Function &F,
                                              std::string &Why) {
  if (F.isDeclaration()) {
    Why = "declaration";
    return false;
  }
  Type *RetTy = F.getReturnType();
  if (!RetTy->isVoidTy() && !RetTy->isIntegerTy()) {
    Why = "non-integer return type";
    return false;
  }
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    if (!F.getArg(I)->getType()->isIntegerTy()) {
      Why = "non-integer argument type";
      return false;
    }

  for (BasicBlock *BB : F.blocks()) {
    for (Instruction *I : BB->insts()) {
      switch (I->getKind()) {
      case Value::VK_LoadInst:
      case Value::VK_StoreInst:
      case Value::VK_AllocaInst:
      case Value::VK_GEPInst:
        Why = "memory operation";
        return false;
      case Value::VK_ExtractElementInst:
      case Value::VK_InsertElementInst:
      case Value::VK_ShuffleVectorInst:
        Why = "vector operation";
        return false;
      case Value::VK_CallInst: {
        const Function *Callee = cast<CallInst>(I)->getCallee();
        if (!Callee->isIntrinsic()) {
          Why = "call to non-intrinsic function";
          return false;
        }
        break;
      }
      default:
        if (I->getType()->isVectorTy() || I->getType()->isPointerTy()) {
          Why = "non-scalar-integer value";
          return false;
        }
        break;
      }
    }
  }

  // Loop-free check: DFS from entry looking for a back edge.
  std::map<const BasicBlock *, int> Color; // 0 white, 1 grey, 2 black
  struct Frame {
    const BasicBlock *BB;
    unsigned Next;
  };
  std::vector<Frame> Stack{{F.getEntryBlock(), 0}};
  Color[F.getEntryBlock()] = 1;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    std::vector<BasicBlock *> Succs = Top.BB->successors();
    if (Top.Next < Succs.size()) {
      const BasicBlock *S = Succs[Top.Next++];
      if (Color[S] == 1) {
        Why = "loop in CFG";
        return false;
      }
      if (Color[S] == 0) {
        Color[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Color[Top.BB] = 2;
    Stack.pop_back();
  }
  return true;
}

std::vector<EncodedValue> FunctionEncoder::makeArguments(const Function &F) {
  std::vector<EncodedValue> Args;
  for (unsigned I = 0; I != F.getNumArgs(); ++I) {
    unsigned W = F.getArg(I)->getType()->getIntegerBitWidth();
    std::string Name =
        F.getArg(I)->hasName() ? F.getArg(I)->getName() : std::to_string(I);
    EncodedValue EV;
    EV.Val = B.mkVar(W, "arg." + Name);
    EV.Poison = B.mkVar(1, "arg.poison." + Name);
    Args.push_back(EV);
  }
  return Args;
}

EncodedValue FunctionEncoder::getValue(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return {B.mkConst(CI->getValue()), B.mkFalse()};
  if (isa<ConstantPoison>(V))
    return {B.mkConst(APInt::getZero(V->getType()->getIntegerBitWidth())),
            B.mkTrue()};
  // Undef is modeled as the concrete value zero throughout this toolchain
  // (documented semantic narrowing; see DESIGN.md).
  if (isa<ConstantUndef>(V))
    return {B.mkConst(APInt::getZero(V->getType()->getIntegerBitWidth())),
            B.mkFalse()};
  auto It = Values.find(V);
  assert(It != Values.end() && "value not yet encoded");
  return It->second;
}

EncodedValue FunctionEncoder::encodeBinary(const BinaryInst *Bin,
                                           TermRef PathCond, TermRef &UB) {
  EncodedValue L = getValue(Bin->getLHS());
  EncodedValue R = getValue(Bin->getRHS());
  unsigned W = L.Val->Width;
  TermRef Val = nullptr;
  TermRef Poison = B.mkOr(L.Poison, R.Poison);

  auto signBitOf = [&](TermRef T) {
    return B.mkTrunc(B.mkLShr(T, B.mkConst(W, W - 1)), 1);
  };

  switch (Bin->getBinOp()) {
  case BinaryInst::Add: {
    Val = B.mkAdd(L.Val, R.Val);
    if (Bin->hasNUW())
      Poison = B.mkOr(Poison, B.mkUlt(Val, L.Val));
    if (Bin->hasNSW()) {
      TermRef SameSign = B.mkEq(signBitOf(L.Val), signBitOf(R.Val));
      TermRef Flipped = B.mkNe(signBitOf(Val), signBitOf(L.Val));
      Poison = B.mkOr(Poison, B.mkAnd(SameSign, Flipped));
    }
    break;
  }
  case BinaryInst::Sub: {
    Val = B.mkSub(L.Val, R.Val);
    if (Bin->hasNUW())
      Poison = B.mkOr(Poison, B.mkUlt(L.Val, R.Val));
    if (Bin->hasNSW()) {
      TermRef DiffSign = B.mkNe(signBitOf(L.Val), signBitOf(R.Val));
      TermRef Flipped = B.mkNe(signBitOf(Val), signBitOf(L.Val));
      Poison = B.mkOr(Poison, B.mkAnd(DiffSign, Flipped));
    }
    break;
  }
  case BinaryInst::Mul: {
    Val = B.mkMul(L.Val, R.Val);
    if (Bin->hasNUW()) {
      TermRef Wide =
          B.mkMul(B.mkZExt(L.Val, 2 * W), B.mkZExt(R.Val, 2 * W));
      Poison = B.mkOr(Poison, B.mkNe(Wide, B.mkZExt(Val, 2 * W)));
    }
    if (Bin->hasNSW()) {
      TermRef Wide =
          B.mkMul(B.mkSExt(L.Val, 2 * W), B.mkSExt(R.Val, 2 * W));
      Poison = B.mkOr(Poison, B.mkNe(Wide, B.mkSExt(Val, 2 * W)));
    }
    break;
  }
  case BinaryInst::UDiv:
  case BinaryInst::URem:
  case BinaryInst::SDiv:
  case BinaryInst::SRem: {
    // Poison or zero divisor is immediate UB; signed overflow too.
    TermRef DivUB =
        B.mkOr(R.Poison, B.mkEq(R.Val, B.mkConst(W, 0)));
    bool Signed = Bin->getBinOp() == BinaryInst::SDiv ||
                  Bin->getBinOp() == BinaryInst::SRem;
    if (Signed) {
      TermRef MinOverNeg1 = B.mkAnd(
          B.mkAnd(B.mkEq(L.Val, B.mkConst(APInt::getSignedMinValue(W))),
                  B.mkEq(R.Val, B.mkConst(APInt::getAllOnes(W)))),
          B.mkNot(L.Poison));
      DivUB = B.mkOr(DivUB, MinOverNeg1);
    }
    UB = B.mkOr(UB, B.mkAnd(PathCond, DivUB));
    Poison = L.Poison;
    switch (Bin->getBinOp()) {
    case BinaryInst::UDiv:
      Val = B.mkUDiv(L.Val, R.Val);
      if (Bin->isExact())
        Poison = B.mkOr(
            Poison, B.mkNe(B.mkURem(L.Val, R.Val), B.mkConst(W, 0)));
      break;
    case BinaryInst::URem:
      Val = B.mkURem(L.Val, R.Val);
      break;
    case BinaryInst::SDiv:
      Val = B.mkSDiv(L.Val, R.Val);
      if (Bin->isExact())
        Poison = B.mkOr(
            Poison, B.mkNe(B.mkSRem(L.Val, R.Val), B.mkConst(W, 0)));
      break;
    case BinaryInst::SRem:
      Val = B.mkSRem(L.Val, R.Val);
      break;
    default:
      break;
    }
    break;
  }
  case BinaryInst::Shl:
  case BinaryInst::LShr:
  case BinaryInst::AShr: {
    TermRef Oversize = B.mkNot(B.mkUlt(R.Val, B.mkConst(W, W)));
    Poison = B.mkOr(Poison, Oversize);
    switch (Bin->getBinOp()) {
    case BinaryInst::Shl:
      Val = B.mkShl(L.Val, R.Val);
      if (Bin->hasNUW())
        Poison = B.mkOr(Poison, B.mkNe(B.mkLShr(Val, R.Val), L.Val));
      if (Bin->hasNSW())
        Poison = B.mkOr(Poison, B.mkNe(B.mkAShr(Val, R.Val), L.Val));
      break;
    case BinaryInst::LShr:
      Val = B.mkLShr(L.Val, R.Val);
      if (Bin->isExact())
        Poison = B.mkOr(Poison, B.mkNe(B.mkShl(Val, R.Val), L.Val));
      break;
    case BinaryInst::AShr:
      Val = B.mkAShr(L.Val, R.Val);
      if (Bin->isExact())
        Poison = B.mkOr(Poison, B.mkNe(B.mkShl(Val, R.Val), L.Val));
      break;
    default:
      break;
    }
    break;
  }
  case BinaryInst::And:
    Val = B.mkAnd(L.Val, R.Val);
    break;
  case BinaryInst::Or:
    Val = B.mkOr(L.Val, R.Val);
    break;
  case BinaryInst::Xor:
    Val = B.mkXor(L.Val, R.Val);
    break;
  case BinaryInst::NumBinOps:
    assert(false);
  }
  return {Val, Poison};
}

EncodedValue FunctionEncoder::encodeIntrinsic(const CallInst *C,
                                              TermRef PathCond, TermRef &UB) {
  IntrinsicID ID = C->getCallee()->getIntrinsicID();
  std::vector<EncodedValue> A;
  for (unsigned I = 0; I != C->getNumArgs(); ++I)
    A.push_back(getValue(C->getArg(I)));

  if (ID == IntrinsicID::Assume) {
    // assume(false) and assume(poison) are UB.
    UB = B.mkOr(UB, B.mkAnd(PathCond,
                            B.mkOr(A[0].Poison, B.mkNot(A[0].Val))));
    return {B.mkConst(1, 0), B.mkFalse()};
  }

  unsigned W = C->getType()->getIntegerBitWidth();
  TermRef Poison = B.mkFalse();
  for (const EncodedValue &E : A)
    Poison = B.mkOr(Poison, E.Poison);
  TermRef X = A[0].Val;
  TermRef Val = nullptr;

  switch (ID) {
  case IntrinsicID::SMin:
    Val = B.mkIte(B.mkSlt(X, A[1].Val), X, A[1].Val);
    break;
  case IntrinsicID::SMax:
    Val = B.mkIte(B.mkSlt(X, A[1].Val), A[1].Val, X);
    break;
  case IntrinsicID::UMin:
    Val = B.mkIte(B.mkUlt(X, A[1].Val), X, A[1].Val);
    break;
  case IntrinsicID::UMax:
    Val = B.mkIte(B.mkUlt(X, A[1].Val), A[1].Val, X);
    break;
  case IntrinsicID::Abs: {
    TermRef IsMin = B.mkEq(X, B.mkConst(APInt::getSignedMinValue(W)));
    Poison = B.mkOr(Poison, B.mkAnd(IsMin, B.mkNe(A[1].Val,
                                                  B.mkConst(1, 0))));
    Val = B.mkIte(B.mkSlt(X, B.mkConst(W, 0)),
                  B.mkSub(B.mkConst(W, 0), X), X);
    break;
  }
  case IntrinsicID::BSwap: {
    unsigned Bytes = W / 8;
    Val = B.mkConst(W, 0);
    for (unsigned I = 0; I != Bytes; ++I) {
      TermRef Byte = B.mkAnd(B.mkLShr(X, B.mkConst(W, I * 8)),
                             B.mkConst(W, 0xFF));
      Val = B.mkOr(Val, B.mkShl(Byte, B.mkConst(W, (Bytes - 1 - I) * 8)));
    }
    break;
  }
  case IntrinsicID::CtPop: {
    Val = B.mkConst(W, 0);
    for (unsigned I = 0; I != W; ++I)
      Val = B.mkAdd(Val, B.mkAnd(B.mkLShr(X, B.mkConst(W, I)),
                                 B.mkConst(W, 1)));
    break;
  }
  case IntrinsicID::Ctlz:
  case IntrinsicID::Cttz: {
    TermRef IsZero = B.mkEq(X, B.mkConst(W, 0));
    Poison =
        B.mkOr(Poison, B.mkAnd(IsZero, B.mkNe(A[1].Val, B.mkConst(1, 0))));
    Val = B.mkConst(W, W);
    if (ID == IntrinsicID::Ctlz) {
      // Highest set bit wins: iterate LSB->MSB so later (higher) bits
      // override earlier ones.
      for (unsigned I = 0; I != W; ++I) {
        TermRef Bit = B.mkTrunc(B.mkLShr(X, B.mkConst(W, I)), 1);
        Val = B.mkIte(Bit, B.mkConst(W, W - 1 - I), Val);
      }
    } else {
      // Lowest set bit wins: iterate MSB->LSB.
      for (unsigned I = W; I-- > 0;) {
        TermRef Bit = B.mkTrunc(B.mkLShr(X, B.mkConst(W, I)), 1);
        Val = B.mkIte(Bit, B.mkConst(W, I), Val);
      }
    }
    break;
  }
  case IntrinsicID::UAddSat: {
    TermRef Sum = B.mkAdd(X, A[1].Val);
    Val = B.mkIte(B.mkUlt(Sum, X), B.mkConst(APInt::getAllOnes(W)), Sum);
    break;
  }
  case IntrinsicID::USubSat:
    Val = B.mkIte(B.mkUlt(X, A[1].Val), B.mkConst(W, 0),
                  B.mkSub(X, A[1].Val));
    break;
  case IntrinsicID::SAddSat:
  case IntrinsicID::SSubSat: {
    TermRef Wide = ID == IntrinsicID::SAddSat
                       ? B.mkAdd(B.mkSExt(X, W + 1), B.mkSExt(A[1].Val, W + 1))
                       : B.mkSub(B.mkSExt(X, W + 1), B.mkSExt(A[1].Val, W + 1));
    TermRef Max = B.mkConst(APInt::getSignedMaxValue(W).sext(W + 1));
    TermRef Min = B.mkConst(APInt::getSignedMinValue(W).sext(W + 1));
    TermRef Clamped = B.mkIte(B.mkSlt(Max, Wide), Max,
                              B.mkIte(B.mkSlt(Wide, Min), Min, Wide));
    Val = B.mkTrunc(Clamped, W);
    break;
  }
  case IntrinsicID::Fshl:
  case IntrinsicID::Fshr: {
    TermRef Sm = B.mkURem(A[2].Val, B.mkConst(W, W));
    TermRef IsZero = B.mkEq(Sm, B.mkConst(W, 0));
    TermRef WminusS = B.mkSub(B.mkConst(W, W), Sm);
    if (ID == IntrinsicID::Fshl) {
      TermRef Rot =
          B.mkOr(B.mkShl(X, Sm), B.mkLShr(A[1].Val, WminusS));
      Val = B.mkIte(IsZero, X, Rot);
    } else {
      TermRef Rot =
          B.mkOr(B.mkShl(X, WminusS), B.mkLShr(A[1].Val, Sm));
      Val = B.mkIte(IsZero, A[1].Val, Rot);
    }
    break;
  }
  case IntrinsicID::Assume:
  case IntrinsicID::NotIntrinsic:
    assert(false);
  }
  return {Val, Poison};
}

EncodedValue FunctionEncoder::encodeInstruction(const Instruction *I,
                                                TermRef PathCond,
                                                TermRef &UB) {
  switch (I->getKind()) {
  case Value::VK_BinaryInst:
    return encodeBinary(cast<BinaryInst>(I), PathCond, UB);
  case Value::VK_ICmpInst: {
    const auto *C = cast<ICmpInst>(I);
    EncodedValue L = getValue(C->getLHS()), R = getValue(C->getRHS());
    TermRef V = nullptr;
    switch (C->getPredicate()) {
    case ICmpInst::EQ:
      V = B.mkEq(L.Val, R.Val);
      break;
    case ICmpInst::NE:
      V = B.mkNe(L.Val, R.Val);
      break;
    case ICmpInst::UGT:
      V = B.mkUlt(R.Val, L.Val);
      break;
    case ICmpInst::UGE:
      V = B.mkNot(B.mkUlt(L.Val, R.Val));
      break;
    case ICmpInst::ULT:
      V = B.mkUlt(L.Val, R.Val);
      break;
    case ICmpInst::ULE:
      V = B.mkNot(B.mkUlt(R.Val, L.Val));
      break;
    case ICmpInst::SGT:
      V = B.mkSlt(R.Val, L.Val);
      break;
    case ICmpInst::SGE:
      V = B.mkNot(B.mkSlt(L.Val, R.Val));
      break;
    case ICmpInst::SLT:
      V = B.mkSlt(L.Val, R.Val);
      break;
    case ICmpInst::SLE:
      V = B.mkNot(B.mkSlt(R.Val, L.Val));
      break;
    case ICmpInst::NumPreds:
      assert(false);
    }
    return {V, B.mkOr(L.Poison, R.Poison)};
  }
  case Value::VK_SelectInst: {
    const auto *S = cast<SelectInst>(I);
    EncodedValue C = getValue(S->getCondition());
    EncodedValue T = getValue(S->getTrueValue());
    EncodedValue E = getValue(S->getFalseValue());
    TermRef Val = B.mkIte(C.Val, T.Val, E.Val);
    TermRef Poison =
        B.mkOr(C.Poison, B.mkIte(C.Val, T.Poison, E.Poison));
    return {Val, Poison};
  }
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    EncodedValue S = getValue(C->getSrc());
    unsigned W = C->getType()->getIntegerBitWidth();
    TermRef V = nullptr;
    switch (C->getCastOp()) {
    case CastInst::Trunc:
      V = B.mkTrunc(S.Val, W);
      break;
    case CastInst::ZExt:
      V = B.mkZExt(S.Val, W);
      break;
    case CastInst::SExt:
      V = B.mkSExt(S.Val, W);
      break;
    }
    return {V, S.Poison};
  }
  case Value::VK_FreezeInst: {
    const auto *Fr = cast<FreezeInst>(I);
    EncodedValue S = getValue(Fr->getSrc());
    // Frozen poison becomes an unconstrained-but-fixed value. The fresh
    // variable is keyed by the frozen value's encoding so both sides of a
    // refinement query agree on it (deterministic freeze). A SAT model
    // relying on it is still confirmed concretely before being reported.
    TermRef &Fresh = FreezeVars[{S.Val, S.Poison}];
    if (!Fresh)
      Fresh = B.mkVar(S.Val->Width, "freeze");
    return {B.mkIte(S.Poison, Fresh, S.Val), B.mkFalse()};
  }
  case Value::VK_CallInst:
    return encodeIntrinsic(cast<CallInst>(I), PathCond, UB);
  default:
    assert(false && "instruction outside symbolic fragment");
    return {};
  }
}

EncodedFunction FunctionEncoder::encode(const Function &F,
                                        const std::vector<EncodedValue> &Args) {
  assert(Args.size() == F.getNumArgs());
  Values.clear();
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    Values[F.getArg(I)] = Args[I];

  EncodedFunction Out;
  Out.UB = B.mkFalse();

  // Passing poison to a noundef parameter is UB.
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    if (F.paramAttrs(I).NoUndef)
      Out.UB = B.mkOr(Out.UB, Args[I].Poison);

  // Path conditions. RPO over the loop-free CFG is a topological order.
  DominatorTree DT(F);
  std::map<const BasicBlock *, TermRef> PathCond;
  // Edge conditions, filled as terminators are encoded.
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, TermRef> Edge;

  TermRef RetVal = nullptr, RetPoison = nullptr, AnyRet = B.mkFalse();
  bool IsVoid = F.getReturnType()->isVoidTy();
  if (!IsVoid) {
    unsigned W = F.getReturnType()->getIntegerBitWidth();
    RetVal = B.mkConst(W, 0);
    RetPoison = B.mkFalse();
  }

  for (const BasicBlock *BB : DT.rpo()) {
    TermRef PC;
    if (BB == F.getEntryBlock()) {
      PC = B.mkTrue();
    } else {
      PC = B.mkFalse();
      for (const BasicBlock *Pred : F.predecessors(BB)) {
        auto It = Edge.find({Pred, BB});
        if (It != Edge.end())
          PC = B.mkOr(PC, It->second);
      }
    }
    PathCond[BB] = PC;

    // Phis first: select by incoming edge condition.
    for (Instruction *I : BB->insts()) {
      const auto *Phi = dyn_cast<PhiNode>(I);
      if (!Phi)
        break;
      unsigned W = Phi->getType()->getIntegerBitWidth();
      TermRef Val = B.mkConst(W, 0), Poison = B.mkFalse();
      for (unsigned K = 0; K != Phi->getNumIncoming(); ++K) {
        auto It = Edge.find({Phi->getIncomingBlock(K), BB});
        TermRef Cond = It != Edge.end() ? It->second : B.mkFalse();
        EncodedValue In = getValue(Phi->getIncomingValue(K));
        Val = B.mkIte(Cond, In.Val, Val);
        Poison = B.mkIte(Cond, In.Poison, Poison);
      }
      Values[Phi] = {Val, Poison};
    }

    for (Instruction *I : BB->insts()) {
      if (isa<PhiNode>(I))
        continue;
      if (I->isTerminator())
        break;
      Values[I] = encodeInstruction(I, PC, Out.UB);
    }

    const Instruction *Term = BB->getTerminator();
    switch (Term->getKind()) {
    case Value::VK_ReturnInst: {
      const auto *R = cast<ReturnInst>(Term);
      if (!IsVoid) {
        EncodedValue V = getValue(R->getReturnValue());
        RetVal = B.mkIte(PC, V.Val, RetVal);
        RetPoison = B.mkIte(PC, V.Poison, RetPoison);
      }
      AnyRet = B.mkOr(AnyRet, PC);
      break;
    }
    case Value::VK_BranchInst: {
      const auto *Br = cast<BranchInst>(Term);
      if (!Br->isConditional()) {
        auto Key = std::make_pair(BB, (const BasicBlock *)Br->getSuccessor(0));
        TermRef &E = Edge[Key];
        E = E ? B.mkOr(E, PC) : PC;
        break;
      }
      EncodedValue C = getValue(Br->getCondition());
      // Branch on poison is UB.
      Out.UB = B.mkOr(Out.UB, B.mkAnd(PC, C.Poison));
      auto KeyT = std::make_pair(BB, (const BasicBlock *)Br->getSuccessor(0));
      auto KeyF = std::make_pair(BB, (const BasicBlock *)Br->getSuccessor(1));
      TermRef CondT = B.mkAnd(PC, C.Val);
      TermRef CondF = B.mkAnd(PC, B.mkNot(C.Val));
      TermRef &ET = Edge[KeyT];
      ET = ET ? B.mkOr(ET, CondT) : CondT;
      TermRef &EF = Edge[KeyF];
      EF = EF ? B.mkOr(EF, CondF) : CondF;
      break;
    }
    case Value::VK_SwitchInst: {
      const auto *Sw = cast<SwitchInst>(Term);
      EncodedValue C = getValue(Sw->getCondition());
      Out.UB = B.mkOr(Out.UB, B.mkAnd(PC, C.Poison));
      TermRef NoneMatched = B.mkTrue();
      for (unsigned K = 0; K != Sw->getNumCases(); ++K) {
        TermRef Match = B.mkEq(C.Val, B.mkConst(Sw->getCaseValue(K)));
        TermRef Cond = B.mkAnd(PC, B.mkAnd(NoneMatched, Match));
        auto Key = std::make_pair(BB, (const BasicBlock *)Sw->getCaseDest(K));
        TermRef &E = Edge[Key];
        E = E ? B.mkOr(E, Cond) : Cond;
        NoneMatched = B.mkAnd(NoneMatched, B.mkNot(Match));
      }
      TermRef DefCond = B.mkAnd(PC, NoneMatched);
      auto Key = std::make_pair(BB, (const BasicBlock *)Sw->getDefaultDest());
      TermRef &E = Edge[Key];
      E = E ? B.mkOr(E, DefCond) : DefCond;
      break;
    }
    case Value::VK_UnreachableInst:
      // Reaching unreachable is UB.
      Out.UB = B.mkOr(Out.UB, PC);
      break;
    default:
      assert(false && "unknown terminator");
    }
  }

  // Loop-free functions always either return or hit UB; paths that never
  // return are UB (unreachable) so the default RetVal on them is benign.
  Out.RetVal = IsVoid ? nullptr : RetVal;
  Out.RetPoison = IsVoid ? nullptr : RetPoison;
  return Out;
}
