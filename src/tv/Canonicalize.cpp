//===- tv/Canonicalize.cpp - Structural canonicalization of TV pairs --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/Canonicalize.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "parser/Printer.h"
#include "support/Casting.h"
#include "tv/TVCache.h"

#include <string>
#include <unordered_map>

using namespace alive;

namespace {

/// Canonical operand order, lexicographic on (class, index, text):
/// arguments (by parameter index) < instructions (by program-order
/// position) < constants (by printed token) < anything else. Putting
/// constants last mirrors LLVM's constants-to-the-RHS convention; ordering
/// instructions by position (not name) makes the rank independent of the
/// names the alpha-rename is about to erase.
struct OperandRank {
  unsigned Class = 3;
  unsigned Index = 0;
  std::string Text;

  bool before(const OperandRank &O) const {
    if (Class != O.Class)
      return Class < O.Class;
    if (Index != O.Index)
      return Index < O.Index;
    return Text < O.Text;
  }
};

OperandRank
rankOperand(const Value *V,
            const std::unordered_map<const Value *, unsigned> &InstPos) {
  OperandRank R;
  if (const Argument *A = dyn_cast<Argument>(V)) {
    R.Class = 0;
    R.Index = A->getIndex();
  } else if (V->isInstruction()) {
    auto It = InstPos.find(V);
    if (It == InstPos.end())
      return R; // defensive: unknown position ranks last, never swapped
    R.Class = 1;
    R.Index = It->second;
  } else if (V->isConstant()) {
    R.Class = 2;
    R.Text = printValueRef(V);
  }
  return R;
}

void swapOperands(Instruction *I) {
  Value *L = I->getOperand(0), *R = I->getOperand(1);
  I->setOperand(0, R);
  I->setOperand(1, L);
}

} // namespace

void alive::canonicalizeFunction(Function &F) {
  // Program-order position of every instruction, for the operand rank.
  std::unordered_map<const Value *, unsigned> InstPos;
  unsigned Pos = 0;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      InstPos[I] = Pos++;

  // Commutative-operand normalization. Only operand-order symmetries are
  // rewritten: add/mul/and/or/xor swap freely; icmp swaps operands with the
  // predicate mirrored (ult -> ugt), which covers eq/ne as a special case.
  for (BasicBlock *BB : F.blocks()) {
    for (Instruction *I : BB->insts()) {
      if (auto *BI = dyn_cast<BinaryInst>(I)) {
        if (BinaryInst::isCommutative(BI->getBinOp()) &&
            rankOperand(BI->getRHS(), InstPos)
                .before(rankOperand(BI->getLHS(), InstPos)))
          swapOperands(BI);
      } else if (auto *CI = dyn_cast<ICmpInst>(I)) {
        if (rankOperand(CI->getRHS(), InstPos)
                .before(rankOperand(CI->getLHS(), InstPos))) {
          swapOperands(CI);
          CI->setPredicate(ICmpInst::getSwappedPredicate(CI->getPredicate()));
        }
      }
    }
  }

  // Alpha-rename: clear every argument, block and instruction name so the
  // printer's slot numbering assigns canonical sequential names. Callee
  // names are untouched (the environment oracle models declarations by
  // name).
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    F.getArg(I)->setName("");
  for (BasicBlock *BB : F.blocks()) {
    BB->setName("");
    for (Instruction *I : BB->insts())
      I->setName("");
  }
}

CanonicalPair alive::canonicalizePair(const Function &Src,
                                      const Function &Tgt) {
  CanonicalPair CP;
  // Pairs whose verdict depends on callee bodies elsewhere in the module
  // cannot be keyed by their own text — same rule as the per-worker cache.
  if (!TVCache::isCacheable(Src) || !TVCache::isCacheable(Tgt))
    return CP;

  auto M = std::make_unique<Module>();
  // Fixed names make the canonical text independent of the original
  // function name (mutation lineages rename functions freely).
  Function *CS = cloneFunction(Src, *M, "__amut_canon_src");
  Function *CT = cloneFunction(Tgt, *M, "__amut_canon_tgt");
  canonicalizeFunction(*CS);
  canonicalizeFunction(*CT);
  CP.SrcText = printFunction(*CS);
  CP.TgtText = printFunction(*CT);
  CP.Src = CS;
  CP.Tgt = CT;
  CP.M = std::move(M);
  return CP;
}
