//===- tv/TVCache.h - Memoized refinement verdicts --------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded LRU memo of translation-validation verdicts. The fuzzing loop
/// re-derives the same (source, target) pair over and over: different seeds
/// frequently mutate a function into a form seen before, and the optimizer
/// then canonicalizes near-miss variants onto one target. checkRefinement
/// is deterministic in (source text, target text, TVOptions) — so a verdict
/// computed once can be replayed for free on every recurrence.
///
/// Keys are the *structural content* of the pair: a structural hash of the
/// printed source and target plus a fingerprint of the TVOptions, followed
/// by the full printed text so a hash collision can never smuggle in a
/// wrong verdict (lookups compare the whole key). Pairs whose verdict
/// depends on module context beyond the pair itself — calls into *defined*
/// functions, whose bodies are mutated independently — are not cacheable
/// and makeKey refuses them.
///
/// This cache is per-worker (each CampaignEngine worker's FuzzerLoop owns
/// one): workers share nothing on the hot path, and a hit replays a verdict
/// byte-identical to what the checker would recompute, so the -j N bug
/// report stays byte-identical to -j 1 even though each worker's hit
/// pattern differs. The opt-in SharedTVCache (tv/SharedTVCache.h) trades
/// this isolation for cross-worker and cross-lineage sharing via
/// canonicalized keys; both caches use the same cacheability rule
/// (isCacheable) and the same bound-checked key header (appendKeyHeader).
///
//===----------------------------------------------------------------------===//

#ifndef TV_TVCACHE_H
#define TV_TVCACHE_H

#include "tv/RefinementChecker.h"

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace alive {

class TVCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  /// \p Capacity bounds the number of resident verdicts (0 is clamped
  /// to 1; use "no cache at all" to disable memoization).
  explicit TVCache(size_t Capacity = DefaultCapacity);

  /// Default entry bound: mutant functions are small (corpus files are
  /// <2KB), so even thousands of resident pairs stay in the low MBs.
  static constexpr size_t DefaultCapacity = 4096;

  /// Builds the memo key for a (source, target, options) triple.
  /// \returns the empty string when the pair is not cacheable — either
  /// function calls a *defined* non-intrinsic function, so the verdict
  /// depends on callee bodies that are not part of the key.
  static std::string makeKey(const Function &Src, const Function &Tgt,
                             const TVOptions &Opts);

  /// True when \p F 's verdict is a function of its own printed text:
  /// no calls into defined non-intrinsic functions (their bodies belong to
  /// the surrounding module and are mutated independently). Shared by
  /// makeKey and the canonicalization pass of the shared cache.
  static bool isCacheable(const Function &F);

  /// Appends the bound-checked key header — structural hashes of the two
  /// texts plus a fingerprint of every TVOptions field that can steer the
  /// verdict — to \p Out. \returns false (leaving \p Out untouched) if the
  /// header would not fit its fixed buffer: the caller must then treat the
  /// pair as uncacheable rather than key on a truncated fingerprint that
  /// would merge distinct option configurations.
  static bool appendKeyHeader(std::string &Out, std::string_view SrcText,
                              std::string_view TgtText, const TVOptions &Opts);

  /// 64-bit FNV-1a hash of a function's printed form: identical text (the
  /// parser/printer round-trip normal form) hashes identically regardless
  /// of which module clone the function lives in.
  static uint64_t structuralHash(const Function &F);

  /// \returns the memoized verdict for \p Key, refreshing its recency, or
  /// null on a miss. Counts the hit/miss.
  const TVResult *lookup(const std::string &Key);

  /// Memoizes \p R under \p Key (no-op if the key is already resident).
  /// \returns true when an old entry was evicted to make room.
  bool insert(const std::string &Key, const TVResult &R);

  size_t size() const { return Map.size(); }
  size_t capacity() const { return Capacity; }
  const Stats &stats() const { return S; }

private:
  using Entry = std::pair<std::string, TVResult>;
  size_t Capacity;
  /// Front = most recently used. Map values point into this list; list
  /// splicing never invalidates them, and the string_view keys alias the
  /// entry's own key string (stable for the entry's lifetime).
  std::list<Entry> LRU;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> Map;
  Stats S;
};

} // namespace alive

#endif // TV_TVCACHE_H
