//===- tv/RefinementChecker.cpp - Translation validation -------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/RefinementChecker.h"

#include "smt/BitBlaster.h"
#include "support/RandomGenerator.h"
#include "tv/Counterexample.h"
#include "tv/FunctionEncoder.h"

#include <sstream>

using namespace alive;

const char *alive::tvVerdictName(TVVerdict V) {
  switch (V) {
  case TVVerdict::Correct:
    return "correct";
  case TVVerdict::Incorrect:
    return "incorrect";
  case TVVerdict::Unsupported:
    return "unsupported";
  case TVVerdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

namespace {

/// Hard ceiling on exhaustive enumeration, whatever TVOptions asks for:
/// the trial count 1ULL << TotalBits is undefined from 64 bits up.
constexpr unsigned MaxExhaustiveBits = 63;

bool sameSignature(const Function &A, const Function &B) {
  if (A.getReturnType()->str() != B.getReturnType()->str())
    return false;
  if (A.getNumArgs() != B.getNumArgs())
    return false;
  for (unsigned I = 0; I != A.getNumArgs(); ++I)
    if (A.getArg(I)->getType()->str() != B.getArg(I)->getType()->str())
      return false;
  return true;
}

} // namespace

namespace {

/// What one concrete refinement trial established. Vacuous cases keep the
/// reason (UB vs fuel vs unsupported) so budget exhaustion is reported as
/// budget exhaustion, not folded into a generic "inconclusive".
enum class TrialOutcome {
  Violation,             ///< refinement violated (Detail filled in)
  NoViolation,           ///< both sides ran; the target refined the source
  VacuousSrcUB,          ///< src UB: any target behavior is allowed
  VacuousSrcFuel,        ///< src out of fuel: no verdict on this input
  VacuousSrcUnsupported, ///< src hit an unsupported construct
  VacuousTgtFuel,        ///< tgt out of fuel: the trial decided nothing
  VacuousTgtUnsupported, ///< tgt hit an unsupported construct
  Cancelled,             ///< the iteration watchdog cut the trial short
};

/// One concrete refinement trial.
TrialOutcome runConcreteTrial(const Function &Src, const Function &Tgt,
                              const std::vector<ConcVal> &Args,
                              const Memory &InitialMem,
                              const ExecOptions &EOpts, std::string &Detail,
                              const std::vector<uint64_t> &ArgBufAddrs,
                              const std::vector<uint64_t> &ArgBufSizes) {
  Memory SrcMem = InitialMem.clone();
  Interpreter SrcInterp(SrcMem, EOpts);
  ExecResult SR = SrcInterp.run(Src, Args);
  if (SR.Status == ExecStatus::Cancelled)
    return TrialOutcome::Cancelled;
  if (SR.Status == ExecStatus::UB)
    return TrialOutcome::VacuousSrcUB;
  if (SR.Status == ExecStatus::OutOfFuel)
    return TrialOutcome::VacuousSrcFuel;
  if (SR.Status != ExecStatus::Ok)
    return TrialOutcome::VacuousSrcUnsupported;

  Memory TgtMem = InitialMem.clone();
  Interpreter TgtInterp(TgtMem, EOpts);
  ExecResult TR = TgtInterp.run(Tgt, Args);

  std::ostringstream OS;
  if (TR.Status == ExecStatus::UB) {
    OS << "target has UB (" << TR.UBReason << ") on input "
       << renderConcVals(Args) << " where source is defined";
    Detail = OS.str();
    return TrialOutcome::Violation;
  }
  if (TR.Status == ExecStatus::Cancelled)
    return TrialOutcome::Cancelled;
  if (TR.Status == ExecStatus::OutOfFuel)
    return TrialOutcome::VacuousTgtFuel;
  if (TR.Status != ExecStatus::Ok)
    return TrialOutcome::VacuousTgtUnsupported;

  // Return-value refinement.
  if (!SR.IsVoid) {
    for (size_t L = 0; L != SR.Ret.Lanes.size(); ++L) {
      const Lane &SL = SR.Ret.Lanes[L];
      const Lane &TL = TR.Ret.Lanes[L];
      if (SL.Poison)
        continue; // poison refined by anything
      if (TL.Poison || TL.Val != SL.Val) {
        OS << "value mismatch on input " << renderConcVals(Args)
           << ": source " << SL.Val.toString() << ", target "
           << (TL.Poison ? std::string("poison") : TL.Val.toString());
        if (SR.Ret.Lanes.size() > 1)
          OS << " (lane " << L << ")";
        Detail = OS.str();
        return TrialOutcome::Violation;
      }
    }
  }

  // Memory refinement over caller-visible argument buffers.
  for (size_t BufIdx = 0; BufIdx != ArgBufAddrs.size(); ++BufIdx) {
    uint64_t Base = ArgBufAddrs[BufIdx], Len = ArgBufSizes[BufIdx];
    for (uint64_t Off = 0; Off != Len; ++Off) {
      uint64_t Addr = Base + Off;
      bool SrcDefined = SrcMem.isInit(Addr) && !SrcMem.isPoison(Addr);
      if (!SrcDefined)
        continue; // undef/poison bytes refined by anything
      bool TgtDefined = TgtMem.isInit(Addr) && !TgtMem.isPoison(Addr);
      if (!TgtDefined || TgtMem.readByte(Addr) != SrcMem.readByte(Addr)) {
        OS << "memory mismatch at byte +" << Off << " of pointer arg #"
           << BufIdx << " on input " << renderConcVals(Args);
        Detail = OS.str();
        return TrialOutcome::Violation;
      }
    }
  }
  return TrialOutcome::NoViolation;
}

/// Concrete-path checker: bounded enumeration / sampling. \p Stats
/// (optional) receives a volatile per-reason vacuous-trial breakdown
/// ("tv.concrete.vacuous.*") so fuel exhaustion is auditable separately
/// from UB/unsupported vacuousness.
TVResult checkConcrete(const Function &Src, const Function &Tgt,
                       const TVOptions &Opts, StatRegistry *Stats) {
  TVResult Res;
  Res.UsedConcretePath = true;

  // Gather argument shapes; compute exhaustive feasibility.
  struct ArgShape {
    bool IsPointer = false;
    unsigned Lanes = 1;
    unsigned Bits = 0; // per lane
    uint64_t BufSize = 0;
  };
  std::vector<ArgShape> Shapes;
  uint64_t TotalBits = 0;
  for (unsigned I = 0; I != Src.getNumArgs(); ++I) {
    Type *T = Src.getArg(I)->getType();
    ArgShape S;
    if (T->isPointerTy()) {
      S.IsPointer = true;
      S.BufSize = std::max<uint64_t>(Src.paramAttrs(I).Dereferenceable, 8);
      TotalBits += 2; // pointer choices are sampled, count a token amount
    } else if (const auto *VT = dyn_cast<VectorType>(T)) {
      S.Lanes = VT->getNumElements();
      S.Bits = VT->getElementType()->getIntegerBitWidth();
      TotalBits += (uint64_t)S.Lanes * S.Bits;
    } else if (T->isIntegerTy()) {
      S.Bits = T->getIntegerBitWidth();
      TotalBits += S.Bits;
    } else {
      Res.Verdict = TVVerdict::Unsupported;
      Res.Detail = "argument type outside checker domain";
      return Res;
    }
    Shapes.push_back(S);
  }

  ExecOptions EOpts;
  EOpts.Fuel = Opts.Fuel;
  EOpts.Token = Opts.Token;

  // Builds the memory image and argument vector for one trial.
  auto buildTrial = [&](RandomGenerator &RNG, uint64_t TrialSeed,
                        bool Exhaustive, uint64_t EnumIndex, Memory &Mem,
                        std::vector<ConcVal> &Args,
                        std::vector<uint64_t> &BufAddrs,
                        std::vector<uint64_t> &BufSizes) {
    EOpts.TrialSeed = TrialSeed;
    uint64_t Cursor = EnumIndex;
    for (unsigned I = 0; I != Shapes.size(); ++I) {
      const ArgShape &S = Shapes[I];
      if (S.IsPointer) {
        bool PassNull = !Src.paramAttrs(I).NonNull &&
                        (Exhaustive ? (Cursor & 1) : RNG.chance(1, 8));
        if (Exhaustive)
          Cursor >>= 2;
        if (PassNull) {
          Args.push_back(ConcVal::scalar(APInt::getZero(PtrBits)));
          BufAddrs.push_back(0);
          BufSizes.push_back(0);
        } else {
          uint64_t Addr = Mem.allocate(S.BufSize, 8);
          // Initialize the buffer with seeded bytes so loads are defined.
          for (uint64_t Off = 0; Off != S.BufSize; ++Off)
            Mem.writeByte(Addr + Off,
                          (uint8_t)oracleHash(TrialSeed ^ 0x5EED, Addr + Off),
                          /*Poison=*/false);
          Args.push_back(ConcVal::scalar(APInt(PtrBits, Addr)));
          BufAddrs.push_back(Addr);
          BufSizes.push_back(S.BufSize);
        }
        continue;
      }
      ConcVal V;
      for (unsigned L = 0; L != S.Lanes; ++L) {
        if (Exhaustive) {
          APInt Bits = APInt::getZero(S.Bits);
          for (unsigned K = 0; K != S.Bits; ++K) {
            if (Cursor & 1)
              Bits.setBit(K);
            Cursor >>= 1;
          }
          V.Lanes.push_back(Lane::of(Bits));
        } else {
          V.Lanes.push_back(Lane::of(RNG.nextAPInt(S.Bits)));
        }
      }
      Args.push_back(V);
    }
  };

  std::string Detail;
  // Clamp the exhaustive path to what a 64-bit trial counter can express:
  // `1ULL << TotalBits` is undefined at 64 bits and beyond, so a caller
  // setting ExhaustiveBits >= 64 must fall back to sampling there.
  bool Exhaustive =
      TotalBits <= Opts.ExhaustiveBits && TotalBits <= MaxExhaustiveBits;
  uint64_t Trials = Exhaustive ? (1ULL << TotalBits) : Opts.ConcreteTrials;
  uint64_t SrcUB = 0, SrcFuel = 0, SrcUnsup = 0, TgtFuel = 0, TgtUnsup = 0;

  auto RecordVacuousStats = [&] {
    if (!Stats)
      return;
    // Volatile: counts actual checker invocations, which the TV cache
    // elides differently per worker count.
    auto Bump = [&](const char *Name, uint64_t N) {
      if (N)
        Stats->counter(Name, Volatility::Volatile) += N;
    };
    Bump("tv.concrete.vacuous.src-ub", SrcUB);
    Bump("tv.concrete.vacuous.src-fuel", SrcFuel);
    Bump("tv.concrete.vacuous.src-unsupported", SrcUnsup);
    Bump("tv.concrete.vacuous.tgt-fuel", TgtFuel);
    Bump("tv.concrete.vacuous.tgt-unsupported", TgtUnsup);
  };

  RandomGenerator RNG(Opts.Seed);
  for (uint64_t T = 0; T != Trials; ++T) {
    Memory Mem;
    std::vector<ConcVal> Args;
    std::vector<uint64_t> BufAddrs, BufSizes;
    uint64_t TrialSeed = oracleHash(Opts.Seed, T);
    buildTrial(RNG, TrialSeed, Exhaustive, T, Mem, Args, BufAddrs, BufSizes);
    switch (runConcreteTrial(Src, Tgt, Args, Mem, EOpts, Detail, BufAddrs,
                             BufSizes)) {
    case TrialOutcome::Violation:
      Res.Verdict = TVVerdict::Incorrect;
      Res.Detail = Detail;
      Res.CounterExample = Args; // one entry per parameter, lanes intact
      RecordVacuousStats();
      return Res;
    case TrialOutcome::NoViolation:
      break;
    case TrialOutcome::VacuousSrcUB:
      ++SrcUB;
      break;
    case TrialOutcome::VacuousSrcFuel:
      ++SrcFuel;
      break;
    case TrialOutcome::VacuousSrcUnsupported:
      ++SrcUnsup;
      break;
    case TrialOutcome::VacuousTgtFuel:
      ++TgtFuel;
      break;
    case TrialOutcome::VacuousTgtUnsupported:
      ++TgtUnsup;
      break;
    case TrialOutcome::Cancelled: {
      Res.Verdict = TVVerdict::Inconclusive;
      std::ostringstream Cut;
      Cut << "cancelled by iteration watchdog after " << T << " of " << Trials
          << " concrete trials";
      Res.Detail = Cut.str();
      if (Stats)
        ++Stats->counter("tv.concrete.cancelled", Volatility::Volatile);
      RecordVacuousStats();
      return Res;
    }
    }
  }
  RecordVacuousStats();

  uint64_t VacuousSrc = SrcUB + SrcFuel + SrcUnsup;
  uint64_t VacuousTgt = TgtFuel + TgtUnsup;
  // True when every indecisive trial ran out of interpreter fuel — a pure
  // step-limit exhaustion, as opposed to UB/unsupported vacuousness. The
  // marker text is what tvVerdictReason keys "inconclusive.fuel" off.
  bool FuelOnly = SrcUB == 0 && SrcUnsup == 0 && TgtUnsup == 0;
  std::ostringstream OS;
  if (VacuousSrc + VacuousTgt == Trials) {
    // Not a single trial compared both sides: "no violation" would be a
    // vacuous truth, not evidence.
    Res.Verdict = TVVerdict::Inconclusive;
    if (VacuousTgt)
      OS << "no trial was decisive: source UB/fuel on " << VacuousSrc
         << " (UB " << SrcUB << ", fuel " << SrcFuel << ", unsupported "
         << SrcUnsup << "), target fuel/unsupported on " << VacuousTgt
         << " (fuel " << TgtFuel << ", unsupported " << TgtUnsup << ") of "
         << Trials << " trials";
    else
      OS << "source function has UB or exceeds fuel on every trial (UB "
         << SrcUB << ", fuel " << SrcFuel << ", unsupported " << SrcUnsup
         << ")";
    if (FuelOnly)
      OS << "; all indecision from fuel exhaustion";
  } else {
    Res.Verdict = TVVerdict::Correct;
    OS << (Exhaustive ? "exhaustive enumeration"
                      : "sampled trials (bounded guarantee)");
    if (VacuousTgt)
      OS << "; " << VacuousTgt << " of " << Trials
         << " trials vacuous on target (fuel " << TgtFuel << ", unsupported "
         << TgtUnsup << ")";
  }
  Res.Detail = OS.str();
  return Res;
}

/// Symbolic-path checker. \p Stats (optional) receives volatile counters
/// distinguishing the two ways a query can stop without an answer:
/// "tv.solver.budget-exhausted" (the per-query conflict budget — a
/// deterministic property of the query) vs "tv.solver.cancelled" (the
/// iteration watchdog cut the search off).
TVResult checkSymbolic(const Function &Src, const Function &Tgt,
                       const TVOptions &Opts, StatRegistry *Stats) {
  TVResult Res;
  Timer EncodeT;
  TermBuilder B;
  FunctionEncoder Enc(B);

  std::vector<EncodedValue> Args = Enc.makeArguments(Src);
  EncodedFunction S = Enc.encode(Src, Args);
  EncodedFunction T = Enc.encode(Tgt, Args);

  // Violation condition:
  //   not src.UB  AND  ( tgt.UB
  //                      OR (not src.RetPoison AND
  //                          (tgt.RetPoison OR tgt.RetVal != src.RetVal)))
  TermRef Violation;
  if (S.RetVal) {
    TermRef ValueBad = B.mkOr(
        T.RetPoison, B.mkNe(T.RetVal, S.RetVal));
    Violation = B.mkAnd(
        B.mkNot(S.UB),
        B.mkOr(T.UB, B.mkAnd(B.mkNot(S.RetPoison), ValueBad)));
  } else {
    Violation = B.mkAnd(B.mkNot(S.UB), T.UB);
  }

  SatSolver Solver;
  BitBlaster BB(Solver);
  BB.assertTrue(Violation);
  Res.EncodeSeconds = EncodeT.seconds();

  Timer SolveT;
  SatSolver::Result R = Solver.solve(Opts.SolverConflictBudget, Opts.Token);
  Res.SolveSeconds = SolveT.seconds();
  Res.SolverStats = Solver.stats();
  if (Stats) {
    Stats->histogram("tv.encode.seconds").record(Res.EncodeSeconds);
    Stats->histogram("tv.solve.seconds").record(Res.SolveSeconds);
  }

  if (R == SatSolver::Result::Unsat) {
    Res.Verdict = TVVerdict::Correct;
    Res.Detail = "refinement proven for all inputs";
    return Res;
  }
  if (R == SatSolver::Result::Unknown) {
    Res.Verdict = TVVerdict::Inconclusive;
    if (Solver.stopCause() == SatSolver::Stop::Cancelled) {
      Res.Detail = "solver cancelled by iteration watchdog";
      if (Stats)
        ++Stats->counter("tv.solver.cancelled", Volatility::Volatile);
    } else {
      Res.Detail = "solver budget exhausted";
      if (Stats)
        ++Stats->counter("tv.solver.budget-exhausted", Volatility::Volatile);
    }
    return Res;
  }

  // SAT: extract the model and CONFIRM it concretely (the freeze encoding
  // may admit spurious models).
  std::vector<ConcVal> ConcArgs;
  for (unsigned I = 0; I != Src.getNumArgs(); ++I) {
    APInt Val = BB.modelValue(Args[I].Val);
    bool Poison = !BB.modelValue(Args[I].Poison).isZero();
    ConcArgs.push_back(Poison ? ConcVal::scalarPoison(Val.getBitWidth())
                              : ConcVal::scalar(Val));
  }

  ExecOptions EOpts;
  EOpts.Fuel = Opts.Fuel;
  EOpts.TrialSeed = Opts.Seed;
  EOpts.Token = Opts.Token;
  Memory Mem;
  std::string Detail;
  TrialOutcome Replay =
      runConcreteTrial(Src, Tgt, ConcArgs, Mem, EOpts, Detail, {}, {});
  if (Replay == TrialOutcome::Violation) {
    Res.Verdict = TVVerdict::Incorrect;
    Res.Detail = Detail;
    Res.CounterExample = ConcArgs; // one entry per parameter, poison kept
    Res.UsedConcretePath = true;   // the replay decided the verdict
    return Res;
  }
  if (Replay == TrialOutcome::Cancelled) {
    Res.Verdict = TVVerdict::Inconclusive;
    Res.Detail = "cancelled by iteration watchdog during counterexample "
                 "replay";
    return Res;
  }

  // The model did not replay as a violation under the interpreter's
  // deterministic undef/freeze resolution; the SAT hit was an artifact of
  // the freeze fresh-variable encoding. Report inconclusive rather than a
  // false positive.
  Res.Verdict = TVVerdict::Inconclusive;
  Res.Detail = "solver model not confirmed by concrete replay";
  return Res;
}

} // namespace

std::string alive::tvVerdictReason(const TVResult &R) {
  auto Has = [&R](const char *Needle) {
    return R.Detail.find(Needle) != std::string::npos;
  };
  switch (R.Verdict) {
  case TVVerdict::Correct:
    return "correct";
  case TVVerdict::Incorrect:
    return "incorrect";
  case TVVerdict::Unsupported:
    if (Has("signature mismatch"))
      return "unsupported.signature";
    if (Has("declaration"))
      return "unsupported.declaration";
    return "unsupported.domain";
  case TVVerdict::Inconclusive:
    // Order matters: a budget-exhausted symbolic check that degraded to
    // the concrete path carries the solver detail as a prefix, and a
    // watchdog cancellation trumps everything (the check never finished,
    // so no other reason is meaningful).
    if (Has("cancelled by iteration watchdog"))
      return "inconclusive.cancelled";
    if (Has("solver budget exhausted"))
      return "inconclusive.budget";
    if (Has("not confirmed"))
      return "inconclusive.unconfirmed-model";
    if (Has("all indecision from fuel exhaustion"))
      return "inconclusive.fuel";
    if (Has("no trial was decisive") || Has("UB or exceeds fuel"))
      return "inconclusive.vacuous";
    return "inconclusive.other";
  }
  return "?";
}

namespace {

/// Times and counts one symbolic query (latency + solver effort).
TVResult instrumentedSymbolic(const Function &Src, const Function &Tgt,
                              const TVOptions &Opts, StatRegistry *Stats) {
  ScopedTimer T(Stats ? &Stats->histogram("tv.query.symbolic.seconds")
                      : nullptr);
  TVResult R = checkSymbolic(Src, Tgt, Opts, Stats);
  if (Stats) {
    ++Stats->counter("tv.query.symbolic", Volatility::Volatile);
    Stats->counter("tv.solver.conflicts", Volatility::Volatile) +=
        R.SolverStats.Conflicts;
    Stats->counter("tv.solver.decisions", Volatility::Volatile) +=
        R.SolverStats.Decisions;
  }
  return R;
}

/// Times and counts one bounded concrete query.
TVResult instrumentedConcrete(const Function &Src, const Function &Tgt,
                              const TVOptions &Opts, StatRegistry *Stats) {
  ScopedTimer T(Stats ? &Stats->histogram("tv.query.concrete.seconds")
                      : nullptr);
  if (Stats)
    ++Stats->counter("tv.query.concrete", Volatility::Volatile);
  return checkConcrete(Src, Tgt, Opts, Stats);
}

} // namespace

TVResult alive::checkRefinement(const Function &Src, const Function &Tgt,
                                const TVOptions &Opts, StatRegistry *Stats) {
  TVResult Res;
  if (!sameSignature(Src, Tgt)) {
    Res.Verdict = TVVerdict::Unsupported;
    Res.Detail = "signature mismatch between source and target";
    return Res;
  }
  if (Src.isDeclaration() || Tgt.isDeclaration()) {
    Res.Verdict = TVVerdict::Unsupported;
    Res.Detail = "declaration";
    return Res;
  }

  std::string Why;
  if (FunctionEncoder::isSymbolicallySupported(Src, Why) &&
      FunctionEncoder::isSymbolicallySupported(Tgt, Why)) {
    // Very wide functions make bit-blasting explode; use the concrete path
    // above a size heuristic.
    uint64_t Cost = 0;
    for (const Function *F : {&Src, &Tgt})
      for (BasicBlock *BB : F->blocks())
        for (Instruction *I : BB->insts()) {
          unsigned W = I->getType()->isIntegerTy()
                           ? I->getType()->getIntegerBitWidth()
                           : 1;
          bool Quadratic =
              isa<BinaryInst>(I) &&
              (cast<BinaryInst>(I)->getBinOp() == BinaryInst::Mul ||
               BinaryInst::isDivRem(cast<BinaryInst>(I)->getBinOp()));
          Cost += Quadratic ? (uint64_t)W * W : W;
        }
    if (Cost <= 1u << 17) {
      // Concrete prescreen: a handful of cheap sampled interpreter trials
      // before bit-blasting, so mutants with blatant counterexamples never
      // pay for a SAT query. Sequential rather than a true race, which
      // keeps the verdict a pure function of (Src, Tgt, Opts) — the
      // property the verdict caches rely on.
      if (Opts.PrescreenTrials) {
        TVOptions POpts = Opts;
        POpts.ConcreteTrials = Opts.PrescreenTrials;
        POpts.ExhaustiveBits = 0; // always sample: the prescreen stays cheap
        ScopedTimer PT(Stats ? &Stats->histogram("tv.prescreen.seconds")
                             : nullptr);
        TVResult PR = checkConcrete(Src, Tgt, POpts, Stats);
        if (Stats)
          ++Stats->counter("tv.prescreen", Volatility::Volatile);
        if (PR.Verdict == TVVerdict::Incorrect) {
          if (Stats)
            ++Stats->counter("tv.prescreen.hit", Volatility::Volatile);
          return PR;
        }
        // No violation found (or vacuous/cancelled): fall through to the
        // symbolic proof, which also handles the cancelled case.
      }
      TVResult R = instrumentedSymbolic(Src, Tgt, Opts, Stats);
      // Solver budget exhausted (Alive2's SMT-timeout analog): degrade to
      // the bounded concrete check rather than giving up entirely.
      if (R.Verdict != TVVerdict::Inconclusive)
        return R;
      // A watchdog cancellation is not a budget problem the concrete path
      // could rescue — the whole iteration is being cut off. Propagate
      // immediately instead of burning the remaining time on trials.
      if (Opts.Token && Opts.Token->cancelled())
        return R;
      if (Stats)
        ++Stats->counter("tv.symbolic.fallback", Volatility::Volatile);
      TVResult CR = instrumentedConcrete(Src, Tgt, Opts, Stats);
      // Carry the abandoned symbolic attempt's cost into the final
      // result: the budget-exhausted search is exactly what the profiler
      // must attribute to this query.
      CR.SolverStats = R.SolverStats;
      CR.EncodeSeconds = R.EncodeSeconds;
      CR.SolveSeconds = R.SolveSeconds;
      if (CR.Verdict == TVVerdict::Incorrect)
        return CR;
      CR.Verdict = TVVerdict::Inconclusive;
      CR.Detail = R.Detail + "; no violation in bounded concrete trials";
      return CR;
    }
  }
  return instrumentedConcrete(Src, Tgt, Opts, Stats);
}

TVResult alive::checkSelfRefinement(const Function &F, const TVOptions &Opts) {
  return checkRefinement(F, F, Opts);
}
