//===- tv/Counterexample.h - Counterexample rendering ----------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place counterexamples get pretty-printed. The refinement
/// checker embeds the compact tuple form in its Detail strings, amut-tv
/// echoes it per failing function, and the forensics bundle writer
/// persists the per-parameter table — all through the two helpers here
/// (previously the formatting lived inside RefinementChecker and was
/// re-assembled ad hoc by the CLI).
///
//===----------------------------------------------------------------------===//

#ifndef TV_COUNTEREXAMPLE_H
#define TV_COUNTEREXAMPLE_H

#include "ir/Module.h"
#include "tv/RefinementChecker.h"

#include <string>
#include <vector>

namespace alive {

/// Renders concrete argument values ("(3, <1, poison>, poison)") in
/// parameter order — the compact form used in TVResult::Detail.
std::string renderConcVals(const std::vector<ConcVal> &Args);

/// Renders just the per-parameter input lines of a counterexample, keyed
/// by \p Src's parameter names and types ("  %x : i8 = 3\n" per line).
/// Used by amut-tv under its per-function verdict line.
std::string renderCounterexampleInputs(const Function &Src,
                                       const std::vector<ConcVal> &Args);

/// Renders a verdict's counterexample as a per-parameter table keyed by
/// \p Src's parameter names and types:
///
///   verdict: incorrect
///   detail:  value mismatch on input (3): source 5, target 1
///   input:
///     %x : i8 = 3
///     %v : <2 x i8> = <1, poison>
///
/// Works for any TVResult: without a counterexample (correct /
/// inconclusive / crash bundles) the input section is omitted.
std::string renderCounterexampleTable(const Function &Src, const TVResult &R);

} // namespace alive

#endif // TV_COUNTEREXAMPLE_H
