//===- tv/SharedTVCache.cpp - Cross-worker TV verdict cache -----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tv/SharedTVCache.h"

#include "tv/TVCache.h"

#include <functional>

using namespace alive;

namespace {

size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

} // namespace

SharedTVCache::SharedTVCache(size_t Capacity, size_t Shards_) {
  size_t N = roundUpPow2(Shards_ ? Shards_ : DefaultShards);
  CapacityPerShard = std::max<size_t>(1, (Capacity ? Capacity : 1) / N);
  Shards.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::string SharedTVCache::makeKey(std::string_view CanonSrcText,
                                   std::string_view CanonTgtText,
                                   const TVOptions &Opts) {
  std::string Key;
  Key.reserve(64 + CanonSrcText.size() + CanonTgtText.size() + 1);
  if (!TVCache::appendKeyHeader(Key, CanonSrcText, CanonTgtText, Opts))
    return std::string();
  Key += CanonSrcText;
  Key += '\x1f';
  Key += CanonTgtText;
  return Key;
}

SharedTVCache::Shard &SharedTVCache::shardFor(const std::string &Key) {
  // Shard count is a power of two, so the hash's low bits pick the stripe.
  return *Shards[std::hash<std::string_view>()(Key) & (Shards.size() - 1)];
}

std::unique_lock<std::mutex> SharedTVCache::lockShard(Shard &S) {
  std::unique_lock<std::mutex> G(S.Lock, std::try_to_lock);
  if (!G.owns_lock()) {
    S.LockWaits.fetch_add(1, std::memory_order_relaxed);
    G.lock();
  }
  return G;
}

bool SharedTVCache::lookup(const std::string &Key, TVResult &Out) {
  Shard &S = shardFor(Key);
  auto G = lockShard(S);
  auto It = S.Map.find(std::string_view(Key));
  if (It == S.Map.end()) {
    S.Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  S.Hits.fetch_add(1, std::memory_order_relaxed);
  S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
  Out = It->second->second; // by value: safe past a concurrent eviction
  return true;
}

bool SharedTVCache::insert(const std::string &Key, const TVResult &R) {
  Shard &S = shardFor(Key);
  auto G = lockShard(S);
  if (S.Map.count(std::string_view(Key)))
    return false;
  bool Evicted = false;
  if (S.Map.size() >= CapacityPerShard) {
    Entry &Old = S.LRU.back();
    S.Map.erase(std::string_view(Old.first));
    S.LRU.pop_back();
    Evicted = true;
    S.Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  S.LRU.emplace_front(Key, R);
  S.Map.emplace(std::string_view(S.LRU.front().first), S.LRU.begin());
  S.Inserts.fetch_add(1, std::memory_order_relaxed);
  return Evicted;
}

size_t SharedTVCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> G(S->Lock);
    N += S->Map.size();
  }
  return N;
}

std::vector<ShardHeat> SharedTVCache::shardHeat() const {
  std::vector<ShardHeat> Out;
  Out.reserve(Shards.size());
  for (const auto &S : Shards) {
    ShardHeat H;
    H.Hits = S->Hits.load(std::memory_order_relaxed);
    H.Misses = S->Misses.load(std::memory_order_relaxed);
    H.Evictions = S->Evictions.load(std::memory_order_relaxed);
    H.Inserts = S->Inserts.load(std::memory_order_relaxed);
    H.LockWaits = S->LockWaits.load(std::memory_order_relaxed);
    Out.push_back(H);
  }
  return Out;
}
