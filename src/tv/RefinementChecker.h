//===- tv/RefinementChecker.h - Translation validation ---------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Alive2 substitute: checks that a target function refines a source
/// function. Refinement holds when, for every input:
///
///   - if the source has undefined behavior, anything is allowed;
///   - otherwise the target must not have UB, and
///   - if the source returns poison the target may return anything;
///   - otherwise the target must return the same non-poison value (and,
///     for memory functions, leave refining contents in escaped memory).
///
/// Two proof paths:
///   1. symbolic — loop-free, memory-free integer functions are encoded as
///      bit-vector terms (value + poison wires + a UB accumulator) and the
///      negated refinement condition goes to the CDCL SAT solver; UNSAT is
///      a proof over all inputs, SAT yields a counterexample that is then
///      CONFIRMED by concrete interpretation (guarding against the
///      freeze/undef encoding approximations);
///   2. concrete — functions with memory, vectors, pointers or loops are
///      checked by bounded enumeration: exhaustive when the input domain is
///      small, seeded sampling with corner values otherwise (the documented
///      bounded substitution for Alive2's SMT memory model).
///
//===----------------------------------------------------------------------===//

#ifndef TV_REFINEMENTCHECKER_H
#define TV_REFINEMENTCHECKER_H

#include "ir/Interpreter.h"
#include "ir/Module.h"
#include "smt/SatSolver.h"
#include "support/Cancellation.h"
#include "support/Telemetry.h"

#include <string>
#include <vector>

namespace alive {

enum class TVVerdict {
  Correct,      ///< refinement proven (symbolic) / no violation (bounded)
  Incorrect,    ///< confirmed counterexample — a miscompilation
  Unsupported,  ///< outside the checker's domain ("Alive2 error")
  Inconclusive, ///< budget exhausted or unconfirmed model
};

const char *tvVerdictName(TVVerdict V);

/// Checker configuration.
struct TVOptions {
  /// SAT conflict budget per query (0 = unlimited). Mirrors Alive2's SMT
  /// timeout: queries past the budget fall back to concrete sampling.
  uint64_t SolverConflictBudget = 150000;
  /// Number of sampled trials on the concrete path.
  unsigned ConcreteTrials = 48;
  /// Enumerate exhaustively when the summed argument width is at most this
  /// many bits.
  unsigned ExhaustiveBits = 14;
  /// Interpreter fuel per trial.
  uint64_t Fuel = 200000;
  /// Base seed for sampled trials.
  uint64_t Seed = 0xA11CE;
  /// Concrete prescreen before the symbolic path: this many cheap sampled
  /// interpreter trials run first, and a violation short-circuits the SAT
  /// query entirely (the in-process analogue of racing the interpreter
  /// against the solver — but sequential, so the verdict stays a pure
  /// function of the inputs). 0 disables. Part of the cache-key
  /// fingerprint: the prescreen changes which Detail/counterexample an
  /// Incorrect verdict carries.
  unsigned PrescreenTrials = 0;
  /// Optional iteration watchdog, threaded into the solver and the
  /// interpreter. Not part of the verdict: TVCache::makeKey deliberately
  /// excludes it (a cancelled check is never cached).
  CancellationToken *Token = nullptr;
};

/// Result of one refinement check.
struct TVResult {
  TVVerdict Verdict = TVVerdict::Unsupported;
  /// Human-readable detail (counterexample or unsupported reason).
  std::string Detail;
  /// Counterexample argument values for an Incorrect verdict: exactly one
  /// entry per function parameter, in parameter order, with the full lane
  /// structure (vector args keep every lane, poison args/lanes are marked
  /// poison). Replaying the list through amut-tv therefore lines up with
  /// the parameter list — earlier versions dropped poison and vector
  /// arguments, silently misaligning the remaining values.
  std::vector<ConcVal> CounterExample;
  /// True when concrete interpretation decided the verdict — either the
  /// bounded-enumeration path, or the concrete replay that confirms a
  /// symbolic counterexample model.
  bool UsedConcretePath = false;
  /// Solver statistics (symbolic path only).
  SatSolver::Stats SolverStats;
  /// Wall-clock split of the symbolic path: term construction + bit
  /// blasting vs. the SAT search itself. Wall-clock, so volatile — and a
  /// cache hit replays the *first* computation's numbers, which is exactly
  /// what cost attribution wants (the price of the query, paid once).
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
};

/// A telemetry slug for \p R: "correct", "incorrect",
/// "unsupported.<reason>" or "inconclusive.<reason>" — the per-verdict
/// breakdown key used by the run report. Deterministic per (Src, Tgt,
/// Opts), so counting slugs per established verdict (cache hits included)
/// is worker-count independent.
std::string tvVerdictReason(const TVResult &R);

/// Checks whether \p Tgt refines \p Src. The functions must have identical
/// signatures (same argument count/types and return type).
///
/// \p Stats (optional) receives query telemetry: "tv.query.symbolic" /
/// "tv.query.concrete" invocation counts with matching ".seconds" latency
/// histograms, solver effort counters, and "tv.symbolic.fallback" for
/// budget-exhausted degradations to the concrete path. All volatile: they
/// count actual checker invocations, which the TV verdict cache elides
/// differently per worker.
TVResult checkRefinement(const Function &Src, const Function &Tgt,
                         const TVOptions &Opts = TVOptions(),
                         StatRegistry *Stats = nullptr);

/// Self-check used by the fuzzing loop's preprocessing step: verifies the
/// checker can process \p F at all and that F refines itself. Mirrors the
/// paper's "drop functions Alive2 cannot handle" filtering (§III-A).
TVResult checkSelfRefinement(const Function &F,
                             const TVOptions &Opts = TVOptions());

} // namespace alive

#endif // TV_REFINEMENTCHECKER_H
