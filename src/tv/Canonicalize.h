//===- tv/Canonicalize.h - Structural canonicalization of TV pairs -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization for the shared TV verdict cache: maps structurally
/// equal (source, target) pairs — pairs that differ only in value/block
/// names, in the function name, or in the operand order of commutative
/// instructions — onto one canonical printed form, so their verdicts share
/// one cache entry across workers and across mutation lineages.
///
/// Two rewrites, applied to a private clone (originals are never touched):
///
///   1. *Commutative-operand normalization*: the operands of commutative
///      binary ops (add, mul, and, or, xor) and of every icmp (with the
///      predicate swapped accordingly) are ordered by a canonical operand
///      rank — arguments (by index) before instructions (by program-order
///      position) before constants (by printed text). Mirrors LLVM's
///      "constants to the RHS" convention and is order-stable: two
///      operand-swapped copies of one function normalize identically.
///
///   2. *Alpha-renaming*: every argument, block and instruction name is
///      cleared, so the printer's slot numbering (%0, %1, ...) assigns
///      canonical sequential names. Callee names are deliberately kept:
///      the concrete environment oracle models declared functions from the
///      callee *name*, so renaming a callee would change the verdict.
///
/// The canonical pair is what the shared cache keys on — and what the
/// checker runs on when the key misses. Verdicts are therefore a pure
/// function of the canonical key: a hit replays byte-for-byte what a fresh
/// computation would produce, which keeps the deterministic report section
/// byte-equal across worker counts even though workers race on the cache.
/// Both rewrites preserve function semantics and the argument list, so an
/// Incorrect verdict's counterexample remains valid for the originals.
///
//===----------------------------------------------------------------------===//

#ifndef TV_CANONICALIZE_H
#define TV_CANONICALIZE_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace alive {

/// A canonicalized (source, target) clone pair. Null \c M means the pair
/// was not canonicalizable (it depends on module context beyond the pair:
/// calls into defined non-intrinsic functions).
struct CanonicalPair {
  /// Owns the canonical clones (and declarations of their callees).
  std::unique_ptr<Module> M;
  Function *Src = nullptr;
  Function *Tgt = nullptr;
  /// Canonical printed forms — the text the shared cache keys on.
  std::string SrcText;
  std::string TgtText;
};

/// Normalizes \p F in place: commutative-operand ordering, then full
/// alpha-renaming (argument/block/instruction names cleared). Exposed for
/// unit tests; campaign code uses canonicalizePair.
void canonicalizeFunction(Function &F);

/// Clones \p Src and \p Tgt into a fresh module under fixed names and
/// canonicalizes both. \returns a pair with null \c M when either function
/// calls a defined non-intrinsic function (the verdict then depends on
/// callee bodies the canonical text cannot capture — such pairs must be
/// verified on the originals and never cached).
CanonicalPair canonicalizePair(const Function &Src, const Function &Tgt);

} // namespace alive

#endif // TV_CANONICALIZE_H
