//===- core/Checkpoint.cpp - Campaign checkpoint/resume --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"

#include "support/AtomicFile.h"
#include "support/JSON.h"
#include "support/Telemetry.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace alive;

namespace {

uint64_t doubleBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

double bitsDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

/// Atomic + durable write (tmp, fsync, rename) under the "checkpoint.*"
/// fault points. A kill at any point leaves either the old snapshot or
/// the new one, never a torn file.
bool writeFileAtomic(const std::string &Path, const std::string &Content,
                     std::string &Error) {
  return writeFileAtomicDurable(Path, Content, "checkpoint", Error);
}

bool slurp(const std::string &Path, std::string &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

std::string shardPath(const std::string &Dir, unsigned Index) {
  return Dir + "/shard-" + std::to_string(Index) + ".json";
}

/// The FuzzStats fields, serialized by name. Doubles go out as raw bit
/// patterns (the "_bits" suffix marks them) so they restore exactly.
void writeStats(std::ostream &OS, const FuzzStats &S,
                const std::string &Ind) {
  auto U = [&](const char *Name, uint64_t V, bool Comma = true) {
    OS << Ind << "\"" << Name << "\": " << V << (Comma ? ",\n" : "\n");
  };
  auto D = [&](const char *Name, double V, bool Comma = true) {
    U((std::string(Name) + "_bits").c_str(), doubleBits(V), Comma);
  };
  OS << "{\n";
  U("mutants_generated", S.MutantsGenerated);
  U("mutations_applied", S.MutationsApplied);
  U("optimized", S.Optimized);
  U("verified", S.Verified);
  U("verify_skipped", S.VerifySkipped);
  U("tv_cache_hits", S.TVCacheHits);
  U("tv_cache_misses", S.TVCacheMisses);
  U("tv_cache_evictions", S.TVCacheEvictions);
  U("refinement_failures", S.RefinementFailures);
  U("crashes", S.Crashes);
  U("inconclusive", S.Inconclusive);
  U("functions_dropped", S.FunctionsDropped);
  U("invalid_mutants", S.InvalidMutants);
  U("mutants_saved", S.MutantsSaved);
  U("save_failures", S.SaveFailures);
  U("bundles_written", S.BundlesWritten);
  U("bundle_failures", S.BundleFailures);
  U("timeouts", S.Timeouts);
  D("mutate_seconds", S.MutateSeconds);
  D("optimize_seconds", S.OptimizeSeconds);
  D("verify_seconds", S.VerifySeconds);
  D("overhead_seconds", S.OverheadSeconds);
  D("worker_seconds", S.WorkerSeconds);
  D("total_seconds", S.TotalSeconds, /*Comma=*/false);
  OS << Ind.substr(2) << "}";
}

void readStats(const JSONValue &J, FuzzStats &S) {
  S.MutantsGenerated = J.getUInt("mutants_generated");
  S.MutationsApplied = J.getUInt("mutations_applied");
  S.Optimized = J.getUInt("optimized");
  S.Verified = J.getUInt("verified");
  S.VerifySkipped = J.getUInt("verify_skipped");
  S.TVCacheHits = J.getUInt("tv_cache_hits");
  S.TVCacheMisses = J.getUInt("tv_cache_misses");
  S.TVCacheEvictions = J.getUInt("tv_cache_evictions");
  S.RefinementFailures = J.getUInt("refinement_failures");
  S.Crashes = J.getUInt("crashes");
  S.Inconclusive = J.getUInt("inconclusive");
  S.FunctionsDropped = J.getUInt("functions_dropped");
  S.InvalidMutants = J.getUInt("invalid_mutants");
  S.MutantsSaved = J.getUInt("mutants_saved");
  S.SaveFailures = J.getUInt("save_failures");
  S.BundlesWritten = J.getUInt("bundles_written");
  S.BundleFailures = J.getUInt("bundle_failures");
  S.Timeouts = J.getUInt("timeouts");
  S.MutateSeconds = bitsDouble(J.getUInt("mutate_seconds_bits"));
  S.OptimizeSeconds = bitsDouble(J.getUInt("optimize_seconds_bits"));
  S.VerifySeconds = bitsDouble(J.getUInt("verify_seconds_bits"));
  S.OverheadSeconds = bitsDouble(J.getUInt("overhead_seconds_bits"));
  S.WorkerSeconds = bitsDouble(J.getUInt("worker_seconds_bits"));
  S.TotalSeconds = bitsDouble(J.getUInt("total_seconds_bits"));
}

} // namespace

uint64_t alive::hashModuleText(const std::string &Text) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

bool alive::writeCheckpointMeta(const std::string &Dir,
                                const CheckpointMeta &M, std::string &Error) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create checkpoint directory '" + Dir +
            "': " + EC.message();
    return false;
  }
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"schema_version\": " << CheckpointSchemaVersion << ",\n";
  OS << "  \"passes\": ";
  writeJSONString(OS, M.Passes);
  OS << ",\n";
  OS << "  \"iterations\": " << M.Iterations << ",\n";
  OS << "  \"base_seed\": " << M.BaseSeed << ",\n";
  OS << "  \"jobs\": " << M.Jobs << ",\n";
  OS << "  \"max_mutations_per_function\": " << M.MaxMutationsPerFunction
     << ",\n";
  OS << "  \"inject_bugs\": " << (M.InjectBugs ? "true" : "false") << ",\n";
  OS << "  \"feedback\": " << (M.FeedbackOn ? "true" : "false") << ",\n";
  OS << "  \"epoch_length\": " << M.EpochLength << ",\n";
  OS << "  \"module_hash\": " << M.ModuleHash << "\n";
  OS << "}\n";
  return writeFileAtomic(Dir + "/meta.json", OS.str(), Error);
}

bool alive::readCheckpointMeta(const std::string &Dir, CheckpointMeta &M,
                               std::string &Error) {
  std::string Text;
  if (!slurp(Dir + "/meta.json", Text, Error))
    return false;
  JSONValue J;
  if (!parseJSON(Text, J, Error)) {
    Error = "meta.json: " + Error;
    return false;
  }
  if (J.getUInt("schema_version") != CheckpointSchemaVersion) {
    Error = "unsupported checkpoint schema version " +
            std::to_string(J.getUInt("schema_version"));
    return false;
  }
  M.Passes = J.getString("passes");
  M.Iterations = J.getUInt("iterations");
  M.BaseSeed = J.getUInt("base_seed");
  M.Jobs = (unsigned)J.getUInt("jobs");
  M.MaxMutationsPerFunction =
      (unsigned)J.getUInt("max_mutations_per_function");
  M.InjectBugs = J.getBool("inject_bugs", false);
  M.FeedbackOn = J.getBool("feedback", false);
  M.EpochLength = (unsigned)J.getUInt("epoch_length");
  M.ModuleHash = J.getUInt("module_hash");
  return true;
}

bool alive::checkpointMetaMatches(const CheckpointMeta &Stored,
                                  const CheckpointMeta &Current,
                                  std::string &Error) {
  auto Mismatch = [&](const std::string &What, const std::string &Was,
                      const std::string &Is) {
    Error = "checkpoint mismatch: " + What + " was " + Was + ", resuming " +
            "with " + Is;
    return false;
  };
  if (Stored.Passes != Current.Passes)
    return Mismatch("pass pipeline", "'" + Stored.Passes + "'",
                    "'" + Current.Passes + "'");
  if (Stored.Iterations != Current.Iterations)
    return Mismatch("-n", std::to_string(Stored.Iterations),
                    std::to_string(Current.Iterations));
  if (Stored.BaseSeed != Current.BaseSeed)
    return Mismatch("-seed", std::to_string(Stored.BaseSeed),
                    std::to_string(Current.BaseSeed));
  if (Stored.Jobs != Current.Jobs)
    return Mismatch("-j", std::to_string(Stored.Jobs),
                    std::to_string(Current.Jobs));
  if (Stored.MaxMutationsPerFunction != Current.MaxMutationsPerFunction)
    return Mismatch("-max-mutations",
                    std::to_string(Stored.MaxMutationsPerFunction),
                    std::to_string(Current.MaxMutationsPerFunction));
  if (Stored.InjectBugs != Current.InjectBugs)
    return Mismatch("-inject-bugs", Stored.InjectBugs ? "on" : "off",
                    Current.InjectBugs ? "on" : "off");
  if (Stored.FeedbackOn != Current.FeedbackOn)
    return Mismatch("-feedback", Stored.FeedbackOn ? "on" : "off",
                    Current.FeedbackOn ? "on" : "off");
  if (Stored.EpochLength != Current.EpochLength)
    return Mismatch("-feedback-epoch", std::to_string(Stored.EpochLength),
                    std::to_string(Current.EpochLength));
  if (Stored.ModuleHash != Current.ModuleHash)
    return Mismatch("the input module", "a different module",
                    "this one (content hash differs)");
  return true;
}

bool alive::writeWorkerCheckpoint(const std::string &Dir,
                                  const WorkerCheckpoint &W,
                                  std::string &Error) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"index\": " << W.Index << ",\n";
  OS << "  \"lo\": " << W.Lo << ",\n";
  OS << "  \"hi\": " << W.Hi << ",\n";
  OS << "  \"next\": " << W.Next << ",\n";
  OS << "  \"stats\": ";
  writeStats(OS, W.Stats, "    ");
  OS << ",\n";
  OS << "  \"bugs\": [";
  for (size_t I = 0; I != W.Bugs.size(); ++I) {
    const BugRecord &B = W.Bugs[I];
    OS << (I ? ",\n" : "\n") << "    {\"kind\": \""
       << (B.Kind == BugRecord::Miscompile ? "miscompile" : "crash")
       << "\", \"function\": ";
    writeJSONString(OS, B.FunctionName);
    OS << ", \"seed\": " << B.MutantSeed << ", \"detail\": ";
    writeJSONString(OS, B.Detail);
    OS << ", \"issue_id\": ";
    writeJSONString(OS, B.IssueId);
    OS << ", \"bundle_path\": ";
    writeJSONString(OS, B.BundlePath);
    OS << ", \"mutant_ir\": ";
    writeJSONString(OS, B.MutantIR);
    OS << "}";
  }
  OS << (W.Bugs.empty() ? "" : "\n  ") << "],\n";
  OS << "  \"counters\": [";
  for (size_t I = 0; I != W.Counters.size(); ++I) {
    const WorkerCheckpoint::Counter &C = W.Counters[I];
    OS << (I ? ",\n" : "\n") << "    {\"name\": ";
    writeJSONString(OS, C.Name);
    OS << ", \"value\": " << C.Value << ", \"volatile\": "
       << (C.IsVolatile ? "true" : "false") << "}";
  }
  OS << (W.Counters.empty() ? "" : "\n  ") << "]\n";
  OS << "}\n";
  return writeFileAtomic(shardPath(Dir, W.Index), OS.str(), Error);
}

bool alive::readWorkerCheckpoint(const std::string &Dir, unsigned Index,
                                 WorkerCheckpoint &W, std::string &Error) {
  std::string Path = shardPath(Dir, Index);
  std::string Text;
  if (!slurp(Path, Text, Error))
    return false;
  JSONValue J;
  if (!parseJSON(Text, J, Error)) {
    // A parse failure whose offset sits at end-of-input is a truncation
    // (a torn or partial write); anything else is corruption. Either way
    // the message must name the file and the byte offset so the operator
    // knows exactly which artifact to discard.
    bool Truncated =
        Error.find("unexpected end of input") != std::string::npos ||
        Error.find("at offset " + std::to_string(Text.size()) + ":") !=
            std::string::npos;
    Error = std::string(Truncated ? "truncated" : "corrupt") +
            " checkpoint '" + Path + "' (" + std::to_string(Text.size()) +
            " bytes): " + Error;
    return false;
  }
  W.Index = (unsigned)J.getUInt("index");
  W.Lo = J.getUInt("lo");
  W.Hi = J.getUInt("hi");
  W.Next = J.getUInt("next");
  if (W.Index != Index || W.Next < W.Lo || W.Next > W.Hi) {
    Error = "corrupt checkpoint '" + Path +
            "': inconsistent index or seed cursor";
    return false;
  }
  if (const JSONValue *S = J.find("stats"))
    readStats(*S, W.Stats);
  if (const JSONValue *Bugs = J.find("bugs"); Bugs && Bugs->isArray())
    for (const JSONValue &E : Bugs->Arr) {
      BugRecord B;
      B.Kind = E.getString("kind") == "miscompile" ? BugRecord::Miscompile
                                                   : BugRecord::Crash;
      B.FunctionName = E.getString("function");
      B.MutantSeed = E.getUInt("seed");
      B.Detail = E.getString("detail");
      B.IssueId = E.getString("issue_id");
      B.BundlePath = E.getString("bundle_path");
      B.MutantIR = E.getString("mutant_ir");
      W.Bugs.push_back(std::move(B));
    }
  if (const JSONValue *Cs = J.find("counters"); Cs && Cs->isArray())
    for (const JSONValue &E : Cs->Arr) {
      WorkerCheckpoint::Counter C;
      C.Name = E.getString("name");
      C.Value = E.getUInt("value");
      C.IsVolatile = E.getBool("volatile", false);
      W.Counters.push_back(std::move(C));
    }
  return true;
}

WorkerCheckpoint alive::snapshotWorker(unsigned Index, uint64_t Lo,
                                       uint64_t Hi, uint64_t Next,
                                       const FuzzerLoop &Loop) {
  WorkerCheckpoint W;
  W.Index = Index;
  W.Lo = Lo;
  W.Hi = Hi;
  W.Next = Next;
  W.Stats = Loop.stats();
  W.Bugs = Loop.bugs();
  Loop.registry().forEachCounter(
      Volatility::Deterministic, [&](const std::string &Name, uint64_t V) {
        W.Counters.push_back({Name, V, /*IsVolatile=*/false});
      });
  Loop.registry().forEachCounter(
      Volatility::Volatile, [&](const std::string &Name, uint64_t V) {
        W.Counters.push_back({Name, V, /*IsVolatile=*/true});
      });
  return W;
}

void alive::restoreWorker(const WorkerCheckpoint &W, FuzzerLoop &Loop) {
  Loop.restoreState(W.Stats, W.Bugs);
  for (const WorkerCheckpoint::Counter &C : W.Counters)
    Loop.mutableRegistry().counter(C.Name, C.IsVolatile
                                               ? Volatility::Volatile
                                               : Volatility::Deterministic) =
        C.Value;
}

bool alive::writeFeedbackCheckpoint(const std::string &Dir,
                                    const FeedbackCheckpoint &F,
                                    std::string &Error) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"next_offset\": " << F.NextOffset << ",\n";
  OS << "  \"coverage\": ";
  F.Global.writeJSON(OS, "  ");
  OS << ",\n";
  OS << "  \"schedule\": ";
  F.Schedule.writeJSON(OS, "  ");
  OS << "\n}\n";
  return writeFileAtomic(Dir + "/feedback.json", OS.str(), Error);
}

bool alive::readFeedbackCheckpoint(const std::string &Dir,
                                   FeedbackCheckpoint &F,
                                   std::string &Error) {
  std::string Text;
  if (!slurp(Dir + "/feedback.json", Text, Error))
    return false;
  JSONValue J;
  if (!parseJSON(Text, J, Error)) {
    Error = "feedback.json: " + Error;
    return false;
  }
  F.NextOffset = J.getUInt("next_offset");
  const JSONValue *Cov = J.find("coverage");
  if (!Cov || !FeedbackMap::readJSON(*Cov, F.Global, Error)) {
    Error = "feedback.json: " + (Error.empty() ? "missing coverage" : Error);
    return false;
  }
  const JSONValue *Sch = J.find("schedule");
  if (!Sch || !ScheduleState::readJSON(*Sch, F.Schedule, Error)) {
    Error = "feedback.json: " + (Error.empty() ? "missing schedule" : Error);
    return false;
  }
  return true;
}
