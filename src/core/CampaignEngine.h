//===- core/CampaignEngine.h - Parallel sharded campaign engine -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel campaign engine that shards the seed space
/// [BaseSeed, BaseSeed+Iterations) across J worker threads. Each worker
/// owns a private FuzzerLoop — its own clone of the master module, its own
/// RandomGenerator stream, PassManager, bug-injection context view and
/// FuzzStats — so workers share nothing mutable and never synchronize on
/// the hot path.
///
/// Determinism: one iteration's outcome depends only on its seed (each
/// iteration clones the master afresh and reseeds the PRNG), so a static
/// contiguous partition of the seed range, merged in worker order, yields
/// a bug list and summed statistics byte-identical to the sequential run.
/// Each worker's loop owns a private TVCache; a cache hit replays the
/// byte-identical verdict the checker would recompute, so memoization
/// never perturbs the merged bug report — only the hit/miss split varies
/// with the worker count. With -shared-tv-cache the engine instead owns
/// one process-wide SharedTVCache that every worker queries: keys are
/// canonicalized pairs and verdicts are computed on the canonical pair,
/// so the same byte-for-byte-replay argument holds across workers (only
/// the volatile hit/miss counters become scheduling-dependent). Under
/// -isolate the shared cache is per-child after the fork (copy-on-write
/// pages), i.e. shared across iterations within a shard but not between
/// shards.
/// The §III-A self-check/preprocessing pass runs exactly once, on the
/// master module; workers inherit the surviving function set.
///
/// Time-limited campaigns (Iterations == 0, TimeLimitSeconds > 0) have no
/// fixed partition: workers draw seeds from a shared atomic counter and
/// the merged bug list is sorted by mutant seed. The mutant count then
/// depends on scheduling, but every reported bug is still reproducible
/// from its logged seed.
///
/// Survivability (iteration-bounded campaigns only):
///   - the engine drives each worker's iterations itself, so a campaign
///     can be stopped at any iteration boundary (requestStop) and
///     checkpointed periodically (Survival.CheckpointDir); a resumed
///     campaign's deterministic report section is byte-identical to an
///     uninterrupted run;
///   - a wall-clock supervisor thread watches each worker's iteration
///     serial and cancels its watchdog token when one iteration overstays
///     Survival.WallTimeoutSeconds;
///   - with Survival.Isolate the shards run in supervised child processes
///     (fork, optional RLIMIT_AS/RLIMIT_CPU). A shard killed by a fatal
///     signal becomes a recorded crash-bug outcome attributed to the seed
///     in flight; the shard restarts with exponential backoff from its
///     last checkpoint, skipping the crashing seed. The parent stays
///     single-threaded and harvests shard results through the checkpoint
///     files.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_CAMPAIGNENGINE_H
#define CORE_CAMPAIGNENGINE_H

#include "core/FuzzerLoop.h"
#include "core/Observability.h"
#include "support/Timer.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alive {

/// A snapshot handed to the progress callback by the reporter thread.
struct CampaignProgress {
  uint64_t Done = 0;     ///< iterations completed so far, all workers
  uint64_t Target = 0;   ///< total iterations (0 when time-limited)
  double Elapsed = 0;    ///< seconds since run() started
  unsigned Workers = 0;  ///< number of worker threads
  double Rate = 0;       ///< iterations per second since run() started
  /// Estimated seconds to completion: from the rate for iteration-bounded
  /// campaigns, from the remaining budget for time-limited ones; negative
  /// when unknown (no completed iteration yet).
  double EtaSeconds = -1;
  /// Fraction of summed worker time spent per stage so far (0 when no
  /// stage time has been recorded yet). Shares sum to ~1.
  double MutateShare = 0;
  double OptimizeShare = 0;
  double VerifyShare = 0;
  double OverheadShare = 0;
};

/// Runs a fuzzing campaign across J worker threads with a deterministic
/// merge. With Jobs == 1 the result is identical to a plain FuzzerLoop run
/// (minus wall-clock); with Jobs == N the bug set stays byte-identical.
class CampaignEngine {
public:
  /// \p Jobs worker threads (0 is clamped to 1).
  explicit CampaignEngine(const FuzzOptions &Opts, unsigned Jobs = 1);
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine &) = delete;
  CampaignEngine &operator=(const CampaignEngine &) = delete;

  /// Non-empty when the configuration is unusable (bad pipeline, or an
  /// unbounded campaign detected in run()). An engine with a config error
  /// refuses to run.
  const std::string &configError() const { return ConfigError; }

  unsigned jobs() const { return Jobs; }

  /// Takes ownership of the master module and preprocesses it once
  /// (§III-A self-check included). \returns the testable function count.
  unsigned loadModule(std::unique_ptr<Module> M);

  /// Names of functions that survived preprocessing.
  std::vector<std::string> testableFunctions() const;

  /// Installs a progress reporter: while run() executes, a monitor thread
  /// invokes \p Fn every \p IntervalSeconds (<= 0 disables reporting).
  void setProgress(double IntervalSeconds,
                   std::function<void(const CampaignProgress &)> Fn);

  /// Runs the campaign across the worker pool and merges the results.
  const FuzzStats &run();

  /// Asks the running campaign to stop at the next iteration boundary
  /// (thread-safe; also honored by isolated shards via the shared control
  /// page). A checkpointing campaign writes a final snapshot first, so a
  /// stopped campaign is resumable.
  void requestStop() { StopReq.store(true, std::memory_order_relaxed); }

  /// Test hook: stop once \p N iterations have completed across all
  /// workers (0 = no early stop). Simulates a mid-campaign kill at a
  /// checkpointable boundary without signal plumbing.
  void stopAfterIterations(uint64_t N) {
    StopAfter.store(N, std::memory_order_relaxed);
  }

  /// True when the last run() ended before finishing its seed range
  /// (requestStop / stopAfterIterations). Resume with Survival.Resume.
  bool interrupted() const { return Interrupted; }

  /// Non-fatal isolation-mode incident log ("" when clean): shards
  /// abandoned after repeated no-progress restarts, or harvest failures.
  /// The campaign still completes with every other shard's results.
  const std::string &isolateError() const { return IsolateError; }

  /// True when the last run() permanently lost at least one shard lease
  /// (-fanout: retry budget exhausted or results unwritable). The run
  /// report then carries `degraded: true` with exact lost-shard
  /// accounting, and /healthz turns 503 — a lost shard is never a silent
  /// gap in the merged results.
  bool degraded() const { return DegradedFlag; }

  /// (shard index, lost iteration count) for every permanently lost
  /// lease of the last run, in shard order. Empty when not degraded.
  const std::vector<std::pair<unsigned, uint64_t>> &lostShards() const {
    return LostShardsV;
  }

  const FuzzStats &stats() const { return Stats; }
  const std::vector<BugRecord> &bugs() const { return Bugs; }

  /// The merged telemetry of the finished campaign: master preprocessing
  /// plus every worker registry, merged with the commutative rules
  /// (counters/buckets sum, gauges max) — so the deterministic class of
  /// stats is byte-identical for every worker count.
  const StatRegistry &registry() const { return Registry; }

  /// First worker's save-directory creation error, if any ("" when the
  /// directory came up fine). Reported once, engine-wide: every worker
  /// that hit it stopped retrying per-file writes.
  const std::string &saveDirError() const { return SaveDirError; }

  /// First worker's bundle-directory error, if any (same once-per-engine
  /// policy as saveDirError).
  const std::string &bundleError() const { return BundleError; }

  /// Writes the campaign's flight-recorder tracks — master preprocessing
  /// plus one per worker, all sharing one epoch — as Chrome trace-event
  /// JSON (loadable in Perfetto / about:tracing). Only meaningful after
  /// run() of a campaign with Opts.TraceEnabled; \returns false with
  /// \p Error filled on I/O failure or when no tracks were recorded.
  bool writeTrace(const std::string &Path, std::string &Error) const;

  /// Regenerates the mutant for \p Seed from the master module — the
  /// §III-E reproducibility path. Side-effect-free.
  std::unique_ptr<Module>
  makeMutant(uint64_t Seed,
             std::vector<std::string> *AppliedOut = nullptr) const;

  /// Attaches the campaign-event stream: workers and the engine push
  /// bug-found / epoch-barrier / checkpoint / shard-restart instants into
  /// \p Q (bounded, drop-on-full — a slow observer never stalls the
  /// campaign). Call before run(); pass nullptr to detach.
  void setEventQueue(CampaignEventQueue *Q) { Events = Q; }

  /// A point-in-time observer view of the campaign: per-shard progress,
  /// merged registry snapshot, feedback state. Safe to call from any
  /// thread at any time — before, during and after run(). Strictly
  /// read-side (see Observability.h): it never perturbs the deterministic
  /// report.
  CampaignLiveSnapshot liveSnapshot() const;

  /// Per-track flight-recorder ring overwrites of the finished campaign
  /// ((track name, dropped count) pairs; empty when tracing was
  /// off). Feeds the run report's volatile "trace" block.
  std::vector<std::pair<std::string, uint64_t>> traceDropped() const;

  /// The finished campaign's cost-attribution profile (Opts.Profile):
  /// deterministic merged top-K queries plus the volatile sampling folds
  /// and cache shard heat. Enabled=false when profiling was off (and
  /// always under -isolate: worker state lives in child processes the
  /// parent cannot sample or merge from).
  const CampaignProfile &profile() const { return Profile; }

  /// A point-in-time profile for the live endpoints (/profile.json,
  /// /flamegraph.json): mid-run it snapshots the live workers' trackers
  /// and the sampler's current folds; after run() it returns the final
  /// merged profile. Safe from any thread, like liveSnapshot().
  CampaignProfile profileSnapshot() const;

private:
  /// The fork/waitpid isolation path (Survival.Isolate). \p J is the
  /// effective shard count, \p Total the campaign wall clock.
  const FuzzStats &runIsolated(unsigned J,
                               const std::vector<std::string> &Testable,
                               Timer &Total);

  /// The feedback-directed path (Opts.Feedback.Enabled): the seed range is
  /// consumed epoch by epoch. Within an epoch every worker runs a static
  /// contiguous slice under the schedule frozen at the epoch's start; at
  /// the barrier the workers' coverage deltas merge in worker-index order
  /// (bitwise OR — commutative and associative, so the cumulative map is
  /// partition-independent) and the schedule is recomputed as a pure
  /// function of the cumulative maps. -j1 == -jN therefore still holds
  /// for the deterministic report. Checkpoints are written only at epoch
  /// boundaries, where the complete feedback state is the global map plus
  /// the schedule.
  const FuzzStats &runFeedback(unsigned J,
                               const std::vector<std::string> &Testable,
                               Timer &Total);

  /// The supervised multi-process path (Survival.Fanout): shard leases
  /// under a core/Supervisor control loop — heartbeat deadlines, retry
  /// with bounded exponential backoff, retry-then-skip crash attribution
  /// and lost-shard degradation accounting. The merged deterministic
  /// section is byte-identical to -j1 whenever no lease ends Lost.
  const FuzzStats &runSupervised(const std::vector<std::string> &Testable,
                                 Timer &Total);

  /// The final merged feedback state of a finished feedback campaign
  /// (used by -distill and the run report).
  FeedbackMap FinalFeedback;
  ScheduleState FinalSchedule;

public:
  const FeedbackMap &feedback() const { return FinalFeedback; }
  const ScheduleState &schedule() const { return FinalSchedule; }

private:

  FuzzOptions Opts;
  unsigned Jobs;
  std::string ConfigError;
  std::atomic<bool> StopReq{false};
  std::atomic<uint64_t> StopAfter{0};
  std::atomic<uint64_t> TotalDone{0};
  bool Interrupted = false;
  std::string IsolateError;
  /// Degradation state of the last -fanout run (degraded()/lostShards()).
  bool DegradedFlag = false;
  std::vector<std::pair<unsigned, uint64_t>> LostShardsV;
  /// Preprocesses once, serves testableFunctions() and makeMutant();
  /// never iterates itself.
  std::unique_ptr<FuzzerLoop> MasterLoop;
  /// The process-wide canonicalized verdict cache (-shared-tv-cache);
  /// null unless enabled. Created once here and handed to every worker
  /// via FuzzOptions::SharedCache.
  std::unique_ptr<SharedTVCache> SharedCache;
  double ProgressInterval = 0;
  std::function<void(const CampaignProgress &)> ProgressFn;
  FuzzStats Stats;
  std::vector<BugRecord> Bugs;
  StatRegistry Registry;
  std::string SaveDirError;
  std::string BundleError;
  /// Flight-recorder tracks collected after the join (workers are
  /// destroyed with run()'s scope; their recorders live on here).
  std::vector<std::unique_ptr<TraceRecorder>> Traces;
  std::vector<std::string> TraceNames;
  /// The finished campaign's merged cost-attribution profile.
  CampaignProfile Profile;
  /// The wall-clock sampler, alive only while workers run (guarded by
  /// LiveM for profileSnapshot()); its folds are moved into Profile at
  /// teardown.
  std::unique_ptr<SamplingProfiler> Sampler;
  /// Merges worker trackers (worker order) + sampler folds + shard heat
  /// into Profile after a run path joins its workers.
  void finishProfile(const std::vector<const QueryCostTracker *> &Trackers);

  // --- Live observability plane (observer-only; see Observability.h) ---

  /// One live shard as registered by a run path: borrowed pointers into
  /// run()-scoped worker state (or the isolation heartbeat page). Valid
  /// only while registered — endLive() revokes them before the owners die.
  struct LiveShardRef {
    unsigned Index = 0;
    uint64_t Lo = 0, Hi = 0;
    const std::atomic<uint64_t> *Done = nullptr;
    /// Four live stage counters (mutate/optimize/verify/overhead nanos);
    /// null for isolated shards (the page carries no stage split).
    const std::atomic<uint64_t> *StageNanos = nullptr;
    /// The worker's loop, for registry/trace reads; null for isolated
    /// shards (their state lives in another process).
    const FuzzerLoop *Loop = nullptr;
  };

  /// Opens the live window: run() is now between setup and join.
  void beginLive(bool Isolated, uint64_t Target, unsigned Workers,
                 const Timer *Clock);
  void addLiveShard(LiveShardRef R);
  /// Publishes feedback-barrier state to observers (engine thread only).
  void publishFeedbackLive(uint64_t Epochs, unsigned Bits,
                           const ScheduleState &Schedule);
  /// Closes the live window and revokes every shard ref. Idempotent —
  /// the run paths call it explicitly before borrowed state dies, and a
  /// scope guard repeats it on every exit path.
  void endLive();
  /// Streams one campaign event (no-op without a queue; never blocks).
  void emitEvent(CampaignEvent::Kind K, uint64_t Seed, unsigned Shard,
                 std::string Detail);

  CampaignEventQueue *Events = nullptr;
  /// Guards everything below it; liveSnapshot() copies out under it.
  mutable std::mutex LiveM;
  struct LiveState {
    bool Running = false;
    bool Isolated = false;
    uint64_t Target = 0;
    unsigned Workers = 0;
    const Timer *Clock = nullptr;
    std::vector<LiveShardRef> Shards;
    uint64_t FeedbackEpochs = 0;
    unsigned FeedbackBits = 0;
    std::vector<std::pair<std::string, uint32_t>> FamilyWeights;
  } Live;
  /// run() has completed at least once: snapshots switch from the master
  /// registry to the final merged one.
  bool HasRun = false;
};

} // namespace alive

#endif // CORE_CAMPAIGNENGINE_H
