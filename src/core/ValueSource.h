//===- core/ValueSource.h - Random dominating value primitive --*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primitive alive-mutate "makes heavy use of": for a given program
/// point, randomly produce a dominating SSA value with a compatible type
/// (paper §IV-F). The value might be one that already exists (argument or
/// instruction result), a fresh literal constant, a fresh function
/// parameter, or a fresh randomly generated instruction whose operands are
/// chosen by recursively invoking the same primitive.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_VALUESOURCE_H
#define CORE_VALUESOURCE_H

#include "core/FunctionInfo.h"
#include "support/RandomGenerator.h"

namespace alive {

/// Tunables for value generation.
struct ValueSourceOptions {
  /// Maximum recursion depth for fresh-instruction generation.
  unsigned MaxDepth = 2;
  /// Probability (percent) that a random constant is poison or undef.
  unsigned PoisonPercent = 4;
  /// Allow growing the signature with fresh parameters (paper Listing 11).
  bool AllowFreshParameters = true;
};

/// Produces a value of type \p Ty that dominates program point
/// (\p BB, \p InstIdx) in the mutant. May insert new instructions before
/// \p InstIdx (advancing it) and may append fresh function parameters.
/// \p Avoid, when non-null, is never returned as an *existing* value
/// (used when replacing an operand so the replacement differs).
Value *randomDominatingValue(MutantInfo &MI, Type *Ty, BasicBlock *BB,
                             unsigned &InstIdx, RandomGenerator &RNG,
                             const ValueSourceOptions &Opts,
                             const Value *Avoid = nullptr,
                             unsigned Depth = 0);

/// Random constant of first-class type \p Ty (integers biased to corner
/// values; occasionally poison/undef per \p Opts).
Constant *randomConstant(Module &M, Type *Ty, RandomGenerator &RNG,
                         const ValueSourceOptions &Opts);

} // namespace alive

#endif // CORE_VALUESOURCE_H
