//===- core/BlindMutator.cpp - Structure-blind byte mutator ----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/BlindMutator.h"

#include "analysis/Verifier.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

using namespace alive;

std::string alive::blindMutate(const std::string &Text, RandomGenerator &RNG,
                               unsigned MaxOps) {
  std::string S = Text;
  unsigned Ops = 1 + (unsigned)RNG.below(MaxOps);
  for (unsigned K = 0; K != Ops && !S.empty(); ++K) {
    size_t Pos = RNG.below(S.size());
    switch (RNG.below(6)) {
    case 0: // bit flip
      S[Pos] = (char)(S[Pos] ^ (1 << RNG.below(8)));
      break;
    case 1: // random byte
      S[Pos] = (char)RNG.below(256);
      break;
    case 2: { // delete a span
      size_t Len = 1 + RNG.below(8);
      S.erase(Pos, std::min(Len, S.size() - Pos));
      break;
    }
    case 3: { // duplicate a span
      size_t Len = 1 + RNG.below(16);
      Len = std::min(Len, S.size() - Pos);
      S.insert(Pos, S.substr(Pos, Len));
      break;
    }
    case 4: { // ASCII digit twiddle (the classic numeric heuristic)
      // Find a digit near Pos.
      size_t P = Pos;
      while (P < S.size() && !isdigit((unsigned char)S[P]))
        ++P;
      if (P < S.size())
        S[P] = (char)('0' + RNG.below(10));
      break;
    }
    case 5: { // swap two bytes
      size_t Q = RNG.below(S.size());
      std::swap(S[Pos], S[Q]);
      break;
    }
    }
  }
  return S;
}

BlindOutcome alive::classifyBlindMutant(const std::string &Original,
                                        const std::string &Mutant) {
  std::string Err;
  auto M = parseModule(Mutant, Err);
  if (!M)
    return BlindOutcome::ParseError;
  std::vector<std::string> Errors;
  if (!verifyModule(*M, Errors))
    return BlindOutcome::Invalid;

  // "Boring": after erasing all value/block names and reprinting (which
  // also strips whitespace and comments), the mutant matches the original
  // — i.e. "something like a variable name or debug metadata" changed.
  auto canonicalText = [](Module &Mod) {
    for (Function *F : Mod.functions()) {
      for (unsigned I = 0; I != F->getNumArgs(); ++I)
        F->getArg(I)->setName("");
      for (BasicBlock *BB : F->blocks()) {
        BB->setName("");
        for (Instruction *I : BB->insts())
          I->setName("");
      }
    }
    return printModule(Mod);
  };
  auto O = parseModule(Original, Err);
  if (O && canonicalText(*O) == canonicalText(*M))
    return BlindOutcome::Boring;
  return BlindOutcome::Interesting;
}
