//===- core/RunReport.h - Machine-readable campaign report -----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schema-versioned JSON run report behind `-stats-json`. The report
/// has exactly two top-level data sections:
///
///   - "deterministic": everything whose value depends only on the seed
///     range — config echo, campaign summary counters, the deterministic
///     registry counters/gauges (per-pass, per-mutation-family,
///     per-TV-verdict tables are derived views of these), and the bug
///     list. A -j4 campaign serializes this section byte-identically to
///     -j1; tests and scripts/check_stats_json.py enforce it.
///   - "volatile": wall-clock and scheduling-dependent data — stage
///     seconds (with the mutate+optimize+verify+overhead == worker_total
///     invariant), TV cache hit/miss splits, latency histograms with
///     p50/p90/p99, worker count.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_RUNREPORT_H
#define CORE_RUNREPORT_H

#include "core/FuzzerLoop.h"

#include <ostream>
#include <string>
#include <vector>

namespace alive {

/// Bump when the report layout changes incompatibly; CI's
/// check_stats_json.py pins it.
/// v2: bug records gained "bundle" (forensics bundle path, "" when
/// disabled), and the summary gained "bundles"/"bundle_failures".
/// v3: the config echo gained "corpus_files"/"corpus_skipped" (multi-file
/// corpus loading) and the volatile section gained "survivability"
/// (watchdog timeouts, interrupted flag) — timeouts are wall-clock- or
/// budget-dependent in different modes, so they never enter the
/// deterministic section.
/// v4: the deterministic section gained "feedback" (enabled flag, epoch
/// length, epoch/coverage counters, per-rule fire table, final family
/// weights). Feedback state is merged at epoch barriers in worker order,
/// so the whole block is worker-count independent.
/// v5: the volatile section gained "trace" (flight-recorder ring
/// overwrites, total plus per-track) — ring overflow depends on capacity
/// and scheduling, never on the seed range, so the block is volatile by
/// construction.
/// v6: both sections gained "profile" (-profile cost attribution). The
/// deterministic side carries the merged top-K most-expensive-query table
/// — solver counters are a pure function of the canonical query key, and
/// the worker-order merge of per-worker trackers is exact (Profiler.h),
/// so -j1 == -jN holds. The volatile side carries the wall-clock split
/// per query, the sampling-profiler collapsed stacks and the shared-cache
/// shard heat. Both report {"enabled": false} when profiling is off.
/// v7: the volatile "survivability" block gained the degradation ladder —
/// "degraded" flag, "fanout" (supervised child count, 0 when off), and
/// "lost_shards" (exact per-shard lost-iteration accounting when a
/// supervised lease exhausted its retry budget) — and the volatile
/// section gained "fault_injection" (per-point call/trigger counters for
/// every armed -inject-fault point; {"armed": false} in production).
/// Lost work and injected faults are scheduling artifacts by definition,
/// so none of this can enter the deterministic section.
constexpr unsigned RunReportSchemaVersion = 7;

/// Report metadata that is not part of FuzzStats or the registry.
struct RunReportConfig {
  /// "alive-mutate", "bench_campaign", ...
  std::string Tool;
  std::string Passes;
  uint64_t Iterations = 0;
  uint64_t BaseSeed = 0;
  unsigned MaxMutationsPerFunction = 0;
  /// Corpus files merged into the campaign module (deterministic: depends
  /// only on the command line and file contents).
  unsigned CorpusFiles = 1;
  /// Corpus files skipped as empty/unreadable/unparseable.
  unsigned CorpusSkipped = 0;
  /// Feedback-directed scheduling echo (deterministic: part of the
  /// campaign's identity, like the seed).
  bool FeedbackOn = false;
  unsigned FeedbackEpochLength = 0;
  /// Worker count (volatile section: -j4 vs -j1 reports must only differ
  /// there).
  unsigned Jobs = 1;
  /// Engine wall clock (volatile).
  double WallSeconds = 0;
  /// Campaign stopped before finishing its seed range (volatile; a resumed
  /// run that completes reports false).
  bool Interrupted = false;
  /// The degradation ladder (volatile): true when the campaign finished
  /// with known-lost work — a supervised shard exhausted its retry budget,
  /// or artifact writing was disabled after ENOSPC.
  bool Degraded = false;
  /// Supervised fan-out child count (-fanout; 0 when off).
  unsigned FanOut = 0;
  /// Exact lost-work accounting: (shard index, iterations never run)
  /// for every permanently-lost supervised lease.
  std::vector<std::pair<unsigned, uint64_t>> LostShards;
  /// Flight-recorder ring overwrites per track ((track name, dropped
  /// count) pairs; empty when tracing was off). Volatile: how many events
  /// a fixed-capacity ring overwrote depends on scheduling, not the seeds.
  std::vector<std::pair<std::string, uint64_t>> TraceDropped;
};

/// Writes the full JSON run report to \p OS. \p Profile may be null (or
/// disabled): both profile blocks then collapse to {"enabled": false}.
void writeRunReport(std::ostream &OS, const RunReportConfig &Config,
                    const FuzzStats &Stats,
                    const std::vector<BugRecord> &Bugs,
                    const StatRegistry &Registry,
                    const CampaignProfile *Profile = nullptr);

/// Writes the report to \p Path. \returns false (and fills \p Error) when
/// the file cannot be written.
bool writeRunReportFile(const std::string &Path,
                        const RunReportConfig &Config, const FuzzStats &Stats,
                        const std::vector<BugRecord> &Bugs,
                        const StatRegistry &Registry, std::string &Error,
                        const CampaignProfile *Profile = nullptr);

} // namespace alive

#endif // CORE_RUNREPORT_H
