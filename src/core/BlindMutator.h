//===- core/BlindMutator.h - Structure-blind byte mutator ------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Radamsa-style structure-blind byte mutator over textual IR, used to
/// reproduce the paper's §II preliminary study: "the vast majority of
/// mutated LLVM IR files were invalid and could not be loaded by the
/// compiler ... the mutants that could be loaded were almost all boring."
/// The mutation menu mirrors common byte-fuzzer heuristics: bit flips,
/// byte swaps, token duplication/deletion, ASCII digit twiddling.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_BLINDMUTATOR_H
#define CORE_BLINDMUTATOR_H

#include "support/RandomGenerator.h"

#include <string>

namespace alive {

/// Applies 1..\p MaxOps random byte-level mutations to \p Text.
std::string blindMutate(const std::string &Text, RandomGenerator &RNG,
                        unsigned MaxOps = 4);

/// Classification of a blind mutant, for the §II study.
enum class BlindOutcome {
  ParseError, ///< could not be loaded at all
  Invalid,    ///< parsed but fails the verifier
  Boring,     ///< parses and is textually/structurally unchanged modulo
              ///< names, whitespace or comments
  Interesting ///< a semantically distinct, valid mutant
};

/// Parses & classifies a blind mutant relative to its original.
BlindOutcome classifyBlindMutant(const std::string &Original,
                                 const std::string &Mutant);

} // namespace alive

#endif // CORE_BLINDMUTATOR_H
