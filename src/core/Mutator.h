//===- core/Mutator.h - The alive-mutate mutation engine -------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mutation engine (§IV): nine structured mutation families
/// that always produce verifier-valid IR. "When running alive-mutate, we
/// select a subset of applicable mutations and perform them sequentially"
/// (§IV-I). Every random decision flows through the seedable generator so
/// any mutant can be regenerated from its logged seed (§III-E).
///
//===----------------------------------------------------------------------===//

#ifndef CORE_MUTATOR_H
#define CORE_MUTATOR_H

#include "core/FunctionInfo.h"
#include "core/ValueSource.h"
#include "support/RandomGenerator.h"
#include "support/Telemetry.h"

#include <array>
#include <string>
#include <vector>

namespace alive {

/// The mutation families of paper §IV.
enum class MutationKind : unsigned {
  Attributes, ///< §IV-A toggle function/parameter attributes
  Inline,     ///< §IV-B inline a function other than the intended callee
  RemoveCall, ///< §IV-C remove a void call
  Shuffle,    ///< §IV-D shuffle a dependence-free instruction range
  Arith,      ///< §IV-E opcode/operand-swap/flag/constant mutations
  Use,        ///< §IV-F replace an SSA use with a dominating random value
  Move,       ///< §IV-G move an instruction, repairing broken uses
  Bitwidth,   ///< §IV-H change bitwidths along one use-tree path
  NumKinds
};

const char *mutationKindName(MutationKind K);

/// Mutation configuration.
struct MutationOptions {
  /// Maximum number of mutations applied per function per round (§IV-I).
  unsigned MaxMutationsPerFunction = 3;
  ValueSourceOptions ValueSource;
  /// Kinds eligible for selection (all by default).
  std::vector<MutationKind> EnabledKinds;

  MutationOptions() {
    for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K)
      EnabledKinds.push_back((MutationKind)K);
  }
};

/// Applies random mutations to functions of a module.
class Mutator {
public:
  /// \p Stats (optional) receives per-family telemetry: every apply()
  /// outcome increments "mutation.<family>.applied" or ".rejected".
  /// Deterministic per seed, so merged campaign counts are worker-count
  /// independent. The §III-E seed-replay path passes null — replay must
  /// not disturb campaign statistics.
  Mutator(RandomGenerator &RNG, const MutationOptions &Opts,
          StatRegistry *Stats = nullptr);

  /// Applies one specific mutation kind to \p MI (if applicable).
  /// \returns true when the function changed.
  bool apply(MutationKind K, MutantInfo &MI);

  /// §IV-I: applies a random subset (1..MaxMutationsPerFunction) of
  /// applicable mutations sequentially. \returns the kinds that actually
  /// fired, in order.
  std::vector<MutationKind> mutateFunction(MutantInfo &MI);

private:
  bool applyImpl(MutationKind K, MutantInfo &MI);
  bool mutateAttributes(MutantInfo &MI);
  bool mutateInline(MutantInfo &MI);
  bool mutateRemoveCall(MutantInfo &MI);
  bool mutateShuffle(MutantInfo &MI);
  bool mutateArith(MutantInfo &MI);
  bool mutateUse(MutantInfo &MI);
  bool mutateMove(MutantInfo &MI);
  bool mutateBitwidth(MutantInfo &MI);

  RandomGenerator &RNG;
  MutationOptions Opts;
  /// Cached per-family counter slots (null members when telemetry is off):
  /// apply() must not pay a map probe per attempt.
  struct FamilyCounters {
    uint64_t *Applied = nullptr;
    uint64_t *Rejected = nullptr;
  };
  std::array<FamilyCounters, (size_t)MutationKind::NumKinds> Family;
};

} // namespace alive

#endif // CORE_MUTATOR_H
