//===- core/Mutator.h - The alive-mutate mutation engine -------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mutation engine (§IV): nine structured mutation families
/// that always produce verifier-valid IR. "When running alive-mutate, we
/// select a subset of applicable mutations and perform them sequentially"
/// (§IV-I). Every random decision flows through the seedable generator so
/// any mutant can be regenerated from its logged seed (§III-E).
///
//===----------------------------------------------------------------------===//

#ifndef CORE_MUTATOR_H
#define CORE_MUTATOR_H

#include "core/FunctionInfo.h"
#include "core/ValueSource.h"
#include "support/RandomGenerator.h"
#include "support/Telemetry.h"
#include "support/TraceRecorder.h"

#include <array>
#include <string>
#include <vector>

namespace alive {

/// The mutation families of paper §IV.
enum class MutationKind : unsigned {
  Attributes, ///< §IV-A toggle function/parameter attributes
  Inline,     ///< §IV-B inline a function other than the intended callee
  RemoveCall, ///< §IV-C remove a void call
  Shuffle,    ///< §IV-D shuffle a dependence-free instruction range
  Arith,      ///< §IV-E opcode/operand-swap/flag/constant mutations
  Use,        ///< §IV-F replace an SSA use with a dominating random value
  Move,       ///< §IV-G move an instruction, repairing broken uses
  Bitwidth,   ///< §IV-H change bitwidths along one use-tree path
  NumKinds
};

const char *mutationKindName(MutationKind K);

/// One applied mutation, as recorded for forensics: which family fired,
/// in which function, at which site (the anchor instruction or block),
/// and what it did to the operands. Purely descriptive — recording never
/// draws on the RNG, so a trailed and an untrailed replay of the same
/// seed produce byte-identical mutants (§III-E).
struct MutationTrailEntry {
  MutationKind Kind;
  std::string Function;
  /// The anchor the mutation fired at ("%a", "call @g", "block #2"); may
  /// be empty when a family has no single anchor.
  std::string Site;
  /// Operand-level description of the change ("operand #1 %x -> 7").
  std::string Detail;
};

/// The applied-mutation trail of one mutant, in application order.
using MutationTrail = std::vector<MutationTrailEntry>;

/// Mutation configuration.
struct MutationOptions {
  /// Maximum number of mutations applied per function per round (§IV-I).
  unsigned MaxMutationsPerFunction = 3;
  ValueSourceOptions ValueSource;
  /// Kinds eligible for selection (all by default).
  std::vector<MutationKind> EnabledKinds;

  MutationOptions() {
    for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K)
      EnabledKinds.push_back((MutationKind)K);
  }
};

/// Applies random mutations to functions of a module.
class Mutator {
public:
  /// \p Stats (optional) receives per-family telemetry: every apply()
  /// outcome increments "mutation.<family>.applied" or ".rejected".
  /// Deterministic per seed, so merged campaign counts are worker-count
  /// independent. The §III-E seed-replay path passes null — replay must
  /// not disturb campaign statistics.
  /// \p Trace (optional) receives one flight-recorder span per apply()
  /// attempt, named by family with the function as detail.
  Mutator(RandomGenerator &RNG, const MutationOptions &Opts,
          StatRegistry *Stats = nullptr, TraceRecorder *Trace = nullptr);

  /// Attaches a trail sink: every successful apply() appends one entry
  /// (family, site, operands). Null detaches. Trail formatting happens
  /// only while a sink is attached, and never consumes randomness.
  void setTrail(MutationTrail *T) { Trail = T; }

  /// Attaches per-family selection weights (indexed by MutationKind, one
  /// slot per kind, minimum effective weight 1). Null restores the
  /// uniform pick — and the exact RNG stream of the blind schedule, which
  /// feedback-off runs rely on. The array must outlive the mutator or the
  /// next setFamilyWeights call.
  void setFamilyWeights(const uint32_t *W) { Weights = W; }

  /// Applies one specific mutation kind to \p MI (if applicable).
  /// \returns true when the function changed.
  bool apply(MutationKind K, MutantInfo &MI);

  /// §IV-I: applies a random subset (1..MaxMutationsPerFunction) of
  /// applicable mutations sequentially. \returns the kinds that actually
  /// fired, in order.
  std::vector<MutationKind> mutateFunction(MutantInfo &MI);

private:
  bool applyImpl(MutationKind K, MutantInfo &MI);
  /// One enabled kind: uniform draw (blind), or weight-proportional when
  /// setFamilyWeights installed an array. Requires non-empty EnabledKinds.
  MutationKind pickKind();
  /// True while a trail sink is attached: the family implementations skip
  /// all description formatting otherwise (hot-path cost is one branch).
  bool wantNote() const { return Trail != nullptr; }
  /// Stages the in-flight mutation's site/operand description; apply()
  /// commits it to the trail when the mutation fires.
  void note(std::string Site, std::string Detail);
  bool mutateAttributes(MutantInfo &MI);
  bool mutateInline(MutantInfo &MI);
  bool mutateRemoveCall(MutantInfo &MI);
  bool mutateShuffle(MutantInfo &MI);
  bool mutateArith(MutantInfo &MI);
  bool mutateUse(MutantInfo &MI);
  bool mutateMove(MutantInfo &MI);
  bool mutateBitwidth(MutantInfo &MI);

  RandomGenerator &RNG;
  MutationOptions Opts;
  /// Cached per-family counter slots (null members when telemetry is off):
  /// apply() must not pay a map probe per attempt.
  struct FamilyCounters {
    std::atomic<uint64_t> *Applied = nullptr;
    std::atomic<uint64_t> *Rejected = nullptr;
  };
  std::array<FamilyCounters, (size_t)MutationKind::NumKinds> Family;
  TraceRecorder *Trace = nullptr;
  MutationTrail *Trail = nullptr;
  /// Optional per-family selection weights (feedback mode); null = uniform.
  const uint32_t *Weights = nullptr;
  /// Pending note of the in-flight applyImpl (valid only while Trail set).
  std::string PendingSite, PendingDetail;
};

} // namespace alive

#endif // CORE_MUTATOR_H
