//===- core/MetricsExporter.cpp - Live metrics/health HTTP plane ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/MetricsExporter.h"

#include "core/CampaignEngine.h"
#include "support/FaultPlane.h"

#include <algorithm>
#include <limits>
#include <sstream>

using namespace alive;

std::string alive::prometheusName(const std::string &Slug) {
  std::string Out;
  Out.reserve(Slug.size());
  for (char C : Slug) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string alive::formatSSE(uint64_t Id, const CampaignEvent &E) {
  std::ostringstream OS;
  OS << "id: " << Id << "\n";
  OS << "event: " << campaignEventName(E.K) << "\n";
  OS << "data: {\"kind\": ";
  writeJSONString(OS, campaignEventName(E.K));
  OS << ", \"seed\": " << E.Seed << ", \"shard\": " << E.Shard
     << ", \"nanos\": " << E.Nanos << ", \"detail\": ";
  writeJSONString(OS, E.Detail);
  OS << "}\n\n";
  return OS.str();
}

namespace {

/// Prometheus sample values: plain shortest-round-trip decimal (the
/// exposition format takes Go-style floats; inf/nan never occur here
/// because Histogram::min() folds its +inf sentinel to 0).
std::string num(double D) {
  std::ostringstream OS;
  OS.precision(std::numeric_limits<double>::max_digits10);
  OS << D;
  return OS.str();
}

/// The /dashboard page: one self-contained HTML document, no external
/// scripts/styles/fonts (works on an air-gapped CI box). It polls
/// /status and /profile.json, and follows the /events SSE stream.
const char *dashboardHTML() {
  return R"HTML(<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>alive-mutate dashboard</title>
<style>
 body{font:13px/1.4 ui-monospace,Menlo,Consolas,monospace;margin:1.2em;
      background:#111;color:#ddd}
 h1{font-size:16px} h2{font-size:13px;margin:1.2em 0 .3em;color:#9cf}
 table{border-collapse:collapse} td,th{padding:.15em .7em;text-align:right;
      border-bottom:1px solid #333} th{color:#888} td:first-child,
 th:first-child{text-align:left}
 .bar{background:#247;height:10px;display:inline-block}
 #events div{color:#8a8} .err{color:#f88}
 small{color:#777}
</style></head><body>
<h1>alive-mutate <small id="meta"></small></h1>
<div id="summary">loading&hellip;</div>
<h2>shards</h2><table id="shards"></table>
<h2>top queries <small>(deterministic cost attribution)</small></h2>
<table id="queries"></table>
<h2>hot stacks <small>(wall-clock samples)</small></h2>
<table id="stacks"></table>
<h2>events</h2><div id="events"></div>
<script>
"use strict";
const $=id=>document.getElementById(id);
function row(cells,tag){return "<tr>"+cells.map(c=>"<"+(tag||"td")+">"+c+
  "</"+(tag||"td")+">").join("")+"</tr>";}
async function refresh(){
 try{
  const s=await (await fetch("/status")).json();
  const cfg=s.config||{};
  $("meta").textContent=(cfg.tool||"")+" "+(cfg.passes||"")+
    " seed="+(cfg.base_seed??"?")+" j"+(s.workers||0);
  $("summary").innerHTML=(s.running?"RUNNING":"idle")+
    " &mdash; "+s.done+(s.target?"/"+s.target:"")+" mutants, "+
    (s.elapsed||0).toFixed(1)+"s"+
    (s.elapsed>0?", "+(s.done/s.elapsed).toFixed(0)+"/s":"");
  $("shards").innerHTML=row(["shard","done","range","mutate","optimize",
    "verify","overhead"],"th")+ (s.shards||[]).map(sh=>{
    const n=sh.stage_nanos||{},t=(n.mutate||0)+(n.optimize||0)+
      (n.verify||0)+(n.overhead||0)||1;
    const pct=v=>((100*v/t)|0)+"%";
    return row([sh.index,sh.done,sh.lo+"&ndash;"+sh.hi,pct(n.mutate||0),
      pct(n.optimize||0),pct(n.verify||0),pct(n.overhead||0)]);}).join("");
  const p=await (await fetch("/profile.json")).json();
  if(p.enabled){
   const qs=p.queries||[];
   $("queries").innerHTML=row(["#","function","verdict","cost","dec",
     "prop","confl","seen","first seed"],"th")+qs.slice(0,12).map(q=>
     row([q.rank,q["function"],q.verdict,q.cost,q.decisions,
       q.propagations,q.conflicts,q.count,q.first_seed])).join("");
   const fg=await (await fetch("/flamegraph.json")).json();
   const st=(fg.stacks||[]).slice().sort((a,b)=>b.count-a.count);
   const tot=fg.samples||1;
   $("stacks").innerHTML=row(["stack","samples",""],"th")+
     st.slice(0,15).map(x=>row([x.stack,x.count,
       '<span class="bar" style="width:'+
       Math.max(1,120*x.count/tot)+'px"></span>'])).join("");
  } else {
   $("queries").innerHTML=row(["profiling off &mdash; rerun with -profile"]);
   $("stacks").innerHTML="";
  }
 }catch(e){$("summary").innerHTML='<span class="err">'+e+"</span>";}
}
refresh(); setInterval(refresh,2000);
try{
 const es=new EventSource("/events");
 es.onmessage=es.onerror=null;
 ["campaign-start","campaign-end","bug-found","epoch-barrier","checkpoint",
  "shard-restart","shutdown"].forEach(k=>es.addEventListener(k,ev=>{
   const d=document.createElement("div");
   d.textContent=new Date().toLocaleTimeString()+" "+k+" "+(ev.data||"");
   const log=$("events"); log.prepend(d);
   while(log.childElementCount>50) log.lastChild.remove();
 }));
}catch(e){}
</script></body></html>
)HTML";
}

} // namespace

MetricsServer::MetricsServer(const MetricsOptions &Opts)
    : Opts(Opts), Queue(Opts.EventQueueCapacity) {
  Series.resize(std::max<size_t>(1, Opts.SeriesCapacity));
  Server.setHandler([this](const HttpRequest &R) { return handle(R); });
  Server.setTick([this] { tick(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::setEngine(CampaignEngine *E) {
  std::lock_guard<std::mutex> Lock(M);
  Engine = E;
}

void MetricsServer::setConfigEcho(const RunReportConfig &C) {
  std::lock_guard<std::mutex> Lock(M);
  Config = C;
  HasConfig = true;
}

bool MetricsServer::start(std::string &Error) {
  return Server.start(Opts.Port, Error);
}

void MetricsServer::stop() { Server.stop(); }

size_t MetricsServer::seriesSize() const {
  std::lock_guard<std::mutex> Lock(SeriesM);
  return SeriesCount;
}

CampaignLiveSnapshot MetricsServer::snapshotNow() {
  std::lock_guard<std::mutex> Lock(M);
  if (!Engine)
    return CampaignLiveSnapshot();
  return Engine->liveSnapshot();
}

CampaignProfile MetricsServer::profileNow() {
  std::lock_guard<std::mutex> Lock(M);
  if (!Engine)
    return CampaignProfile(); // Enabled=false
  return Engine->profileSnapshot();
}

void MetricsServer::tick() {
  // Drain the bounded queue and fan the events out to every SSE client.
  // Drained order is arrival order, so the ids are monotonic per client.
  std::vector<CampaignEvent> Evs;
  if (Queue.drain(Evs))
    for (const CampaignEvent &E : Evs)
      Server.broadcast(formatSSE(NextEventId++, E));

  bool Bound;
  {
    std::lock_guard<std::mutex> Lock(M);
    Bound = Engine != nullptr;
  }
  if (!Bound)
    return;
  CampaignLiveSnapshot S = snapshotNow();
  double Now = Clock.seconds();

  // Track per-shard progress timestamps for /healthz staleness.
  if (!S.Running) {
    Seen.clear();
  } else {
    if (Seen.size() < S.Shards.size())
      Seen.resize(S.Shards.size());
    for (const ShardLiveState &Sh : S.Shards) {
      if (Sh.Index >= Seen.size())
        continue;
      ShardSeen &SS = Seen[Sh.Index];
      if (!SS.Init || SS.Done != Sh.Done)
        SS = {Sh.Done, Now, true};
    }
  }

  // Periodic /series sample.
  if (Now - LastSample >= Opts.SnapshotInterval) {
    LastSample = Now;
    MetricsSample P;
    P.T = Now;
    P.Done = S.Done;
    S.Stats.forEachCounterAll(
        [&](const std::string &Name, uint64_t V, Volatility) {
          P.Counters.emplace_back(Name, V);
        });
    size_t Cap = Series.size();
    std::lock_guard<std::mutex> Lock(SeriesM);
    if (SeriesCount == Cap) {
      Series[SeriesHead] = std::move(P);
      SeriesHead = (SeriesHead + 1) % Cap;
    } else {
      Series[(SeriesHead + SeriesCount) % Cap] = std::move(P);
      ++SeriesCount;
    }
  }
}

HttpResponse MetricsServer::handle(const HttpRequest &Req) {
  HttpResponse Resp;
  if (Req.Path == "/metrics") {
    Resp.ContentType = "text/plain; version=0.0.4; charset=utf-8";
    Resp.Body = renderMetrics(snapshotNow());
    return Resp;
  }
  if (Req.Path == "/status") {
    Resp.ContentType = "application/json";
    Resp.Body = renderStatus(snapshotNow());
    return Resp;
  }
  if (Req.Path == "/healthz") {
    Resp.ContentType = "application/json";
    bool Healthy = renderHealth(snapshotNow(), Resp.Body);
    Resp.Status = Healthy ? 200 : 503;
    return Resp;
  }
  if (Req.Path == "/readyz") {
    Resp.ContentType = "application/json";
    bool Ready;
    {
      std::lock_guard<std::mutex> Lock(M);
      Ready = Engine != nullptr;
    }
    Resp.Status = Ready ? 200 : 503;
    Resp.Body = Ready ? "{\"ready\": true}\n" : "{\"ready\": false}\n";
    return Resp;
  }
  if (Req.Path == "/events") {
    Resp.Stream = true;
    // The retry hint plus a comment line: clients see bytes immediately,
    // which flushes proxies and lets curl print something before the
    // first real event.
    Resp.Body = "retry: 1000\n: alive-mutate event stream\n\n";
    return Resp;
  }
  if (Req.Path == "/series") {
    Resp.ContentType = "application/json";
    Resp.Body = renderSeries();
    return Resp;
  }
  if (Req.Path == "/profile.json") {
    Resp.ContentType = "application/json";
    Resp.Body = renderProfile();
    return Resp;
  }
  if (Req.Path == "/flamegraph.json") {
    Resp.ContentType = "application/json";
    Resp.Body = renderFlamegraph();
    return Resp;
  }
  if (Req.Path == "/dashboard") {
    Resp.ContentType = "text/html; charset=utf-8";
    Resp.Body = dashboardHTML();
    return Resp;
  }
  if (Req.Path == "/") {
    Resp.Body = "alive-mutate metrics server\n"
                "endpoints: /metrics /status /healthz /readyz /events "
                "/series /profile.json /flamegraph.json /dashboard\n";
    return Resp;
  }
  Resp.Status = 404;
  Resp.Body = "not found\n";
  return Resp;
}

std::string MetricsServer::renderMetrics(const CampaignLiveSnapshot &S) {
  std::ostringstream OS;
  auto Gauge = [&](const std::string &Name, const std::string &Value) {
    OS << "# TYPE " << Name << " gauge\n" << Name << " " << Value << "\n";
  };
  Gauge("alive_up", "1");
  Gauge("alive_campaign_running", S.Running ? "1" : "0");
  Gauge("alive_campaign_elapsed_seconds", num(S.Elapsed));
  Gauge("alive_workers", std::to_string(S.Workers));
  OS << "# TYPE alive_iterations_done counter\nalive_iterations_done "
     << S.Done << "\n";
  Gauge("alive_iterations_target", std::to_string(S.Target));
  OS << "# TYPE alive_events_accepted counter\nalive_events_accepted "
     << Queue.accepted() << "\n";
  OS << "# TYPE alive_events_dropped counter\nalive_events_dropped "
     << Queue.dropped() << "\n";
  Gauge("alive_sse_clients", std::to_string(Server.streamClients()));
  if (S.FeedbackEnabled) {
    OS << "# TYPE alive_feedback_epochs counter\nalive_feedback_epochs "
       << S.FeedbackEpochs << "\n";
    Gauge("alive_feedback_bits_covered", std::to_string(S.FeedbackBits));
    if (!S.FamilyWeights.empty()) {
      OS << "# TYPE alive_feedback_family_weight gauge\n";
      for (const auto &[Name, W] : S.FamilyWeights)
        OS << "alive_feedback_family_weight{family=\""
           << prometheusName(Name) << "\"} " << W << "\n";
    }
  }
  if (!S.Shards.empty()) {
    OS << "# TYPE alive_shard_iterations_done counter\n";
    for (const ShardLiveState &Sh : S.Shards)
      OS << "alive_shard_iterations_done{shard=\"" << Sh.Index << "\"} "
         << Sh.Done << "\n";
    OS << "# TYPE alive_shard_trace_dropped_events counter\n";
    for (const ShardLiveState &Sh : S.Shards)
      OS << "alive_shard_trace_dropped_events{shard=\"" << Sh.Index
         << "\"} " << Sh.TraceDropped << "\n";
  }

  // Registry counters and gauges: the name is a pure function of the stat
  // slug, so dashboards survive restarts and worker-count changes.
  S.Stats.forEachCounterAll(
      [&](const std::string &Name, uint64_t V, Volatility) {
        std::string N = "alive_" + prometheusName(Name);
        OS << "# TYPE " << N << " counter\n" << N << " " << V << "\n";
      });
  S.Stats.forEachGauge([&](const std::string &Name, double V, Volatility) {
    std::string N = "alive_" + prometheusName(Name);
    OS << "# TYPE " << N << " gauge\n" << N << " " << num(V) << "\n";
  });
  // Histograms as Prometheus summaries: quantiles from the log2 buckets
  // (upper-bound estimates, see Histogram::percentile) plus sum/count.
  S.Stats.forEachHistogram([&](const std::string &Name, const Histogram &H) {
    std::string N = "alive_" + prometheusName(Name);
    OS << "# TYPE " << N << " summary\n";
    OS << N << "{quantile=\"0.5\"} " << num(H.percentile(0.50)) << "\n";
    OS << N << "{quantile=\"0.9\"} " << num(H.percentile(0.90)) << "\n";
    OS << N << "{quantile=\"0.99\"} " << num(H.percentile(0.99)) << "\n";
    OS << N << "_sum " << num(H.sum()) << "\n";
    OS << N << "_count " << H.count() << "\n";
    OS << "# TYPE " << N << "_min gauge\n"
       << N << "_min " << num(H.min()) << "\n";
    OS << "# TYPE " << N << "_max gauge\n"
       << N << "_max " << num(H.max()) << "\n";
    // Native histogram exposition alongside the summary. One family
    // cannot be both types, so the cumulative buckets live under
    // "<name>_hist". Totals are derived from the bucket reads themselves
    // (not H.count()) so the family stays internally monotone even when
    // a record() lands between the two loads.
    uint64_t BC[Histogram::NumBuckets];
    uint64_t Total = 0;
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
      Total += BC[I] = H.bucketCount(I);
    OS << "# TYPE " << N << "_hist histogram\n";
    uint64_t Cum = 0;
    for (unsigned I = 0; I != Histogram::NumBuckets && Cum != Total; ++I) {
      Cum += BC[I];
      OS << N << "_hist_bucket{le=\"" << num(Histogram::bucketUpperBound(I))
         << "\"} " << Cum << "\n";
    }
    OS << N << "_hist_bucket{le=\"+Inf\"} " << Total << "\n";
    OS << N << "_hist_sum " << num(H.sum()) << "\n";
    OS << N << "_hist_count " << Total << "\n";
  });
  return OS.str();
}

std::string MetricsServer::renderStatus(const CampaignLiveSnapshot &S) {
  std::ostringstream OS;
  OS << "{\n";
  {
    std::lock_guard<std::mutex> Lock(M);
    if (HasConfig) {
      OS << "  \"config\": {\"tool\": ";
      writeJSONString(OS, Config.Tool);
      OS << ", \"passes\": ";
      writeJSONString(OS, Config.Passes);
      OS << ", \"iterations\": " << Config.Iterations
         << ", \"base_seed\": " << Config.BaseSeed
         << ", \"jobs\": " << Config.Jobs << ", \"feedback\": "
         << (Config.FeedbackOn ? "true" : "false") << "},\n";
    } else {
      OS << "  \"config\": null,\n";
    }
  }
  OS << "  \"running\": " << (S.Running ? "true" : "false") << ",\n";
  OS << "  \"elapsed\": ";
  writeJSONDouble(OS, S.Elapsed);
  OS << ",\n";
  OS << "  \"done\": " << S.Done << ",\n";
  OS << "  \"target\": " << S.Target << ",\n";
  OS << "  \"workers\": " << S.Workers << ",\n";
  OS << "  \"isolated\": " << (S.Isolated ? "true" : "false") << ",\n";
  OS << "  \"degraded\": " << (S.Degraded ? "true" : "false") << ",\n";
  {
    // Chaos accounting: per-point call/trigger counters of the armed
    // fault-injection table (empty when nothing is armed).
    std::vector<FaultPointCounters> FC = FaultPlane::instance().counters();
    OS << "  \"fault_injection\": {\"armed\": "
       << (FC.empty() ? "false" : "true") << ", \"points\": [";
    for (size_t I = 0; I != FC.size(); ++I) {
      OS << (I ? ", " : "") << "{\"point\": ";
      writeJSONString(OS, FC[I].Point);
      OS << ", \"spec\": ";
      writeJSONString(OS, FC[I].Spec);
      OS << ", \"calls\": " << FC[I].Calls
         << ", \"triggers\": " << FC[I].Triggers << "}";
    }
    OS << "]},\n";
  }
  OS << "  \"shards\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I) {
    const ShardLiveState &Sh = S.Shards[I];
    OS << (I ? ", " : "") << "{\"index\": " << Sh.Index
       << ", \"lo\": " << Sh.Lo << ", \"hi\": " << Sh.Hi
       << ", \"done\": " << Sh.Done << ", \"stage_nanos\": {\"mutate\": "
       << Sh.StageNanos[0] << ", \"optimize\": " << Sh.StageNanos[1]
       << ", \"verify\": " << Sh.StageNanos[2] << ", \"overhead\": "
       << Sh.StageNanos[3] << "}, \"trace_dropped_events\": "
       << Sh.TraceDropped << ", \"live_registry\": "
       << (Sh.HasRegistry ? "true" : "false") << "}";
  }
  OS << "],\n";
  OS << "  \"feedback\": {\"enabled\": "
     << (S.FeedbackEnabled ? "true" : "false")
     << ", \"epochs\": " << S.FeedbackEpochs
     << ", \"bits_covered\": " << S.FeedbackBits << ", \"weights\": {";
  for (size_t I = 0; I != S.FamilyWeights.size(); ++I) {
    OS << (I ? ", " : "");
    writeJSONString(OS, S.FamilyWeights[I].first);
    OS << ": " << S.FamilyWeights[I].second;
  }
  OS << "}},\n";
  OS << "  \"events\": {\"accepted\": " << Queue.accepted()
     << ", \"dropped\": " << Queue.dropped()
     << ", \"capacity\": " << Queue.capacity()
     << ", \"stream_clients\": " << Server.streamClients() << "},\n";
  OS << "  \"series\": {\"interval\": ";
  writeJSONDouble(OS, Opts.SnapshotInterval);
  OS << ", \"capacity\": " << Series.size() << ", \"size\": " << seriesSize()
     << "},\n";
  // The registry dump carries the rest of the campaign state surface —
  // survive.checkpoint.*, quarantine, feedback.* — in both classes.
  OS << "  \"stats\": {\n    \"deterministic\": ";
  S.Stats.writeJSON(OS, Volatility::Deterministic, "    ");
  OS << ",\n    \"volatile\": ";
  S.Stats.writeJSON(OS, Volatility::Volatile, "    ");
  OS << "\n  }\n";
  OS << "}\n";
  return OS.str();
}

std::string MetricsServer::renderProfile() {
  CampaignProfile P = profileNow();
  std::ostringstream OS;
  OS << "{\"enabled\": " << (P.Enabled ? "true" : "false");
  if (P.Enabled) {
    OS << ",\n \"topk\": " << P.TopK << ",\n \"queries\": ";
    writeTopQueriesJSON(OS, P.TopQueries, " ");
    OS << ",\n \"volatile\": ";
    writeProfileVolatileJSON(OS, P, " ");
  }
  OS << "}\n";
  return OS.str();
}

std::string MetricsServer::renderFlamegraph() {
  std::ostringstream OS;
  writeFlamegraphJSON(OS, profileNow());
  return OS.str();
}

std::string MetricsServer::renderSeries() {
  std::ostringstream OS;
  OS << "{\"interval\": ";
  writeJSONDouble(OS, Opts.SnapshotInterval);
  OS << ", \"capacity\": " << Series.size() << ", \"points\": [";
  size_t Cap = Series.size();
  for (size_t I = 0; I != SeriesCount; ++I) {
    const MetricsSample &P = Series[(SeriesHead + I) % Cap];
    OS << (I ? ", " : "") << "{\"t\": ";
    writeJSONDouble(OS, P.T);
    OS << ", \"done\": " << P.Done << ", \"counters\": {";
    for (size_t C = 0; C != P.Counters.size(); ++C) {
      OS << (C ? ", " : "");
      writeJSONString(OS, P.Counters[C].first);
      OS << ": " << P.Counters[C].second;
    }
    OS << "}}";
  }
  OS << "]}\n";
  return OS.str();
}

bool MetricsServer::renderHealth(const CampaignLiveSnapshot &S,
                                 std::string &Body) {
  double Now = Clock.seconds();
  std::vector<unsigned> Stale;
  if (S.Running && Opts.HealthStaleSeconds > 0) {
    for (const ShardLiveState &Sh : S.Shards) {
      if (Sh.Index >= Seen.size() || !Seen[Sh.Index].Init)
        continue;
      // A shard that finished its slice legitimately stops advancing.
      if (Sh.Hi > Sh.Lo && Sh.Done >= Sh.Hi - Sh.Lo)
        continue;
      if (Now - Seen[Sh.Index].Since > Opts.HealthStaleSeconds)
        Stale.push_back(Sh.Index);
    }
  }
  // A degraded campaign (permanently lost shard lease) is unhealthy even
  // when every surviving shard is making progress: the gap is permanent.
  bool Healthy = Stale.empty() && !S.Degraded;
  std::ostringstream OS;
  OS << "{\"healthy\": " << (Healthy ? "true" : "false")
     << ", \"degraded\": " << (S.Degraded ? "true" : "false")
     << ", \"stale_seconds\": ";
  writeJSONDouble(OS, Opts.HealthStaleSeconds);
  OS << ", \"stale_shards\": [";
  for (size_t I = 0; I != Stale.size(); ++I)
    OS << (I ? ", " : "") << Stale[I];
  OS << "]}\n";
  Body = OS.str();
  return Healthy;
}
