//===- core/Supervisor.cpp - Multi-process shard lease supervisor ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Supervisor.h"

#include "support/FaultPlane.h"
#include "support/SignalGuard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace alive;

namespace {

/// Shared stop flag at the head of the control page.
struct Control {
  std::atomic<uint32_t> Stop;
};

/// Per-lease slot in the MAP_SHARED control page. The child is the only
/// writer of its slot; the parent only reads (and re-initializes Cur
/// between spawns, when no child is alive to race with).
struct HeartbeatSlot {
  std::atomic<uint64_t> Cur;  ///< offset in flight; IdleOffset between
  std::atomic<uint64_t> Next; ///< first offset not yet completed
  std::atomic<uint64_t> Done; ///< iterations completed, cumulative
  std::atomic<uint64_t> Beat; ///< liveness tick for the wedge detector
};

Control *control(void *Page) { return static_cast<Control *>(Page); }

HeartbeatSlot *slots(void *Page) {
  return reinterpret_cast<HeartbeatSlot *>(static_cast<char *>(Page) +
                                           sizeof(Control));
}

/// A beat-silent child is only wedged if it also sat idle on the CPU: it
/// must have burned less than this fraction of the silent wall-clock
/// window. 5% spares a mid-solver-query child even at fanout 16 on one
/// core (each child still gets ~6% of the CPU), while a deadlocked or
/// syscall-hung child burns effectively nothing.
constexpr double WedgeMinCpuFraction = 0.05;

/// CPU seconds (user + system) consumed by \p Pid, from /proc/<pid>/stat.
/// Returns -1 when unreadable (child already gone, or no procfs) — the
/// caller falls back to beat-silence-only wedge detection.
double childCpuSeconds(pid_t Pid) {
  char Path[64];
  std::snprintf(Path, sizeof(Path), "/proc/%d/stat", (int)Pid);
  FILE *F = std::fopen(Path, "r");
  if (!F)
    return -1;
  char Buf[1024];
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  Buf[N] = 0;
  // comm (field 2) may contain spaces and parens; the fixed-format fields
  // resume after the LAST ')'. utime/stime are fields 14/15 overall, i.e.
  // the 11th/12th after the closing paren's state character.
  const char *P = std::strrchr(Buf, ')');
  if (!P)
    return -1;
  char State;
  long Ppid, Pgrp, Session, Tty, Tpgid;
  unsigned long Flags, Minflt, Cminflt, Majflt, Cmajflt, Utime, Stime;
  if (std::sscanf(P + 1, " %c %ld %ld %ld %ld %ld %lu %lu %lu %lu %lu %lu %lu",
                  &State, &Ppid, &Pgrp, &Session, &Tty, &Tpgid, &Flags,
                  &Minflt, &Cminflt, &Majflt, &Cmajflt, &Utime, &Stime) != 13)
    return -1;
  long Hz = sysconf(_SC_CLK_TCK);
  return Hz > 0 ? double(Utime + Stime) / double(Hz) : -1;
}

} // namespace

std::vector<std::pair<unsigned, uint64_t>>
SupervisorOutcome::lostShards() const {
  std::vector<std::pair<unsigned, uint64_t>> Out;
  for (const ShardOutcome &S : Shards)
    if (S.Lost)
      Out.emplace_back(S.Index, S.LostIterations);
  return Out;
}

Supervisor::Supervisor(SupervisorConfig C, ShardBody B)
    : Cfg(std::move(C)), Body(std::move(B)) {
  Cfg.Fanout = std::max(1u, Cfg.Fanout);
  if (Cfg.PollSeconds <= 0)
    Cfg.PollSeconds = 0.01;
}

Supervisor::~Supervisor() {
  if (Page)
    munmap(Page, PageSize);
}

bool Supervisor::init(std::string &Error) {
  if (Initialized)
    return true;
  // Never more leases than iterations: tail leases would own empty slices.
  unsigned N = Cfg.Iterations
                   ? (unsigned)std::min<uint64_t>(Cfg.Fanout, Cfg.Iterations)
                   : Cfg.Fanout;
  PageSize = sizeof(Control) + N * sizeof(HeartbeatSlot);
  void *Raw = mmap(nullptr, PageSize, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (Raw == MAP_FAILED || faultAt("supervisor.mmap")) {
    if (Raw != MAP_FAILED)
      munmap(Raw, PageSize);
    Error = "-fanout: cannot map the shared heartbeat page";
    return false;
  }
  Page = Raw;
  Control *Ctl = new (control(Page)) Control;
  Ctl->Stop.store(0, std::memory_order_relaxed);
  HeartbeatSlot *HB = slots(Page);
  Leases.reserve(N);
  for (unsigned I = 0; I != N; ++I) {
    // Same contiguous partition as every other run path: lease I owns
    // seed offsets [Iterations*I/N, Iterations*(I+1)/N).
    Leases.emplace_back(Cfg.Retry, /*StreamTag=*/I + 1);
    Lease &L = Leases.back();
    L.Index = I;
    L.Lo = Cfg.Iterations * I / N;
    L.Hi = Cfg.Iterations * (I + 1) / N;
    new (&HB[I]) HeartbeatSlot;
    HB[I].Cur.store(IdleOffset, std::memory_order_relaxed);
    HB[I].Next.store(L.Lo, std::memory_order_relaxed);
    HB[I].Done.store(0, std::memory_order_relaxed);
    HB[I].Beat.store(0, std::memory_order_relaxed);
  }
  Initialized = true;
  return true;
}

const std::atomic<uint64_t> *Supervisor::doneCounter(unsigned I) const {
  if (!Page || I >= Leases.size())
    return nullptr;
  return &slots(Page)[I].Done;
}

void Supervisor::appendNote(Lease &L, const std::string &Msg) {
  if (!L.Note.empty())
    L.Note += "; ";
  L.Note += Msg;
}

void Supervisor::markLost(Lease &L, const std::string &Why,
                          SupervisorOutcome &Out) {
  L.St = Lease::State::Lost;
  HeartbeatSlot &S = slots(Page)[L.Index];
  uint64_t Next = S.Next.load(std::memory_order_relaxed);
  Next = std::min(std::max(Next, L.Lo), L.Hi);
  appendNote(L, "shard " + std::to_string(L.Index) + " lost: " + Why);
  Out.Degraded = true;
  (void)Next; // exact loss is refined from the last checkpoint at harvest
}

bool Supervisor::spawn(Lease &L, double Now) {
  HeartbeatSlot &S = slots(Page)[L.Index];
  S.Cur.store(IdleOffset, std::memory_order_relaxed);
  // Injected fork failure is evaluated in the parent so its counter
  // persists across the whole campaign (a respawn sees the incremented
  // call count, exactly like a real transient fork failure would recur).
  if (faultAt("supervisor.fork"))
    return false;
  pid_t Pid = fork();
  if (Pid < 0)
    return false;
  if (Pid == 0) {
    // ------- child: run the lease body and nothing else. _exit skips
    // static destructors and parent-inherited stdio flushes.
    ShardContext Ctx;
    Ctx.Index = L.Index;
    Ctx.Lo = L.Lo;
    Ctx.Hi = L.Hi;
    Ctx.Skip = &L.Skip;
    Ctx.Cur = &S.Cur;
    Ctx.Next = &S.Next;
    Ctx.Done = &S.Done;
    Ctx.Beat = &S.Beat;
    Ctx.Stop = &control(Page)->Stop;
    _exit(Body ? Body(Ctx) : 0);
  }
  // ------- parent
  L.Pid = Pid;
  ++L.Spawns;
  L.St = Lease::State::Running;
  L.LastBeat = S.Beat.load(std::memory_order_relaxed);
  L.LastBeatAt = Now;
  L.CpuAtBeat = 0; // fresh process, fresh CPU clock
  // Injected chaos kill: also parent-side, also persistent counters —
  // `supervisor.kill:nth:1` kills exactly the first child ever spawned,
  // once, and every respawn after it survives.
  if (faultAt("supervisor.kill")) {
    kill(Pid, SIGKILL);
    L.KilledByUs = true;
  }
  return true;
}

SupervisorOutcome Supervisor::run(Timer &Total) {
  SupervisorOutcome Out;
  if (!Initialized) {
    Out.Error = "supervisor not initialized";
    return Out;
  }
  Control *Ctl = control(Page);
  HeartbeatSlot *HB = slots(Page);
  double LastTick = 0;

  for (;;) {
    double Now = Total.seconds();
    uint64_t DoneTotal = 0;
    for (const Lease &L : Leases)
      DoneTotal += HB[L.Index].Done.load(std::memory_order_relaxed);
    if (ShouldStop && !Ctl->Stop.load(std::memory_order_relaxed) &&
        ShouldStop(DoneTotal))
      Ctl->Stop.store(1, std::memory_order_relaxed);
    const bool Stopping = Ctl->Stop.load(std::memory_order_relaxed) != 0;

    bool AllSettled = true;
    for (Lease &L : Leases) {
      if (L.St == Lease::State::Done || L.St == Lease::State::Lost)
        continue;

      if (L.St == Lease::State::Pending) {
        // A stopping campaign does not wait out backoff gates: the
        // lease's last checkpoint already holds everything harvestable.
        if (Stopping) {
          L.St = Lease::State::Done;
          continue;
        }
        AllSettled = false;
        if (Now < L.RestartAt)
          continue;
        if (spawn(L, Now))
          continue;
        ++Out.ForkFailures;
        double Delay = L.Retry.nextDelaySeconds();
        if (L.Retry.exhausted())
          markLost(L,
                   "fork failed " + std::to_string(L.Retry.attempts()) +
                       " times (" + describeRetryPolicy(Cfg.Retry) + ")",
                   Out);
        else
          L.RestartAt = Now + Delay;
        continue;
      }

      // Running.
      AllSettled = false;
      uint64_t Beat = HB[L.Index].Beat.load(std::memory_order_relaxed);
      if (Beat != L.LastBeat) {
        L.LastBeat = Beat;
        L.LastBeatAt = Now;
        if (double Cpu = childCpuSeconds(L.Pid); Cpu >= 0)
          L.CpuAtBeat = Cpu;
      } else if (Cfg.LeaseHeartbeatSeconds > 0 && !L.KilledByUs &&
                 Now - L.LastBeatAt > Cfg.LeaseHeartbeatSeconds) {
        // Beat-silent past the deadline — a wedge suspect. The beat only
        // ticks between iterations, so one legitimately long solver query
        // (or plain CPU contention at high fanout) looks identical to a
        // deadlock from here. Second signal: the child's CPU clock. A
        // working child burns CPU through the silent window; a wedged one
        // (deadlock, hung syscall, the chaos sleep hook) burns ~nothing.
        double Cpu = childCpuSeconds(L.Pid);
        if (Cpu >= 0 && Cpu - L.CpuAtBeat >=
                            WedgeMinCpuFraction * (Now - L.LastBeatAt)) {
          // Mid-query, not wedged: extend the lease by resetting the
          // silence clock to the evidence of progress just observed.
          L.CpuAtBeat = Cpu;
          L.LastBeatAt = Now;
          ++Out.LeaseExtensions;
        } else {
          kill(L.Pid, SIGKILL);
          L.KilledByUs = true;
          ++Out.Wedges;
          appendNote(L, "shard " + std::to_string(L.Index) +
                            " wedged (no heartbeat for " +
                            std::to_string(Cfg.LeaseHeartbeatSeconds) +
                            "s, no CPU progress), killed");
        }
      }

      int Status = 0;
      pid_t R = waitpid(L.Pid, &Status, WNOHANG);
      if (R == 0)
        continue;
      L.Pid = -1;
      const bool External = L.KilledByUs;
      L.KilledByUs = false;

      if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
        L.St = Lease::State::Done;
        continue;
      }
      if (WIFEXITED(Status) && WEXITSTATUS(Status) == 3) {
        markLost(L, "cannot write its results", Out);
        continue;
      }

      std::string Why =
          WIFSIGNALED(Status)
              ? std::string("killed by ") + signalName(WTERMSIG(Status))
              : "exited with code " + std::to_string(WEXITSTATUS(Status));
      if (External)
        Why += " (by supervisor)";

      // Progress refills the retry budget: only a lease dying in place
      // exhausts it.
      uint64_t DoneNow = HB[L.Index].Done.load(std::memory_order_relaxed);
      if (DoneNow > L.DoneAtDeath)
        L.Retry.noteProgress();
      L.DoneAtDeath = DoneNow;

      // Crash attribution — retry first, skip only on repeat offenders.
      // An externally-induced death (chaos kill, wedge kill) never
      // implicates the seed in flight: the restarted lease re-runs it and
      // the deterministic report stays byte-identical to -j1.
      uint64_t CurOff = HB[L.Index].Cur.load(std::memory_order_acquire);
      if (!External && CurOff != IdleOffset) {
        if (++L.DeathsAt[CurOff] >= Cfg.SeedDeathThreshold) {
          L.Skip.push_back(CurOff);
          if (OnCrash)
            L.CrashBugs.push_back(OnCrash(L.Index, CurOff, Why));
        }
      }

      double Delay = L.Retry.nextDelaySeconds();
      if (L.Retry.exhausted()) {
        markLost(L,
                 "retry budget exhausted (last exit: " + Why + "; " +
                     describeRetryPolicy(Cfg.Retry) + ")",
                 Out);
      } else {
        ++Out.Restarts;
        L.St = Lease::State::Pending;
        L.RestartAt = Now + Delay;
      }
    }

    if (AllSettled)
      break;
    if (OnTick && TickSeconds > 0 && Now - LastTick >= TickSeconds) {
      LastTick = Now;
      OnTick(DoneTotal, Now);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(Cfg.PollSeconds));
  }

  // Final accounting snapshot.
  for (Lease &L : Leases) {
    ShardOutcome SO;
    SO.Index = L.Index;
    SO.Lo = L.Lo;
    SO.Hi = L.Hi;
    SO.Lost = L.St == Lease::State::Lost;
    if (SO.Lost) {
      uint64_t Next = HB[L.Index].Next.load(std::memory_order_relaxed);
      Next = std::min(std::max(Next, L.Lo), L.Hi);
      // Estimate from the live cursor; the engine refines it against the
      // last durable checkpoint at harvest time.
      SO.LostIterations = L.Hi - Next;
    }
    SO.Spawns = L.Spawns;
    std::stable_sort(L.CrashBugs.begin(), L.CrashBugs.end(),
                     [](const BugRecord &A, const BugRecord &B) {
                       return A.MutantSeed < B.MutantSeed;
                     });
    SO.CrashBugs = std::move(L.CrashBugs);
    SO.Note = L.Note;
    Out.Shards.push_back(std::move(SO));
  }
  return Out;
}
