//===- core/Observability.cpp - Live campaign observation types -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Observability.h"

using namespace alive;

const char *alive::campaignEventName(CampaignEvent::Kind K) {
  switch (K) {
  case CampaignEvent::Kind::CampaignStart:
    return "campaign-start";
  case CampaignEvent::Kind::BugFound:
    return "bug-found";
  case CampaignEvent::Kind::EpochBarrier:
    return "epoch-barrier";
  case CampaignEvent::Kind::Checkpoint:
    return "checkpoint";
  case CampaignEvent::Kind::ShardRestart:
    return "shard-restart";
  case CampaignEvent::Kind::CampaignEnd:
    return "campaign-end";
  }
  return "unknown";
}

CampaignEventQueue::CampaignEventQueue(size_t Capacity)
    : Cap(Capacity ? Capacity : 1), Ring(Cap) {}

bool CampaignEventQueue::push(CampaignEvent E) {
  {
    std::lock_guard<std::mutex> L(M);
    if (Size < Cap) {
      Ring[(Head + Size) % Cap] = std::move(E);
      ++Size;
      Accepted.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Full: drop outside the lock — the producer is a fuzzing worker and
  // must never wait on the observer side.
  Dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

size_t CampaignEventQueue::drain(std::vector<CampaignEvent> &Out) {
  std::lock_guard<std::mutex> L(M);
  size_t N = Size;
  Out.reserve(Out.size() + N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(std::move(Ring[(Head + I) % Cap]));
  Head = (Head + N) % Cap;
  Size = 0;
  return N;
}
