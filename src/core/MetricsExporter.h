//===- core/MetricsExporter.h - Live metrics/health HTTP plane -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedded observability server behind -metrics-port: a MetricsServer
/// binds the campaign's live state to a handful of HTTP endpoints served
/// by net/HttpServer on a dedicated observer thread.
///
///   GET /metrics  Prometheus text exposition of the merged StatRegistry
///                 snapshot (counters, gauges, histogram summaries) plus
///                 campaign meta-gauges. Metric names derive
///                 deterministically from stat slugs ("bug.crash" ->
///                 alive_bug_crash).
///   GET /status   JSON: config echo, per-shard progress, feedback epoch
///                 and family-weight state, event-queue accounting, the
///                 full registry dump (deterministic + volatile classes).
///   GET /healthz  200 while every live shard makes progress; 503 when a
///                 shard's iteration counter has been stale longer than
///                 MetricsOptions::HealthStaleSeconds (watchdog-style
///                 staleness: completed shards are exempt).
///   GET /readyz   200 once a campaign engine is attached, 503 before.
///   GET /events   Server-Sent Events stream of campaign instants
///                 (bug-found, epoch-barrier, checkpoint, shard-restart,
///                 campaign start/end), fed by the bounded drop-on-full
///                 CampaignEventQueue so workers never block.
///   GET /series   JSON time series: periodic registry samples in a
///                 fixed-capacity ring (oldest evicted first).
///   GET /profile.json    Cost-attribution snapshot (-profile): the
///                 merged top-K most-expensive-query table plus the
///                 volatile sampling/cache-shard data; {"enabled": false}
///                 when profiling is off. Live mid-run, final after run().
///   GET /flamegraph.json Collapsed-stack flamegraph export of the
///                 sampling profiler ({"stacks": [{"stack", "count"}]}).
///   GET /dashboard       A dependency-free live HTML dashboard polling
///                 /status, /series and /profile.json and following the
///                 /events SSE stream. Everything inline; no CDN.
///
/// Observer-only invariant: everything here runs on the server thread and
/// reads the campaign exclusively through CampaignEngine::liveSnapshot()
/// and the event queue. No RandomGenerator, no deterministic-report state
/// is ever touched, so -j1 == -jN byte-identity and -resume byte-equality
/// hold with or without a server attached (tests enforce this).
///
//===----------------------------------------------------------------------===//

#ifndef CORE_METRICSEXPORTER_H
#define CORE_METRICSEXPORTER_H

#include "core/Observability.h"
#include "core/RunReport.h"
#include "net/HttpServer.h"
#include "support/Timer.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace alive {

class CampaignEngine;

struct MetricsOptions {
  /// TCP port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (resolved port via MetricsServer::port()).
  uint16_t Port = 0;
  /// Seconds between /series samples (-metrics-interval).
  double SnapshotInterval = 1.0;
  /// A live shard whose iteration counter has not advanced for this many
  /// seconds flips /healthz to 503 (-health-stale; <= 0 disables).
  double HealthStaleSeconds = 10.0;
  /// Ring capacity of the /series buffer (oldest samples evicted).
  size_t SeriesCapacity = 600;
  /// Bounded event-queue capacity (drop-on-full).
  size_t EventQueueCapacity = 1024;
};

/// One /series sample: a flattened counter snapshot at time T.
struct MetricsSample {
  double T = 0; ///< seconds since the server started
  uint64_t Done = 0;
  std::vector<std::pair<std::string, uint64_t>> Counters;
};

/// The metrics endpoint layer. Owns the HTTP server and the campaign
/// event queue; borrows the engine (setEngine may rebind mid-flight, e.g.
/// the bench harness pointing the same server at consecutive per-file
/// campaigns — detach with setEngine(nullptr) before the old engine
/// dies).
class MetricsServer {
public:
  explicit MetricsServer(const MetricsOptions &Opts = MetricsOptions());
  ~MetricsServer();
  MetricsServer(const MetricsServer &) = delete;
  MetricsServer &operator=(const MetricsServer &) = delete;

  /// The queue to hand to CampaignEngine::setEventQueue (and
  /// FuzzOptions::Events for standalone loops).
  CampaignEventQueue &events() { return Queue; }

  /// Attaches/detaches the observed engine. Thread-safe; the engine must
  /// outlive its binding.
  void setEngine(CampaignEngine *E);

  /// Static /status config echo (tool name, passes, seed range...).
  void setConfigEcho(const RunReportConfig &C);

  /// Binds and starts the server thread. \returns false + \p Error on
  /// bind failure.
  bool start(std::string &Error);
  /// Graceful shutdown (final SSE farewell, join). Idempotent.
  void stop();

  uint16_t port() const { return Server.port(); }
  bool running() const { return Server.running(); }

  /// Number of /series samples currently buffered (server-thread ring;
  /// approximate when read concurrently). Test hook.
  size_t seriesSize() const;

private:
  HttpResponse handle(const HttpRequest &Req);
  void tick();
  CampaignLiveSnapshot snapshotNow();
  CampaignProfile profileNow();

  std::string renderMetrics(const CampaignLiveSnapshot &S);
  std::string renderStatus(const CampaignLiveSnapshot &S);
  std::string renderSeries();
  std::string renderProfile();
  std::string renderFlamegraph();
  /// \returns true when healthy; fills \p Body with the JSON verdict.
  bool renderHealth(const CampaignLiveSnapshot &S, std::string &Body);

  MetricsOptions Opts;
  HttpServer Server;
  CampaignEventQueue Queue;
  Timer Clock;

  /// Guards the engine binding and config echo (rebindable from outside
  /// the server thread); everything else below is server-thread state.
  mutable std::mutex M;
  CampaignEngine *Engine = nullptr;
  RunReportConfig Config;
  bool HasConfig = false;

  // --- server-thread state ---
  std::vector<MetricsSample> Series; ///< ring: [Head, Head+Size) mod cap
  size_t SeriesHead = 0;
  mutable std::mutex SeriesM; ///< seriesSize() test hook only
  size_t SeriesCount = 0;
  double LastSample = -1e18;
  uint64_t NextEventId = 1; ///< SSE id, monotonically increasing

  /// Per-shard staleness tracking for /healthz: last observed Done value
  /// and when it last changed.
  struct ShardSeen {
    uint64_t Done = 0;
    double Since = 0;
    bool Init = false;
  };
  std::vector<ShardSeen> Seen;
};

/// Formats one campaign event as an SSE frame ("id: N\nevent: ...\n
/// data: {...}\n\n"). Exposed for tests.
std::string formatSSE(uint64_t Id, const CampaignEvent &E);

/// Sanitizes a stat slug into a Prometheus metric name component: every
/// character outside [a-zA-Z0-9_] becomes '_' (deterministic, so slugs
/// map to stable series names). Exposed for tests and check_metrics.py
/// parity.
std::string prometheusName(const std::string &Slug);

} // namespace alive

#endif // CORE_METRICSEXPORTER_H
