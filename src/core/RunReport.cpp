//===- core/RunReport.cpp - Machine-readable campaign report ---------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RunReport.h"

#include "support/AtomicFile.h"
#include "support/FaultPlane.h"

#include <map>
#include <sstream>

using namespace alive;

namespace {

/// Derived per-pass / per-family tables: parses the registry's
/// "pass.<name>.<field>" and "mutation.<family>.<field>" counters back
/// into row objects. The raw counters stay in the report too; the tables
/// are the convenient view and check_stats_json.py cross-checks the two.
struct TableRow {
  uint64_t A = 0; // invocations / applied
  uint64_t B = 0; // changed / rejected
};

std::map<std::string, TableRow> collectTable(const StatRegistry &R,
                                             const std::string &Prefix,
                                             const std::string &FieldA,
                                             const std::string &FieldB) {
  std::map<std::string, TableRow> Rows;
  R.forEachCounter(Volatility::Deterministic, [&](const std::string &Name,
                                                  uint64_t Value) {
    if (Name.rfind(Prefix, 0) != 0)
      return;
    size_t Dot = Name.rfind('.');
    if (Dot == std::string::npos || Dot < Prefix.size())
      return;
    std::string Key = Name.substr(Prefix.size(), Dot - Prefix.size());
    std::string Field = Name.substr(Dot + 1);
    if (Field == FieldA)
      Rows[Key].A = Value;
    else if (Field == FieldB)
      Rows[Key].B = Value;
  });
  return Rows;
}

void writeTable(std::ostream &OS, const std::map<std::string, TableRow> &Rows,
                const char *KeyName, const char *AName, const char *BName) {
  OS << "[";
  bool First = true;
  for (const auto &[Key, Row] : Rows) {
    OS << (First ? "\n" : ",\n") << "      {\"" << KeyName << "\": ";
    First = false;
    writeJSONString(OS, Key);
    OS << ", \"" << AName << "\": " << Row.A << ", \"" << BName
       << "\": " << Row.B << "}";
  }
  OS << (First ? "" : "\n    ") << "]";
}

} // namespace

void alive::writeRunReport(std::ostream &OS, const RunReportConfig &Config,
                           const FuzzStats &S,
                           const std::vector<BugRecord> &Bugs,
                           const StatRegistry &R,
                           const CampaignProfile *Profile) {
  const bool Profiling = Profile && Profile->Enabled;
  OS << "{\n";
  OS << "  \"schema_version\": " << RunReportSchemaVersion << ",\n";
  OS << "  \"tool\": ";
  writeJSONString(OS, Config.Tool);
  OS << ",\n";

  // --- Deterministic section: byte-identical for every worker count. ---
  OS << "  \"deterministic\": {\n";
  OS << "    \"config\": {\"passes\": ";
  writeJSONString(OS, Config.Passes);
  OS << ", \"iterations\": " << Config.Iterations
     << ", \"seed\": " << Config.BaseSeed
     << ", \"max_mutations\": " << Config.MaxMutationsPerFunction
     << ", \"corpus_files\": " << Config.CorpusFiles
     << ", \"corpus_skipped\": " << Config.CorpusSkipped << "},\n";

  OS << "    \"summary\": {"
     << "\"mutants\": " << S.MutantsGenerated
     << ", \"mutations_applied\": " << S.MutationsApplied
     << ", \"optimized\": " << S.Optimized
     << ", \"verified\": " << S.Verified
     << ", \"verify_skipped\": " << S.VerifySkipped
     << ", \"refinement_failures\": " << S.RefinementFailures
     << ", \"crashes\": " << S.Crashes
     << ", \"inconclusive\": " << S.Inconclusive
     << ", \"functions_dropped\": " << S.FunctionsDropped
     << ", \"invalid_mutants\": " << S.InvalidMutants
     << ", \"mutants_saved\": " << S.MutantsSaved
     << ", \"save_failures\": " << S.SaveFailures
     << ", \"bundles\": " << S.BundlesWritten
     << ", \"bundle_failures\": " << S.BundleFailures << "},\n";

  OS << "    \"per_pass\": ";
  writeTable(OS, collectTable(R, "pass.", "invocations", "changed"), "pass",
             "invocations", "changed");
  OS << ",\n";

  OS << "    \"per_family\": ";
  writeTable(OS, collectTable(R, "mutation.", "applied", "rejected"),
             "family", "applied", "rejected");
  OS << ",\n";

  OS << "    \"tv_verdicts\": {";
  {
    bool First = true;
    R.forEachCounter(Volatility::Deterministic,
                     [&](const std::string &Name, uint64_t Value) {
                       if (Name.rfind("tv.verdict.", 0) != 0)
                         return;
                       OS << (First ? "" : ", ");
                       First = false;
                       writeJSONString(OS, Name.substr(sizeof("tv.verdict.") - 1));
                       OS << ": " << Value;
                     });
  }
  OS << "},\n";

  // The feedback block: derived views of the "feedback.*" deterministic
  // counters (the raw counters stay in "stats" below, like the per-pass
  // tables). An off-run reports just the flag.
  OS << "    \"feedback\": {\"enabled\": "
     << (Config.FeedbackOn ? "true" : "false");
  if (Config.FeedbackOn) {
    OS << ", \"epoch_length\": " << Config.FeedbackEpochLength
       << ", \"epochs\": " << R.counterValue("feedback.epochs")
       << ", \"bits_covered\": " << R.counterValue("feedback.bits_covered")
       << ", \"functions_tracked\": "
       << R.counterValue("feedback.functions_tracked")
       << ", \"energy_skips\": " << R.counterValue("feedback.energy_skips")
       << ", \"rules\": [";
    bool First = true;
    R.forEachCounter(Volatility::Deterministic,
                     [&](const std::string &Name, uint64_t Value) {
                       if (Name.rfind("feedback.rule.", 0) != 0)
                         return;
                       OS << (First ? "\n" : ",\n") << "      {\"rule\": ";
                       First = false;
                       writeJSONString(
                           OS, Name.substr(sizeof("feedback.rule.") - 1));
                       OS << ", \"iterations\": " << Value << "}";
                     });
    OS << (First ? "" : "\n    ") << "], \"weights\": {";
    First = true;
    R.forEachCounter(Volatility::Deterministic,
                     [&](const std::string &Name, uint64_t Value) {
                       if (Name.rfind("feedback.weight.", 0) != 0)
                         return;
                       OS << (First ? "" : ", ");
                       First = false;
                       writeJSONString(
                           OS, Name.substr(sizeof("feedback.weight.") - 1));
                       OS << ": " << Value;
                     });
    OS << "}";
  }
  OS << "},\n";

  // The cost-attribution block: the merged top-K most-expensive queries.
  // Solver counters are replayed byte-for-byte on cache hits and the
  // per-worker trackers merge exactly in worker order, so the table is
  // worker-count independent (the wall-clock side lives in the volatile
  // profile block below).
  OS << "    \"profile\": {\"enabled\": " << (Profiling ? "true" : "false");
  if (Profiling) {
    OS << ", \"topk\": " << Profile->TopK << ", \"queries\": ";
    writeTopQueriesJSON(OS, Profile->TopQueries, "    ");
  }
  OS << "},\n";

  OS << "    \"stats\": ";
  R.writeJSON(OS, Volatility::Deterministic, "    ");
  OS << ",\n";

  // Counted from the record list itself (not FuzzStats): callers may
  // report a filtered subset, e.g. bench_campaign's one-per-defect list.
  uint64_t Miscompiles = 0;
  for (const BugRecord &B : Bugs)
    if (B.Kind == BugRecord::Miscompile)
      ++Miscompiles;
  OS << "    \"bugs\": {\"total\": " << Bugs.size() << ", \"miscompiles\": "
     << Miscompiles << ", \"crashes\": " << (Bugs.size() - Miscompiles)
     << ", \"records\": [";
  {
    bool First = true;
    for (const BugRecord &B : Bugs) {
      OS << (First ? "\n" : ",\n") << "      {\"kind\": \""
         << (B.Kind == BugRecord::Miscompile ? "miscompile" : "crash")
         << "\", \"function\": ";
      First = false;
      writeJSONString(OS, B.FunctionName);
      OS << ", \"seed\": " << B.MutantSeed << ", \"issue\": ";
      writeJSONString(OS, B.IssueId);
      OS << ", \"bundle\": ";
      // The forensics cross-link: "" when bundle writing was off or the
      // write failed (then bundle_failures in the summary is non-zero).
      writeJSONString(OS, B.BundlePath);
      OS << "}";
    }
    OS << (First ? "" : "\n    ") << "]}\n";
  }
  OS << "  },\n";

  // --- Volatile section: wall-clock and scheduling-dependent. ---
  OS << "  \"volatile\": {\n";
  OS << "    \"jobs\": " << Config.Jobs << ",\n";
  OS << "    \"stage_seconds\": {\"mutate\": ";
  writeJSONDouble(OS, S.MutateSeconds);
  OS << ", \"optimize\": ";
  writeJSONDouble(OS, S.OptimizeSeconds);
  OS << ", \"verify\": ";
  writeJSONDouble(OS, S.VerifySeconds);
  OS << ", \"overhead\": ";
  writeJSONDouble(OS, S.OverheadSeconds);
  OS << ", \"worker_total\": ";
  writeJSONDouble(OS, S.WorkerSeconds);
  OS << ", \"wall\": ";
  writeJSONDouble(OS, Config.WallSeconds);
  OS << "},\n";
  OS << "    \"cache\": {\"hits\": " << S.TVCacheHits
     << ", \"misses\": " << S.TVCacheMisses
     << ", \"evictions\": " << S.TVCacheEvictions << "},\n";
  // Timeouts depend on the step budget or wall clock in force, and an
  // interrupted run is by definition a scheduling artifact — volatile.
  // The degradation ladder lives here too: whether a supervised lease
  // exhausted its retries (and exactly which iterations were lost) is a
  // property of this run's fault history, never of the seed range.
  OS << "    \"survivability\": {\"timeouts\": " << S.Timeouts
     << ", \"interrupted\": " << (Config.Interrupted ? "true" : "false")
     << ", \"degraded\": " << (Config.Degraded ? "true" : "false")
     << ", \"fanout\": " << Config.FanOut << ", \"lost_shards\": [";
  {
    bool First = true;
    for (const auto &[Shard, Lost] : Config.LostShards) {
      OS << (First ? "" : ", ") << "{\"shard\": " << Shard
         << ", \"lost_iterations\": " << Lost << "}";
      First = false;
    }
  }
  OS << "]},\n";
  // Fault-injection accounting: which -inject-fault points were armed and
  // how often each edge was reached/failed. {"armed": false} (with an
  // empty table) in production, so consumers can key on the block
  // unconditionally.
  {
    std::vector<FaultPointCounters> Faults = FaultPlane::instance().counters();
    OS << "    \"fault_injection\": {\"armed\": "
       << (Faults.empty() ? "false" : "true") << ", \"points\": [";
    bool First = true;
    for (const FaultPointCounters &F : Faults) {
      OS << (First ? "\n" : ",\n") << "      {\"point\": ";
      First = false;
      writeJSONString(OS, F.Point);
      OS << ", \"spec\": ";
      writeJSONString(OS, F.Spec);
      OS << ", \"calls\": " << F.Calls << ", \"triggers\": " << F.Triggers
         << "}";
    }
    OS << (First ? "" : "\n    ") << "]},\n";
  }
  // Flight-recorder ring overwrites: always present (empty tracks when
  // tracing was off) so consumers can key on the block unconditionally.
  {
    uint64_t TotalDropped = 0;
    for (const auto &[_, N] : Config.TraceDropped)
      TotalDropped += N;
    OS << "    \"trace\": {\"dropped_events\": " << TotalDropped
       << ", \"tracks\": [";
    bool First = true;
    for (const auto &[Name, N] : Config.TraceDropped) {
      OS << (First ? "" : ", ") << "{\"name\": ";
      writeJSONString(OS, Name);
      OS << ", \"dropped_events\": " << N << "}";
      First = false;
    }
    OS << "]},\n";
  }
  // The volatile half of the profile: wall-clock per query, sampling
  // folds, cache shard heat — all scheduling artifacts.
  OS << "    \"profile\": {\"enabled\": " << (Profiling ? "true" : "false");
  if (Profiling) {
    OS << ", \"data\": ";
    writeProfileVolatileJSON(OS, *Profile, "    ");
  }
  OS << "},\n";
  OS << "    \"stats\": ";
  R.writeJSON(OS, Volatility::Volatile, "    ");
  OS << "\n  }\n";
  OS << "}\n";
}

bool alive::writeRunReportFile(const std::string &Path,
                               const RunReportConfig &Config,
                               const FuzzStats &Stats,
                               const std::vector<BugRecord> &Bugs,
                               const StatRegistry &Registry,
                               std::string &Error,
                               const CampaignProfile *Profile) {
  // tmp+fsync+rename under the "report.*" fault points: a kill mid-write
  // leaves the previous report (or nothing), never a torn JSON document.
  std::ostringstream OS;
  writeRunReport(OS, Config, Stats, Bugs, Registry, Profile);
  std::string WriteError;
  if (!writeFileAtomicDurable(Path, OS.str(), "report", WriteError)) {
    Error = "cannot write stats report '" + Path + "': " + WriteError;
    return false;
  }
  return true;
}
