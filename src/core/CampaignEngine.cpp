//===- core/CampaignEngine.cpp - Parallel sharded campaign engine ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"

#include "core/Checkpoint.h"
#include "core/Supervisor.h"
#include "parser/Printer.h"
#include "support/FaultPlane.h"
#include "support/SignalGuard.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <new>
#include <thread>

#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace alive;

CampaignEngine::CampaignEngine(const FuzzOptions &Opts, unsigned Jobs)
    : Opts(Opts), Jobs(std::max(1u, Jobs)) {
  if (this->Opts.UseSharedTVCache && this->Opts.TVCacheSize > 0) {
    // One cache for the whole campaign; every worker loop gets this
    // pointer through its copied FuzzOptions. A caller-provided cache
    // (Opts.SharedCache already set) is kept instead, so one cache can
    // outlive and span several engines — the bench harness uses this to
    // share verdicts across its per-file campaigns.
    if (!this->Opts.SharedCache) {
      SharedCache = std::make_unique<SharedTVCache>(this->Opts.TVCacheSize,
                                                    this->Opts.TVCacheShards);
      this->Opts.SharedCache = SharedCache.get();
    }
  } else {
    this->Opts.SharedCache = nullptr;
  }
  MasterLoop = std::make_unique<FuzzerLoop>(this->Opts);
  ConfigError = MasterLoop->configError();
}

CampaignEngine::~CampaignEngine() = default;

unsigned CampaignEngine::loadModule(std::unique_ptr<Module> M) {
  // Preprocess (and §III-A self-check) once, on the master; workers
  // inherit the surviving function set instead of redoing the TV work —
  // and FunctionsDropped is counted exactly once, as in a sequential run.
  return MasterLoop->loadModule(std::move(M));
}

std::vector<std::string> CampaignEngine::testableFunctions() const {
  return MasterLoop->testableFunctions();
}

void CampaignEngine::setProgress(
    double IntervalSeconds, std::function<void(const CampaignProgress &)> Fn) {
  ProgressInterval = IntervalSeconds;
  ProgressFn = std::move(Fn);
}

std::unique_ptr<Module>
CampaignEngine::makeMutant(uint64_t Seed,
                           std::vector<std::string> *AppliedOut) const {
  return MasterLoop->makeMutant(Seed, AppliedOut);
}

bool CampaignEngine::writeTrace(const std::string &Path,
                                std::string &Error) const {
  if (Traces.empty()) {
    Error = "no trace recorded: campaign ran without tracing enabled";
    return false;
  }
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write trace '" + Path + "'";
    return false;
  }
  std::vector<const TraceRecorder *> Tracks;
  for (const auto &T : Traces)
    Tracks.push_back(T.get());
  writeChromeTrace(Out, Tracks, TraceNames);
  Out.close();
  if (!Out) {
    Error = "I/O error writing trace '" + Path + "'";
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, uint64_t>>
CampaignEngine::traceDropped() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (size_t I = 0; I != Traces.size(); ++I)
    Out.emplace_back(I < TraceNames.size() ? TraceNames[I] : "",
                     Traces[I]->dropped());
  return Out;
}

void CampaignEngine::beginLive(bool Isolated, uint64_t Target,
                               unsigned Workers, const Timer *Clock) {
  std::lock_guard<std::mutex> Lock(LiveM);
  Live.Running = true;
  Live.Isolated = Isolated;
  Live.Target = Target;
  Live.Workers = Workers;
  Live.Clock = Clock;
  Live.Shards.clear();
  Live.FeedbackEpochs = 0;
  Live.FeedbackBits = 0;
  Live.FamilyWeights.clear();
}

void CampaignEngine::addLiveShard(LiveShardRef R) {
  std::lock_guard<std::mutex> Lock(LiveM);
  Live.Shards.push_back(std::move(R));
}

void CampaignEngine::publishFeedbackLive(uint64_t Epochs, unsigned Bits,
                                         const ScheduleState &Schedule) {
  std::lock_guard<std::mutex> Lock(LiveM);
  Live.FeedbackEpochs = Epochs;
  Live.FeedbackBits = Bits;
  Live.FamilyWeights.clear();
  for (size_t K = 0; K != Schedule.FamilyWeights.size(); ++K)
    Live.FamilyWeights.emplace_back(mutationKindName((MutationKind)K),
                                    Schedule.FamilyWeights[K]);
}

void CampaignEngine::endLive() {
  std::lock_guard<std::mutex> Lock(LiveM);
  if (Live.Running)
    HasRun = true;
  Live.Running = false;
  Live.Clock = nullptr;
  // Revoke the borrowed pointers: the workers (or the heartbeat page)
  // are about to be destroyed.
  Live.Shards.clear();
}

void CampaignEngine::emitEvent(CampaignEvent::Kind K, uint64_t Seed,
                               unsigned Shard, std::string Detail) {
  if (!Events)
    return;
  CampaignEvent E;
  E.K = K;
  E.Seed = Seed;
  E.Shard = Shard;
  E.Nanos = TraceRecorder::now();
  E.Detail = std::move(Detail);
  Events->push(std::move(E));
}

CampaignLiveSnapshot CampaignEngine::liveSnapshot() const {
  CampaignLiveSnapshot S;
  std::lock_guard<std::mutex> Lock(LiveM);
  S.Running = Live.Running;
  S.Isolated = Live.Isolated;
  S.Degraded = DegradedFlag;
  S.Workers = Live.Running ? Live.Workers : Jobs;
  S.Target = Live.Running ? Live.Target : Opts.Iterations;
  S.FeedbackEnabled = Opts.Feedback.Enabled;
  S.FeedbackEpochs = Live.FeedbackEpochs;
  S.FeedbackBits = Live.FeedbackBits;
  S.FamilyWeights = Live.FamilyWeights;
  if (Live.Running) {
    if (Live.Clock)
      S.Elapsed = Live.Clock->seconds();
    // Point-in-time, not linearizable: each shard's counters are relaxed
    // atomic loads, each registry snapshot is internally consistent
    // enough for monitoring (Telemetry.h documents the contract).
    S.Stats = MasterLoop->registry().snapshot();
    for (const LiveShardRef &R : Live.Shards) {
      ShardLiveState SS;
      SS.Index = R.Index;
      SS.Lo = R.Lo;
      SS.Hi = R.Hi;
      if (R.Done)
        SS.Done = R.Done->load(std::memory_order_relaxed);
      if (R.StageNanos)
        for (unsigned I = 0; I != 4; ++I)
          SS.StageNanos[I] = R.StageNanos[I].load(std::memory_order_relaxed);
      if (R.Loop) {
        SS.HasRegistry = true;
        S.Stats.merge(R.Loop->registry());
        if (const TraceRecorder *T = R.Loop->trace())
          SS.TraceDropped = T->dropped();
      }
      S.Done += SS.Done;
      S.Shards.push_back(std::move(SS));
    }
  } else {
    S.Done = TotalDone.load(std::memory_order_relaxed);
    // After a run: the final merged registry (every worker folded in).
    // Before the first: the master's preprocessing stats are all there is.
    S.Stats = HasRun ? Registry.snapshot() : MasterLoop->registry().snapshot();
  }
  return S;
}

void CampaignEngine::finishProfile(
    const std::vector<const QueryCostTracker *> &Trackers) {
  std::lock_guard<std::mutex> Lock(LiveM);
  Profile = CampaignProfile();
  Profile.Enabled = Opts.Profile.Enabled;
  if (!Profile.Enabled) {
    Sampler.reset();
    return;
  }
  Profile.TopK = Opts.Profile.TopK;
  Profile.SamplingIntervalMs = Opts.Profile.SamplingIntervalMs;
  // Worker-order merge of the K-bounded trackers yields the exact global
  // top-K (Profiler.h has the proof sketch), so this block lands in the
  // report's deterministic section.
  QueryCostTracker Merged(Opts.Profile.TopK);
  for (const QueryCostTracker *T : Trackers)
    Merged.merge(*T);
  Profile.TopQueries = Merged.top();
  if (Sampler) {
    Sampler->stop();
    Profile.Collapsed = Sampler->collapsed();
    Profile.Samples = Sampler->samples();
    Sampler.reset();
  }
  if (SharedCache)
    Profile.CacheShards = SharedCache->shardHeat();
}

CampaignProfile CampaignEngine::profileSnapshot() const {
  std::lock_guard<std::mutex> Lock(LiveM);
  if (!Live.Running || !Opts.Profile.Enabled)
    return Profile;
  // Mid-run: merge the live shards' trackers (observer-side, same rules
  // as the final merge — just a point-in-time prefix of it) and copy the
  // sampler's current folds.
  CampaignProfile P;
  P.Enabled = true;
  P.TopK = Opts.Profile.TopK;
  P.SamplingIntervalMs = Opts.Profile.SamplingIntervalMs;
  QueryCostTracker Merged(Opts.Profile.TopK);
  for (const LiveShardRef &R : Live.Shards)
    if (R.Loop)
      if (const QueryCostTracker *T = R.Loop->queryCosts())
        Merged.merge(*T);
  P.TopQueries = Merged.top();
  if (Sampler) {
    P.Collapsed = Sampler->collapsed();
    P.Samples = Sampler->samples();
  }
  if (SharedCache)
    P.CacheShards = SharedCache->shardHeat();
  return P;
}

namespace {

/// One worker: a private FuzzerLoop over a private master-module clone,
/// plus the atomic counters the reporter thread reads and the thread's
/// measured wall time.
struct Worker {
  std::unique_ptr<FuzzerLoop> Loop;
  unsigned Index = 0;
  /// Static seed-offset partition [Lo, Hi) (iteration-bounded mode).
  uint64_t Lo = 0, Hi = 0;
  /// Next seed offset to run; advanced by the dispatch loop, read by the
  /// checkpoint writer.
  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Done{0};
  /// Live per-stage nanoseconds: mutate, optimize, verify, overhead.
  std::atomic<uint64_t> StageNanos[4] = {};
  double ThreadSeconds = 0;
};

/// Sums every per-iteration counter and phase timer of \p From into
/// \p Into. TotalSeconds is deliberately excluded: summing wall-clock
/// across concurrent workers would double-count; the engine reports its
/// own wall time.
void accumulate(FuzzStats &Into, const FuzzStats &From) {
  Into.MutantsGenerated += From.MutantsGenerated;
  Into.MutationsApplied += From.MutationsApplied;
  Into.Optimized += From.Optimized;
  Into.Verified += From.Verified;
  Into.VerifySkipped += From.VerifySkipped;
  Into.TVCacheHits += From.TVCacheHits;
  Into.TVCacheMisses += From.TVCacheMisses;
  Into.TVCacheEvictions += From.TVCacheEvictions;
  Into.RefinementFailures += From.RefinementFailures;
  Into.Crashes += From.Crashes;
  Into.Inconclusive += From.Inconclusive;
  Into.FunctionsDropped += From.FunctionsDropped;
  Into.InvalidMutants += From.InvalidMutants;
  Into.MutantsSaved += From.MutantsSaved;
  Into.SaveFailures += From.SaveFailures;
  Into.BundlesWritten += From.BundlesWritten;
  Into.BundleFailures += From.BundleFailures;
  Into.Timeouts += From.Timeouts;
  Into.MutateSeconds += From.MutateSeconds;
  Into.OptimizeSeconds += From.OptimizeSeconds;
  Into.VerifySeconds += From.VerifySeconds;
  Into.OverheadSeconds += From.OverheadSeconds;
  // WorkerSeconds sums loop wall times across workers — the denominator
  // of the stage-sum invariant (the engine's own wall clock would be ~J
  // times smaller than the summed stage times).
  Into.WorkerSeconds += From.WorkerSeconds;
}

/// Closes one dispatch leg's books: the leg's wall time joins the
/// cumulative WorkerSeconds (checkpointed with the rest of FuzzStats, so
/// it keeps accumulating across resume legs), and whatever the stage
/// timers did not claim joins the overhead bucket — the stage-sum
/// invariant then holds for the cumulative numbers.
void settleWorkerSeconds(FuzzerLoop &Loop, double LegSeconds) {
  FuzzStats S = Loop.stats();
  S.WorkerSeconds += LegSeconds;
  double Staged = S.MutateSeconds + S.OptimizeSeconds + S.VerifySeconds +
                  S.OverheadSeconds;
  if (S.WorkerSeconds > Staged)
    S.OverheadSeconds += S.WorkerSeconds - Staged;
  Loop.restoreState(S, Loop.bugs());
}

/// The wall-clock backstop: polls each loop's watchdog serial a few times
/// per timeout period and CAS-cancels a token that sat on one serial for
/// longer than the timeout. Fires only through CancellationToken's
/// cancelIfStillOn, so a worker that advanced in the meantime is never
/// hit (and a stale hit is cleared by the next beginIteration anyway).
class WallClockSupervisor {
public:
  WallClockSupervisor(std::vector<FuzzerLoop *> WatchedLoops, double Timeout)
      : Loops(std::move(WatchedLoops)), Timeout(Timeout) {
    if (Loops.empty() || Timeout <= 0)
      return;
    Last.resize(Loops.size());
    Th = std::thread([this] { poll(); });
  }
  ~WallClockSupervisor() { stop(); }

  void stop() {
    if (!Th.joinable())
      return;
    {
      std::lock_guard<std::mutex> Lock(M);
      Done = true;
    }
    CV.notify_all();
    Th.join();
  }

private:
  struct Seen {
    uint64_t Serial = 0;
    std::chrono::steady_clock::time_point Since;
    bool Init = false;
  };

  void poll() {
    // The interval must genuinely subdivide the timeout or sub-interval
    // stalls are invisible: a floor of 5ms once made any timeout below
    // ~20ms a no-op (the serial always advanced between ticks). The
    // 100us floor bounds the busy-poll cost while keeping millisecond
    // backstops — the kind the tests use — honest.
    double PollSeconds = std::clamp(Timeout / 4, 0.0001, 0.05);
    std::unique_lock<std::mutex> Lock(M);
    while (!CV.wait_for(Lock, std::chrono::duration<double>(PollSeconds),
                        [this] { return Done; })) {
      auto Now = std::chrono::steady_clock::now();
      for (size_t I = 0; I != Loops.size(); ++I) {
        CancellationToken *T = Loops[I]->watchdog();
        if (!T)
          continue;
        uint64_t S = T->serial();
        if (!Last[I].Init || Last[I].Serial != S) {
          Last[I] = {S, Now, true};
          continue;
        }
        if (std::chrono::duration<double>(Now - Last[I].Since).count() >=
            Timeout) {
          T->cancelIfStillOn(S);
          // Re-arm: if the worker stays wedged despite the cancel (it
          // should not — every instrumented stage polls), fire again a
          // full period later rather than every poll tick.
          Last[I].Since = Now;
        }
      }
    }
  }

  std::vector<FuzzerLoop *> Loops;
  double Timeout;
  std::vector<Seen> Last;
  std::thread Th;
  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
};

} // namespace

const FuzzStats &CampaignEngine::run() {
  if (!ConfigError.empty())
    return Stats;
  if (Opts.Iterations == 0 && Opts.TimeLimitSeconds <= 0) {
    ConfigError = "unbounded campaign: set Iterations (-n) or "
                  "TimeLimitSeconds (-t)";
    return Stats;
  }
  if (!MasterLoop->module()) {
    ConfigError = "no module loaded";
    return Stats;
  }
  const SurvivalOptions &SV = Opts.Survival;
  const bool TimeLimited = Opts.Iterations == 0;
  const bool Checkpointing = !SV.CheckpointDir.empty();
  if ((Checkpointing || SV.Isolate || SV.Fanout) &&
      (TimeLimited || Opts.TimeLimitSeconds > 0)) {
    // A time-limited campaign has no reproducible seed schedule: neither a
    // resumed run nor a harvested shard could reconstruct "where it was".
    // That includes -n combined with -t: the static dispatch ignores the
    // time limit, so accepting the combination would silently checkpoint
    // a campaign whose advertised bound is not the one being enforced.
    ConfigError = "checkpointing, -isolate and -fanout require an "
                  "iteration-bounded campaign: replace -t with -n";
    return Stats;
  }
  if (SV.Fanout) {
    // The supervised fan-out shares -isolate's process-boundary coherence
    // matrix (shard state lives in children the parent cannot trace,
    // profile or epoch-merge) and is itself a process supervisor.
    if (SV.Isolate) {
      ConfigError = "-fanout and -isolate are both process supervisors: "
                    "pick one";
      return Stats;
    }
    if (Opts.Feedback.Enabled) {
      ConfigError = "-feedback cannot run with -fanout: supervised shards "
                    "have no epoch barrier to merge coverage at";
      return Stats;
    }
    if (Opts.TraceEnabled) {
      ConfigError = "-fanout cannot collect flight-recorder traces from "
                    "child processes; drop tracing or -fanout";
      return Stats;
    }
    if (Opts.Profile.Enabled) {
      ConfigError = "-fanout cannot profile child processes; drop "
                    "-profile or -fanout";
      return Stats;
    }
  }
  if (Opts.Feedback.Enabled) {
    // Feedback's own coherence matrix. The schedule makes a mutant a
    // function of (seed, campaign history): -t has no deterministic
    // history; -isolate shards cannot share the epoch barrier; bug
    // bundles regenerate their mutation trail schedule-free and would
    // describe a different mutant than the one that failed.
    if (TimeLimited || Opts.TimeLimitSeconds > 0) {
      ConfigError = "-feedback requires an iteration-bounded campaign: "
                    "replace -t with -n";
      return Stats;
    }
    if (SV.Isolate) {
      ConfigError = "-feedback cannot run with -isolate: isolated shards "
                    "have no epoch barrier to merge coverage at";
      return Stats;
    }
    if (!Opts.BugBundleDir.empty()) {
      ConfigError = "-feedback cannot run with -bug-bundles: bundle trails "
                    "replay seeds without the schedule and would not match "
                    "the failing mutant";
      return Stats;
    }
  }
  if (SV.Resume && !Checkpointing) {
    ConfigError = "resume requires a checkpoint directory";
    return Stats;
  }
  if (SV.Isolate && Opts.TraceEnabled) {
    ConfigError = "-isolate cannot collect flight-recorder traces from "
                  "child processes; drop tracing or -isolate";
    return Stats;
  }
  if (SV.Isolate && Opts.Profile.Enabled) {
    // Same process boundary as tracing: the trackers and live span stacks
    // live in the children, where the parent can neither sample nor merge.
    ConfigError = "-isolate cannot profile child processes; drop -profile "
                  "or -isolate";
    return Stats;
  }

  Timer Total;
  const std::vector<std::string> Testable = MasterLoop->testableFunctions();

  // Never spawn idle workers: with fewer iterations than threads the tail
  // workers would own empty shards.
  unsigned J = Jobs;
  if (!TimeLimited)
    J = (unsigned)std::min<uint64_t>(J, Opts.Iterations);

  Interrupted = false;
  IsolateError.clear();
  DegradedFlag = false;
  LostShardsV.clear();
  TotalDone.store(0, std::memory_order_relaxed);
  Profile = CampaignProfile();

  emitEvent(CampaignEvent::Kind::CampaignStart, Opts.BaseSeed, 0,
            SV.Fanout               ? "fanout"
            : SV.Isolate            ? "isolate"
            : Opts.Feedback.Enabled ? "feedback"
            : TimeLimited           ? "time-limited"
                                    : "blind");

  if (SV.Fanout)
    return runSupervised(Testable, Total);
  if (SV.Isolate)
    return runIsolated(J, Testable, Total);
  if (Opts.Feedback.Enabled)
    return runFeedback(J, Testable, Total);

  // Checkpoint-directory identity: write it fresh, or verify it against a
  // resume. The meta pins everything the seed schedule and the partition
  // depend on, so a stale/mismatched checkpoint is a config error, never
  // a silently-wrong merge.
  if (Checkpointing) {
    CheckpointMeta Cur;
    Cur.Passes = Opts.Passes;
    Cur.Iterations = Opts.Iterations;
    Cur.BaseSeed = Opts.BaseSeed;
    Cur.Jobs = J;
    Cur.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    Cur.InjectBugs = !Opts.Bugs.empty();
    Cur.ModuleHash = hashModuleText(printModule(*MasterLoop->module()));
    std::string Err;
    if (SV.Resume) {
      CheckpointMeta Stored;
      if (!readCheckpointMeta(SV.CheckpointDir, Stored, Err) ||
          !checkpointMetaMatches(Stored, Cur, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
    } else if (!writeCheckpointMeta(SV.CheckpointDir, Cur, Err)) {
      ConfigError = Err;
      return Stats;
    }
  }

  // Build the workers up front on this thread (module cloning allocates
  // into per-module interning contexts; keep that serial and simple).
  std::vector<std::unique_ptr<Worker>> Workers;
  for (unsigned I = 0; I != J; ++I) {
    auto W = std::make_unique<Worker>();
    W->Index = I;
    FuzzOptions WOpts = Opts;
    WOpts.SelfCheckOnLoad = false;
    WOpts.OnlyFunctions = Testable;
    WOpts.Progress = &W->Done;
    WOpts.StageNanos = W->StageNanos;
    WOpts.Events = Events;
    WOpts.WorkerIndex = I;
    if (!TimeLimited) {
      // Static contiguous partition: worker I owns seeds
      // [BaseSeed + Lo, BaseSeed + Hi) — ascending across workers, so a
      // merge in worker order reproduces the sequential bug order.
      W->Lo = Opts.Iterations * I / J;
      W->Hi = Opts.Iterations * (I + 1) / J;
      W->Next.store(W->Lo, std::memory_order_relaxed);
      WOpts.BaseSeed = Opts.BaseSeed + W->Lo;
      WOpts.Iterations = W->Hi - W->Lo;
    }
    W->Loop = std::make_unique<FuzzerLoop>(WOpts);
    // Workers only fuzz the testable set — hand them a subset clone whose
    // non-testable functions are declaration stubs instead of paying a
    // full deep copy per worker (and per mutant inside the loop).
    W->Loop->loadModule(cloneModuleSubset(*MasterLoop->module(), Testable));
    if (SV.Resume) {
      WorkerCheckpoint WC;
      std::string Err;
      if (!readWorkerCheckpoint(SV.CheckpointDir, I, WC, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
      if (WC.Lo != W->Lo || WC.Hi != W->Hi) {
        ConfigError = "cannot resume: shard " + std::to_string(I) +
                      " was checkpointed with a different seed partition";
        return Stats;
      }
      restoreWorker(WC, *W->Loop);
      W->Next.store(WC.Next, std::memory_order_relaxed);
      W->Done.store(WC.Next - WC.Lo, std::memory_order_relaxed);
    }
    Workers.push_back(std::move(W));
  }

  // Open the live observer window now that every worker exists. The
  // guard sits after the Workers vector, so on every exit path the refs
  // are revoked before the workers they borrow from are destroyed.
  beginLive(/*Isolated=*/false, TimeLimited ? 0 : Opts.Iterations, J, &Total);
  for (auto &W : Workers)
    addLiveShard({W->Index, W->Lo, W->Hi, &W->Done, W->StageNanos,
                  W->Loop.get()});
  struct LiveGuard {
    CampaignEngine *E;
    ~LiveGuard() { E->endLive(); }
  } LG{this};

  // The wall-clock sampler rides the workers' live span stacks for the
  // whole run window. Created under LiveM so profileSnapshot() never sees
  // a half-built sampler.
  if (Opts.Profile.Enabled) {
    auto SP =
        std::make_unique<SamplingProfiler>(Opts.Profile.SamplingIntervalMs);
    for (auto &W : Workers)
      SP->attach("w" + std::to_string(W->Index), W->Loop->trace());
    SP->start();
    std::lock_guard<std::mutex> G(LiveM);
    Sampler = std::move(SP);
  }

  // Shared seed counter for the time-limited mode (no fixed partition).
  std::atomic<uint64_t> NextOffset{0};

  // The wall-clock backstop, when configured: one supervisor thread for
  // all workers (it only reads serials and CAS-writes cancel flags).
  std::vector<FuzzerLoop *> WatchedLoops;
  if (SV.WallTimeoutSeconds > 0)
    for (auto &W : Workers)
      WatchedLoops.push_back(W->Loop.get());
  WallClockSupervisor Supervisor(std::move(WatchedLoops),
                                 SV.WallTimeoutSeconds);

  std::vector<std::thread> Threads;
  for (auto &WPtr : Workers) {
    Worker *W = WPtr.get();
    if (!TimeLimited) {
      // The engine drives the iterations itself (instead of Loop->run())
      // so it can stop at any boundary and checkpoint periodically.
      uint64_t Base = Opts.BaseSeed;
      uint64_t Interval =
          Checkpointing ? (SV.CheckpointInterval ? SV.CheckpointInterval : 64)
                        : 0;
      std::string Dir = SV.CheckpointDir;
      Threads.emplace_back([this, W, Base, Interval, Dir] {
        Timer Leg;
        uint64_t Since = 0;
        auto Checkpoint = [&] {
          std::string Err;
          bool Ok = writeWorkerCheckpoint(
              Dir,
              snapshotWorker(W->Index, W->Lo, W->Hi,
                             W->Next.load(std::memory_order_relaxed),
                             *W->Loop),
              Err);
          ++W->Loop->mutableRegistry().counter(
              Ok ? "survive.checkpoint.writes" : "survive.checkpoint.failures",
              Volatility::Volatile);
          emitEvent(CampaignEvent::Kind::Checkpoint, 0, W->Index,
                    Ok ? "ok" : "failed");
        };
        for (uint64_t Off = W->Next.load(std::memory_order_relaxed);
             Off != W->Hi; ++Off) {
          if (StopReq.load(std::memory_order_relaxed))
            break;
          uint64_t After = StopAfter.load(std::memory_order_relaxed);
          if (After && TotalDone.load(std::memory_order_relaxed) >= After)
            break;
          W->Loop->runIteration(Base + Off);
          W->Next.store(Off + 1, std::memory_order_relaxed);
          W->Done.fetch_add(1, std::memory_order_relaxed);
          TotalDone.fetch_add(1, std::memory_order_relaxed);
          if (Interval && ++Since >= Interval) {
            Since = 0;
            Checkpoint();
          }
        }
        W->ThreadSeconds = Leg.seconds();
        settleWorkerSeconds(*W->Loop, W->ThreadSeconds);
        // Final snapshot after the books are closed: a stopped campaign
        // resumes from here, a finished one records Next == Hi.
        if (Interval)
          Checkpoint();
      });
    } else {
      double Limit = Opts.TimeLimitSeconds;
      uint64_t Base = Opts.BaseSeed;
      std::atomic<uint64_t> *Next = &NextOffset;
      Threads.emplace_back([this, W, Limit, Base, Next, &Total] {
        Timer Thread;
        while (Total.seconds() < Limit &&
               !StopReq.load(std::memory_order_relaxed)) {
          uint64_t Off = Next->fetch_add(1, std::memory_order_relaxed);
          W->Loop->runIteration(Base + Off);
          W->Done.fetch_add(1, std::memory_order_relaxed);
          TotalDone.fetch_add(1, std::memory_order_relaxed);
        }
        // The loops never call run() in this mode, so measure the worker
        // wall time here for the stage-sum invariant.
        W->ThreadSeconds = Thread.seconds();
      });
    }
  }

  // The reporter: wakes every ProgressInterval seconds, aggregates the
  // workers' atomic counters, and hands the snapshot to the callback.
  std::mutex DoneMutex;
  std::condition_variable DoneCV;
  bool AllDone = false;
  std::thread Reporter;
  if (ProgressInterval > 0 && ProgressFn) {
    Reporter = std::thread([&] {
      std::unique_lock<std::mutex> Lock(DoneMutex);
      for (;;) {
        if (DoneCV.wait_for(Lock,
                            std::chrono::duration<double>(ProgressInterval),
                            [&] { return AllDone; }))
          return;
        CampaignProgress P;
        uint64_t Stage[4] = {};
        for (const auto &W : Workers) {
          P.Done += W->Done.load(std::memory_order_relaxed);
          for (unsigned I = 0; I != 4; ++I)
            Stage[I] += W->StageNanos[I].load(std::memory_order_relaxed);
        }
        P.Target = TimeLimited ? 0 : Opts.Iterations;
        P.Elapsed = Total.seconds();
        P.Workers = J;
        if (P.Elapsed > 0)
          P.Rate = (double)P.Done / P.Elapsed;
        if (TimeLimited)
          P.EtaSeconds = std::max(0.0, Opts.TimeLimitSeconds - P.Elapsed);
        else if (P.Rate > 0)
          P.EtaSeconds = (double)(P.Target - P.Done) / P.Rate;
        double StageSum =
            (double)(Stage[0] + Stage[1] + Stage[2] + Stage[3]);
        if (StageSum > 0) {
          P.MutateShare = Stage[0] / StageSum;
          P.OptimizeShare = Stage[1] / StageSum;
          P.VerifyShare = Stage[2] / StageSum;
          P.OverheadShare = Stage[3] / StageSum;
        }
        ProgressFn(P);
      }
    });
  }

  for (std::thread &T : Threads)
    T.join();
  Supervisor.stop();
  if (Reporter.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      AllDone = true;
    }
    DoneCV.notify_all();
    Reporter.join();
  }
  if (Sampler)
    Sampler->stop();
  endLive();

  // Deterministic merge. Stats: master preprocessing (FunctionsDropped)
  // plus every worker's counters. Bugs: worker shards are already in
  // ascending seed order, so concatenation in worker order equals the
  // sequential order; the dynamic mode interleaves seeds across workers
  // and needs the explicit (stable) sort.
  Stats = FuzzStats();
  Stats.FunctionsDropped = MasterLoop->stats().FunctionsDropped;
  Bugs.clear();
  SaveDirError.clear();
  BundleError.clear();
  Registry = StatRegistry();
  Registry.merge(MasterLoop->registry());
  // Collect the flight-recorder tracks now — the workers die with this
  // scope, the recorders must not. All tracks share one process-global
  // epoch, so the merged timeline lines up across threads.
  Traces.clear();
  TraceNames.clear();
  if (auto T = MasterLoop->takeTrace()) {
    Registry.counter("trace.dropped_events", Volatility::Volatile) +=
        T->dropped();
    Traces.push_back(std::move(T));
    TraceNames.push_back("master");
  }
  unsigned WorkerIdx = 0;
  std::vector<const QueryCostTracker *> CostTrackers;
  for (const auto &W : Workers) {
    if (const QueryCostTracker *QT = W->Loop->queryCosts())
      CostTrackers.push_back(QT);
    const FuzzStats &WS = W->Loop->stats();
    accumulate(Stats, WS);
    if (TimeLimited) {
      // Dynamic-mode loops carry no WorkerSeconds of their own: the
      // engine measured each thread's wall time instead, and the dispatch
      // loop's bookkeeping (the part outside runIteration) goes to the
      // overhead bucket. (Static-mode legs settle this per worker before
      // their final checkpoint.)
      Stats.WorkerSeconds += W->ThreadSeconds;
      double Staged = WS.MutateSeconds + WS.OptimizeSeconds +
                      WS.VerifySeconds + WS.OverheadSeconds;
      if (W->ThreadSeconds > Staged)
        Stats.OverheadSeconds += W->ThreadSeconds - Staged;
    } else if (W->Next.load(std::memory_order_relaxed) != W->Hi) {
      Interrupted = true;
    }
    Registry.merge(W->Loop->registry());
    if (SaveDirError.empty())
      SaveDirError = W->Loop->saveDirError();
    if (BundleError.empty())
      BundleError = W->Loop->bundleError();
    if (auto T = W->Loop->takeTrace()) {
      // Satellite observability: ring overwrites are a volatile artifact
      // of scheduling and capacity, surfaced per worker in the report's
      // "trace" block and summed here for the registry.
      Registry.counter("trace.dropped_events", Volatility::Volatile) +=
          T->dropped();
      Traces.push_back(std::move(T));
      TraceNames.push_back("worker " + std::to_string(WorkerIdx));
    }
    ++WorkerIdx;
    const std::vector<BugRecord> &WB = W->Loop->bugs();
    Bugs.insert(Bugs.end(), WB.begin(), WB.end());
  }
  finishProfile(CostTrackers);
  if (TimeLimited) {
    Interrupted = StopReq.load(std::memory_order_relaxed);
    std::stable_sort(Bugs.begin(), Bugs.end(),
                     [](const BugRecord &A, const BugRecord &B) {
                       return A.MutantSeed < B.MutantSeed;
                     });
  }
  Stats.TotalSeconds = Total.seconds();
  emitEvent(CampaignEvent::Kind::CampaignEnd, 0, 0,
            Interrupted ? "interrupted" : "completed");
  return Stats;
}

const FuzzStats &
CampaignEngine::runFeedback(unsigned J,
                            const std::vector<std::string> &Testable,
                            Timer &Total) {
  const SurvivalOptions &SV = Opts.Survival;
  const bool Checkpointing = !SV.CheckpointDir.empty();
  const uint64_t EpochLen = std::max(1u, Opts.Feedback.EpochLength);

  if (Checkpointing) {
    CheckpointMeta Cur;
    Cur.Passes = Opts.Passes;
    Cur.Iterations = Opts.Iterations;
    Cur.BaseSeed = Opts.BaseSeed;
    Cur.Jobs = J;
    Cur.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    Cur.InjectBugs = !Opts.Bugs.empty();
    Cur.FeedbackOn = true;
    Cur.EpochLength = (unsigned)EpochLen;
    Cur.ModuleHash = hashModuleText(printModule(*MasterLoop->module()));
    std::string Err;
    if (SV.Resume) {
      CheckpointMeta Stored;
      if (!readCheckpointMeta(SV.CheckpointDir, Stored, Err) ||
          !checkpointMetaMatches(Stored, Cur, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
    } else if (!writeCheckpointMeta(SV.CheckpointDir, Cur, Err)) {
      ConfigError = Err;
      return Stats;
    }
  }

  // Build the workers. Unlike the blind static path there is no whole-range
  // partition: each epoch is sliced afresh, so every worker's checkpoint
  // cursor ranges over the full [0, Iterations) and all cursors agree at
  // every epoch boundary.
  std::vector<std::unique_ptr<Worker>> Workers;
  for (unsigned I = 0; I != J; ++I) {
    auto W = std::make_unique<Worker>();
    W->Index = I;
    W->Lo = 0;
    W->Hi = Opts.Iterations;
    FuzzOptions WOpts = Opts;
    WOpts.SelfCheckOnLoad = false;
    WOpts.OnlyFunctions = Testable;
    WOpts.Progress = &W->Done;
    WOpts.StageNanos = W->StageNanos;
    WOpts.Events = Events;
    WOpts.WorkerIndex = I;
    W->Loop = std::make_unique<FuzzerLoop>(WOpts);
    W->Loop->loadModule(cloneModuleSubset(*MasterLoop->module(), Testable));
    Workers.push_back(std::move(W));
  }

  beginLive(/*Isolated=*/false, Opts.Iterations, J, &Total);
  for (auto &W : Workers)
    addLiveShard({W->Index, W->Lo, W->Hi, &W->Done, W->StageNanos,
                  W->Loop.get()});
  struct LiveGuard {
    CampaignEngine *E;
    ~LiveGuard() { E->endLive(); }
  } LG{this};

  // Workers persist across epochs, so one sampler spans the whole epoch
  // loop (the barrier gaps just sample empty stacks, i.e. nothing).
  if (Opts.Profile.Enabled) {
    auto SP =
        std::make_unique<SamplingProfiler>(Opts.Profile.SamplingIntervalMs);
    for (auto &W : Workers)
      SP->attach("w" + std::to_string(W->Index), W->Loop->trace());
    SP->start();
    std::lock_guard<std::mutex> G(LiveM);
    Sampler = std::move(SP);
  }

  FeedbackMap Global;
  ScheduleState Schedule;
  uint64_t EpochStart = 0;

  if (SV.Resume) {
    FeedbackCheckpoint FC;
    std::string Err;
    if (!readFeedbackCheckpoint(SV.CheckpointDir, FC, Err)) {
      ConfigError = "cannot resume: " + Err;
      return Stats;
    }
    Global = std::move(FC.Global);
    Schedule = std::move(FC.Schedule);
    EpochStart = FC.NextOffset;
    if (EpochStart > Opts.Iterations ||
        (EpochStart % EpochLen != 0 && EpochStart != Opts.Iterations)) {
      ConfigError = "cannot resume: feedback.json records offset " +
                    std::to_string(EpochStart) +
                    ", which is not an epoch boundary";
      return Stats;
    }
    for (auto &W : Workers) {
      WorkerCheckpoint WC;
      if (!readWorkerCheckpoint(SV.CheckpointDir, W->Index, WC, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
      if (WC.Next != EpochStart) {
        ConfigError = "cannot resume: shard " + std::to_string(W->Index) +
                      " was checkpointed at a different epoch boundary";
        return Stats;
      }
      restoreWorker(WC, *W->Loop);
      W->Next.store(EpochStart, std::memory_order_relaxed);
    }
    TotalDone.store(EpochStart, std::memory_order_relaxed);
  }

  for (auto &W : Workers)
    W->Loop->setSchedule(&Schedule);

  std::vector<FuzzerLoop *> WatchedLoops;
  if (SV.WallTimeoutSeconds > 0)
    for (auto &W : Workers)
      WatchedLoops.push_back(W->Loop.get());
  WallClockSupervisor Supervisor(std::move(WatchedLoops),
                                 SV.WallTimeoutSeconds);

  auto WriteCheckpoints = [&] {
    std::string Err;
    bool Ok = true;
    for (auto &W : Workers)
      Ok &= writeWorkerCheckpoint(
          SV.CheckpointDir,
          snapshotWorker(W->Index, 0, Opts.Iterations, EpochStart, *W->Loop),
          Err);
    FeedbackCheckpoint FC;
    FC.Global = Global;
    FC.Schedule = Schedule;
    FC.NextOffset = EpochStart;
    Ok &= writeFeedbackCheckpoint(SV.CheckpointDir, FC, Err);
    // Account on worker 0's (volatile) registry, like the blind path does
    // per worker — the engine registry is rebuilt by the final merge.
    ++Workers[0]->Loop->mutableRegistry().counter(
        Ok ? "survive.checkpoint.writes" : "survive.checkpoint.failures",
        Volatility::Volatile);
    emitEvent(CampaignEvent::Kind::Checkpoint, 0, 0,
              (Ok ? std::string("ok") : std::string("failed")) + " at offset " +
                  std::to_string(EpochStart));
  };

  std::vector<double> LegSeconds(J, 0.0);
  double LastReport = 0;
  bool Stopped = false;
  // Stop requests are honored at epoch boundaries only: mid-epoch pending
  // coverage would otherwise be lost (or worse, half-merged), and an epoch
  // is bounded work anyway.
  while (EpochStart < Opts.Iterations) {
    if (StopReq.load(std::memory_order_relaxed)) {
      Stopped = true;
      break;
    }
    uint64_t After = StopAfter.load(std::memory_order_relaxed);
    if (After && TotalDone.load(std::memory_order_relaxed) >= After) {
      Stopped = true;
      break;
    }
    const uint64_t EpochEnd =
        std::min<uint64_t>(Opts.Iterations, EpochStart + EpochLen);
    const uint64_t L = EpochEnd - EpochStart;
    std::vector<std::thread> Threads;
    for (unsigned I = 0; I != J; ++I) {
      Worker *W = Workers[I].get();
      const uint64_t SLo = EpochStart + L * I / J;
      const uint64_t SHi = EpochStart + L * (I + 1) / J;
      Threads.emplace_back([this, W, SLo, SHi, I, &LegSeconds] {
        Timer Leg;
        for (uint64_t Off = SLo; Off != SHi; ++Off) {
          W->Loop->runIteration(Opts.BaseSeed + Off);
          W->Next.store(Off + 1, std::memory_order_relaxed);
          W->Done.fetch_add(1, std::memory_order_relaxed);
          TotalDone.fetch_add(1, std::memory_order_relaxed);
        }
        LegSeconds[I] += Leg.seconds();
      });
    }
    for (std::thread &T : Threads)
      T.join();

    // The epoch barrier: merge the workers' coverage deltas in
    // worker-index order (the OR is commutative, so the order only
    // matters for reproducible floating of nothing — any order gives the
    // same map), then advance the schedule as a pure function of the
    // cumulative maps.
    FeedbackMap Prev = Global;
    for (auto &W : Workers)
      Global.merge(W->Loop->takeFeedback());
    Schedule.update(Prev, Global);
    EpochStart = EpochEnd;
    publishFeedbackLive((EpochStart + EpochLen - 1) / EpochLen,
                        (unsigned)Global.Global.popcount(), Schedule);
    emitEvent(CampaignEvent::Kind::EpochBarrier, 0, 0,
              "offset " + std::to_string(EpochEnd) + ", bits " +
                  std::to_string(Global.Global.popcount()));
    if (Checkpointing)
      WriteCheckpoints();
    if (ProgressInterval > 0 && ProgressFn &&
        Total.seconds() - LastReport >= ProgressInterval) {
      LastReport = Total.seconds();
      CampaignProgress P;
      uint64_t Stage[4] = {};
      for (const auto &W : Workers)
        for (unsigned S = 0; S != 4; ++S)
          Stage[S] += W->StageNanos[S].load(std::memory_order_relaxed);
      P.Done = TotalDone.load(std::memory_order_relaxed);
      P.Target = Opts.Iterations;
      P.Elapsed = Total.seconds();
      P.Workers = J;
      if (P.Elapsed > 0)
        P.Rate = (double)P.Done / P.Elapsed;
      if (P.Rate > 0)
        P.EtaSeconds = (double)(P.Target - P.Done) / P.Rate;
      double StageSum = (double)(Stage[0] + Stage[1] + Stage[2] + Stage[3]);
      if (StageSum > 0) {
        P.MutateShare = Stage[0] / StageSum;
        P.OptimizeShare = Stage[1] / StageSum;
        P.VerifyShare = Stage[2] / StageSum;
        P.OverheadShare = Stage[3] / StageSum;
      }
      ProgressFn(P);
    }
  }
  Supervisor.stop();
  if (Sampler)
    Sampler->stop();
  endLive();
  Interrupted = Stopped || EpochStart != Opts.Iterations;

  for (unsigned I = 0; I != J; ++I) {
    settleWorkerSeconds(*Workers[I]->Loop, LegSeconds[I]);
    Workers[I]->Loop->setSchedule(nullptr);
  }
  // Final snapshot with the settled books (a stopped campaign resumes
  // from here; a finished one records NextOffset == Iterations).
  if (Checkpointing)
    WriteCheckpoints();

  FinalFeedback = Global;
  FinalSchedule = Schedule;

  // Deterministic merge — as the blind static path, except the bug lists
  // interleave across workers (each worker owns one slice per epoch), so
  // the concatenation needs the explicit seed sort. Same-seed bugs come
  // from a single worker's list and stable_sort preserves their relative
  // order, so the result is worker-count independent.
  Stats = FuzzStats();
  Stats.FunctionsDropped = MasterLoop->stats().FunctionsDropped;
  Bugs.clear();
  SaveDirError.clear();
  BundleError.clear();
  Registry = StatRegistry();
  Registry.merge(MasterLoop->registry());
  Traces.clear();
  TraceNames.clear();
  if (auto T = MasterLoop->takeTrace()) {
    Registry.counter("trace.dropped_events", Volatility::Volatile) +=
        T->dropped();
    Traces.push_back(std::move(T));
    TraceNames.push_back("master");
  }
  unsigned WorkerIdx = 0;
  std::vector<const QueryCostTracker *> CostTrackers;
  for (const auto &W : Workers) {
    if (const QueryCostTracker *QT = W->Loop->queryCosts())
      CostTrackers.push_back(QT);
    accumulate(Stats, W->Loop->stats());
    Registry.merge(W->Loop->registry());
    if (SaveDirError.empty())
      SaveDirError = W->Loop->saveDirError();
    if (BundleError.empty())
      BundleError = W->Loop->bundleError();
    if (auto T = W->Loop->takeTrace()) {
      // Satellite observability: ring overwrites are a volatile artifact
      // of scheduling and capacity, surfaced per worker in the report's
      // "trace" block and summed here for the registry.
      Registry.counter("trace.dropped_events", Volatility::Volatile) +=
          T->dropped();
      Traces.push_back(std::move(T));
      TraceNames.push_back("worker " + std::to_string(WorkerIdx));
    }
    ++WorkerIdx;
    const std::vector<BugRecord> &WB = W->Loop->bugs();
    Bugs.insert(Bugs.end(), WB.begin(), WB.end());
  }
  finishProfile(CostTrackers);
  std::stable_sort(Bugs.begin(), Bugs.end(),
                   [](const BugRecord &A, const BugRecord &B) {
                     return A.MutantSeed < B.MutantSeed;
                   });

  // Engine-level feedback counters, derived from the final state alone
  // (not incremented along the way) so a resumed campaign reports the
  // same numbers as an uninterrupted one.
  Registry.counter("feedback.epochs") = (EpochStart + EpochLen - 1) / EpochLen;
  Registry.counter("feedback.bits_covered") = FinalFeedback.Global.popcount();
  Registry.counter("feedback.functions_tracked") =
      FinalFeedback.PerFunction.size();
  for (size_t K = 0; K != FinalSchedule.FamilyWeights.size(); ++K)
    Registry.counter(std::string("feedback.weight.") +
                     mutationKindName((MutationKind)K)) =
        FinalSchedule.FamilyWeights[K];

  Stats.TotalSeconds = Total.seconds();
  emitEvent(CampaignEvent::Kind::CampaignEnd, 0, 0,
            Interrupted ? "interrupted" : "completed");
  return Stats;
}

namespace {

/// Per-shard heartbeat slot in the MAP_SHARED control page: the child
/// stores the offset in flight before each iteration and the idle
/// sentinel between them, so the parent can attribute a fatal signal to
/// its seed (or see that the crash fell between iterations).
struct Heartbeat {
  std::atomic<uint64_t> Cur;
  std::atomic<uint64_t> Done;
};

/// Shared stop flag ahead of the heartbeat slots: the only channel the
/// parent has into the children.
struct IsoControl {
  std::atomic<uint32_t> Stop;
};

constexpr uint64_t IdleOffset = ~0ull;

} // namespace

const FuzzStats &
CampaignEngine::runIsolated(unsigned J,
                            const std::vector<std::string> &Testable,
                            Timer &Total) {
  const SurvivalOptions &SV = Opts.Survival;
  namespace fs = std::filesystem;

  // The checkpoint directory doubles as the harvest channel: children
  // write their state there, the parent merges from it. Without a
  // user-provided directory, use (and afterwards remove) a private one.
  std::string Dir = SV.CheckpointDir;
  const bool OwnDir = Dir.empty();
  if (OwnDir) {
    std::error_code EC;
    Dir = (fs::temp_directory_path(EC) /
           ("alive-mutate-isolate-" + std::to_string(getpid())))
              .string();
  }
  {
    CheckpointMeta Cur;
    Cur.Passes = Opts.Passes;
    Cur.Iterations = Opts.Iterations;
    Cur.BaseSeed = Opts.BaseSeed;
    Cur.Jobs = J;
    Cur.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    Cur.InjectBugs = !Opts.Bugs.empty();
    Cur.ModuleHash = hashModuleText(printModule(*MasterLoop->module()));
    std::string Err;
    if (SV.Resume) {
      CheckpointMeta Stored;
      if (!readCheckpointMeta(Dir, Stored, Err) ||
          !checkpointMetaMatches(Stored, Cur, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
    } else if (!writeCheckpointMeta(Dir, Cur, Err)) {
      ConfigError = Err;
      return Stats;
    }
  }

  const size_t MapSize = sizeof(IsoControl) + J * sizeof(Heartbeat);
  void *Raw = mmap(nullptr, MapSize, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (Raw == MAP_FAILED || faultAt("isolate.mmap")) {
    if (Raw != MAP_FAILED)
      munmap(Raw, MapSize);
    ConfigError = "-isolate: cannot map the shared heartbeat page";
    return Stats;
  }
  IsoControl *Ctl = new (Raw) IsoControl;
  Ctl->Stop.store(0, std::memory_order_relaxed);
  Heartbeat *HB =
      reinterpret_cast<Heartbeat *>(static_cast<char *>(Raw) +
                                    sizeof(IsoControl));
  for (unsigned I = 0; I != J; ++I) {
    new (&HB[I]) Heartbeat;
    HB[I].Cur.store(IdleOffset, std::memory_order_relaxed);
    HB[I].Done.store(0, std::memory_order_relaxed);
  }

  struct Shard {
    uint64_t Lo = 0, Hi = 0;
    pid_t Pid = -1;
    bool Finished = false;
    unsigned Attempts = 0; ///< forks so far
    unsigned Stalls = 0;   ///< consecutive exits with no attributable seed
    uint64_t DoneAtExit = 0;
    double RestartAt = 0; ///< Total.seconds() timestamp gating the refork
    std::vector<uint64_t> Skip; ///< crashed offsets, excluded on restart
    std::vector<BugRecord> CrashBugs;
  };
  std::vector<Shard> Shards(J);
  for (unsigned I = 0; I != J; ++I) {
    Shards[I].Lo = Opts.Iterations * I / J;
    Shards[I].Hi = Opts.Iterations * (I + 1) / J;
  }
  const uint64_t Interval = SV.CheckpointInterval ? SV.CheckpointInterval : 16;

  // Live view over the heartbeat page: Done counters only (the page has
  // no stage split and the shard registries live in child processes).
  // endLive() runs explicitly before each munmap — the refs must never
  // outlive the mapping — with the guard as the exception backstop.
  beginLive(/*Isolated=*/true, Opts.Iterations, J, &Total);
  for (unsigned I = 0; I != J; ++I)
    addLiveShard({I, Shards[I].Lo, Shards[I].Hi, &HB[I].Done,
                  /*StageNanos=*/nullptr, /*Loop=*/nullptr});
  struct LiveGuard {
    CampaignEngine *E;
    ~LiveGuard() { E->endLive(); }
  } LG{this};

  // Initialize the merged state now: the poll loop below accounts crash
  // bugs and restart counters live, the final harvest adds the shard
  // checkpoints on top.
  Stats = FuzzStats();
  Stats.FunctionsDropped = MasterLoop->stats().FunctionsDropped;
  Bugs.clear();
  SaveDirError.clear();
  BundleError.clear();
  Registry = StatRegistry();
  Registry.merge(MasterLoop->registry());
  Traces.clear();
  TraceNames.clear();

  auto Spawn = [&](unsigned I) -> bool {
    Shard &S = Shards[I];
    HB[I].Cur.store(IdleOffset, std::memory_order_relaxed);
    // Parent-side injection so the counter persists across respawns.
    if (faultAt("isolate.fork"))
      return false;
    pid_t Pid = fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      // ------- child: one shard, sequential, in a disposable process.
      // The address space is a copy-on-write snapshot of the parent, so
      // the preprocessed master module is already here. A fatal signal
      // anywhere below kills only this process; the parent classifies it
      // and restarts the shard from its last checkpoint.
      if (SV.IsolateMemMB) {
        rlimit R{SV.IsolateMemMB << 20, SV.IsolateMemMB << 20};
        setrlimit(RLIMIT_AS, &R);
      }
      if (SV.IsolateCpuSeconds) {
        rlimit R{SV.IsolateCpuSeconds, SV.IsolateCpuSeconds};
        setrlimit(RLIMIT_CPU, &R);
      }
      FuzzOptions WOpts = Opts;
      WOpts.SelfCheckOnLoad = false;
      WOpts.OnlyFunctions = Testable;
      WOpts.Survival.Isolate = false;
      // The event queue lives in the parent's address space; the fork's
      // copy has no observer draining it.
      WOpts.Events = nullptr;
      WOpts.WorkerIndex = I;
      // The process boundary IS the crash containment; the in-process
      // guard would only hide the signal from the parent's classifier.
      WOpts.Survival.SignalGuard = false;
      WOpts.BaseSeed = Opts.BaseSeed + S.Lo;
      WOpts.Iterations = S.Hi - S.Lo;
      FuzzerLoop Loop(WOpts);
      Loop.loadModule(cloneModuleSubset(*MasterLoop->module(), Testable));
      uint64_t Cursor = S.Lo;
      {
        WorkerCheckpoint WC;
        std::string Err;
        if (readWorkerCheckpoint(Dir, I, WC, Err) && WC.Lo == S.Lo &&
            WC.Hi == S.Hi) {
          restoreWorker(WC, Loop);
          Cursor = WC.Next;
        }
      }
      // The parent cannot see into this address space, so the wall-clock
      // backstop runs as a thread of the child itself.
      WallClockSupervisor Sup({&Loop}, SV.WallTimeoutSeconds);
      Timer Leg;
      uint64_t Since = 0;
      std::string CkptErr;
      while (Cursor != S.Hi) {
        if (Ctl->Stop.load(std::memory_order_relaxed))
          break;
        uint64_t Off = Cursor;
        if (std::find(S.Skip.begin(), S.Skip.end(), Off) != S.Skip.end()) {
          ++Cursor;
          HB[I].Done.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        HB[I].Cur.store(Off, std::memory_order_release);
        Loop.runIteration(Opts.BaseSeed + Off);
        HB[I].Cur.store(IdleOffset, std::memory_order_release);
        ++Cursor;
        HB[I].Done.fetch_add(1, std::memory_order_relaxed);
        if (++Since >= Interval) {
          Since = 0;
          writeWorkerCheckpoint(
              Dir, snapshotWorker(I, S.Lo, S.Hi, Cursor, Loop), CkptErr);
        }
      }
      settleWorkerSeconds(Loop, Leg.seconds());
      bool Ok = writeWorkerCheckpoint(
          Dir, snapshotWorker(I, S.Lo, S.Hi, Cursor, Loop), CkptErr);
      Sup.stop();
      // _exit: no static destructors, no double-flush of parent-inherited
      // stdio buffers. Exit code 3 = "results could not be written" — the
      // parent abandons the shard instead of retrying forever.
      _exit(Ok ? 0 : 3);
    }
    // ------- parent
    S.Pid = Pid;
    ++S.Attempts;
    return true;
  };

  auto NoteIsolate = [&](const std::string &Msg) {
    if (!IsolateError.empty())
      IsolateError += "; ";
    IsolateError += Msg;
  };

  for (unsigned I = 0; I != J; ++I)
    if (!Spawn(I)) {
      ConfigError = "-isolate: fork failed";
      Ctl->Stop.store(1, std::memory_order_relaxed);
      endLive();
      munmap(Raw, MapSize);
      return Stats;
    }

  uint64_t ParentBundles = 0, ParentBundleFailures = 0;
  double LastReport = 0;
  for (;;) {
    double Now = Total.seconds();
    uint64_t DoneTotal = 0;
    for (unsigned I = 0; I != J; ++I)
      DoneTotal += HB[I].Done.load(std::memory_order_relaxed);
    TotalDone.store(DoneTotal, std::memory_order_relaxed);
    uint64_t After = StopAfter.load(std::memory_order_relaxed);
    if ((StopReq.load(std::memory_order_relaxed) ||
         (After && DoneTotal >= After)) &&
        !Ctl->Stop.load(std::memory_order_relaxed))
      Ctl->Stop.store(1, std::memory_order_relaxed);

    bool AllFinished = true;
    for (unsigned I = 0; I != J; ++I) {
      Shard &S = Shards[I];
      if (S.Finished)
        continue;
      AllFinished = false;
      if (S.Pid < 0) {
        // Awaiting its backoff-gated restart.
        if (Now >= S.RestartAt && !Spawn(I)) {
          S.Finished = true;
          NoteIsolate("shard " + std::to_string(I) +
                      " abandoned: fork failed");
        }
        continue;
      }
      int Status = 0;
      pid_t R = waitpid(S.Pid, &Status, WNOHANG);
      if (R == 0)
        continue;
      S.Pid = -1;
      if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
        S.Finished = true;
        continue;
      }
      if (WIFEXITED(Status) && WEXITSTATUS(Status) == 3) {
        S.Finished = true;
        NoteIsolate("shard " + std::to_string(I) +
                    " abandoned: cannot write its checkpoint");
        continue;
      }
      // A fatal exit. Attribute it to the seed in flight (idle sentinel =
      // the crash fell between iterations: nothing to skip, just retry).
      std::string Why =
          WIFSIGNALED(Status)
              ? std::string("killed by ") + signalName(WTERMSIG(Status))
              : "exited with code " + std::to_string(WEXITSTATUS(Status));
      uint64_t CurOff = HB[I].Cur.load(std::memory_order_acquire);
      uint64_t DoneNow = HB[I].Done.load(std::memory_order_relaxed);
      bool Progressed = DoneNow > S.DoneAtExit || CurOff != IdleOffset;
      S.DoneAtExit = DoneNow;
      S.Stalls = Progressed ? 0 : S.Stalls + 1;
      ++Registry.counter("survive.isolate.crashes", Volatility::Volatile);
      if (CurOff != IdleOffset) {
        // The iteration at CurOff took the process down: a crash bug of
        // the compiler-under-test. Record it from the parent side — the
        // mutant regenerates deterministically from its seed — and make
        // sure the restarted shard skips this seed.
        uint64_t Seed = Opts.BaseSeed + CurOff;
        S.Skip.push_back(CurOff);
        BugRecord B;
        B.Kind = BugRecord::Crash;
        B.MutantSeed = Seed;
        B.Detail = "optimizer process " + Why + " (isolated shard " +
                   std::to_string(I) + ", contained by process isolation)";
        ForensicRecord FR;
        FR.K = ForensicRecord::Crash;
        FR.Seed = Seed;
        FR.VerdictSlug = "crash";
        FR.Detail = B.Detail;
        // Regenerating the mutant replays only the (signal-safe) mutator,
        // but guard anyway: the parent must survive whatever the child
        // did not.
        int Sig = 0;
        bool Survived = runWithSignalGuard(
            [&] {
              MutationTrail Trail;
              std::unique_ptr<Module> Mutant =
                  MasterLoop->makeMutant(Seed, Trail);
              B.MutantIR = printModule(*Mutant);
              if (!Opts.BugBundleDir.empty()) {
                BundleInputs In{Opts,         Testable, *MasterLoop->module(),
                                Mutant.get(), nullptr,  &Trail,
                                FR};
                std::string Err;
                B.BundlePath = writeBugBundle(Opts.BugBundleDir, In, Err);
                if (B.BundlePath.empty()) {
                  ++ParentBundleFailures;
                  if (BundleError.empty())
                    BundleError = Err;
                } else {
                  ++ParentBundles;
                }
              }
            },
            Sig);
        if (!Survived)
          B.Detail += "; mutant regeneration raised " +
                      std::string(signalName(Sig)) + " in the parent too";
        emitEvent(CampaignEvent::Kind::BugFound, Seed, I, "crash " + Why);
        S.CrashBugs.push_back(std::move(B));
      } else if (S.Stalls >= 5) {
        S.Finished = true;
        NoteIsolate("shard " + std::to_string(I) + " abandoned after " +
                    std::to_string(S.Stalls) +
                    " restarts without progress (last exit: " + Why + ")");
        continue;
      }
      ++Registry.counter("survive.isolate.restarts", Volatility::Volatile);
      emitEvent(CampaignEvent::Kind::ShardRestart, 0, I, Why);
      double Backoff = std::min(0.1 * (double)(1ull << std::min(
                                          S.Attempts - 1, 10u)),
                                5.0);
      S.RestartAt = Now + Backoff;
    }
    if (AllFinished)
      break;
    if (ProgressInterval > 0 && ProgressFn && Now - LastReport >=
                                                  ProgressInterval) {
      LastReport = Now;
      CampaignProgress P;
      P.Done = DoneTotal;
      P.Target = Opts.Iterations;
      P.Elapsed = Now;
      P.Workers = J;
      if (P.Elapsed > 0)
        P.Rate = (double)P.Done / P.Elapsed;
      if (P.Rate > 0)
        P.EtaSeconds = (double)(P.Target - P.Done) / P.Rate;
      ProgressFn(P);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Harvest: every shard's final checkpoint, merged exactly like the
  // threaded path — plus the crash bugs the parent recorded, spliced into
  // each shard's list in seed order.
  for (unsigned I = 0; I != J; ++I) {
    WorkerCheckpoint WC;
    std::string Err;
    if (!readWorkerCheckpoint(Dir, I, WC, Err)) {
      NoteIsolate("shard " + std::to_string(I) + " results lost: " + Err);
      Interrupted = true;
      continue;
    }
    accumulate(Stats, WC.Stats);
    StatRegistry Tmp;
    for (const WorkerCheckpoint::Counter &C : WC.Counters)
      Tmp.counter(C.Name, C.IsVolatile ? Volatility::Volatile
                                       : Volatility::Deterministic) = C.Value;
    Registry.merge(Tmp);
    std::vector<BugRecord> ShardBugs = WC.Bugs;
    ShardBugs.insert(ShardBugs.end(), Shards[I].CrashBugs.begin(),
                     Shards[I].CrashBugs.end());
    std::stable_sort(ShardBugs.begin(), ShardBugs.end(),
                     [](const BugRecord &A, const BugRecord &B) {
                       return A.MutantSeed < B.MutantSeed;
                     });
    Bugs.insert(Bugs.end(), ShardBugs.begin(), ShardBugs.end());
    if (WC.Next != WC.Hi)
      Interrupted = true;
    uint64_t NCrash = Shards[I].CrashBugs.size();
    if (NCrash) {
      Stats.Crashes += NCrash;
      Registry.counter("bug.crash") += NCrash;
    }
  }
  Stats.BundlesWritten += ParentBundles;
  Stats.BundleFailures += ParentBundleFailures;

  endLive();
  munmap(Raw, MapSize);
  if (OwnDir) {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  Stats.TotalSeconds = Total.seconds();
  emitEvent(CampaignEvent::Kind::CampaignEnd, 0, 0,
            Interrupted ? "interrupted" : "completed");
  return Stats;
}

const FuzzStats &
CampaignEngine::runSupervised(const std::vector<std::string> &Testable,
                              Timer &Total) {
  const SurvivalOptions &SV = Opts.Survival;
  namespace fs = std::filesystem;

  // As in runIsolated, the checkpoint directory is the harvest channel:
  // children persist their state there, the parent merges from it (and a
  // lost lease's last checkpoint is still harvested — partial results are
  // degraded, never discarded). Without a user-provided directory, use
  // (and afterwards remove) a private one.
  std::string Dir = SV.CheckpointDir;
  const bool OwnDir = Dir.empty();
  if (OwnDir) {
    std::error_code EC;
    Dir = (fs::temp_directory_path(EC) /
           ("alive-mutate-fanout-" + std::to_string(getpid())))
              .string();
  }

  // The lease partition must match the checkpoint identity, so clamp the
  // fanout before writing the meta.
  const unsigned N =
      (unsigned)std::min<uint64_t>(std::max(1u, SV.Fanout), Opts.Iterations);
  {
    CheckpointMeta Cur;
    Cur.Passes = Opts.Passes;
    Cur.Iterations = Opts.Iterations;
    Cur.BaseSeed = Opts.BaseSeed;
    Cur.Jobs = N;
    Cur.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    Cur.InjectBugs = !Opts.Bugs.empty();
    Cur.ModuleHash = hashModuleText(printModule(*MasterLoop->module()));
    std::string Err;
    if (SV.Resume) {
      CheckpointMeta Stored;
      if (!readCheckpointMeta(Dir, Stored, Err) ||
          !checkpointMetaMatches(Stored, Cur, Err)) {
        ConfigError = "cannot resume: " + Err;
        return Stats;
      }
    } else if (!writeCheckpointMeta(Dir, Cur, Err)) {
      ConfigError = Err;
      return Stats;
    }
  }

  const uint64_t Interval = SV.CheckpointInterval ? SV.CheckpointInterval : 16;

  SupervisorConfig SC;
  SC.Fanout = N;
  SC.Iterations = Opts.Iterations;
  SC.Retry.MaxAttempts = SV.RetryMaxAttempts;
  SC.Retry.BaseDelaySeconds = SV.RetryBaseDelay;
  SC.Retry.MaxDelaySeconds = SV.RetryMaxDelay;
  SC.LeaseHeartbeatSeconds = SV.LeaseHeartbeatSeconds;

  Supervisor Sup(SC, [&](const Supervisor::ShardContext &Ctx) -> int {
    // ------- child: one lease, sequential, in a disposable process. The
    // address space is a copy-on-write snapshot of the parent, so the
    // preprocessed master module is already here.
    if (SV.IsolateMemMB) {
      rlimit R{SV.IsolateMemMB << 20, SV.IsolateMemMB << 20};
      setrlimit(RLIMIT_AS, &R);
    }
    if (SV.IsolateCpuSeconds) {
      rlimit R{SV.IsolateCpuSeconds, SV.IsolateCpuSeconds};
      setrlimit(RLIMIT_CPU, &R);
    }
    FuzzOptions WOpts = Opts;
    WOpts.SelfCheckOnLoad = false;
    WOpts.OnlyFunctions = Testable;
    WOpts.Survival.Fanout = 0;
    WOpts.Survival.Isolate = false;
    // The process boundary IS the crash containment; an in-process guard
    // would only hide the signal from the parent's classifier. The event
    // queue lives in the parent's address space.
    WOpts.Survival.SignalGuard = false;
    WOpts.Events = nullptr;
    WOpts.WorkerIndex = Ctx.Index;
    WOpts.BaseSeed = Opts.BaseSeed + Ctx.Lo;
    WOpts.Iterations = Ctx.Hi - Ctx.Lo;
    FuzzerLoop Loop(WOpts);
    Loop.loadModule(cloneModuleSubset(*MasterLoop->module(), Testable));
    uint64_t Cursor = Ctx.Lo;
    {
      WorkerCheckpoint WC;
      std::string Err;
      if (readWorkerCheckpoint(Dir, Ctx.Index, WC, Err) && WC.Lo == Ctx.Lo &&
          WC.Hi == Ctx.Hi) {
        restoreWorker(WC, Loop);
        Cursor = WC.Next;
      }
    }
    // First beat before the loop: module cloning and restore are done,
    // the wedge clock should measure iteration progress only.
    Ctx.Next->store(Cursor, std::memory_order_relaxed);
    Ctx.Beat->fetch_add(1, std::memory_order_relaxed);
    if (faultAt("supervisor.wedge")) {
      // Chaos hook: hang without beating until the wedge detector reaps
      // us (or the campaign stops).
      while (!Ctx.Stop->load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return 0;
    }
    // The parent cannot see into this address space, so the wall-clock
    // backstop runs as a thread of the child itself.
    WallClockSupervisor WallSup({&Loop}, SV.WallTimeoutSeconds);
    Timer Leg;
    uint64_t Since = 0;
    std::string CkptErr;
    while (Cursor != Ctx.Hi) {
      if (Ctx.Stop->load(std::memory_order_relaxed))
        break;
      uint64_t Off = Cursor;
      if (std::find(Ctx.Skip->begin(), Ctx.Skip->end(), Off) !=
          Ctx.Skip->end()) {
        ++Cursor;
        Ctx.Next->store(Cursor, std::memory_order_relaxed);
        Ctx.Done->fetch_add(1, std::memory_order_relaxed);
        Ctx.Beat->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Ctx.Cur->store(Off, std::memory_order_release);
      Loop.runIteration(Opts.BaseSeed + Off);
      Ctx.Cur->store(Supervisor::IdleOffset, std::memory_order_release);
      ++Cursor;
      Ctx.Next->store(Cursor, std::memory_order_relaxed);
      Ctx.Done->fetch_add(1, std::memory_order_relaxed);
      Ctx.Beat->fetch_add(1, std::memory_order_relaxed);
      if (++Since >= Interval) {
        Since = 0;
        writeWorkerCheckpoint(
            Dir, snapshotWorker(Ctx.Index, Ctx.Lo, Ctx.Hi, Cursor, Loop),
            CkptErr);
      }
    }
    settleWorkerSeconds(Loop, Leg.seconds());
    bool Ok = writeWorkerCheckpoint(
        Dir, snapshotWorker(Ctx.Index, Ctx.Lo, Ctx.Hi, Cursor, Loop),
        CkptErr);
    WallSup.stop();
    // Exit 3 = "results could not be written": the parent marks the
    // lease Lost instead of retrying forever.
    return Ok ? 0 : 3;
  });

  std::string InitErr;
  if (!Sup.init(InitErr)) {
    ConfigError = InitErr;
    if (OwnDir) {
      std::error_code EC;
      fs::remove_all(Dir, EC);
    }
    return Stats;
  }

  // Initialize the merged state now: the crash hook accounts bugs live,
  // the final harvest adds the shard checkpoints on top.
  Stats = FuzzStats();
  Stats.FunctionsDropped = MasterLoop->stats().FunctionsDropped;
  Bugs.clear();
  SaveDirError.clear();
  BundleError.clear();
  Registry = StatRegistry();
  Registry.merge(MasterLoop->registry());
  Traces.clear();
  TraceNames.clear();

  uint64_t ParentBundles = 0, ParentBundleFailures = 0;
  Sup.setCrashHook([&](unsigned I, uint64_t Off,
                       const std::string &Why) -> BugRecord {
    // The offset took the process down repeatedly: a crash bug of the
    // compiler-under-test. Record it from the parent side — the mutant
    // regenerates deterministically from its seed.
    uint64_t Seed = Opts.BaseSeed + Off;
    BugRecord B;
    B.Kind = BugRecord::Crash;
    B.MutantSeed = Seed;
    B.Detail = "optimizer process " + Why + " (supervised shard " +
               std::to_string(I) + ", contained by process isolation)";
    ForensicRecord FR;
    FR.K = ForensicRecord::Crash;
    FR.Seed = Seed;
    FR.VerdictSlug = "crash";
    FR.Detail = B.Detail;
    int Sig = 0;
    bool Survived = runWithSignalGuard(
        [&] {
          MutationTrail Trail;
          std::unique_ptr<Module> Mutant = MasterLoop->makeMutant(Seed, Trail);
          B.MutantIR = printModule(*Mutant);
          if (!Opts.BugBundleDir.empty()) {
            BundleInputs In{Opts,         Testable, *MasterLoop->module(),
                            Mutant.get(), nullptr,  &Trail,
                            FR};
            std::string Err;
            B.BundlePath = writeBugBundle(Opts.BugBundleDir, In, Err);
            if (B.BundlePath.empty()) {
              ++ParentBundleFailures;
              if (BundleError.empty())
                BundleError = Err;
            } else {
              ++ParentBundles;
            }
          }
        },
        Sig);
    if (!Survived)
      B.Detail += "; mutant regeneration raised " +
                  std::string(signalName(Sig)) + " in the parent too";
    emitEvent(CampaignEvent::Kind::BugFound, Seed, I, "crash " + Why);
    return B;
  });

  Sup.setStopCheck([&](uint64_t DoneTotal) {
    TotalDone.store(DoneTotal, std::memory_order_relaxed);
    uint64_t After = StopAfter.load(std::memory_order_relaxed);
    return StopReq.load(std::memory_order_relaxed) ||
           (After && DoneTotal >= After);
  });
  if (ProgressInterval > 0 && ProgressFn)
    Sup.setTick(
        [&](uint64_t Done, double Elapsed) {
          CampaignProgress P;
          P.Done = Done;
          P.Target = Opts.Iterations;
          P.Elapsed = Elapsed;
          P.Workers = N;
          if (P.Elapsed > 0)
            P.Rate = (double)P.Done / P.Elapsed;
          if (P.Rate > 0)
            P.EtaSeconds = (double)(P.Target - P.Done) / P.Rate;
          ProgressFn(P);
        },
        ProgressInterval);

  // Live view over the supervisor's heartbeat page: Done counters only
  // (shard registries live in child processes).
  beginLive(/*Isolated=*/true, Opts.Iterations, N, &Total);
  for (unsigned I = 0; I != Sup.shards(); ++I)
    addLiveShard({I, Sup.shardLo(I), Sup.shardHi(I), Sup.doneCounter(I),
                  /*StageNanos=*/nullptr, /*Loop=*/nullptr});
  struct LiveGuard {
    CampaignEngine *E;
    ~LiveGuard() { E->endLive(); }
  } LG{this};

  SupervisorOutcome SO = Sup.run(Total);
  endLive();
  if (!SO.Error.empty()) {
    ConfigError = SO.Error;
    if (OwnDir) {
      std::error_code EC;
      fs::remove_all(Dir, EC);
    }
    return Stats;
  }

  Registry.counter("survive.supervisor.restarts", Volatility::Volatile) +=
      SO.Restarts;
  Registry.counter("survive.supervisor.wedges", Volatility::Volatile) +=
      SO.Wedges;
  Registry.counter("survive.supervisor.fork_failures", Volatility::Volatile) +=
      SO.ForkFailures;
  Registry.counter("survive.supervisor.lease_extensions",
                   Volatility::Volatile) += SO.LeaseExtensions;

  auto NoteIncident = [&](const std::string &Msg) {
    if (!IsolateError.empty())
      IsolateError += "; ";
    IsolateError += Msg;
  };

  // Harvest: every lease's last durable checkpoint, merged exactly like
  // the isolate path, plus the parent-recorded crash bugs spliced into
  // each shard's list in seed order. Lost leases still contribute
  // whatever their last checkpoint holds — and exact lost-iteration
  // accounting is computed against that checkpoint, never estimated.
  for (const ShardOutcome &S : SO.Shards) {
    WorkerCheckpoint WC;
    std::string Err;
    bool Read = readWorkerCheckpoint(Dir, S.Index, WC, Err) &&
                WC.Lo == S.Lo && WC.Hi == S.Hi;
    bool ShardLost = S.Lost;
    uint64_t LostIters = 0;
    if (ShardLost) {
      LostIters =
          Read ? S.Hi - std::min(std::max(WC.Next, S.Lo), S.Hi) : S.Hi - S.Lo;
    } else if (!Read) {
      // Lease finished but its results cannot be read back: a lost shard
      // by any other name. Count it the same way, never drop it silently.
      ShardLost = true;
      LostIters = S.Hi - S.Lo;
      NoteIncident("shard " + std::to_string(S.Index) +
                   " results lost: " + Err);
    }
    if (ShardLost) {
      DegradedFlag = true;
      LostShardsV.emplace_back(S.Index, LostIters);
      Interrupted = true;
      if (!S.Note.empty())
        NoteIncident(S.Note + " (" + std::to_string(LostIters) +
                     " iterations lost)");
    } else if (!S.Note.empty()) {
      NoteIncident(S.Note);
    }
    if (!Read)
      continue;
    accumulate(Stats, WC.Stats);
    StatRegistry Tmp;
    for (const WorkerCheckpoint::Counter &C : WC.Counters)
      Tmp.counter(C.Name, C.IsVolatile ? Volatility::Volatile
                                       : Volatility::Deterministic) = C.Value;
    Registry.merge(Tmp);
    std::vector<BugRecord> ShardBugs = WC.Bugs;
    ShardBugs.insert(ShardBugs.end(), S.CrashBugs.begin(), S.CrashBugs.end());
    std::stable_sort(ShardBugs.begin(), ShardBugs.end(),
                     [](const BugRecord &A, const BugRecord &B) {
                       return A.MutantSeed < B.MutantSeed;
                     });
    Bugs.insert(Bugs.end(), ShardBugs.begin(), ShardBugs.end());
    if (!ShardLost && WC.Next != WC.Hi)
      Interrupted = true;
    uint64_t NCrash = S.CrashBugs.size();
    if (NCrash) {
      Stats.Crashes += NCrash;
      Registry.counter("bug.crash") += NCrash;
    }
  }
  Stats.BundlesWritten += ParentBundles;
  Stats.BundleFailures += ParentBundleFailures;
  if (DegradedFlag) {
    uint64_t LostTotal = 0;
    for (const auto &LS : LostShardsV)
      LostTotal += LS.second;
    Registry.counter("survive.degraded.shards", Volatility::Volatile) +=
        LostShardsV.size();
    Registry.counter("survive.degraded.lost_iterations",
                     Volatility::Volatile) += LostTotal;
  }

  if (OwnDir) {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  Stats.TotalSeconds = Total.seconds();
  emitEvent(CampaignEvent::Kind::CampaignEnd, 0, 0,
            DegradedFlag  ? "degraded"
            : Interrupted ? "interrupted"
                          : "completed");
  return Stats;
}
