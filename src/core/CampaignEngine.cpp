//===- core/CampaignEngine.cpp - Parallel sharded campaign engine ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"

#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

using namespace alive;

CampaignEngine::CampaignEngine(const FuzzOptions &Opts, unsigned Jobs)
    : Opts(Opts), Jobs(std::max(1u, Jobs)) {
  MasterLoop = std::make_unique<FuzzerLoop>(this->Opts);
  ConfigError = MasterLoop->configError();
}

CampaignEngine::~CampaignEngine() = default;

unsigned CampaignEngine::loadModule(std::unique_ptr<Module> M) {
  // Preprocess (and §III-A self-check) once, on the master; workers
  // inherit the surviving function set instead of redoing the TV work —
  // and FunctionsDropped is counted exactly once, as in a sequential run.
  return MasterLoop->loadModule(std::move(M));
}

std::vector<std::string> CampaignEngine::testableFunctions() const {
  return MasterLoop->testableFunctions();
}

void CampaignEngine::setProgress(
    double IntervalSeconds, std::function<void(const CampaignProgress &)> Fn) {
  ProgressInterval = IntervalSeconds;
  ProgressFn = std::move(Fn);
}

std::unique_ptr<Module>
CampaignEngine::makeMutant(uint64_t Seed,
                           std::vector<std::string> *AppliedOut) const {
  return MasterLoop->makeMutant(Seed, AppliedOut);
}

bool CampaignEngine::writeTrace(const std::string &Path,
                                std::string &Error) const {
  if (Traces.empty()) {
    Error = "no trace recorded: campaign ran without tracing enabled";
    return false;
  }
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write trace '" + Path + "'";
    return false;
  }
  std::vector<const TraceRecorder *> Tracks;
  for (const auto &T : Traces)
    Tracks.push_back(T.get());
  writeChromeTrace(Out, Tracks, TraceNames);
  Out.close();
  if (!Out) {
    Error = "I/O error writing trace '" + Path + "'";
    return false;
  }
  return true;
}

namespace {

/// One worker: a private FuzzerLoop over a private master-module clone,
/// plus the atomic counters the reporter thread reads and the thread's
/// measured wall time (dynamic mode only; static mode uses the loop's own
/// TotalSeconds).
struct Worker {
  std::unique_ptr<FuzzerLoop> Loop;
  std::atomic<uint64_t> Done{0};
  /// Live per-stage nanoseconds: mutate, optimize, verify, overhead.
  std::atomic<uint64_t> StageNanos[4] = {};
  double ThreadSeconds = 0;
};

/// Sums every per-iteration counter and phase timer of \p From into
/// \p Into. TotalSeconds is deliberately excluded: summing wall-clock
/// across concurrent workers would double-count; the engine reports its
/// own wall time.
void accumulate(FuzzStats &Into, const FuzzStats &From) {
  Into.MutantsGenerated += From.MutantsGenerated;
  Into.MutationsApplied += From.MutationsApplied;
  Into.Optimized += From.Optimized;
  Into.Verified += From.Verified;
  Into.VerifySkipped += From.VerifySkipped;
  Into.TVCacheHits += From.TVCacheHits;
  Into.TVCacheMisses += From.TVCacheMisses;
  Into.TVCacheEvictions += From.TVCacheEvictions;
  Into.RefinementFailures += From.RefinementFailures;
  Into.Crashes += From.Crashes;
  Into.Inconclusive += From.Inconclusive;
  Into.FunctionsDropped += From.FunctionsDropped;
  Into.InvalidMutants += From.InvalidMutants;
  Into.MutantsSaved += From.MutantsSaved;
  Into.SaveFailures += From.SaveFailures;
  Into.BundlesWritten += From.BundlesWritten;
  Into.BundleFailures += From.BundleFailures;
  Into.MutateSeconds += From.MutateSeconds;
  Into.OptimizeSeconds += From.OptimizeSeconds;
  Into.VerifySeconds += From.VerifySeconds;
  Into.OverheadSeconds += From.OverheadSeconds;
  // WorkerSeconds sums loop wall times across workers — the denominator
  // of the stage-sum invariant (the engine's own wall clock would be ~J
  // times smaller than the summed stage times).
  Into.WorkerSeconds += From.WorkerSeconds;
}

} // namespace

const FuzzStats &CampaignEngine::run() {
  if (!ConfigError.empty())
    return Stats;
  if (Opts.Iterations == 0 && Opts.TimeLimitSeconds <= 0) {
    ConfigError = "unbounded campaign: set Iterations (-n) or "
                  "TimeLimitSeconds (-t)";
    return Stats;
  }
  if (!MasterLoop->module()) {
    ConfigError = "no module loaded";
    return Stats;
  }

  Timer Total;
  const std::vector<std::string> Testable = MasterLoop->testableFunctions();
  const bool TimeLimited = Opts.Iterations == 0;

  // Never spawn idle workers: with fewer iterations than threads the tail
  // workers would own empty shards.
  unsigned J = Jobs;
  if (!TimeLimited)
    J = (unsigned)std::min<uint64_t>(J, Opts.Iterations);

  // Build the workers up front on this thread (module cloning allocates
  // into per-module interning contexts; keep that serial and simple).
  std::vector<std::unique_ptr<Worker>> Workers;
  for (unsigned I = 0; I != J; ++I) {
    auto W = std::make_unique<Worker>();
    FuzzOptions WOpts = Opts;
    WOpts.SelfCheckOnLoad = false;
    WOpts.OnlyFunctions = Testable;
    WOpts.Progress = &W->Done;
    WOpts.StageNanos = W->StageNanos;
    if (!TimeLimited) {
      // Static contiguous partition: worker I owns seeds
      // [BaseSeed + Lo, BaseSeed + Hi) — ascending across workers, so a
      // merge in worker order reproduces the sequential bug order.
      uint64_t Lo = Opts.Iterations * I / J;
      uint64_t Hi = Opts.Iterations * (I + 1) / J;
      WOpts.BaseSeed = Opts.BaseSeed + Lo;
      WOpts.Iterations = Hi - Lo;
    }
    W->Loop = std::make_unique<FuzzerLoop>(WOpts);
    W->Loop->loadModule(cloneModule(*MasterLoop->module()));
    Workers.push_back(std::move(W));
  }

  // Shared seed counter for the time-limited mode (no fixed partition).
  std::atomic<uint64_t> NextOffset{0};

  std::vector<std::thread> Threads;
  for (auto &WPtr : Workers) {
    Worker *W = WPtr.get();
    if (!TimeLimited) {
      Threads.emplace_back([W] { W->Loop->run(); });
    } else {
      double Limit = Opts.TimeLimitSeconds;
      uint64_t Base = Opts.BaseSeed;
      std::atomic<uint64_t> *Next = &NextOffset;
      Threads.emplace_back([W, Limit, Base, Next, &Total] {
        Timer Thread;
        while (Total.seconds() < Limit) {
          uint64_t Off = Next->fetch_add(1, std::memory_order_relaxed);
          W->Loop->runIteration(Base + Off);
          W->Done.fetch_add(1, std::memory_order_relaxed);
        }
        // The loops never call run() in this mode, so measure the worker
        // wall time here for the stage-sum invariant.
        W->ThreadSeconds = Thread.seconds();
      });
    }
  }

  // The reporter: wakes every ProgressInterval seconds, aggregates the
  // workers' atomic counters, and hands the snapshot to the callback.
  std::mutex DoneMutex;
  std::condition_variable DoneCV;
  bool AllDone = false;
  std::thread Reporter;
  if (ProgressInterval > 0 && ProgressFn) {
    Reporter = std::thread([&] {
      std::unique_lock<std::mutex> Lock(DoneMutex);
      for (;;) {
        if (DoneCV.wait_for(Lock,
                            std::chrono::duration<double>(ProgressInterval),
                            [&] { return AllDone; }))
          return;
        CampaignProgress P;
        uint64_t Stage[4] = {};
        for (const auto &W : Workers) {
          P.Done += W->Done.load(std::memory_order_relaxed);
          for (unsigned I = 0; I != 4; ++I)
            Stage[I] += W->StageNanos[I].load(std::memory_order_relaxed);
        }
        P.Target = TimeLimited ? 0 : Opts.Iterations;
        P.Elapsed = Total.seconds();
        P.Workers = J;
        if (P.Elapsed > 0)
          P.Rate = (double)P.Done / P.Elapsed;
        if (TimeLimited)
          P.EtaSeconds = std::max(0.0, Opts.TimeLimitSeconds - P.Elapsed);
        else if (P.Rate > 0)
          P.EtaSeconds = (double)(P.Target - P.Done) / P.Rate;
        double StageSum =
            (double)(Stage[0] + Stage[1] + Stage[2] + Stage[3]);
        if (StageSum > 0) {
          P.MutateShare = Stage[0] / StageSum;
          P.OptimizeShare = Stage[1] / StageSum;
          P.VerifyShare = Stage[2] / StageSum;
          P.OverheadShare = Stage[3] / StageSum;
        }
        ProgressFn(P);
      }
    });
  }

  for (std::thread &T : Threads)
    T.join();
  if (Reporter.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      AllDone = true;
    }
    DoneCV.notify_all();
    Reporter.join();
  }

  // Deterministic merge. Stats: master preprocessing (FunctionsDropped)
  // plus every worker's counters. Bugs: worker shards are already in
  // ascending seed order, so concatenation in worker order equals the
  // sequential order; the dynamic mode interleaves seeds across workers
  // and needs the explicit (stable) sort.
  Stats = FuzzStats();
  Stats.FunctionsDropped = MasterLoop->stats().FunctionsDropped;
  Bugs.clear();
  SaveDirError.clear();
  BundleError.clear();
  Registry = StatRegistry();
  Registry.merge(MasterLoop->registry());
  // Collect the flight-recorder tracks now — the workers die with this
  // scope, the recorders must not. All tracks share one process-global
  // epoch, so the merged timeline lines up across threads.
  Traces.clear();
  TraceNames.clear();
  if (auto T = MasterLoop->takeTrace()) {
    Traces.push_back(std::move(T));
    TraceNames.push_back("master");
  }
  unsigned WorkerIdx = 0;
  for (const auto &W : Workers) {
    const FuzzStats &WS = W->Loop->stats();
    accumulate(Stats, WS);
    if (TimeLimited) {
      // Dynamic-mode loops never ran run(): the engine measured each
      // thread's wall time instead, and the dispatch loop's bookkeeping
      // (the part outside runIteration) goes to the overhead bucket.
      Stats.WorkerSeconds += W->ThreadSeconds;
      double Staged = WS.MutateSeconds + WS.OptimizeSeconds +
                      WS.VerifySeconds + WS.OverheadSeconds;
      if (W->ThreadSeconds > Staged)
        Stats.OverheadSeconds += W->ThreadSeconds - Staged;
    }
    Registry.merge(W->Loop->registry());
    if (SaveDirError.empty())
      SaveDirError = W->Loop->saveDirError();
    if (BundleError.empty())
      BundleError = W->Loop->bundleError();
    if (auto T = W->Loop->takeTrace()) {
      Traces.push_back(std::move(T));
      TraceNames.push_back("worker " + std::to_string(WorkerIdx));
    }
    ++WorkerIdx;
    const std::vector<BugRecord> &WB = W->Loop->bugs();
    Bugs.insert(Bugs.end(), WB.begin(), WB.end());
  }
  if (TimeLimited)
    std::stable_sort(Bugs.begin(), Bugs.end(),
                     [](const BugRecord &A, const BugRecord &B) {
                       return A.MutantSeed < B.MutantSeed;
                     });
  Stats.TotalSeconds = Total.seconds();
  return Stats;
}
