//===- core/Supervisor.h - Multi-process shard lease supervisor -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process campaign runner behind -fanout=N: a from-scratch
/// control loop that promotes the -isolate prototype into real lease
/// management. The engine partitions the seed range into N *shard leases*;
/// the Supervisor forks one child per lease and owns everything that can
/// go wrong on the process boundary:
///
///   - **Heartbeats.** Every child publishes (current offset, cursor,
///     done count, beat tick) into a MAP_SHARED control page. A running
///     lease whose beat tick stops advancing for LeaseHeartbeatSeconds is
///     a wedge *suspect* — but silence alone cannot distinguish a wedge
///     (deadlock, hung syscall) from one legitimately long solver query
///     on an oversubscribed host, so the detector consults the child's
///     CPU clock (/proc/<pid>/stat): meaningful CPU progress over the
///     silent window extends the lease; a child that sat idle through it
///     is *wedged* — SIGKILLed, and the death treated like any other (the
///     restarted child resumes from its checkpoint).
///
///   - **Restarts.** A dead or wedged child is restarted under a
///     support/Retry bounded-exponential-backoff policy (deterministic
///     jitter, per-lease stream). Checkpoint progress refills the budget:
///     only a lease that keeps dying *without advancing* exhausts it.
///
///   - **Crash attribution.** A death with a seed in flight is retried
///     first — an externally killed child (chaos fault, OOM killer) must
///     not perturb the deterministic report. Only when the *same* offset
///     takes the process down SeedDeathThreshold times is it skipped and
///     handed to the parent-side CrashHook, which synthesizes the crash
///     BugRecord exactly like the -isolate path.
///
///   - **Degradation, never silence.** A lease whose budget is exhausted
///     (or whose results cannot be written) becomes *Lost*: counted with
///     its exact missing iteration range, surfaced as Degraded in the
///     outcome — the run report flags `degraded: true` and /healthz turns
///     503, but the campaign completes with every other shard's results.
///
/// Determinism: the merged deterministic report section is byte-identical
/// to -j1 whenever no lease ends Lost — restarts, backoff and external
/// kills only cost wall clock, never outcomes.
///
/// The Supervisor is deliberately generic: it knows processes, leases,
/// heartbeats and retries, but not fuzzing. The child's work is a
/// ShardBody callback (run after fork, returns the exit code) and crash
/// bugs come from the CrashHook — CampaignEngine::runSupervised wires
/// both to FuzzerLoop.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_SUPERVISOR_H
#define CORE_SUPERVISOR_H

#include "core/FuzzerLoop.h"
#include "support/Retry.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

namespace alive {

/// Supervisor tunables (the -fanout / -retry-* / -lease-deadline knobs).
struct SupervisorConfig {
  /// Number of shard leases == child processes.
  unsigned Fanout = 2;
  /// Total iteration range [0, Iterations) to partition across leases.
  uint64_t Iterations = 0;
  /// Restart policy per lease (budget, backoff bounds, jitter).
  RetryPolicy Retry;
  /// A running lease whose beat tick stalls this long is declared wedged
  /// and killed (<= 0 disables wedge detection).
  double LeaseHeartbeatSeconds = 30;
  /// Same offset killing the process this many times => skip it and
  /// record a crash bug. The first death(s) retry the seed, so external
  /// kills cannot perturb the deterministic report.
  unsigned SeedDeathThreshold = 2;
  /// Parent poll cadence.
  double PollSeconds = 0.01;
};

/// Final accounting for one shard lease.
struct ShardOutcome {
  unsigned Index = 0;
  uint64_t Lo = 0, Hi = 0;
  /// Lease permanently lost: retry budget exhausted or results
  /// unwritable. LostIterations = Hi - last known cursor.
  bool Lost = false;
  uint64_t LostIterations = 0;
  /// Child processes forked for this lease (1 == clean single run).
  unsigned Spawns = 0;
  /// Crash bugs the parent synthesized (seed-attributed deaths past the
  /// threshold), in seed order.
  std::vector<BugRecord> CrashBugs;
  /// Human-readable incident note ("" when clean).
  std::string Note;
};

/// What the control loop observed, campaign-wide.
struct SupervisorOutcome {
  /// Fatal setup error (mmap/initial state); "" when the loop ran.
  std::string Error;
  /// At least one lease was permanently lost.
  bool Degraded = false;
  uint64_t Restarts = 0;        ///< child respawns (all causes)
  uint64_t Wedges = 0;          ///< heartbeat-deadline kills
  uint64_t ForkFailures = 0;    ///< failed/injected fork attempts
  uint64_t LeaseExtensions = 0; ///< beat-silent children spared for CPU progress
  std::vector<ShardOutcome> Shards;

  /// (shard index, lost iteration count) for every Lost lease — the run
  /// report's `lost_shards` array.
  std::vector<std::pair<unsigned, uint64_t>> lostShards() const;
};

/// Forks, watches, restarts and accounts shard leases.
class Supervisor {
public:
  /// The idle sentinel a child stores in Cur between iterations.
  static constexpr uint64_t IdleOffset = ~0ull;

  /// The child's view of its lease: the slice to run, offsets to skip
  /// (previously attributed crashes), and its slots in the shared
  /// control page. All pointers live in the MAP_SHARED page except Skip
  /// (copy-on-write snapshot of the parent's list at fork time).
  struct ShardContext {
    unsigned Index = 0;
    uint64_t Lo = 0, Hi = 0;
    const std::vector<uint64_t> *Skip = nullptr;
    /// Offset in flight (IdleOffset between iterations). Release-stored
    /// by the child, acquire-read by the parent's crash attributor.
    std::atomic<uint64_t> *Cur = nullptr;
    /// Resume cursor: first offset NOT yet completed. The parent's lost-
    /// iteration accounting reads this when a lease dies for good.
    std::atomic<uint64_t> *Next = nullptr;
    /// Iterations completed by this lease across all of its processes.
    std::atomic<uint64_t> *Done = nullptr;
    /// Liveness tick: bump at least once per iteration (and once at
    /// body start); the wedge detector watches it.
    std::atomic<uint64_t> *Beat = nullptr;
    /// Cooperative stop flag, set by the parent.
    const std::atomic<uint32_t> *Stop = nullptr;
  };

  /// Runs in the forked child; its return value becomes the exit code.
  /// Exit 0 = lease complete (or cooperatively stopped) with results
  /// written; exit 3 = results could not be written (lease => Lost).
  using ShardBody = std::function<int(const ShardContext &)>;

  /// Parent-side crash-bug synthesis: called when \p Offset killed shard
  /// \p Index SeedDeathThreshold times (\p Why describes the last death).
  using CrashHook =
      std::function<BugRecord(unsigned Index, uint64_t Offset,
                              const std::string &Why)>;

  /// Polled each loop turn with the campaign-wide done count; returning
  /// true raises the cooperative stop flag (children checkpoint + exit 0).
  using StopCheck = std::function<bool(uint64_t DoneTotal)>;

  /// Observer tick (progress lines, event drains), called every
  /// \p TickSeconds with (done total, elapsed).
  using TickFn = std::function<void(uint64_t DoneTotal, double Elapsed)>;

  Supervisor(SupervisorConfig C, ShardBody Body);
  ~Supervisor();
  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Maps the control page and computes the lease partition. \returns
  /// false with \p Error filled when the page cannot be mapped; run() on
  /// an uninitialized supervisor fails the same way.
  bool init(std::string &Error);

  unsigned shards() const { return (unsigned)Leases.size(); }
  uint64_t shardLo(unsigned I) const { return Leases[I].Lo; }
  uint64_t shardHi(unsigned I) const { return Leases[I].Hi; }

  /// The lease's live done counter in the control page (for the engine's
  /// observability shard refs). Valid between init() and destruction.
  const std::atomic<uint64_t> *doneCounter(unsigned I) const;

  void setCrashHook(CrashHook H) { OnCrash = std::move(H); }
  void setStopCheck(StopCheck S) { ShouldStop = std::move(S); }
  void setTick(TickFn T, double Seconds) {
    OnTick = std::move(T);
    TickSeconds = Seconds;
  }

  /// Runs the control loop to completion: every lease Done or Lost.
  /// \p Total is the campaign wall clock (backoff deadlines and the
  /// outcome's timing are expressed against it).
  SupervisorOutcome run(Timer &Total);

private:
  struct Lease {
    enum class State { Pending, Running, Done, Lost };
    unsigned Index = 0;
    uint64_t Lo = 0, Hi = 0;
    State St = State::Pending;
    pid_t Pid = -1;
    unsigned Spawns = 0;
    /// Restart budget + backoff schedule (support/Retry).
    RetryState Retry;
    /// Backoff gate: do not respawn before this Total.seconds() stamp.
    double RestartAt = 0;
    /// Wedge detection: last beat tick observed and when it changed.
    uint64_t LastBeat = 0;
    double LastBeatAt = 0;
    /// Child CPU seconds at the last beat (or lease extension): the wedge
    /// detector's second signal. A beat-silent child that keeps burning
    /// CPU is mid-solver-query, not wedged.
    double CpuAtBeat = 0;
    /// Done count at the previous death, for progress-based budget refill.
    uint64_t DoneAtDeath = 0;
    /// True when the parent itself sent SIGKILL (wedge or injected chaos
    /// kill): the death must not be attributed to the seed in flight.
    bool KilledByUs = false;
    /// Per-offset death counts driving the retry-then-skip policy.
    std::map<uint64_t, unsigned> DeathsAt;
    /// Offsets attributed as crashes; the respawned child skips them.
    std::vector<uint64_t> Skip;
    std::vector<BugRecord> CrashBugs;
    std::string Note;

    explicit Lease(const RetryPolicy &P, uint64_t Tag) : Retry(P, Tag) {}
  };

  bool spawn(Lease &L, double Now);
  void markLost(Lease &L, const std::string &Why, SupervisorOutcome &Out);
  void appendNote(Lease &L, const std::string &Msg);

  SupervisorConfig Cfg;
  ShardBody Body;
  CrashHook OnCrash;
  StopCheck ShouldStop;
  TickFn OnTick;
  double TickSeconds = 0;

  /// The MAP_SHARED control page: Control block + one HeartbeatSlot per
  /// lease (layout in Supervisor.cpp).
  void *Page = nullptr;
  size_t PageSize = 0;
  std::vector<Lease> Leases;
  bool Initialized = false;
};

} // namespace alive

#endif // CORE_SUPERVISOR_H
