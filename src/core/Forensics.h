//===- core/Forensics.h - Per-bug forensics bundles ------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-bug forensics bundles: every non-Correct outcome of the fuzzing
/// loop can be persisted as a self-contained directory — the original
/// module, the mutant before and after optimization, the applied-mutation
/// trail, the rendered counterexample and the full campaign configuration
/// — sufficient to re-run the exact mutate/optimize/verify iteration on a
/// machine that has only the bundle. `alive-mutate -replay <bundle>`
/// does exactly that and exits 0 only when the recorded verdict (and
/// counterexample) reproduces.
///
/// The bundle layout (manifest schema version 1):
///
///   <dir>/bundle-s<seed>-<function|crash|invalid>/
///     manifest.json   record, config echo, mutation trail, file map
///     original.ll     the full preprocessed master module
///     mutant.ll       the mutant before optimization (TV "source")
///     optimized.ll    after the pipeline (absent for crash bundles)
///
/// Everything in a bundle is a pure function of (module, config, seed),
/// so -j1 and -jN campaigns write byte-identical bundles. One exception:
/// timeout bundles produced by the *wall-clock* watchdog backstop depend
/// on machine speed; only step-budget timeouts are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FORENSICS_H
#define CORE_FORENSICS_H

#include "core/Mutator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alive {

struct FuzzOptions;
class Module;

/// Bump when manifest.json changes incompatibly; -replay and CI's
/// check_artifacts.py pin it.
constexpr unsigned BundleManifestSchemaVersion = 1;

/// One non-Correct outcome of a fuzzing iteration, in the textual form
/// the bundle manifest persists (and -replay compares against). The loop
/// collects these for every iteration — cheap, strings only — whether or
/// not bundle writing is enabled, so a replayed iteration can be compared
/// field-for-field with the record in a manifest.
struct ForensicRecord {
  enum Kind {
    InvalidMutant, ///< the mutator emitted verifier-invalid IR (must not happen)
    Crash,         ///< a seeded optimizer defect aborted the pipeline
    Verdict,       ///< a per-function TV verdict other than Correct
    Timeout        ///< the iteration watchdog cut the iteration short
  };
  Kind K = Verdict;
  uint64_t Seed = 0;
  /// The failing function; empty for whole-module outcomes (crashes).
  std::string Function;
  /// tvVerdictReason slug for Verdict records; "crash"/"invalid-mutant"
  /// otherwise.
  std::string VerdictSlug;
  std::string Detail;
  /// For crashes: the simulated defect's Table I issue id ("52884").
  std::string IssueId;
  /// Rendered counterexample table (tv/Counterexample.h); empty unless
  /// the verdict carried concrete inputs.
  std::string CounterExample;
};

/// "invalid-mutant" / "crash" / "verdict" / "timeout".
const char *forensicKindName(ForensicRecord::Kind K);

/// Everything one bundle write needs. All pointers/references must stay
/// valid for the duration of the writeBugBundle call only.
struct BundleInputs {
  const FuzzOptions &Opts;
  /// The function set that survived preprocessing — replay pins it via
  /// FuzzOptions::OnlyFunctions so the iteration sees the same module.
  const std::vector<std::string> &TestableFunctions;
  const Module &Original;
  /// The mutant before optimization (the TV "source").
  const Module *Mutant = nullptr;
  /// After the pipeline; null when optimization crashed.
  const Module *Optimized = nullptr;
  /// The applied-mutation trail for Record.Seed; null writes an empty
  /// trail (still a valid bundle).
  const MutationTrail *Trail = nullptr;
  const ForensicRecord &Record;
};

/// Writes one bundle under \p Dir (created if missing). \returns the
/// bundle directory path, or "" with \p Error filled on I/O failure.
/// Deterministic: same inputs, same bytes, same path.
std::string writeBugBundle(const std::string &Dir, const BundleInputs &In,
                           std::string &Error);

/// The outcome of replaying one bundle.
struct ReplayResult {
  /// True when the recorded outcome reproduced exactly: the regenerated
  /// mutant is byte-identical, the trail matches, and the re-run
  /// iteration produced the recorded verdict/detail/counterexample.
  bool Ok = false;
  /// Why not (unreadable bundle, config error, or the first mismatch).
  std::string Error;
  // Echo of the manifest, for reporting.
  uint64_t Seed = 0;
  std::string Kind;
  std::string Function;
  std::string ExpectedVerdict;
  /// What the replay actually produced ("" when the outcome vanished).
  std::string ActualVerdict;
};

/// Re-runs the iteration a bundle records — parse original.ll, rebuild
/// the FuzzOptions from the manifest's config echo, regenerate the mutant
/// from the recorded seed, optimize, verify — and compares every recorded
/// field. Side-effect-free (runs in a private loop; writes nothing).
ReplayResult replayBundle(const std::string &BundleDir);

} // namespace alive

#endif // CORE_FORENSICS_H
