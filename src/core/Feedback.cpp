//===- core/Feedback.cpp - Rule-coverage feedback & scheduling --------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Feedback.h"

#include "support/JSON.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace alive;

//===----------------------------------------------------------------------===//
// CoverageBitmap
//===----------------------------------------------------------------------===//

static unsigned popcount64(uint64_t W) {
  unsigned N = 0;
  while (W) {
    W &= W - 1;
    ++N;
  }
  return N;
}

unsigned CoverageBitmap::newBits(const CoverageBitmap &Base) const {
  unsigned N = 0;
  for (unsigned I = 0; I != NumWords; ++I)
    N += popcount64(Words[I] & ~Base.Words[I]);
  return N;
}

unsigned CoverageBitmap::popcount() const {
  unsigned N = 0;
  for (unsigned I = 0; I != NumWords; ++I)
    N += popcount64(Words[I]);
  return N;
}

bool CoverageBitmap::empty() const {
  for (unsigned I = 0; I != NumWords; ++I)
    if (Words[I])
      return false;
  return true;
}

bool CoverageBitmap::subsetOf(const CoverageBitmap &O) const {
  for (unsigned I = 0; I != NumWords; ++I)
    if (Words[I] & ~O.Words[I])
      return false;
  return true;
}

bool CoverageBitmap::operator==(const CoverageBitmap &O) const {
  for (unsigned I = 0; I != NumWords; ++I)
    if (Words[I] != O.Words[I])
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// FeedbackMap
//===----------------------------------------------------------------------===//

void FeedbackMap::addIteration(const CoverageBitmap &Cov,
                               const std::vector<std::string> &Functions,
                               const std::vector<MutationKind> &Families) {
  if (Cov.empty())
    return;
  for (const std::string &Fn : Functions)
    PerFunction[Fn].orWith(Cov);
  for (MutationKind K : Families)
    PerFamily[(size_t)K].orWith(Cov);
  Global.orWith(Cov);
}

void FeedbackMap::merge(const FeedbackMap &O) {
  for (const auto &[Fn, Cov] : O.PerFunction)
    PerFunction[Fn].orWith(Cov);
  for (size_t K = 0; K != PerFamily.size(); ++K)
    PerFamily[K].orWith(O.PerFamily[K]);
  Global.orWith(O.Global);
}

bool FeedbackMap::empty() const { return Global.empty(); }

void FeedbackMap::clear() {
  PerFunction.clear();
  for (CoverageBitmap &C : PerFamily)
    C = CoverageBitmap();
  Global = CoverageBitmap();
}

bool FeedbackMap::operator==(const FeedbackMap &O) const {
  return Global == O.Global && PerFamily == O.PerFamily &&
         PerFunction == O.PerFunction;
}

/// Writes a bitmap as a JSON array of exact decimal word values.
static void writeWords(std::ostream &OS, const CoverageBitmap &C) {
  OS << "[";
  for (unsigned I = 0; I != CoverageBitmap::NumWords; ++I)
    OS << (I ? ", " : "") << C.Words[I];
  OS << "]";
}

/// Reads a bitmap written by writeWords. Shorter arrays (an older build
/// with fewer rules) zero-fill; longer ones are an error.
static bool readWords(const JSONValue &V, CoverageBitmap &C,
                      std::string &Error) {
  if (!V.isArray() || V.Arr.size() > CoverageBitmap::NumWords) {
    Error = "coverage bitmap: expected an array of at most " +
            std::to_string(CoverageBitmap::NumWords) + " words";
    return false;
  }
  C = CoverageBitmap();
  for (size_t I = 0; I != V.Arr.size(); ++I) {
    if (!V.Arr[I].IsInt) {
      Error = "coverage bitmap: non-integer word";
      return false;
    }
    C.Words[I] = V.Arr[I].Int;
  }
  return true;
}

void FeedbackMap::writeJSON(std::ostream &OS,
                            const std::string &Indent) const {
  OS << "{\n";
  OS << Indent << "  \"global\": ";
  writeWords(OS, Global);
  OS << ",\n" << Indent << "  \"per_family\": {";
  for (size_t K = 0; K != PerFamily.size(); ++K) {
    OS << (K ? ", " : "");
    writeJSONString(OS, mutationKindName((MutationKind)K));
    OS << ": ";
    writeWords(OS, PerFamily[K]);
  }
  OS << "},\n" << Indent << "  \"per_function\": {";
  bool First = true;
  for (const auto &[Fn, Cov] : PerFunction) {
    OS << (First ? "" : ", ");
    First = false;
    writeJSONString(OS, Fn);
    OS << ": ";
    writeWords(OS, Cov);
  }
  OS << "}\n" << Indent << "}";
}

bool FeedbackMap::readJSON(const JSONValue &V, FeedbackMap &Out,
                           std::string &Error) {
  if (!V.isObject()) {
    Error = "feedback map: expected an object";
    return false;
  }
  Out.clear();
  if (const JSONValue *G = V.find("global"))
    if (!readWords(*G, Out.Global, Error))
      return false;
  if (const JSONValue *PF = V.find("per_family")) {
    if (!PF->isObject()) {
      Error = "feedback map: per_family is not an object";
      return false;
    }
    for (const auto &[Name, W] : PF->Obj) {
      for (size_t K = 0; K != Out.PerFamily.size(); ++K)
        if (Name == mutationKindName((MutationKind)K)) {
          if (!readWords(W, Out.PerFamily[K], Error))
            return false;
          break;
        }
      // Unknown family names are skipped (forward compatibility).
    }
  }
  if (const JSONValue *PFn = V.find("per_function")) {
    if (!PFn->isObject()) {
      Error = "feedback map: per_function is not an object";
      return false;
    }
    for (const auto &[Fn, W] : PFn->Obj)
      if (!readWords(W, Out.PerFunction[Fn], Error))
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ScheduleState
//===----------------------------------------------------------------------===//

uint64_t ScheduleState::update(const FeedbackMap &Prev,
                               const FeedbackMap &Merged) {
  static const CoverageBitmap EmptyCov;
  // Per-function energy: every function the campaign has ever credited is
  // re-scored; unseen functions stay at the implicit MaxEnergy.
  for (const auto &[Fn, Cov] : Merged.PerFunction) {
    auto It = Prev.PerFunction.find(Fn);
    const CoverageBitmap &Before =
        It == Prev.PerFunction.end() ? EmptyCov : It->second;
    if (Cov.newBits(Before) > 0) {
      Energy[Fn] = MaxEnergy;
      Dry[Fn] = 0;
    } else {
      uint32_t &D = Dry[Fn];
      ++D;
      Energy[Fn] = std::max(MinEnergy, D < 3 ? MaxEnergy >> D : MinEnergy);
    }
  }
  // Family weights: double on novelty, halve on a dry epoch.
  for (size_t K = 0; K != FamilyWeights.size(); ++K) {
    bool Novel = Merged.PerFamily[K].newBits(Prev.PerFamily[K]) > 0;
    uint32_t &W = FamilyWeights[K];
    W = Novel ? std::min(MaxWeight, W * 2) : std::max(MinWeight, W / 2);
  }
  return Merged.Global.newBits(Prev.Global);
}

bool ScheduleState::operator==(const ScheduleState &O) const {
  return Energy == O.Energy && Dry == O.Dry &&
         FamilyWeights == O.FamilyWeights;
}

void ScheduleState::writeJSON(std::ostream &OS,
                              const std::string &Indent) const {
  auto writeMap = [&](const std::map<std::string, uint32_t> &M) {
    OS << "{";
    bool First = true;
    for (const auto &[K, V] : M) {
      OS << (First ? "" : ", ");
      First = false;
      writeJSONString(OS, K);
      OS << ": " << V;
    }
    OS << "}";
  };
  OS << "{\n" << Indent << "  \"energy\": ";
  writeMap(Energy);
  OS << ",\n" << Indent << "  \"dry\": ";
  writeMap(Dry);
  OS << ",\n" << Indent << "  \"weights\": {";
  for (size_t K = 0; K != FamilyWeights.size(); ++K) {
    OS << (K ? ", " : "");
    writeJSONString(OS, mutationKindName((MutationKind)K));
    OS << ": " << FamilyWeights[K];
  }
  OS << "}\n" << Indent << "}";
}

bool ScheduleState::readJSON(const JSONValue &V, ScheduleState &Out,
                             std::string &Error) {
  if (!V.isObject()) {
    Error = "schedule: expected an object";
    return false;
  }
  Out = ScheduleState();
  auto readMap = [&](const JSONValue *M,
                     std::map<std::string, uint32_t> &Dst) {
    if (!M)
      return true;
    if (!M->isObject()) {
      Error = "schedule: expected an object of counts";
      return false;
    }
    for (const auto &[K, W] : M->Obj) {
      if (!W.IsInt) {
        Error = "schedule: non-integer value for " + K;
        return false;
      }
      Dst[K] = (uint32_t)W.Int;
    }
    return true;
  };
  if (!readMap(V.find("energy"), Out.Energy) ||
      !readMap(V.find("dry"), Out.Dry))
    return false;
  if (const JSONValue *W = V.find("weights")) {
    if (!W->isObject()) {
      Error = "schedule: weights is not an object";
      return false;
    }
    for (const auto &[Name, WV] : W->Obj)
      for (size_t K = 0; K != Out.FamilyWeights.size(); ++K)
        if (Name == mutationKindName((MutationKind)K)) {
          if (!WV.IsInt) {
            Error = "schedule: non-integer weight for " + Name;
            return false;
          }
          Out.FamilyWeights[K] = (uint32_t)WV.Int;
          break;
        }
  }
  return true;
}
