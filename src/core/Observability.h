//===- core/Observability.h - Live campaign observation types --*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared types of the live observability plane: streamed campaign
/// events with their bounded MPSC queue, and the point-in-time snapshot a
/// running CampaignEngine exposes to observer threads.
///
/// The plane is strictly *observer-only*: everything here is read-side.
/// Workers push events through a non-blocking bounded queue (a full queue
/// drops the event and counts the drop — a slow or absent observer can
/// never stall an iteration), and the engine's live snapshot reads only
/// relaxed atomics and mutex-guarded registry structure. Nothing on this
/// path touches a RandomGenerator or any state serialized into the
/// deterministic report section, which is how -j1 == -jN byte-identity
/// and -resume byte-equality survive having a metrics server attached.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_OBSERVABILITY_H
#define CORE_OBSERVABILITY_H

#include "support/Telemetry.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace alive {

/// One campaign instant worth streaming to a live observer.
struct CampaignEvent {
  enum class Kind : uint8_t {
    CampaignStart,
    BugFound,     ///< any recorded bug: miscompile, crash, invalid, timeout
    EpochBarrier, ///< a feedback epoch merged and rescheduled
    Checkpoint,   ///< a checkpoint snapshot hit disk
    ShardRestart, ///< an isolated shard died and was restarted
    CampaignEnd,
  };

  Kind K = Kind::BugFound;
  uint64_t Seed = 0;     ///< mutant seed (bug events; 0 = n/a)
  unsigned Shard = 0;    ///< originating worker/shard index
  uint64_t Nanos = 0;    ///< TraceRecorder::now() at emission
  std::string Detail;    ///< kind-specific: verdict slug, function, epoch...
};

/// The SSE event name for \p K ("bug-found", "epoch-barrier", ...).
const char *campaignEventName(CampaignEvent::Kind K);

/// A bounded multi-producer single-consumer event queue. push() never
/// blocks beyond a short mutex critical section and never waits for the
/// consumer: when the ring is full the event is dropped and counted.
/// Producers are campaign workers (bug sites, checkpoint lambdas); the
/// single consumer is the metrics server's tick, which drains in batches.
class CampaignEventQueue {
public:
  explicit CampaignEventQueue(size_t Capacity = 1024);

  /// Enqueues \p E. \returns false (and counts a drop) when full.
  bool push(CampaignEvent E);

  /// Moves every queued event into \p Out (appending), oldest first.
  /// \returns the number of events drained.
  size_t drain(std::vector<CampaignEvent> &Out);

  /// Events dropped because the queue was full.
  uint64_t dropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }
  /// Events ever accepted (each gets a monotonically increasing sequence
  /// number, used as the SSE event id).
  uint64_t accepted() const {
    return Accepted.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex M;
  std::vector<CampaignEvent> Ring; ///< [Head, Head+Size) mod Cap
  size_t Head = 0;
  size_t Size = 0;
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Dropped{0};
};

/// Live per-shard progress as seen by an observer thread.
struct ShardLiveState {
  unsigned Index = 0;
  uint64_t Lo = 0, Hi = 0;  ///< seed-offset slice (Hi == 0: dynamic/unknown)
  uint64_t Done = 0;        ///< iterations completed
  uint64_t StageNanos[4] = {}; ///< mutate/optimize/verify/overhead
  uint64_t TraceDropped = 0;   ///< flight-recorder ring overwrites so far
  bool HasRegistry = false; ///< false for isolated (out-of-process) shards
};

/// A point-in-time view of a running (or finished) campaign. Produced by
/// CampaignEngine::liveSnapshot(); every field is copied out, so readers
/// hold no locks while rendering.
struct CampaignLiveSnapshot {
  bool Running = false;      ///< run() is currently between setup and join
  double Elapsed = 0;        ///< seconds since run() started
  uint64_t Done = 0;         ///< iterations completed, all shards
  uint64_t Target = 0;       ///< planned iterations (0 = time-limited)
  unsigned Workers = 0;
  bool Isolated = false;     ///< shards are child processes
  /// The campaign permanently lost a shard lease (-fanout retry budget
  /// exhausted): /healthz reports 503 until a clean run replaces this.
  bool Degraded = false;
  std::vector<ShardLiveState> Shards;
  /// Merged registry view: the engine's own registry plus a snapshot of
  /// every live worker registry (always safe: worker stat values are
  /// relaxed atomics, map structure is mutex-guarded).
  StatRegistry Stats;
  /// Feedback state published at the last epoch barrier (all zero when
  /// -feedback is off or no barrier has completed yet).
  bool FeedbackEnabled = false;
  uint64_t FeedbackEpochs = 0;
  unsigned FeedbackBits = 0; ///< cumulative coverage bits set
  std::vector<std::pair<std::string, uint32_t>> FamilyWeights;
};

} // namespace alive

#endif // CORE_OBSERVABILITY_H
