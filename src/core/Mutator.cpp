//===- core/Mutator.cpp - The alive-mutate mutation engine -----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Mutator.h"

#include "parser/Printer.h"

#include <algorithm>
#include <map>

using namespace alive;

const char *alive::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::Attributes:
    return "attributes";
  case MutationKind::Inline:
    return "inline";
  case MutationKind::RemoveCall:
    return "remove-call";
  case MutationKind::Shuffle:
    return "shuffle";
  case MutationKind::Arith:
    return "arith";
  case MutationKind::Use:
    return "use";
  case MutationKind::Move:
    return "move";
  case MutationKind::Bitwidth:
    return "bitwidth";
  case MutationKind::NumKinds:
    break;
  }
  return "?";
}

Mutator::Mutator(RandomGenerator &RNG, const MutationOptions &Opts,
                 StatRegistry *Stats, TraceRecorder *Trace)
    : RNG(RNG), Opts(Opts), Trace(Trace) {
  if (!Stats)
    return;
  for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K) {
    std::string Base =
        std::string("mutation.") + mutationKindName((MutationKind)K);
    Family[K].Applied = &Stats->counter(Base + ".applied");
    Family[K].Rejected = &Stats->counter(Base + ".rejected");
  }
}

void Mutator::note(std::string Site, std::string Detail) {
  PendingSite = std::move(Site);
  PendingDetail = std::move(Detail);
}

bool Mutator::apply(MutationKind K, MutantInfo &MI) {
  if (Trail) {
    PendingSite.clear();
    PendingDetail.clear();
  }
  bool Changed;
  {
    // Per-family flight-recorder span (the "mutate-per-family" events):
    // labeled by family, with the mutated function as detail.
    TraceSpan Span(Trace, mutationKindName(K), /*Seed=*/0,
                   Trace ? Trace->intern(MI.getFunction().getName())
                         : nullptr);
    Changed = applyImpl(K, MI);
  }
  if (const FamilyCounters &C = Family[(unsigned)K]; C.Applied)
    ++*(Changed ? C.Applied : C.Rejected);
  if (Trail && Changed)
    Trail->push_back({K, MI.getFunction().getName(),
                      std::move(PendingSite), std::move(PendingDetail)});
  return Changed;
}

bool Mutator::applyImpl(MutationKind K, MutantInfo &MI) {
  switch (K) {
  case MutationKind::Attributes:
    return mutateAttributes(MI);
  case MutationKind::Inline:
    return mutateInline(MI);
  case MutationKind::RemoveCall:
    return mutateRemoveCall(MI);
  case MutationKind::Shuffle:
    return mutateShuffle(MI);
  case MutationKind::Arith:
    return mutateArith(MI);
  case MutationKind::Use:
    return mutateUse(MI);
  case MutationKind::Move:
    return mutateMove(MI);
  case MutationKind::Bitwidth:
    return mutateBitwidth(MI);
  case MutationKind::NumKinds:
    break;
  }
  return false;
}

MutationKind Mutator::pickKind() {
  // All-equal weights (the initial feedback schedule) take the uniform
  // path so they consume the RNG stream exactly like a blind run: a
  // feedback campaign diverges from blind only once the weights do.
  bool Uniform = true;
  if (Weights)
    for (MutationKind K : Opts.EnabledKinds)
      if (Weights[(unsigned)K] != Weights[(unsigned)Opts.EnabledKinds[0]]) {
        Uniform = false;
        break;
      }
  if (!Weights || Uniform)
    return RNG.pick(Opts.EnabledKinds);
  // Weighted pick over the enabled kinds. Weight slots are clamped to at
  // least 1, so Total > 0 whenever EnabledKinds is non-empty.
  uint64_t Total = 0;
  for (MutationKind K : Opts.EnabledKinds)
    Total += std::max<uint32_t>(1, Weights[(unsigned)K]);
  uint64_t R = RNG.below(Total);
  for (MutationKind K : Opts.EnabledKinds) {
    uint64_t W = std::max<uint32_t>(1, Weights[(unsigned)K]);
    if (R < W)
      return K;
    R -= W;
  }
  return Opts.EnabledKinds.back();
}

std::vector<MutationKind> Mutator::mutateFunction(MutantInfo &MI) {
  std::vector<MutationKind> Applied;
  // Empty family set or a zero mutation budget is a clean no-op, NOT a
  // pick from an empty vector: RNG.below(0)/pick(empty) are undefined
  // under NDEBUG. Returning before the first draw keeps the RNG stream
  // of every other function untouched.
  if (Opts.EnabledKinds.empty() || Opts.MaxMutationsPerFunction == 0)
    return Applied;
  unsigned Target = 1 + (unsigned)RNG.below(Opts.MaxMutationsPerFunction);
  unsigned Attempts = 0;
  while (Applied.size() < Target && Attempts++ < Target * 6) {
    MutationKind K = pickKind();
    if (apply(K, MI))
      Applied.push_back(K);
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// §IV-A: attributes
//===----------------------------------------------------------------------===//

bool Mutator::mutateAttributes(MutantInfo &MI) {
  Function &F = MI.getFunction();
  Module &M = *F.getParent();

  // Candidates: the function itself and any callee declarations reachable
  // from it (toggling an external declaration's attributes changes the
  // facts the optimizer may exploit — paper Listing 5 toggles nofree).
  std::vector<Function *> Targets{&F};
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      if (auto *C = dyn_cast<CallInst>(I))
        if (!C->getCallee()->isIntrinsic())
          Targets.push_back(C->getCallee());
  (void)M;

  Function *T = RNG.pick(Targets);
  // Choose a function-level or a parameter-level toggle.
  if (T->getNumArgs() == 0 || RNG.flip()) {
    FnAttr A = RNG.pick(allFnAttrs());
    T->toggleFnAttr(A);
    if (wantNote())
      note("@" + T->getName(),
           std::string("toggled function attribute ") + fnAttrName(A));
    return true;
  }
  unsigned ArgIdx = (unsigned)RNG.below(T->getNumArgs());
  ParamAttrs &PA = T->paramAttrs(ArgIdx);
  bool IsPointer = T->getArg(ArgIdx)->getType()->isPointerTy();
  const char *What = "";
  switch (RNG.below(IsPointer ? 5 : 1)) {
  case 0:
    PA.NoUndef = !PA.NoUndef;
    What = "noundef";
    break;
  case 1:
    PA.NoCapture = !PA.NoCapture;
    What = "nocapture";
    break;
  case 2:
    PA.NonNull = !PA.NonNull;
    What = "nonnull";
    break;
  case 3:
    PA.ReadOnly = !PA.ReadOnly;
    What = "readonly";
    break;
  case 4: {
    static const uint64_t Sizes[] = {0, 1, 2, 4, 8, 16};
    PA.Dereferenceable = Sizes[RNG.below(std::size(Sizes))];
    What = "dereferenceable";
    break;
  }
  }
  if (wantNote())
    note("@" + T->getName(), std::string("toggled parameter attribute ") +
                                 What + " on arg #" +
                                 std::to_string(ArgIdx));
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-B: inlining a function other than the intended callee
//===----------------------------------------------------------------------===//

bool Mutator::mutateInline(MutantInfo &MI) {
  Function &F = MI.getFunction();
  Module &M = *F.getParent();

  // Call sites whose callee is a plain function (not an intrinsic).
  struct Site {
    BasicBlock *BB;
    unsigned Idx;
    CallInst *Call;
  };
  std::vector<Site> Sites;
  for (BasicBlock *BB : F.blocks())
    for (unsigned I = 0; I != BB->size(); ++I)
      if (auto *C = dyn_cast<CallInst>(BB->getInst(I)))
        if (!C->getCallee()->isIntrinsic())
          Sites.push_back({BB, I, C});
  if (Sites.empty())
    return false;
  Site S = RNG.pick(Sites);

  // Candidate bodies: defined single-block functions (other than F) with a
  // signature compatible with the call site. "We abuse the inliner ... by
  // asking it to inline functions other than the intended inlining target."
  std::vector<Function *> Bodies;
  for (Function *Cand : M.functions()) {
    if (Cand == &F || Cand->isDeclaration() || Cand->getNumBlocks() != 1)
      continue;
    if (Cand->getType() != S.Call->getCallee()->getType())
      continue;
    if (!Cand->getEntryBlock()->getTerminator() ||
        !isa<ReturnInst>(Cand->getEntryBlock()->getTerminator()))
      continue;
    Bodies.push_back(Cand);
  }
  if (Bodies.empty())
    return false;
  Function *Body = RNG.pick(Bodies);
  if (wantNote())
    note(printValueRef(S.Call), "inlined body of @" + Body->getName() +
                                    " at call to @" +
                                    S.Call->getCallee()->getName());

  // Splice a clone of Body's single block at the call site, mapping its
  // arguments to the call's arguments.
  std::map<const Value *, Value *> Map;
  for (unsigned I = 0; I != Body->getNumArgs(); ++I)
    Map[Body->getArg(I)] = S.Call->getArg(I);

  unsigned InsertAt = S.Idx;
  Value *RetVal = nullptr;
  for (Instruction *I : Body->getEntryBlock()->insts()) {
    if (auto *Ret = dyn_cast<ReturnInst>(I)) {
      if (Value *RV = Ret->getReturnValue()) {
        auto It = Map.find(RV);
        RetVal = It != Map.end() ? It->second : RV;
      }
      break;
    }
    // Clone with mapped operands. Reuse the module-level cloning helper by
    // going through a single-instruction copy.
    Function *Tmp = nullptr;
    (void)Tmp;
    // Manual clone: all instruction kinds a single-block body can contain.
    Instruction *NewI = nullptr;
    auto mapOp = [&](unsigned K) -> Value * {
      Value *Op = I->getOperand(K);
      auto It = Map.find(Op);
      return It != Map.end() ? It->second : Op;
    };
    switch (I->getKind()) {
    case Value::VK_BinaryInst: {
      auto *B = cast<BinaryInst>(I);
      auto *NB = new BinaryInst(B->getBinOp(), mapOp(0), mapOp(1));
      NB->setNUW(B->hasNUW());
      NB->setNSW(B->hasNSW());
      NB->setExact(B->isExact());
      NewI = NB;
      break;
    }
    case Value::VK_ICmpInst: {
      auto *C = cast<ICmpInst>(I);
      NewI = new ICmpInst(C->getPredicate(), mapOp(0), mapOp(1),
                          M.getTypes().getIntTy(1));
      break;
    }
    case Value::VK_SelectInst:
      NewI = new SelectInst(mapOp(0), mapOp(1), mapOp(2));
      break;
    case Value::VK_CastInst: {
      auto *C = cast<CastInst>(I);
      NewI = new CastInst(C->getCastOp(), mapOp(0), C->getType());
      break;
    }
    case Value::VK_FreezeInst:
      NewI = new FreezeInst(mapOp(0));
      break;
    case Value::VK_CallInst: {
      auto *C = cast<CallInst>(I);
      std::vector<Value *> Args;
      for (unsigned K = 0; K != C->getNumArgs(); ++K)
        Args.push_back(mapOp(K));
      NewI = new CallInst(C->getCallee(), Args, C->getType());
      break;
    }
    case Value::VK_LoadInst: {
      auto *L = cast<LoadInst>(I);
      NewI = new LoadInst(L->getType(), mapOp(0), L->getAlign());
      break;
    }
    case Value::VK_StoreInst: {
      auto *St = cast<StoreInst>(I);
      NewI = new StoreInst(mapOp(0), mapOp(1), M.getTypes().getVoidTy(),
                           St->getAlign());
      break;
    }
    case Value::VK_AllocaInst: {
      auto *A = cast<AllocaInst>(I);
      NewI = new AllocaInst(A->getAllocatedType(), M.getTypes().getPointerTy(),
                            A->getAlign());
      break;
    }
    case Value::VK_GEPInst: {
      auto *G = cast<GEPInst>(I);
      NewI = new GEPInst(G->getSourceElementType(), mapOp(0), mapOp(1),
                         M.getTypes().getPointerTy(), G->isInBounds());
      break;
    }
    default:
      // Unsupported body instruction: bail out of this inline attempt,
      // leaving already-spliced instructions (they are valid and the call
      // remains — still a well-formed mutant).
      return InsertAt != S.Idx;
    }
    S.BB->insert(InsertAt++, std::unique_ptr<Instruction>(NewI));
    Map[I] = NewI;
  }

  // Replace the call.
  unsigned CallIdx = InsertAt;
  assert(S.BB->getInst(CallIdx) == S.Call && "call position drifted");
  (void)CallIdx;
  if (!S.Call->getType()->isVoidTy()) {
    if (!RetVal)
      RetVal = randomConstant(M, S.Call->getType(), RNG, Opts.ValueSource);
    if (auto *RC = dyn_cast<Constant>(RetVal))
      (void)RC;
    S.Call->replaceAllUsesWith(RetVal);
  }
  S.BB->erase(S.Call);
  MI.invalidateBlock(S.BB);
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-C: removing void calls
//===----------------------------------------------------------------------===//

bool Mutator::mutateRemoveCall(MutantInfo &MI) {
  Function &F = MI.getFunction();
  std::vector<std::pair<BasicBlock *, CallInst *>> Candidates;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      if (auto *C = dyn_cast<CallInst>(I))
        if (C->getType()->isVoidTy())
          Candidates.push_back({BB, C});
  if (Candidates.empty())
    return false;
  auto [BB, Call] = RNG.pick(Candidates);
  if (wantNote())
    note("call @" + Call->getCallee()->getName(), "removed void call");
  BB->erase(Call);
  MI.invalidateBlock(BB);
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-D: shuffling dependence-free ranges
//===----------------------------------------------------------------------===//

bool Mutator::mutateShuffle(MutantInfo &MI) {
  Function &F = MI.getFunction();
  if (F.getNumBlocks() == 0)
    return false;
  unsigned BlockIdx = (unsigned)RNG.below(F.getNumBlocks());
  BasicBlock *BB = F.getBlock(BlockIdx);
  std::vector<ShuffleRange> Ranges = MI.shuffleRangesFor(BB);
  if (Ranges.empty())
    return false;
  const ShuffleRange R = RNG.pick(Ranges);
  assert(isShufflable(*BB, R.Begin, R.End) && "stale shuffle range");

  // Detach the range, permute, reinsert.
  std::vector<std::unique_ptr<Instruction>> Chunk;
  for (unsigned I = R.End; I-- > R.Begin;)
    Chunk.push_back(BB->take(BB->getInst(I)));
  // Chunk is reversed; shuffle it outright (identity permutations allowed —
  // the mutation still counts as applied, matching a random permutation).
  RNG.shuffle(Chunk);
  for (auto &I : Chunk)
    BB->insert(R.Begin, std::move(I));
  MI.invalidateBlock(BB);
  if (wantNote())
    note("block #" + std::to_string(BlockIdx),
         "shuffled instructions [" + std::to_string(R.Begin) + ", " +
             std::to_string(R.End) + ")");
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-E: arithmetic mutations
//===----------------------------------------------------------------------===//

bool Mutator::mutateArith(MutantInfo &MI) {
  Function &F = MI.getFunction();
  Module &M = *F.getParent();

  // Candidate actions over arithmetic-ish instructions (GEPs count as
  // arithmetic per the paper; loads/stores expose their align knob, the
  // analog of Listing 16's unusual alignment).
  struct Action {
    Instruction *I;
    unsigned Which;
  };
  std::vector<Action> Actions;
  for (BasicBlock *BB : F.blocks()) {
    for (Instruction *I : BB->insts()) {
      if (auto *B = dyn_cast<BinaryInst>(I)) {
        Actions.push_back({B, 0}); // change opcode
        Actions.push_back({B, 1}); // swap operands
        if (BinaryInst::supportsNUWNSW(B->getBinOp()) ||
            BinaryInst::supportsExact(B->getBinOp()))
          Actions.push_back({B, 2}); // toggle a flag
        if (isa<ConstantInt>(B->getLHS()) || isa<ConstantInt>(B->getRHS()))
          Actions.push_back({B, 3}); // replace a literal constant
        if (isa<ConstantVector>(B->getLHS()) ||
            isa<ConstantVector>(B->getRHS()))
          Actions.push_back({B, 9}); // replace a vector literal
      } else if (auto *C = dyn_cast<ICmpInst>(I)) {
        Actions.push_back({C, 4}); // change predicate
        Actions.push_back({C, 1}); // swap operands
        if (isa<ConstantInt>(C->getLHS()) || isa<ConstantInt>(C->getRHS()))
          Actions.push_back({C, 3});
      } else if (auto *G = dyn_cast<GEPInst>(I)) {
        if (isa<ConstantInt>(G->getIndex()))
          Actions.push_back({G, 5}); // replace gep index constant
        Actions.push_back({G, 6});   // toggle inbounds
      } else if (isa<LoadInst>(I) || isa<StoreInst>(I)) {
        Actions.push_back({I, 7}); // randomize alignment
      } else if (auto *Call = dyn_cast<CallInst>(I)) {
        // Toggle i1 immediate flags of intrinsics (abs/ctlz/cttz).
        if (Call->getCallee()->isIntrinsic())
          for (unsigned K = 0; K != Call->getNumArgs(); ++K)
            if (Call->getArg(K)->getType()->isBoolTy() &&
                isa<ConstantInt>(Call->getArg(K)))
              Actions.push_back({Call, 8});
      }
    }
  }
  if (Actions.empty())
    return false;
  Action A = RNG.pick(Actions);

  switch (A.Which) {
  case 0: { // change opcode (e.g. the paper's and -> xor in Figure 1)
    auto *B = cast<BinaryInst>(A.I);
    auto NewOp = (BinaryInst::BinOp)RNG.below(BinaryInst::NumBinOps);
    if (NewOp == B->getBinOp())
      NewOp = (BinaryInst::BinOp)((NewOp + 1) % BinaryInst::NumBinOps);
    B->setBinOp(NewOp);
    // Clear flags the new opcode cannot carry.
    if (!BinaryInst::supportsNUWNSW(NewOp)) {
      B->setNUW(false);
      B->setNSW(false);
    }
    if (!BinaryInst::supportsExact(NewOp))
      B->setExact(false);
    if (wantNote())
      note(printValueRef(B),
           std::string("opcode -> ") + BinaryInst::getBinOpName(NewOp));
    return true;
  }
  case 1: { // swap operands
    auto *U = cast<User>((Value *)A.I);
    Value *L = U->getOperand(0), *R = U->getOperand(1);
    U->setOperand(0, R);
    U->setOperand(1, L);
    if (wantNote())
      note(printValueRef(A.I), "swapped operands");
    return true;
  }
  case 2: { // toggle flags (possibly several, paper Listing 9)
    auto *B = cast<BinaryInst>(A.I);
    bool Toggled = false;
    if (BinaryInst::supportsNUWNSW(B->getBinOp())) {
      if (RNG.flip()) {
        B->setNUW(!B->hasNUW());
        Toggled = true;
      }
      if (RNG.flip()) {
        B->setNSW(!B->hasNSW());
        Toggled = true;
      }
    }
    if (BinaryInst::supportsExact(B->getBinOp()) && (RNG.flip() || !Toggled))
      B->setExact(!B->isExact());
    if (wantNote())
      note(printValueRef(B), "toggled wrap/exact flags");
    return true;
  }
  case 3: { // replace a literal constant with a random value
    auto *U = cast<User>((Value *)A.I);
    std::vector<unsigned> ConstSlots;
    for (unsigned K = 0; K != U->getNumOperands(); ++K)
      if (isa<ConstantInt>(U->getOperand(K)))
        ConstSlots.push_back(K);
    unsigned Slot = RNG.pick(ConstSlots);
    auto *IT = cast<IntegerType>(U->getOperand(Slot)->getType());
    // Half the time pick a constant seen elsewhere in the original code
    // (the preprocessed literal inventory), otherwise fully random.
    APInt NewVal = APInt::getZero(IT->getBitWidth());
    const std::vector<APInt> &Pool = MI.base().literalConstants();
    bool FromPool = !Pool.empty() && RNG.flip();
    if (FromPool) {
      const APInt &P = RNG.pick(Pool);
      NewVal = P.getBitWidth() == IT->getBitWidth()
                   ? P
                   : P.zextOrTrunc(IT->getBitWidth());
    } else {
      NewVal = RNG.nextAPInt(IT->getBitWidth());
    }
    U->setOperand(Slot, M.getConstants().getInt(IT, NewVal));
    if (wantNote())
      note(printValueRef(A.I),
           "operand #" + std::to_string(Slot) + " constant -> " +
               NewVal.toString());
    return true;
  }
  case 4: { // change icmp predicate
    auto *C = cast<ICmpInst>(A.I);
    auto NewP = (ICmpInst::Predicate)RNG.below(ICmpInst::NumPreds);
    if (NewP == C->getPredicate())
      NewP = ICmpInst::getInversePredicate(NewP);
    C->setPredicate(NewP);
    if (wantNote())
      note(printValueRef(C),
           std::string("predicate -> ") + ICmpInst::getPredicateName(NewP));
    return true;
  }
  case 5: { // replace gep index constant
    auto *G = cast<GEPInst>(A.I);
    auto *IT = cast<IntegerType>(G->getIndex()->getType());
    // Small offsets, biased around zero.
    int64_t Off = (int64_t)RNG.below(9) - 4;
    G->setOperand(1, M.getConstants().getInt(
                         IT, APInt(IT->getBitWidth(), (uint64_t)Off, true)));
    if (wantNote())
      note(printValueRef(G), "gep index -> " + std::to_string(Off));
    return true;
  }
  case 6: { // toggle inbounds
    auto *G = cast<GEPInst>(A.I);
    G->setInBounds(!G->isInBounds());
    if (wantNote())
      note(printValueRef(G),
           G->isInBounds() ? "inbounds set" : "inbounds cleared");
    return true;
  }
  case 7: { // randomize alignment (including unusual values, Listing 16)
    static const unsigned Aligns[] = {1, 1, 2, 4, 8, 16, 3, 123};
    unsigned NewAlign = Aligns[RNG.below(std::size(Aligns))];
    if (auto *L = dyn_cast<LoadInst>(A.I))
      L->setAlign(NewAlign);
    else
      cast<StoreInst>(A.I)->setAlign(NewAlign);
    if (wantNote())
      note(printValueRef(A.I), "align -> " + std::to_string(NewAlign));
    return true;
  }
  case 9: { // replace a vector literal (lanes may become poison/undef)
    auto *U = cast<User>((Value *)A.I);
    std::vector<unsigned> Slots;
    for (unsigned K = 0; K != U->getNumOperands(); ++K)
      if (isa<ConstantVector>(U->getOperand(K)))
        Slots.push_back(K);
    unsigned Slot = RNG.pick(Slots);
    ValueSourceOptions VecOpts = Opts.ValueSource;
    VecOpts.PoisonPercent = 25; // lane-level, so keep lanes interesting
    U->setOperand(Slot, randomConstant(M, U->getOperand(Slot)->getType(),
                                       RNG, VecOpts));
    if (wantNote())
      note(printValueRef(A.I),
           "replaced vector literal in operand #" + std::to_string(Slot));
    return true;
  }
  case 8: { // toggle an intrinsic's boolean immediate
    auto *Call = cast<CallInst>(A.I);
    std::vector<unsigned> Slots;
    for (unsigned K = 0; K != Call->getNumArgs(); ++K)
      if (Call->getArg(K)->getType()->isBoolTy() &&
          isa<ConstantInt>(Call->getArg(K)))
        Slots.push_back(K);
    unsigned Slot = RNG.pick(Slots);
    bool Cur = !cast<ConstantInt>(Call->getArg(Slot))->isZero();
    Call->setOperand(Slot,
                     M.getConstants().getBool(M.getTypes(), !Cur));
    if (wantNote())
      note(printValueRef(Call), "boolean immediate arg #" +
                                    std::to_string(Slot) + " -> " +
                                    (!Cur ? "true" : "false"));
    return true;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// §IV-F: mutating uses
//===----------------------------------------------------------------------===//

bool Mutator::mutateUse(MutantInfo &MI) {
  Function &F = MI.getFunction();

  // Candidate operand slots: first-class-typed operands. Phi incoming
  // values are included; their replacement is generated at the end of the
  // incoming block, where a phi use must be available.
  struct Slot {
    BasicBlock *BB;
    Instruction *I;
    unsigned OpIdx;
  };
  std::vector<Slot> Slots;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      for (unsigned K = 0; K != I->getNumOperands(); ++K)
        if (I->getOperand(K)->getType()->isFirstClassTy())
          Slots.push_back({BB, I, K});
  if (Slots.empty())
    return false;
  Slot S = RNG.pick(Slots);

  BasicBlock *InsBB;
  unsigned Pos;
  if (auto *Phi = dyn_cast<PhiNode>(S.I)) {
    InsBB = Phi->getIncomingBlock(S.OpIdx);
    Pos = InsBB->size() - 1; // before the incoming block's terminator
  } else {
    InsBB = S.BB;
    Pos = MI.positionOf(S.I);
  }
  Value *New = randomDominatingValue(MI, S.I->getOperand(S.OpIdx)->getType(),
                                     InsBB, Pos, RNG, Opts.ValueSource,
                                     /*Avoid=*/S.I);
  // Pos may have advanced past inserted instructions; the instruction
  // itself shifted accordingly, and New dominates the new position.
  S.I->setOperand(S.OpIdx, New);
  MI.invalidateBlock(InsBB);
  if (InsBB != S.BB)
    MI.invalidateBlock(S.BB);
  if (wantNote())
    note(printValueRef(S.I), "operand #" + std::to_string(S.OpIdx) + " -> " +
                                 printValueRef(New));
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-G: moving an instruction
//===----------------------------------------------------------------------===//

bool Mutator::mutateMove(MutantInfo &MI) {
  Function &F = MI.getFunction();

  struct Cand {
    BasicBlock *BB;
    Instruction *I;
  };
  std::vector<Cand> Cands;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      if (!isa<PhiNode>(I) && !I->isTerminator())
        Cands.push_back({BB, I});
  if (Cands.empty())
    return false;
  Cand C = RNG.pick(Cands);
  BasicBlock *BB = C.BB;

  // Legal target positions: after the phi prefix, before the terminator.
  unsigned FirstPos = 0;
  while (FirstPos < BB->size() && isa<PhiNode>(BB->getInst(FirstPos)))
    ++FirstPos;
  unsigned LastPos = BB->size() - 1; // before terminator
  if (LastPos <= FirstPos)
    return false;
  unsigned OldPos = MI.positionOf(C.I);
  unsigned NewPos = FirstPos + (unsigned)RNG.below(LastPos - FirstPos);

  if (NewPos == OldPos)
    return false;

  auto Owned = BB->take(C.I);
  BB->insert(NewPos, std::move(Owned));
  MI.invalidateBlock(BB);
  if (wantNote())
    note(printValueRef(C.I), "moved from position " + std::to_string(OldPos) +
                                 " to " + std::to_string(NewPos));

  if (NewPos < OldPos) {
    // Moved earlier: operands defined in (NewPos, OldPos] are now below the
    // instruction; find substitutes (paper Listing 12).
    for (unsigned K = 0; K != C.I->getNumOperands(); ++K) {
      Value *Op = C.I->getOperand(K);
      if (!MI.valueAvailableAt(Op, BB, NewPos)) {
        unsigned Pos = NewPos;
        Value *Repl = randomDominatingValue(MI, Op->getType(), BB, Pos, RNG,
                                            Opts.ValueSource, /*Avoid=*/C.I);
        C.I->setOperand(K, Repl);
        MI.invalidateBlock(BB);
      }
    }
  } else {
    // Moved later: users in [OldPos, NewPos) lost dominance; rewrite their
    // uses of C.I with substitutes.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (User *U : C.I->users()) {
        auto *UI = dyn_cast<Instruction>((Value *)U);
        if (!UI)
          continue;
        unsigned UseIdx = UI->getOperandIndex(C.I);
        bool Ok;
        if (auto *Phi = dyn_cast<PhiNode>(UI)) {
          const BasicBlock *In = Phi->getIncomingBlock(UseIdx);
          Ok = MI.valueAvailableAt(C.I, In, In->size());
        } else {
          Ok = MI.valueAvailableAt(C.I, UI->getParent(),
                                   MI.positionOf(UI));
        }
        if (Ok)
          continue;
        // Phi users take their replacement at the end of the incoming
        // block (before its terminator) so insertion stays legal.
        BasicBlock *UBB;
        unsigned Pos;
        if (auto *Phi = dyn_cast<PhiNode>(UI)) {
          UBB = Phi->getIncomingBlock(UseIdx);
          Pos = UBB->size() - 1;
        } else {
          UBB = UI->getParent();
          Pos = MI.positionOf(UI);
        }
        Value *Repl = randomDominatingValue(MI, C.I->getType(), UBB, Pos,
                                            RNG, Opts.ValueSource,
                                            /*Avoid=*/C.I);
        UI->setOperand(UseIdx, Repl);
        MI.invalidateBlock(UBB);
        Changed = true;
        break; // user list changed; restart
      }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// §IV-H: changing bitwidths along a use path
//===----------------------------------------------------------------------===//

bool Mutator::mutateBitwidth(MutantInfo &MI) {
  Function &F = MI.getFunction();
  Module &M = *F.getParent();
  TypeContext &TC = M.getTypes();

  // Eligible roots/path nodes: fully bitwidth-polymorphic scalar binary
  // instructions (paper §IV-H).
  auto eligible = [](const Instruction *I) {
    return isa<BinaryInst>(I) && I->getType()->isIntegerTy();
  };

  std::vector<Instruction *> Roots;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      if (eligible(I))
        Roots.push_back(I);
  if (Roots.empty())
    return false;
  Instruction *Root = RNG.pick(Roots);
  unsigned OldW = Root->getType()->getIntegerBitWidth();

  // Pick a new width != old (1..128, biased toward nearby odd widths like
  // the paper's i26 example).
  unsigned NewW;
  do {
    if (RNG.chance(2, 3)) {
      int Delta = (int)RNG.below(17) - 8;
      int W = (int)OldW + Delta;
      NewW = (unsigned)std::max(1, std::min(64, W));
    } else {
      NewW = 1 + (unsigned)RNG.below(64);
    }
  } while (NewW == OldW);
  Type *NewTy = TC.getIntTy(NewW);
  Type *OldTy = Root->getType();

  // Random root-to-leaf path through the use tree (paper Figures 4/5).
  std::vector<Instruction *> Path{Root};
  for (;;) {
    Instruction *Last = Path.back();
    std::vector<Instruction *> NextCands;
    for (User *U : Last->users()) {
      auto *UI = dyn_cast<Instruction>((Value *)U);
      if (UI && eligible(UI) && UI->getType() == OldTy &&
          std::find(Path.begin(), Path.end(), UI) == Path.end())
        NextCands.push_back(UI);
    }
    if (NextCands.empty() || RNG.chance(1, 3))
      break;
    Path.push_back(RNG.pick(NextCands));
  }
  // Note now: the path nodes (including Root) are erased below.
  if (wantNote())
    note(printValueRef(Root), "i" + std::to_string(OldW) + " -> i" +
                                  std::to_string(NewW) + " along a path of " +
                                  std::to_string(Path.size()) +
                                  " instruction(s)");

  bool Narrowing = NewW < OldW;
  auto adaptTo = [&](Value *V, Type *DstTy, BasicBlock *BB,
                     unsigned &Pos) -> Value * {
    unsigned DW = DstTy->getIntegerBitWidth();
    unsigned SW = V->getType()->getIntegerBitWidth();
    if (SW == DW)
      return V;
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return M.getConstants().getInt(
          cast<IntegerType>(DstTy),
          DW < SW ? CI->getValue().trunc(DW)
                  : (RNG.flip() ? CI->getValue().zext(DW)
                                : CI->getValue().sext(DW)));
    CastInst::CastOp Op =
        DW < SW ? CastInst::Trunc
                : (RNG.flip() ? CastInst::ZExt : CastInst::SExt);
    auto *Cast = new CastInst(Op, V, DstTy);
    BB->insert(Pos, std::unique_ptr<Instruction>(Cast));
    ++Pos;
    return Cast;
  };

  // Build the new-width versions along the path.
  std::map<Instruction *, Instruction *> NewVersion;
  for (Instruction *Node : Path) {
    auto *B = cast<BinaryInst>(Node);
    BasicBlock *BB = Node->getParent();
    unsigned Pos = BB->indexOf(Node);
    Value *Ops[2];
    for (unsigned K = 0; K != 2; ++K) {
      Value *Op = B->getOperand(K);
      auto *PrevI = dyn_cast<Instruction>(Op);
      auto It = PrevI ? NewVersion.find(PrevI) : NewVersion.end();
      Ops[K] = It != NewVersion.end()
                   ? (Value *)It->second
                   : adaptTo(Op, NewTy, BB, Pos);
    }
    auto *NB = new BinaryInst(B->getBinOp(), Ops[0], Ops[1]);
    NB->copyFlags(*B);
    BB->insert(Pos, std::unique_ptr<Instruction>(NB));
    NewVersion[Node] = NB;
    MI.invalidateBlock(BB);
  }

  // Re-point users: path nodes keep wiring through new versions; all other
  // users get a cast back to the original width (Figure 5, Listing 13).
  (void)Narrowing;
  for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
    Instruction *Node = *It;
    Instruction *NewI = NewVersion[Node];
    BasicBlock *BB = Node->getParent();
    if (Node->hasUses()) {
      unsigned Pos = BB->indexOf(NewI) + 1;
      Value *Back = adaptTo(NewI, OldTy, BB, Pos);
      Node->replaceAllUsesWith(Back);
    }
    BB->erase(Node);
    MI.invalidateBlock(BB);
  }
  return true;
}
