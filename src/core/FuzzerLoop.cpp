//===- core/FuzzerLoop.cpp - In-process mutate/optimize/verify loop --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FuzzerLoop.h"

#include "analysis/Verifier.h"
#include "core/Observability.h"
#include "opt/BugInjection.h"
#include "parser/Printer.h"
#include "support/AtomicFile.h"
#include "support/SignalGuard.h"
#include "support/Timer.h"
#include "tv/Canonicalize.h"
#include "tv/Counterexample.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace alive;

FuzzerLoop::FuzzerLoop(const FuzzOptions &Opts) : Opts(Opts) {
  // Build and validate the pipeline once. The old per-iteration rebuild
  // checked the result only with assert(): under NDEBUG a bad -passes
  // string silently fuzzed an *empty* pipeline and every verdict was
  // vacuously "Correct". A bad pipeline is now a hard config error in
  // every build mode.
  std::string Err;
  if (!buildPipeline(this->Opts.Passes, PM, Err))
    ConfigError = "invalid pass pipeline '" + this->Opts.Passes + "': " + Err;
  else if (PM.size() == 0)
    ConfigError = "empty pass pipeline '" + this->Opts.Passes + "'";
  PM.setBugContext(&this->Opts.Bugs);
  PM.setTelemetry(&Registry);
  // Profiling rides the flight recorder's span sites: enabling -profile
  // implicitly attaches a recorder (for the live span stack) even when
  // -trace-json was not requested.
  if (this->Opts.TraceEnabled || this->Opts.Profile.Enabled) {
    Trace = std::make_unique<TraceRecorder>(this->Opts.TraceCapacity);
    PM.setTrace(Trace.get());
    if (this->Opts.Profile.Enabled)
      Trace->setLiveStack(true);
  }
  if (this->Opts.Profile.Enabled)
    QueryCosts = std::make_unique<QueryCostTracker>(this->Opts.Profile.TopK);
  if (this->Opts.UseSharedTVCache && this->Opts.TVCacheSize > 0) {
    // Shared mode replaces the private memo. A standalone loop owns its
    // cache; campaign workers get the engine's instance instead.
    if (!this->Opts.SharedCache) {
      OwnedSharedCache = std::make_unique<SharedTVCache>(
          this->Opts.TVCacheSize, this->Opts.TVCacheShards);
      this->Opts.SharedCache = OwnedSharedCache.get();
    }
  } else {
    this->Opts.SharedCache = nullptr;
    if (this->Opts.TVCacheSize > 0)
      TVC = std::make_unique<TVCache>(this->Opts.TVCacheSize);
  }
  // Arm the iteration watchdog when either trigger is configured. One
  // token per loop, shared by the pass manager (one step per
  // pass-on-function), the solver (per conflict/decision) and the
  // interpreter (per 64 instructions) — TV reaches it via TV.Token.
  WatchdogArmed = this->Opts.Survival.StepBudget > 0 ||
                  this->Opts.Survival.WallTimeoutSeconds > 0;
  if (WatchdogArmed) {
    this->Opts.TV.Token = &WatchdogToken;
    PM.setCancellation(&WatchdogToken);
  } else {
    // Never trust a caller-smuggled token: TV cache keys exclude it.
    this->Opts.TV.Token = nullptr;
  }
  HMutate = &Registry.histogram("stage.mutate.seconds");
  HOptimize = &Registry.histogram("stage.optimize.seconds");
  HVerify = &Registry.histogram("stage.verify.seconds");
  HOverhead = &Registry.histogram("stage.overhead.seconds");
  HIteration = &Registry.histogram("iteration.seconds");
}

FuzzerLoop::~FuzzerLoop() = default;

unsigned FuzzerLoop::loadModule(std::unique_ptr<Module> M) {
  Master = std::move(M);
  Preprocessed.clear();
  TraceSpan Preprocess(Trace.get(), "preprocess");

  for (Function *F : Master->functions()) {
    if (F->isDeclaration() || F->isIntrinsic())
      continue;
    if (Opts.OnlyFunctions) {
      // The campaign engine already preprocessed the master module; keep
      // exactly the surviving set (drops were counted there, once).
      if (std::find(Opts.OnlyFunctions->begin(), Opts.OnlyFunctions->end(),
                    F->getName()) == Opts.OnlyFunctions->end())
        continue;
    } else if (Opts.SelfCheckOnLoad) {
      // §III-A: "checks that Alive2 can process each function ... any
      // function that cannot be handled is removed"; "any function whose
      // un-mutated form would cause a translation validation error is
      // dropped: there is no point mutating these."
      TraceSpan Span(Trace.get(), "self-check", /*Seed=*/0,
                     Trace ? Trace->intern(F->getName()) : nullptr);
      // The self-check gets its own budget per function: a pathological
      // input function must not wedge preprocessing either.
      if (WatchdogArmed)
        WatchdogToken.beginIteration(Opts.Survival.StepBudget);
      TVResult Self = checkSelfRefinement(*F, Opts.TV);
      if (Self.Verdict != TVVerdict::Correct) {
        ++Stats.FunctionsDropped;
        continue;
      }
    }
    // §III-A preprocessing: dominance, literal constants, shuffle ranges.
    Preprocessed.push_back(
        {F->getName(), std::make_unique<OriginalFunctionInfo>(*F)});
  }
  return (unsigned)Preprocessed.size();
}

std::vector<std::string> FuzzerLoop::testableFunctions() const {
  std::vector<std::string> Names;
  for (const auto &[Name, _] : Preprocessed)
    Names.push_back(Name);
  return Names;
}

std::unique_ptr<Module>
FuzzerLoop::makeMutant(uint64_t Seed,
                       std::vector<std::string> *AppliedOut) const {
  // The external seed-replay path (§III-E reproducibility) must not
  // disturb campaign statistics — the telemetry registry included.
  uint64_t Ignored = 0;
  return makeMutantImpl(Seed, AppliedOut, Ignored, nullptr);
}

std::unique_ptr<Module> FuzzerLoop::makeMutant(uint64_t Seed,
                                               MutationTrail &TrailOut) const {
  uint64_t Ignored = 0;
  return makeMutantImpl(Seed, nullptr, Ignored, nullptr, &TrailOut);
}

std::unique_ptr<Module>
FuzzerLoop::makeMutantImpl(uint64_t Seed, std::vector<std::string> *AppliedOut,
                           uint64_t &NumApplied, StatRegistry *Reg,
                           MutationTrail *Trail, TraceRecorder *TR,
                           MutationAttribution *Attr) const {
  // §III-B: "Alive-mutate makes a copy of the in-memory IR, and then
  // selects and applies one or more mutation operators on each function."
  // Copy-on-write: only the testable functions (and the defined callees
  // their bodies reach) get cloned bodies — everything else rides along as
  // a declaration stub, so per-iteration clone cost scales with the
  // functions the mutator actually visits.
  std::vector<std::string> Testable;
  Testable.reserve(Preprocessed.size());
  for (const auto &[Name, Info] : Preprocessed)
    Testable.push_back(Name);
  std::unique_ptr<Module> Mutant = cloneModuleSubset(*Master, Testable);
  RandomGenerator RNG(Seed);
  Mutator Mut(RNG, Opts.Mutation, Reg, TR);
  if (Trail)
    Mut.setTrail(Trail);
  if (Schedule)
    Mut.setFamilyWeights(Schedule->FamilyWeights.data());

  for (const auto &[Name, Info] : Preprocessed) {
    // Feedback mode: the energy gate decides per (function, seed) whether
    // this function is mutated at all. It consumes no RNG, so the gate
    // result — and therefore the whole RNG stream downstream of it — is a
    // pure function of (Seed, epoch-frozen schedule), which keeps mutants
    // deterministic across worker counts. With Schedule null (blind mode,
    // and every replay path), the gate always passes and the stream is
    // byte-identical to pre-feedback builds.
    if (!scheduleAllowsMutation(Schedule, Name, Seed)) {
      if (Reg)
        ++Reg->counter("feedback.energy_skips");
      continue;
    }
    Function *F = Mutant->getFunction(Name);
    assert(F && "testable function missing from clone");
    MutantInfo MI(*F, *Info);
    std::vector<MutationKind> Applied = Mut.mutateFunction(MI);
    NumApplied += Applied.size();
    if (AppliedOut)
      for (MutationKind K : Applied)
        AppliedOut->push_back(std::string(Name) + ":" +
                              mutationKindName(K));
    if (Attr && !Applied.empty()) {
      Attr->Functions.push_back(Name);
      for (MutationKind K : Applied)
        Attr->Families.push_back(K);
    }
  }
  return Mutant;
}

namespace {

/// Closes the books on one iteration: whatever wall time the three stage
/// timers did not claim — cloning, mutant validation, printing, saving,
/// bookkeeping — is attributed to the explicit overhead bucket, on every
/// exit path. This is the §V-B story made measurable: the in-process loop
/// wins by amortizing exactly this bucket.
struct IterationAccounting {
  FuzzStats &S;
  Histogram *HOverhead, *HIteration;
  std::atomic<uint64_t> *StageNanos;
  Timer T;
  double Mutate0, Optimize0, Verify0;

  IterationAccounting(FuzzStats &S, Histogram *HOverhead,
                      Histogram *HIteration,
                      std::atomic<uint64_t> *StageNanos)
      : S(S), HOverhead(HOverhead), HIteration(HIteration),
        StageNanos(StageNanos), Mutate0(S.MutateSeconds),
        Optimize0(S.OptimizeSeconds), Verify0(S.VerifySeconds) {}

  ~IterationAccounting() {
    double Total = T.seconds();
    double Staged = (S.MutateSeconds - Mutate0) +
                    (S.OptimizeSeconds - Optimize0) +
                    (S.VerifySeconds - Verify0);
    double Overhead = std::max(0.0, Total - Staged);
    S.OverheadSeconds += Overhead;
    if (HOverhead)
      HOverhead->record(Overhead);
    if (HIteration)
      HIteration->record(Total);
    if (StageNanos)
      StageNanos[3].fetch_add((uint64_t)(Overhead * 1e9),
                              std::memory_order_relaxed);
  }
};

} // namespace

void FuzzerLoop::runIteration(uint64_t Seed) {
  if (!ConfigError.empty())
    return;
  Outcomes.clear();
  // Fresh watchdog budget for the mutate+optimize phase. The serial bump
  // also tells the wall-clock supervisor a new iteration started.
  if (WatchdogArmed)
    WatchdogToken.beginIteration(Opts.Survival.StepBudget);
  IterationAccounting Books(Stats, HOverhead, HIteration, Opts.StageNanos);
  auto StageSink = [&](unsigned I) {
    return Opts.StageNanos ? Opts.StageNanos + I : nullptr;
  };

  // Feedback collection. Rule fires land in RuleWords through the
  // thread-local sink installed around the optimize stage; verdict-class
  // bits accumulate in Cov during verification. The iteration's bitmap is
  // committed to the worker's pending map on every exit path *except*
  // timeouts: a cut-off pipeline or verify loop would make the bitmap
  // depend on elapsed wall time, and feedback state must stay a pure
  // function of the seed schedule.
  const bool FB = Opts.Feedback.Enabled;
  uint64_t RuleWords[NumRuleWords] = {};
  CoverageBitmap Cov;
  MutationAttribution Attr;
  const uint64_t Timeouts0 = Stats.Timeouts;
  auto CommitFeedback = [&] {
    if (!FB || Stats.Timeouts != Timeouts0)
      return;
    Cov.addRuleWords(RuleWords);
    // Per-rule fire counters, counted per iteration (not per fire): the
    // bitmap is deterministic per seed, so these land on the
    // deterministic side and merge worker-count independently.
    for (unsigned R = 0; R != (unsigned)RuleID::NumRules; ++R)
      if (RuleWords[R >> 6] & ((uint64_t)1 << (R & 63)))
        ++Registry.counter(std::string("feedback.rule.") +
                           ruleName((RuleID)R));
    PendingFB.addIteration(Cov, Attr.Functions, Attr.Families);
  };

  uint64_t Applied = 0;
  std::unique_ptr<Module> Mutant;
  {
    ScopedTimer T(HMutate, &Stats.MutateSeconds, StageSink(0));
    TraceSpan Span(Trace.get(), "mutate", Seed);
    Mutant = makeMutantImpl(Seed, nullptr, Applied, &Registry,
                            /*Trail=*/nullptr, Trace.get(),
                            FB ? &Attr : nullptr);
  }
  Stats.MutationsApplied += Applied;
  ++Stats.MutantsGenerated;

  if (Opts.VerifyMutants) {
    std::vector<std::string> Errors;
    if (!verifyModule(*Mutant, Errors)) {
      // Must never happen: the paper's core validity claim.
      ++Stats.InvalidMutants;
      if (Trace)
        Trace->instant("bug.invalid-mutant", Seed);
      ForensicRecord FR;
      FR.K = ForensicRecord::InvalidMutant;
      FR.Seed = Seed;
      FR.Function = "<mutator>";
      FR.VerdictSlug = "invalid-mutant";
      FR.Detail = "INVALID MUTANT: " + Errors.front();
      BugRecord R;
      R.Kind = BugRecord::Crash;
      R.FunctionName = "<mutator>";
      R.MutantSeed = Seed;
      R.Detail = FR.Detail;
      R.MutantIR = printModule(*Mutant);
      R.BundlePath = writeBundle(FR, Mutant.get(), nullptr);
      Outcomes.push_back(std::move(FR));
      Bugs.push_back(std::move(R));
      noteBugEvent(Seed, "invalid-mutant", "<mutator>");
      return;
    }
  }
  if (!Opts.SaveDir.empty() && Opts.SaveAll) {
    TraceSpan Span(Trace.get(), "save", Seed);
    saveMutant(*Mutant, Seed, /*Failing=*/false);
  }

  // Snapshot the mutant before optimization (the TV "source").
  std::unique_ptr<Module> Source = cloneModule(*Mutant);

  // §III-C: optimize with the pipeline built once at construction (the
  // per-iteration rebuild was hot-path waste the paper amortizes away).
  // The pass manager reports which functions actually changed — the
  // verification loop below skips the rest.
  ChangedFunctionSet Changed;
  int CrashSig = 0;
  bool PipelineSurvived = true;
  try {
    ScopedTimer T(HOptimize, &Stats.OptimizeSeconds, StageSink(1));
    TraceSpan Span(Trace.get(), "optimize", Seed);
    // Installs the rule-fire sink for this thread while the pipeline
    // runs (null in blind mode: fireRule stays a single untaken branch).
    RuleCoverageScope Rules(FB ? RuleWords : nullptr);
    if (Opts.Survival.SignalGuard) {
      // In-process containment fallback (no -isolate): a pass raising a
      // fatal signal becomes a recorded crash instead of killing the
      // campaign. The mutant is torn afterwards; only Source (untouched
      // by the pipeline) is used on that path.
      PipelineSurvived = runWithSignalGuard(
          [&] { PM.runToFixpoint(*Mutant, 4, &Changed); }, CrashSig);
    } else {
      PM.runToFixpoint(*Mutant, 4, &Changed);
    }
  } catch (const OptimizerCrash &C) {
    ++Stats.Crashes;
    ++Registry.counter("bug.crash");
    ForensicRecord FR;
    FR.K = ForensicRecord::Crash;
    FR.Seed = Seed;
    FR.VerdictSlug = "crash";
    FR.Detail = C.What;
    FR.IssueId = bugInfo(C.Id).IssueId;
    if (Trace)
      Trace->instant("bug.crash", Seed, Trace->intern(FR.IssueId));
    BugRecord R;
    R.Kind = BugRecord::Crash;
    R.FunctionName = "";
    R.MutantSeed = Seed;
    R.Detail = C.What;
    R.IssueId = FR.IssueId;
    R.MutantIR = printModule(*Source);
    R.BundlePath = writeBundle(FR, Source.get(), nullptr);
    Outcomes.push_back(std::move(FR));
    Bugs.push_back(std::move(R));
    noteBugEvent(Seed, "crash", "");
    if (!Opts.SaveDir.empty()) {
      TraceSpan Span(Trace.get(), "save", Seed);
      saveMutant(*Source, Seed, /*Failing=*/true);
    }
    // A simulated crash is deterministic per seed: the rules that fired
    // before the throw plus the crash verdict class are valid coverage.
    Cov.setVerdict(CoverageBitmap::VB_Crash);
    CommitFeedback();
    return;
  }
  if (!PipelineSurvived) {
    // A fatal signal was contained by the in-process guard. Same
    // accounting as a simulated OptimizerCrash — it IS a crash bug of the
    // compiler-under-test — plus a volatile containment counter so the
    // run report shows the guard earned its keep.
    ++Stats.Crashes;
    ++Registry.counter("bug.crash");
    ++Registry.counter("survive.contained-signals", Volatility::Volatile);
    ForensicRecord FR;
    FR.K = ForensicRecord::Crash;
    FR.Seed = Seed;
    FR.VerdictSlug = "crash";
    FR.Detail = std::string("optimizer raised ") + signalName(CrashSig) +
                " (contained by the in-process signal guard)";
    if (Trace)
      Trace->instant("bug.crash", Seed, Trace->intern(signalName(CrashSig)));
    BugRecord R;
    R.Kind = BugRecord::Crash;
    R.FunctionName = "";
    R.MutantSeed = Seed;
    R.Detail = FR.Detail;
    R.MutantIR = printModule(*Source);
    R.BundlePath = writeBundle(FR, Source.get(), nullptr);
    Outcomes.push_back(std::move(FR));
    Bugs.push_back(std::move(R));
    noteBugEvent(Seed, "contained-signal", "");
    if (!Opts.SaveDir.empty()) {
      TraceSpan Span(Trace.get(), "save", Seed);
      saveMutant(*Source, Seed, /*Failing=*/true);
    }
    Cov.setVerdict(CoverageBitmap::VB_Crash);
    CommitFeedback();
    return;
  }
  if (WatchdogArmed && WatchdogToken.cancelled()) {
    // The optimize phase blew its budget (or the wall-clock backstop
    // fired). The mutant is only partially optimized; verifying it would
    // conflate a cut-off pipeline with the configured one. Record the
    // timeout and move on to the next seed.
    recordTimeout(Seed, "", "optimize", Source.get(), nullptr);
    return;
  }
  ++Stats.Optimized;

  // §III-D: refinement check per testable function — except the ones the
  // pipeline provably left alone, and pairs whose verdict is memoized.
  ScopedTimer VerifyT(HVerify, &Stats.VerifySeconds, StageSink(2));
  for (const auto &[Name, Info] : Preprocessed) {
    Function *Src = Source->getFunction(Name);
    Function *Tgt = Mutant->getFunction(Name);
    if (!Src || !Tgt || Tgt->isDeclaration())
      continue;
    if (Opts.Survival.QuarantineThreshold) {
      auto It = Quarantine.find(Name);
      if (It != Quarantine.end() && Seed < It->second.SkipUntilSeed) {
        // Backed off after repeated timeouts. Volatile-only accounting:
        // quarantine state is per-worker, so these skips (and the
        // Verified checks they elide) are not worker-count independent.
        ++Registry.counter("survive.quarantine.skips", Volatility::Volatile);
        continue;
      }
    }
    if (Opts.SkipUnchanged && !Changed.count(Name)) {
      // No pass touched this function: the target is byte-identical to
      // the source, and a function refines itself (established for the
      // unmutated form by the load-time self-check; for mutants, a
      // deterministic interpreter/encoder can never find a violation
      // between a function and its exact copy). Checking would only burn
      // the time the paper's hot loop is trying to save — or worse, count
      // a spurious freeze-encoding "inconclusive".
      ++Stats.VerifySkipped;
      continue;
    }
    TVResult R;
    bool FromCache = false;
    std::string Key;
    {
      TraceSpan Span(Trace.get(), "verify", Seed,
                     Trace ? Trace->intern(Name) : nullptr);
      // Re-arm the budget per refinement check: whether THIS check trips
      // is then a pure function of (Src, Tgt, Opts), independent of how
      // much the cache elided earlier — which keeps step-budget timeouts
      // deterministic across worker counts.
      if (WatchdogArmed)
        WatchdogToken.beginIteration(Opts.Survival.StepBudget);
      if (Opts.SharedCache) {
        // Shared-cache path: key on the canonicalized pair, and — on a
        // miss — check the canonical pair itself. The verdict is then a
        // pure function of the canonical key, so a hit replays exactly
        // what a fresh computation would produce no matter which worker
        // (or run) computed it first; the canonical rewrites preserve
        // semantics and the argument list, so counterexamples remain
        // valid for the original pair.
        CanonicalPair CP = canonicalizePair(*Src, *Tgt);
        if (CP.M)
          Key = SharedTVCache::makeKey(CP.SrcText, CP.TgtText, Opts.TV);
        if (!Key.empty()) {
          if (Opts.SharedCache->lookup(Key, R)) {
            FromCache = true;
            ++Stats.TVCacheHits;
          } else {
            R = checkRefinement(*CP.Src, *CP.Tgt, Opts.TV, &Registry);
          }
        } else {
          // Uncacheable pair (calls into defined functions): verify the
          // originals, skip canonicalization bookkeeping.
          R = checkRefinement(*Src, *Tgt, Opts.TV, &Registry);
        }
      } else if (TVC) {
        Key = TVCache::makeKey(*Src, *Tgt, Opts.TV);
        if (!Key.empty()) {
          if (const TVResult *Hit = TVC->lookup(Key)) {
            R = *Hit;
            FromCache = true;
            ++Stats.TVCacheHits;
          } else {
            R = checkRefinement(*Src, *Tgt, Opts.TV, &Registry);
          }
        } else {
          // The pair calls into defined functions: the verdict depends on
          // callee bodies outside the key, so it must not be memoized.
          R = checkRefinement(*Src, *Tgt, Opts.TV, &Registry);
        }
      } else {
        R = checkRefinement(*Src, *Tgt, Opts.TV, &Registry);
      }
    }
    if (!FromCache && WatchdogArmed && WatchdogToken.cancelled()) {
      // Cut off mid-check: no verdict was established. Deliberately NOT
      // counted as Verified, a cache miss, or a tv.verdict.* slug — and
      // never cached — so the deterministic cache/verdict invariants
      // survive wall-clock cancellations. Record the timeout and try the
      // remaining functions (each gets a fresh budget).
      recordTimeout(Seed, Name, "verify", Source.get(), Mutant.get());
      continue;
    }
    if (!FromCache && (TVC || Opts.SharedCache)) {
      ++Stats.TVCacheMisses;
      if (!Key.empty()) {
        bool Evicted = Opts.SharedCache ? Opts.SharedCache->insert(Key, R)
                                        : TVC->insert(Key, R);
        if (Evicted)
          ++Stats.TVCacheEvictions;
      }
    }
    ++Stats.Verified;
    // Per-verdict breakdown, counted per *established* verdict: a cache
    // hit replays the identical verdict, so these counters are
    // worker-count independent (unlike the hit/miss split).
    std::string VerdictSlug = tvVerdictReason(R);
    ++Registry.counter("tv.verdict." + VerdictSlug);
    if (FB) {
      switch (R.Verdict) {
      case TVVerdict::Correct:
        Cov.setVerdict(CoverageBitmap::VB_Correct);
        break;
      case TVVerdict::Incorrect:
        Cov.setVerdict(CoverageBitmap::VB_Incorrect);
        break;
      default: // Unsupported folds into the inconclusive class.
        Cov.setVerdict(CoverageBitmap::VB_Inconclusive);
        break;
      }
    }
    std::string Bundle;
    if (R.Verdict != TVVerdict::Correct) {
      // Every non-Correct verdict leaves a forensic record (and, when
      // enabled, a bundle) — inconclusive/unsupported outcomes matter
      // for triage even though only Incorrect is a confirmed bug.
      ForensicRecord FR;
      FR.K = ForensicRecord::Verdict;
      FR.Seed = Seed;
      FR.Function = Name;
      FR.VerdictSlug = VerdictSlug;
      FR.Detail = R.Detail;
      FR.CounterExample = renderCounterexampleTable(*Src, R);
      Bundle = writeBundle(FR, Source.get(), Mutant.get());
      if (R.Verdict == TVVerdict::Incorrect) {
        ++Stats.RefinementFailures;
        ++Registry.counter("bug.miscompile");
        if (Trace)
          Trace->instant("bug.miscompile", Seed, Trace->intern(Name));
        BugRecord B;
        B.Kind = BugRecord::Miscompile;
        B.FunctionName = Name;
        B.MutantSeed = Seed;
        B.Detail = R.Detail;
        B.MutantIR = printFunction(*Src) + "\n; optimized to:\n" +
                     printFunction(*Tgt);
        B.BundlePath = Bundle;
        Bugs.push_back(std::move(B));
        noteBugEvent(Seed, "miscompile", Name);
        if (!Opts.SaveDir.empty()) {
          TraceSpan Span(Trace.get(), "save", Seed);
          saveMutant(*Source, Seed, /*Failing=*/true);
        }
      } else if (R.Verdict == TVVerdict::Inconclusive) {
        ++Stats.Inconclusive;
      }
      Outcomes.push_back(std::move(FR));
    }
    if (QueryCosts) {
      // Cost attribution, recorded per established verdict (cache hits
      // replay their first computation's SolverStats byte-for-byte, so
      // every field below except the wall seconds is a pure function of
      // the key — the foundation of the -j1 == -jN profile block).
      QueryCostSample QS;
      QS.KeyHash = !Key.empty()
                       ? fnv1a64(Key)
                       : fnv1a64(printFunction(*Src) + '\x1f' +
                                 printFunction(*Tgt));
      QS.Function = Name;
      QS.Verdict = VerdictSlug;
      QS.Seed = Seed;
      QS.Symbolic = R.EncodeSeconds > 0;
      QS.BundlePath = Bundle;
      QS.Decisions = R.SolverStats.Decisions;
      QS.Propagations = R.SolverStats.Propagations;
      QS.Conflicts = R.SolverStats.Conflicts;
      QS.LearnedClauses = R.SolverStats.LearnedClauses;
      QS.LearnedLiterals = R.SolverStats.LearnedLiterals;
      QS.Restarts = R.SolverStats.Restarts;
      QS.EncodeSeconds = R.EncodeSeconds;
      QS.SolveSeconds = R.SolveSeconds;
      QueryCosts->record(QS);
    }
  }
  CommitFeedback();
  // VerifyT closes here, then IterationAccounting attributes the rest of
  // this iteration's wall time to the overhead bucket.
}

const FuzzStats &FuzzerLoop::run() {
  if (!ConfigError.empty())
    return Stats;
  if (Opts.Iterations == 0 && Opts.TimeLimitSeconds <= 0) {
    // Neither bound set: the loop would spin forever. Reject instead.
    ConfigError = "unbounded campaign: set Iterations (-n) or "
                  "TimeLimitSeconds (-t)";
    return Stats;
  }
  Timer Total;
  uint64_t Iter = 0;
  // §III-E: loop until the iteration count or the time budget is reached.
  for (;;) {
    if (Opts.Iterations && Iter >= Opts.Iterations)
      break;
    if (Opts.TimeLimitSeconds > 0 && Total.seconds() >= Opts.TimeLimitSeconds)
      break;
    runIteration(Opts.BaseSeed + Iter);
    ++Iter;
    if (Opts.Progress)
      Opts.Progress->fetch_add(1, std::memory_order_relaxed);
  }
  Stats.TotalSeconds = Total.seconds();
  Stats.WorkerSeconds = Stats.TotalSeconds;
  // Attribute the loop's own bookkeeping (bound checks, progress ticks —
  // everything between iterations) to the overhead bucket, so the stage
  // sum meets the loop wall clock exactly.
  double Staged = Stats.MutateSeconds + Stats.OptimizeSeconds +
                  Stats.VerifySeconds + Stats.OverheadSeconds;
  if (Stats.TotalSeconds > Staged)
    Stats.OverheadSeconds += Stats.TotalSeconds - Staged;
  return Stats;
}

std::string FuzzerLoop::writeBundle(const ForensicRecord &R,
                                    const Module *Mutant,
                                    const Module *Optimized,
                                    bool VolatileAccounting) {
  if (Opts.BugBundleDir.empty())
    return "";
  if (BundlesDegraded) {
    // A previous bundle hit ENOSPC: writing more would only fail the same
    // way (or worsen the disk). Skip — the campaign keeps fuzzing, each
    // elided bundle is counted, and the run report flags the degradation.
    ++Registry.counter("survive.degraded.bundle-skips",
                       Volatility::Volatile);
    return "";
  }
  // The trail is regenerated lazily, only on the bug path: recording is
  // RNG-silent, so this replays the exact mutant while the hot loop paid
  // nothing for it.
  MutationTrail Trail;
  uint64_t Ignored = 0;
  makeMutantImpl(R.Seed, nullptr, Ignored, nullptr, &Trail);
  std::vector<std::string> Testable = testableFunctions();
  BundleInputs In{Opts, Testable, *Master, Mutant, Optimized, &Trail, R};
  std::string Error;
  std::string Path = writeBugBundle(Opts.BugBundleDir, In, Error);
  if (Path.empty()) {
    if (VolatileAccounting)
      ++Registry.counter("survive.timeout.bundle-failures",
                         Volatility::Volatile);
    else
      ++Stats.BundleFailures;
    if (BundleError.empty())
      BundleError = Error;
    if (isNoSpaceError(Error)) {
      BundlesDegraded = true;
      ++Registry.counter("survive.degraded.enospc", Volatility::Volatile);
    }
  } else {
    if (VolatileAccounting)
      ++Registry.counter("survive.timeout.bundles", Volatility::Volatile);
    else
      ++Stats.BundlesWritten;
  }
  return Path;
}

void FuzzerLoop::recordTimeout(uint64_t Seed, const std::string &Function,
                               const char *Phase, const Module *Mutant,
                               const Module *Optimized) {
  ++Stats.Timeouts;
  bool ByBudget =
      WatchdogToken.reason() == CancellationToken::Reason::StepBudget;
  // All volatile: the wall-clock backstop makes timeout placement (and
  // with quarantine, even which checks run) machine-dependent.
  ++Registry.counter(std::string("survive.timeout.") + Phase,
                     Volatility::Volatile);
  ++Registry.counter(ByBudget ? "survive.timeout.reason.step-budget"
                              : "survive.timeout.reason.wall-clock",
                     Volatility::Volatile);
  if (Trace)
    Trace->instant("timeout", Seed,
                   Function.empty() ? nullptr : Trace->intern(Function));

  ForensicRecord FR;
  FR.K = ForensicRecord::Timeout;
  FR.Seed = Seed;
  FR.Function = Function;
  FR.VerdictSlug = "timeout";
  std::ostringstream OS;
  if (ByBudget)
    OS << "iteration watchdog: step budget of " << Opts.Survival.StepBudget
       << " exhausted in " << Phase << " phase";
  else
    OS << "iteration watchdog: wall-clock backstop fired in " << Phase
       << " phase";
  if (!Function.empty())
    OS << " while checking '" << Function << "'";
  FR.Detail = OS.str();
  writeBundle(FR, Mutant, Optimized, /*VolatileAccounting=*/true);
  Outcomes.push_back(std::move(FR));

  // Quarantine bookkeeping: repeated timeouts on one function's check
  // back that check off exponentially (2^(strikes-threshold) seeds).
  if (!Function.empty() && Opts.Survival.QuarantineThreshold) {
    QuarantineState &Q = Quarantine[Function];
    ++Q.Strikes;
    if (Q.Strikes >= Opts.Survival.QuarantineThreshold) {
      uint64_t Exp = std::min<uint64_t>(
          Q.Strikes - Opts.Survival.QuarantineThreshold, 16);
      Q.SkipUntilSeed = Seed + (1ull << Exp);
      ++Registry.counter("survive.quarantine.backoffs", Volatility::Volatile);
    }
  }
}

void FuzzerLoop::saveMutant(const Module &M, uint64_t Seed, bool Failing) {
  if (!SaveDirReady) {
    if (!SaveDirError.empty()) {
      // The directory already failed to come up: don't retry the write
      // per mutant, just account for the lost §III-E artifact.
      ++Stats.SaveFailures;
      return;
    }
    // Create the directory on first use. Concurrent workers may race
    // here — create_directories treats an already-existing directory as
    // success.
    std::error_code EC;
    std::filesystem::create_directories(Opts.SaveDir, EC);
    if (EC) {
      SaveDirError = "cannot create save directory '" + Opts.SaveDir +
                     "': " + EC.message();
      ++Stats.SaveFailures;
      return;
    }
    SaveDirReady = true;
  }
  std::string Path = Opts.SaveDir + "/mutant-" + std::to_string(Seed) +
                     (Failing ? "-failing" : "") + ".ll";
  std::ofstream Out(Path);
  if (Out) {
    Out << "; mutant seed " << Seed << "\n" << printModule(M);
    Out.close();
  }
  if (!Out) {
    // The §III-E reproducibility artifact was lost: count it so the
    // campaign report shows the loss instead of dropping it silently.
    ++Stats.SaveFailures;
    return;
  }
  ++Stats.MutantsSaved;
}

void FuzzerLoop::noteBugEvent(uint64_t Seed, const char *Slug,
                              const std::string &Function) {
  if (!Opts.Events)
    return;
  CampaignEvent E;
  E.K = CampaignEvent::Kind::BugFound;
  E.Seed = Seed;
  E.Shard = Opts.WorkerIndex;
  E.Nanos = TraceRecorder::now();
  E.Detail = Function.empty() ? std::string(Slug) : Slug + (" " + Function);
  Opts.Events->push(std::move(E));
}
