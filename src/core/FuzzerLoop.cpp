//===- core/FuzzerLoop.cpp - In-process mutate/optimize/verify loop --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FuzzerLoop.h"

#include "analysis/Verifier.h"
#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "parser/Printer.h"
#include "support/Timer.h"

#include <fstream>

using namespace alive;

FuzzerLoop::FuzzerLoop(const FuzzOptions &Opts) : Opts(Opts) {}
FuzzerLoop::~FuzzerLoop() = default;

unsigned FuzzerLoop::loadModule(std::unique_ptr<Module> M) {
  Master = std::move(M);
  Preprocessed.clear();

  for (Function *F : Master->functions()) {
    if (F->isDeclaration() || F->isIntrinsic())
      continue;
    // §III-A: "checks that Alive2 can process each function ... any
    // function that cannot be handled is removed"; "any function whose
    // un-mutated form would cause a translation validation error is
    // dropped: there is no point mutating these."
    if (Opts.SelfCheckOnLoad) {
      TVResult Self = checkSelfRefinement(*F, Opts.TV);
      if (Self.Verdict != TVVerdict::Correct) {
        ++Stats.FunctionsDropped;
        continue;
      }
    }
    // §III-A preprocessing: dominance, literal constants, shuffle ranges.
    Preprocessed.push_back(
        {F->getName(), std::make_unique<OriginalFunctionInfo>(*F)});
  }
  return (unsigned)Preprocessed.size();
}

std::vector<std::string> FuzzerLoop::testableFunctions() const {
  std::vector<std::string> Names;
  for (const auto &[Name, _] : Preprocessed)
    Names.push_back(Name);
  return Names;
}

std::unique_ptr<Module>
FuzzerLoop::makeMutant(uint64_t Seed, std::vector<std::string> *AppliedOut) {
  // §III-B: "Alive-mutate makes a copy of the in-memory IR, and then
  // selects and applies one or more mutation operators on each function."
  std::unique_ptr<Module> Mutant = cloneModule(*Master);
  RandomGenerator RNG(Seed);
  Mutator Mut(RNG, Opts.Mutation);

  for (const auto &[Name, Info] : Preprocessed) {
    Function *F = Mutant->getFunction(Name);
    assert(F && "testable function missing from clone");
    MutantInfo MI(*F, *Info);
    std::vector<MutationKind> Applied = Mut.mutateFunction(MI);
    Stats.MutationsApplied += Applied.size();
    if (AppliedOut)
      for (MutationKind K : Applied)
        AppliedOut->push_back(std::string(Name) + ":" +
                              mutationKindName(K));
  }
  return Mutant;
}

void FuzzerLoop::runIteration(uint64_t Seed) {
  Timer Phase;

  std::unique_ptr<Module> Mutant = makeMutant(Seed);
  ++Stats.MutantsGenerated;
  Stats.MutateSeconds += Phase.seconds();

  if (Opts.VerifyMutants) {
    std::vector<std::string> Errors;
    if (!verifyModule(*Mutant, Errors)) {
      // Must never happen: the paper's core validity claim.
      ++Stats.InvalidMutants;
      BugRecord R;
      R.Kind = BugRecord::Crash;
      R.FunctionName = "<mutator>";
      R.MutantSeed = Seed;
      R.Detail = "INVALID MUTANT: " + Errors.front();
      R.MutantIR = printModule(*Mutant);
      Bugs.push_back(R);
      return;
    }
  }
  if (!Opts.SaveDir.empty() && Opts.SaveAll)
    saveMutant(*Mutant, Seed, /*Failing=*/false);

  // Snapshot the mutant before optimization (the TV "source").
  std::unique_ptr<Module> Source = cloneModule(*Mutant);

  // §III-C: optimize. Simulated optimizer aborts surface as crash bugs.
  Phase.reset();
  PassManager PM;
  std::string Err;
  bool PipelineOk = buildPipeline(Opts.Passes, PM, Err);
  assert(PipelineOk && "invalid pipeline");
  (void)PipelineOk;
  try {
    PM.runToFixpoint(*Mutant);
  } catch (const OptimizerCrash &C) {
    Stats.OptimizeSeconds += Phase.seconds();
    ++Stats.Crashes;
    BugRecord R;
    R.Kind = BugRecord::Crash;
    R.FunctionName = "";
    R.MutantSeed = Seed;
    R.Detail = C.What;
    R.IssueId = bugInfo(C.Id).IssueId;
    R.MutantIR = printModule(*Source);
    Bugs.push_back(R);
    if (!Opts.SaveDir.empty())
      saveMutant(*Source, Seed, /*Failing=*/true);
    return;
  }
  ++Stats.Optimized;
  Stats.OptimizeSeconds += Phase.seconds();

  // §III-D: refinement check per testable function.
  Phase.reset();
  for (const auto &[Name, Info] : Preprocessed) {
    Function *Src = Source->getFunction(Name);
    Function *Tgt = Mutant->getFunction(Name);
    if (!Src || !Tgt || Tgt->isDeclaration())
      continue;
    TVResult R = checkRefinement(*Src, *Tgt, Opts.TV);
    ++Stats.Verified;
    if (R.Verdict == TVVerdict::Incorrect) {
      ++Stats.RefinementFailures;
      BugRecord B;
      B.Kind = BugRecord::Miscompile;
      B.FunctionName = Name;
      B.MutantSeed = Seed;
      B.Detail = R.Detail;
      B.MutantIR = printFunction(*Src) + "\n; optimized to:\n" +
                   printFunction(*Tgt);
      Bugs.push_back(B);
      if (!Opts.SaveDir.empty())
        saveMutant(*Source, Seed, /*Failing=*/true);
    } else if (R.Verdict == TVVerdict::Inconclusive) {
      ++Stats.Inconclusive;
    }
  }
  Stats.VerifySeconds += Phase.seconds();
}

const FuzzStats &FuzzerLoop::run() {
  Timer Total;
  uint64_t Iter = 0;
  // §III-E: loop until the iteration count or the time budget is reached.
  for (;;) {
    if (Opts.Iterations && Iter >= Opts.Iterations)
      break;
    if (Opts.TimeLimitSeconds > 0 && Total.seconds() >= Opts.TimeLimitSeconds)
      break;
    runIteration(Opts.BaseSeed + Iter);
    ++Iter;
  }
  Stats.TotalSeconds = Total.seconds();
  return Stats;
}

void FuzzerLoop::saveMutant(const Module &M, uint64_t Seed, bool Failing) {
  std::string Path = Opts.SaveDir + "/mutant-" + std::to_string(Seed) +
                     (Failing ? "-failing" : "") + ".ll";
  std::ofstream Out(Path);
  if (Out)
    Out << "; mutant seed " << Seed << "\n" << printModule(M);
}
