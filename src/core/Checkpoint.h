//===- core/Checkpoint.h - Campaign checkpoint/resume ----------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Periodic campaign checkpoints: enough state to kill a campaign at any
/// iteration boundary and resume it such that the completed run's
/// *deterministic* report section is byte-identical to an uninterrupted
/// run. That works because the loop is seed-deterministic — mutant i is a
/// pure function of BaseSeed + i — so the only "RNG state" a worker needs
/// is its next seed. Everything else in a checkpoint is accumulated
/// output: FuzzStats, the bug list, and the registry counters.
///
/// Layout: <dir>/meta.json (campaign identity: pipeline, seed range, job
/// count, module hash — resume refuses a checkpoint taken under different
/// inputs) plus one <dir>/shard-<i>.json per worker. Writes are atomic
/// (tmp file + rename), so a kill mid-checkpoint leaves the previous
/// consistent snapshot in place.
///
/// Doubles (stage seconds) round-trip through JSON as their raw IEEE-754
/// bit patterns in uint64 fields — the repo's integer-exact JSON parser
/// then restores them bit-for-bit, which decimal formatting would not.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_CHECKPOINT_H
#define CORE_CHECKPOINT_H

#include "core/FuzzerLoop.h"

#include <string>
#include <vector>

namespace alive {

/// Bump when the checkpoint layout changes incompatibly; resume refuses
/// other versions rather than guessing. v2 added the feedback pins to the
/// meta and the <dir>/feedback.json state file.
constexpr unsigned CheckpointSchemaVersion = 2;

/// Campaign identity, pinned at checkpoint time and verified at resume:
/// resuming under a different module, pipeline, seed range or job count
/// would silently produce a report that matches neither run.
struct CheckpointMeta {
  std::string Passes;
  uint64_t Iterations = 0;
  uint64_t BaseSeed = 0;
  unsigned Jobs = 0;
  unsigned MaxMutationsPerFunction = 0;
  bool InjectBugs = false;
  /// Feedback-mode identity: the schedule (and therefore every mutant
  /// after the first epoch) depends on both, so resuming under a
  /// different feedback configuration is a mismatch.
  bool FeedbackOn = false;
  unsigned EpochLength = 0;
  /// FNV-1a over the preprocessed master module's printed text.
  uint64_t ModuleHash = 0;
};

/// One worker's resumable state.
struct WorkerCheckpoint {
  unsigned Index = 0;
  /// Static seed-offset partition [Lo, Hi) this worker owns.
  uint64_t Lo = 0, Hi = 0;
  /// Next seed offset to run (== Hi when the worker finished).
  uint64_t Next = 0;
  FuzzStats Stats;
  std::vector<BugRecord> Bugs;
  /// Registry counters with their volatility, name-ordered.
  struct Counter {
    std::string Name;
    uint64_t Value = 0;
    bool IsVolatile = false;
  };
  std::vector<Counter> Counters;
};

/// FNV-1a 64-bit over \p Text (the resume-coherence module fingerprint).
uint64_t hashModuleText(const std::string &Text);

/// Writes meta.json under \p Dir (created if missing). Atomic.
bool writeCheckpointMeta(const std::string &Dir, const CheckpointMeta &M,
                         std::string &Error);

/// Reads and validates meta.json. \returns false with \p Error set when
/// missing, malformed, or a different schema version.
bool readCheckpointMeta(const std::string &Dir, CheckpointMeta &M,
                        std::string &Error);

/// Compares a resume-time meta against the stored one; fills \p Error
/// with the first mismatch ("checkpoint was taken with -j 4, resuming
/// with -j 2") when they differ.
bool checkpointMetaMatches(const CheckpointMeta &Stored,
                           const CheckpointMeta &Current, std::string &Error);

/// Writes shard-<Index>.json under \p Dir. Atomic.
bool writeWorkerCheckpoint(const std::string &Dir, const WorkerCheckpoint &W,
                           std::string &Error);

/// Reads shard-<Index>.json. \returns false with \p Error set on any
/// problem (a missing shard file is an error: resume needs all of them).
bool readWorkerCheckpoint(const std::string &Dir, unsigned Index,
                          WorkerCheckpoint &W, std::string &Error);

/// Captures a worker loop's current state into a WorkerCheckpoint.
WorkerCheckpoint snapshotWorker(unsigned Index, uint64_t Lo, uint64_t Hi,
                                uint64_t Next, const FuzzerLoop &Loop);

/// Restores a snapshot into a freshly-constructed worker loop (stats,
/// bugs, registry counters).
void restoreWorker(const WorkerCheckpoint &W, FuzzerLoop &Loop);

/// Feedback-mode campaign state, checkpointed only at epoch boundaries
/// (worker pending maps are empty there, so the global map plus the
/// schedule and the next epoch's first offset are the complete state).
struct FeedbackCheckpoint {
  FeedbackMap Global;
  ScheduleState Schedule;
  /// First seed offset of the next epoch (== Iterations when finished).
  uint64_t NextOffset = 0;
};

/// Writes <dir>/feedback.json. Atomic.
bool writeFeedbackCheckpoint(const std::string &Dir,
                             const FeedbackCheckpoint &F, std::string &Error);

/// Reads <dir>/feedback.json. \returns false with \p Error set when
/// missing or malformed — a feedback-mode resume needs it.
bool readFeedbackCheckpoint(const std::string &Dir, FeedbackCheckpoint &F,
                            std::string &Error);

} // namespace alive

#endif // CORE_CHECKPOINT_H
