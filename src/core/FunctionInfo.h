//===- core/FunctionInfo.h - Two-level mutation info cache -----*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §III-B two-level data structure. Preprocessing computes
/// immutable facts about each ORIGINAL function once (block-level dominance
/// matrix, literal-constant inventory, shufflable ranges) — "these steps
/// are done early to avoid slowing down the main mutation loop". Every
/// mutant then carries a thin overlay with mutant-specific state
/// (instruction positions in blocks it has dirtied); queries hit the
/// overlay first and fall back to the immutable original information.
///
/// The mutations never change the CFG (blocks or edges), which is what
/// keeps the original block-dominance level valid for every mutant.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FUNCTIONINFO_H
#define CORE_FUNCTIONINFO_H

#include "analysis/ShuffleRanges.h"
#include "ir/Module.h"
#include "support/APInt.h"

#include <map>
#include <set>
#include <vector>

namespace alive {

/// Immutable preprocessing results for one original function (level 2).
class OriginalFunctionInfo {
public:
  explicit OriginalFunctionInfo(const Function &F);

  unsigned getNumBlocks() const { return NumBlocks; }

  /// Block-level dominance by block index (reflexive).
  bool blockDominates(unsigned A, unsigned B) const {
    return DomMatrix[A * NumBlocks + B];
  }
  bool blockReachable(unsigned B) const { return Reachable[B]; }

  /// Literal integer constants found in the code, "that will be randomly
  /// changed later, during mutation" (paper §III-A).
  const std::vector<APInt> &literalConstants() const { return Literals; }

  /// Precomputed maximal shufflable ranges (paper §IV-D).
  const std::vector<ShuffleRange> &shuffleRanges() const { return Ranges; }

private:
  unsigned NumBlocks;
  std::vector<bool> DomMatrix;
  std::vector<bool> Reachable;
  std::vector<APInt> Literals;
  std::vector<ShuffleRange> Ranges;
};

/// Mutant-specific overlay (level 1). Owns nothing; wraps the mutant
/// function and the original info.
class MutantInfo {
public:
  MutantInfo(Function &Mutant, const OriginalFunctionInfo &Base)
      : Mutant(Mutant), Base(Base) {}

  Function &getFunction() { return Mutant; }
  const OriginalFunctionInfo &base() const { return Base; }

  /// Must be called whenever a mutation changes instruction positions in
  /// \p BB; invalidates the overlay's position cache for that block.
  void invalidateBlock(const BasicBlock *BB) {
    Positions.erase(BB);
    MutantRanges.erase(BB);
    Dirty.insert(BB);
  }

  /// Current position of \p I in its block (overlay-cached).
  unsigned positionOf(const Instruction *I);

  /// True when a use of \p Def inserted at (\p BB, \p InstIdx) would
  /// satisfy SSA dominance. Combines the overlay's instruction positions
  /// with the immutable block-dominance matrix.
  bool valueAvailableAt(const Value *Def, const BasicBlock *BB,
                        unsigned InstIdx);

  /// All values of type \p Ty available at (\p BB, \p InstIdx): arguments
  /// and dominating instruction results.
  std::vector<Value *> availableValues(Type *Ty, const BasicBlock *BB,
                                       unsigned InstIdx);

  /// Shufflable ranges for \p BB: the precomputed original ranges when the
  /// block is untouched, else recomputed (and cached) for the mutant.
  std::vector<ShuffleRange> shuffleRangesFor(const BasicBlock *BB);

private:
  const std::map<const Instruction *, unsigned> &
  positionsFor(const BasicBlock *BB);

  Function &Mutant;
  const OriginalFunctionInfo &Base;
  std::map<const BasicBlock *, std::map<const Instruction *, unsigned>>
      Positions;
  std::map<const BasicBlock *, std::vector<ShuffleRange>> MutantRanges;
  std::set<const BasicBlock *> Dirty;
};

} // namespace alive

#endif // CORE_FUNCTIONINFO_H
