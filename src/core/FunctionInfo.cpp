//===- core/FunctionInfo.cpp - Two-level mutation info cache ---------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FunctionInfo.h"

#include "analysis/DominatorTree.h"

using namespace alive;

OriginalFunctionInfo::OriginalFunctionInfo(const Function &F)
    : NumBlocks(F.getNumBlocks()) {
  DominatorTree DT(F);
  DomMatrix.assign((size_t)NumBlocks * NumBlocks, false);
  Reachable.assign(NumBlocks, false);
  for (unsigned A = 0; A != NumBlocks; ++A) {
    Reachable[A] = DT.isReachable(F.getBlock(A));
    for (unsigned B = 0; B != NumBlocks; ++B)
      DomMatrix[(size_t)A * NumBlocks + B] =
          DT.dominates(F.getBlock(A), F.getBlock(B));
  }

  // Literal-constant inventory.
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      for (const Value *Op : I->operands())
        if (const auto *CI = dyn_cast<ConstantInt>(Op))
          Literals.push_back(CI->getValue());

  Ranges = computeShuffleRanges(F);
}

const std::map<const Instruction *, unsigned> &
MutantInfo::positionsFor(const BasicBlock *BB) {
  auto It = Positions.find(BB);
  if (It != Positions.end())
    return It->second;
  std::map<const Instruction *, unsigned> Map;
  for (unsigned I = 0; I != BB->size(); ++I)
    Map[BB->getInst(I)] = I;
  return Positions.emplace(BB, std::move(Map)).first->second;
}

unsigned MutantInfo::positionOf(const Instruction *I) {
  const auto &Map = positionsFor(I->getParent());
  auto It = Map.find(I);
  assert(It != Map.end() && "stale position cache");
  return It->second;
}

bool MutantInfo::valueAvailableAt(const Value *Def, const BasicBlock *BB,
                                  unsigned InstIdx) {
  if (isa<Constant>(Def) || isa<Argument>(Def))
    return true;
  const auto *I = dyn_cast<Instruction>(Def);
  if (!I)
    return false;
  const BasicBlock *DefBB = I->getParent();
  if (DefBB == BB) {
    unsigned DefIdx = positionOf(I);
    if (isa<PhiNode>(I)) {
      if (InstIdx >= BB->size())
        return true;
      return InstIdx > DefIdx || !isa<PhiNode>(BB->getInst(InstIdx));
    }
    return DefIdx < InstIdx;
  }
  // Cross-block availability: the immutable original dominance matrix
  // (level 2) — valid because mutations never alter the CFG.
  const Function &F = *BB->getParent();
  unsigned A = F.indexOfBlock(DefBB), B = F.indexOfBlock(BB);
  return Base.blockReachable(A) && Base.blockReachable(B) &&
         Base.blockDominates(A, B);
}

std::vector<Value *> MutantInfo::availableValues(Type *Ty,
                                                 const BasicBlock *BB,
                                                 unsigned InstIdx) {
  std::vector<Value *> Out;
  for (unsigned I = 0; I != Mutant.getNumArgs(); ++I)
    if (Mutant.getArg(I)->getType() == Ty)
      Out.push_back(Mutant.getArg(I));
  for (BasicBlock *Cand : Mutant.blocks())
    for (Instruction *I : Cand->insts())
      if (I->getType() == Ty && valueAvailableAt(I, BB, InstIdx))
        Out.push_back(I);
  return Out;
}

std::vector<ShuffleRange> MutantInfo::shuffleRangesFor(const BasicBlock *BB) {
  unsigned BlockIdx = Mutant.indexOfBlock(BB);
  // Untouched block: serve the precomputed level-2 ranges.
  if (!Dirty.count(BB)) {
    std::vector<ShuffleRange> Out;
    for (const ShuffleRange &R : Base.shuffleRanges())
      if (R.BlockIdx == BlockIdx)
        Out.push_back(R);
    return Out;
  }
  // Dirty block: recompute (and cache until next invalidation).
  auto It = MutantRanges.find(BB);
  if (It != MutantRanges.end())
    return It->second;
  std::vector<ShuffleRange> Out;
  unsigned N = BB->size();
  unsigned Start = 0;
  while (Start < N) {
    const Instruction *First = BB->getInst(Start);
    if (isa<PhiNode>(First) || First->isTerminator()) {
      ++Start;
      continue;
    }
    unsigned End = Start + 1;
    while (End < N && isShufflable(*BB, Start, End + 1))
      ++End;
    if (End - Start >= 2)
      Out.push_back({BlockIdx, Start, End});
    Start = End;
  }
  MutantRanges[BB] = Out;
  return Out;
}
