//===- core/ValueSource.cpp - Random dominating value primitive ------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ValueSource.h"

using namespace alive;

Constant *alive::randomConstant(Module &M, Type *Ty, RandomGenerator &RNG,
                                const ValueSourceOptions &Opts) {
  ConstantPoolCtx &CP = M.getConstants();
  if (RNG.chance(Opts.PoisonPercent, 100))
    return RNG.flip() ? (Constant *)CP.getPoison(Ty)
                      : (Constant *)CP.getUndef(Ty);
  if (Ty->isPointerTy())
    return CP.getNullPtr(Ty);
  if (auto *VT = dyn_cast<VectorType>(Ty)) {
    std::vector<Constant *> Elems;
    for (unsigned I = 0; I != VT->getNumElements(); ++I) {
      // Individual lanes can be poison/undef — real vector constants in
      // LLVM unit tests frequently carry poison lanes.
      if (RNG.chance(Opts.PoisonPercent, 100))
        Elems.push_back(RNG.flip()
                            ? (Constant *)CP.getPoison(VT->getElementType())
                            : (Constant *)CP.getUndef(VT->getElementType()));
      else
        Elems.push_back(CP.getInt(
            cast<IntegerType>(VT->getElementType()),
            RNG.nextAPInt(VT->getElementType()->getIntegerBitWidth())));
    }
    return CP.getVector(VT, Elems);
  }
  auto *IT = cast<IntegerType>(Ty);
  return CP.getInt(IT, RNG.nextAPInt(IT->getBitWidth()));
}

namespace {

/// Creates a fresh random instruction producing \p Ty at the program point
/// and returns it; operands come from the primitive recursively.
Value *freshInstruction(MutantInfo &MI, Type *Ty, BasicBlock *BB,
                        unsigned &InstIdx, RandomGenerator &RNG,
                        const ValueSourceOptions &Opts, unsigned Depth) {
  Module &M = *MI.getFunction().getParent();
  auto operand = [&](Type *OpTy) {
    return randomDominatingValue(MI, OpTy, BB, InstIdx, RNG, Opts, nullptr,
                                 Depth + 1);
  };

  Instruction *NewI = nullptr;
  if (Ty->isBoolTy() && RNG.chance(1, 2)) {
    // icmp over a random integer type.
    unsigned W = 1u << RNG.below(7); // 1..64
    Type *OpTy = M.getTypes().getIntTy(W);
    Value *L = operand(OpTy);
    Value *R = operand(OpTy);
    NewI = new ICmpInst((ICmpInst::Predicate)RNG.below(ICmpInst::NumPreds),
                        L, R, M.getTypes().getIntTy(1));
  } else if (RNG.chance(1, 4)) {
    // Intrinsic call (paper Listing 14 generated an smin call).
    static const IntrinsicID Choices[] = {
        IntrinsicID::SMin,    IntrinsicID::SMax,    IntrinsicID::UMin,
        IntrinsicID::UMax,    IntrinsicID::UAddSat, IntrinsicID::USubSat,
        IntrinsicID::SAddSat, IntrinsicID::SSubSat};
    IntrinsicID ID = Choices[RNG.below(std::size(Choices))];
    Function *Callee = M.getOrInsertIntrinsic(ID, Ty);
    Value *A = operand(Ty);
    Value *B = operand(Ty);
    NewI = new CallInst(Callee, {A, B}, Ty);
  } else {
    // Random binary operation, with random flags where legal.
    auto Op = (BinaryInst::BinOp)RNG.below(BinaryInst::NumBinOps);
    Value *L = operand(Ty);
    Value *R = operand(Ty);
    auto *Bin = new BinaryInst(Op, L, R);
    if (BinaryInst::supportsNUWNSW(Op)) {
      Bin->setNUW(RNG.flip());
      Bin->setNSW(RNG.flip());
    }
    if (BinaryInst::supportsExact(Op))
      Bin->setExact(RNG.flip());
    NewI = Bin;
  }

  BB->insert(InstIdx, std::unique_ptr<Instruction>(NewI));
  ++InstIdx;
  MI.invalidateBlock(BB);
  return NewI;
}

} // namespace

Value *alive::randomDominatingValue(MutantInfo &MI, Type *Ty, BasicBlock *BB,
                                    unsigned &InstIdx, RandomGenerator &RNG,
                                    const ValueSourceOptions &Opts,
                                    const Value *Avoid, unsigned Depth) {
  Module &M = *MI.getFunction().getParent();
  bool CanRecurse = Depth < Opts.MaxDepth && Ty->isIntegerTy();

  // Weighted choice: existing value / constant / fresh parameter / fresh
  // instruction.
  unsigned Roll = (unsigned)RNG.below(100);

  if (Roll < 50) {
    std::vector<Value *> Candidates = MI.availableValues(Ty, BB, InstIdx);
    if (Avoid)
      Candidates.erase(
          std::remove(Candidates.begin(), Candidates.end(), Avoid),
          Candidates.end());
    if (!Candidates.empty())
      return RNG.pick(Candidates);
    // Fall through to other sources.
  }
  if (Roll < 75 || (!CanRecurse && !Opts.AllowFreshParameters))
    return randomConstant(M, Ty, RNG, Opts);
  if (Roll < 85 && Opts.AllowFreshParameters) {
    // Fresh function parameter (paper Listing 11).
    return MI.getFunction().addArgument(Ty, "");
  }
  if (CanRecurse)
    return freshInstruction(MI, Ty, BB, InstIdx, RNG, Opts, Depth);
  return randomConstant(M, Ty, RNG, Opts);
}
