//===- core/Feedback.h - Rule-coverage feedback & scheduling ---*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback-directed scheduling subsystem: per-iteration rule-coverage
/// bitmaps (which rewrite rules fired during optimize, plus the TV verdict
/// class), accumulated into per-function / per-family / global coverage
/// maps, and an AFL-style schedule derived from them.
///
/// Determinism contract (the whole design hangs on it):
///   - an iteration's bitmap is a pure function of its seed — rule firing
///     is seed-pure and wall-clock timeouts are deliberately EXCLUDED from
///     the verdict bits (a timed-out iteration contributes nothing);
///   - workers accumulate into private FeedbackMaps and the engine merges
///     them in worker-index order at epoch boundaries; the merge is a
///     bitwise OR — commutative and associative — so any worker partition
///     yields the same cumulative map and -j1 == -jN holds;
///   - the schedule (per-function energy, per-family weights) is
///     recomputed at each epoch boundary as a pure function of the
///     previous and the newly merged cumulative maps, and is frozen for
///     the whole next epoch. No per-iteration scheduling decision ever
///     depends on worker-local state.
///
/// Energy/weight formulas (documented in DESIGN.md):
///   - energy E_f in [1, 8], initially 8. An epoch where f's cumulative
///     bitmap gains bits resets E_f = 8 and the dry-streak to 0; a dry
///     epoch increments the streak and sets E_f = max(1, 8 >> streak).
///     Gating consumes no RNG: f is mutated at seed s iff
///     (splitmix64(s ^ fnv1a(f)) & 7) < E_f, so E_f == 8 always mutates.
///   - family weight w_k in [1, 16], initially 8: doubled (capped) after
///     an epoch where the family's cumulative bitmap gained bits, halved
///     (floored) otherwise. The weighted pick replaces the uniform pick
///     inside Mutator only when feedback is on.
///
//===----------------------------------------------------------------------===//

#ifndef CORE_FEEDBACK_H
#define CORE_FEEDBACK_H

#include "core/Mutator.h"
#include "opt/RuleIDs.h"

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace alive {

struct JSONValue;

/// Campaign-level feedback configuration (part of FuzzOptions).
struct FeedbackOptions {
  /// Master switch: off preserves the blind schedule bit-for-bit.
  bool Enabled = false;
  /// Global seed offsets per epoch; the schedule is frozen within one.
  unsigned EpochLength = 256;
};

/// One iteration's (or one accumulated set's) coverage: a bit per rewrite
/// rule plus a bit per TV verdict class.
struct CoverageBitmap {
  /// Verdict-class bits appended after the rule bits. Wall-clock timeouts
  /// are deliberately not represented — see the determinism contract.
  enum VerdictBit {
    VB_Correct = 0,
    VB_Incorrect,
    VB_Inconclusive,
    VB_Crash,
    NumVerdictBits
  };
  static constexpr unsigned NumBits =
      (unsigned)RuleID::NumRules + (unsigned)NumVerdictBits;
  static constexpr unsigned NumWords = (NumBits + 63) / 64;

  uint64_t Words[NumWords] = {};

  /// ORs in the raw rule words a RuleCoverageScope collected.
  void addRuleWords(const uint64_t *RW) {
    for (unsigned I = 0; I != NumRuleWords && I != NumWords; ++I)
      Words[I] |= RW[I];
  }
  void setVerdict(VerdictBit V) { set((unsigned)RuleID::NumRules + V); }
  void set(unsigned Bit) { Words[Bit >> 6] |= (uint64_t)1 << (Bit & 63); }
  bool test(unsigned Bit) const {
    return (Words[Bit >> 6] >> (Bit & 63)) & 1;
  }

  void orWith(const CoverageBitmap &O) {
    for (unsigned I = 0; I != NumWords; ++I)
      Words[I] |= O.Words[I];
  }
  /// Bits set in this bitmap that \p Base lacks.
  unsigned newBits(const CoverageBitmap &Base) const;
  unsigned popcount() const;
  bool empty() const;
  bool subsetOf(const CoverageBitmap &O) const;
  bool operator==(const CoverageBitmap &O) const;
};

/// Accumulated coverage, attributable three ways: per mutated function,
/// per mutation family, and globally. Merging is a bitwise OR on every
/// slot — commutative and associative.
struct FeedbackMap {
  std::map<std::string, CoverageBitmap> PerFunction;
  std::array<CoverageBitmap, (size_t)MutationKind::NumKinds> PerFamily{};
  CoverageBitmap Global;

  /// Credits one iteration's bitmap to the functions it mutated and the
  /// families that fired.
  void addIteration(const CoverageBitmap &Cov,
                    const std::vector<std::string> &Functions,
                    const std::vector<MutationKind> &Families);
  void merge(const FeedbackMap &O);
  bool empty() const;
  void clear();

  /// Serializes as a JSON object (stable layout: name-ordered function
  /// keys, family keys in enum order, words as exact decimal integers).
  void writeJSON(std::ostream &OS, const std::string &Indent = "") const;
  /// Inverse of writeJSON. \returns false with \p Error set on malformed
  /// input (unknown keys are ignored for forward compatibility).
  static bool readJSON(const JSONValue &V, FeedbackMap &Out,
                       std::string &Error);

  bool operator==(const FeedbackMap &O) const;
};

/// The schedule derived from merged coverage at epoch boundaries.
struct ScheduleState {
  static constexpr uint32_t MaxEnergy = 8;
  static constexpr uint32_t MinEnergy = 1;
  static constexpr uint32_t MaxWeight = 16;
  static constexpr uint32_t MinWeight = 1;
  static constexpr uint32_t InitWeight = 8;

  /// Per-function energy (absent key => MaxEnergy) and dry-epoch streak
  /// (absent => 0). Both serialized: the streak is not derivable from the
  /// coverage maps alone.
  std::map<std::string, uint32_t> Energy;
  std::map<std::string, uint32_t> Dry;
  std::array<uint32_t, (size_t)MutationKind::NumKinds> FamilyWeights;

  ScheduleState() { FamilyWeights.fill(InitWeight); }

  uint32_t energyFor(const std::string &Fn) const {
    auto It = Energy.find(Fn);
    return It == Energy.end() ? MaxEnergy : It->second;
  }

  /// Applies one epoch transition: \p Prev is the cumulative map before
  /// the epoch's merge, \p Merged the one after. Pure function of its
  /// arguments (plus the streak state), so every worker count computes
  /// the same schedule. \returns the number of globally novel bits.
  uint64_t update(const FeedbackMap &Prev, const FeedbackMap &Merged);

  void writeJSON(std::ostream &OS, const std::string &Indent = "") const;
  static bool readJSON(const JSONValue &V, ScheduleState &Out,
                       std::string &Error);

  bool operator==(const ScheduleState &O) const;
};

/// SplitMix64 — the standard 64-bit finalizer used for the energy gate.
inline uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// FNV-1a over a function name (stable across platforms).
inline uint64_t fnv1aHash(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= (unsigned char)C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// The deterministic energy gate: whether function \p Fn is mutated at
/// iteration seed \p Seed under schedule \p S. Consumes no RNG, so
/// skipping a function leaves the mutant of every other function
/// untouched. Null schedule (blind mode) always mutates.
inline bool scheduleAllowsMutation(const ScheduleState *S,
                                   const std::string &Fn, uint64_t Seed) {
  if (!S)
    return true;
  uint32_t E = S->energyFor(Fn);
  if (E >= ScheduleState::MaxEnergy)
    return true;
  return (splitmix64(Seed ^ fnv1aHash(Fn)) & 7) < E;
}

} // namespace alive

#endif // CORE_FEEDBACK_H
