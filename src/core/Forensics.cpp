//===- core/Forensics.cpp - Per-bug forensics bundles ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Forensics.h"

#include "core/FuzzerLoop.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "support/AtomicFile.h"
#include "support/JSON.h"
#include "support/Telemetry.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace alive;

const char *alive::forensicKindName(ForensicRecord::Kind K) {
  switch (K) {
  case ForensicRecord::InvalidMutant:
    return "invalid-mutant";
  case ForensicRecord::Crash:
    return "crash";
  case ForensicRecord::Verdict:
    return "verdict";
  case ForensicRecord::Timeout:
    return "timeout";
  }
  return "?";
}

namespace {

/// Filesystem-safe bundle directory component for a function name.
std::string sanitize(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += (std::isalnum((unsigned char)C) || C == '-' || C == '.') ? C : '_';
  return Out.empty() ? "_" : Out;
}

/// Deterministic bundle directory name: the seed plus what failed. One
/// iteration tests each function once, so (seed, function) is unique
/// within a campaign — and identical across -j1/-jN runs.
std::string bundleDirName(const ForensicRecord &R) {
  std::string Tail;
  switch (R.K) {
  case ForensicRecord::InvalidMutant:
    Tail = "invalid";
    break;
  case ForensicRecord::Crash:
    Tail = "crash";
    break;
  case ForensicRecord::Verdict:
    Tail = sanitize(R.Function);
    break;
  case ForensicRecord::Timeout:
    // At most one timeout record per iteration (the iteration stops), so
    // the seed alone keeps the name unique; the function (when the cut
    // happened mid-verify) is advisory.
    Tail = R.Function.empty() ? "timeout" : "timeout-" + sanitize(R.Function);
    break;
  }
  return "bundle-s" + std::to_string(R.Seed) + "-" + Tail;
}

bool slurp(const std::string &Path, std::string &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void writeManifest(std::ostream &OS, const BundleInputs &In) {
  const ForensicRecord &R = In.Record;
  const FuzzOptions &O = In.Opts;
  OS << "{\n";
  OS << "  \"schema_version\": " << BundleManifestSchemaVersion << ",\n";

  OS << "  \"record\": {\"kind\": \"" << forensicKindName(R.K)
     << "\", \"seed\": " << R.Seed << ", \"function\": ";
  writeJSONString(OS, R.Function);
  OS << ", \"verdict\": ";
  writeJSONString(OS, R.VerdictSlug);
  OS << ", \"detail\": ";
  writeJSONString(OS, R.Detail);
  OS << ", \"issue_id\": ";
  writeJSONString(OS, R.IssueId);
  OS << ", \"counterexample\": ";
  writeJSONString(OS, R.CounterExample);
  OS << "},\n";

  // The config echo: everything -replay needs to rebuild FuzzOptions so
  // the recorded iteration re-runs bit-for-bit.
  OS << "  \"config\": {\n";
  OS << "    \"passes\": ";
  writeJSONString(OS, O.Passes);
  OS << ",\n";
  OS << "    \"max_mutations_per_function\": "
     << O.Mutation.MaxMutationsPerFunction << ",\n";
  OS << "    \"value_source\": {\"max_depth\": "
     << O.Mutation.ValueSource.MaxDepth
     << ", \"poison_percent\": " << O.Mutation.ValueSource.PoisonPercent
     << ", \"allow_fresh_parameters\": "
     << (O.Mutation.ValueSource.AllowFreshParameters ? "true" : "false")
     << "},\n";
  OS << "    \"enabled_kinds\": [";
  for (size_t I = 0; I != O.Mutation.EnabledKinds.size(); ++I)
    OS << (I ? ", " : "") << '"'
       << mutationKindName(O.Mutation.EnabledKinds[I]) << '"';
  OS << "],\n";
  OS << "    \"tv\": {\"solver_conflict_budget\": " << O.TV.SolverConflictBudget
     << ", \"concrete_trials\": " << O.TV.ConcreteTrials
     << ", \"exhaustive_bits\": " << O.TV.ExhaustiveBits
     << ", \"fuel\": " << O.TV.Fuel << ", \"seed\": " << O.TV.Seed << "},\n";
  OS << "    \"skip_unchanged\": " << (O.SkipUnchanged ? "true" : "false")
     << ",\n";
  OS << "    \"verify_mutants\": " << (O.VerifyMutants ? "true" : "false")
     << ",\n";
  OS << "    \"step_budget\": " << O.Survival.StepBudget << ",\n";
  OS << "    \"testable_functions\": [";
  for (size_t I = 0; I != In.TestableFunctions.size(); ++I) {
    OS << (I ? ", " : "");
    writeJSONString(OS, In.TestableFunctions[I]);
  }
  OS << "],\n";
  OS << "    \"injected_bugs\": [";
  {
    bool First = true;
    for (const BugInfo &B : bugTable())
      if (O.Bugs.isEnabled(B.Id)) {
        OS << (First ? "" : ", ") << '"' << B.IssueId << '"';
        First = false;
      }
  }
  OS << "]\n  },\n";

  OS << "  \"trail\": [";
  if (In.Trail) {
    bool First = true;
    for (const MutationTrailEntry &E : *In.Trail) {
      OS << (First ? "\n" : ",\n") << "    {\"family\": \""
         << mutationKindName(E.Kind) << "\", \"function\": ";
      First = false;
      writeJSONString(OS, E.Function);
      OS << ", \"site\": ";
      writeJSONString(OS, E.Site);
      OS << ", \"detail\": ";
      writeJSONString(OS, E.Detail);
      OS << "}";
    }
    OS << (First ? "" : "\n  ");
  }
  OS << "],\n";

  OS << "  \"files\": {\"original\": \"original.ll\"";
  if (In.Mutant)
    OS << ", \"mutant\": \"mutant.ll\"";
  if (In.Optimized)
    OS << ", \"optimized\": \"optimized.ll\"";
  OS << "}\n}\n";
}

} // namespace

std::string alive::writeBugBundle(const std::string &Dir,
                                  const BundleInputs &In, std::string &Error) {
  namespace fs = std::filesystem;
  fs::path Bundle = fs::path(Dir) / bundleDirName(In.Record);
  std::error_code EC;
  fs::create_directories(Bundle, EC);
  if (EC) {
    Error = "cannot create bundle directory '" + Bundle.string() +
            "': " + EC.message();
    return "";
  }

  // Every bundle file goes through the durable tmp+fsync+rename path
  // (the manifest is written last, so a bundle with a manifest is always
  // complete — -replay never sees a torn artifact).
  auto writeFile = [&](const char *Name, const std::string &Content) {
    fs::path P = Bundle / Name;
    return writeFileAtomicDurable(P.string(), Content, "forensics", Error);
  };

  if (!writeFile("original.ll", printModule(In.Original)))
    return "";
  if (In.Mutant && !writeFile("mutant.ll", printModule(*In.Mutant)))
    return "";
  if (In.Optimized && !writeFile("optimized.ll", printModule(*In.Optimized)))
    return "";
  std::ostringstream Manifest;
  writeManifest(Manifest, In);
  if (!writeFile("manifest.json", Manifest.str()))
    return "";
  return Bundle.string();
}

ReplayResult alive::replayBundle(const std::string &BundleDir) {
  ReplayResult Out;
  std::string Text, Err;
  if (!slurp(BundleDir + "/manifest.json", Text, Err)) {
    Out.Error = Err;
    return Out;
  }
  JSONValue M;
  if (!parseJSON(Text, M, Err)) {
    Out.Error = "manifest.json: " + Err;
    return Out;
  }
  if (M.getUInt("schema_version") != BundleManifestSchemaVersion) {
    Out.Error = "unsupported manifest schema version " +
                std::to_string(M.getUInt("schema_version"));
    return Out;
  }
  const JSONValue *Rec = M.find("record");
  const JSONValue *Cfg = M.find("config");
  const JSONValue *Files = M.find("files");
  if (!Rec || !Cfg || !Files) {
    Out.Error = "manifest missing record/config/files";
    return Out;
  }
  Out.Seed = Rec->getUInt("seed");
  Out.Kind = Rec->getString("kind");
  Out.Function = Rec->getString("function");
  Out.ExpectedVerdict = Rec->getString("verdict");

  // Rebuild the recorded campaign configuration. SelfCheckOnLoad stays
  // off: the recorded testable set pins the preprocessing outcome.
  FuzzOptions O;
  O.Passes = Cfg->getString("passes", "O2");
  O.Mutation.MaxMutationsPerFunction =
      (unsigned)Cfg->getUInt("max_mutations_per_function", 3);
  if (const JSONValue *VS = Cfg->find("value_source")) {
    O.Mutation.ValueSource.MaxDepth = (unsigned)VS->getUInt("max_depth", 2);
    O.Mutation.ValueSource.PoisonPercent =
        (unsigned)VS->getUInt("poison_percent", 4);
    O.Mutation.ValueSource.AllowFreshParameters =
        VS->getBool("allow_fresh_parameters", true);
  }
  if (const JSONValue *EK = Cfg->find("enabled_kinds"); EK && EK->isArray()) {
    O.Mutation.EnabledKinds.clear();
    for (const JSONValue &E : EK->Arr)
      for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K)
        if (E.K == JSONValue::String &&
            E.Str == mutationKindName((MutationKind)K))
          O.Mutation.EnabledKinds.push_back((MutationKind)K);
  }
  if (const JSONValue *TV = Cfg->find("tv")) {
    O.TV.SolverConflictBudget =
        TV->getUInt("solver_conflict_budget", O.TV.SolverConflictBudget);
    O.TV.ConcreteTrials =
        (unsigned)TV->getUInt("concrete_trials", O.TV.ConcreteTrials);
    O.TV.ExhaustiveBits =
        (unsigned)TV->getUInt("exhaustive_bits", O.TV.ExhaustiveBits);
    O.TV.Fuel = TV->getUInt("fuel", O.TV.Fuel);
    O.TV.Seed = TV->getUInt("seed", O.TV.Seed);
  }
  O.SkipUnchanged = Cfg->getBool("skip_unchanged", true);
  O.VerifyMutants = Cfg->getBool("verify_mutants", true);
  // Step-budget timeouts are deterministic, so replaying a timeout bundle
  // needs the same budget; the wall-clock backstop stays off in replay.
  O.Survival.StepBudget = Cfg->getUInt("step_budget", 0);
  O.SelfCheckOnLoad = false;
  O.Iterations = 1;
  O.BaseSeed = Out.Seed;
  std::vector<std::string> Fns;
  if (const JSONValue *TF = Cfg->find("testable_functions");
      TF && TF->isArray())
    for (const JSONValue &E : TF->Arr)
      if (E.K == JSONValue::String)
        Fns.push_back(E.Str);
  O.OnlyFunctions = Fns;
  if (const JSONValue *IB = Cfg->find("injected_bugs"); IB && IB->isArray())
    for (const JSONValue &E : IB->Arr)
      for (const BugInfo &B : bugTable())
        if (E.K == JSONValue::String && E.Str == B.IssueId)
          O.Bugs.enable(B.Id);

  std::string ParseErr;
  auto Mod = parseModuleFile(
      BundleDir + "/" + Files->getString("original", "original.ll"), ParseErr);
  if (!Mod) {
    Out.Error = "original.ll: " + ParseErr;
    return Out;
  }

  FuzzerLoop Loop(O);
  if (!Loop.configError().empty()) {
    Out.Error = Loop.configError();
    return Out;
  }
  if (Loop.loadModule(std::move(Mod)) == 0) {
    Out.Error = "no testable function survived loading original.ll";
    return Out;
  }

  // The mutant must regenerate byte-for-byte from the recorded seed —
  // this is the §III-E determinism claim made checkable, and it catches
  // tampered or version-skewed bundles before verdicts are compared.
  MutationTrail Trail;
  std::unique_ptr<Module> Mutant = Loop.makeMutant(Out.Seed, Trail);
  if (std::string File = Files->getString("mutant"); !File.empty()) {
    std::string Stored;
    if (!slurp(BundleDir + "/" + File, Stored, Err)) {
      Out.Error = Err;
      return Out;
    }
    if (Stored != printModule(*Mutant)) {
      Out.Error = "regenerated mutant differs from stored mutant.ll";
      return Out;
    }
  }
  if (const JSONValue *TJ = M.find("trail"); TJ && TJ->isArray()) {
    if (TJ->Arr.size() != Trail.size()) {
      Out.Error = "mutation trail length mismatch: recorded " +
                  std::to_string(TJ->Arr.size()) + ", regenerated " +
                  std::to_string(Trail.size());
      return Out;
    }
    for (size_t I = 0; I != Trail.size(); ++I) {
      const JSONValue &E = TJ->Arr[I];
      if (E.getString("family") != mutationKindName(Trail[I].Kind) ||
          E.getString("function") != Trail[I].Function ||
          E.getString("site") != Trail[I].Site ||
          E.getString("detail") != Trail[I].Detail) {
        Out.Error = "mutation trail entry " + std::to_string(I) +
                    " does not match the regenerated trail";
        return Out;
      }
    }
  }

  // Re-run the full iteration and demand the recorded outcome, verbatim.
  Loop.runIteration(Out.Seed);
  for (const ForensicRecord &FR : Loop.lastOutcomes()) {
    if (forensicKindName(FR.K) != Out.Kind || FR.Function != Out.Function)
      continue;
    Out.ActualVerdict = FR.VerdictSlug;
    if (FR.VerdictSlug != Out.ExpectedVerdict) {
      Out.Error = "verdict mismatch: recorded '" + Out.ExpectedVerdict +
                  "', replay produced '" + FR.VerdictSlug + "'";
      return Out;
    }
    if (FR.Detail != Rec->getString("detail")) {
      Out.Error = "detail mismatch against the recorded verdict";
      return Out;
    }
    if (FR.CounterExample != Rec->getString("counterexample")) {
      Out.Error = "counterexample mismatch against the recorded verdict";
      return Out;
    }
    if (FR.IssueId != Rec->getString("issue_id")) {
      Out.Error = "issue id mismatch: recorded '" +
                  Rec->getString("issue_id") + "', replay produced '" +
                  FR.IssueId + "'";
      return Out;
    }
    Out.Ok = true;
    return Out;
  }
  Out.Error = "recorded outcome did not reproduce: no " + Out.Kind +
              " record for '" + Out.Function + "' in the replayed iteration";
  return Out;
}
