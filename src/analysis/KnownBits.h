//===- analysis/KnownBits.h - Bit-level value analysis ---------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small known-bits analysis in the style of llvm::KnownBits. InstCombine
/// rules use it for preconditions ("no common bits set", "known
/// non-negative", ...), and several seeded Table I defects are precisely
/// bugs where such a precondition was checked too weakly.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_KNOWNBITS_H
#define ANALYSIS_KNOWNBITS_H

#include "ir/Instruction.h"
#include "support/APInt.h"

namespace alive {

/// Bit-level facts about a value: Zero has a 1 for every bit known to be 0,
/// One has a 1 for every bit known to be 1. Zero & One == 0 always.
struct KnownBits {
  APInt Zero, One;

  explicit KnownBits(unsigned Bits)
      : Zero(APInt::getZero(Bits)), One(APInt::getZero(Bits)) {}

  unsigned getBitWidth() const { return Zero.getBitWidth(); }
  bool isNonNegative() const { return Zero.testBit(getBitWidth() - 1); }
  bool isNegative() const { return One.testBit(getBitWidth() - 1); }
  bool isConstant() const { return (Zero | One).isAllOnes(); }
  const APInt &getConstant() const {
    assert(isConstant() && "not a constant");
    return One;
  }
  /// Upper bound on the unsigned value.
  APInt umax() const { return ~Zero; }
  /// Lower bound on the unsigned value.
  APInt umin() const { return One; }
};

/// Computes known bits for \p V, recursing at most \p Depth levels through
/// operands. \p V must have integer type.
KnownBits computeKnownBits(const Value *V, unsigned Depth = 6);

/// True if V1 and V2 provably have no common set bits
/// (so V1 + V2 == V1 | V2).
bool haveNoCommonBits(const Value *A, const Value *B);

} // namespace alive

#endif // ANALYSIS_KNOWNBITS_H
