//===- analysis/Verifier.cpp - IR well-formedness checks ------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "analysis/DominatorTree.h"

#include <algorithm>
#include <set>

using namespace alive;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run();

private:
  void err(const std::string &Msg) {
    Errors.push_back("@" + F.getName() + ": " + Msg);
  }
  void checkInstruction(const Instruction *I);

  const Function &F;
  std::vector<std::string> &Errors;
};

bool FunctionVerifier::run() {
  size_t ErrorsBefore = Errors.size();

  if (F.isDeclaration())
    return true;
  if (F.getNumBlocks() == 0) {
    err("definition has no blocks");
    return false;
  }

  // Structural checks that must pass before dominance makes sense.
  for (BasicBlock *BB : F.blocks()) {
    if (BB->empty() || !BB->getTerminator()) {
      err("block '" + BB->getName() + "' lacks a terminator");
      return false;
    }
    bool SeenNonPhi = false, SeenTerm = false;
    for (Instruction *I : BB->insts()) {
      if (SeenTerm)
        err("instruction after terminator in block '" + BB->getName() + "'");
      if (isa<PhiNode>(I)) {
        if (SeenNonPhi)
          err("phi not grouped at block start in '" + BB->getName() + "'");
      } else {
        SeenNonPhi = true;
      }
      if (I->isTerminator())
        SeenTerm = true;
      if (I->getParent() != BB)
        err("instruction parent link broken in '" + BB->getName() + "'");
      // Successors must belong to this function.
      for (BasicBlock *S : getSuccessors(I))
        if (S->getParent() != &F)
          err("branch to foreign block");
    }
  }
  if (Errors.size() != ErrorsBefore)
    return false;

  if (!F.predecessors(F.getEntryBlock()).empty())
    err("entry block has predecessors");

  DominatorTree DT(F);

  for (BasicBlock *BB : F.blocks()) {
    // Phi incoming lists must exactly match predecessors.
    std::vector<BasicBlock *> Preds = F.predecessors(BB);
    for (Instruction *I : BB->insts()) {
      const auto *Phi = dyn_cast<PhiNode>(I);
      if (!Phi)
        break;
      std::set<const BasicBlock *> Seen;
      for (unsigned K = 0; K != Phi->getNumIncoming(); ++K) {
        const BasicBlock *In = Phi->getIncomingBlock(K);
        if (!Seen.insert(In).second)
          err("phi has duplicate incoming block '" + In->getName() + "'");
        if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
          err("phi incoming block '" + In->getName() +
              "' is not a predecessor");
      }
      for (const BasicBlock *P : Preds)
        if (!Seen.count(P))
          err("phi missing incoming value for predecessor '" + P->getName() +
              "'");
    }

    for (Instruction *I : BB->insts()) {
      checkInstruction(I);
      // SSA dominance for every operand (only in reachable code; LLVM
      // likewise exempts unreachable blocks).
      if (!DT.isReachable(BB))
        continue;
      for (unsigned Op = 0; Op != I->getNumOperands(); ++Op) {
        const Value *V = I->getOperand(Op);
        if (const auto *DefI = dyn_cast<Instruction>(V)) {
          if (DefI->getFunction() != &F) {
            err("operand defined in another function");
            continue;
          }
          if (!DT.isReachable(DefI->getParent()))
            err("reachable use of a value defined in unreachable code");
          else if (!DT.dominatesUse(V, I, Op))
            err("definition of " + DefI->getOpcodeName() +
                " does not dominate a use in block '" + BB->getName() + "'");
        } else if (const auto *A = dyn_cast<Argument>(V)) {
          bool Ours = false;
          for (unsigned K = 0; K != F.getNumArgs(); ++K)
            Ours |= F.getArg(K) == A;
          if (!Ours)
            err("operand argument belongs to another function");
        }
      }
    }
  }

  return Errors.size() == ErrorsBefore;
}

void FunctionVerifier::checkInstruction(const Instruction *I) {
  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    const auto *B = cast<BinaryInst>(I);
    if (B->getLHS()->getType() != B->getRHS()->getType() ||
        B->getLHS()->getType() != B->getType())
      err("binary op type mismatch");
    if (!B->getType()->isIntOrIntVectorTy())
      err("binary op on non-integer type");
    if ((B->hasNUW() || B->hasNSW()) &&
        !BinaryInst::supportsNUWNSW(B->getBinOp()))
      err("nuw/nsw on unsupported opcode " + B->getOpcodeName());
    if (B->isExact() && !BinaryInst::supportsExact(B->getBinOp()))
      err("exact on unsupported opcode " + B->getOpcodeName());
    break;
  }
  case Value::VK_ICmpInst: {
    const auto *C = cast<ICmpInst>(I);
    if (C->getLHS()->getType() != C->getRHS()->getType())
      err("icmp operand type mismatch");
    if (!C->getLHS()->getType()->isIntegerTy() &&
        !C->getLHS()->getType()->isPointerTy())
      err("icmp on unsupported type");
    if (!C->getType()->isBoolTy())
      err("icmp must produce i1");
    break;
  }
  case Value::VK_SelectInst: {
    const auto *S = cast<SelectInst>(I);
    if (!S->getCondition()->getType()->isBoolTy())
      err("select condition must be i1");
    if (S->getTrueValue()->getType() != S->getFalseValue()->getType() ||
        S->getTrueValue()->getType() != S->getType())
      err("select arm type mismatch");
    break;
  }
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    Type *SrcTy = C->getSrc()->getType();
    if (!SrcTy->isIntegerTy() || !C->getType()->isIntegerTy()) {
      err("cast on non-integer type");
      break;
    }
    unsigned SW = SrcTy->getIntegerBitWidth();
    unsigned DW = C->getType()->getIntegerBitWidth();
    if (C->getCastOp() == CastInst::Trunc ? SW <= DW : SW >= DW)
      err("cast width invalid for " + I->getOpcodeName());
    break;
  }
  case Value::VK_PhiNode: {
    const auto *P = cast<PhiNode>(I);
    for (unsigned K = 0; K != P->getNumIncoming(); ++K)
      if (P->getIncomingValue(K)->getType() != P->getType())
        err("phi incoming value type mismatch");
    break;
  }
  case Value::VK_CallInst: {
    const auto *C = cast<CallInst>(I);
    const FunctionType *FT = C->getCallee()->getFunctionType();
    if (FT->getNumParams() != C->getNumArgs()) {
      err("call argument count mismatch");
      break;
    }
    for (unsigned K = 0; K != C->getNumArgs(); ++K)
      if (C->getArg(K)->getType() != FT->getParamType(K))
        err("call argument type mismatch at position " + std::to_string(K));
    if (C->getType() != FT->getReturnType())
      err("call return type mismatch");
    break;
  }
  case Value::VK_LoadInst:
    if (!cast<LoadInst>(I)->getPointer()->getType()->isPointerTy())
      err("load pointer operand is not a pointer");
    if (!I->getType()->isFirstClassTy())
      err("load of non-first-class type");
    break;
  case Value::VK_StoreInst: {
    const auto *S = cast<StoreInst>(I);
    if (!S->getPointer()->getType()->isPointerTy())
      err("store pointer operand is not a pointer");
    if (!S->getValueOperand()->getType()->isFirstClassTy())
      err("store of non-first-class type");
    break;
  }
  case Value::VK_GEPInst: {
    const auto *G = cast<GEPInst>(I);
    if (!G->getPointer()->getType()->isPointerTy())
      err("gep pointer operand is not a pointer");
    if (!G->getIndex()->getType()->isIntegerTy())
      err("gep index is not an integer");
    break;
  }
  case Value::VK_ExtractElementInst: {
    const auto *E = cast<ExtractElementInst>(I);
    const auto *VT = dyn_cast<VectorType>(E->getVector()->getType());
    if (!VT)
      err("extractelement on non-vector");
    else if (VT->getElementType() != E->getType())
      err("extractelement result type mismatch");
    break;
  }
  case Value::VK_InsertElementInst: {
    const auto *E = cast<InsertElementInst>(I);
    const auto *VT = dyn_cast<VectorType>(E->getVector()->getType());
    if (!VT)
      err("insertelement on non-vector");
    else if (VT->getElementType() != E->getElement()->getType())
      err("insertelement element type mismatch");
    break;
  }
  case Value::VK_ShuffleVectorInst: {
    const auto *SV = cast<ShuffleVectorInst>(I);
    const auto *InTy = dyn_cast<VectorType>(SV->getV1()->getType());
    if (!InTy || SV->getV1()->getType() != SV->getV2()->getType()) {
      err("shufflevector input type mismatch");
      break;
    }
    for (int Lane : SV->getMask())
      if (Lane >= (int)(2 * InTy->getNumElements()))
        err("shufflevector mask lane out of range");
    break;
  }
  case Value::VK_ReturnInst: {
    const auto *R = cast<ReturnInst>(I);
    Type *Expected = F.getReturnType();
    if (Expected->isVoidTy()) {
      if (R->getReturnValue())
        err("ret with value in void function");
    } else if (!R->getReturnValue() ||
               R->getReturnValue()->getType() != Expected) {
      err("ret value type mismatch");
    }
    break;
  }
  case Value::VK_BranchInst: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional() && !B->getCondition()->getType()->isBoolTy())
      err("branch condition must be i1");
    break;
  }
  case Value::VK_SwitchInst: {
    const auto *S = cast<SwitchInst>(I);
    if (!S->getCondition()->getType()->isIntegerTy()) {
      err("switch condition must be integer");
      break;
    }
    unsigned W = S->getCondition()->getType()->getIntegerBitWidth();
    for (unsigned K = 0; K != S->getNumCases(); ++K)
      if (S->getCaseValue(K).getBitWidth() != W)
        err("switch case width mismatch");
    break;
  }
  case Value::VK_FreezeInst:
  case Value::VK_AllocaInst:
  case Value::VK_UnreachableInst:
    break;
  default:
    err("unknown instruction kind");
  }
}

} // namespace

bool alive::verifyFunction(const Function &F,
                           std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool alive::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool Ok = true;
  for (Function *F : M.functions())
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}

std::string alive::verifyError(const Function &F) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, Errors))
    return "";
  return Errors.front();
}
