//===- analysis/ShuffleRanges.cpp - Shufflable instruction ranges ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ShuffleRanges.h"

using namespace alive;

bool alive::isShufflable(const BasicBlock &BB, unsigned Begin, unsigned End) {
  for (unsigned I = Begin; I != End; ++I) {
    const Instruction *A = BB.getInst(I);
    if (isa<PhiNode>(A) || A->isTerminator())
      return false;
    for (unsigned J = Begin; J != I; ++J)
      if (A->usesValue(BB.getInst(J)))
        return false;
  }
  return true;
}

std::vector<ShuffleRange> alive::computeShuffleRanges(const Function &F,
                                                      unsigned MinSize) {
  std::vector<ShuffleRange> Ranges;
  for (unsigned B = 0; B != F.getNumBlocks(); ++B) {
    const BasicBlock *BB = F.getBlock(B);
    unsigned N = BB->size();
    unsigned Start = 0;
    while (Start < N) {
      const Instruction *First = BB->getInst(Start);
      if (isa<PhiNode>(First) || First->isTerminator()) {
        ++Start;
        continue;
      }
      // Greedily extend the range while independence holds.
      unsigned End = Start + 1;
      while (End < N && isShufflable(*BB, Start, End + 1))
        ++End;
      if (End - Start >= MinSize)
        Ranges.push_back({B, Start, End});
      Start = End;
    }
  }
  return Ranges;
}
