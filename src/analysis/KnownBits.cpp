//===- analysis/KnownBits.cpp - Bit-level value analysis ------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"

#include "ir/Constants.h"

using namespace alive;

KnownBits alive::computeKnownBits(const Value *V, unsigned Depth) {
  assert(V->getType()->isIntegerTy() && "known bits of non-integer");
  unsigned W = V->getType()->getIntegerBitWidth();
  KnownBits K(W);

  if (const auto *CI = dyn_cast<ConstantInt>(V)) {
    K.One = CI->getValue();
    K.Zero = ~CI->getValue();
    return K;
  }
  if (Depth == 0)
    return K;

  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return K;

  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    const auto *B = cast<BinaryInst>(I);
    KnownBits L = computeKnownBits(B->getLHS(), Depth - 1);
    KnownBits R = computeKnownBits(B->getRHS(), Depth - 1);
    switch (B->getBinOp()) {
    case BinaryInst::And:
      K.One = L.One & R.One;
      K.Zero = L.Zero | R.Zero;
      break;
    case BinaryInst::Or:
      K.One = L.One | R.One;
      K.Zero = L.Zero & R.Zero;
      break;
    case BinaryInst::Xor:
      K.One = (L.One & R.Zero) | (L.Zero & R.One);
      K.Zero = (L.Zero & R.Zero) | (L.One & R.One);
      break;
    case BinaryInst::Shl:
      if (const auto *Amt = dyn_cast<ConstantInt>(B->getRHS())) {
        if (Amt->getValue().ult(APInt(W, W))) {
          unsigned S = (unsigned)Amt->getValue().getZExtValue();
          K.One = L.One.shl(S);
          K.Zero = L.Zero.shl(S) | APInt::getLowBitsSet(W, S);
        }
      }
      break;
    case BinaryInst::LShr:
      if (const auto *Amt = dyn_cast<ConstantInt>(B->getRHS())) {
        if (Amt->getValue().ult(APInt(W, W))) {
          unsigned S = (unsigned)Amt->getValue().getZExtValue();
          K.One = L.One.lshr(S);
          K.Zero = L.Zero.lshr(S) | APInt::getHighBitsSet(W, S);
        }
      }
      break;
    case BinaryInst::URem:
      if (const auto *D = dyn_cast<ConstantInt>(B->getRHS())) {
        if (D->getValue().isPowerOf2())
          K.Zero = ~(D->getValue() - APInt::getOne(W));
      }
      break;
    case BinaryInst::UDiv:
      if (const auto *D = dyn_cast<ConstantInt>(B->getRHS())) {
        if (D->getValue().isPowerOf2())
          K.Zero = APInt::getHighBitsSet(W, D->getValue().logBase2());
      }
      break;
    case BinaryInst::Add: {
      // If the low n bits of both operands are known zero, no carries reach
      // bit n, so the sum's low n bits are zero too.
      unsigned LZ = std::min((~L.Zero).countTrailingZeros(),
                             (~R.Zero).countTrailingZeros());
      if (LZ > 0)
        K.Zero = APInt::getLowBitsSet(W, std::min(LZ, W));
      break;
    }
    default:
      break;
    }
    break;
  }
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    KnownBits S = computeKnownBits(C->getSrc(), Depth - 1);
    unsigned SW = S.getBitWidth();
    switch (C->getCastOp()) {
    case CastInst::ZExt:
      K.One = S.One.zext(W);
      K.Zero = S.Zero.zext(W) | APInt::getHighBitsSet(W, W - SW);
      break;
    case CastInst::SExt:
      if (S.isNonNegative()) {
        K.One = S.One.zext(W);
        K.Zero = S.Zero.zext(W) | APInt::getHighBitsSet(W, W - SW);
      } else if (S.isNegative()) {
        K.One = S.One.zext(W) | APInt::getHighBitsSet(W, W - SW);
        K.Zero = S.Zero.zext(W);
      }
      break;
    case CastInst::Trunc:
      K.One = S.One.trunc(W);
      K.Zero = S.Zero.trunc(W);
      break;
    }
    break;
  }
  case Value::VK_SelectInst: {
    const auto *S = cast<SelectInst>(I);
    KnownBits T = computeKnownBits(S->getTrueValue(), Depth - 1);
    KnownBits F = computeKnownBits(S->getFalseValue(), Depth - 1);
    K.One = T.One & F.One;
    K.Zero = T.Zero & F.Zero;
    break;
  }
  case Value::VK_ICmpInst:
    // i1 result: nothing known beyond the width.
    break;
  default:
    break;
  }

  assert((K.Zero & K.One).isZero() && "contradictory known bits");
  return K;
}

bool alive::haveNoCommonBits(const Value *A, const Value *B) {
  KnownBits KA = computeKnownBits(A);
  KnownBits KB = computeKnownBits(B);
  // Every bit must be known-zero on at least one side.
  return (KA.Zero | KB.Zero).isAllOnes();
}
