//===- analysis/DominatorTree.h - Dominance analysis -----------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-level dominator tree (Cooper-Harvey-Kennedy iterative algorithm)
/// plus value-level dominance queries. The mutator's central primitive —
/// "randomly generate a dominating SSA value with a compatible type for a
/// given program point" (paper §IV-F) — is built on these queries.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DOMINATORTREE_H
#define ANALYSIS_DOMINATORTREE_H

#include "ir/Function.h"

#include <map>
#include <vector>

namespace alive {

/// Dominator tree over the CFG of one function. Computed once; valid as
/// long as the CFG (blocks and edges) is unchanged. Instruction-level
/// queries consult current instruction positions, so they stay correct
/// under within-block mutations.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  const Function &getFunction() const { return F; }

  /// True if \p BB is reachable from the entry block.
  bool isReachable(const BasicBlock *BB) const {
    return RPONumber.count(BB) != 0;
  }

  /// Immediate dominator, or null for the entry/unreachable blocks.
  const BasicBlock *getIDom(const BasicBlock *BB) const;

  /// Block-level dominance (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True if the definition of \p Def is available at program point
  /// (\p BB, \p InstIdx) — i.e. a new use inserted at that position would
  /// satisfy SSA dominance. Arguments and constants are always available.
  /// An instruction is available at later positions of its own block and
  /// everywhere its block strictly... dominates.
  bool valueAvailableAt(const Value *Def, const BasicBlock *BB,
                        unsigned InstIdx) const;

  /// SSA check: does \p Def dominate the use at operand \p OpIdx of \p U?
  /// Phi uses are checked at the end of the incoming block.
  bool dominatesUse(const Value *Def, const Instruction *U,
                    unsigned OpIdx) const;

  /// Blocks in reverse post-order (entry first, reachable only).
  const std::vector<const BasicBlock *> &rpo() const { return RPO; }

private:
  const Function &F;
  std::vector<const BasicBlock *> RPO;
  std::map<const BasicBlock *, unsigned> RPONumber;
  std::vector<const BasicBlock *> IDom; // indexed by RPO number
};

} // namespace alive

#endif // ANALYSIS_DOMINATORTREE_H
