//===- analysis/Verifier.h - IR well-formedness checks ---------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA verification. The paper's headline property for the
/// mutator is that it "can create valid LLVM IR 100% of the time" — every
/// mutation operator's output is run through this verifier in the test
/// suite, and the fuzz loop asserts it in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_VERIFIER_H
#define ANALYSIS_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace alive {

/// Verifies one function. \returns true when well-formed; otherwise false,
/// appending human-readable problems to \p Errors.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies every definition in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Convenience: first error only (empty string when valid).
std::string verifyError(const Function &F);

} // namespace alive

#endif // ANALYSIS_VERIFIER_H
