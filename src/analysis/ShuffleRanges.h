//===- analysis/ShuffleRanges.h - Shufflable instruction ranges -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precomputes maximal ranges of consecutive instructions without mutual
/// SSA dependencies, which the §IV-D shuffle mutation can permute freely
/// without breaking SSA invariants. Computed once during the preprocessing
/// phase "so that this mutation can be performed rapidly" (paper §IV-D).
/// Note that only SSA dependencies matter: the mutation is free to change
/// semantics (e.g. moving loads across calls), since it is the optimizer,
/// not the mutator, that must be semantics-preserving.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_SHUFFLERANGES_H
#define ANALYSIS_SHUFFLERANGES_H

#include "ir/Function.h"

#include <vector>

namespace alive {

/// A shufflable range: instructions [Begin, End) of block #BlockIdx.
struct ShuffleRange {
  unsigned BlockIdx;
  unsigned Begin;
  unsigned End;

  unsigned size() const { return End - Begin; }
};

/// Computes all maximal shufflable ranges of at least \p MinSize
/// instructions. Phis and terminators are never part of a range.
std::vector<ShuffleRange> computeShuffleRanges(const Function &F,
                                               unsigned MinSize = 2);

/// True if instructions [Begin, End) of \p BB have no mutual dependencies
/// (no instruction in the range uses another instruction in the range).
bool isShufflable(const BasicBlock &BB, unsigned Begin, unsigned End);

} // namespace alive

#endif // ANALYSIS_SHUFFLERANGES_H
