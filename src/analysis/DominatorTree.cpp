//===- analysis/DominatorTree.cpp - Dominance analysis --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"

#include <algorithm>

using namespace alive;

DominatorTree::DominatorTree(const Function &F) : F(F) {
  assert(!F.isDeclaration() && "dominance of a declaration");

  // Depth-first post-order over the CFG.
  std::vector<const BasicBlock *> PostOrder;
  std::map<const BasicBlock *, unsigned> State; // 0 unseen, 1 open, 2 done
  std::vector<std::pair<const BasicBlock *, unsigned>> Stack;
  const BasicBlock *Entry = F.getEntryBlock();
  Stack.push_back({Entry, 0});
  State[Entry] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      const BasicBlock *S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(BB);
    State[BB] = 2;
    Stack.pop_back();
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPONumber[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  IDom.assign(RPO.size(), nullptr);
  IDom[0] = Entry; // entry's idom is itself during iteration
  auto intersect = [&](const BasicBlock *A, const BasicBlock *B) {
    while (A != B) {
      while (RPONumber.at(A) > RPONumber.at(B))
        A = IDom[RPONumber.at(A)];
      while (RPONumber.at(B) > RPONumber.at(A))
        B = IDom[RPONumber.at(B)];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I != RPO.size(); ++I) {
      const BasicBlock *BB = RPO[I];
      const BasicBlock *NewIDom = nullptr;
      for (const BasicBlock *Pred : F.predecessors(BB)) {
        if (!RPONumber.count(Pred) || !IDom[RPONumber.at(Pred)])
          continue; // unreachable or not yet processed
        NewIDom = NewIDom ? intersect(NewIDom, Pred) : Pred;
      }
      if (NewIDom && IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }
}

const BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = RPONumber.find(BB);
  if (It == RPONumber.end() || It->second == 0)
    return nullptr;
  return IDom[It->second];
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B's idom chain up to the entry.
  const BasicBlock *Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    unsigned N = RPONumber.at(Cur);
    if (N == 0)
      return false;
    Cur = IDom[N];
  }
}

bool DominatorTree::valueAvailableAt(const Value *Def, const BasicBlock *BB,
                                     unsigned InstIdx) const {
  if (isa<Constant>(Def) || isa<Argument>(Def))
    return true;
  const auto *I = dyn_cast<Instruction>(Def);
  if (!I)
    return false;
  const BasicBlock *DefBB = I->getParent();
  if (DefBB == BB) {
    unsigned DefIdx = BB->indexOf(I);
    // Phi definitions are conceptually at the top of the block: available
    // at every non-phi position and at later phi positions.
    if (isa<PhiNode>(I)) {
      if (InstIdx >= BB->size())
        return true;
      return InstIdx > DefIdx || !isa<PhiNode>(BB->getInst(InstIdx));
    }
    return DefIdx < InstIdx;
  }
  return dominates(DefBB, BB) && DefBB != BB;
}

bool DominatorTree::dominatesUse(const Value *Def, const Instruction *U,
                                 unsigned OpIdx) const {
  if (isa<Constant>(Def) || isa<Argument>(Def))
    return true;
  const auto *I = dyn_cast<Instruction>(Def);
  if (!I)
    return false;
  if (const auto *Phi = dyn_cast<PhiNode>(U)) {
    // A phi use must be available at the end of the incoming block.
    const BasicBlock *In = Phi->getIncomingBlock(OpIdx);
    return valueAvailableAt(Def, In, In->size());
  }
  const BasicBlock *UseBB = U->getParent();
  return valueAvailableAt(Def, UseBB, UseBB->indexOf(U));
}
