//===- corpus/Corpus.h - Test-corpus generation ----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for LLVM's unit-test suite (29,243 .ll files in the real
/// campaign): a deterministic generator that synthesizes InstCombine-style
/// unit tests, the paper's own listings embedded verbatim, and "near-miss"
/// seeds that sit one or two mutations away from each seeded Table I
/// defect's trigger (the paper's core hypothesis: human tests come close
/// to bugs but miss corner cases).
///
//===----------------------------------------------------------------------===//

#ifndef CORPUS_CORPUS_H
#define CORPUS_CORPUS_H

#include "ir/Module.h"
#include "support/RandomGenerator.h"

#include <memory>
#include <string>
#include <vector>

namespace alive {

/// The paper's listings as parseable .ll text (Listings 1, 4, 15, 17, 18,
/// 19 and friends), one string per file.
const std::vector<std::string> &paperListingSeeds();

/// Near-miss seeds for the fuzzing campaign: each file is adjacent (one or
/// two mutations) to one seeded Table I defect's trigger pattern.
struct NearMissSeed {
  const char *IssueId; ///< the Table I issue this seed is adjacent to
  const char *Text;    ///< .ll source
};
const std::vector<NearMissSeed> &nearMissSeeds();

/// Generates a random valid module with \p NumFunctions functions in the
/// style of InstCombine unit tests (small, integer-heavy, occasional
/// memory/vector/CFG shapes). Deterministic in \p Seed.
std::unique_ptr<Module> generateRandomModule(uint64_t Seed,
                                             unsigned NumFunctions);

/// Renders \p Count generated corpus files (as .ll text), each under
/// \p MaxBytes bytes — the shape of the throughput experiment's input set
/// ("200 LLVM IR files, each of them smaller than 2 KB", §V-B). Mirrors
/// real InstCombine unit files in repeating tests: roughly a third of the
/// output is a renamed, commutative-operand-mirrored near-duplicate of an
/// earlier file.
std::vector<std::string> generateCorpusFiles(uint64_t Seed, unsigned Count,
                                             size_t MaxBytes = 2048);

} // namespace alive

#endif // CORPUS_CORPUS_H
