//===- corpus/Distill.cpp - Greedy coverage-based corpus distillation -------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Distill.h"

#include <algorithm>

using namespace alive;

static unsigned popcountWords(const std::vector<uint64_t> &Words) {
  unsigned N = 0;
  for (uint64_t W : Words)
    while (W) {
      W &= W - 1;
      ++N;
    }
  return N;
}

DistillResult alive::distillCover(std::vector<DistillItem> Items) {
  // Rank: biggest coverage first; names break ties so the order is total
  // and independent of the caller's ordering.
  std::stable_sort(Items.begin(), Items.end(),
                   [](const DistillItem &A, const DistillItem &B) {
                     unsigned PA = popcountWords(A.Words);
                     unsigned PB = popcountWords(B.Words);
                     if (PA != PB)
                       return PA > PB;
                     return A.Name < B.Name;
                   });

  DistillResult R;
  std::vector<uint64_t> Union;
  for (const DistillItem &It : Items) {
    if (It.Words.size() > Union.size())
      Union.resize(It.Words.size(), 0);
    bool Adds = false;
    for (size_t I = 0; I != It.Words.size(); ++I)
      if (It.Words[I] & ~Union[I]) {
        Adds = true;
        break;
      }
    if (Adds) {
      for (size_t I = 0; I != It.Words.size(); ++I)
        Union[I] |= It.Words[I];
      R.Kept.push_back(It.Name);
    } else {
      R.Dropped.push_back(It.Name);
    }
  }
  return R;
}
