//===- corpus/CorpusLoader.h - Robust multi-file corpus loading -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a fuzzing corpus — one or many .ll files — into a single campaign
/// module, the way the paper's campaign consumes LLVM's unit-test suite.
/// Robustness over strictness: an empty, unreadable or unparseable corpus
/// file is *skipped* (counted, one warning line) instead of aborting the
/// whole campaign; real test suites always contain a few files a reduced
/// parser cannot handle.
///
/// Merging is deterministic: files in argument order, functions in module
/// order, cross-module clones via cloneFunction. A function name already
/// taken by an earlier file gets a ".k" suffix (smallest free k) — the
/// merged module, and therefore the whole campaign, depends only on the
/// file list and contents.
///
//===----------------------------------------------------------------------===//

#ifndef CORPUS_CORPUSLOADER_H
#define CORPUS_CORPUSLOADER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace alive {

/// What loadCorpus did, for the campaign report and the tool's summary.
struct CorpusLoadResult {
  /// The merged campaign module; null when no file survived.
  std::unique_ptr<Module> M;
  unsigned FilesLoaded = 0;
  /// Files skipped (empty / unreadable / unparseable) — the CorpusSkipped
  /// stat; echoed into the run report's config section.
  unsigned FilesSkipped = 0;
  /// Functions renamed to resolve cross-file name collisions.
  unsigned Renamed = 0;
  /// One line per skipped file: "skipping '<path>': <reason>".
  std::vector<std::string> Warnings;
};

/// Parses every path in \p Paths and merges the survivors into one module.
CorpusLoadResult loadCorpus(const std::vector<std::string> &Paths);

} // namespace alive

#endif // CORPUS_CORPUSLOADER_H
