//===- corpus/CorpusLoader.cpp - Robust multi-file corpus loading ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusLoader.h"

#include "parser/Parser.h"
#include "support/FaultPlane.h"

#include <fstream>
#include <sstream>

using namespace alive;

namespace {

bool isBlank(const std::string &S) {
  for (char C : S)
    if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
      return false;
  return true;
}

} // namespace

CorpusLoadResult alive::loadCorpus(const std::vector<std::string> &Paths) {
  CorpusLoadResult Res;
  auto Skip = [&](const std::string &Path, const std::string &Why) {
    ++Res.FilesSkipped;
    Res.Warnings.push_back("skipping '" + Path + "': " + Why);
  };

  std::vector<std::unique_ptr<Module>> Parsed;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path, std::ios::binary);
    if (!In || faultAt("corpus.open")) {
      Skip(Path, "cannot read file");
      continue;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    if (In.bad() || faultAt("corpus.read")) {
      Skip(Path, "read error");
      continue;
    }
    std::string Text = SS.str();
    if (isBlank(Text)) {
      Skip(Path, "file is empty");
      continue;
    }
    std::string Err;
    std::unique_ptr<Module> M = parseModule(Text, Err);
    if (!M) {
      Skip(Path, Err);
      continue;
    }
    ++Res.FilesLoaded;
    Parsed.push_back(std::move(M));
  }
  if (Parsed.empty())
    return Res;
  if (Parsed.size() == 1) {
    // The common single-file campaign: no merge, no renames — exactly the
    // module the file describes.
    Res.M = std::move(Parsed.front());
    return Res;
  }

  // Merge in argument order. Only definitions are cloned eagerly;
  // cloneFunction pulls referenced declarations across on demand.
  auto Merged = std::make_unique<Module>();
  for (const auto &M : Parsed)
    for (Function *F : M->functions()) {
      if (F->isDeclaration() || F->isIntrinsic())
        continue;
      std::string Name = F->getName();
      if (Merged->getFunction(Name)) {
        unsigned K = 2;
        while (Merged->getFunction(Name + "." + std::to_string(K)))
          ++K;
        Name += "." + std::to_string(K);
        ++Res.Renamed;
      }
      cloneFunction(*F, *Merged, Name);
    }
  Res.M = std::move(Merged);
  return Res;
}
