//===- corpus/Corpus.cpp - Test-corpus generation ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "ir/Instruction.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "support/Casting.h"

#include <cassert>

using namespace alive;

const std::vector<std::string> &alive::paperListingSeeds() {
  static const std::vector<std::string> Seeds = {
      // Listing 1: the unit test behind Figure 1.
      R"(define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
)",
      // Listing 4: @test9 (the running example), with its @clobber callee.
      R"(declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}

define void @f(ptr %ptr) {
  store i32 42, ptr %ptr, align 4
  ret void
}
)",
      // Listing 15 neighborhood: smax over an offset add.
      R"(define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}
)",
      // Listing 17 neighborhood: pr4917-style overflow check.
      R"(define i1 @pr4917_4(i32 %x) {
entry:
  %r = zext i32 %x to i64
  %mul = mul i64 %r, %r
  %res = icmp ule i64 %mul, 4294967295
  ret i1 %res
}
)",
      // Listing 18: the zero-width bitfield extract.
      R"(define i64 @lsr_zext_i1_i64(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
)",
      // Listing 19: promoted-constant compare.
      R"(define i32 @fcmp_promote() {
  %1 = sub i8 -66, 0
  %2 = icmp ugt i8 -31, %1
  %3 = select i1 %2, i32 1, i32 0
  ret i32 %3
}
)",
      // Listing 16 neighborhood: aligned load via assume-like contract.
      R"(define i8 @align_non_pow2(ptr dereferenceable(16) %p) {
  %v = load i8, ptr %p, align 8
  ret i8 %v
}
)",
  };
  return Seeds;
}

const std::vector<NearMissSeed> &alive::nearMissSeeds() {
  // Every seed is VALID and passes translation validation un-mutated, even
  // with all defects injected — the campaign's discoveries must come from
  // mutants, exactly as in the paper (pristine regression tests are green).
  static const std::vector<NearMissSeed> Seeds = {
      {"53252", // Figure 1: needs and->xor opcode change + constant change
       R"(define i32 @clamp_like(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %neg = and i1 %t2, true
  %r = select i1 %neg, i32 %x, i32 %t1
  ret i32 %r
}
)"},
      {"50693", // needs constant -2 -> -1
       R"(define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)"},
      {"53218", // needs a flag toggle so the duplicate loses nsw
       R"(define i32 @gvn_twins(i32 %x, i32 %y) {
  %a = add nsw i32 %x, %y
  %b = add nsw i32 %x, %y
  ret i32 %b
}
)"},
      {"55003", // needs the nsw on the shl to be toggled off
       R"(define i8 @sext_inreg(i8 %x) {
  %a = shl nsw i8 %x, 3
  %b = ashr i8 %a, 3
  ret i8 %b
}
)"},
      {"55201", // needs the mask constant weakened
       R"(define i32 @masked_rotate(i32 %x) {
  %hi = shl i32 %x, 8
  %himask = and i32 %hi, -256
  %lo = lshr i32 %x, 24
  %r = or i32 %himask, %lo
  ret i32 %r
}
)"},
      {"55129", // needs the shift amount changed from 0 to >= 1
       R"(define i64 @bool_shift(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 0
  ret i64 %2
}
)"},
      {"55271", // needs the is_int_min_poison flag toggled to false
       R"(define i8 @abs_poison(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 true)
  ret i8 %r
}
)"},
      {"55284", // needs C1 mutated into a subset of C2
       R"(define i8 @or_and(i8 %x) {
  %o = or i8 %x, 48
  %a = and i8 %o, 15
  ret i8 %a
}
)"},
      {"55287", // needs a use-mutation making the mul operand differ
       R"(define i8 @urem_expand(i8 %x, i8 %y, i8 %z) {
  %d = udiv i8 %x, %y
  %m = mul i8 %d, %y
  %r = sub i8 %x, %m
  ret i8 %r
}
)"},
      {"55296", // needs the divisor constant pushed past 255
       R"(define i8 @narrow_urem(i8 %x) {
  %z = zext i8 %x to i32
  %r = urem i32 %z, 200
  %t = trunc i32 %r to i8
  ret i8 %t
}
)"},
      {"55342", // needs the compared constant to go negative
       R"(define i32 @promote_ugt(i8 %v) {
  %1 = sub i8 -66, 0
  %2 = add i8 %1, %v
  %3 = icmp ugt i8 %2, 31
  %4 = select i1 %3, i32 1, i32 0
  ret i32 %4
}
)"},
      {"55490",
       R"(define i32 @promote_ult(i8 %v) {
  %1 = icmp ult i8 %v, 10
  %2 = select i1 %1, i32 1, i32 0
  ret i32 %2
}
)"},
      {"55627",
       R"(define i32 @promote_eq(i8 %v) {
  %1 = icmp eq i8 %v, 3
  %2 = select i1 %1, i32 1, i32 0
  ret i32 %2
}
)"},
      {"55484", // a true i32 rotate; constant mutation (24 -> 8 from the
                 // literal pool) turns it into the half-word-swap shape
                 // that MatchBSwapHWordLow mis-matched at wide types
       R"(define i32 @rot8(i32 %x) {
  %hi = shl i32 %x, 8
  %lo = lshr i32 %x, 24
  %r = or i32 %hi, %lo
  ret i32 %r
}
)"},
      {"55833", // needs the lshr amount mutated so C1 + n == W - 1
       R"(define i8 @bitfield(i8 %x) {
  %s = lshr i8 %x, 1
  %r = and i8 %s, 31
  ret i8 %r
}
)"},
      {"58109", // needs a use/constant mutation to reach usub.sat lowering
       R"(define i8 @sat_sub(i8 %x, i8 %y) {
  %r = call i8 @llvm.usub.sat.i8(i8 %x, i8 0)
  ret i8 %r
}
)"},
      {"58321", // needs a flag toggle making %a possibly-poison
       R"(define i8 @freeze_ret(i8 %x) {
  %a = add i8 %x, 100
  %fr = freeze i8 %a
  ret i8 %fr
}
)"},
      {"58431", // needs the middle width mutated so trunc/zext stop matching
       R"(define i16 @zext_trunc(i16 %x) {
  %t = trunc i16 %x to i8
  %z = zext i8 %t to i16
  ret i16 %z
}
)"},
      {"59836", // needs the result width narrowed below S1+S2
       R"(define i16 @zext_mul(i8 %a, i8 %b) {
  %za = zext i8 %a to i16
  %zb = zext i8 %b to i16
  %m = mul i16 %za, %zb
  ret i16 %m
}
)"},
      {"52884", // needs nsw toggled on (Listing 15 has only nuw here)
       R"(define i8 @smax_offset2(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}
)"},
      {"51618", // needs a use-mutation introducing undef into the phi
       R"(define i32 @phi_merge(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  ret i32 %p
}
)"},
      {"56377", // needs the extract index pushed out of range
       R"(define i8 @shuffle_extract(<4 x i8> %v, <4 x i8> %w) {
  %s = shufflevector <4 x i8> %v, <4 x i8> %w, <4 x i32> <i32 0, i32 5, i32 2, i32 7>
  %r = extractelement <4 x i8> %s, i32 3
  ret i8 %r
}
)"},
      {"56463", // needs a use-mutation turning the pointer into poison
       R"(declare void @escape(ptr)

define void @escape_null() {
  call void @escape(ptr null)
  ret void
}
)"},
      {"56945", // needs a constant replaced by poison
       R"(define i8 @fold_smax() {
  %m = call i8 @llvm.smax.i8(i8 -5, i8 3)
  ret i8 %m
}
)"},
      {"56968", // needs the shift amount bumped from 7 to 8
       R"(define i8 @shift_edge(i8 %x) {
  %r = shl i8 %x, 7
  ret i8 %r
}
)"},
      {"56981", // needs the i1 immediate toggled to true
       R"(define i8 @ctlz_zero() {
  %r = call i8 @llvm.ctlz.i8(i8 0, i1 false)
  ret i8 %r
}
)"},
      {"58423", // needs a use-mutation adding a second use of the shl
       R"(define i32 @rotate_cse(i32 %x, i32 %y) {
  %hi = shl i32 %x, 5
  %lo = lshr i32 %x, 27
  %r = or i32 %hi, %lo
  %extra = add i32 %y, %r
  ret i32 %extra
}
)"},
      {"58425", // needs a bitwidth mutation into the 65..127 range
       R"(define i64 @legal_udiv(i64 %x, i64 %y) {
  %s = or i64 %y, 1
  %d = udiv i64 %x, %s
  %r = add i64 %d, %x
  ret i64 %r
}
)"},
      {"59757", // needs a use-mutation turning the format pointer null
       R"(declare i32 @printf(ptr)

define i32 @print_it(ptr nonnull %fmt) {
  %r = call i32 @printf(ptr %fmt)
  ret i32 %r
}
)"},
      {"64687", // needs the alignment mutated to a non-power-of-two
       R"(define i8 @aligned_load(ptr dereferenceable(246) %p) {
  %v = load i8, ptr %p, align 2
  ret i8 %v
}
)"},
      {"64661", // needs the second store's constant mutated to differ
       R"(declare void @use(ptr)

define void @auto_init() {
  %p = alloca i32, align 4
  store i32 7, ptr %p, align 4
  store i32 7, ptr %p, align 4
  call void @use(ptr %p)
  ret void
}
)"},
      {"72035", // needs the gep index mutated off zero
       R"(define i32 @sroa_gep(i32 %x) {
  %p = alloca i32, align 4
  %q = getelementptr i8, ptr %p, i64 0
  store i32 %x, ptr %p, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}
)"},
      {"72034", // needs a constant-vector lane mutated to poison
       R"(define i8 @scalarize(<2 x i8> %v) {
  %s = add <2 x i8> %v, <i8 3, i8 5>
  %r = extractelement <2 x i8> %s, i32 0
  ret i8 %r
}
)"},
  };
  return Seeds;
}

//===----------------------------------------------------------------------===//
// Random module generation
//===----------------------------------------------------------------------===//

namespace {

/// Builds one random single- or multi-block integer function.
void generateFunction(Module &M, RandomGenerator &RNG,
                      const std::string &Name) {
  TypeContext &TC = M.getTypes();
  static const unsigned Widths[] = {1, 8, 16, 32, 64};
  auto randWidth = [&] { return Widths[RNG.below(std::size(Widths))]; };

  // Signature: 1..3 integer args, sometimes a pointer.
  unsigned NumArgs = 1 + (unsigned)RNG.below(3);
  std::vector<Type *> Params;
  for (unsigned I = 0; I != NumArgs; ++I)
    Params.push_back(RNG.chance(1, 6) ? (Type *)TC.getPointerTy()
                                      : (Type *)TC.getIntTy(randWidth()));
  unsigned RetW = randWidth();
  Type *RetTy = TC.getIntTy(RetW);
  Function *F = M.createFunction(TC.getFunctionTy(RetTy, Params), Name);
  for (unsigned I = 0; I != NumArgs; ++I) {
    F->getArg(I)->setName("a" + std::to_string(I));
    if (Params[I]->isPointerTy())
      F->paramAttrs(I).Dereferenceable = 8;
  }

  BasicBlock *BB = F->addBlock("entry");
  ConstantPoolCtx &CP = M.getConstants();

  // Values available per width.
  std::vector<Value *> Pool;
  for (unsigned I = 0; I != NumArgs; ++I)
    if (!Params[I]->isPointerTy())
      Pool.push_back(F->getArg(I));

  auto pickOfWidth = [&](unsigned W) -> Value * {
    std::vector<Value *> Xs;
    for (Value *V : Pool)
      if (V->getType()->isIntegerTy() &&
          V->getType()->getIntegerBitWidth() == W)
        Xs.push_back(V);
    if (!Xs.empty() && RNG.chance(3, 4))
      return RNG.pick(Xs);
    return CP.getInt(TC.getIntTy(W), RNG.nextAPInt(W));
  };

  unsigned NumInsts = 3 + (unsigned)RNG.below(9);
  for (unsigned K = 0; K != NumInsts; ++K) {
    unsigned W = randWidth();
    Instruction *NewI = nullptr;
    switch (RNG.below(6)) {
    case 0:
    case 1: { // binop (most common, like real InstCombine tests)
      auto Op = (BinaryInst::BinOp)RNG.below(BinaryInst::NumBinOps);
      // Avoid generating certain-UB divisions by non-poolable zero: use
      // 'or 1' guarded divisors occasionally; plain random is fine since
      // UB-on-some-inputs is allowed in tests.
      auto *B = new BinaryInst(Op, pickOfWidth(W), pickOfWidth(W));
      if (BinaryInst::supportsNUWNSW(Op)) {
        B->setNUW(RNG.chance(1, 4));
        B->setNSW(RNG.chance(1, 3));
      }
      if (BinaryInst::supportsExact(Op))
        B->setExact(RNG.chance(1, 5));
      NewI = B;
      break;
    }
    case 2: { // icmp
      NewI = new ICmpInst((ICmpInst::Predicate)RNG.below(ICmpInst::NumPreds),
                          pickOfWidth(W), pickOfWidth(W), TC.getIntTy(1));
      break;
    }
    case 3: { // select over an i1 from the pool (or fresh compare)
      Value *Cond = nullptr;
      for (Value *V : Pool)
        if (V->getType()->isBoolTy() && RNG.flip()) {
          Cond = V;
          break;
        }
      if (!Cond) {
        auto *C = new ICmpInst(
            (ICmpInst::Predicate)RNG.below(ICmpInst::NumPreds),
            pickOfWidth(W), pickOfWidth(W), TC.getIntTy(1));
        BB->append(std::unique_ptr<Instruction>(C));
        Pool.push_back(C);
        Cond = C;
      }
      NewI = new SelectInst(Cond, pickOfWidth(W), pickOfWidth(W));
      break;
    }
    case 4: { // cast
      unsigned W2 = randWidth();
      if (W2 == W)
        W2 = W == 64 ? 32 : W * 2 > 128 ? 1 : W + 8;
      Value *Src = pickOfWidth(W);
      if (W2 > W)
        NewI = new CastInst(RNG.flip() ? CastInst::ZExt : CastInst::SExt,
                            Src, TC.getIntTy(W2));
      else if (W2 < W)
        NewI = new CastInst(CastInst::Trunc, Src, TC.getIntTy(W2));
      else
        NewI = new BinaryInst(BinaryInst::Add, Src, pickOfWidth(W));
      break;
    }
    case 5: { // intrinsic
      static const IntrinsicID Ids[] = {
          IntrinsicID::SMin, IntrinsicID::SMax,    IntrinsicID::UMin,
          IntrinsicID::UMax, IntrinsicID::UAddSat, IntrinsicID::USubSat};
      IntrinsicID ID = Ids[RNG.below(std::size(Ids))];
      Function *Callee = M.getOrInsertIntrinsic(ID, TC.getIntTy(W));
      NewI = new CallInst(Callee, {pickOfWidth(W), pickOfWidth(W)},
                          TC.getIntTy(W));
      break;
    }
    }
    BB->append(std::unique_ptr<Instruction>(NewI));
    Pool.push_back(NewI);
  }

  // Return a value of the chosen return width.
  BB->append(std::make_unique<ReturnInst>(pickOfWidth(RetW), TC.getVoidTy()));
}

/// Re-skins \p M in place: fresh function/argument/block/instruction names
/// and randomly mirrored commutative operands (icmp predicates swapped to
/// match). Semantically the identity — the output is the near-duplicate
/// shape that fills real InstCombine unit files, where one test recurs
/// under a new name with renamed values and commuted operand order.
void disguiseModule(Module &M, RandomGenerator &RNG, uint64_t Tag) {
  for (Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    F->setName(F->getName() + "_v" + std::to_string(Tag));
    for (unsigned I = 0; I != F->getNumArgs(); ++I)
      F->getArg(I)->setName("p" + std::to_string(I));
    unsigned N = 0, B = 0;
    for (BasicBlock *BB : F->blocks()) {
      BB->setName("bb" + std::to_string(B++));
      for (Instruction *I : BB->insts()) {
        if (auto *BI = dyn_cast<BinaryInst>(I)) {
          if (BinaryInst::isCommutative(BI->getBinOp()) && RNG.chance(1, 8)) {
            Value *L = BI->getOperand(0);
            BI->setOperand(0, BI->getOperand(1));
            BI->setOperand(1, L);
          }
        } else if (auto *CI = dyn_cast<ICmpInst>(I)) {
          if (RNG.chance(1, 8)) {
            Value *L = CI->getOperand(0);
            CI->setOperand(0, CI->getOperand(1));
            CI->setOperand(1, L);
            CI->setPredicate(
                ICmpInst::getSwappedPredicate(CI->getPredicate()));
          }
        }
        if (!I->getType()->isVoidTy())
          I->setName("t" + std::to_string(N++));
      }
    }
  }
}

} // namespace

std::unique_ptr<Module> alive::generateRandomModule(uint64_t Seed,
                                                    unsigned NumFunctions) {
  auto M = std::make_unique<Module>();
  RandomGenerator RNG(Seed);
  for (unsigned I = 0; I != NumFunctions; ++I)
    generateFunction(*M, RNG, "fn" + std::to_string(I));
  return M;
}

std::vector<std::string> alive::generateCorpusFiles(uint64_t Seed,
                                                    unsigned Count,
                                                    size_t MaxBytes) {
  std::vector<std::string> Files;
  RandomGenerator RNG(Seed);
  // Sprinkle the paper listings through the corpus, then generated files.
  for (const std::string &S : paperListingSeeds())
    if (Files.size() < Count && S.size() <= MaxBytes)
      Files.push_back(S);
  uint64_t Sub = 0;
  // Originals eligible for variant emission: real InstCombine unit files
  // repeat one test many times under new names with renamed values and
  // commuted operands, so roughly a third of the corpus is a re-skinned
  // near-duplicate of an earlier file.
  std::vector<std::unique_ptr<Module>> Fresh;
  while (Files.size() < Count) {
    if (!Fresh.empty() && RNG.chance(1, 3)) {
      auto V = cloneModule(*Fresh[RNG.below(Fresh.size())]);
      disguiseModule(*V, RNG, ++Sub);
      std::string Text = printModule(*V);
      if (Text.size() <= MaxBytes)
        Files.push_back(Text);
      continue;
    }
    auto M = generateRandomModule(Seed * 7919 + ++Sub,
                                  1 + (unsigned)RNG.below(3));
    std::string Text = printModule(*M);
    if (Text.size() <= MaxBytes) {
      Files.push_back(Text);
      Fresh.push_back(std::move(M));
    }
  }
  return Files;
}
