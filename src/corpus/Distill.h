//===- corpus/Distill.h - Greedy coverage-based corpus distillation -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corpus distillation: given one coverage bitmask per seed function, keep
/// a minimal-ish subset whose union covers everything (greedy set cover).
/// Generic over raw word vectors so the corpus library needs no knowledge
/// of the optimizer's rule catalog — the CLI adapts FeedbackMap entries.
///
/// Determinism and idempotence: candidates are ranked by (popcount
/// descending, name ascending) — a total order independent of input order
/// — and a candidate is kept iff it contributes a bit the kept set lacks.
/// Re-distilling a distilled corpus re-selects exactly the same set in the
/// same relative order, so `-distill` twice equals once.
///
//===----------------------------------------------------------------------===//

#ifndef CORPUS_DISTILL_H
#define CORPUS_DISTILL_H

#include <cstdint>
#include <string>
#include <vector>

namespace alive {

/// One distillation candidate: a seed function and its coverage words.
struct DistillItem {
  std::string Name;
  std::vector<uint64_t> Words;
};

struct DistillResult {
  /// Kept seeds in selection (rank) order.
  std::vector<std::string> Kept;
  /// Dropped seeds (coverage subsumed by the kept set), in rank order.
  std::vector<std::string> Dropped;
};

/// Greedy set cover over \p Items. Items with all-zero coverage are
/// dropped (they contribute nothing). Word vectors of differing lengths
/// are fine; missing words read as zero.
DistillResult distillCover(std::vector<DistillItem> Items);

} // namespace alive

#endif // CORPUS_DISTILL_H
