//===- net/HttpServer.h - Minimal poll()-based HTTP/1.1 server -*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free HTTP/1.1 server for the live observability
/// plane — the same hand-rolled spirit as support/JSON: no third-party
/// library, no feature beyond what the metrics endpoints need.
///
/// Shape: one background thread running a poll() loop over the listening
/// socket plus every open connection, all non-blocking. Requests are
/// GET/HEAD only (anything else gets 405); responses are either one-shot
/// (write, flush, close — Connection: close keeps the state machine
/// trivial) or *streaming* (Server-Sent Events: the response headers and
/// initial body are written, the connection stays open, and later
/// broadcast() calls append chunks to every streaming connection).
///
/// Shutdown is tied to the existing CancellationToken primitive: the
/// server owns a token, polls it every loop, and stop() cancels it via
/// the same serial-gated CAS the iteration watchdog uses — so an external
/// holder of token() can also wind the server down (e.g. a signal path).
/// On shutdown streaming connections get a final "shutdown" SSE comment
/// before the close.
///
/// Threading: start() spawns the server thread; the Handler and Tick
/// callbacks run *on that thread*. broadcast() may be called from the
/// handler or tick only (it touches the connection list, which is server-
/// thread-private). Everything the callbacks read from the campaign must
/// therefore be observer-safe — which is exactly what the engine's
/// liveSnapshot() contract provides.
///
//===----------------------------------------------------------------------===//

#ifndef NET_HTTPSERVER_H
#define NET_HTTPSERVER_H

#include "support/Cancellation.h"

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace alive {

struct HttpRequest {
  std::string Method; ///< "GET" or "HEAD" (others are rejected earlier)
  std::string Path;   ///< decoded-enough path, query string stripped
  std::string Query;  ///< raw query string ("" when absent)
};

struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  /// Server-Sent Events mode: Content-Type is forced to text/event-stream,
  /// Body is sent as the initial chunk and the connection stays open to
  /// receive broadcast() chunks until shutdown or client close.
  bool Stream = false;
};

class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;
  /// Called once per poll cycle (at least every ~50ms) on the server
  /// thread; the place to drain event queues and take periodic snapshots.
  using Tick = std::function<void()>;

  HttpServer();
  ~HttpServer();
  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  void setHandler(Handler H) { Handle = std::move(H); }
  void setTick(Tick T) { OnTick = std::move(T); }

  /// Seconds between ": ping" SSE keep-alive comments to streaming
  /// clients (<= 0 disables). Comments are ignored by EventSource parsers
  /// but keep idle connections alive through proxies/NATs — and make a
  /// silently hung-up client fail its next send, so the POLLHUP reaper
  /// gets a second trigger. Call before start().
  void setKeepAliveSeconds(double S) { KeepAliveSeconds = S; }

  /// Per-connection read deadline: a connection that has not delivered a
  /// complete request head within \p S seconds of being accepted gets a
  /// 408 and is closed (<= 0 disables). Slowloris-style stalls cannot pin
  /// one of the MaxConns slots forever. Call before start().
  void setReadDeadlineSeconds(double S) { ReadDeadlineSeconds = S; }

  /// Per-connection write deadline: a connection with queued response
  /// bytes that makes no send() progress for \p S seconds is dropped
  /// (<= 0 disables). The mirror of the read deadline — a client that
  /// accepts its request but never drains the response (zero receive
  /// window) would otherwise pin a one-shot response, or a slot, forever.
  /// Call before start().
  void setWriteDeadlineSeconds(double S) { WriteDeadlineSeconds = S; }

  /// Binds 127.0.0.1:\p Port (0 = kernel-assigned ephemeral port) and
  /// starts the server thread. \returns false with \p Error filled on
  /// bind/listen failure.
  bool start(uint16_t Port, std::string &Error);

  /// The bound port (the resolved one when started with 0).
  uint16_t port() const { return BoundPort; }

  bool running() const { return Thread.joinable(); }

  /// Graceful shutdown: cancels the token, lets the loop flush a final
  /// SSE farewell to streaming clients, joins the thread, closes every
  /// socket. Idempotent.
  void stop();

  /// The shutdown token; external holders may cancel it (serial-gated,
  /// same idiom as the iteration watchdog) to wind the server down
  /// without calling stop() first — stop() must still run to join.
  CancellationToken &token() { return Token; }

  /// Appends \p Chunk to every streaming connection's output buffer.
  /// Server thread only (handler / tick).
  void broadcast(const std::string &Chunk);

  /// Open streaming (SSE) connections. Server thread only.
  size_t streamClients() const;

private:
  struct Conn;
  void loop();
  void serviceConn(Conn &C);
  void respond(Conn &C);

  Handler Handle;
  Tick OnTick;
  double KeepAliveSeconds = 15;
  double ReadDeadlineSeconds = 10;
  double WriteDeadlineSeconds = 10;
  CancellationToken Token;
  std::thread Thread;
  int ListenFD = -1;
  uint16_t BoundPort = 0;
  // Owned by the server thread once start() returns.
  std::vector<Conn> *Conns = nullptr;
};

} // namespace alive

#endif // NET_HTTPSERVER_H
