//===- net/HttpServer.cpp - Minimal poll()-based HTTP/1.1 server ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/HttpServer.h"

#include "support/FaultPlane.h"
#include "support/Timer.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace alive;

namespace {

/// Connections beyond this are accepted and immediately closed: the
/// observability plane serves one dashboard and a CI curl, not traffic.
constexpr size_t MaxConns = 64;
/// A request whose headers exceed this is a 431 and a close.
constexpr size_t MaxHeaderBytes = 16 * 1024;

bool setNonBlocking(int FD) {
  int Flags = fcntl(FD, F_GETFL, 0);
  return Flags >= 0 && fcntl(FD, F_SETFL, Flags | O_NONBLOCK) == 0;
}

const char *statusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 431:
    return "Request Header Fields Too Large";
  case 503:
    return "Service Unavailable";
  default:
    return "Internal Server Error";
  }
}

} // namespace

struct HttpServer::Conn {
  int FD = -1;
  std::string In;      ///< bytes read, waiting for the header terminator
  std::string Out;     ///< bytes queued for write
  size_t OutPos = 0;   ///< written prefix of Out
  bool Streaming = false;
  bool CloseWhenFlushed = false;
  bool Dead = false;
  /// Loop-clock second the connection was accepted at; a connection still
  /// reading its request head past the deadline gets a 408.
  double AcceptedAt = 0;
  /// Loop-clock second queued output first stalled (0 = not stalled).
  /// Stamped by the loop when bytes are pending, cleared by serviceConn on
  /// any send() progress; a connection stalled past the write deadline is
  /// dropped.
  double WriteStalledSince = 0;
};

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(uint16_t Port, std::string &Error) {
  if (running()) {
    Error = "server already running";
    return false;
  }
  ListenFD = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFD < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFD, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFD, (sockaddr *)&Addr, sizeof Addr) != 0 ||
      ::listen(ListenFD, 16) != 0 || !setNonBlocking(ListenFD)) {
    Error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(ListenFD);
    ListenFD = -1;
    return false;
  }
  socklen_t Len = sizeof Addr;
  if (::getsockname(ListenFD, (sockaddr *)&Addr, &Len) != 0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    ::close(ListenFD);
    ListenFD = -1;
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);
  Token.beginIteration(0); // arm a fresh serial; cancel = shutdown
  Thread = std::thread([this] { loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running())
    return;
  // The same serial-gated cancel the watchdog uses; here the serial is
  // always current because only start() advances it.
  Token.cancelIfStillOn(Token.serial());
  Thread.join();
}

void HttpServer::broadcast(const std::string &Chunk) {
  if (!Conns)
    return;
  for (Conn &C : *Conns)
    if (C.Streaming && !C.Dead)
      C.Out += Chunk;
}

size_t HttpServer::streamClients() const {
  if (!Conns)
    return 0;
  size_t N = 0;
  for (const Conn &C : *Conns)
    N += C.Streaming && !C.Dead;
  return N;
}

/// Parses the buffered request head and queues the response.
void HttpServer::respond(Conn &C) {
  HttpRequest Req;
  HttpResponse Res;
  size_t LineEnd = C.In.find("\r\n");
  size_t Sp1 = C.In.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : C.In.find(' ', Sp1 + 1);
  if (LineEnd == std::string::npos || Sp1 == std::string::npos ||
      Sp2 == std::string::npos || Sp2 > LineEnd) {
    Res.Status = 400;
    Res.Body = "malformed request line\n";
  } else {
    Req.Method = C.In.substr(0, Sp1);
    std::string Target = C.In.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    size_t Q = Target.find('?');
    Req.Path = Target.substr(0, Q);
    if (Q != std::string::npos)
      Req.Query = Target.substr(Q + 1);
    if (Req.Method != "GET" && Req.Method != "HEAD") {
      Res.Status = 405;
      Res.Body = "only GET is served here\n";
    } else if (Handle) {
      Res = Handle(Req);
    } else {
      Res.Status = 503;
      Res.Body = "no handler\n";
    }
  }

  bool Head = Req.Method == "HEAD";
  if (Res.Stream && !Head) {
    C.Streaming = true;
    C.Out += "HTTP/1.1 200 OK\r\n"
             "Content-Type: text/event-stream\r\n"
             "Cache-Control: no-store\r\n"
             "Connection: close\r\n\r\n";
    C.Out += Res.Body;
  } else {
    C.Out += "HTTP/1.1 " + std::to_string(Res.Status) + " " +
             statusText(Res.Status) + "\r\n" +
             "Content-Type: " + Res.ContentType + "\r\n" +
             "Content-Length: " + std::to_string(Res.Body.size()) + "\r\n" +
             "Connection: close\r\n\r\n";
    if (!Head)
      C.Out += Res.Body;
    C.CloseWhenFlushed = true;
  }
  C.In.clear();
}

void HttpServer::loop() {
  std::vector<Conn> Connections;
  Conns = &Connections;

  Timer LoopClock;
  double LastPing = 0;
  std::vector<pollfd> PFDs;
  while (!Token.cancelled()) {
    if (OnTick)
      OnTick();

    PFDs.clear();
    PFDs.push_back({ListenFD, POLLIN, 0});
    for (Conn &C : Connections) {
      short Ev = 0;
      if (!C.Streaming && !C.CloseWhenFlushed)
        Ev |= POLLIN;
      if (C.OutPos < C.Out.size())
        Ev |= POLLOUT;
      if (C.Streaming)
        Ev |= POLLIN; // detect client close
      PFDs.push_back({C.FD, Ev, 0});
    }
    // 50ms keeps tick/shutdown latency low without busy-waiting.
    int N = ::poll(PFDs.data(), (nfds_t)PFDs.size(), 50);
    if (N < 0 && errno != EINTR)
      break;

    if (PFDs[0].revents & POLLIN) {
      for (;;) {
        int FD = ::accept(ListenFD, nullptr, nullptr);
        if (FD < 0)
          break;
        if (faultAt("http.accept")) {
          // Injected accept failure: the client sees a refused/reset
          // connection, exactly like an accept() hitting EMFILE.
          ::close(FD);
          continue;
        }
        if (Connections.size() >= MaxConns || !setNonBlocking(FD)) {
          ::close(FD);
          continue;
        }
        int One = 1;
        ::setsockopt(FD, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
        Conn C;
        C.FD = FD;
        C.AcceptedAt = LoopClock.seconds();
        Connections.push_back(std::move(C));
      }
    }

    for (size_t I = 1; I < PFDs.size(); ++I) {
      Conn &C = Connections[I - 1];
      if (PFDs[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        C.Dead = true;
        continue;
      }
      if (PFDs[I].revents & (POLLIN | POLLOUT))
        serviceConn(C);
    }

    double Now = LoopClock.seconds();
    // SSE keep-alive: a comment frame every KeepAliveSeconds. EventSource
    // parsers discard it; a hung-up client's next flush attempt surfaces
    // the close even when POLLHUP never fired.
    if (KeepAliveSeconds > 0 && Now - LastPing >= KeepAliveSeconds) {
      LastPing = Now;
      broadcast(": ping\n\n");
    }
    // Read deadline: a connection still dribbling (or withholding) its
    // request head past the deadline is answered 408 and closed, freeing
    // its MaxConns slot.
    if (ReadDeadlineSeconds > 0)
      for (Conn &C : Connections)
        if (!C.Streaming && !C.CloseWhenFlushed && !C.Dead &&
            Now - C.AcceptedAt > ReadDeadlineSeconds) {
          C.Out += "HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n"
                   "Connection: close\r\n\r\n";
          C.CloseWhenFlushed = true;
          C.In.clear();
        }
    // Write deadline: queued bytes that make no send() progress for the
    // whole window mean the peer stopped draining (zero receive window,
    // half-dead NAT) — a one-shot response or an SSE stream would pin its
    // slot indefinitely. Drop the connection; there is no way to send an
    // error to a client that is not reading.
    if (WriteDeadlineSeconds > 0)
      for (Conn &C : Connections) {
        if (C.Dead || C.OutPos >= C.Out.size()) {
          C.WriteStalledSince = 0;
          continue;
        }
        if (C.WriteStalledSince == 0)
          C.WriteStalledSince = Now;
        else if (Now - C.WriteStalledSince > WriteDeadlineSeconds)
          C.Dead = true;
      }

    Connections.erase(
        std::remove_if(Connections.begin(), Connections.end(),
                       [](Conn &C) {
                         bool Gone =
                             C.Dead ||
                             (C.CloseWhenFlushed && C.OutPos >= C.Out.size());
                         if (Gone && C.FD >= 0)
                           ::close(C.FD);
                         return Gone;
                       }),
        Connections.end());
  }

  // Graceful farewell to streaming clients, then tear everything down.
  for (Conn &C : Connections) {
    if (C.Streaming && !C.Dead) {
      std::string Bye = "event: shutdown\ndata: {}\n\n";
      (void)!::send(C.FD, Bye.data(), Bye.size(), MSG_NOSIGNAL);
    }
    if (C.FD >= 0)
      ::close(C.FD);
  }
  Connections.clear();
  Conns = nullptr;
  if (ListenFD >= 0) {
    ::close(ListenFD);
    ListenFD = -1;
  }
}

void HttpServer::serviceConn(Conn &C) {
  // Drain reads first: either request bytes or a client close.
  char Buf[4096];
  for (;;) {
    ssize_t R = ::recv(C.FD, Buf, sizeof Buf, 0);
    if (R > 0) {
      if (C.Streaming)
        continue; // ignore anything a streaming client sends
      C.In.append(Buf, (size_t)R);
      if (C.In.size() > MaxHeaderBytes) {
        C.Out += "HTTP/1.1 431 Request Header Fields Too Large\r\n"
                 "Content-Length: 0\r\nConnection: close\r\n\r\n";
        C.CloseWhenFlushed = true;
        C.In.clear();
        break;
      }
      if (C.In.find("\r\n\r\n") != std::string::npos) {
        respond(C);
        break;
      }
    } else if (R == 0) {
      C.Dead = true;
      return;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      if (errno == EINTR)
        continue;
      C.Dead = true;
      return;
    }
  }

  // Flush pending output (non-blocking; the rest goes next POLLOUT).
  while (C.OutPos < C.Out.size()) {
    if (faultAt("http.send"))
      return; // injected stall: behaves like a send() returning EAGAIN
    ssize_t W = ::send(C.FD, C.Out.data() + C.OutPos, C.Out.size() - C.OutPos,
                       MSG_NOSIGNAL);
    if (W > 0) {
      C.OutPos += (size_t)W;
      C.WriteStalledSince = 0; // forward progress re-arms the deadline
    } else {
      if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return;
      if (W < 0 && errno == EINTR)
        continue;
      C.Dead = true;
      return;
    }
  }
  // Fully flushed: compact the buffer so a long-lived SSE connection does
  // not grow without bound.
  if (C.OutPos == C.Out.size()) {
    C.Out.clear();
    C.OutPos = 0;
  }
}
