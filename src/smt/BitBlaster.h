//===- smt/BitBlaster.h - Term -> CNF lowering -----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers bit-vector terms to CNF via Tseitin encoding: ripple-carry
/// adders, shift-add multipliers, restoring dividers, barrel shifters and
/// comparator chains. Every Term node gets a vector of SAT literals
/// (LSB first); results are cached so the DAG is lowered once.
///
//===----------------------------------------------------------------------===//

#ifndef SMT_BITBLASTER_H
#define SMT_BITBLASTER_H

#include "smt/SatSolver.h"
#include "smt/Term.h"

#include <map>
#include <vector>

namespace alive {

/// Lowers terms into clauses of a SatSolver.
class BitBlaster {
public:
  explicit BitBlaster(SatSolver &Solver);

  /// Lowers \p T; \returns its bits, LSB first.
  const std::vector<Lit> &blast(TermRef T);

  /// Lowers a width-1 term to a single literal.
  Lit blastBit(TermRef T) {
    assert(T->Width == 1 && "blastBit on wide term");
    return blast(T)[0];
  }

  /// Asserts that the width-1 term \p T is true.
  void assertTrue(TermRef T) { Solver.addClause(blastBit(T)); }

  /// The literal that is constant true.
  Lit trueLit() const { return TrueLit; }

  /// After a Sat result: extracts the model value of \p T.
  APInt modelValue(TermRef T);

  /// After a Sat result: extracts the assignment of every Var term seen
  /// during blasting, keyed by VarId.
  std::map<unsigned, APInt> extractAssignment();

private:
  // Gate constructors (Tseitin).
  Lit mkAnd(Lit A, Lit B);
  Lit mkOr(Lit A, Lit B);
  Lit mkXor(Lit A, Lit B);
  Lit mkMux(Lit Sel, Lit T, Lit E);
  Lit freshLit() { return Solver.newVar(); }

  std::vector<Lit> addBits(const std::vector<Lit> &A,
                           const std::vector<Lit> &B, Lit CarryIn);
  std::vector<Lit> negate(const std::vector<Lit> &A);
  std::vector<Lit> mulBits(const std::vector<Lit> &A,
                           const std::vector<Lit> &B);
  /// Unsigned division: fills Quot and Rem. When B == 0 the outputs follow
  /// the total convention (Quot = 0, Rem = A), matching Term evaluation.
  void udivrem(const std::vector<Lit> &A, const std::vector<Lit> &B,
               std::vector<Lit> &Quot, std::vector<Lit> &Rem);
  /// Borrow-out of A - B, i.e. the literal for (A ult B).
  Lit ultBit(const std::vector<Lit> &A, const std::vector<Lit> &B);
  Lit eqBit(const std::vector<Lit> &A, const std::vector<Lit> &B);
  std::vector<Lit> shiftBits(TermKind Kind, const std::vector<Lit> &A,
                             const std::vector<Lit> &Amt);
  std::vector<Lit> muxBits(Lit Sel, const std::vector<Lit> &T,
                           const std::vector<Lit> &E);
  Lit isZero(const std::vector<Lit> &A);

  SatSolver &Solver;
  Lit TrueLit;
  std::map<TermRef, std::vector<Lit>> Cache;
  std::map<unsigned, std::pair<unsigned, std::vector<Lit>>> VarBits;
};

} // namespace alive

#endif // SMT_BITBLASTER_H
