//===- smt/SatSolver.h - CDCL SAT solver -----------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, VSIDS-style branching with phase saving, 1UIP conflict
/// analysis, and Luby restarts. This is the decision procedure underneath
/// the bit-blasted refinement queries — the role Z3 plays for Alive2.
///
//===----------------------------------------------------------------------===//

#ifndef SMT_SATSOLVER_H
#define SMT_SATSOLVER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alive {

class CancellationToken;

/// A literal: +v asserts variable v, -v asserts its negation. Variables are
/// numbered from 1.
using Lit = int;

/// CDCL SAT solver over CNF added incrementally with addClause.
class SatSolver {
public:
  enum class Result { Sat, Unsat, Unknown };

  /// Why the last solve() call stopped without an answer. Distinguishes
  /// ordinary budget exhaustion (deterministic: the query itself is too
  /// hard for the configured conflict budget) from a watchdog
  /// cancellation (the enclosing fuzzing iteration was cut off) — the two
  /// need different reporting, not one conflated "Unknown".
  enum class Stop {
    None,           ///< last solve() returned Sat or Unsat
    ConflictBudget, ///< the per-query conflict budget ran out
    Cancelled,      ///< the iteration watchdog cancelled the search
  };

  /// Cumulative search statistics (for the bench_tv harness and the
  /// per-query cost-attribution profiler). All counters are deterministic
  /// functions of the formula and budget: identical queries yield
  /// identical stats whatever thread or worker ran them.
  struct Stats {
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Conflicts = 0;
    uint64_t LearnedClauses = 0;
    /// Total literals across learned clauses, unit learnts included —
    /// learned-clause *size* is the memory-pressure signal LearnedClauses
    /// alone hides.
    uint64_t LearnedLiterals = 0;
    uint64_t Restarts = 0;
  };

  SatSolver();

  /// Allocates a fresh variable; \returns its index (>= 1).
  int newVar();
  int numVars() const { return (int)Assign.size() - 1; }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void addClause(const std::vector<Lit> &Literals);
  void addClause(Lit A) { addClause(std::vector<Lit>{A}); }
  void addClause(Lit A, Lit B) { addClause(std::vector<Lit>{A, B}); }
  void addClause(Lit A, Lit B, Lit C) {
    addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves the current formula. \p ConflictBudget bounds the search
  /// (0 = unlimited); exceeding it yields Unknown. \p Token (optional)
  /// lets the iteration watchdog cancel the search cooperatively: the
  /// solver consumes one token step per conflict and per decision, and a
  /// cancelled search also yields Unknown — stopCause() tells the two
  /// apart.
  Result solve(uint64_t ConflictBudget = 0,
               CancellationToken *Token = nullptr);

  /// Why the last solve() stopped without a Sat/Unsat answer.
  Stop stopCause() const { return LastStop; }

  /// After Sat: the model value of \p Var.
  bool modelValue(int Var) const;

  const Stats &stats() const { return Statistics; }

private:
  enum : uint8_t { Undef = 2 };
  struct Clause {
    std::vector<Lit> Lits;
    bool Learned;
    double Activity = 0;
  };
  struct Watcher {
    unsigned ClauseIdx;
    Lit Blocker;
  };

  unsigned watchIndex(Lit L) const {
    int V = L > 0 ? L : -L;
    return 2 * V + (L < 0 ? 1 : 0);
  }
  uint8_t valueOf(Lit L) const {
    int V = L > 0 ? L : -L;
    uint8_t A = Assign[V];
    if (A == Undef)
      return Undef;
    return (L > 0) == (A == 1) ? 1 : 0;
  }
  void enqueue(Lit L, int ReasonClause);
  /// Propagates; \returns conflicting clause index or -1.
  int propagate();
  void analyze(int ConflictClause, std::vector<Lit> &Learnt,
               int &BacktrackLevel);
  void backtrack(int Level);
  void bumpVar(int V);
  void decayActivities();
  int pickBranchVar();
  static uint64_t luby(uint64_t I);

  // Assignment trail.
  std::vector<uint8_t> Assign;       // per var: 0/1/Undef
  std::vector<int> Level;            // decision level per var
  std::vector<int> Reason;           // reason clause index per var (-1 none)
  std::vector<Lit> Trail;
  std::vector<unsigned> TrailLimits; // trail size at each decision level
  size_t PropHead = 0;

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by watchIndex
  bool Unsatisfiable = false;

  // Branching heuristic.
  std::vector<double> Activity;
  std::vector<uint8_t> SavedPhase;
  double VarInc = 1.0;

  // Order heap over candidate branch variables, ranked by (activity desc,
  // index asc) — exactly the variable the old O(vars) linear scan selected,
  // found in O(log vars). Deletion is lazy: assigned variables are popped
  // at pick time and backtrack() reinserts whatever it unassigns, so every
  // unassigned variable is always present.
  bool heapRanksBefore(int A, int B) const {
    return Activity[A] > Activity[B] ||
           (Activity[A] == Activity[B] && A < B);
  }
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);
  void heapInsert(int V);
  int heapPopTop();
  void heapRebuild();
  std::vector<int> Heap;    // heap array of variable indices
  std::vector<int> HeapPos; // var -> position in Heap, -1 when absent

  // Scratch for analyze().
  std::vector<uint8_t> Seen;

  Stats Statistics;
  Stop LastStop = Stop::None;
};

} // namespace alive

#endif // SMT_SATSOLVER_H
