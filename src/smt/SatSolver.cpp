//===- smt/SatSolver.cpp - CDCL SAT solver ---------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include "support/Cancellation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alive;

SatSolver::SatSolver() {
  // Variable 0 is unused; keep the vectors 1-based.
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0);
  SavedPhase.push_back(0);
  Seen.push_back(0);
  Watches.resize(2);
}

int SatSolver::newVar() {
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0);
  SavedPhase.push_back(0);
  Seen.push_back(0);
  Watches.resize(Watches.size() + 2);
  return (int)Assign.size() - 1;
}

void SatSolver::addClause(const std::vector<Lit> &Literals) {
  assert(TrailLimits.empty() && "clauses must be added at decision level 0");
  if (Unsatisfiable)
    return;

  // Simplify: drop duplicate/false literals, detect tautologies and
  // already-satisfied clauses.
  std::vector<Lit> Ls = Literals;
  std::sort(Ls.begin(), Ls.end(),
            [](Lit A, Lit B) { return std::abs(A) < std::abs(B) ||
                                      (std::abs(A) == std::abs(B) && A < B); });
  std::vector<Lit> Clean;
  for (Lit L : Ls) {
    assert(std::abs(L) >= 1 && std::abs(L) < (int)Assign.size() &&
           "literal for unknown variable");
    if (!Clean.empty() && Clean.back() == L)
      continue;
    if (!Clean.empty() && Clean.back() == -L)
      return; // tautology
    if (valueOf(L) == 1)
      return; // already satisfied at level 0
    if (valueOf(L) == 0)
      continue; // already false at level 0
    Clean.push_back(L);
  }

  if (Clean.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Clean.size() == 1) {
    if (valueOf(Clean[0]) == Undef)
      enqueue(Clean[0], -1);
    if (propagate() != -1)
      Unsatisfiable = true;
    return;
  }

  Clauses.push_back({Clean, /*Learned=*/false});
  unsigned Idx = (unsigned)Clauses.size() - 1;
  Watches[watchIndex(-Clean[0])].push_back({Idx, Clean[1]});
  Watches[watchIndex(-Clean[1])].push_back({Idx, Clean[0]});
}

void SatSolver::enqueue(Lit L, int ReasonClause) {
  int V = std::abs(L);
  assert(Assign[V] == Undef && "enqueue of assigned variable");
  Assign[V] = L > 0 ? 1 : 0;
  Level[V] = (int)TrailLimits.size();
  Reason[V] = ReasonClause;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    ++Statistics.Propagations;
    // Clauses watching -P must find a new watch or propagate/conflict.
    std::vector<Watcher> &WL = Watches[watchIndex(P)];
    size_t Keep = 0;
    for (size_t I = 0; I != WL.size(); ++I) {
      Watcher W = WL[I];
      if (valueOf(W.Blocker) == 1) {
        WL[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.ClauseIdx];
      // Normalize: the false literal (-P) goes to position 1.
      if (C.Lits[0] == -P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == -P);
      if (valueOf(C.Lits[0]) == 1) {
        WL[Keep++] = {W.ClauseIdx, C.Lits[0]};
        continue;
      }
      // Search for a non-false literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K != C.Lits.size(); ++K) {
        if (valueOf(C.Lits[K]) != 0) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[watchIndex(-C.Lits[1])].push_back(
              {W.ClauseIdx, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WL[Keep++] = W;
      if (valueOf(C.Lits[0]) == 0) {
        // Conflict: restore untouched watchers and report.
        for (size_t K = I + 1; K != WL.size(); ++K)
          WL[Keep++] = WL[K];
        WL.resize(Keep);
        PropHead = Trail.size();
        return (int)W.ClauseIdx;
      }
      enqueue(C.Lits[0], (int)W.ClauseIdx);
    }
    WL.resize(Keep);
  }
  return -1;
}

void SatSolver::bumpVar(int V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
}

void SatSolver::decayActivities() { VarInc /= 0.95; }

void SatSolver::analyze(int ConflictClause, std::vector<Lit> &Learnt,
                        int &BacktrackLevel) {
  // Standard 1UIP scheme.
  Learnt.clear();
  Learnt.push_back(0); // slot for the asserting literal
  int PathCount = 0;
  Lit P = 0;
  size_t TrailIdx = Trail.size();
  int CurLevel = (int)TrailLimits.size();
  int ClauseIdx = ConflictClause;

  do {
    assert(ClauseIdx != -1 && "reason missing during conflict analysis");
    Clause &C = Clauses[ClauseIdx];
    for (size_t K = (P == 0 ? 0 : 1); K != C.Lits.size(); ++K) {
      Lit Q = C.Lits[K];
      int V = std::abs(Q);
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (Level[V] >= CurLevel)
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Next literal on the trail to resolve on.
    while (!Seen[std::abs(Trail[--TrailIdx])])
      ;
    P = Trail[TrailIdx];
    Seen[std::abs(P)] = 0;
    ClauseIdx = Reason[std::abs(P)];
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = -P;

  // Compute backtrack level = max level among the other literals.
  BacktrackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t K = 1; K != Learnt.size(); ++K) {
    if (Level[std::abs(Learnt[K])] > BacktrackLevel) {
      BacktrackLevel = Level[std::abs(Learnt[K])];
      MaxIdx = K;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);

  for (Lit L : Learnt)
    Seen[std::abs(L)] = 0;
}

void SatSolver::backtrack(int TargetLevel) {
  if ((int)TrailLimits.size() <= TargetLevel)
    return;
  unsigned Limit = TrailLimits[TargetLevel];
  for (size_t I = Trail.size(); I > Limit; --I) {
    int V = std::abs(Trail[I - 1]);
    SavedPhase[V] = Assign[V];
    Assign[V] = Undef;
    Reason[V] = -1;
  }
  Trail.resize(Limit);
  TrailLimits.resize(TargetLevel);
  PropHead = Trail.size();
}

int SatSolver::pickBranchVar() {
  int Best = 0;
  double BestAct = -1;
  for (int V = 1; V < (int)Assign.size(); ++V)
    if (Assign[V] == Undef && Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  return Best;
}

uint64_t SatSolver::luby(uint64_t I) {
  // Knuth's formula for the Luby sequence.
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 1)
    ++K;
  while ((1ULL << K) - 1 != I + 1) {
    I = I - ((1ULL << K) - 1) + 1 - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ULL << (K - 1);
}

SatSolver::Result SatSolver::solve(uint64_t ConflictBudget,
                                   CancellationToken *Token) {
  LastStop = Stop::None;
  if (Unsatisfiable)
    return Result::Unsat;
  if (propagate() != -1) {
    Unsatisfiable = true;
    return Result::Unsat;
  }

  uint64_t RestartNum = 0;
  uint64_t RestartLimit = 64 * luby(RestartNum);
  uint64_t ConflictsAtRestart = 0;

  for (;;) {
    int Conflict = propagate();
    if (Conflict != -1) {
      ++Statistics.Conflicts;
      ++ConflictsAtRestart;
      if (TrailLimits.empty()) {
        Unsatisfiable = true;
        return Result::Unsat;
      }
      if (ConflictBudget && Statistics.Conflicts >= ConflictBudget) {
        LastStop = Stop::ConflictBudget;
        return Result::Unknown;
      }
      if (Token && Token->consume(1)) {
        LastStop = Stop::Cancelled;
        return Result::Unknown;
      }

      std::vector<Lit> Learnt;
      int BTLevel;
      analyze(Conflict, Learnt, BTLevel);
      backtrack(BTLevel);

      if (Learnt.size() == 1) {
        enqueue(Learnt[0], -1);
      } else {
        Clauses.push_back({Learnt, /*Learned=*/true});
        unsigned Idx = (unsigned)Clauses.size() - 1;
        Watches[watchIndex(-Learnt[0])].push_back({Idx, Learnt[1]});
        Watches[watchIndex(-Learnt[1])].push_back({Idx, Learnt[0]});
        ++Statistics.LearnedClauses;
        enqueue(Learnt[0], (int)Idx);
      }
      decayActivities();

      if (ConflictsAtRestart >= RestartLimit) {
        ++Statistics.Restarts;
        ++RestartNum;
        RestartLimit = 64 * luby(RestartNum);
        ConflictsAtRestart = 0;
        backtrack(0);
      }
      continue;
    }

    int V = pickBranchVar();
    if (V == 0)
      return Result::Sat; // all variables assigned
    // Cooperate with the iteration watchdog on conflict-free instances
    // too (pure propagation chains never reach the conflict branch).
    if (Token && Token->consume(1)) {
      LastStop = Stop::Cancelled;
      return Result::Unknown;
    }
    ++Statistics.Decisions;
    TrailLimits.push_back((unsigned)Trail.size());
    enqueue(SavedPhase[V] == 1 ? V : -V, -1);
  }
}

bool SatSolver::modelValue(int Var) const {
  assert(Var >= 1 && Var < (int)Assign.size());
  return Assign[Var] == 1;
}
