//===- smt/SatSolver.cpp - CDCL SAT solver ---------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include "support/Cancellation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alive;

SatSolver::SatSolver() {
  // Variable 0 is unused; keep the vectors 1-based.
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0);
  SavedPhase.push_back(0);
  Seen.push_back(0);
  HeapPos.push_back(-1);
  Watches.resize(2);
}

int SatSolver::newVar() {
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0);
  SavedPhase.push_back(0);
  Seen.push_back(0);
  HeapPos.push_back(-1);
  Watches.resize(Watches.size() + 2);
  int V = (int)Assign.size() - 1;
  heapInsert(V);
  return V;
}

void SatSolver::heapSiftUp(size_t I) {
  while (I != 0) {
    size_t P = (I - 1) / 2;
    if (!heapRanksBefore(Heap[I], Heap[P]))
      return;
    std::swap(Heap[I], Heap[P]);
    HeapPos[Heap[I]] = (int)I;
    HeapPos[Heap[P]] = (int)P;
    I = P;
  }
}

void SatSolver::heapSiftDown(size_t I) {
  for (;;) {
    size_t L = 2 * I + 1, R = L + 1, Best = I;
    if (L < Heap.size() && heapRanksBefore(Heap[L], Heap[Best]))
      Best = L;
    if (R < Heap.size() && heapRanksBefore(Heap[R], Heap[Best]))
      Best = R;
    if (Best == I)
      return;
    std::swap(Heap[I], Heap[Best]);
    HeapPos[Heap[I]] = (int)I;
    HeapPos[Heap[Best]] = (int)Best;
    I = Best;
  }
}

void SatSolver::heapInsert(int V) {
  if (HeapPos[V] != -1)
    return;
  HeapPos[V] = (int)Heap.size();
  Heap.push_back(V);
  heapSiftUp(Heap.size() - 1);
}

int SatSolver::heapPopTop() {
  int V = Heap[0];
  HeapPos[V] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapSiftDown(0);
  }
  return V;
}

void SatSolver::heapRebuild() {
  for (size_t I = Heap.size() / 2; I-- > 0;)
    heapSiftDown(I);
}

void SatSolver::addClause(const std::vector<Lit> &Literals) {
  assert(TrailLimits.empty() && "clauses must be added at decision level 0");
  if (Unsatisfiable)
    return;

  // Simplify: drop duplicate/false literals, detect tautologies and
  // already-satisfied clauses.
  std::vector<Lit> Ls = Literals;
  std::sort(Ls.begin(), Ls.end(),
            [](Lit A, Lit B) { return std::abs(A) < std::abs(B) ||
                                      (std::abs(A) == std::abs(B) && A < B); });
  std::vector<Lit> Clean;
  for (Lit L : Ls) {
    assert(std::abs(L) >= 1 && std::abs(L) < (int)Assign.size() &&
           "literal for unknown variable");
    if (!Clean.empty() && Clean.back() == L)
      continue;
    if (!Clean.empty() && Clean.back() == -L)
      return; // tautology
    if (valueOf(L) == 1)
      return; // already satisfied at level 0
    if (valueOf(L) == 0)
      continue; // already false at level 0
    Clean.push_back(L);
  }

  if (Clean.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Clean.size() == 1) {
    if (valueOf(Clean[0]) == Undef)
      enqueue(Clean[0], -1);
    if (propagate() != -1)
      Unsatisfiable = true;
    return;
  }

  Clauses.push_back({Clean, /*Learned=*/false});
  unsigned Idx = (unsigned)Clauses.size() - 1;
  Watches[watchIndex(-Clean[0])].push_back({Idx, Clean[1]});
  Watches[watchIndex(-Clean[1])].push_back({Idx, Clean[0]});
}

void SatSolver::enqueue(Lit L, int ReasonClause) {
  int V = std::abs(L);
  assert(Assign[V] == Undef && "enqueue of assigned variable");
  Assign[V] = L > 0 ? 1 : 0;
  Level[V] = (int)TrailLimits.size();
  Reason[V] = ReasonClause;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    ++Statistics.Propagations;
    // Clauses watching -P must find a new watch or propagate/conflict.
    std::vector<Watcher> &WL = Watches[watchIndex(P)];
    size_t Keep = 0;
    for (size_t I = 0; I != WL.size(); ++I) {
      Watcher W = WL[I];
      if (valueOf(W.Blocker) == 1) {
        WL[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.ClauseIdx];
      // Normalize: the false literal (-P) goes to position 1.
      if (C.Lits[0] == -P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == -P);
      if (valueOf(C.Lits[0]) == 1) {
        WL[Keep++] = {W.ClauseIdx, C.Lits[0]};
        continue;
      }
      // Search for a non-false literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K != C.Lits.size(); ++K) {
        if (valueOf(C.Lits[K]) != 0) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[watchIndex(-C.Lits[1])].push_back(
              {W.ClauseIdx, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WL[Keep++] = W;
      if (valueOf(C.Lits[0]) == 0) {
        // Conflict: restore untouched watchers and report.
        for (size_t K = I + 1; K != WL.size(); ++K)
          WL[Keep++] = WL[K];
        WL.resize(Keep);
        PropHead = Trail.size();
        return (int)W.ClauseIdx;
      }
      enqueue(C.Lits[0], (int)W.ClauseIdx);
    }
    WL.resize(Keep);
  }
  return -1;
}

void SatSolver::bumpVar(int V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
    // The uniform rescale can collapse nearby activities onto one value,
    // which changes relative order under the index tie-break — restore the
    // heap invariant wholesale.
    heapRebuild();
    return;
  }
  if (HeapPos[V] != -1)
    heapSiftUp((size_t)HeapPos[V]);
}

void SatSolver::decayActivities() { VarInc /= 0.95; }

void SatSolver::analyze(int ConflictClause, std::vector<Lit> &Learnt,
                        int &BacktrackLevel) {
  // Standard 1UIP scheme.
  Learnt.clear();
  Learnt.push_back(0); // slot for the asserting literal
  int PathCount = 0;
  Lit P = 0;
  size_t TrailIdx = Trail.size();
  int CurLevel = (int)TrailLimits.size();
  int ClauseIdx = ConflictClause;

  do {
    assert(ClauseIdx != -1 && "reason missing during conflict analysis");
    Clause &C = Clauses[ClauseIdx];
    for (size_t K = (P == 0 ? 0 : 1); K != C.Lits.size(); ++K) {
      Lit Q = C.Lits[K];
      int V = std::abs(Q);
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (Level[V] >= CurLevel)
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Next literal on the trail to resolve on.
    while (!Seen[std::abs(Trail[--TrailIdx])])
      ;
    P = Trail[TrailIdx];
    Seen[std::abs(P)] = 0;
    ClauseIdx = Reason[std::abs(P)];
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = -P;

  // Compute backtrack level = max level among the other literals.
  BacktrackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t K = 1; K != Learnt.size(); ++K) {
    if (Level[std::abs(Learnt[K])] > BacktrackLevel) {
      BacktrackLevel = Level[std::abs(Learnt[K])];
      MaxIdx = K;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);

  for (Lit L : Learnt)
    Seen[std::abs(L)] = 0;
}

void SatSolver::backtrack(int TargetLevel) {
  if ((int)TrailLimits.size() <= TargetLevel)
    return;
  unsigned Limit = TrailLimits[TargetLevel];
  for (size_t I = Trail.size(); I > Limit; --I) {
    int V = std::abs(Trail[I - 1]);
    SavedPhase[V] = Assign[V];
    Assign[V] = Undef;
    Reason[V] = -1;
    heapInsert(V);
  }
  Trail.resize(Limit);
  TrailLimits.resize(TargetLevel);
  PropHead = Trail.size();
}

int SatSolver::pickBranchVar() {
  // Lazy deletion: variables assigned since their insertion surface at the
  // top and are discarded; the first unassigned top is the branch variable
  // (highest activity, lowest index on ties — matching the scan this heap
  // replaced, so search paths and solver stats are unchanged).
  while (!Heap.empty()) {
    if (Assign[Heap[0]] != Undef) {
      heapPopTop();
      continue;
    }
    return heapPopTop();
  }
  return 0;
}

uint64_t SatSolver::luby(uint64_t I) {
  // Knuth's formula for the Luby sequence.
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 1)
    ++K;
  while ((1ULL << K) - 1 != I + 1) {
    I = I - ((1ULL << K) - 1) + 1 - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ULL << (K - 1);
}

SatSolver::Result SatSolver::solve(uint64_t ConflictBudget,
                                   CancellationToken *Token) {
  LastStop = Stop::None;
  if (Unsatisfiable)
    return Result::Unsat;
  if (propagate() != -1) {
    Unsatisfiable = true;
    return Result::Unsat;
  }

  uint64_t RestartNum = 0;
  uint64_t RestartLimit = 64 * luby(RestartNum);
  uint64_t ConflictsAtRestart = 0;

  for (;;) {
    int Conflict = propagate();
    if (Conflict != -1) {
      ++Statistics.Conflicts;
      ++ConflictsAtRestart;
      if (TrailLimits.empty()) {
        Unsatisfiable = true;
        return Result::Unsat;
      }
      if (ConflictBudget && Statistics.Conflicts >= ConflictBudget) {
        LastStop = Stop::ConflictBudget;
        return Result::Unknown;
      }
      if (Token && Token->consume(1)) {
        LastStop = Stop::Cancelled;
        return Result::Unknown;
      }

      std::vector<Lit> Learnt;
      int BTLevel;
      analyze(Conflict, Learnt, BTLevel);
      backtrack(BTLevel);

      Statistics.LearnedLiterals += Learnt.size();
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], -1);
      } else {
        Clauses.push_back({Learnt, /*Learned=*/true});
        unsigned Idx = (unsigned)Clauses.size() - 1;
        Watches[watchIndex(-Learnt[0])].push_back({Idx, Learnt[1]});
        Watches[watchIndex(-Learnt[1])].push_back({Idx, Learnt[0]});
        ++Statistics.LearnedClauses;
        enqueue(Learnt[0], (int)Idx);
      }
      decayActivities();

      if (ConflictsAtRestart >= RestartLimit) {
        ++Statistics.Restarts;
        ++RestartNum;
        RestartLimit = 64 * luby(RestartNum);
        ConflictsAtRestart = 0;
        backtrack(0);
      }
      continue;
    }

    int V = pickBranchVar();
    if (V == 0)
      return Result::Sat; // all variables assigned
    // Cooperate with the iteration watchdog on conflict-free instances
    // too (pure propagation chains never reach the conflict branch).
    if (Token && Token->consume(1)) {
      LastStop = Stop::Cancelled;
      return Result::Unknown;
    }
    ++Statistics.Decisions;
    TrailLimits.push_back((unsigned)Trail.size());
    enqueue(SavedPhase[V] == 1 ? V : -V, -1);
  }
}

bool SatSolver::modelValue(int Var) const {
  assert(Var >= 1 && Var < (int)Assign.size());
  return Assign[Var] == 1;
}
