//===- smt/Term.h - Bit-vector term DAG ------------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed bit-vector terms — the intermediate language between the IR
/// and the SAT solver. The refinement checker encodes source and target
/// functions as terms (value + poison + UB wires), and the bit-blaster
/// lowers terms to CNF. A concrete evaluator over terms supports model
/// confirmation and encoder cross-checking.
///
//===----------------------------------------------------------------------===//

#ifndef SMT_TERM_H
#define SMT_TERM_H

#include "support/APInt.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace alive {

enum class TermKind {
  Var,   ///< free bit-vector variable
  Const, ///< literal APInt
  // Bitwise.
  And,
  Or,
  Xor,
  Not,
  // Arithmetic (modulo 2^w).
  Add,
  Sub,
  Mul,
  UDiv, ///< total: value when divisor==0 is unconstrained via fresh var
  URem,
  SDiv,
  SRem,
  Shl,  ///< oversized shift amount yields 0 (guarded by poison wires)
  LShr,
  AShr,
  // Predicates: width-1 results.
  Eq,
  Ult,
  Slt,
  // Structure.
  Ite, ///< ops: cond (w=1), then, else
  ZExt,
  SExt,
  Trunc,
};

class TermBuilder;

/// An immutable, hash-consed term node.
struct Term {
  TermKind Kind;
  unsigned Width;
  std::vector<const Term *> Ops;
  APInt ConstVal;    ///< Const only
  unsigned VarId = 0; ///< Var only
  std::string VarName; ///< Var only, for diagnostics

  bool isConst() const { return Kind == TermKind::Const; }
  bool isConstZero() const { return isConst() && ConstVal.isZero(); }
  bool isConstOnes() const { return isConst() && ConstVal.isAllOnes(); }
};

using TermRef = const Term *;

/// Owns terms and interns them structurally. All terms from one builder
/// share its lifetime.
class TermBuilder {
public:
  TermBuilder() = default;
  TermBuilder(const TermBuilder &) = delete;
  TermBuilder &operator=(const TermBuilder &) = delete;

  /// Fresh free variable of \p Width bits.
  TermRef mkVar(unsigned Width, const std::string &Name = "");
  TermRef mkConst(const APInt &V);
  TermRef mkConst(unsigned Width, uint64_t V) {
    return mkConst(APInt(Width, V));
  }
  TermRef mkTrue() { return mkConst(1, 1); }
  TermRef mkFalse() { return mkConst(1, 0); }
  TermRef mkBool(bool B) { return mkConst(1, B ? 1 : 0); }

  TermRef mkNot(TermRef A);
  TermRef mkAnd(TermRef A, TermRef B);
  TermRef mkOr(TermRef A, TermRef B);
  TermRef mkXor(TermRef A, TermRef B);
  TermRef mkAdd(TermRef A, TermRef B);
  TermRef mkSub(TermRef A, TermRef B);
  TermRef mkMul(TermRef A, TermRef B);
  TermRef mkUDiv(TermRef A, TermRef B);
  TermRef mkURem(TermRef A, TermRef B);
  TermRef mkSDiv(TermRef A, TermRef B);
  TermRef mkSRem(TermRef A, TermRef B);
  TermRef mkShl(TermRef A, TermRef B);
  TermRef mkLShr(TermRef A, TermRef B);
  TermRef mkAShr(TermRef A, TermRef B);
  TermRef mkEq(TermRef A, TermRef B);
  TermRef mkNe(TermRef A, TermRef B) { return mkNot(mkEq(A, B)); }
  TermRef mkUlt(TermRef A, TermRef B);
  TermRef mkUle(TermRef A, TermRef B) { return mkNot(mkUlt(B, A)); }
  TermRef mkSlt(TermRef A, TermRef B);
  TermRef mkSle(TermRef A, TermRef B) { return mkNot(mkSlt(B, A)); }
  TermRef mkIte(TermRef C, TermRef T, TermRef E);
  TermRef mkZExt(TermRef A, unsigned Width);
  TermRef mkSExt(TermRef A, unsigned Width);
  TermRef mkTrunc(TermRef A, unsigned Width);

  /// Boolean (width-1) conveniences.
  TermRef mkImplies(TermRef A, TermRef B) { return mkOr(mkNot(A), B); }

  /// Number of distinct variables created so far.
  unsigned numVars() const { return NextVarId; }

  /// Concretely evaluates \p T under an assignment of variable ids to
  /// values. Division by zero yields 0 (matching the "total" convention;
  /// callers guard real division UB with separate wires).
  APInt evaluate(TermRef T,
                 const std::map<unsigned, APInt> &VarAssign) const;

private:
  TermRef intern(Term &&T);

  struct Key {
    TermKind Kind;
    unsigned Width;
    std::vector<TermRef> Ops;
    std::pair<uint64_t, uint64_t> ConstParts;
    unsigned VarId;
    bool operator<(const Key &O) const {
      if (Kind != O.Kind)
        return Kind < O.Kind;
      if (Width != O.Width)
        return Width < O.Width;
      if (Ops != O.Ops)
        return Ops < O.Ops;
      if (ConstParts != O.ConstParts)
        return ConstParts < O.ConstParts;
      return VarId < O.VarId;
    }
  };
  std::map<Key, std::unique_ptr<Term>> Pool;
  unsigned NextVarId = 0;
};

} // namespace alive

#endif // SMT_TERM_H
