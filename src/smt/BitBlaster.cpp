//===- smt/BitBlaster.cpp - Term -> CNF lowering ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/BitBlaster.h"

#include <cassert>

using namespace alive;

BitBlaster::BitBlaster(SatSolver &Solver) : Solver(Solver) {
  TrueLit = Solver.newVar();
  Solver.addClause(TrueLit);
}

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  if (A == -TrueLit || B == -TrueLit)
    return -TrueLit;
  if (A == TrueLit)
    return B;
  if (B == TrueLit)
    return A;
  if (A == B)
    return A;
  if (A == -B)
    return -TrueLit;
  Lit R = freshLit();
  Solver.addClause(-R, A);
  Solver.addClause(-R, B);
  Solver.addClause(R, -A, -B);
  return R;
}

Lit BitBlaster::mkOr(Lit A, Lit B) { return -mkAnd(-A, -B); }

Lit BitBlaster::mkXor(Lit A, Lit B) {
  if (A == TrueLit)
    return -B;
  if (B == TrueLit)
    return -A;
  if (A == -TrueLit)
    return B;
  if (B == -TrueLit)
    return A;
  if (A == B)
    return -TrueLit;
  if (A == -B)
    return TrueLit;
  Lit R = freshLit();
  Solver.addClause(-R, A, B);
  Solver.addClause(-R, -A, -B);
  Solver.addClause(R, -A, B);
  Solver.addClause(R, A, -B);
  return R;
}

Lit BitBlaster::mkMux(Lit Sel, Lit T, Lit E) {
  if (Sel == TrueLit)
    return T;
  if (Sel == -TrueLit)
    return E;
  if (T == E)
    return T;
  return mkOr(mkAnd(Sel, T), mkAnd(-Sel, E));
}

std::vector<Lit> BitBlaster::addBits(const std::vector<Lit> &A,
                                     const std::vector<Lit> &B, Lit CarryIn) {
  assert(A.size() == B.size());
  std::vector<Lit> Sum(A.size());
  Lit Carry = CarryIn;
  for (size_t I = 0; I != A.size(); ++I) {
    Lit AxB = mkXor(A[I], B[I]);
    Sum[I] = mkXor(AxB, Carry);
    // carry-out = (a & b) | (carry & (a ^ b))
    Carry = mkOr(mkAnd(A[I], B[I]), mkAnd(Carry, AxB));
  }
  return Sum;
}

std::vector<Lit> BitBlaster::negate(const std::vector<Lit> &A) {
  std::vector<Lit> NotA(A.size());
  for (size_t I = 0; I != A.size(); ++I)
    NotA[I] = -A[I];
  std::vector<Lit> Zero(A.size(), -TrueLit);
  return addBits(NotA, Zero, TrueLit);
}

std::vector<Lit> BitBlaster::mulBits(const std::vector<Lit> &A,
                                     const std::vector<Lit> &B) {
  size_t W = A.size();
  std::vector<Lit> Acc(W, -TrueLit);
  for (size_t I = 0; I != W; ++I) {
    // Partial product: (A << I) & B[I], added into the accumulator.
    std::vector<Lit> Partial(W, -TrueLit);
    for (size_t J = I; J != W; ++J)
      Partial[J] = mkAnd(A[J - I], B[I]);
    Acc = addBits(Acc, Partial, -TrueLit);
  }
  return Acc;
}

Lit BitBlaster::ultBit(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  // Borrow chain of A - B: borrow_{i+1} = (~a&b) | (borrow & ~(a^b)).
  Lit Borrow = -TrueLit;
  for (size_t I = 0; I != A.size(); ++I) {
    Lit NotAandB = mkAnd(-A[I], B[I]);
    Lit Same = -mkXor(A[I], B[I]);
    Borrow = mkOr(NotAandB, mkAnd(Borrow, Same));
  }
  return Borrow;
}

Lit BitBlaster::eqBit(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  Lit R = TrueLit;
  for (size_t I = 0; I != A.size(); ++I)
    R = mkAnd(R, -mkXor(A[I], B[I]));
  return R;
}

Lit BitBlaster::isZero(const std::vector<Lit> &A) {
  Lit AnyBit = -TrueLit;
  for (Lit L : A)
    AnyBit = mkOr(AnyBit, L);
  return -AnyBit;
}

void BitBlaster::udivrem(const std::vector<Lit> &A, const std::vector<Lit> &B,
                         std::vector<Lit> &Quot, std::vector<Lit> &Rem) {
  // Restoring division, MSB first.
  size_t W = A.size();
  Quot.assign(W, -TrueLit);
  Rem.assign(W, -TrueLit);
  for (size_t Step = W; Step-- > 0;) {
    // Rem = (Rem << 1) | A[Step]
    for (size_t I = W; I-- > 1;)
      Rem[I] = Rem[I - 1];
    Rem[0] = A[Step];
    // If Rem >= B: Rem -= B, Quot[Step] = 1.
    Lit GE = -ultBit(Rem, B);
    std::vector<Lit> Diff = addBits(Rem, negate(B), -TrueLit);
    Rem = muxBits(GE, Diff, Rem);
    Quot[Step] = GE;
  }
  // Total convention for B == 0: Quot = 0, Rem = A. The restoring loop
  // already yields Rem = A (never subtracts... it would subtract since
  // Rem >= 0 is always true), so mux explicitly.
  Lit BZero = isZero(B);
  std::vector<Lit> Zero(W, -TrueLit);
  Quot = muxBits(BZero, Zero, Quot);
  Rem = muxBits(BZero, A, Rem);
}

std::vector<Lit> BitBlaster::muxBits(Lit Sel, const std::vector<Lit> &T,
                                     const std::vector<Lit> &E) {
  assert(T.size() == E.size());
  std::vector<Lit> R(T.size());
  for (size_t I = 0; I != T.size(); ++I)
    R[I] = mkMux(Sel, T[I], E[I]);
  return R;
}

std::vector<Lit> BitBlaster::shiftBits(TermKind Kind,
                                       const std::vector<Lit> &A,
                                       const std::vector<Lit> &Amt) {
  size_t W = A.size();
  Lit Fill = Kind == TermKind::AShr ? A[W - 1] : -TrueLit;

  std::vector<Lit> Cur = A;
  // Barrel shifter: stage i shifts by 2^i when amount bit i is set.
  for (size_t Stage = 0; (1ULL << Stage) < W; ++Stage) {
    size_t S = 1ULL << Stage;
    std::vector<Lit> Shifted(W);
    for (size_t I = 0; I != W; ++I) {
      switch (Kind) {
      case TermKind::Shl:
        Shifted[I] = I >= S ? Cur[I - S] : -TrueLit;
        break;
      case TermKind::LShr:
        Shifted[I] = I + S < W ? Cur[I + S] : -TrueLit;
        break;
      case TermKind::AShr:
        Shifted[I] = I + S < W ? Cur[I + S] : Fill;
        break;
      default:
        assert(false && "not a shift");
      }
    }
    Cur = muxBits(Amt[Stage], Shifted, Cur);
  }

  // Amount bits beyond the barrel stages imply amount >= W: full fill.
  Lit TooBig = -TrueLit;
  size_t Stages = 0;
  while ((1ULL << Stages) < W)
    ++Stages;
  for (size_t I = Stages; I != W; ++I)
    TooBig = mkOr(TooBig, Amt[I]);
  // Also amounts within stage range but >= W (non-power-of-two widths) are
  // naturally handled by the barrel stages shifting everything out; Shl and
  // LShr produce zeros and AShr produces sign fill, matching the total
  // semantics of Term evaluation.
  std::vector<Lit> FillVec(W, Fill);
  return muxBits(TooBig, FillVec, Cur);
}

const std::vector<Lit> &BitBlaster::blast(TermRef T) {
  auto It = Cache.find(T);
  if (It != Cache.end())
    return It->second;

  std::vector<Lit> Bits;
  auto Op = [&](unsigned I) -> const std::vector<Lit> & {
    return blast(T->Ops[I]);
  };

  switch (T->Kind) {
  case TermKind::Var: {
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = freshLit();
    VarBits[T->VarId] = {T->Width, Bits};
    break;
  }
  case TermKind::Const: {
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = T->ConstVal.testBit(I) ? TrueLit : -TrueLit;
    break;
  }
  case TermKind::And: {
    const auto &A = Op(0), &B = Op(1);
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = mkAnd(A[I], B[I]);
    break;
  }
  case TermKind::Or: {
    const auto &A = Op(0), &B = Op(1);
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = mkOr(A[I], B[I]);
    break;
  }
  case TermKind::Xor: {
    const auto &A = Op(0), &B = Op(1);
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = mkXor(A[I], B[I]);
    break;
  }
  case TermKind::Not: {
    const auto &A = Op(0);
    Bits.resize(T->Width);
    for (unsigned I = 0; I != T->Width; ++I)
      Bits[I] = -A[I];
    break;
  }
  case TermKind::Add:
    Bits = addBits(Op(0), Op(1), -TrueLit);
    break;
  case TermKind::Sub: {
    std::vector<Lit> NotB(T->Width);
    const auto &B = Op(1);
    for (unsigned I = 0; I != T->Width; ++I)
      NotB[I] = -B[I];
    Bits = addBits(Op(0), NotB, TrueLit);
    break;
  }
  case TermKind::Mul:
    Bits = mulBits(Op(0), Op(1));
    break;
  case TermKind::UDiv:
  case TermKind::URem: {
    std::vector<Lit> Q, R;
    udivrem(Op(0), Op(1), Q, R);
    Bits = T->Kind == TermKind::UDiv ? Q : R;
    break;
  }
  case TermKind::SDiv:
  case TermKind::SRem: {
    // |a| / |b| with sign corrections; total convention matches evaluate():
    // b == 0 -> quot 0, rem a (the unsigned core provides this on |a|,|b|;
    // sign fixes preserve it because |a| remainder maps back through the
    // a-sign correction).
    const auto &A = Op(0), &B = Op(1);
    Lit SignA = A[T->Width - 1], SignB = B[T->Width - 1];
    std::vector<Lit> AbsA = muxBits(SignA, negate(A), A);
    std::vector<Lit> AbsB = muxBits(SignB, negate(B), B);
    std::vector<Lit> Q, R;
    udivrem(AbsA, AbsB, Q, R);
    if (T->Kind == TermKind::SDiv) {
      Lit Neg = mkXor(SignA, SignB);
      Bits = muxBits(Neg, negate(Q), Q);
    } else {
      Bits = muxBits(SignA, negate(R), R);
    }
    break;
  }
  case TermKind::Shl:
  case TermKind::LShr:
  case TermKind::AShr:
    Bits = shiftBits(T->Kind, Op(0), Op(1));
    break;
  case TermKind::Eq:
    Bits = {eqBit(Op(0), Op(1))};
    break;
  case TermKind::Ult:
    Bits = {ultBit(Op(0), Op(1))};
    break;
  case TermKind::Slt: {
    // Flip sign bits and compare unsigned.
    std::vector<Lit> A = Op(0), B = Op(1);
    A[A.size() - 1] = -A[A.size() - 1];
    B[B.size() - 1] = -B[B.size() - 1];
    Bits = {ultBit(A, B)};
    break;
  }
  case TermKind::Ite:
    Bits = muxBits(blastBit(T->Ops[0]), Op(1), Op(2));
    break;
  case TermKind::ZExt: {
    Bits = Op(0);
    Bits.resize(T->Width, -TrueLit);
    break;
  }
  case TermKind::SExt: {
    Bits = Op(0);
    Lit Sign = Bits.back();
    Bits.resize(T->Width, Sign);
    break;
  }
  case TermKind::Trunc: {
    const auto &A = Op(0);
    Bits.assign(A.begin(), A.begin() + T->Width);
    break;
  }
  }

  assert(Bits.size() == T->Width && "blasted width mismatch");
  return Cache.emplace(T, std::move(Bits)).first->second;
}

APInt BitBlaster::modelValue(TermRef T) {
  const std::vector<Lit> &Bits = blast(T);
  APInt V = APInt::getZero(T->Width);
  for (unsigned I = 0; I != T->Width; ++I) {
    Lit L = Bits[I];
    bool Val = L > 0 ? Solver.modelValue(L) : !Solver.modelValue(-L);
    if (Val)
      V.setBit(I);
  }
  return V;
}

std::map<unsigned, APInt> BitBlaster::extractAssignment() {
  std::map<unsigned, APInt> Out;
  for (const auto &[VarId, WidthBits] : VarBits) {
    const auto &[Width, Bits] = WidthBits;
    APInt V = APInt::getZero(Width);
    for (unsigned I = 0; I != Width; ++I) {
      Lit L = Bits[I];
      bool Val = L > 0 ? Solver.modelValue(L) : !Solver.modelValue(-L);
      if (Val)
        V.setBit(I);
    }
    Out.emplace(VarId, V);
  }
  return Out;
}
