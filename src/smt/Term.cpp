//===- smt/Term.cpp - Bit-vector term DAG ----------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"

#include <cassert>

using namespace alive;

TermRef TermBuilder::intern(Term &&T) {
  Key K{T.Kind, T.Width, T.Ops,
        {T.ConstVal.getLoBits64(), T.ConstVal.getHiBits64()},
        T.VarId};
  // Constants of different widths share (lo,hi) keys only within a width,
  // which Key::Width already distinguishes.
  auto &Slot = Pool[K];
  if (!Slot)
    Slot = std::make_unique<Term>(std::move(T));
  return Slot.get();
}

TermRef TermBuilder::mkVar(unsigned Width, const std::string &Name) {
  Term T;
  T.Kind = TermKind::Var;
  T.Width = Width;
  T.ConstVal = APInt::getZero(1);
  T.VarId = NextVarId++;
  T.VarName = Name;
  return intern(std::move(T));
}

TermRef TermBuilder::mkConst(const APInt &V) {
  Term T;
  T.Kind = TermKind::Const;
  T.Width = V.getBitWidth();
  T.ConstVal = V;
  return intern(std::move(T));
}

namespace {
bool bothConst(TermRef A, TermRef B) { return A->isConst() && B->isConst(); }
} // namespace

#define MK_BIN(NAME, KIND, FOLD)                                              \
  TermRef TermBuilder::NAME(TermRef A, TermRef B) {                           \
    assert(A->Width == B->Width && "width mismatch");                         \
    if (bothConst(A, B))                                                      \
      return mkConst(FOLD);                                                   \
    Term T;                                                                   \
    T.Kind = TermKind::KIND;                                                  \
    T.Width = A->Width;                                                       \
    T.Ops = {A, B};                                                           \
    T.ConstVal = APInt::getZero(1);                                           \
    return intern(std::move(T));                                              \
  }

MK_BIN(mkAnd, And, A->ConstVal & B->ConstVal)
MK_BIN(mkOr, Or, A->ConstVal | B->ConstVal)
MK_BIN(mkXor, Xor, A->ConstVal ^ B->ConstVal)
MK_BIN(mkAdd, Add, A->ConstVal + B->ConstVal)
MK_BIN(mkSub, Sub, A->ConstVal - B->ConstVal)
MK_BIN(mkMul, Mul, A->ConstVal *B->ConstVal)
#undef MK_BIN

#define MK_BIN_NOFOLD(NAME, KIND)                                             \
  TermRef TermBuilder::NAME(TermRef A, TermRef B) {                           \
    assert(A->Width == B->Width && "width mismatch");                         \
    Term T;                                                                   \
    T.Kind = TermKind::KIND;                                                  \
    T.Width = A->Width;                                                       \
    T.Ops = {A, B};                                                           \
    T.ConstVal = APInt::getZero(1);                                           \
    return intern(std::move(T));                                              \
  }

TermRef TermBuilder::mkUDiv(TermRef A, TermRef B) {
  assert(A->Width == B->Width && "width mismatch");
  if (bothConst(A, B) && !B->ConstVal.isZero())
    return mkConst(A->ConstVal.udiv(B->ConstVal));
  Term T;
  T.Kind = TermKind::UDiv;
  T.Width = A->Width;
  T.Ops = {A, B};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkURem(TermRef A, TermRef B) {
  assert(A->Width == B->Width && "width mismatch");
  if (bothConst(A, B) && !B->ConstVal.isZero())
    return mkConst(A->ConstVal.urem(B->ConstVal));
  Term T;
  T.Kind = TermKind::URem;
  T.Width = A->Width;
  T.Ops = {A, B};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

MK_BIN_NOFOLD(mkSDiv, SDiv)
MK_BIN_NOFOLD(mkSRem, SRem)
MK_BIN_NOFOLD(mkShl, Shl)
MK_BIN_NOFOLD(mkLShr, LShr)
MK_BIN_NOFOLD(mkAShr, AShr)
#undef MK_BIN_NOFOLD

TermRef TermBuilder::mkNot(TermRef A) {
  if (A->isConst())
    return mkConst(~A->ConstVal);
  // Involution: not(not(x)) == x.
  if (A->Kind == TermKind::Not)
    return A->Ops[0];
  Term T;
  T.Kind = TermKind::Not;
  T.Width = A->Width;
  T.Ops = {A};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkEq(TermRef A, TermRef B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A == B)
    return mkTrue();
  if (bothConst(A, B))
    return mkBool(A->ConstVal == B->ConstVal);
  Term T;
  T.Kind = TermKind::Eq;
  T.Width = 1;
  T.Ops = {A, B};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkUlt(TermRef A, TermRef B) {
  assert(A->Width == B->Width && "width mismatch");
  if (bothConst(A, B))
    return mkBool(A->ConstVal.ult(B->ConstVal));
  Term T;
  T.Kind = TermKind::Ult;
  T.Width = 1;
  T.Ops = {A, B};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkSlt(TermRef A, TermRef B) {
  assert(A->Width == B->Width && "width mismatch");
  if (bothConst(A, B))
    return mkBool(A->ConstVal.slt(B->ConstVal));
  Term T;
  T.Kind = TermKind::Slt;
  T.Width = 1;
  T.Ops = {A, B};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkIte(TermRef C, TermRef T, TermRef E) {
  assert(C->Width == 1 && "ite condition must be width 1");
  assert(T->Width == E->Width && "ite arm width mismatch");
  if (C->isConst())
    return C->ConstVal.isZero() ? E : T;
  if (T == E)
    return T;
  Term N;
  N.Kind = TermKind::Ite;
  N.Width = T->Width;
  N.Ops = {C, T, E};
  N.ConstVal = APInt::getZero(1);
  return intern(std::move(N));
}

TermRef TermBuilder::mkZExt(TermRef A, unsigned Width) {
  assert(Width >= A->Width);
  if (Width == A->Width)
    return A;
  if (A->isConst())
    return mkConst(A->ConstVal.zext(Width));
  Term T;
  T.Kind = TermKind::ZExt;
  T.Width = Width;
  T.Ops = {A};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkSExt(TermRef A, unsigned Width) {
  assert(Width >= A->Width);
  if (Width == A->Width)
    return A;
  if (A->isConst())
    return mkConst(A->ConstVal.sext(Width));
  Term T;
  T.Kind = TermKind::SExt;
  T.Width = Width;
  T.Ops = {A};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

TermRef TermBuilder::mkTrunc(TermRef A, unsigned Width) {
  assert(Width <= A->Width);
  if (Width == A->Width)
    return A;
  if (A->isConst())
    return mkConst(A->ConstVal.trunc(Width));
  Term T;
  T.Kind = TermKind::Trunc;
  T.Width = Width;
  T.Ops = {A};
  T.ConstVal = APInt::getZero(1);
  return intern(std::move(T));
}

APInt TermBuilder::evaluate(TermRef Root,
                            const std::map<unsigned, APInt> &VarAssign) const {
  std::map<TermRef, APInt> Memo;

  // Post-order evaluation with an explicit stack (terms can be deep).
  std::vector<TermRef> Stack{Root};
  while (!Stack.empty()) {
    TermRef T = Stack.back();
    if (Memo.count(T)) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (TermRef Op : T->Ops)
      if (!Memo.count(Op)) {
        Stack.push_back(Op);
        Ready = false;
      }
    if (!Ready)
      continue;
    Stack.pop_back();

    auto Val = [&](unsigned I) { return Memo.at(T->Ops[I]); };
    APInt R = APInt::getZero(T->Width);
    switch (T->Kind) {
    case TermKind::Var: {
      auto It = VarAssign.find(T->VarId);
      R = It != VarAssign.end() ? It->second : APInt::getZero(T->Width);
      assert(R.getBitWidth() == T->Width && "assignment width mismatch");
      break;
    }
    case TermKind::Const:
      R = T->ConstVal;
      break;
    case TermKind::And:
      R = Val(0) & Val(1);
      break;
    case TermKind::Or:
      R = Val(0) | Val(1);
      break;
    case TermKind::Xor:
      R = Val(0) ^ Val(1);
      break;
    case TermKind::Not:
      R = ~Val(0);
      break;
    case TermKind::Add:
      R = Val(0) + Val(1);
      break;
    case TermKind::Sub:
      R = Val(0) - Val(1);
      break;
    case TermKind::Mul:
      R = Val(0) * Val(1);
      break;
    case TermKind::UDiv:
      R = Val(1).isZero() ? APInt::getZero(T->Width) : Val(0).udiv(Val(1));
      break;
    case TermKind::URem:
      R = Val(1).isZero() ? Val(0) : Val(0).urem(Val(1));
      break;
    case TermKind::SDiv:
      R = Val(1).isZero() ? APInt::getZero(T->Width) : Val(0).sdiv(Val(1));
      break;
    case TermKind::SRem:
      R = Val(1).isZero() ? Val(0) : Val(0).srem(Val(1));
      break;
    case TermKind::Shl:
      R = Val(1).uge(APInt(T->Width, T->Width)) ? APInt::getZero(T->Width)
                                                : Val(0).shl(Val(1));
      break;
    case TermKind::LShr:
      R = Val(1).uge(APInt(T->Width, T->Width)) ? APInt::getZero(T->Width)
                                                : Val(0).lshr(Val(1));
      break;
    case TermKind::AShr: {
      if (Val(1).uge(APInt(T->Width, T->Width)))
        R = Val(0).isNegative() ? APInt::getAllOnes(T->Width)
                                : APInt::getZero(T->Width);
      else
        R = Val(0).ashr(Val(1));
      break;
    }
    case TermKind::Eq:
      R = APInt(1, Val(0) == Val(1));
      break;
    case TermKind::Ult:
      R = APInt(1, Val(0).ult(Val(1)));
      break;
    case TermKind::Slt:
      R = APInt(1, Val(0).slt(Val(1)));
      break;
    case TermKind::Ite:
      R = Val(0).isZero() ? Val(2) : Val(1);
      break;
    case TermKind::ZExt:
      R = Val(0).zext(T->Width);
      break;
    case TermKind::SExt:
      R = Val(0).sext(T->Width);
      break;
    case TermKind::Trunc:
      R = Val(0).trunc(T->Width);
      break;
    }
    Memo.emplace(T, R);
  }
  return Memo.at(Root);
}
