//===- tools/amut-opt.cpp - Standalone optimizer ----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone optimization step of the discrete-tools baseline (the `opt`
/// analog): parse, run a pipeline, print.
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tools/ToolCommon.h"

#include <cstdio>
#include <fstream>

using namespace alive;

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.positional().size() < 2) {
    std::puts("usage: amut-opt [-passes=O2] [-inject-bugs] in.ll out.ll");
    return 1;
  }
  BugInjectionContext Bugs;
  if (Args.has("inject-bugs"))
    Bugs.enableAll();

  std::string Err;
  auto M = parseModuleFile(Args.positional()[0], Err);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  PassManager PM;
  PM.setBugContext(&Bugs);
  if (!buildPipeline(Args.get("passes", "O2"), PM, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  try {
    PM.runToFixpoint(*M);
  } catch (const OptimizerCrash &C) {
    // The real tool would die on an assertion; exit abnormally.
    std::fprintf(stderr, "optimizer crash [PR%s]: %s\n",
                 bugInfo(C.Id).IssueId, C.What.c_str());
    return 134; // SIGABRT-style exit
  }

  std::ofstream Out(Args.positional()[1]);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 Args.positional()[1].c_str());
    return 1;
  }
  Out << printModule(*M);
  return 0;
}
