//===- tools/ToolCommon.h - Shared CLI helpers -----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal option parsing shared by the command-line tools.
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_TOOLCOMMON_H
#define TOOLS_TOOLCOMMON_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

namespace alive {

/// Parses "-flag", "-key=value" and positional arguments.
class ArgParser {
public:
  ArgParser(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.size() >= 2 && A[0] == '-') {
        std::string Key = A.substr(1);
        if (!Key.empty() && Key[0] == '-')
          Key = Key.substr(1);
        size_t Eq = Key.find('=');
        if (Eq == std::string::npos)
          Flags[Key] = "";
        else
          Flags[Key.substr(0, Eq)] = Key.substr(Eq + 1);
      } else {
        Positional.push_back(A);
      }
    }
  }

  bool has(const std::string &Key) const { return Flags.count(Key) != 0; }
  std::string get(const std::string &Key, const std::string &Default = "") const {
    auto It = Flags.find(Key);
    return It == Flags.end() || It->second.empty() ? Default : It->second;
  }
  uint64_t getInt(const std::string &Key, uint64_t Default) const {
    auto It = Flags.find(Key);
    return It == Flags.end() || It->second.empty()
               ? Default
               : std::stoull(It->second);
  }
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

/// Renders live progress on stderr. On a TTY the line is rewritten in
/// place (carriage return + erase-to-end) so a long campaign occupies one
/// screen line; when stderr is redirected — CI logs, `2>file` — it falls
/// back to one plain line per update, because control characters turn
/// captured logs into an unreadable smear.
class ProgressPrinter {
public:
  ProgressPrinter() : IsTTY(isatty(fileno(stderr)) != 0) {}

  void update(const std::string &Line) {
    if (IsTTY) {
      std::fprintf(stderr, "\r\x1b[K%s", Line.c_str());
      std::fflush(stderr);
      Dirty = true;
    } else {
      std::fprintf(stderr, "%s\n", Line.c_str());
    }
  }

  /// Terminates an in-place line (no-op when nothing is pending), so
  /// later output starts on a fresh line. Call once after the run.
  void finish() {
    if (Dirty) {
      std::fputc('\n', stderr);
      Dirty = false;
    }
  }

  bool tty() const { return IsTTY; }

private:
  bool IsTTY;
  bool Dirty = false;
};

} // namespace alive

#endif // TOOLS_TOOLCOMMON_H
