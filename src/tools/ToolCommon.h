//===- tools/ToolCommon.h - Shared CLI helpers -----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal option parsing shared by the command-line tools.
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_TOOLCOMMON_H
#define TOOLS_TOOLCOMMON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace alive {

/// Parses "-flag", "-key=value" and positional arguments.
class ArgParser {
public:
  ArgParser(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.size() >= 2 && A[0] == '-') {
        std::string Key = A.substr(1);
        if (!Key.empty() && Key[0] == '-')
          Key = Key.substr(1);
        size_t Eq = Key.find('=');
        if (Eq == std::string::npos)
          Flags[Key] = "";
        else
          Flags[Key.substr(0, Eq)] = Key.substr(Eq + 1);
      } else {
        Positional.push_back(A);
      }
    }
  }

  bool has(const std::string &Key) const { return Flags.count(Key) != 0; }
  std::string get(const std::string &Key, const std::string &Default = "") const {
    auto It = Flags.find(Key);
    return It == Flags.end() || It->second.empty() ? Default : It->second;
  }
  uint64_t getInt(const std::string &Key, uint64_t Default) const {
    auto It = Flags.find(Key);
    return It == Flags.end() || It->second.empty()
               ? Default
               : std::stoull(It->second);
  }
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

} // namespace alive

#endif // TOOLS_TOOLCOMMON_H
