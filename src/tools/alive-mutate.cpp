//===- tools/alive-mutate.cpp - The main fuzzing tool ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alive-mutate command-line tool: runs the in-process
/// mutate-optimize-verify loop over an input corpus (one or more .ll
/// files; paper §III and the artifact appendix's CLI: -n, -t, -seed,
/// -passes, -save-dir, -saveAll), sharded across -j worker threads with a
/// deterministic merge. The survivability flags (-step-budget,
/// -iter-timeout, -isolate, -checkpoint/-resume, -quarantine) keep a long
/// campaign alive across hangs and optimizer crashes.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Forensics.h"
#include "core/MetricsExporter.h"
#include "core/RunReport.h"
#include "corpus/CorpusLoader.h"
#include "corpus/Distill.h"
#include "opt/BugInjection.h"
#include "support/FaultPlane.h"
#include "tools/ToolCommon.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include <unistd.h>

using namespace alive;

static void printHelp() {
  std::puts(
      "usage: alive-mutate [options] input.ll [more.ll ...]\n"
      "  -n=<count>        number of mutants to generate (default 1000)\n"
      "  -t=<seconds>      time budget instead of a mutant count\n"
      "  -seed=<n>         base PRNG seed (default 1)\n"
      "  -j=<n>            worker threads (0 = all hardware threads; "
      "default 1)\n"
      "  -passes=<desc>    pipeline, e.g. O2 or instcombine,dce (default O2)\n"
      "  -max-mutations=<n> mutations per function per mutant (default 3)\n"
      "  -no-tv-cache      disable the per-worker TV verdict cache\n"
      "  -tv-cache-size=<n> TV verdict cache capacity (default 4096)\n"
      "  -shared-tv-cache  share one canonicalized verdict cache across\n"
      "                    all workers (alpha-renamed, commutative-\n"
      "                    normalized keys; bug report stays -j invariant)\n"
      "  -tv-cache-shards=<n> lock-stripe count of the shared cache\n"
      "                    (rounded up to a power of two; default 16)\n"
      "  -tv-prescreen=<n> concrete trials before each symbolic check;\n"
      "                    cheap counterexamples skip the SAT query\n"
      "                    (default 0 = off)\n"
      "  -feedback         feedback-directed scheduling: per-rule coverage\n"
      "                    steers seed energy and family weights (needs -n;\n"
      "                    -feedback=off is the default blind schedule)\n"
      "  -feedback-epoch=<n> seed offsets per schedule epoch (default 256)\n"
      "  -distill          after a -feedback campaign, print the minimal\n"
      "                    corpus function set covering everything observed\n"
      "  -no-skip-unchanged verify even functions no pass modified\n"
      "  -save-dir=<dir>   write mutants to <dir> (created if missing)\n"
      "  -saveAll          save every mutant, not only failing ones\n"
      "  -inject-bugs      enable the 33 seeded Table I defects\n"
      "  -step-budget=<n>  deterministic per-phase watchdog budget; a\n"
      "                    tripped iteration is recorded as a timeout\n"
      "  -iter-timeout=<s> wall-clock backstop per iteration phase (may be\n"
      "                    fractional; timeouts are volatile stats)\n"
      "  -quarantine=<n>   back off a function's refinement checks after\n"
      "                    <n> watchdog timeouts (default: off)\n"
      "  -isolate          run each shard in a supervised child process;\n"
      "                    fatal signals become recorded crash bugs and\n"
      "                    the shard restarts (requires -n)\n"
      "  -isolate-mem-mb=<n> RLIMIT_AS for isolated shards, in MiB\n"
      "  -isolate-cpu-s=<n>  RLIMIT_CPU for isolated shards, in seconds\n"
      "  -no-signal-guard  do not contain optimizer SIGABRT/SIGSEGV/...\n"
      "                    in-process (guard is on by default; -isolate\n"
      "                    supersedes it with process isolation)\n"
      "  -fanout=<n>       supervised multi-process campaign: <n> shard\n"
      "                    leases with heartbeat deadlines, bounded-backoff\n"
      "                    restart of dead/wedged children and partial-\n"
      "                    result harvest (requires -n; the deterministic\n"
      "                    report stays byte-identical to -j1 unless a\n"
      "                    lease is permanently lost)\n"
      "  -retry-max=<n>    restart budget per shard lease; checkpoint\n"
      "                    progress refills it (default 5)\n"
      "  -retry-base=<s>   first restart backoff delay, doubling per\n"
      "                    consecutive failure (default 0.05)\n"
      "  -retry-cap=<s>    restart backoff ceiling (default 5)\n"
      "  -lease-deadline=<s> heartbeat deadline after which a wedged child\n"
      "                    is killed and its lease retried (default 30)\n"
      "  -inject-fault=<pt>:<spec>[,...] arm deterministic fault injection\n"
      "                    at named syscall edges; spec is nth:<n> (exactly\n"
      "                    the nth call), every:<k>, or p:<prob> (dedicated\n"
      "                    RNG stream — campaign randomness and the\n"
      "                    deterministic report are never perturbed)\n"
      "  -fault-seed=<n>   reseed the fault-injection probability streams\n"
      "  -checkpoint=<dir> write periodic campaign checkpoints to <dir>\n"
      "  -checkpoint-interval=<n> iterations between checkpoints\n"
      "  -resume           resume the campaign recorded in -checkpoint\n"
      "  -progress=<sec>   print campaign progress every <sec> seconds\n"
      "  -metrics-port=<p> serve live observability HTTP endpoints on\n"
      "                    127.0.0.1:<p> (/metrics /status /healthz /readyz\n"
      "                    /events /series /dashboard, plus /profile.json\n"
      "                    and /flamegraph.json with -profile; 0 = ephemeral\n"
      "                    port, printed on stdout). Observer-only: the\n"
      "                    report stays byte-identical with or without the\n"
      "                    server\n"
      "  -metrics-interval=<s> seconds between /series samples (default 1)\n"
      "  -health-stale=<s> /healthz flips to 503 when a live shard makes no\n"
      "                    progress for <s> seconds (default 10; 0 = off)\n"
      "  -profile          deep cost attribution: per-query solver effort\n"
      "                    (top-K table in the report, -j invariant), a\n"
      "                    wall-clock sampling profiler over the worker\n"
      "                    span stacks, and cache shard heat\n"
      "  -profile-topk=<n> most-expensive-query tracker capacity "
      "(default 16)\n"
      "  -profile-interval=<ms> sampling profiler period (default 10)\n"
      "  -stats-json=<file> write a schema-versioned JSON run report\n"
      "  -trace-json=<file> write a Chrome trace (flight recorder, one\n"
      "                    track per worker; open in Perfetto)\n"
      "  -trace-capacity=<n> flight-recorder ring capacity (default 16384)\n"
      "  -bug-bundles=<dir> write a replayable forensics bundle per bug\n"
      "  -replay <bundle>  re-run a recorded bundle; exit 0 only when the\n"
      "                    recorded verdict reproduces\n"
      "  -report           print bug records at the end\n"
      "  -help             this text");
}

// SIGINT/SIGTERM wind the campaign down at the next iteration boundary:
// run() returns normally, so -stats-json, the final checkpoint and the
// interrupted-note all still happen. A second signal gives up and exits
// with the conventional 128+SIGINT code. Everything the handler touches
// is async-signal-safe (atomic load, atomic store, _exit).
static std::atomic<alive::CampaignEngine *> GSignalEngine{nullptr};
static volatile std::sig_atomic_t GSignalSeen = 0;

static void onTerminateSignal(int) {
  if (GSignalSeen) {
    _exit(130);
  }
  GSignalSeen = 1;
  if (alive::CampaignEngine *E =
          GSignalEngine.load(std::memory_order_relaxed))
    E->requestStop();
}

static void installTerminateHandler(alive::CampaignEngine *E) {
  GSignalEngine.store(E, std::memory_order_relaxed);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTerminateSignal;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

/// The -replay mode: everything the iteration needs is inside the bundle.
static int runReplay(const std::string &Bundle) {
  ReplayResult R = replayBundle(Bundle);
  std::printf("replay: %s\n", Bundle.c_str());
  if (!R.Kind.empty())
    std::printf("  seed=%llu kind=%s%s%s recorded=%s\n",
                (unsigned long long)R.Seed, R.Kind.c_str(),
                R.Function.empty() ? "" : " function=",
                R.Function.c_str(), R.ExpectedVerdict.c_str());
  if (R.Ok) {
    std::printf("  reproduced: yes (verdict '%s')\n",
                R.ActualVerdict.c_str());
    return 0;
  }
  std::fprintf(stderr, "replay FAILED: %s\n", R.Error.c_str());
  return 1;
}

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.has("replay")) {
    // A replay re-runs exactly one recorded iteration in-process; campaign
    // flags make no sense next to it. Reject instead of silently ignoring.
    for (const char *Bad : {"j", "resume", "isolate", "checkpoint"})
      if (Args.has(Bad)) {
        std::fprintf(stderr,
                     "error: -replay cannot be combined with -%s: a replay "
                     "re-runs one recorded bundle, not a campaign; drop -%s "
                     "or run the campaign without -replay\n",
                     Bad, Bad);
        return 1;
      }
    // Both `-replay=<bundle>` and `-replay <bundle>` (positional) work.
    std::string Bundle = Args.get("replay");
    if (Bundle.empty() && !Args.positional().empty())
      Bundle = Args.positional()[0];
    if (Bundle.empty()) {
      std::fprintf(stderr, "error: -replay needs a bundle directory\n");
      return 1;
    }
    return runReplay(Bundle);
  }
  if (Args.has("help") || Args.positional().empty()) {
    printHelp();
    return Args.has("help") ? 0 : 1;
  }

  FuzzOptions Opts;
  Opts.Passes = Args.get("passes", "O2");
  Opts.Iterations = Args.getInt("n", Args.has("t") ? 0 : 1000);
  Opts.TimeLimitSeconds = (double)Args.getInt("t", 0);
  Opts.BaseSeed = Args.getInt("seed", 1);
  Opts.Mutation.MaxMutationsPerFunction =
      (unsigned)Args.getInt("max-mutations", 3);
  Opts.SaveDir = Args.get("save-dir");
  Opts.SaveAll = Args.has("saveAll");
  Opts.TVCacheSize = Args.has("no-tv-cache")
                         ? 0
                         : (size_t)Args.getInt("tv-cache-size",
                                               Opts.TVCacheSize);
  Opts.UseSharedTVCache = Args.has("shared-tv-cache");
  Opts.TVCacheShards =
      (size_t)Args.getInt("tv-cache-shards", Opts.TVCacheShards);
  Opts.TV.PrescreenTrials = (unsigned)Args.getInt("tv-prescreen", 0);
  Opts.SkipUnchanged = !Args.has("no-skip-unchanged");
  Opts.Feedback.Enabled = Args.has("feedback") && Args.get("feedback") != "off";
  Opts.Feedback.EpochLength = (unsigned)Args.getInt("feedback-epoch", 256);
  if (Args.has("inject-bugs"))
    Opts.Bugs.enableAll();
  Opts.BugBundleDir = Args.get("bug-bundles");
  std::string TracePath = Args.get("trace-json");
  Opts.TraceEnabled = !TracePath.empty();
  Opts.TraceCapacity =
      (size_t)Args.getInt("trace-capacity", TraceRecorder::DefaultCapacity);
  Opts.Profile.Enabled = Args.has("profile");
  Opts.Profile.TopK = (unsigned)Args.getInt("profile-topk", 16);
  Opts.Profile.SamplingIntervalMs =
      (unsigned)Args.getInt("profile-interval", 10);
  if (!Opts.Profile.Enabled &&
      (Args.has("profile-topk") || Args.has("profile-interval"))) {
    std::fprintf(stderr, "error: -profile-topk/-profile-interval tune "
                         "-profile; add -profile or drop them\n");
    return 1;
  }

  // Survivability. The in-process signal guard is on by default for the
  // fuzzing tool — a real optimizer abort should be a recorded crash bug,
  // not a dead campaign — and off under -isolate, where process isolation
  // both contains the signal and survives the signals no in-process
  // handler can (SIGKILL from RLIMIT_AS, stack-smashing SIGSEGV).
  SurvivalOptions &SV = Opts.Survival;
  SV.StepBudget = Args.getInt("step-budget", 0);
  if (std::string V = Args.get("iter-timeout"); !V.empty())
    SV.WallTimeoutSeconds = std::atof(V.c_str());
  SV.QuarantineThreshold = (unsigned)Args.getInt("quarantine", 0);
  SV.Isolate = Args.has("isolate");
  SV.IsolateMemMB = Args.getInt("isolate-mem-mb", 0);
  SV.IsolateCpuSeconds = Args.getInt("isolate-cpu-s", 0);
  SV.Fanout = (unsigned)Args.getInt("fanout", 0);
  SV.RetryMaxAttempts =
      (unsigned)Args.getInt("retry-max", SV.RetryMaxAttempts);
  if (std::string V = Args.get("retry-base"); !V.empty())
    SV.RetryBaseDelay = std::atof(V.c_str());
  if (std::string V = Args.get("retry-cap"); !V.empty())
    SV.RetryMaxDelay = std::atof(V.c_str());
  if (std::string V = Args.get("lease-deadline"); !V.empty())
    SV.LeaseHeartbeatSeconds = std::atof(V.c_str());
  SV.SignalGuard = !Args.has("no-signal-guard") && !SV.Isolate && !SV.Fanout;
  SV.CheckpointDir = Args.get("checkpoint");
  SV.CheckpointInterval = Args.getInt("checkpoint-interval", 0);
  SV.Resume = Args.has("resume");

  // The fault plane arms before anything it guards can run. Unknown point
  // names and malformed specs are config errors, not warnings: a chaos
  // test that silently armed nothing would prove nothing.
  if (std::string Faults = Args.get("inject-fault"); !Faults.empty()) {
    if (Args.has("fault-seed"))
      FaultPlane::instance().setSeed((uint64_t)Args.getInt("fault-seed", 0));
    std::string FaultErr;
    if (!FaultPlane::instance().arm(Faults, FaultErr)) {
      std::fprintf(stderr, "error: %s\n", FaultErr.c_str());
      return 1;
    }
  } else if (Args.has("fault-seed")) {
    std::fprintf(stderr, "error: -fault-seed tunes -inject-fault; add "
                         "-inject-fault=<point>:<spec> or drop it\n");
    return 1;
  }

  if (SV.Resume && SV.CheckpointDir.empty()) {
    std::fprintf(stderr,
                 "error: -resume needs -checkpoint=<dir> naming the "
                 "checkpoint directory of the interrupted campaign\n");
    return 1;
  }
  if (SV.Isolate && Args.has("t")) {
    std::fprintf(stderr,
                 "error: -isolate needs an iteration-bounded campaign: "
                 "replace -t=<sec> with -n=<count> (shard partitions and "
                 "crash attribution need a fixed seed range)\n");
    return 1;
  }
  if (SV.Fanout) {
    if (Args.has("t")) {
      std::fprintf(stderr,
                   "error: -fanout needs an iteration-bounded campaign: "
                   "replace -t=<sec> with -n=<count> (shard leases and "
                   "lost-work accounting need a fixed seed range)\n");
      return 1;
    }
    if (SV.Isolate) {
      std::fprintf(stderr,
                   "error: -isolate and -fanout are both process "
                   "supervisors: pick one (-fanout adds shard leases, "
                   "retry budgets and partial-result harvest on top of "
                   "the same child-process isolation)\n");
      return 1;
    }
    if (Opts.Feedback.Enabled) {
      std::fprintf(stderr,
                   "error: -feedback cannot be combined with -fanout: "
                   "supervised shards have no epoch barrier to merge "
                   "coverage at; drop one of the two flags\n");
      return 1;
    }
    if (Opts.TraceEnabled) {
      std::fprintf(stderr,
                   "error: -trace-json cannot cross the -fanout process "
                   "boundary: the flight recorder lives in shard memory; "
                   "drop one of the two flags\n");
      return 1;
    }
    if (Opts.Profile.Enabled) {
      std::fprintf(stderr,
                   "error: -profile cannot cross the -fanout process "
                   "boundary: the cost trackers and span stacks live in "
                   "shard memory; drop one of the two flags\n");
      return 1;
    }
  }
  if (!SV.CheckpointDir.empty() && Args.has("t")) {
    // Time-limited campaigns have no reproducible seed schedule, so a
    // checkpoint could not record "where the campaign was" — and the
    // static dispatch ignores -t next to -n anyway. Reject the
    // combination instead of silently checkpointing something else.
    std::fprintf(stderr,
                 "error: -checkpoint/-resume need an iteration-bounded "
                 "campaign: replace -t=<sec> with -n=<count> (a time "
                 "budget has no reproducible seed schedule to resume)\n");
    return 1;
  }
  if (Opts.Feedback.Enabled) {
    if (Args.has("t")) {
      std::fprintf(stderr,
                   "error: -feedback needs an iteration-bounded campaign: "
                   "replace -t=<sec> with -n=<count> (the epoch schedule "
                   "is defined over a fixed seed range)\n");
      return 1;
    }
    if (SV.Isolate) {
      std::fprintf(stderr,
                   "error: -feedback cannot be combined with -isolate: "
                   "isolated shards have no epoch barrier to merge "
                   "coverage at; drop one of the two flags\n");
      return 1;
    }
    if (!Opts.BugBundleDir.empty()) {
      std::fprintf(stderr,
                   "error: -feedback cannot be combined with -bug-bundles: "
                   "bundle trails replay seeds without the feedback "
                   "schedule and would not match the failing mutant; drop "
                   "one of the two flags\n");
      return 1;
    }
  }
  if (Args.has("distill") && !Opts.Feedback.Enabled) {
    std::fprintf(stderr,
                 "error: -distill needs -feedback: distillation ranks the "
                 "corpus by the coverage a feedback campaign collected\n");
    return 1;
  }
  if (SV.Isolate && Opts.TraceEnabled) {
    std::fprintf(stderr,
                 "error: -trace-json cannot cross the -isolate process "
                 "boundary: the flight recorder lives in shard memory; "
                 "drop one of the two flags\n");
    return 1;
  }
  if (SV.Isolate && Opts.Profile.Enabled) {
    std::fprintf(stderr,
                 "error: -profile cannot cross the -isolate process "
                 "boundary: the cost trackers and span stacks live in "
                 "shard memory; drop one of the two flags\n");
    return 1;
  }

  if (Opts.Iterations == 0 && Opts.TimeLimitSeconds <= 0) {
    std::fprintf(stderr,
                 "error: unbounded campaign: give -n=<count> or -t=<sec>\n");
    return 1;
  }

  // The corpus: every positional argument is a .ll file, merged into one
  // campaign module. Broken files are skipped with a warning (counted in
  // the report), not fatal — real test suites always have a few.
  CorpusLoadResult Corpus = loadCorpus(Args.positional());
  for (const std::string &W : Corpus.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  if (!Corpus.M) {
    std::fprintf(stderr,
                 "error: no usable corpus file among %zu input(s)\n",
                 Args.positional().size());
    return 1;
  }

  unsigned Jobs = (unsigned)Args.getInt("j", 1);
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());

  CampaignEngine Engine(Opts, Jobs);
  if (!Engine.configError().empty()) {
    std::fprintf(stderr, "error: %s\n", Engine.configError().c_str());
    return 1;
  }

  unsigned Testable = Engine.loadModule(std::move(Corpus.M));
  char Mode[32] = "";
  if (SV.Isolate)
    std::snprintf(Mode, sizeof(Mode), " [isolated]");
  else if (SV.Fanout)
    std::snprintf(Mode, sizeof(Mode), " [fanout=%u]", SV.Fanout);
  std::printf("alive-mutate: %u testable function(s) from %u corpus "
              "file(s), pipeline '%s', %u worker(s)%s\n",
              Testable, Corpus.FilesLoaded, Opts.Passes.c_str(),
              Engine.jobs(), Mode);
  if (Corpus.FilesSkipped)
    std::printf("corpus:         %u file(s) skipped, %u function(s) "
                "renamed\n",
                Corpus.FilesSkipped, Corpus.Renamed);
  if (Testable == 0)
    return 0;

  // The live observability plane (-metrics-port): strictly observer-only,
  // so attaching it cannot perturb the deterministic report. The resolved
  // port goes to stdout so scripts can use -metrics-port=0.
  std::unique_ptr<MetricsServer> Metrics;
  if (Args.has("metrics-port")) {
    MetricsOptions MO;
    MO.Port = (uint16_t)Args.getInt("metrics-port", 0);
    if (std::string V = Args.get("metrics-interval"); !V.empty())
      MO.SnapshotInterval = std::atof(V.c_str());
    if (std::string V = Args.get("health-stale"); !V.empty())
      MO.HealthStaleSeconds = std::atof(V.c_str());
    Metrics = std::make_unique<MetricsServer>(MO);
    Metrics->setEngine(&Engine);
    RunReportConfig Echo;
    Echo.Tool = "alive-mutate";
    Echo.Passes = Opts.Passes;
    Echo.Iterations = Opts.Iterations;
    Echo.BaseSeed = Opts.BaseSeed;
    Echo.FeedbackOn = Opts.Feedback.Enabled;
    Echo.Jobs = Engine.jobs();
    Metrics->setConfigEcho(Echo);
    Engine.setEventQueue(&Metrics->events());
    std::string MetricsErr;
    if (!Metrics->start(MetricsErr)) {
      std::fprintf(stderr, "error: metrics server: %s\n", MetricsErr.c_str());
      return 1;
    }
    std::printf("metrics: listening on http://127.0.0.1:%u\n",
                (unsigned)Metrics->port());
    std::fflush(stdout);
  }

  // From here a SIGINT/SIGTERM stops the campaign cleanly instead of
  // killing the process: checkpoints and -stats-json still flush.
  installTerminateHandler(&Engine);

  // On a TTY the progress line rewrites itself in place; redirected
  // stderr (CI logs) gets plain periodic lines instead.
  ProgressPrinter Printer;
  double ProgressSec = (double)Args.getInt("progress", 0);
  if (ProgressSec > 0)
    Engine.setProgress(ProgressSec, [&Printer](const CampaignProgress &P) {
      char Eta[32] = "eta ?";
      if (P.EtaSeconds >= 0)
        std::snprintf(Eta, sizeof(Eta), "eta %.0fs", P.EtaSeconds);
      char Line[256];
      if (P.Target)
        std::snprintf(Line, sizeof(Line),
                      "[campaign] %llu/%llu mutants, %.1fs, %.0f/s, %s "
                      "(mut %.0f%% opt %.0f%% tv %.0f%% ovh %.0f%%, %u "
                      "workers)",
                      (unsigned long long)P.Done, (unsigned long long)P.Target,
                      P.Elapsed, P.Rate, Eta, 100 * P.MutateShare,
                      100 * P.OptimizeShare, 100 * P.VerifyShare,
                      100 * P.OverheadShare, P.Workers);
      else
        std::snprintf(Line, sizeof(Line),
                      "[campaign] %llu mutants, %.1fs, %.0f/s, %s "
                      "(mut %.0f%% opt %.0f%% tv %.0f%% ovh %.0f%%, %u "
                      "workers)",
                      (unsigned long long)P.Done, P.Elapsed, P.Rate, Eta,
                      100 * P.MutateShare, 100 * P.OptimizeShare,
                      100 * P.VerifyShare, 100 * P.OverheadShare, P.Workers);
      Printer.update(Line);
    });

  const FuzzStats &S = Engine.run();
  GSignalEngine.store(nullptr, std::memory_order_relaxed);
  Printer.finish();
  if (!Engine.configError().empty()) {
    std::fprintf(stderr, "error: %s\n", Engine.configError().c_str());
    return 1;
  }
  std::printf("mutants:        %llu\n",
              (unsigned long long)S.MutantsGenerated);
  std::printf("mutations:      %llu\n",
              (unsigned long long)S.MutationsApplied);
  std::printf("verified:       %llu\n", (unsigned long long)S.Verified);
  std::printf("verify-skipped: %llu\n", (unsigned long long)S.VerifySkipped);
  if (Opts.TVCacheSize > 0)
    // Hit/miss splits depend on cache history (per-worker private caches,
    // or scheduling with -shared-tv-cache), so this line (like time)
    // varies with -j; the bug report does not.
    std::printf("tv-cache:       %llu hit(s), %llu miss(es), %llu "
                "eviction(s) [%s, %u worker(s)]\n",
                (unsigned long long)S.TVCacheHits,
                (unsigned long long)S.TVCacheMisses,
                (unsigned long long)S.TVCacheEvictions,
                Opts.UseSharedTVCache ? "shared" : "per-worker",
                Engine.jobs());
  std::printf("miscompiles:    %llu\n",
              (unsigned long long)S.RefinementFailures);
  std::printf("crashes:        %llu\n", (unsigned long long)S.Crashes);
  std::printf("inconclusive:   %llu\n", (unsigned long long)S.Inconclusive);
  std::printf("invalid:        %llu\n",
              (unsigned long long)S.InvalidMutants);
  if (S.Timeouts)
    std::printf("timeouts:       %llu (quarantine: %llu check(s) "
                "skipped)\n",
                (unsigned long long)S.Timeouts,
                (unsigned long long)Engine.registry().counterValue(
                    "survive.quarantine.skips"));
  if (uint64_t Contained =
          Engine.registry().counterValue("survive.contained-signals"))
    std::printf("contained:      %llu optimizer signal(s) caught "
                "in-process\n",
                (unsigned long long)Contained);
  if (SV.Isolate)
    std::printf("isolation:      %llu shard crash(es), %llu restart(s)\n",
                (unsigned long long)Engine.registry().counterValue(
                    "survive.isolate.crashes"),
                (unsigned long long)Engine.registry().counterValue(
                    "survive.isolate.restarts"));
  if (SV.Fanout)
    std::printf("supervision:    %llu restart(s), %llu wedge kill(s), "
                "%llu fork failure(s), %zu lost shard(s)\n",
                (unsigned long long)Engine.registry().counterValue(
                    "survive.supervisor.restarts"),
                (unsigned long long)Engine.registry().counterValue(
                    "survive.supervisor.wedges"),
                (unsigned long long)Engine.registry().counterValue(
                    "survive.supervisor.fork_failures"),
                Engine.lostShards().size());
  if (FaultPlane::instance().armed())
    for (const FaultPointCounters &FC : FaultPlane::instance().counters())
      std::printf("fault:          %s (%s): %llu trigger(s) in %llu "
                  "call(s)\n",
                  FC.Point.c_str(), FC.Spec.c_str(),
                  (unsigned long long)FC.Triggers,
                  (unsigned long long)FC.Calls);
  if (Opts.Feedback.Enabled)
    std::printf("feedback:       %llu epoch(s), %llu coverage bit(s), "
                "%llu energy skip(s)\n",
                (unsigned long long)Engine.registry().counterValue(
                    "feedback.epochs"),
                (unsigned long long)Engine.registry().counterValue(
                    "feedback.bits_covered"),
                (unsigned long long)Engine.registry().counterValue(
                    "feedback.energy_skips"));
  if (!SV.CheckpointDir.empty())
    std::printf("checkpoints:    %llu written (%llu failure(s))\n",
                (unsigned long long)Engine.registry().counterValue(
                    "survive.checkpoint.writes"),
                (unsigned long long)Engine.registry().counterValue(
                    "survive.checkpoint.failures"));
  if (!Opts.SaveDir.empty())
    std::printf("saved:          %llu (%llu save failure(s))\n",
                (unsigned long long)S.MutantsSaved,
                (unsigned long long)S.SaveFailures);
  if (!Opts.BugBundleDir.empty())
    std::printf("bundles:        %llu (%llu failure(s))\n",
                (unsigned long long)S.BundlesWritten,
                (unsigned long long)S.BundleFailures);
  std::printf("time:           %.3fs wall, %.3fs worker (mutate %.3fs, opt "
              "%.3fs, verify %.3fs, overhead %.3fs)\n",
              S.TotalSeconds, S.WorkerSeconds, S.MutateSeconds,
              S.OptimizeSeconds, S.VerifySeconds, S.OverheadSeconds);
  if (const CampaignProfile &P = Engine.profile(); P.Enabled) {
    std::printf("profile:        %zu tracked quer%s, %llu sample(s) at "
                "%ums\n",
                P.TopQueries.size(), P.TopQueries.size() == 1 ? "y" : "ies",
                (unsigned long long)P.Samples, P.SamplingIntervalMs);
    if (!P.TopQueries.empty()) {
      const QueryCost &Q = P.TopQueries.front();
      std::printf("profile-top:    %s (%s): cost %llu (%llu dec, %llu "
                  "prop, %llu confl) x%llu\n",
                  Q.Function.c_str(), Q.Verdict.c_str(),
                  (unsigned long long)Q.costUnits(),
                  (unsigned long long)Q.Decisions,
                  (unsigned long long)Q.Propagations,
                  (unsigned long long)Q.Conflicts,
                  (unsigned long long)Q.Count);
    }
  }

  if (Args.has("distill")) {
    // Greedy set cover over the campaign's per-function coverage: the
    // kept set reaches every rule/verdict bit any function reached. The
    // ranking is total (popcount, then name), so running the distillation
    // on an already-distilled corpus keeps exactly the same set.
    std::vector<DistillItem> Items;
    for (const auto &[Fn, Cov] : Engine.feedback().PerFunction) {
      DistillItem It;
      It.Name = Fn;
      It.Words.assign(Cov.Words, Cov.Words + CoverageBitmap::NumWords);
      Items.push_back(std::move(It));
    }
    DistillResult D = distillCover(std::move(Items));
    std::printf("distill:        kept %zu of %zu covering function(s)\n",
                D.Kept.size(), D.Kept.size() + D.Dropped.size());
    for (const std::string &K : D.Kept)
      std::printf("distill-keep:   %s\n", K.c_str());
    for (const std::string &Dr : D.Dropped)
      std::printf("distill-drop:   %s\n", Dr.c_str());
  }

  if (Args.has("report"))
    for (const BugRecord &B : Engine.bugs()) {
      std::printf("--- %s seed=%llu %s%s\n%s\n",
                  B.Kind == BugRecord::Miscompile ? "MISCOMPILE" : "CRASH",
                  (unsigned long long)B.MutantSeed, B.Detail.c_str(),
                  B.IssueId.empty() ? "" : (" [PR" + B.IssueId + "]").c_str(),
                  B.MutantIR.c_str());
    }

  if (std::string StatsPath = Args.get("stats-json"); !StatsPath.empty()) {
    RunReportConfig RC;
    RC.Tool = "alive-mutate";
    RC.Passes = Opts.Passes;
    RC.Iterations = Opts.Iterations;
    RC.BaseSeed = Opts.BaseSeed;
    RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    RC.CorpusFiles = Corpus.FilesLoaded;
    RC.CorpusSkipped = Corpus.FilesSkipped;
    RC.FeedbackOn = Opts.Feedback.Enabled;
    RC.FeedbackEpochLength = Opts.Feedback.EpochLength;
    RC.Jobs = Engine.jobs();
    RC.WallSeconds = S.TotalSeconds;
    RC.Interrupted = Engine.interrupted();
    RC.Degraded = Engine.degraded();
    RC.FanOut = SV.Fanout;
    RC.LostShards = Engine.lostShards();
    RC.TraceDropped = Engine.traceDropped();
    std::string ReportErr;
    if (!writeRunReportFile(StatsPath, RC, S, Engine.bugs(),
                            Engine.registry(), ReportErr, &Engine.profile()))
      std::fprintf(stderr, "warning: %s\n", ReportErr.c_str());
  }

  if (!TracePath.empty()) {
    std::string TraceErr;
    if (!Engine.writeTrace(TracePath, TraceErr))
      std::fprintf(stderr, "warning: %s\n", TraceErr.c_str());
  }

  if (!Engine.saveDirError().empty())
    // The directory never came up: reported once, not per mutant.
    std::fprintf(stderr, "warning: %s\n", Engine.saveDirError().c_str());
  if (!Engine.bundleError().empty())
    std::fprintf(stderr, "warning: %s\n", Engine.bundleError().c_str());
  if (!Engine.isolateError().empty())
    std::fprintf(stderr, "warning: %s\n", Engine.isolateError().c_str());
  if (S.SaveFailures > 0)
    std::fprintf(stderr,
                 "warning: %llu mutant(s) could not be saved to '%s'\n",
                 (unsigned long long)S.SaveFailures, Opts.SaveDir.c_str());
  if (Engine.degraded())
    std::fprintf(stderr,
                 "warning: campaign degraded: %zu shard lease(s) "
                 "permanently lost after exhausting retries; results are "
                 "incomplete and flagged degraded in the report\n",
                 Engine.lostShards().size());
  if (Engine.interrupted())
    std::fprintf(stderr,
                 "note: campaign interrupted before finishing; rerun with "
                 "-resume and the same flags to continue from the last "
                 "checkpoint\n");
  if (S.RefinementFailures || S.Crashes)
    return 2;
  return S.SaveFailures ? 3 : 0;
}
