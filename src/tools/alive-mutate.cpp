//===- tools/alive-mutate.cpp - The main fuzzing tool ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alive-mutate command-line tool: runs the in-process
/// mutate-optimize-verify loop over an input .ll file (paper §III and the
/// artifact appendix's CLI: -n, -t, -seed, -passes, -save-dir, -saveAll),
/// sharded across -j worker threads with a deterministic merge.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Forensics.h"
#include "core/RunReport.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "tools/ToolCommon.h"

#include <cstdio>
#include <thread>

using namespace alive;

static void printHelp() {
  std::puts(
      "usage: alive-mutate [options] input.ll\n"
      "  -n=<count>        number of mutants to generate (default 1000)\n"
      "  -t=<seconds>      time budget instead of a mutant count\n"
      "  -seed=<n>         base PRNG seed (default 1)\n"
      "  -j=<n>            worker threads (0 = all hardware threads; "
      "default 1)\n"
      "  -passes=<desc>    pipeline, e.g. O2 or instcombine,dce (default O2)\n"
      "  -max-mutations=<n> mutations per function per mutant (default 3)\n"
      "  -no-tv-cache      disable the per-worker TV verdict cache\n"
      "  -tv-cache-size=<n> TV verdict cache capacity (default 4096)\n"
      "  -no-skip-unchanged verify even functions no pass modified\n"
      "  -save-dir=<dir>   write mutants to <dir> (created if missing)\n"
      "  -saveAll          save every mutant, not only failing ones\n"
      "  -inject-bugs      enable the 33 seeded Table I defects\n"
      "  -progress=<sec>   print campaign progress every <sec> seconds\n"
      "  -stats-json=<file> write a schema-versioned JSON run report\n"
      "  -trace-json=<file> write a Chrome trace (flight recorder, one\n"
      "                    track per worker; open in Perfetto)\n"
      "  -trace-capacity=<n> flight-recorder ring capacity (default 16384)\n"
      "  -bug-bundles=<dir> write a replayable forensics bundle per bug\n"
      "  -replay <bundle>  re-run a recorded bundle; exit 0 only when the\n"
      "                    recorded verdict reproduces\n"
      "  -report           print bug records at the end\n"
      "  -help             this text");
}

/// The -replay mode: everything the iteration needs is inside the bundle.
static int runReplay(const std::string &Bundle) {
  ReplayResult R = replayBundle(Bundle);
  std::printf("replay: %s\n", Bundle.c_str());
  if (!R.Kind.empty())
    std::printf("  seed=%llu kind=%s%s%s recorded=%s\n",
                (unsigned long long)R.Seed, R.Kind.c_str(),
                R.Function.empty() ? "" : " function=",
                R.Function.c_str(), R.ExpectedVerdict.c_str());
  if (R.Ok) {
    std::printf("  reproduced: yes (verdict '%s')\n",
                R.ActualVerdict.c_str());
    return 0;
  }
  std::fprintf(stderr, "replay FAILED: %s\n", R.Error.c_str());
  return 1;
}

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.has("replay")) {
    // Both `-replay=<bundle>` and `-replay <bundle>` (positional) work.
    std::string Bundle = Args.get("replay");
    if (Bundle.empty() && !Args.positional().empty())
      Bundle = Args.positional()[0];
    if (Bundle.empty()) {
      std::fprintf(stderr, "error: -replay needs a bundle directory\n");
      return 1;
    }
    return runReplay(Bundle);
  }
  if (Args.has("help") || Args.positional().empty()) {
    printHelp();
    return Args.has("help") ? 0 : 1;
  }

  std::string Err;
  auto M = parseModuleFile(Args.positional()[0], Err);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  FuzzOptions Opts;
  Opts.Passes = Args.get("passes", "O2");
  Opts.Iterations = Args.getInt("n", Args.has("t") ? 0 : 1000);
  Opts.TimeLimitSeconds = (double)Args.getInt("t", 0);
  Opts.BaseSeed = Args.getInt("seed", 1);
  Opts.Mutation.MaxMutationsPerFunction =
      (unsigned)Args.getInt("max-mutations", 3);
  Opts.SaveDir = Args.get("save-dir");
  Opts.SaveAll = Args.has("saveAll");
  Opts.TVCacheSize = Args.has("no-tv-cache")
                         ? 0
                         : (size_t)Args.getInt("tv-cache-size",
                                               Opts.TVCacheSize);
  Opts.SkipUnchanged = !Args.has("no-skip-unchanged");
  if (Args.has("inject-bugs"))
    Opts.Bugs.enableAll();
  Opts.BugBundleDir = Args.get("bug-bundles");
  std::string TracePath = Args.get("trace-json");
  Opts.TraceEnabled = !TracePath.empty();
  Opts.TraceCapacity =
      (size_t)Args.getInt("trace-capacity", TraceRecorder::DefaultCapacity);

  if (Opts.Iterations == 0 && Opts.TimeLimitSeconds <= 0) {
    std::fprintf(stderr,
                 "error: unbounded campaign: give -n=<count> or -t=<sec>\n");
    return 1;
  }

  unsigned Jobs = (unsigned)Args.getInt("j", 1);
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());

  CampaignEngine Engine(Opts, Jobs);
  if (!Engine.configError().empty()) {
    std::fprintf(stderr, "error: %s\n", Engine.configError().c_str());
    return 1;
  }

  unsigned Testable = Engine.loadModule(std::move(M));
  std::printf("alive-mutate: %u testable function(s), pipeline '%s', "
              "%u worker(s)\n",
              Testable, Opts.Passes.c_str(), Engine.jobs());
  if (Testable == 0)
    return 0;

  // On a TTY the progress line rewrites itself in place; redirected
  // stderr (CI logs) gets plain periodic lines instead.
  ProgressPrinter Printer;
  double ProgressSec = (double)Args.getInt("progress", 0);
  if (ProgressSec > 0)
    Engine.setProgress(ProgressSec, [&Printer](const CampaignProgress &P) {
      char Eta[32] = "eta ?";
      if (P.EtaSeconds >= 0)
        std::snprintf(Eta, sizeof(Eta), "eta %.0fs", P.EtaSeconds);
      char Line[256];
      if (P.Target)
        std::snprintf(Line, sizeof(Line),
                      "[campaign] %llu/%llu mutants, %.1fs, %.0f/s, %s "
                      "(mut %.0f%% opt %.0f%% tv %.0f%% ovh %.0f%%, %u "
                      "workers)",
                      (unsigned long long)P.Done, (unsigned long long)P.Target,
                      P.Elapsed, P.Rate, Eta, 100 * P.MutateShare,
                      100 * P.OptimizeShare, 100 * P.VerifyShare,
                      100 * P.OverheadShare, P.Workers);
      else
        std::snprintf(Line, sizeof(Line),
                      "[campaign] %llu mutants, %.1fs, %.0f/s, %s "
                      "(mut %.0f%% opt %.0f%% tv %.0f%% ovh %.0f%%, %u "
                      "workers)",
                      (unsigned long long)P.Done, P.Elapsed, P.Rate, Eta,
                      100 * P.MutateShare, 100 * P.OptimizeShare,
                      100 * P.VerifyShare, 100 * P.OverheadShare, P.Workers);
      Printer.update(Line);
    });

  const FuzzStats &S = Engine.run();
  Printer.finish();
  if (!Engine.configError().empty()) {
    std::fprintf(stderr, "error: %s\n", Engine.configError().c_str());
    return 1;
  }
  std::printf("mutants:        %llu\n",
              (unsigned long long)S.MutantsGenerated);
  std::printf("mutations:      %llu\n",
              (unsigned long long)S.MutationsApplied);
  std::printf("verified:       %llu\n", (unsigned long long)S.Verified);
  std::printf("verify-skipped: %llu\n", (unsigned long long)S.VerifySkipped);
  if (Opts.TVCacheSize > 0)
    // Hit/miss splits depend on each worker's private cache history, so
    // this line (like time) varies with -j; the bug report does not.
    std::printf("tv-cache:       %llu hit(s), %llu miss(es), %llu "
                "eviction(s) [%u worker(s)]\n",
                (unsigned long long)S.TVCacheHits,
                (unsigned long long)S.TVCacheMisses,
                (unsigned long long)S.TVCacheEvictions, Engine.jobs());
  std::printf("miscompiles:    %llu\n",
              (unsigned long long)S.RefinementFailures);
  std::printf("crashes:        %llu\n", (unsigned long long)S.Crashes);
  std::printf("inconclusive:   %llu\n", (unsigned long long)S.Inconclusive);
  std::printf("invalid:        %llu\n",
              (unsigned long long)S.InvalidMutants);
  if (!Opts.SaveDir.empty())
    std::printf("saved:          %llu (%llu save failure(s))\n",
                (unsigned long long)S.MutantsSaved,
                (unsigned long long)S.SaveFailures);
  if (!Opts.BugBundleDir.empty())
    std::printf("bundles:        %llu (%llu failure(s))\n",
                (unsigned long long)S.BundlesWritten,
                (unsigned long long)S.BundleFailures);
  std::printf("time:           %.3fs wall, %.3fs worker (mutate %.3fs, opt "
              "%.3fs, verify %.3fs, overhead %.3fs)\n",
              S.TotalSeconds, S.WorkerSeconds, S.MutateSeconds,
              S.OptimizeSeconds, S.VerifySeconds, S.OverheadSeconds);

  if (Args.has("report"))
    for (const BugRecord &B : Engine.bugs()) {
      std::printf("--- %s seed=%llu %s%s\n%s\n",
                  B.Kind == BugRecord::Miscompile ? "MISCOMPILE" : "CRASH",
                  (unsigned long long)B.MutantSeed, B.Detail.c_str(),
                  B.IssueId.empty() ? "" : (" [PR" + B.IssueId + "]").c_str(),
                  B.MutantIR.c_str());
    }

  if (std::string StatsPath = Args.get("stats-json"); !StatsPath.empty()) {
    RunReportConfig RC;
    RC.Tool = "alive-mutate";
    RC.Passes = Opts.Passes;
    RC.Iterations = Opts.Iterations;
    RC.BaseSeed = Opts.BaseSeed;
    RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    RC.Jobs = Engine.jobs();
    RC.WallSeconds = S.TotalSeconds;
    std::string ReportErr;
    if (!writeRunReportFile(StatsPath, RC, S, Engine.bugs(),
                            Engine.registry(), ReportErr))
      std::fprintf(stderr, "warning: %s\n", ReportErr.c_str());
  }

  if (!TracePath.empty()) {
    std::string TraceErr;
    if (!Engine.writeTrace(TracePath, TraceErr))
      std::fprintf(stderr, "warning: %s\n", TraceErr.c_str());
  }

  if (!Engine.saveDirError().empty())
    // The directory never came up: reported once, not per mutant.
    std::fprintf(stderr, "warning: %s\n", Engine.saveDirError().c_str());
  if (!Engine.bundleError().empty())
    std::fprintf(stderr, "warning: %s\n", Engine.bundleError().c_str());
  if (S.SaveFailures > 0)
    std::fprintf(stderr,
                 "warning: %llu mutant(s) could not be saved to '%s'\n",
                 (unsigned long long)S.SaveFailures, Opts.SaveDir.c_str());
  if (S.RefinementFailures || S.Crashes)
    return 2;
  return S.SaveFailures ? 3 : 0;
}
