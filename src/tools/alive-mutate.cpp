//===- tools/alive-mutate.cpp - The main fuzzing tool ----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alive-mutate command-line tool: runs the in-process
/// mutate-optimize-verify loop over an input .ll file (paper §III and the
/// artifact appendix's CLI: -n, -t, -seed, -passes, -save-dir, -saveAll).
///
//===----------------------------------------------------------------------===//

#include "core/FuzzerLoop.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "tools/ToolCommon.h"

#include <cstdio>

using namespace alive;

static void printHelp() {
  std::puts(
      "usage: alive-mutate [options] input.ll\n"
      "  -n=<count>        number of mutants to generate (default 1000)\n"
      "  -t=<seconds>      time budget instead of a mutant count\n"
      "  -seed=<n>         base PRNG seed (default 1)\n"
      "  -passes=<desc>    pipeline, e.g. O2 or instcombine,dce (default O2)\n"
      "  -max-mutations=<n> mutations per function per mutant (default 3)\n"
      "  -save-dir=<dir>   write mutants to <dir>\n"
      "  -saveAll          save every mutant, not only failing ones\n"
      "  -inject-bugs      enable the 33 seeded Table I defects\n"
      "  -report           print bug records at the end\n"
      "  -help             this text");
}

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.has("help") || Args.positional().empty()) {
    printHelp();
    return Args.has("help") ? 0 : 1;
  }

  std::string Err;
  auto M = parseModuleFile(Args.positional()[0], Err);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  if (Args.has("inject-bugs"))
    BugConfig::enableAll();

  FuzzOptions Opts;
  Opts.Passes = Args.get("passes", "O2");
  Opts.Iterations = Args.getInt("n", Args.has("t") ? 0 : 1000);
  Opts.TimeLimitSeconds = (double)Args.getInt("t", 0);
  Opts.BaseSeed = Args.getInt("seed", 1);
  Opts.Mutation.MaxMutationsPerFunction =
      (unsigned)Args.getInt("max-mutations", 3);
  Opts.SaveDir = Args.get("save-dir");
  Opts.SaveAll = Args.has("saveAll");

  FuzzerLoop Fuzzer(Opts);
  unsigned Testable = Fuzzer.loadModule(std::move(M));
  std::printf("alive-mutate: %u testable function(s), pipeline '%s'\n",
              Testable, Opts.Passes.c_str());
  if (Testable == 0)
    return 0;

  const FuzzStats &S = Fuzzer.run();
  std::printf("mutants:        %llu\n",
              (unsigned long long)S.MutantsGenerated);
  std::printf("mutations:      %llu\n",
              (unsigned long long)S.MutationsApplied);
  std::printf("verified:       %llu\n", (unsigned long long)S.Verified);
  std::printf("miscompiles:    %llu\n",
              (unsigned long long)S.RefinementFailures);
  std::printf("crashes:        %llu\n", (unsigned long long)S.Crashes);
  std::printf("inconclusive:   %llu\n", (unsigned long long)S.Inconclusive);
  std::printf("invalid:        %llu\n",
              (unsigned long long)S.InvalidMutants);
  std::printf("time:           %.3fs (mutate %.3fs, opt %.3fs, verify %.3fs)\n",
              S.TotalSeconds, S.MutateSeconds, S.OptimizeSeconds,
              S.VerifySeconds);

  if (Args.has("report"))
    for (const BugRecord &B : Fuzzer.bugs()) {
      std::printf("--- %s seed=%llu %s%s\n%s\n",
                  B.Kind == BugRecord::Miscompile ? "MISCOMPILE" : "CRASH",
                  (unsigned long long)B.MutantSeed, B.Detail.c_str(),
                  B.IssueId.empty() ? "" : (" [PR" + B.IssueId + "]").c_str(),
                  B.MutantIR.c_str());
    }

  return S.RefinementFailures || S.Crashes ? 2 : 0;
}
