//===- tools/amut-tv.cpp - Standalone translation validator ----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone translation validation (the `alive-tv` analog): check that
/// every function of tgt.ll refines its namesake in src.ll.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "tools/ToolCommon.h"
#include "tv/Counterexample.h"
#include "tv/RefinementChecker.h"

#include <cstdio>

using namespace alive;

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.positional().size() < 2) {
    std::puts("usage: amut-tv src.ll tgt.ll");
    return 1;
  }

  std::string Err;
  auto Src = parseModuleFile(Args.positional()[0], Err);
  if (!Src) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  auto Tgt = parseModuleFile(Args.positional()[1], Err);
  if (!Tgt) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  TVOptions Opts;
  Opts.SolverConflictBudget = Args.getInt("budget", Opts.SolverConflictBudget);
  Opts.ConcreteTrials = (unsigned)Args.getInt("trials", Opts.ConcreteTrials);

  int Failures = 0;
  for (Function *SF : Src->functions()) {
    if (SF->isDeclaration() || SF->isIntrinsic())
      continue;
    Function *TF = Tgt->getFunction(SF->getName());
    if (!TF || TF->isDeclaration())
      continue;
    TVResult R = checkRefinement(*SF, *TF, Opts);
    std::printf("%s: %s%s%s\n", SF->getName().c_str(),
                tvVerdictName(R.Verdict), R.Detail.empty() ? "" : " - ",
                R.Detail.c_str());
    if (R.Verdict == TVVerdict::Incorrect) {
      if (!R.CounterExample.empty())
        // The shared tv/ rendering (also what forensics bundles persist).
        std::printf("  counterexample:\n%s",
                    renderCounterexampleInputs(*SF, R.CounterExample).c_str());
      ++Failures;
    }
  }
  return Failures ? 2 : 0;
}
