//===- tools/amut-mutate.cpp - Standalone mutator ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone mutation step of the discrete-tools baseline (paper §V-B):
/// parse a file, apply the mutation engine once with a given seed, print
/// the mutant. The throughput experiment seeds this tool identically to the
/// in-process loop so "the actual work performed under both conditions is
/// exactly the same".
///
//===----------------------------------------------------------------------===//

#include "core/FuzzerLoop.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tools/ToolCommon.h"

#include <cstdio>
#include <fstream>

using namespace alive;

int main(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  if (Args.positional().size() < 2) {
    std::puts("usage: amut-mutate -seed=<n> [-max-mutations=<n>] in.ll out.ll");
    return 1;
  }

  std::string Err;
  auto M = parseModuleFile(Args.positional()[0], Err);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  FuzzOptions Opts;
  Opts.Mutation.MaxMutationsPerFunction =
      (unsigned)Args.getInt("max-mutations", 3);
  // Validation is the separate alive-tv step in the discrete pipeline.
  Opts.SelfCheckOnLoad = false;
  FuzzerLoop Fuzzer(Opts);
  Fuzzer.loadModule(std::move(M));
  auto Mutant = Fuzzer.makeMutant(Args.getInt("seed", 1));

  std::ofstream Out(Args.positional()[1]);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 Args.positional()[1].c_str());
    return 1;
  }
  Out << printModule(*Mutant);
  return 0;
}
