//===- parser/Parser.h - .ll text -> Module --------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual IR dialect. Accepts the LLVM
/// `.ll` subset this IR supports, including legacy typed-pointer spellings
/// ("i32* %p" parses as ptr) so the paper's listings parse verbatim.
/// Unknown callees are auto-declared from their call-site signature.
///
//===----------------------------------------------------------------------===//

#ifndef PARSER_PARSER_H
#define PARSER_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace alive {

/// Parses \p Source into a Module. On failure returns null and fills
/// \p Error with "line N: message".
std::unique_ptr<Module> parseModule(const std::string &Source,
                                    std::string &Error);

/// Convenience wrapper: reads \p Path and parses it.
std::unique_ptr<Module> parseModuleFile(const std::string &Path,
                                        std::string &Error);

} // namespace alive

#endif // PARSER_PARSER_H
