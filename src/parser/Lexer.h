//===- parser/Lexer.h - Tokenizer for .ll text -----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual IR dialect. Produces sigil-tagged identifiers
/// (%local, @global, #attrgroup), bare words (keywords and type names),
/// integer literals, and punctuation. Comments run from ';' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef PARSER_LEXER_H
#define PARSER_LEXER_H

#include <cstdint>
#include <string>

namespace alive {

enum class TokKind {
  Eof,
  Error,
  Word,      ///< bare identifier / keyword: define, add, i32, label, ...
  LocalVar,  ///< %name or %123
  GlobalVar, ///< @name
  AttrGroup, ///< #0
  Integer,   ///< decimal integer, possibly negative
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Equal,
  Colon,
  Star,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text; ///< identifier text without sigil, or literal text
  unsigned Line = 0;
};

/// Single-pass tokenizer over a source buffer.
class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  /// Lexes the next token.
  Token next();

  unsigned getLine() const { return Line; }

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char get() { return Pos < Src.size() ? Src[Pos++] : '\0'; }
  void skipTrivia();

  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace alive

#endif // PARSER_LEXER_H
