//===- parser/Lexer.cpp - Tokenizer for .ll text ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace alive;

static bool isIdentChar(char C) {
  return std::isalnum((unsigned char)C) || C == '_' || C == '.' || C == '-' ||
         C == '$';
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == '\n') {
      ++Line;
      ++Pos;
    } else if (std::isspace((unsigned char)C)) {
      ++Pos;
    } else if (C == ';') {
      while (peek() != '\n' && peek() != '\0')
        ++Pos;
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skipTrivia();
  Token T;
  T.Line = Line;
  char C = peek();
  if (C == '\0') {
    T.Kind = TokKind::Eof;
    return T;
  }

  auto punct = [&](TokKind K) {
    ++Pos;
    T.Kind = K;
    return T;
  };

  switch (C) {
  case '(':
    return punct(TokKind::LParen);
  case ')':
    return punct(TokKind::RParen);
  case '{':
    return punct(TokKind::LBrace);
  case '}':
    return punct(TokKind::RBrace);
  case '[':
    return punct(TokKind::LBracket);
  case ']':
    return punct(TokKind::RBracket);
  case '<':
    return punct(TokKind::Less);
  case '>':
    return punct(TokKind::Greater);
  case ',':
    return punct(TokKind::Comma);
  case '=':
    return punct(TokKind::Equal);
  case ':':
    return punct(TokKind::Colon);
  case '*':
    return punct(TokKind::Star);
  default:
    break;
  }

  if (C == '%' || C == '@' || C == '#') {
    ++Pos;
    std::string Name;
    // Quoted names: %"a b".
    if (peek() == '"') {
      ++Pos;
      while (peek() != '"' && peek() != '\0')
        Name.push_back(get());
      if (peek() == '"')
        ++Pos;
    } else {
      while (isIdentChar(peek()))
        Name.push_back(get());
    }
    if (Name.empty()) {
      T.Kind = TokKind::Error;
      T.Text = "empty identifier after sigil";
      return T;
    }
    T.Kind = C == '%'   ? TokKind::LocalVar
             : C == '@' ? TokKind::GlobalVar
                        : TokKind::AttrGroup;
    T.Text = Name;
    return T;
  }

  if (std::isdigit((unsigned char)C) ||
      (C == '-' && Pos + 1 < Src.size() &&
       std::isdigit((unsigned char)Src[Pos + 1]))) {
    std::string Num;
    Num.push_back(get());
    while (std::isdigit((unsigned char)peek()))
      Num.push_back(get());
    T.Kind = TokKind::Integer;
    T.Text = Num;
    return T;
  }

  if (std::isalpha((unsigned char)C) || C == '_') {
    std::string Word;
    while (isIdentChar(peek()))
      Word.push_back(get());
    T.Kind = TokKind::Word;
    T.Text = Word;
    return T;
  }

  T.Kind = TokKind::Error;
  T.Text = std::string("unexpected character '") + C + "'";
  ++Pos;
  return T;
}
