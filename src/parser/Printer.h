//===- parser/Printer.h - Module -> .ll text -------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints IR back to the textual dialect. Output round-trips through the
/// parser, which is what the discrete-tools baseline of the throughput
/// experiment does on every iteration (mutate -> print -> file -> parse ->
/// optimize -> print -> file -> parse -> verify).
///
//===----------------------------------------------------------------------===//

#ifndef PARSER_PRINTER_H
#define PARSER_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace alive {

/// Renders a whole module.
std::string printModule(const Module &M);

/// Renders a single function (definition or declaration).
std::string printFunction(const Function &F);

/// Renders one value reference ("%x", "42", "poison") as it would appear as
/// an operand, for diagnostics.
std::string printValueRef(const Value *V);

} // namespace alive

#endif // PARSER_PRINTER_H
