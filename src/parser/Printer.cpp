//===- parser/Printer.cpp - Module -> .ll text -----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Printer.h"

#include <map>
#include <sstream>

using namespace alive;

namespace {

/// Assigns printable names: named values keep their name; unnamed values
/// and blocks get sequential slot numbers, LLVM style.
class SlotTracker {
public:
  explicit SlotTracker(const Function &F) {
    unsigned Slot = 0;
    auto assign = [&](const Value *V) {
      if (V->hasName())
        Names[V] = V->getName();
      else
        Names[V] = std::to_string(Slot++);
    };
    for (unsigned I = 0; I != F.getNumArgs(); ++I)
      assign(F.getArg(I));
    for (BasicBlock *BB : F.blocks()) {
      assign(BB);
      for (Instruction *I : BB->insts())
        if (!I->getType()->isVoidTy())
          assign(I);
    }
  }

  std::string ref(const Value *V) const {
    auto It = Names.find(V);
    assert(It != Names.end() && "value not in slot tracker");
    return "%" + It->second;
  }
  std::string label(const BasicBlock *BB) const {
    auto It = Names.find(BB);
    assert(It != Names.end() && "block not in slot tracker");
    return It->second;
  }

private:
  std::map<const Value *, std::string> Names;
};

std::string constantRef(const Constant *C) {
  if (const auto *CI = dyn_cast<ConstantInt>(C))
    return CI->getValue().toString(/*Signed=*/true);
  if (isa<ConstantPoison>(C))
    return "poison";
  if (isa<ConstantUndef>(C))
    return "undef";
  if (isa<ConstantNullPtr>(C))
    return "null";
  const auto *CV = cast<ConstantVector>(C);
  std::string S = "<";
  for (unsigned I = 0; I != CV->getNumElements(); ++I) {
    if (I)
      S += ", ";
    S += CV->getElement(I)->getType()->str() + " " +
         constantRef(CV->getElement(I));
  }
  return S + ">";
}

std::string valueRef(const Value *V, const SlotTracker &Slots) {
  if (const auto *C = dyn_cast<Constant>(V))
    return constantRef(C);
  return Slots.ref(V);
}

/// "type value" operand rendering.
std::string typedRef(const Value *V, const SlotTracker &Slots) {
  return V->getType()->str() + " " + valueRef(V, Slots);
}

void printInstruction(const Instruction *I, const SlotTracker &Slots,
                      std::ostream &OS) {
  OS << "  ";
  if (!I->getType()->isVoidTy())
    OS << Slots.ref(I) << " = ";

  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    const auto *B = cast<BinaryInst>(I);
    OS << BinaryInst::getBinOpName(B->getBinOp());
    if (B->hasNUW())
      OS << " nuw";
    if (B->hasNSW())
      OS << " nsw";
    if (B->isExact())
      OS << " exact";
    OS << " " << typedRef(B->getLHS(), Slots) << ", "
       << valueRef(B->getRHS(), Slots);
    break;
  }
  case Value::VK_ICmpInst: {
    const auto *C = cast<ICmpInst>(I);
    OS << "icmp " << ICmpInst::getPredicateName(C->getPredicate()) << " "
       << typedRef(C->getLHS(), Slots) << ", " << valueRef(C->getRHS(), Slots);
    break;
  }
  case Value::VK_SelectInst: {
    const auto *S = cast<SelectInst>(I);
    OS << "select " << typedRef(S->getCondition(), Slots) << ", "
       << typedRef(S->getTrueValue(), Slots) << ", "
       << typedRef(S->getFalseValue(), Slots);
    break;
  }
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    OS << CastInst::getCastOpName(C->getCastOp()) << " "
       << typedRef(C->getSrc(), Slots) << " to " << C->getType()->str();
    break;
  }
  case Value::VK_FreezeInst:
    OS << "freeze "
       << typedRef(cast<FreezeInst>(I)->getSrc(), Slots);
    break;
  case Value::VK_PhiNode: {
    const auto *P = cast<PhiNode>(I);
    OS << "phi " << P->getType()->str() << " ";
    for (unsigned K = 0; K != P->getNumIncoming(); ++K) {
      if (K)
        OS << ", ";
      OS << "[ " << valueRef(P->getIncomingValue(K), Slots) << ", %"
         << Slots.label(P->getIncomingBlock(K)) << " ]";
    }
    break;
  }
  case Value::VK_CallInst: {
    const auto *C = cast<CallInst>(I);
    OS << "call " << C->getType()->str() << " @" << C->getCallee()->getName()
       << "(";
    for (unsigned K = 0; K != C->getNumArgs(); ++K) {
      if (K)
        OS << ", ";
      OS << typedRef(C->getArg(K), Slots);
    }
    OS << ")";
    break;
  }
  case Value::VK_LoadInst: {
    const auto *L = cast<LoadInst>(I);
    OS << "load " << L->getType()->str() << ", "
       << typedRef(L->getPointer(), Slots);
    if (L->getAlign() > 1)
      OS << ", align " << L->getAlign();
    break;
  }
  case Value::VK_StoreInst: {
    const auto *S = cast<StoreInst>(I);
    OS << "store " << typedRef(S->getValueOperand(), Slots) << ", "
       << typedRef(S->getPointer(), Slots);
    if (S->getAlign() > 1)
      OS << ", align " << S->getAlign();
    break;
  }
  case Value::VK_AllocaInst: {
    const auto *A = cast<AllocaInst>(I);
    OS << "alloca " << A->getAllocatedType()->str() << ", align "
       << A->getAlign();
    break;
  }
  case Value::VK_GEPInst: {
    const auto *G = cast<GEPInst>(I);
    OS << "getelementptr ";
    if (G->isInBounds())
      OS << "inbounds ";
    OS << G->getSourceElementType()->str() << ", "
       << typedRef(G->getPointer(), Slots) << ", "
       << typedRef(G->getIndex(), Slots);
    break;
  }
  case Value::VK_ExtractElementInst: {
    const auto *E = cast<ExtractElementInst>(I);
    OS << "extractelement " << typedRef(E->getVector(), Slots) << ", "
       << typedRef(E->getIndex(), Slots);
    break;
  }
  case Value::VK_InsertElementInst: {
    const auto *E = cast<InsertElementInst>(I);
    OS << "insertelement " << typedRef(E->getVector(), Slots) << ", "
       << typedRef(E->getElement(), Slots) << ", "
       << typedRef(E->getIndex(), Slots);
    break;
  }
  case Value::VK_ShuffleVectorInst: {
    const auto *SV = cast<ShuffleVectorInst>(I);
    OS << "shufflevector " << typedRef(SV->getV1(), Slots) << ", "
       << typedRef(SV->getV2(), Slots) << ", <"
       << SV->getMask().size() << " x i32> <";
    for (size_t K = 0; K != SV->getMask().size(); ++K) {
      if (K)
        OS << ", ";
      int Lane = SV->getMask()[K];
      if (Lane < 0)
        OS << "i32 poison";
      else
        OS << "i32 " << Lane;
    }
    OS << ">";
    break;
  }
  case Value::VK_ReturnInst: {
    const auto *R = cast<ReturnInst>(I);
    if (Value *RV = R->getReturnValue())
      OS << "ret " << typedRef(RV, Slots);
    else
      OS << "ret void";
    break;
  }
  case Value::VK_BranchInst: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional())
      OS << "br " << typedRef(B->getCondition(), Slots) << ", label %"
         << Slots.label(B->getSuccessor(0)) << ", label %"
         << Slots.label(B->getSuccessor(1));
    else
      OS << "br label %" << Slots.label(B->getSuccessor(0));
    break;
  }
  case Value::VK_SwitchInst: {
    const auto *S = cast<SwitchInst>(I);
    OS << "switch " << typedRef(S->getCondition(), Slots) << ", label %"
       << Slots.label(S->getDefaultDest()) << " [";
    for (unsigned K = 0; K != S->getNumCases(); ++K) {
      OS << "\n    " << S->getCondition()->getType()->str() << " "
         << S->getCaseValue(K).toString() << ", label %"
         << Slots.label(S->getCaseDest(K));
    }
    OS << "\n  ]";
    break;
  }
  case Value::VK_UnreachableInst:
    OS << "unreachable";
    break;
  default:
    assert(false && "unknown instruction kind");
  }
  OS << "\n";
}

void printFnAttrs(const Function &F, std::ostream &OS) {
  for (FnAttr A : allFnAttrs())
    if (F.hasFnAttr(A))
      OS << " " << fnAttrName(A);
}

void printFunctionImpl(const Function &F, std::ostream &OS) {
  if (F.isDeclaration()) {
    OS << "declare " << F.getReturnType()->str() << " @" << F.getName()
       << "(";
    for (unsigned I = 0; I != F.getNumArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << F.getArg(I)->getType()->str() << F.paramAttrs(I).str();
    }
    OS << ")";
    printFnAttrs(F, OS);
    OS << "\n";
    return;
  }

  SlotTracker Slots(F);
  OS << "define " << F.getReturnType()->str() << " @" << F.getName() << "(";
  for (unsigned I = 0; I != F.getNumArgs(); ++I) {
    if (I)
      OS << ", ";
    OS << F.getArg(I)->getType()->str() << F.paramAttrs(I).str() << " "
       << Slots.ref(F.getArg(I));
  }
  OS << ")";
  printFnAttrs(F, OS);
  OS << " {\n";
  bool First = true;
  for (BasicBlock *BB : F.blocks()) {
    if (!First)
      OS << "\n";
    First = false;
    OS << Slots.label(BB) << ":\n";
    for (Instruction *I : BB->insts())
      printInstruction(I, Slots, OS);
  }
  OS << "}\n";
}

} // namespace

std::string alive::printModule(const Module &M) {
  std::ostringstream OS;
  bool First = true;
  // Declarations first, then definitions, each separated by a blank line.
  for (Function *F : M.functions()) {
    if (!F->isDeclaration())
      continue;
    if (!First)
      OS << "\n";
    First = false;
    printFunctionImpl(*F, OS);
  }
  for (Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (!First)
      OS << "\n";
    First = false;
    printFunctionImpl(*F, OS);
  }
  return OS.str();
}

std::string alive::printFunction(const Function &F) {
  std::ostringstream OS;
  printFunctionImpl(F, OS);
  return OS.str();
}

std::string alive::printValueRef(const Value *V) {
  if (const auto *C = dyn_cast<Constant>(V))
    return constantRef(C);
  return V->hasName() ? "%" + V->getName() : "<unnamed>";
}
