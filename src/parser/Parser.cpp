//===- parser/Parser.cpp - .ll text -> Module ------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"

#include <fstream>
#include <map>
#include <sstream>

using namespace alive;

namespace {

/// Maps an intrinsic declaration name ("llvm.smin.i32") to its ID.
IntrinsicID intrinsicFromName(const std::string &Name) {
  struct Entry {
    const char *Prefix;
    IntrinsicID ID;
  };
  static const Entry Table[] = {
      {"llvm.smin.", IntrinsicID::SMin},
      {"llvm.smax.", IntrinsicID::SMax},
      {"llvm.umin.", IntrinsicID::UMin},
      {"llvm.umax.", IntrinsicID::UMax},
      {"llvm.abs.", IntrinsicID::Abs},
      {"llvm.bswap.", IntrinsicID::BSwap},
      {"llvm.ctpop.", IntrinsicID::CtPop},
      {"llvm.ctlz.", IntrinsicID::Ctlz},
      {"llvm.cttz.", IntrinsicID::Cttz},
      {"llvm.uadd.sat.", IntrinsicID::UAddSat},
      {"llvm.usub.sat.", IntrinsicID::USubSat},
      {"llvm.sadd.sat.", IntrinsicID::SAddSat},
      {"llvm.ssub.sat.", IntrinsicID::SSubSat},
      {"llvm.fshl.", IntrinsicID::Fshl},
      {"llvm.fshr.", IntrinsicID::Fshr},
  };
  if (Name == "llvm.assume")
    return IntrinsicID::Assume;
  for (const Entry &E : Table)
    if (Name.rfind(E.Prefix, 0) == 0)
      return E.ID;
  return IntrinsicID::NotIntrinsic;
}

class ParserImpl {
public:
  explicit ParserImpl(const std::string &Src) : Lex(Src) { advance(); }

  std::unique_ptr<Module> parse(std::string &Error);

private:
  Lexer Lex;
  Token Tok;
  std::unique_ptr<Module> M;
  bool HadError = false;
  std::string ErrMsg;
  unsigned ErrLine = 0;

  // Per-function state.
  Function *CurF = nullptr;
  BasicBlock *InsertBB = nullptr;
  std::map<std::string, Value *> Locals;
  std::map<std::string, BasicBlock *> BlockMap;
  struct Fixup {
    User *U;
    unsigned OpIdx;
    std::string Name;
    Type *Ty;
    unsigned Line;
  };
  std::vector<Fixup> Fixups;
  /// Function attr-group references resolved after the whole file is read.
  std::vector<std::pair<Function *, std::string>> PendingAttrGroups;
  std::map<std::string, FnAttr> AttrGroups;

  void advance() { Tok = Lex.next(); }

  bool error(const std::string &Msg) {
    if (!HadError) {
      HadError = true;
      ErrMsg = Msg;
      ErrLine = Tok.Line;
    }
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (Tok.Kind != K)
      return error(std::string("expected ") + What);
    advance();
    return true;
  }

  bool isWord(const char *W) const {
    return Tok.Kind == TokKind::Word && Tok.Text == W;
  }
  bool eatWord(const char *W) {
    if (!isWord(W))
      return false;
    advance();
    return true;
  }

  Type *parseType();
  bool parseFnAttrList(FnAttr &Attrs);
  bool parseParamAttrList(ParamAttrs &PA);
  Constant *parseConstant(Type *Ty);
  Value *parseValueOperand(Type *Ty, User *ForUser, unsigned OpIdx);
  /// Parses "type value" pairs.
  Value *parseTypedValue(Type **TyOut, User *ForUser, unsigned OpIdx);
  BasicBlock *getOrCreateBlock(const std::string &Name);
  bool parseFunction(bool IsDeclaration);
  bool parseBody();
  bool parseInstruction(const std::string &ResultName);
  Function *resolveCallee(const std::string &Name, Type *RetTy,
                          const std::vector<Type *> &ArgTypes);
  bool applyFixups();
};

Type *ParserImpl::parseType() {
  TypeContext &TC = M->getTypes();
  Type *Base = nullptr;
  if (Tok.Kind == TokKind::Word) {
    const std::string &W = Tok.Text;
    if (W == "void")
      Base = TC.getVoidTy();
    else if (W == "ptr")
      Base = TC.getPointerTy();
    else if (W == "label")
      Base = TC.getLabelTy();
    else if (W.size() > 1 && W[0] == 'i') {
      unsigned Bits = 0;
      for (size_t I = 1; I != W.size(); ++I) {
        if (!isdigit((unsigned char)W[I])) {
          Bits = 0;
          break;
        }
        Bits = Bits * 10 + (W[I] - '0');
      }
      if (Bits >= 1 && Bits <= 64)
        Base = TC.getIntTy(Bits);
    }
    if (!Base) {
      error("unknown type '" + W + "'");
      return nullptr;
    }
    advance();
  } else if (Tok.Kind == TokKind::Less) {
    advance();
    if (Tok.Kind != TokKind::Integer) {
      error("expected vector element count");
      return nullptr;
    }
    unsigned Count = (unsigned)std::stoul(Tok.Text);
    advance();
    if (!eatWord("x")) {
      error("expected 'x' in vector type");
      return nullptr;
    }
    Type *Elem = parseType();
    if (!Elem)
      return nullptr;
    if (!Elem->isIntegerTy()) {
      error("vector elements must be integers");
      return nullptr;
    }
    if (Tok.Kind != TokKind::Greater) {
      error("expected '>' in vector type");
      return nullptr;
    }
    advance();
    Base = TC.getVectorTy(Elem, Count);
  } else {
    error("expected type");
    return nullptr;
  }

  // Legacy typed pointers: any number of '*' suffixes collapse to ptr.
  while (Tok.Kind == TokKind::Star) {
    advance();
    Base = TC.getPointerTy();
  }
  return Base;
}

bool ParserImpl::parseFnAttrList(FnAttr &Attrs) {
  for (;;) {
    bool Matched = false;
    for (FnAttr A : allFnAttrs()) {
      if (isWord(fnAttrName(A))) {
        Attrs = Attrs | A;
        advance();
        Matched = true;
        break;
      }
    }
    if (!Matched)
      return true;
  }
}

bool ParserImpl::parseParamAttrList(ParamAttrs &PA) {
  for (;;) {
    if (eatWord("nocapture"))
      PA.NoCapture = true;
    else if (eatWord("nonnull"))
      PA.NonNull = true;
    else if (eatWord("noundef"))
      PA.NoUndef = true;
    else if (eatWord("readonly"))
      PA.ReadOnly = true;
    else if (isWord("dereferenceable")) {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (Tok.Kind != TokKind::Integer)
        return error("expected byte count");
      PA.Dereferenceable = std::stoull(Tok.Text);
      advance();
      if (!expect(TokKind::RParen, "')'"))
        return false;
    } else {
      return true;
    }
  }
}

Constant *ParserImpl::parseConstant(Type *Ty) {
  ConstantPoolCtx &CP = M->getConstants();
  if (Tok.Kind == TokKind::Integer) {
    if (!Ty->isIntegerTy()) {
      error("integer literal for non-integer type");
      return nullptr;
    }
    APInt V;
    if (!APInt::fromString(Ty->getIntegerBitWidth(), Tok.Text, V)) {
      error("malformed integer literal");
      return nullptr;
    }
    advance();
    return CP.getInt(cast<IntegerType>(Ty), V);
  }
  if (isWord("true") || isWord("false")) {
    if (!Ty->isBoolTy()) {
      error("boolean literal requires i1");
      return nullptr;
    }
    bool V = Tok.Text == "true";
    advance();
    return CP.getInt(cast<IntegerType>(Ty), V ? 1 : 0);
  }
  if (eatWord("poison"))
    return CP.getPoison(Ty);
  if (eatWord("undef"))
    return CP.getUndef(Ty);
  if (isWord("null")) {
    if (!Ty->isPointerTy()) {
      error("null literal requires pointer type");
      return nullptr;
    }
    advance();
    return CP.getNullPtr(Ty);
  }
  if (eatWord("zeroinitializer")) {
    if (auto *VT = dyn_cast<VectorType>(Ty))
      return CP.getSplat(
          VT, CP.getInt(cast<IntegerType>(VT->getElementType()), 0));
    if (Ty->isIntegerTy())
      return CP.getInt(cast<IntegerType>(Ty), 0);
    error("zeroinitializer requires int or vector type");
    return nullptr;
  }
  if (Tok.Kind == TokKind::Less) {
    // Constant vector: < i32 1, i32 poison, ... >
    auto *VT = dyn_cast<VectorType>(Ty);
    if (!VT) {
      error("vector literal for non-vector type");
      return nullptr;
    }
    advance();
    std::vector<Constant *> Elems;
    for (;;) {
      Type *ET = parseType();
      if (!ET)
        return nullptr;
      if (ET != VT->getElementType()) {
        error("vector element type mismatch");
        return nullptr;
      }
      Constant *C = parseConstant(ET);
      if (!C)
        return nullptr;
      Elems.push_back(C);
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    if (Tok.Kind != TokKind::Greater) {
      error("expected '>' after vector literal");
      return nullptr;
    }
    advance();
    if (Elems.size() != VT->getNumElements()) {
      error("vector literal element count mismatch");
      return nullptr;
    }
    return CP.getVector(VT, Elems);
  }
  error("expected constant");
  return nullptr;
}

Value *ParserImpl::parseValueOperand(Type *Ty, User *ForUser,
                                     unsigned OpIdx) {
  if (Tok.Kind == TokKind::LocalVar) {
    std::string Name = Tok.Text;
    unsigned Line = Tok.Line;
    advance();
    auto It = Locals.find(Name);
    if (It != Locals.end()) {
      if (It->second->getType() != Ty) {
        error("type mismatch for %" + Name);
        return nullptr;
      }
      return It->second;
    }
    // Forward reference: return a placeholder and record a fixup.
    Fixups.push_back({ForUser, OpIdx, Name, Ty, Line});
    return M->getConstants().getUndef(Ty);
  }
  return parseConstant(Ty);
}

BasicBlock *ParserImpl::getOrCreateBlock(const std::string &Name) {
  auto It = BlockMap.find(Name);
  if (It != BlockMap.end())
    return It->second;
  BasicBlock *BB = CurF->addBlock(Name);
  BlockMap[Name] = BB;
  return BB;
}

Function *ParserImpl::resolveCallee(const std::string &Name, Type *RetTy,
                                    const std::vector<Type *> &ArgTypes) {
  if (Function *F = M->getFunction(Name)) {
    if (F->getFunctionType()->getNumParams() != ArgTypes.size()) {
      error("call argument count mismatch for @" + Name);
      return nullptr;
    }
    return F;
  }
  // Auto-declare from the call-site signature so paper listings that omit
  // 'declare' lines still parse.
  Function *F = M->createFunction(
      M->getTypes().getFunctionTy(RetTy, ArgTypes), Name);
  F->setIntrinsicID(intrinsicFromName(Name));
  return F;
}

bool ParserImpl::applyFixups() {
  for (const Fixup &F : Fixups) {
    auto It = Locals.find(F.Name);
    if (It == Locals.end()) {
      HadError = true;
      ErrMsg = "use of undefined value %" + F.Name;
      ErrLine = F.Line;
      return false;
    }
    if (It->second->getType() != F.Ty) {
      HadError = true;
      ErrMsg = "type mismatch for %" + F.Name;
      ErrLine = F.Line;
      return false;
    }
    F.U->setOperand(F.OpIdx, It->second);
  }
  Fixups.clear();
  return true;
}

bool ParserImpl::parseFunction(bool IsDeclaration) {
  Locals.clear();
  BlockMap.clear();
  Fixups.clear();

  Type *RetTy = parseType();
  if (!RetTy)
    return false;
  if (Tok.Kind != TokKind::GlobalVar)
    return error("expected function name");
  std::string Name = Tok.Text;
  advance();
  if (!expect(TokKind::LParen, "'('"))
    return false;

  std::vector<Type *> ParamTypes;
  std::vector<ParamAttrs> ParamAttrList;
  std::vector<std::string> ParamNames;
  if (Tok.Kind != TokKind::RParen) {
    for (;;) {
      Type *PT = parseType();
      if (!PT)
        return false;
      ParamAttrs PA;
      if (!parseParamAttrList(PA))
        return false;
      // '*' of legacy pointer types is consumed by parseType.
      std::string PName;
      if (Tok.Kind == TokKind::LocalVar) {
        PName = Tok.Text;
        advance();
      }
      ParamTypes.push_back(PT);
      ParamAttrList.push_back(PA);
      ParamNames.push_back(PName);
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
  }
  if (!expect(TokKind::RParen, "')'"))
    return false;

  if (M->getFunction(Name))
    return error("duplicate function @" + Name);
  Function *F = M->createFunction(
      M->getTypes().getFunctionTy(RetTy, ParamTypes), Name);
  F->setIntrinsicID(intrinsicFromName(Name));
  for (unsigned I = 0; I != ParamTypes.size(); ++I) {
    F->paramAttrs(I) = ParamAttrList[I];
    F->getArg(I)->setName(ParamNames[I]);
  }

  // Inline function attributes and/or attribute-group references.
  FnAttr Attrs = FnAttr::None;
  for (;;) {
    if (Tok.Kind == TokKind::AttrGroup) {
      PendingAttrGroups.push_back({F, Tok.Text});
      advance();
      continue;
    }
    FnAttr Before = Attrs;
    if (!parseFnAttrList(Attrs))
      return false;
    if (Attrs == Before)
      break;
  }
  F->setFnAttrs(Attrs);

  if (IsDeclaration)
    return true;

  CurF = F;
  for (unsigned I = 0; I != F->getNumArgs(); ++I)
    if (F->getArg(I)->hasName())
      Locals[F->getArg(I)->getName()] = F->getArg(I);

  if (!expect(TokKind::LBrace, "'{'"))
    return false;
  if (!parseBody())
    return false;
  if (!expect(TokKind::RBrace, "'}'"))
    return false;
  return applyFixups();
}

bool ParserImpl::parseBody() {
  BasicBlock *CurBB = nullptr;

  auto startBlock = [&](const std::string &Name) {
    BasicBlock *BB = getOrCreateBlock(Name);
    CurBB = BB;
  };

  // Implicit entry block when the body starts with an instruction.
  while (Tok.Kind != TokKind::RBrace && Tok.Kind != TokKind::Eof) {
    // Label: word/integer followed by ':'.
    if ((Tok.Kind == TokKind::Word || Tok.Kind == TokKind::Integer)) {
      // Lookahead requires care: save and check for ':'.
      std::string LabelName = Tok.Text;
      // Labels are the only place a Word is followed by ':'.
      // Opcode words are never followed by ':'.
      // We can distinguish cheaply: known opcodes are never labels here.
      static const char *Opcodes[] = {
          "add",  "sub",   "mul",    "udiv",        "sdiv",
          "urem", "srem",  "shl",    "lshr",        "ashr",
          "and",  "or",    "xor",    "icmp",        "select",
          "trunc", "zext", "sext",   "freeze",      "phi",
          "call", "load",  "store",  "alloca",      "getelementptr",
          "ret",  "br",    "switch", "unreachable", "extractelement",
          "insertelement", "shufflevector", "tail"};
      bool IsOpcode = false;
      if (Tok.Kind == TokKind::Word)
        for (const char *Op : Opcodes)
          if (LabelName == Op) {
            IsOpcode = true;
            break;
          }
      if (!IsOpcode) {
        advance();
        if (!expect(TokKind::Colon, "':' after label"))
          return false;
        startBlock(LabelName);
        continue;
      }
    }

    if (!CurBB)
      startBlock("entry");

    InsertBB = CurBB;

    if (Tok.Kind == TokKind::LocalVar) {
      std::string ResultName = Tok.Text;
      advance();
      if (!expect(TokKind::Equal, "'='"))
        return false;
      if (!parseInstruction(ResultName))
        return false;
    } else if (Tok.Kind == TokKind::Word) {
      if (!parseInstruction(""))
        return false;
    } else {
      return error("expected instruction or label");
    }
  }
  return true;
}

bool ParserImpl::parseInstruction(const std::string &ResultName) {
  TypeContext &TC = M->getTypes();
  Type *VoidTy = TC.getVoidTy();
  Instruction *Inst = nullptr;

  eatWord("tail"); // 'tail call' is accepted and ignored

  auto finish = [&](Instruction *I) {
    InsertBB->append(std::unique_ptr<Instruction>(I));
    if (!ResultName.empty()) {
      if (Locals.count(ResultName))
        return error("redefinition of %" + ResultName);
      I->setName(ResultName);
      Locals[ResultName] = I;
    }
    return true;
  };

  // Binary operations.
  static const std::pair<const char *, BinaryInst::BinOp> BinOps[] = {
      {"add", BinaryInst::Add},   {"sub", BinaryInst::Sub},
      {"mul", BinaryInst::Mul},   {"udiv", BinaryInst::UDiv},
      {"sdiv", BinaryInst::SDiv}, {"urem", BinaryInst::URem},
      {"srem", BinaryInst::SRem}, {"shl", BinaryInst::Shl},
      {"lshr", BinaryInst::LShr}, {"ashr", BinaryInst::AShr},
      {"and", BinaryInst::And},   {"or", BinaryInst::Or},
      {"xor", BinaryInst::Xor}};
  for (const auto &[Name, Op] : BinOps) {
    if (!isWord(Name))
      continue;
    advance();
    bool NUW = false, NSW = false, Exact = false;
    for (;;) {
      if (eatWord("nuw"))
        NUW = true;
      else if (eatWord("nsw"))
        NSW = true;
      else if (eatWord("exact"))
        Exact = true;
      else
        break;
    }
    Type *Ty = parseType();
    if (!Ty)
      return false;
    if (!Ty->isIntOrIntVectorTy())
      return error("binary op requires integer type");
    // Operands may be forward references; create with placeholders.
    Value *L = parseValueOperand(Ty, nullptr, 0);
    if (!L)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Value *R = parseValueOperand(Ty, nullptr, 1);
    if (!R)
      return false;
    auto *B = new BinaryInst(Op, L, R);
    if (BinaryInst::supportsNUWNSW(Op)) {
      B->setNUW(NUW);
      B->setNSW(NSW);
    }
    if (BinaryInst::supportsExact(Op))
      B->setExact(Exact);
    // Patch fixup targets now that the user exists.
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = B;
    return finish(B);
  }

  if (isWord("icmp")) {
    advance();
    ICmpInst::Predicate Pred = ICmpInst::EQ;
    bool Found = false;
    for (unsigned P = 0; P != ICmpInst::NumPreds; ++P) {
      if (isWord(ICmpInst::getPredicateName((ICmpInst::Predicate)P))) {
        Pred = (ICmpInst::Predicate)P;
        Found = true;
        advance();
        break;
      }
    }
    if (!Found)
      return error("expected icmp predicate");
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *L = parseValueOperand(Ty, nullptr, 0);
    if (!L)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Value *R = parseValueOperand(Ty, nullptr, 1);
    if (!R)
      return false;
    auto *C = new ICmpInst(Pred, L, R, TC.getIntTy(1));
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = C;
    return finish(C);
  }

  if (isWord("select")) {
    advance();
    Type *CondTy = parseType();
    if (!CondTy || !CondTy->isBoolTy())
      return error("select condition must be i1");
    Value *Cond = parseValueOperand(CondTy, nullptr, 0);
    if (!Cond)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *TV = parseValueOperand(Ty, nullptr, 1);
    if (!TV)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *Ty2 = parseType();
    if (Ty2 != Ty)
      return error("select arm types differ");
    Value *FV = parseValueOperand(Ty, nullptr, 2);
    if (!FV)
      return false;
    auto *S = new SelectInst(Cond, TV, FV);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = S;
    return finish(S);
  }

  for (auto [Name, Op] : {std::pair<const char *, CastInst::CastOp>
                              {"trunc", CastInst::Trunc},
                          {"zext", CastInst::ZExt},
                          {"sext", CastInst::SExt}}) {
    if (!isWord(Name))
      continue;
    advance();
    Type *SrcTy = parseType();
    if (!SrcTy)
      return false;
    Value *V = parseValueOperand(SrcTy, nullptr, 0);
    if (!V)
      return false;
    if (!eatWord("to"))
      return error("expected 'to' in cast");
    Type *DstTy = parseType();
    if (!DstTy)
      return false;
    if (!SrcTy->isIntegerTy() || !DstTy->isIntegerTy())
      return error("casts operate on integers");
    unsigned SW = SrcTy->getIntegerBitWidth(),
             DW = DstTy->getIntegerBitWidth();
    if (Op == CastInst::Trunc ? SW <= DW : SW >= DW)
      return error("cast width direction invalid");
    auto *C = new CastInst(Op, V, DstTy);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = C;
    return finish(C);
  }

  if (isWord("freeze")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *V = parseValueOperand(Ty, nullptr, 0);
    if (!V)
      return false;
    auto *Fr = new FreezeInst(V);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = Fr;
    return finish(Fr);
  }

  if (isWord("phi")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    auto *Phi = new PhiNode(Ty);
    unsigned OpIdx = 0;
    for (;;) {
      if (!expect(TokKind::LBracket, "'['"))
        return false;
      Value *V = parseValueOperand(Ty, nullptr, OpIdx);
      if (!V)
        return false;
      if (!expect(TokKind::Comma, "','"))
        return false;
      if (Tok.Kind != TokKind::LocalVar)
        return error("expected block label in phi");
      BasicBlock *BB = getOrCreateBlock(Tok.Text);
      advance();
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      Phi->addIncoming(V, BB);
      ++OpIdx;
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = Phi;
    return finish(Phi);
  }

  if (isWord("call")) {
    advance();
    FnAttr Ignored = FnAttr::None;
    parseFnAttrList(Ignored); // call-site attrs accepted and dropped
    Type *RetTy = parseType();
    if (!RetTy)
      return false;
    if (Tok.Kind != TokKind::GlobalVar)
      return error("expected callee");
    std::string CalleeName = Tok.Text;
    advance();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    std::vector<Value *> Args;
    std::vector<Type *> ArgTypes;
    if (Tok.Kind != TokKind::RParen) {
      for (;;) {
        Type *AT = parseType();
        if (!AT)
          return false;
        ParamAttrs Ignore;
        if (!parseParamAttrList(Ignore))
          return false;
        Value *A = parseValueOperand(AT, nullptr, (unsigned)Args.size());
        if (!A)
          return false;
        Args.push_back(A);
        ArgTypes.push_back(AT);
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    Function *Callee = resolveCallee(CalleeName, RetTy, ArgTypes);
    if (!Callee)
      return false;
    auto *C = new CallInst(Callee, Args, RetTy);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = C;
    if (RetTy->isVoidTy() && !ResultName.empty())
      return error("void call cannot produce a value");
    return finish(C);
  }

  if (isWord("load")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *PtrTy = parseType();
    if (!PtrTy || !PtrTy->isPointerTy())
      return error("load requires a pointer operand");
    Value *P = parseValueOperand(PtrTy, nullptr, 0);
    if (!P)
      return false;
    unsigned Align = 1;
    if (Tok.Kind == TokKind::Comma) {
      advance();
      if (!eatWord("align"))
        return error("expected 'align'");
      if (Tok.Kind != TokKind::Integer)
        return error("expected alignment value");
      Align = (unsigned)std::stoul(Tok.Text);
      advance();
    }
    auto *L = new LoadInst(Ty, P, Align);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = L;
    return finish(L);
  }

  if (isWord("store")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *V = parseValueOperand(Ty, nullptr, 0);
    if (!V)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *PtrTy = parseType();
    if (!PtrTy || !PtrTy->isPointerTy())
      return error("store requires a pointer operand");
    Value *P = parseValueOperand(PtrTy, nullptr, 1);
    if (!P)
      return false;
    unsigned Align = 1;
    if (Tok.Kind == TokKind::Comma) {
      advance();
      if (!eatWord("align"))
        return error("expected 'align'");
      if (Tok.Kind != TokKind::Integer)
        return error("expected alignment value");
      Align = (unsigned)std::stoul(Tok.Text);
      advance();
    }
    auto *S = new StoreInst(V, P, VoidTy, Align);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = S;
    return finish(S);
  }

  if (isWord("alloca")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    unsigned Align = 8;
    if (Tok.Kind == TokKind::Comma) {
      advance();
      if (!eatWord("align"))
        return error("expected 'align'");
      if (Tok.Kind != TokKind::Integer)
        return error("expected alignment value");
      Align = (unsigned)std::stoul(Tok.Text);
      advance();
    }
    return finish(new AllocaInst(Ty, TC.getPointerTy(), Align));
  }

  if (isWord("getelementptr")) {
    advance();
    bool InBounds = eatWord("inbounds");
    Type *ElemTy = parseType();
    if (!ElemTy)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *PtrTy = parseType();
    if (!PtrTy || !PtrTy->isPointerTy())
      return error("gep requires a pointer operand");
    Value *P = parseValueOperand(PtrTy, nullptr, 0);
    if (!P)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *IdxTy = parseType();
    if (!IdxTy || !IdxTy->isIntegerTy())
      return error("gep index must be integer");
    Value *Idx = parseValueOperand(IdxTy, nullptr, 1);
    if (!Idx)
      return false;
    auto *G = new GEPInst(ElemTy, P, Idx, TC.getPointerTy(), InBounds);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = G;
    return finish(G);
  }

  if (isWord("extractelement")) {
    advance();
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVectorTy())
      return error("extractelement requires a vector");
    Value *V = parseValueOperand(VecTy, nullptr, 0);
    if (!V)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *IdxTy = parseType();
    if (!IdxTy || !IdxTy->isIntegerTy())
      return error("index must be integer");
    Value *Idx = parseValueOperand(IdxTy, nullptr, 1);
    if (!Idx)
      return false;
    auto *E = new ExtractElementInst(V, Idx);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = E;
    return finish(E);
  }

  if (isWord("insertelement")) {
    advance();
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVectorTy())
      return error("insertelement requires a vector");
    Value *V = parseValueOperand(VecTy, nullptr, 0);
    if (!V)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *EltTy = parseType();
    if (!EltTy)
      return false;
    Value *Elt = parseValueOperand(EltTy, nullptr, 1);
    if (!Elt)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *IdxTy = parseType();
    if (!IdxTy || !IdxTy->isIntegerTy())
      return error("index must be integer");
    Value *Idx = parseValueOperand(IdxTy, nullptr, 2);
    if (!Idx)
      return false;
    auto *E = new InsertElementInst(V, Elt, Idx);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = E;
    return finish(E);
  }

  if (isWord("shufflevector")) {
    advance();
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVectorTy())
      return error("shufflevector requires vectors");
    Value *V1 = parseValueOperand(VecTy, nullptr, 0);
    if (!V1)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    Type *VecTy2 = parseType();
    if (VecTy2 != VecTy)
      return error("shufflevector input types differ");
    Value *V2 = parseValueOperand(VecTy, nullptr, 1);
    if (!V2)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    // Mask: a constant vector of i32 (poison/undef lanes become -1).
    Type *MaskTy = parseType();
    auto *MVT = dyn_cast_if_present<VectorType>(MaskTy);
    if (!MVT)
      return error("shuffle mask must be a vector");
    Constant *MaskC = parseConstant(MaskTy);
    if (!MaskC)
      return false;
    std::vector<int> Mask;
    auto *MV = cast<ConstantVector>(MaskC);
    for (unsigned I = 0; I != MV->getNumElements(); ++I) {
      Constant *E = MV->getElement(I);
      if (const auto *CI = dyn_cast<ConstantInt>(E))
        Mask.push_back((int)CI->getValue().getSExtValue());
      else
        Mask.push_back(-1);
    }
    auto *RT = TC.getVectorTy(
        cast<VectorType>(VecTy)->getElementType(), (unsigned)Mask.size());
    auto *SV = new ShuffleVectorInst(V1, V2, Mask, RT);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = SV;
    return finish(SV);
  }

  if (isWord("ret")) {
    advance();
    if (eatWord("void"))
      return finish(new ReturnInst(nullptr, VoidTy));
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *V = parseValueOperand(Ty, nullptr, 0);
    if (!V)
      return false;
    auto *R = new ReturnInst(V, VoidTy);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = R;
    return finish(R);
  }

  if (isWord("br")) {
    advance();
    if (eatWord("label")) {
      if (Tok.Kind != TokKind::LocalVar)
        return error("expected block label");
      BasicBlock *Dest = getOrCreateBlock(Tok.Text);
      advance();
      return finish(new BranchInst(Dest, VoidTy));
    }
    Type *CondTy = parseType();
    if (!CondTy || !CondTy->isBoolTy())
      return error("branch condition must be i1");
    Value *Cond = parseValueOperand(CondTy, nullptr, 0);
    if (!Cond)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    if (!eatWord("label") || Tok.Kind != TokKind::LocalVar)
      return error("expected true label");
    BasicBlock *T = getOrCreateBlock(Tok.Text);
    advance();
    if (!expect(TokKind::Comma, "','"))
      return false;
    if (!eatWord("label") || Tok.Kind != TokKind::LocalVar)
      return error("expected false label");
    BasicBlock *F = getOrCreateBlock(Tok.Text);
    advance();
    auto *B = new BranchInst(Cond, T, F, VoidTy);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = B;
    return finish(B);
  }

  if (isWord("switch")) {
    advance();
    Type *Ty = parseType();
    if (!Ty || !Ty->isIntegerTy())
      return error("switch operand must be integer");
    Value *V = parseValueOperand(Ty, nullptr, 0);
    if (!V)
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    if (!eatWord("label") || Tok.Kind != TokKind::LocalVar)
      return error("expected default label");
    BasicBlock *Def = getOrCreateBlock(Tok.Text);
    advance();
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    auto *Sw = new SwitchInst(V, Def, VoidTy);
    for (auto It = Fixups.rbegin(); It != Fixups.rend() && !It->U; ++It)
      It->U = Sw;
    while (Tok.Kind != TokKind::RBracket) {
      Type *CT = parseType();
      if (CT != Ty)
        return error("case type mismatch");
      if (Tok.Kind != TokKind::Integer)
        return error("expected case value");
      APInt CV;
      if (!APInt::fromString(Ty->getIntegerBitWidth(), Tok.Text, CV))
        return error("malformed case value");
      advance();
      if (!expect(TokKind::Comma, "','"))
        return false;
      if (!eatWord("label") || Tok.Kind != TokKind::LocalVar)
        return error("expected case label");
      Sw->addCase(CV, getOrCreateBlock(Tok.Text));
      advance();
    }
    advance(); // ']'
    return finish(Sw);
  }

  if (isWord("unreachable")) {
    advance();
    return finish(new UnreachableInst(VoidTy));
  }

  return error("unknown instruction '" + Tok.Text + "'");
}

std::unique_ptr<Module> ParserImpl::parse(std::string &Error) {
  M = std::make_unique<Module>();
  while (Tok.Kind != TokKind::Eof && !HadError) {
    if (eatWord("define")) {
      if (!parseFunction(/*IsDeclaration=*/false))
        break;
    } else if (eatWord("declare")) {
      if (!parseFunction(/*IsDeclaration=*/true))
        break;
    } else if (eatWord("attributes")) {
      if (Tok.Kind != TokKind::AttrGroup) {
        error("expected attribute group id");
        break;
      }
      std::string Id = Tok.Text;
      advance();
      if (!expect(TokKind::Equal, "'='") || !expect(TokKind::LBrace, "'{'"))
        break;
      FnAttr Attrs = FnAttr::None;
      parseFnAttrList(Attrs);
      if (!expect(TokKind::RBrace, "'}'"))
        break;
      AttrGroups[Id] = Attrs;
    } else if (isWord("source_filename") || isWord("target")) {
      // Skip "source_filename = ..." / "target ... = ..." lines: consume
      // until the next top-level keyword.
      advance();
      while (Tok.Kind != TokKind::Eof && !isWord("define") &&
             !isWord("declare") && !isWord("attributes") &&
             !isWord("source_filename") && !isWord("target"))
        advance();
    } else {
      error("expected 'define', 'declare' or 'attributes'");
      break;
    }
  }

  if (!HadError)
    for (auto &[F, Id] : PendingAttrGroups) {
      auto It = AttrGroups.find(Id);
      if (It != AttrGroups.end())
        F->setFnAttrs(F->getFnAttrs() | It->second);
    }

  if (HadError) {
    Error = "line " + std::to_string(ErrLine) + ": " + ErrMsg;
    return nullptr;
  }
  return std::move(M);
}

} // namespace

std::unique_ptr<Module> alive::parseModule(const std::string &Source,
                                           std::string &Error) {
  ParserImpl P(Source);
  return P.parse(Error);
}

std::unique_ptr<Module> alive::parseModuleFile(const std::string &Path,
                                               std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open file " + Path;
    return nullptr;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  return parseModule(SS.str(), Error);
}
